// Package histogram implements the statistics of paper Section 6.1:
// an attribute-value histogram combined with probability histograms,
// used to estimate PTQ selectivity, the number of cutoff pointers a
// query will chase (validated in Figure 11), and the table size a
// given cutoff threshold produces.
//
// "We estimate the selectivity by maintaining a probability histogram
// in addition to an attribute-value-based histogram. For example, a
// probability histogram might indicate that 5% of the possible values
// of attribute X have a probability of 20% or more."
//
// Histograms are incremental: beyond the batch Build used at load
// time, Add and Remove apply single-tuple deltas, which is what lets
// the stats.Catalog keep estimates fresh on every insert and delete
// instead of requiring a periodic full re-derivation. All methods are
// safe for concurrent use, so the planner may read a histogram while
// the maintenance path mutates it.
package histogram

import (
	"fmt"
	"sync"

	"upidb/internal/tuple"
)

// NumBuckets is the probability-histogram resolution: bucket i covers
// confidences [i/NumBuckets, (i+1)/NumBuckets).
const NumBuckets = 50

// Histogram summarizes the (value, confidence) entries of one
// uncertain attribute. Entries are (tuple, alternative) pairs with
// confidence = existence × alternative probability, exactly the unit
// the UPI stores.
type Histogram struct {
	attr string

	mu sync.RWMutex
	// perValue maps each attribute value to its probability buckets.
	perValue map[string]*valueStats
	// totals across all values.
	totalEntries int64
	totalTuples  int64
	// totalBytes is the summed encoded payload size over all entries,
	// for table size estimates.
	totalBytes int64
}

// valueStats keeps separate probability buckets for first alternatives
// (which Algorithm 1 always leaves in the heap file) and the rest
// (cutoff-eligible). Folding them together would badly overestimate
// cutoff-pointer counts for values that are popular first choices.
type valueStats struct {
	first   [NumBuckets]int64
	rest    [NumBuckets]int64
	entries int64
}

func (vs *valueStats) add(conf float64, isFirst bool, n int64) {
	if isFirst {
		vs.first[bucketOf(conf)] += n
	} else {
		vs.rest[bucketOf(conf)] += n
	}
	vs.entries += n
}

// bucketOf maps a confidence to its bucket index.
func bucketOf(conf float64) int {
	b := int(conf * NumBuckets)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// New creates an empty histogram for one uncertain attribute.
func New(attr string) *Histogram {
	return &Histogram{attr: attr, perValue: make(map[string]*valueStats)}
}

// Build constructs the histogram for one uncertain attribute from a
// batch of tuples (the statistics pass a DBA would run at load time).
func Build(attr string, tuples []*tuple.Tuple) (*Histogram, error) {
	h := New(attr)
	for _, t := range tuples {
		if !h.Add(t) {
			return nil, fmt.Errorf("histogram: tuple %d lacks attribute %q", t.ID, attr)
		}
	}
	return h, nil
}

// Add applies one tuple's contribution. It reports false — and leaves
// the histogram untouched — when the tuple lacks the attribute.
func (h *Histogram) Add(t *tuple.Tuple) bool {
	return h.AddSized(t, int64(len(tuple.Encode(t))), +1)
}

// Remove subtracts one tuple's contribution, the inverse of Add. The
// caller must pass the same tuple content that was added; Remove
// reports false when the tuple lacks the attribute.
func (h *Histogram) Remove(t *tuple.Tuple) bool {
	return h.AddSized(t, int64(len(tuple.Encode(t))), -1)
}

// AddSized applies one tuple's contribution scaled by sign (+1 add,
// -1 subtract) with the tuple's encoded payload size supplied by the
// caller — the hot-path variant for callers maintaining several
// histograms of the same tuple (the stats catalog), which would
// otherwise re-serialize the tuple once per attribute.
func (h *Histogram) AddSized(t *tuple.Tuple, encBytes, sign int64) bool {
	dist, ok := t.Uncertain(h.attr)
	if !ok {
		return false
	}
	enc := encBytes
	h.mu.Lock()
	defer h.mu.Unlock()
	h.totalTuples += sign
	for i, a := range dist {
		conf := t.Existence * a.Prob
		vs := h.perValue[a.Value]
		if vs == nil {
			vs = &valueStats{}
			h.perValue[a.Value] = vs
		}
		vs.add(conf, i == 0, sign)
		if vs.entries <= 0 {
			delete(h.perValue, a.Value)
		}
		h.totalEntries += sign
		h.totalBytes += sign * enc
	}
	if h.totalEntries < 0 {
		h.totalEntries = 0
	}
	if h.totalTuples < 0 {
		h.totalTuples = 0
	}
	if h.totalBytes < 0 {
		h.totalBytes = 0
	}
	return true
}

// Attr returns the attribute this histogram describes.
func (h *Histogram) Attr() string { return h.attr }

// TotalEntries returns the number of (tuple, alternative) entries.
func (h *Histogram) TotalEntries() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.totalEntries
}

// TotalTuples returns the number of tuples summarized.
func (h *Histogram) TotalTuples() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.totalTuples
}

// DistinctValues returns the number of distinct attribute values.
func (h *Histogram) DistinctValues() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.perValue)
}

// AvgEntryBytes returns the mean encoded payload size per entry.
func (h *Histogram) AvgEntryBytes() float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.avgEntryBytesLocked()
}

func (h *Histogram) avgEntryBytesLocked() float64 {
	if h.totalEntries == 0 {
		return 0
	}
	return float64(h.totalBytes) / float64(h.totalEntries)
}

// bucketsAbove estimates entries in buckets with confidence >= t, with
// linear interpolation inside the boundary bucket.
func bucketsAbove(buckets *[NumBuckets]int64, t float64) float64 {
	if t >= 1 {
		return 0
	}
	if t < 0 {
		t = 0
	}
	b := bucketOf(t)
	sum := 0.0
	for i := b + 1; i < NumBuckets; i++ {
		sum += float64(buckets[i])
	}
	// Fraction of the boundary bucket above t.
	lo := float64(b) / NumBuckets
	frac := 1 - (t-lo)*NumBuckets
	if frac < 0 {
		frac = 0
	}
	sum += float64(buckets[b]) * frac
	return sum
}

// entriesAbove estimates all entries (first and rest) of the value
// with confidence >= t.
func (vs *valueStats) entriesAbove(t float64) float64 {
	if t <= 0 {
		return float64(vs.entries)
	}
	return bucketsAbove(&vs.first, t) + bucketsAbove(&vs.rest, t)
}

// EstimateEntries estimates how many index entries for value have
// confidence >= qt (heap-file entries when qt >= C).
func (h *Histogram) EstimateEntries(value string, qt float64) float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.estimateEntriesLocked(value, qt)
}

func (h *Histogram) estimateEntriesLocked(value string, qt float64) float64 {
	vs := h.perValue[value]
	if vs == nil {
		return 0
	}
	return vs.entriesAbove(qt)
}

// EstimateCutoffPointers estimates the pointers a PTQ with threshold
// qt < cutoff retrieves from the cutoff index: entries with confidence
// in [qt, cutoff). This is the estimator Figure 11 validates.
func (h *Histogram) EstimateCutoffPointers(value string, qt, cutoff float64) float64 {
	if qt >= cutoff {
		return 0
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	vs := h.perValue[value]
	if vs == nil {
		return 0
	}
	n := bucketsAbove(&vs.rest, qt) - bucketsAbove(&vs.rest, cutoff)
	if n < 0 {
		n = 0
	}
	return n
}

// EstimateSelectivity estimates the fraction of *heap entries* a PTQ
// on value with threshold qt touches — the Selectivity term of the
// Section 6 cost models.
func (h *Histogram) EstimateSelectivity(value string, qt float64) float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.totalEntries == 0 {
		return 0
	}
	return h.estimateEntriesLocked(value, qt) / float64(h.totalEntries)
}

// EstimateHeapEntriesTotal estimates the number of entries kept in the
// heap file for a given cutoff threshold: every first alternative
// (Algorithm 1 keeps them unconditionally) plus every non-first
// alternative with confidence >= C.
func (h *Histogram) EstimateHeapEntriesTotal(cutoff float64) float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.estimateHeapEntriesTotalLocked(cutoff)
}

func (h *Histogram) estimateHeapEntriesTotalLocked(cutoff float64) float64 {
	total := float64(h.totalTuples) // exactly one first alternative per tuple
	for _, vs := range h.perValue {
		total += bucketsAbove(&vs.rest, cutoff)
	}
	return total
}

// EstimateTableBytes estimates the heap-file size for a cutoff
// threshold ("We also use the histogram to estimate the size of the
// table for a given cutoff threshold").
func (h *Histogram) EstimateTableBytes(cutoff float64) float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.estimateHeapEntriesTotalLocked(cutoff) * h.avgEntryBytesLocked()
}
