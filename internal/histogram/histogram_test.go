package histogram

import (
	"math"
	"testing"

	"upidb/internal/dataset"
	"upidb/internal/prob"
	"upidb/internal/tuple"
)

func mkTuple(t *testing.T, id uint64, exist float64, alts ...prob.Alternative) *tuple.Tuple {
	t.Helper()
	d, err := prob.NewDiscrete(alts)
	if err != nil {
		t.Fatal(err)
	}
	return &tuple.Tuple{ID: id, Existence: exist, Unc: []tuple.UncField{{Name: "X", Dist: d}}}
}

func TestBuildBasics(t *testing.T) {
	tuples := []*tuple.Tuple{
		mkTuple(t, 1, 1.0, prob.Alternative{Value: "A", Prob: 0.8}, prob.Alternative{Value: "B", Prob: 0.2}),
		mkTuple(t, 2, 0.5, prob.Alternative{Value: "A", Prob: 1.0}),
	}
	h, err := Build("X", tuples)
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalTuples() != 2 || h.TotalEntries() != 3 || h.DistinctValues() != 2 {
		t.Fatalf("tuples=%d entries=%d distinct=%d", h.TotalTuples(), h.TotalEntries(), h.DistinctValues())
	}
	if h.Attr() != "X" {
		t.Fatal("attr wrong")
	}
	// A has entries at conf 0.8 and 0.5.
	if got := h.EstimateEntries("A", 0.0); math.Abs(got-2) > 0.01 {
		t.Fatalf("A above 0: %v", got)
	}
	if got := h.EstimateEntries("A", 0.6); math.Abs(got-1) > 0.05 {
		t.Fatalf("A above 0.6: %v", got)
	}
	if got := h.EstimateEntries("Z", 0.1); got != 0 {
		t.Fatalf("unknown value: %v", got)
	}
	if err := errOnMissing(t); err == nil {
		t.Fatal("missing attribute accepted")
	}
}

func errOnMissing(t *testing.T) error {
	t.Helper()
	_, err := Build("Y", []*tuple.Tuple{mkTuple(t, 1, 1, prob.Alternative{Value: "A", Prob: 1})})
	return err
}

func TestEstimateCutoffPointers(t *testing.T) {
	// Non-first alternatives of value A at conf 0.05, 0.15, ..., 0.45
	// (first alternatives never produce cutoff pointers).
	var tuples []*tuple.Tuple
	for i := 0; i < 5; i++ {
		conf := 0.05 + float64(i)*0.1
		tuples = append(tuples, mkTuple(t, uint64(i+1), 1.0,
			prob.Alternative{Value: "B", Prob: 0.5},
			prob.Alternative{Value: "A", Prob: conf}))
	}
	h, err := Build("X", tuples)
	if err != nil {
		t.Fatal(err)
	}
	// Pointers with conf in [0.1, 0.4): entries at 0.15, 0.25, 0.35 = 3.
	got := h.EstimateCutoffPointers("A", 0.1, 0.4)
	if math.Abs(got-3) > 0.3 {
		t.Fatalf("pointers = %v, want ~3", got)
	}
	if h.EstimateCutoffPointers("A", 0.5, 0.4) != 0 {
		t.Fatal("qt >= cutoff should be 0")
	}
	if h.EstimateCutoffPointers("Z", 0.1, 0.4) != 0 {
		t.Fatal("unknown value should be 0")
	}
}

func TestSelectivityBounds(t *testing.T) {
	cfg := dataset.DefaultDBLPConfig()
	cfg.Authors, cfg.Publications, cfg.Institutions = 3000, 100, 300
	d, err := dataset.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		t.Fatal(err)
	}
	for _, qt := range []float64{0, 0.2, 0.5, 0.9} {
		s := h.EstimateSelectivity(dataset.MITInstitution, qt)
		if s < 0 || s > 1 {
			t.Fatalf("selectivity out of range: %v", s)
		}
	}
	// Monotone in qt.
	if h.EstimateSelectivity(dataset.MITInstitution, 0.1) < h.EstimateSelectivity(dataset.MITInstitution, 0.5) {
		t.Fatal("selectivity not monotone")
	}
}

// TestEstimateAccuracyAgainstTruth reproduces the Fig. 11 property: the
// estimated cutoff-pointer counts track the true counts closely.
func TestEstimateAccuracyAgainstTruth(t *testing.T) {
	cfg := dataset.DefaultDBLPConfig()
	cfg.Authors, cfg.Publications, cfg.Institutions = 8000, 100, 500
	d, err := dataset.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		t.Fatal(err)
	}
	for _, combo := range []struct{ qt, c float64 }{
		{0.05, 0.2}, {0.05, 0.4}, {0.15, 0.3}, {0.25, 0.45},
	} {
		truth := 0
		for _, a := range d.Authors {
			dist, _ := a.Uncertain(dataset.AttrInstitution)
			for i, alt := range dist {
				conf := a.Existence * alt.Prob
				// Cutoff entries: non-first alternatives below C...
				if i > 0 && conf < combo.c && conf >= combo.qt && alt.Value == dataset.MITInstitution {
					truth++
				}
			}
		}
		est := h.EstimateCutoffPointers(dataset.MITInstitution, combo.qt, combo.c)
		// Bucket-boundary interpolation introduces small errors; the
		// estimate must track the truth within ~15% plus slack.
		diff := math.Abs(est - float64(truth))
		if diff > 0.15*float64(truth)+5 {
			t.Fatalf("qt=%v C=%v: est %v vs truth %d", combo.qt, combo.c, est, truth)
		}
	}
}

func TestEstimateTableBytesMonotone(t *testing.T) {
	cfg := dataset.DefaultDBLPConfig()
	cfg.Authors, cfg.Publications, cfg.Institutions = 3000, 100, 300
	d, _ := dataset.GenerateDBLP(cfg)
	h, err := Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, c := range []float64{0, 0.1, 0.2, 0.3, 0.5} {
		size := h.EstimateTableBytes(c)
		if size <= 0 {
			t.Fatalf("size at C=%v is %v", c, size)
		}
		if size > prev+1 {
			t.Fatalf("size not non-increasing at C=%v: %v > %v", c, size, prev)
		}
		prev = size
	}
	// Size at C=0 should count all entries.
	all := h.EstimateTableBytes(0)
	if math.Abs(all-float64(h.TotalEntries())*h.avgEntryBytes) > 1 {
		t.Fatalf("C=0 size mismatch: %v", all)
	}
}
