package histogram

import (
	"math"
	"testing"

	"upidb/internal/dataset"
	"upidb/internal/prob"
	"upidb/internal/tuple"
)

func mkTuple(t *testing.T, id uint64, exist float64, alts ...prob.Alternative) *tuple.Tuple {
	t.Helper()
	d, err := prob.NewDiscrete(alts)
	if err != nil {
		t.Fatal(err)
	}
	return &tuple.Tuple{ID: id, Existence: exist, Unc: []tuple.UncField{{Name: "X", Dist: d}}}
}

func TestBuildBasics(t *testing.T) {
	tuples := []*tuple.Tuple{
		mkTuple(t, 1, 1.0, prob.Alternative{Value: "A", Prob: 0.8}, prob.Alternative{Value: "B", Prob: 0.2}),
		mkTuple(t, 2, 0.5, prob.Alternative{Value: "A", Prob: 1.0}),
	}
	h, err := Build("X", tuples)
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalTuples() != 2 || h.TotalEntries() != 3 || h.DistinctValues() != 2 {
		t.Fatalf("tuples=%d entries=%d distinct=%d", h.TotalTuples(), h.TotalEntries(), h.DistinctValues())
	}
	if h.Attr() != "X" {
		t.Fatal("attr wrong")
	}
	// A has entries at conf 0.8 and 0.5.
	if got := h.EstimateEntries("A", 0.0); math.Abs(got-2) > 0.01 {
		t.Fatalf("A above 0: %v", got)
	}
	if got := h.EstimateEntries("A", 0.6); math.Abs(got-1) > 0.05 {
		t.Fatalf("A above 0.6: %v", got)
	}
	if got := h.EstimateEntries("Z", 0.1); got != 0 {
		t.Fatalf("unknown value: %v", got)
	}
	if err := errOnMissing(t); err == nil {
		t.Fatal("missing attribute accepted")
	}
}

func errOnMissing(t *testing.T) error {
	t.Helper()
	_, err := Build("Y", []*tuple.Tuple{mkTuple(t, 1, 1, prob.Alternative{Value: "A", Prob: 1})})
	return err
}

func TestEstimateCutoffPointers(t *testing.T) {
	// Non-first alternatives of value A at conf 0.05, 0.15, ..., 0.45
	// (first alternatives never produce cutoff pointers).
	var tuples []*tuple.Tuple
	for i := 0; i < 5; i++ {
		conf := 0.05 + float64(i)*0.1
		tuples = append(tuples, mkTuple(t, uint64(i+1), 1.0,
			prob.Alternative{Value: "B", Prob: 0.5},
			prob.Alternative{Value: "A", Prob: conf}))
	}
	h, err := Build("X", tuples)
	if err != nil {
		t.Fatal(err)
	}
	// Pointers with conf in [0.1, 0.4): entries at 0.15, 0.25, 0.35 = 3.
	got := h.EstimateCutoffPointers("A", 0.1, 0.4)
	if math.Abs(got-3) > 0.3 {
		t.Fatalf("pointers = %v, want ~3", got)
	}
	if h.EstimateCutoffPointers("A", 0.5, 0.4) != 0 {
		t.Fatal("qt >= cutoff should be 0")
	}
	if h.EstimateCutoffPointers("Z", 0.1, 0.4) != 0 {
		t.Fatal("unknown value should be 0")
	}
}

func TestSelectivityBounds(t *testing.T) {
	cfg := dataset.DefaultDBLPConfig()
	cfg.Authors, cfg.Publications, cfg.Institutions = 3000, 100, 300
	d, err := dataset.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		t.Fatal(err)
	}
	for _, qt := range []float64{0, 0.2, 0.5, 0.9} {
		s := h.EstimateSelectivity(dataset.MITInstitution, qt)
		if s < 0 || s > 1 {
			t.Fatalf("selectivity out of range: %v", s)
		}
	}
	// Monotone in qt.
	if h.EstimateSelectivity(dataset.MITInstitution, 0.1) < h.EstimateSelectivity(dataset.MITInstitution, 0.5) {
		t.Fatal("selectivity not monotone")
	}
}

// TestEstimateAccuracyAgainstTruth reproduces the Fig. 11 property: the
// estimated cutoff-pointer counts track the true counts closely.
func TestEstimateAccuracyAgainstTruth(t *testing.T) {
	cfg := dataset.DefaultDBLPConfig()
	cfg.Authors, cfg.Publications, cfg.Institutions = 8000, 100, 500
	d, err := dataset.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		t.Fatal(err)
	}
	for _, combo := range []struct{ qt, c float64 }{
		{0.05, 0.2}, {0.05, 0.4}, {0.15, 0.3}, {0.25, 0.45},
	} {
		truth := 0
		for _, a := range d.Authors {
			dist, _ := a.Uncertain(dataset.AttrInstitution)
			for i, alt := range dist {
				conf := a.Existence * alt.Prob
				// Cutoff entries: non-first alternatives below C...
				if i > 0 && conf < combo.c && conf >= combo.qt && alt.Value == dataset.MITInstitution {
					truth++
				}
			}
		}
		est := h.EstimateCutoffPointers(dataset.MITInstitution, combo.qt, combo.c)
		// Bucket-boundary interpolation introduces small errors; the
		// estimate must track the truth within ~15% plus slack.
		diff := math.Abs(est - float64(truth))
		if diff > 0.15*float64(truth)+5 {
			t.Fatalf("qt=%v C=%v: est %v vs truth %d", combo.qt, combo.c, est, truth)
		}
	}
}

func TestEstimateTableBytesMonotone(t *testing.T) {
	cfg := dataset.DefaultDBLPConfig()
	cfg.Authors, cfg.Publications, cfg.Institutions = 3000, 100, 300
	d, _ := dataset.GenerateDBLP(cfg)
	h, err := Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, c := range []float64{0, 0.1, 0.2, 0.3, 0.5} {
		size := h.EstimateTableBytes(c)
		if size <= 0 {
			t.Fatalf("size at C=%v is %v", c, size)
		}
		if size > prev+1 {
			t.Fatalf("size not non-increasing at C=%v: %v > %v", c, size, prev)
		}
		prev = size
	}
	// Size at C=0 should count all entries.
	all := h.EstimateTableBytes(0)
	if math.Abs(all-float64(h.TotalEntries())*h.AvgEntryBytes()) > 1 {
		t.Fatalf("C=0 size mismatch: %v", all)
	}
}

// histogramsAgree fails unless a and b produce identical totals and
// identical estimates for every probed value and threshold.
func histogramsAgree(t *testing.T, a, b *Histogram, values []string) {
	t.Helper()
	if a.TotalEntries() != b.TotalEntries() || a.TotalTuples() != b.TotalTuples() ||
		a.DistinctValues() != b.DistinctValues() {
		t.Fatalf("totals diverged: entries %d/%d tuples %d/%d distinct %d/%d",
			a.TotalEntries(), b.TotalEntries(), a.TotalTuples(), b.TotalTuples(),
			a.DistinctValues(), b.DistinctValues())
	}
	if math.Abs(a.AvgEntryBytes()-b.AvgEntryBytes()) > 1e-9 {
		t.Fatalf("avg entry bytes diverged: %v vs %v", a.AvgEntryBytes(), b.AvgEntryBytes())
	}
	for _, v := range values {
		for _, qt := range []float64{0, 0.1, 0.3, 0.5, 0.8} {
			if ae, be := a.EstimateEntries(v, qt), b.EstimateEntries(v, qt); math.Abs(ae-be) > 1e-9 {
				t.Fatalf("EstimateEntries(%q, %v): %v vs %v", v, qt, ae, be)
			}
			if ap, bp := a.EstimateCutoffPointers(v, qt, 0.4), b.EstimateCutoffPointers(v, qt, 0.4); math.Abs(ap-bp) > 1e-9 {
				t.Fatalf("EstimateCutoffPointers(%q, %v): %v vs %v", v, qt, ap, bp)
			}
		}
	}
}

// TestIncrementalAddMatchesBuild: feeding tuples one by one through Add
// yields exactly the histogram Build produces from the batch.
func TestIncrementalAddMatchesBuild(t *testing.T) {
	cfg := dataset.DefaultDBLPConfig()
	cfg.Authors, cfg.Publications, cfg.Institutions = 2000, 100, 200
	d, err := dataset.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		t.Fatal(err)
	}
	inc := New(dataset.AttrInstitution)
	for _, a := range d.Authors {
		if !inc.Add(a) {
			t.Fatalf("tuple %d rejected", a.ID)
		}
	}
	histogramsAgree(t, batch, inc, []string{dataset.MITInstitution})
}

// TestRemoveInvertsAdd: Remove is the exact inverse of Add, so deltas
// can cancel a buffered insert without drift.
func TestRemoveInvertsAdd(t *testing.T) {
	base := []*tuple.Tuple{
		mkTuple(t, 1, 1.0, prob.Alternative{Value: "A", Prob: 0.8}, prob.Alternative{Value: "B", Prob: 0.2}),
		mkTuple(t, 2, 0.5, prob.Alternative{Value: "A", Prob: 1.0}),
	}
	want, err := Build("X", base)
	if err != nil {
		t.Fatal(err)
	}
	h := New("X")
	extra := mkTuple(t, 3, 0.7, prob.Alternative{Value: "C", Prob: 0.9}, prob.Alternative{Value: "A", Prob: 0.1})
	for _, tup := range base {
		h.Add(tup)
	}
	h.Add(extra)
	h.Remove(extra)
	histogramsAgree(t, want, h, []string{"A", "B", "C"})
	// A tuple lacking the attribute is refused without mutation.
	h2 := New("Y")
	if h2.Add(base[0]) {
		t.Fatal("Add accepted a tuple lacking the attribute")
	}
	if h2.TotalEntries() != 0 || h2.TotalTuples() != 0 {
		t.Fatal("rejected Add mutated the histogram")
	}
}

// TestConcurrentAddAndEstimate: mutations and reads race cleanly (the
// planner reads live histograms while the maintenance path mutates
// them); run with -race.
func TestConcurrentAddAndEstimate(t *testing.T) {
	h := New("X")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			h.Add(mkTuple(t, uint64(i+1), 0.9,
				prob.Alternative{Value: "A", Prob: 0.6}, prob.Alternative{Value: "B", Prob: 0.3}))
		}
	}()
	for i := 0; i < 500; i++ {
		_ = h.EstimateEntries("A", 0.2)
		_ = h.EstimateSelectivity("B", 0.1)
		_ = h.EstimateHeapEntriesTotal(0.1)
		_ = h.EstimateTableBytes(0.1)
	}
	<-done
	if h.TotalTuples() != 500 {
		t.Fatalf("tuples: %d", h.TotalTuples())
	}
}
