package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"upidb/internal/prob"
	"upidb/internal/tuple"
)

// CartelConfig controls the Cartel-like GPS generator (paper Section
// 7.1: one year of GPS readings around Boston, constrained Gaussian
// location uncertainty, an uncertain road-segment attribute derived
// from the location).
type CartelConfig struct {
	Observations int
	// GridN is the road grid dimension: GridN × GridN intersections
	// connected by horizontal and vertical segments.
	GridN int
	// SegmentLen is the length of one road segment in meters.
	SegmentLen float64
	// Sigma is the GPS error standard deviation in meters.
	Sigma float64
	// Bound is the constrained-Gaussian truncation radius in meters.
	Bound float64
	// MaxSegAlts bounds the alternatives of the segment attribute.
	MaxSegAlts  int
	PayloadSize int
	Seed        int64
}

// DefaultCartelConfig returns the scaled-down default (the paper used
// 15M readings; 150k preserves all shapes at 1/100 the load time).
func DefaultCartelConfig() CartelConfig {
	return CartelConfig{
		Observations: 150000,
		GridN:        40,
		SegmentLen:   250,
		Sigma:        20,
		Bound:        100,
		MaxSegAlts:   4,
		PayloadSize:  48,
		Seed:         2,
	}
}

// Scaled returns a copy with the observation count multiplied by f.
func (c CartelConfig) Scaled(f float64) CartelConfig {
	c.Observations = int(float64(c.Observations) * f)
	return c
}

// Segment is one road segment of the synthetic grid.
type Segment struct {
	ID string
	// A and B are the segment's endpoints in local meters.
	A, B prob.Point
}

// Midpoint returns the segment's midpoint.
func (s Segment) Midpoint() prob.Point {
	return prob.Point{X: (s.A.X + s.B.X) / 2, Y: (s.A.Y + s.B.Y) / 2}
}

// distToSegment returns the distance from p to segment s.
func distToSegment(p prob.Point, s Segment) float64 {
	ax, ay := s.B.X-s.A.X, s.B.Y-s.A.Y
	px, py := p.X-s.A.X, p.Y-s.A.Y
	len2 := ax*ax + ay*ay
	t := 0.0
	if len2 > 0 {
		t = (px*ax + py*ay) / len2
		t = math.Max(0, math.Min(1, t))
	}
	proj := prob.Point{X: s.A.X + t*ax, Y: s.A.Y + t*ay}
	return p.Dist(proj)
}

// Cartel holds the generated observations and the road network.
type Cartel struct {
	Observations []*tuple.Observation
	Segments     []Segment
	// Extent is the bounding box of the road network.
	Extent prob.Rect
}

// GenerateCartel builds the dataset.
func GenerateCartel(cfg CartelConfig) (*Cartel, error) {
	if cfg.Observations <= 0 || cfg.GridN < 2 || cfg.Sigma <= 0 || cfg.Bound <= cfg.Sigma {
		return nil, fmt.Errorf("dataset: invalid cartel config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	c := &Cartel{}
	// Road grid: horizontal and vertical segments between neighboring
	// intersections. Coordinates are local meters centered on "downtown".
	half := float64(cfg.GridN-1) * cfg.SegmentLen / 2
	c.Extent = prob.Rect{MinX: -half, MinY: -half, MaxX: half, MaxY: half}
	at := func(i, j int) prob.Point {
		return prob.Point{X: -half + float64(i)*cfg.SegmentLen, Y: -half + float64(j)*cfg.SegmentLen}
	}
	segID := 0
	for i := 0; i < cfg.GridN; i++ {
		for j := 0; j < cfg.GridN; j++ {
			if i+1 < cfg.GridN {
				c.Segments = append(c.Segments, Segment{ID: segName(segID), A: at(i, j), B: at(i+1, j)})
				segID++
			}
			if j+1 < cfg.GridN {
				c.Segments = append(c.Segments, Segment{ID: segName(segID), A: at(i, j), B: at(i, j+1)})
				segID++
			}
		}
	}

	// Traffic is skewed toward downtown: segment popularity decays
	// with distance from the center.
	popularity := make([]float64, len(c.Segments))
	sum := 0.0
	for i, s := range c.Segments {
		d := s.Midpoint().Dist(prob.Point{}) / (2 * cfg.SegmentLen)
		popularity[i] = 1 / (1 + d*d)
		sum += popularity[i]
	}
	for i := range popularity {
		popularity[i] /= sum
	}

	buckets := bucketSegments(c.Segments, cfg)
	c.Observations = make([]*tuple.Observation, cfg.Observations)
	for i := 0; i < cfg.Observations; i++ {
		o, err := genObservation(rng, uint64(i+1), cfg, c, popularity, buckets)
		if err != nil {
			return nil, err
		}
		c.Observations[i] = o
	}
	return c, nil
}

// segBuckets is a coarse spatial hash over segments so candidate
// lookup per observation is O(nearby) instead of O(all segments).
type segBuckets struct {
	cell float64
	m    map[[2]int][]int
}

func bucketSegments(segs []Segment, cfg CartelConfig) *segBuckets {
	b := &segBuckets{cell: cfg.SegmentLen, m: make(map[[2]int][]int)}
	for i, s := range segs {
		minX := math.Min(s.A.X, s.B.X) - cfg.Bound
		maxX := math.Max(s.A.X, s.B.X) + cfg.Bound
		minY := math.Min(s.A.Y, s.B.Y) - cfg.Bound
		maxY := math.Max(s.A.Y, s.B.Y) + cfg.Bound
		for cx := int(math.Floor(minX / b.cell)); cx <= int(math.Floor(maxX/b.cell)); cx++ {
			for cy := int(math.Floor(minY / b.cell)); cy <= int(math.Floor(maxY/b.cell)); cy++ {
				key := [2]int{cx, cy}
				b.m[key] = append(b.m[key], i)
			}
		}
	}
	return b
}

// near returns indices of segments whose Bound-expanded extent covers
// p's cell.
func (b *segBuckets) near(p prob.Point) []int {
	return b.m[[2]int{int(math.Floor(p.X / b.cell)), int(math.Floor(p.Y / b.cell))}]
}

func segName(id int) string { return fmt.Sprintf("seg-%05d", id) }

func genObservation(rng *rand.Rand, id uint64, cfg CartelConfig, c *Cartel, popularity []float64, buckets *segBuckets) (*tuple.Observation, error) {
	si := sampleIndex(rng, popularity)
	seg := c.Segments[si]
	// True position: uniform along the segment.
	t := rng.Float64()
	truePos := prob.Point{
		X: seg.A.X + t*(seg.B.X-seg.A.X),
		Y: seg.A.Y + t*(seg.B.Y-seg.A.Y),
	}
	// Reported (GPS) position: true position plus Gaussian error,
	// clamped to the truncation bound.
	gx := rng.NormFloat64() * cfg.Sigma
	gy := rng.NormFloat64() * cfg.Sigma
	if r := math.Hypot(gx, gy); r > cfg.Bound {
		gx, gy = gx/r*cfg.Bound*0.99, gy/r*cfg.Bound*0.99
	}
	center := prob.Point{X: truePos.X + gx, Y: truePos.Y + gy}

	// Uncertain segment attribute: nearby segments weighted by
	// exp(-dist²/2σ²), truncated and normalized — the probabilistic
	// map-matching the paper alludes to.
	type cand struct {
		idx int
		w   float64
	}
	var cands []cand
	for _, j := range buckets.near(center) {
		d := distToSegment(center, c.Segments[j])
		if d <= cfg.Bound {
			cands = append(cands, cand{idx: j, w: math.Exp(-(d * d) / (2 * cfg.Sigma * cfg.Sigma))})
		}
	}
	if len(cands) == 0 {
		cands = []cand{{idx: si, w: 1}}
	}
	wSum := 0.0
	for _, cd := range cands {
		wSum += cd.w
	}
	alts := make([]prob.Alternative, 0, len(cands))
	for _, cd := range cands {
		alts = append(alts, prob.Alternative{Value: c.Segments[cd.idx].ID, Prob: cd.w / wSum})
	}
	dist, err := prob.NewDiscrete(alts)
	if err != nil {
		return nil, err
	}
	dist = dist.TruncateLowest(cfg.MaxSegAlts).Normalize()

	return &tuple.Observation{
		ID:        id,
		Loc:       prob.ConstrainedGaussian{Center: center, Sigma: cfg.Sigma, Bound: cfg.Bound},
		Segment:   dist,
		Speed:     5 + rng.Float64()*25,
		Direction: rng.Float64() * 2 * math.Pi,
		Payload:   payload(rng, cfg.PayloadSize),
	}, nil
}
