// Package dataset generates the two synthetic uncertain datasets the
// experiments run on, standing in for the paper's derived-DBLP and
// Cartel data (see README.md, substitutions).
//
// Both generators are fully deterministic given their Config seeds, so
// every experiment is reproducible bit-for-bit.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"upidb/internal/prob"
	"upidb/internal/tuple"
)

// DBLPConfig controls the uncertain-DBLP-like generator.
//
// The paper built its Author table by querying author names through a
// web search API and weighting the returned institutions with a
// Zipfian distribution over search rank, keeping up to ten
// alternatives per author. This generator reproduces that recipe
// synthetically: each author draws a "true" institution from a
// Zipf-popular catalog, then receives a ranked alternative list whose
// probabilities follow Zipf(rank) weights.
type DBLPConfig struct {
	Authors      int     // number of Author tuples
	Publications int     // number of Publication tuples
	Institutions int     // size of the institution catalog
	Journals     int     // size of the journal catalog
	Countries    int     // size of the country catalog
	MaxAlts      int     // max alternatives per uncertain attribute ("up to ten per author")
	ZipfS        float64 // Zipf exponent for rank weighting
	PayloadSize  int     // opaque payload bytes per tuple
	Seed         int64
}

// DefaultDBLPConfig returns the scaled-down default (≈10× smaller than
// the paper's 700k authors / 1.3M publications; see README.md).
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{
		Authors:      70000,
		Publications: 130000,
		Institutions: 2000,
		Journals:     500,
		Countries:    25,
		MaxAlts:      10,
		ZipfS:        1.2,
		PayloadSize:  64,
		Seed:         1,
	}
}

// Scaled returns a copy with all table sizes multiplied by f.
func (c DBLPConfig) Scaled(f float64) DBLPConfig {
	c.Authors = int(float64(c.Authors) * f)
	c.Publications = int(float64(c.Publications) * f)
	return c
}

// AttrInstitution and friends are the attribute names in the generated
// schema, matching the paper's running example.
const (
	AttrInstitution = "Institution"
	AttrCountry     = "Country"
	DetName         = "Name"
	DetJournal      = "Journal"
)

// MITInstitution is the institution name the paper's Query 1 and
// Query 2 filter on. The generator pins catalog slot 3 to this name so
// the query is non-selective (a popular institution) at every scale.
const MITInstitution = "MIT"

// JapanCountry is the country the paper's Query 3 filters on; pinned
// to a mid-popularity catalog slot.
const JapanCountry = "Japan"

// DBLP holds the generated dataset plus the catalogs used to build it.
type DBLP struct {
	Authors      []*tuple.Tuple
	Publications []*tuple.Tuple
	// InstitutionCountry maps each institution to its (deterministic)
	// country; the Country attribute of a tuple is derived from its
	// Institution distribution through this map, which is what makes
	// the two attributes correlated (exploited by Figure 6).
	InstitutionCountry map[string]string
	Institutions       []string
	Journals           []string
	Countries          []string
}

// GenerateDBLP builds the dataset.
func GenerateDBLP(cfg DBLPConfig) (*DBLP, error) {
	if cfg.Authors <= 0 || cfg.Institutions <= 1 || cfg.MaxAlts < 1 {
		return nil, fmt.Errorf("dataset: invalid config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	d := &DBLP{
		InstitutionCountry: make(map[string]string, cfg.Institutions),
	}
	d.Countries = make([]string, cfg.Countries)
	for i := range d.Countries {
		d.Countries[i] = fmt.Sprintf("Country%02d", i)
	}
	// Pin the queried country name.
	if cfg.Countries > 5 {
		d.Countries[5] = JapanCountry
	} else {
		d.Countries[cfg.Countries-1] = JapanCountry
	}

	d.Institutions = make([]string, cfg.Institutions)
	for i := range d.Institutions {
		d.Institutions[i] = fmt.Sprintf("Inst%05d", i)
	}
	// Pin the queried institution name to a popular slot (rank 3 under
	// the Zipf popularity used below): non-selective, like MIT in DBLP.
	d.Institutions[3] = MITInstitution

	// Institutions are assigned countries with skew: low country index
	// is more common. The Zipf head of the institution catalog (the
	// handful of giants that dominate author counts) is kept out of
	// the queried country so that Query 3 (Country=Japan) remains a
	// mid-selectivity query, as it is on the real DBLP data.
	countryZipf := newZipfWeights(cfg.Countries, 1.0)
	headSize := cfg.Institutions / 20
	for i, inst := range d.Institutions {
		c := d.Countries[sampleIndex(rng, countryZipf)]
		for i < headSize && c == JapanCountry {
			c = d.Countries[sampleIndex(rng, countryZipf)]
		}
		d.InstitutionCountry[inst] = c
	}

	// Pool of institution indexes per country: search noise mostly
	// confuses institutions within the same country (a Japanese
	// author's wrong hits are mostly other Japanese institutions), so
	// later alternatives are drawn from the first pick's country pool
	// with high probability. This is the correlation structure the
	// tailored secondary access of Figure 6 exploits.
	countryPools := make(map[string][]int, cfg.Countries)
	for i, inst := range d.Institutions {
		c := d.InstitutionCountry[inst]
		countryPools[c] = append(countryPools[c], i)
	}

	instPopularity := newZipfWeights(cfg.Institutions, cfg.ZipfS)
	rankWeights := newZipfWeights(cfg.MaxAlts, cfg.ZipfS)

	d.Authors = make([]*tuple.Tuple, cfg.Authors)
	for i := 0; i < cfg.Authors; i++ {
		t, err := genAuthor(rng, uint64(i+1), fmt.Sprintf("Author%06d", i), cfg, d, instPopularity, rankWeights, countryPools)
		if err != nil {
			return nil, err
		}
		d.Authors[i] = t
	}

	// Publications: journal + the uncertain attributes of their "last
	// author" (paper: "assuming the last author represents the paper's
	// affiliation").
	d.Journals = make([]string, cfg.Journals)
	for i := range d.Journals {
		d.Journals[i] = fmt.Sprintf("Journal%04d", i)
	}
	journalWeights := newZipfWeights(cfg.Journals, 1.1)
	d.Publications = make([]*tuple.Tuple, cfg.Publications)
	for i := 0; i < cfg.Publications; i++ {
		author := d.Authors[rng.Intn(len(d.Authors))]
		inst, _ := author.Uncertain(AttrInstitution)
		country, _ := author.Uncertain(AttrCountry)
		pub := &tuple.Tuple{
			ID:        uint64(i + 1),
			Existence: author.Existence,
			Det: []tuple.DetField{
				{Name: DetJournal, Value: d.Journals[sampleIndex(rng, journalWeights)]},
			},
			Unc: []tuple.UncField{
				{Name: AttrInstitution, Dist: inst},
				{Name: AttrCountry, Dist: country},
			},
			Payload: payload(rng, cfg.PayloadSize),
		}
		d.Publications[i] = pub
	}
	return d, nil
}

func genAuthor(rng *rand.Rand, id uint64, name string, cfg DBLPConfig, d *DBLP,
	instPopularity, rankWeights []float64, countryPools map[string][]int) (*tuple.Tuple, error) {
	// Number of alternatives: long-tailed, 1..MaxAlts.
	nAlts := 1 + rng.Intn(cfg.MaxAlts)
	// The ranked institution list: the first pick is Zipf-popular; the
	// rest are search noise, drawn mostly from the same country as the
	// first pick and occasionally from anywhere.
	const sameCountryBias = 0.8
	seen := make(map[int]bool, nAlts)
	alts := make([]prob.Alternative, 0, nAlts)
	var pool []int
	for len(alts) < nAlts {
		var idx int
		switch {
		case len(alts) == 0:
			idx = sampleIndex(rng, instPopularity)
		case rng.Float64() < sameCountryBias && len(pool) > len(alts):
			idx = pool[rng.Intn(len(pool))]
		default:
			idx = rng.Intn(cfg.Institutions)
		}
		if seen[idx] {
			continue
		}
		seen[idx] = true
		if len(alts) == 0 {
			pool = countryPools[d.InstitutionCountry[d.Institutions[idx]]]
		}
		alts = append(alts, prob.Alternative{
			Value: d.Institutions[idx],
			Prob:  rankWeights[len(alts)],
		})
	}
	instDist, err := prob.NewDiscrete(alts)
	if err != nil {
		return nil, err
	}
	instDist = instDist.Normalize()

	// Country distribution: sum institution probabilities by country.
	countryAlts := make([]prob.Alternative, 0, len(instDist))
	for _, a := range instDist {
		countryAlts = append(countryAlts, prob.Alternative{
			Value: d.InstitutionCountry[a.Value],
			Prob:  a.Prob,
		})
	}
	countryDist, err := prob.NewDiscrete(countryAlts)
	if err != nil {
		return nil, err
	}

	return &tuple.Tuple{
		ID:        id,
		Existence: 0.5 + rng.Float64()*0.5, // 0.5..1.0
		Det:       []tuple.DetField{{Name: DetName, Value: name}},
		Unc: []tuple.UncField{
			{Name: AttrInstitution, Dist: instDist},
			{Name: AttrCountry, Dist: countryDist},
		},
		Payload: payload(rng, cfg.PayloadSize),
	}, nil
}

// newZipfWeights returns normalized weights w[i] ∝ 1/(i+1)^s.
func newZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// sampleIndex draws an index according to the given weights.
func sampleIndex(rng *rand.Rand, weights []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

func payload(rng *rand.Rand, n int) []byte {
	if n <= 0 {
		return nil
	}
	p := make([]byte, n)
	rng.Read(p)
	return p
}
