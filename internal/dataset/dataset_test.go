package dataset

import (
	"math"
	"reflect"
	"testing"

	"upidb/internal/prob"
)

func smallDBLP(t *testing.T) *DBLP {
	t.Helper()
	cfg := DefaultDBLPConfig()
	cfg.Authors = 2000
	cfg.Publications = 3000
	cfg.Institutions = 200
	d, err := GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDBLPBasicShape(t *testing.T) {
	d := smallDBLP(t)
	if len(d.Authors) != 2000 || len(d.Publications) != 3000 {
		t.Fatalf("sizes: %d authors, %d pubs", len(d.Authors), len(d.Publications))
	}
	for _, a := range d.Authors[:100] {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		inst, ok := a.Uncertain(AttrInstitution)
		if !ok || len(inst) == 0 || len(inst) > 10 {
			t.Fatalf("author %d institution: %+v", a.ID, inst)
		}
		if math.Abs(inst.Mass()-1) > 1e-9 {
			t.Fatalf("author %d institution mass %v", a.ID, inst.Mass())
		}
		if a.Existence < 0.5 || a.Existence > 1 {
			t.Fatalf("author %d existence %v", a.ID, a.Existence)
		}
		if _, ok := a.Uncertain(AttrCountry); !ok {
			t.Fatalf("author %d lacks country", a.ID)
		}
	}
	for _, p := range d.Publications[:100] {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if _, ok := p.DetValue(DetJournal); !ok {
			t.Fatalf("pub %d lacks journal", p.ID)
		}
	}
}

func TestDBLPDeterministic(t *testing.T) {
	cfg := DefaultDBLPConfig()
	cfg.Authors, cfg.Publications, cfg.Institutions = 500, 500, 100
	a, err := GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Authors[123], b.Authors[123]) || !reflect.DeepEqual(a.Publications[77], b.Publications[77]) {
		t.Fatal("generation not deterministic")
	}
	cfg.Seed = 99
	c, _ := GenerateDBLP(cfg)
	if reflect.DeepEqual(a.Authors[123], c.Authors[123]) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestDBLPMITIsPopular(t *testing.T) {
	d := smallDBLP(t)
	counts := make(map[string]int)
	for _, a := range d.Authors {
		inst, _ := a.Uncertain(AttrInstitution)
		counts[inst.First().Value]++
	}
	mit := counts[MITInstitution]
	if mit < len(d.Authors)/100 {
		t.Fatalf("MIT too rare for a non-selective query: %d of %d first-alternatives", mit, len(d.Authors))
	}
}

func TestDBLPLongTail(t *testing.T) {
	d := smallDBLP(t)
	// The distribution must have a long tail: a sizable share of all
	// (author, alternative) pairs have probability below 0.1, which is
	// what the cutoff index exists to absorb.
	low, total := 0, 0
	for _, a := range d.Authors {
		inst, _ := a.Uncertain(AttrInstitution)
		for _, alt := range inst {
			total++
			if alt.Prob < 0.1 {
				low++
			}
		}
	}
	if low*5 < total {
		t.Fatalf("tail too short: %d of %d alternatives below 0.1", low, total)
	}
}

func TestDBLPCountryCorrelatedWithInstitution(t *testing.T) {
	d := smallDBLP(t)
	// Correlation check: a tuple whose institution distribution is
	// concentrated on institution I must put at least that much mass
	// on I's country.
	for _, a := range d.Authors[:500] {
		inst, _ := a.Uncertain(AttrInstitution)
		country, _ := a.Uncertain(AttrCountry)
		first := inst.First()
		wantCountry := d.InstitutionCountry[first.Value]
		if country.P(wantCountry) < first.Prob-1e-9 {
			t.Fatalf("author %d: country %s has %v < institution prob %v",
				a.ID, wantCountry, country.P(wantCountry), first.Prob)
		}
	}
}

func TestDBLPInvalidConfig(t *testing.T) {
	if _, err := GenerateDBLP(DBLPConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := DefaultDBLPConfig()
	cfg.MaxAlts = 0
	if _, err := GenerateDBLP(cfg); err == nil {
		t.Fatal("MaxAlts=0 accepted")
	}
}

func TestScaled(t *testing.T) {
	cfg := DefaultDBLPConfig().Scaled(0.1)
	if cfg.Authors != 7000 || cfg.Publications != 13000 {
		t.Fatalf("scaled: %+v", cfg)
	}
	cc := DefaultCartelConfig().Scaled(0.01)
	if cc.Observations != 1500 {
		t.Fatalf("scaled cartel: %+v", cc)
	}
}

func smallCartel(t *testing.T) *Cartel {
	t.Helper()
	cfg := DefaultCartelConfig()
	cfg.Observations = 2000
	cfg.GridN = 10
	c, err := GenerateCartel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCartelBasicShape(t *testing.T) {
	c := smallCartel(t)
	if len(c.Observations) != 2000 {
		t.Fatalf("observations: %d", len(c.Observations))
	}
	wantSegs := 2 * 10 * 9 // horizontal + vertical
	if len(c.Segments) != wantSegs {
		t.Fatalf("segments: %d want %d", len(c.Segments), wantSegs)
	}
	for _, o := range c.Observations[:200] {
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
		if math.Abs(o.Segment.Mass()-1) > 1e-9 {
			t.Fatalf("obs %d segment mass %v", o.ID, o.Segment.Mass())
		}
		if len(o.Segment) > 4 {
			t.Fatalf("obs %d has %d segment alternatives", o.ID, len(o.Segment))
		}
	}
}

func TestCartelLocationsWithinExtendedGrid(t *testing.T) {
	c := smallCartel(t)
	slack := 200.0 // GPS error can push centers slightly off-grid
	for _, o := range c.Observations {
		p := o.Loc.Center
		if p.X < c.Extent.MinX-slack || p.X > c.Extent.MaxX+slack ||
			p.Y < c.Extent.MinY-slack || p.Y > c.Extent.MaxY+slack {
			t.Fatalf("obs %d at %+v far outside grid %+v", o.ID, p, c.Extent)
		}
	}
}

func TestCartelSegmentCorrelatedWithLocation(t *testing.T) {
	c := smallCartel(t)
	segByID := make(map[string]Segment, len(c.Segments))
	for _, s := range c.Segments {
		segByID[s.ID] = s
	}
	for _, o := range c.Observations[:300] {
		best := o.Segment.First()
		seg := segByID[best.Value]
		if d := distToSegment(o.Loc.Center, seg); d > o.Loc.Bound {
			t.Fatalf("obs %d: top segment %s is %vm away (bound %v)", o.ID, best.Value, d, o.Loc.Bound)
		}
	}
}

func TestCartelTrafficSkewedDowntown(t *testing.T) {
	c := smallCartel(t)
	inner, outer := 0, 0
	half := (c.Extent.MaxX - c.Extent.MinX) / 2
	for _, o := range c.Observations {
		if o.Loc.Center.Dist(prob.Point{}) < half/2 {
			inner++
		} else {
			outer++
		}
	}
	// The inner quarter-radius disk covers ~1/4 of the area (π/16 of
	// the square) but should hold disproportionate traffic.
	if inner < len(c.Observations)/4 {
		t.Fatalf("downtown skew missing: inner=%d outer=%d", inner, outer)
	}
}

func TestCartelDeterministic(t *testing.T) {
	cfg := DefaultCartelConfig()
	cfg.Observations, cfg.GridN = 300, 6
	a, _ := GenerateCartel(cfg)
	b, _ := GenerateCartel(cfg)
	if !reflect.DeepEqual(a.Observations[42], b.Observations[42]) {
		t.Fatal("cartel generation not deterministic")
	}
}

func TestCartelInvalidConfig(t *testing.T) {
	if _, err := GenerateCartel(CartelConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := DefaultCartelConfig()
	cfg.Bound = cfg.Sigma / 2
	if _, err := GenerateCartel(cfg); err == nil {
		t.Fatal("bound <= sigma accepted")
	}
}

func TestDistToSegment(t *testing.T) {
	s := Segment{A: prob.Point{X: 0, Y: 0}, B: prob.Point{X: 10, Y: 0}}
	cases := []struct {
		p    prob.Point
		want float64
	}{
		{prob.Point{X: 5, Y: 3}, 3},
		{prob.Point{X: -4, Y: 0}, 4},
		{prob.Point{X: 13, Y: 4}, 5},
		{prob.Point{X: 5, Y: 0}, 0},
	}
	for _, c := range cases {
		if got := distToSegment(c.p, s); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("dist(%+v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Degenerate segment.
	pt := Segment{A: prob.Point{X: 1, Y: 1}, B: prob.Point{X: 1, Y: 1}}
	if got := distToSegment(prob.Point{X: 4, Y: 5}, pt); math.Abs(got-5) > 1e-9 {
		t.Fatalf("degenerate dist = %v", got)
	}
}
