// Package rtree implements a page-based R-Tree over 2-D rectangles,
// the substrate for the U-Tree baseline and the continuous UPI
// (paper Section 5). Nodes live on small pages (4 KiB by default,
// matching the paper's Figure 2) accessed through a storage.Pager, so
// every node touch is charged to the simulated disk.
//
// Leaf entries carry an auxiliary fixed-size payload (Aux) used by the
// U-Tree layer to embed precomputed probabilistically-constrained
// region radii directly in the entries, the way Tao et al.'s U-Tree
// fattens R*-Tree entries with PCRs.
package rtree

import (
	"encoding/binary"
	"fmt"
	"iter"
	"math"
	"sort"

	"upidb/internal/prob"
	"upidb/internal/storage"
)

// AuxSize is the number of float64 auxiliary values stored per entry.
const AuxSize = 4

// Entry is one slot of a node: a bounding rectangle plus either a
// child page (internal nodes) or a data ID and aux payload (leaves).
type Entry struct {
	MBR   prob.Rect
	Child storage.PageID // internal nodes
	Data  uint64         // leaf nodes
	Aux   [AuxSize]float64
}

const (
	nodeInternal = 0
	nodeLeaf     = 1

	// entryBytes: 4 float64 MBR + 8 id/child + AuxSize float64 aux.
	entryBytes = 32 + 8 + AuxSize*8
	headerSize = 1 + 2 // type + count

	metaMagic = 0x55525452 // "URTR"
)

type node struct {
	id      storage.PageID
	leaf    bool
	entries []Entry
}

func (n *node) mbr() prob.Rect {
	r := n.entries[0].MBR
	for _, e := range n.entries[1:] {
		r = r.Union(e.MBR)
	}
	return r
}

// Tree is a page-based R-Tree. Not safe for concurrent use.
type Tree struct {
	pager  *storage.Pager
	root   storage.PageID
	height int // 1 = root is a leaf
	count  int64
}

// MaxEntries returns the node fan-out for the tree's page size.
func (t *Tree) MaxEntries() int { return (t.pager.PageSize() - headerSize) / entryBytes }

func (t *Tree) minEntries() int { return t.MaxEntries() * 2 / 5 } // R*-Tree's 40%

// Create initializes an empty tree: page 0 meta, page 1 root leaf.
func Create(p *storage.Pager) (*Tree, error) {
	if p.NumPages() != 0 {
		return nil, fmt.Errorf("rtree: create on non-empty file %s", p.File().Name())
	}
	if _, _, err := p.Alloc(); err != nil {
		return nil, err
	}
	rootID, _, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	t := &Tree{pager: p, root: rootID, height: 1}
	if err := t.writeNode(&node{id: rootID, leaf: true}); err != nil {
		return nil, err
	}
	return t, t.writeMeta()
}

// Open loads an existing tree.
func Open(p *storage.Pager) (*Tree, error) {
	buf, err := p.Read(0)
	if err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(buf) != metaMagic {
		return nil, fmt.Errorf("rtree: %s is not an rtree file", p.File().Name())
	}
	return &Tree{
		pager:  p,
		root:   storage.PageID(binary.BigEndian.Uint32(buf[4:])),
		height: int(binary.BigEndian.Uint32(buf[8:])),
		count:  int64(binary.BigEndian.Uint64(buf[12:])),
	}, nil
}

// Count returns the number of data entries.
func (t *Tree) Count() int64 { return t.count }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// Pager exposes the underlying pager.
func (t *Tree) Pager() *storage.Pager { return t.pager }

func (t *Tree) writeMeta() error {
	buf := make([]byte, t.pager.PageSize())
	binary.BigEndian.PutUint32(buf, metaMagic)
	binary.BigEndian.PutUint32(buf[4:], uint32(t.root))
	binary.BigEndian.PutUint32(buf[8:], uint32(t.height))
	binary.BigEndian.PutUint64(buf[12:], uint64(t.count))
	return t.pager.Write(0, buf)
}

func (t *Tree) writeNode(n *node) error {
	if len(n.entries) > t.MaxEntries() {
		return fmt.Errorf("rtree: node %d overflows: %d > %d", n.id, len(n.entries), t.MaxEntries())
	}
	buf := make([]byte, t.pager.PageSize())
	if n.leaf {
		buf[0] = nodeLeaf
	} else {
		buf[0] = nodeInternal
	}
	binary.BigEndian.PutUint16(buf[1:], uint16(len(n.entries)))
	off := headerSize
	for _, e := range n.entries {
		for _, f := range []float64{e.MBR.MinX, e.MBR.MinY, e.MBR.MaxX, e.MBR.MaxY} {
			binary.BigEndian.PutUint64(buf[off:], math.Float64bits(f))
			off += 8
		}
		if n.leaf {
			binary.BigEndian.PutUint64(buf[off:], e.Data)
		} else {
			binary.BigEndian.PutUint64(buf[off:], uint64(e.Child))
		}
		off += 8
		for _, f := range e.Aux {
			binary.BigEndian.PutUint64(buf[off:], math.Float64bits(f))
			off += 8
		}
	}
	return t.pager.Write(n.id, buf)
}

func (t *Tree) readNode(id storage.PageID) (*node, error) {
	buf, err := t.pager.Read(id)
	if err != nil {
		return nil, err
	}
	if buf[0] != nodeLeaf && buf[0] != nodeInternal {
		return nil, fmt.Errorf("rtree: page %d has bad node type %d", id, buf[0])
	}
	n := &node{id: id, leaf: buf[0] == nodeLeaf}
	cnt := int(binary.BigEndian.Uint16(buf[1:]))
	n.entries = make([]Entry, cnt)
	off := headerSize
	for i := 0; i < cnt; i++ {
		e := &n.entries[i]
		e.MBR.MinX = math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
		e.MBR.MinY = math.Float64frombits(binary.BigEndian.Uint64(buf[off+8:]))
		e.MBR.MaxX = math.Float64frombits(binary.BigEndian.Uint64(buf[off+16:]))
		e.MBR.MaxY = math.Float64frombits(binary.BigEndian.Uint64(buf[off+24:]))
		off += 32
		if n.leaf {
			e.Data = binary.BigEndian.Uint64(buf[off:])
		} else {
			e.Child = storage.PageID(binary.BigEndian.Uint64(buf[off:]))
		}
		off += 8
		for j := 0; j < AuxSize; j++ {
			e.Aux[j] = math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return n, nil
}

func (t *Tree) allocNode(leaf bool) (*node, error) {
	id, _, err := t.pager.Alloc()
	if err != nil {
		return nil, err
	}
	return &node{id: id, leaf: leaf}, nil
}

// Search visits every leaf entry whose MBR intersects r. fn returning
// false stops the search.
func (t *Tree) Search(r prob.Rect, fn func(e Entry) bool) error {
	_, err := t.search(t.root, r, fn)
	return err
}

func (t *Tree) search(id storage.PageID, r prob.Rect, fn func(e Entry) bool) (bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	for _, e := range n.entries {
		if !e.MBR.Intersects(r) {
			continue
		}
		if n.leaf {
			if !fn(e) {
				return false, nil
			}
		} else {
			cont, err := t.search(e.Child, r, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

// SearchLeaves visits matching entries grouped by their leaf node, in
// DFS order. The continuous UPI uses the grouping to read one heap
// region per leaf (Section 5).
func (t *Tree) SearchLeaves(r prob.Rect, fn func(leafID storage.PageID, matches []Entry) bool) error {
	_, err := t.searchLeaves(t.root, r, fn)
	return err
}

func (t *Tree) searchLeaves(id storage.PageID, r prob.Rect, fn func(storage.PageID, []Entry) bool) (bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if n.leaf {
		var matches []Entry
		for _, e := range n.entries {
			if e.MBR.Intersects(r) {
				matches = append(matches, e)
			}
		}
		if len(matches) == 0 {
			return true, nil
		}
		return fn(n.id, matches), nil
	}
	for _, e := range n.entries {
		if !e.MBR.Intersects(r) {
			continue
		}
		cont, err := t.searchLeaves(e.Child, r, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// LeafHit is one element of a LeafCursor stream: a leaf page and its
// entries that matched the query rectangle.
type LeafHit struct {
	Leaf    storage.PageID
	Matches []Entry
}

// LeafCursor is a pull-based leaf enumeration: the cursor walks the
// tree in DFS order, but node pages are read only as Next demands
// them, so an abandoned cursor never touches the subtrees it did not
// reach — the candidate-enumeration substrate spatial result streaming
// is built on. A LeafCursor is single-consumer; Close releases it
// without draining (idempotent, implied by exhaustion or error).
type LeafCursor struct {
	next func() (LeafHit, error, bool)
	stop func()
	done bool
	err  error
}

// LeafCursor starts a lazy SearchLeaves(r): the same leaves, in the
// same DFS order, delivered one Next call at a time.
func (t *Tree) LeafCursor(r prob.Rect) *LeafCursor {
	c := &LeafCursor{}
	seq := func(yield func(LeafHit, error) bool) {
		err := t.SearchLeaves(r, func(id storage.PageID, matches []Entry) bool {
			return yield(LeafHit{Leaf: id, Matches: matches}, nil)
		})
		if err != nil {
			yield(LeafHit{}, err)
		}
	}
	c.next, c.stop = iter.Pull2(seq)
	return c
}

// Next returns the next matching leaf. ok is false when the traversal
// is exhausted or failed; err is non-nil exactly once, on failure, and
// sticky afterwards.
func (c *LeafCursor) Next() (LeafHit, bool, error) {
	if c.done {
		return LeafHit{}, false, c.err
	}
	h, err, ok := c.next()
	if !ok {
		c.done = true
		c.stop()
		return LeafHit{}, false, nil
	}
	if err != nil {
		c.done = true
		c.err = err
		c.stop()
		return LeafHit{}, false, err
	}
	return h, true, nil
}

// Close releases the cursor without draining it; unvisited subtrees
// are never read. Idempotent.
func (c *LeafCursor) Close() {
	if !c.done {
		c.done = true
		c.stop()
	}
}

// Leaves visits every leaf in DFS order ("hierarchical node location"
// order), which is the clustering order of the continuous UPI heap.
func (t *Tree) Leaves(fn func(leafID storage.PageID, entries []Entry) bool) error {
	_, err := t.leaves(t.root, fn)
	return err
}

func (t *Tree) leaves(id storage.PageID, fn func(storage.PageID, []Entry) bool) (bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if n.leaf {
		return fn(n.id, n.entries), nil
	}
	for _, e := range n.entries {
		cont, err := t.leaves(e.Child, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// Insert adds a leaf entry, splitting nodes as needed (quadratic
// split, ChooseSubtree by least area enlargement).
func (t *Tree) Insert(e Entry) error {
	splitRoot, err := t.insert(t.root, e, t.height)
	if err != nil {
		return err
	}
	if splitRoot != nil {
		oldRoot, err := t.readNode(t.root)
		if err != nil {
			return err
		}
		newRoot, err := t.allocNode(false)
		if err != nil {
			return err
		}
		newNode, err := t.readNode(*splitRoot)
		if err != nil {
			return err
		}
		newRoot.entries = []Entry{
			{MBR: oldRoot.mbr(), Child: t.root},
			{MBR: newNode.mbr(), Child: *splitRoot},
		}
		if err := t.writeNode(newRoot); err != nil {
			return err
		}
		t.root = newRoot.id
		t.height++
	}
	t.count++
	return t.writeMeta()
}

// insert descends level levels; returns the page ID of a new sibling
// if the visited node split.
func (t *Tree) insert(id storage.PageID, e Entry, level int) (*storage.PageID, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		n.entries = append(n.entries, e)
		return t.splitIfNeeded(n)
	}
	// ChooseSubtree: least area enlargement, then least area.
	best, bestEnl, bestArea := -1, math.Inf(1), math.Inf(1)
	for i, c := range n.entries {
		enl := c.MBR.Union(e.MBR).Area() - c.MBR.Area()
		area := c.MBR.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	child := n.entries[best].Child
	split, err := t.insert(child, e, level-1)
	if err != nil {
		return nil, err
	}
	// Refresh the chosen child's MBR.
	cn, err := t.readNode(child)
	if err != nil {
		return nil, err
	}
	n.entries[best].MBR = cn.mbr()
	if split != nil {
		sn, err := t.readNode(*split)
		if err != nil {
			return nil, err
		}
		n.entries = append(n.entries, Entry{MBR: sn.mbr(), Child: *split})
	}
	return t.splitIfNeeded(n)
}

func (t *Tree) splitIfNeeded(n *node) (*storage.PageID, error) {
	if len(n.entries) <= t.MaxEntries() {
		return nil, t.writeNode(n)
	}
	right, err := t.allocNode(n.leaf)
	if err != nil {
		return nil, err
	}
	t.quadraticSplit(n, right)
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	return &right.id, nil
}

// quadraticSplit distributes n's entries between n and right using
// Guttman's quadratic algorithm with the R*-style minimum fill.
func (t *Tree) quadraticSplit(n, right *node) {
	entries := n.entries
	// Pick seeds: the pair wasting the most area together.
	s1, s2, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].MBR.Union(entries[j].MBR).Area() - entries[i].MBR.Area() - entries[j].MBR.Area()
			if d > worst {
				s1, s2, worst = i, j, d
			}
		}
	}
	g1 := []Entry{entries[s1]}
	g2 := []Entry{entries[s2]}
	r1, r2 := entries[s1].MBR, entries[s2].MBR
	minFill := t.minEntries()
	rest := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force-assign when one group must take everything remaining.
		if len(g1)+len(rest) == minFill {
			g1 = append(g1, rest...)
			break
		}
		if len(g2)+len(rest) == minFill {
			g2 = append(g2, rest...)
			break
		}
		// Pick the entry with the greatest preference difference.
		bestIdx, bestDiff := 0, math.Inf(-1)
		for i, e := range rest {
			d1 := r1.Union(e.MBR).Area() - r1.Area()
			d2 := r2.Union(e.MBR).Area() - r2.Area()
			if diff := math.Abs(d1 - d2); diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1 := r1.Union(e.MBR).Area() - r1.Area()
		d2 := r2.Union(e.MBR).Area() - r2.Area()
		if d1 < d2 || (d1 == d2 && len(g1) < len(g2)) {
			g1 = append(g1, e)
			r1 = r1.Union(e.MBR)
		} else {
			g2 = append(g2, e)
			r2 = r2.Union(e.MBR)
		}
	}
	n.entries = g1
	right.entries = g2
}

// BulkLoad builds the tree from scratch with Sort-Tile-Recursive
// packing: leaves come out spatially clustered and are written in
// strictly increasing page order, so DFS leaf order, spatial order and
// physical file order all agree — the property the continuous UPI's
// heap clustering relies on.
func (t *Tree) BulkLoad(entries []Entry) error {
	if t.count != 0 {
		return fmt.Errorf("rtree: bulk load on non-empty tree")
	}
	if len(entries) == 0 {
		return nil
	}
	cap := int(float64(t.MaxEntries()) * 0.8)
	if cap < 2 {
		cap = 2
	}
	level := strPack(entries, cap)
	// Write leaves.
	type built struct {
		id  storage.PageID
		mbr prob.Rect
	}
	cur := make([]built, 0, len(level))
	// Reuse the pre-allocated root page for the first leaf to avoid
	// orphaning it.
	for i, group := range level {
		var n *node
		if i == 0 {
			n = &node{id: t.root, leaf: true, entries: group}
		} else {
			var err error
			if n, err = t.allocNode(true); err != nil {
				return err
			}
			n.entries = group
		}
		if err := t.writeNode(n); err != nil {
			return err
		}
		cur = append(cur, built{id: n.id, mbr: n.mbr()})
	}
	t.height = 1
	// Build internal levels.
	for len(cur) > 1 {
		var parents []built
		for i := 0; i < len(cur); i += cap {
			end := i + cap
			if end > len(cur) {
				end = len(cur)
			}
			p, err := t.allocNode(false)
			if err != nil {
				return err
			}
			for _, c := range cur[i:end] {
				p.entries = append(p.entries, Entry{MBR: c.mbr, Child: c.id})
			}
			if err := t.writeNode(p); err != nil {
				return err
			}
			parents = append(parents, built{id: p.id, mbr: p.mbr()})
		}
		cur = parents
		t.height++
	}
	t.root = cur[0].id
	t.count = int64(len(entries))
	return t.writeMeta()
}

// strPack groups entries into leaf-sized runs by Sort-Tile-Recursive:
// sort by center X, cut into vertical slices, sort each slice by
// center Y, cut into runs.
func strPack(entries []Entry, cap int) [][]Entry {
	es := append([]Entry(nil), entries...)
	nLeaves := (len(es) + cap - 1) / cap
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := nSlices * cap
	sort.Slice(es, func(i, j int) bool {
		return es[i].MBR.Center().X < es[j].MBR.Center().X
	})
	var out [][]Entry
	for s := 0; s < len(es); s += sliceSize {
		end := s + sliceSize
		if end > len(es) {
			end = len(es)
		}
		slice := es[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].MBR.Center().Y < slice[j].MBR.Center().Y
		})
		for i := 0; i < len(slice); i += cap {
			e := i + cap
			if e > len(slice) {
				e = len(slice)
			}
			out = append(out, append([]Entry(nil), slice[i:e]...))
		}
	}
	return out
}
