package rtree

import (
	"math/rand"
	"testing"

	"upidb/internal/prob"
	"upidb/internal/sim"
	"upidb/internal/storage"
)

func newTestTree(t *testing.T, pageSize int) *Tree {
	t.Helper()
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	p, err := storage.NewPager(fs.Create("r"), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func rectAt(x, y, half float64) prob.Rect {
	return prob.Rect{MinX: x - half, MinY: y - half, MaxX: x + half, MaxY: y + half}
}

// randomEntries returns n entries with centers in [0, extent)².
func randomEntries(rng *rand.Rand, n int, extent float64) []Entry {
	es := make([]Entry, n)
	for i := range es {
		x := rng.Float64() * extent
		y := rng.Float64() * extent
		es[i] = Entry{MBR: rectAt(x, y, 1+rng.Float64()*3), Data: uint64(i + 1)}
	}
	return es
}

// bruteMatches returns the IDs of entries intersecting q.
func bruteMatches(es []Entry, q prob.Rect) map[uint64]bool {
	out := make(map[uint64]bool)
	for _, e := range es {
		if e.MBR.Intersects(q) {
			out[e.Data] = true
		}
	}
	return out
}

func checkSearch(t *testing.T, tr *Tree, es []Entry, queries int, rng *rand.Rand, extent float64) {
	t.Helper()
	for q := 0; q < queries; q++ {
		query := rectAt(rng.Float64()*extent, rng.Float64()*extent, 5+rng.Float64()*40)
		want := bruteMatches(es, query)
		got := make(map[uint64]bool)
		err := tr.Search(query, func(e Entry) bool {
			got[e.Data] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d matches, want %d", q, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("query %d: missing id %d", q, id)
			}
		}
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := newTestTree(t, 4096)
	es := []Entry{
		{MBR: rectAt(10, 10, 2), Data: 1},
		{MBR: rectAt(50, 50, 2), Data: 2},
		{MBR: rectAt(90, 10, 2), Data: 3},
	}
	for _, e := range es {
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != 3 {
		t.Fatalf("count = %d", tr.Count())
	}
	got := 0
	tr.Search(rectAt(10, 10, 5), func(e Entry) bool {
		if e.Data != 1 {
			t.Fatalf("wrong match %d", e.Data)
		}
		got++
		return true
	})
	if got != 1 {
		t.Fatalf("matches = %d", got)
	}
	// Disjoint query.
	tr.Search(rectAt(200, 200, 5), func(Entry) bool {
		t.Fatal("unexpected match")
		return false
	})
}

func TestInsertManyWithSplits(t *testing.T) {
	tr := newTestTree(t, 512) // small pages force splits
	rng := rand.New(rand.NewSource(3))
	es := randomEntries(rng, 2000, 1000)
	for _, e := range es {
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("expected splits, height = %d", tr.Height())
	}
	checkSearch(t, tr, es, 40, rng, 1000)
}

func TestBulkLoadMatchesBrute(t *testing.T) {
	tr := newTestTree(t, 512)
	rng := rand.New(rand.NewSource(5))
	es := randomEntries(rng, 3000, 1000)
	if err := tr.BulkLoad(es); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 3000 {
		t.Fatalf("count = %d", tr.Count())
	}
	checkSearch(t, tr, es, 40, rng, 1000)
}

func TestBulkLoadThenInsert(t *testing.T) {
	tr := newTestTree(t, 512)
	rng := rand.New(rand.NewSource(7))
	es := randomEntries(rng, 500, 500)
	if err := tr.BulkLoad(es); err != nil {
		t.Fatal(err)
	}
	extra := randomEntries(rng, 300, 500)
	for i := range extra {
		extra[i].Data = uint64(10000 + i)
		if err := tr.Insert(extra[i]); err != nil {
			t.Fatal(err)
		}
	}
	all := append(append([]Entry(nil), es...), extra...)
	checkSearch(t, tr, all, 30, rng, 500)
}

func TestSearchEarlyStop(t *testing.T) {
	tr := newTestTree(t, 512)
	rng := rand.New(rand.NewSource(9))
	es := randomEntries(rng, 500, 100)
	tr.BulkLoad(es)
	n := 0
	tr.Search(prob.Rect{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}, func(Entry) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestLeavesDFSCoversAll(t *testing.T) {
	tr := newTestTree(t, 512)
	rng := rand.New(rand.NewSource(11))
	es := randomEntries(rng, 1500, 800)
	tr.BulkLoad(es)
	seen := make(map[uint64]bool)
	leafCount := 0
	err := tr.Leaves(func(id storage.PageID, entries []Entry) bool {
		leafCount++
		if len(entries) == 0 {
			t.Fatal("empty leaf")
		}
		for _, e := range entries {
			if seen[e.Data] {
				t.Fatalf("duplicate data %d", e.Data)
			}
			seen[e.Data] = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1500 {
		t.Fatalf("leaves covered %d entries", len(seen))
	}
	if leafCount < 10 {
		t.Fatalf("suspiciously few leaves: %d", leafCount)
	}
}

// TestBulkLoadLeafOrderIsPhysicalOrder: DFS leaf order must equal
// increasing page order after an STR bulk load — the invariant the
// continuous UPI heap clustering depends on.
func TestBulkLoadLeafOrderIsPhysicalOrder(t *testing.T) {
	tr := newTestTree(t, 512)
	rng := rand.New(rand.NewSource(13))
	tr.BulkLoad(randomEntries(rng, 2000, 1000))
	var prev storage.PageID
	first := true
	tr.Leaves(func(id storage.PageID, _ []Entry) bool {
		if !first && id <= prev {
			t.Fatalf("leaf pages out of order: %d then %d", prev, id)
		}
		prev, first = id, false
		return true
	})
}

// TestBulkLoadClustering: neighbors in space should mostly share or
// neighbor leaves, measured by average leaf MBR area versus the whole
// extent.
func TestBulkLoadClustering(t *testing.T) {
	tr := newTestTree(t, 512)
	rng := rand.New(rand.NewSource(15))
	es := randomEntries(rng, 4000, 1000)
	tr.BulkLoad(es)
	var totalArea float64
	leaves := 0
	tr.Leaves(func(_ storage.PageID, entries []Entry) bool {
		r := entries[0].MBR
		for _, e := range entries[1:] {
			r = r.Union(e.MBR)
		}
		totalArea += r.Area()
		leaves++
		return true
	})
	avg := totalArea / float64(leaves)
	if avg > 1000*1000/8 {
		t.Fatalf("leaves badly clustered: avg MBR area %v", avg)
	}
}

func TestAuxRoundTrip(t *testing.T) {
	tr := newTestTree(t, 4096)
	e := Entry{MBR: rectAt(5, 5, 1), Data: 42, Aux: [AuxSize]float64{1.5, 2.5, 3.5, 4.5}}
	if err := tr.Insert(e); err != nil {
		t.Fatal(err)
	}
	found := false
	tr.Search(rectAt(5, 5, 2), func(got Entry) bool {
		found = true
		if got.Aux != e.Aux || got.Data != 42 {
			t.Fatalf("aux lost: %+v", got)
		}
		return true
	})
	if !found {
		t.Fatal("entry not found")
	}
}

func TestOpenPersisted(t *testing.T) {
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	p, _ := storage.NewPager(fs.Create("r"), 512)
	tr, _ := Create(p)
	rng := rand.New(rand.NewSource(17))
	es := randomEntries(rng, 400, 300)
	tr.BulkLoad(es)
	p.Flush()

	f, _ := fs.Open("r")
	p2, _ := storage.NewPager(f, 512)
	tr2, err := Open(p2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Count() != 400 || tr2.Height() != tr.Height() {
		t.Fatalf("reopened: count=%d height=%d", tr2.Count(), tr2.Height())
	}
	checkSearch(t, tr2, es, 20, rng, 300)

	junk := fs.Create("junk")
	junk.WriteAt(make([]byte, 512), 0)
	pj, _ := storage.NewPager(junk, 512)
	if _, err := Open(pj); err == nil {
		t.Fatal("junk accepted")
	}
}

// TestLeafCursorMatchesSearchLeaves: the pull-based cursor must visit
// exactly the leaves SearchLeaves visits, in the same DFS order, and
// survive early abandonment.
func TestLeafCursorMatchesSearchLeaves(t *testing.T) {
	tr := newTestTree(t, 512)
	rng := rand.New(rand.NewSource(7))
	if err := tr.BulkLoad(randomEntries(rng, 900, 1000)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := tr.Insert(Entry{MBR: rectAt(rng.Float64()*1000, rng.Float64()*1000, 2), Data: uint64(10_000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []prob.Rect{rectAt(200, 300, 150), rectAt(500, 500, 600), rectAt(-50, -50, 10)} {
		type hit struct {
			leaf storage.PageID
			ids  []uint64
		}
		var want []hit
		err := tr.SearchLeaves(q, func(id storage.PageID, es []Entry) bool {
			h := hit{leaf: id}
			for _, e := range es {
				h.ids = append(h.ids, e.Data)
			}
			want = append(want, h)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		c := tr.LeafCursor(q)
		var got []hit
		for {
			lh, ok, err := c.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			h := hit{leaf: lh.Leaf}
			for _, e := range lh.Matches {
				h.ids = append(h.ids, e.Data)
			}
			got = append(got, h)
		}
		if len(got) != len(want) {
			t.Fatalf("query %+v: %d leaves vs %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].leaf != want[i].leaf || len(got[i].ids) != len(want[i].ids) {
				t.Fatalf("query %+v leaf %d differs", q, i)
			}
			for j := range got[i].ids {
				if got[i].ids[j] != want[i].ids[j] {
					t.Fatalf("query %+v leaf %d entry %d differs", q, i, j)
				}
			}
		}
		// Early abandonment must not wedge or error later cursors.
		c2 := tr.LeafCursor(q)
		if len(want) > 0 {
			if _, ok, err := c2.Next(); err != nil || !ok {
				t.Fatalf("partial cursor first pull: ok=%v err=%v", ok, err)
			}
		}
		c2.Close()
		c2.Close() // idempotent
		if _, ok, err := c2.Next(); ok || err != nil {
			t.Fatalf("pull after Close: ok=%v err=%v", ok, err)
		}
	}
}
