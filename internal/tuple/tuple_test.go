package tuple

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"upidb/internal/prob"
)

func sampleTuple() *Tuple {
	inst, _ := prob.NewDiscrete([]prob.Alternative{
		{Value: "Brown", Prob: 0.8}, {Value: "MIT", Prob: 0.2},
	})
	country, _ := prob.NewDiscrete([]prob.Alternative{{Value: "US", Prob: 1.0}})
	return &Tuple{
		ID:        42,
		Existence: 0.9,
		Det:       []DetField{{Name: "Name", Value: "Alice"}},
		Unc: []UncField{
			{Name: "Institution", Dist: inst},
			{Name: "Country", Dist: country},
		},
		Payload: bytes.Repeat([]byte{0xAB}, 64),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := sampleTuple()
	enc := Encode(orig)
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip mismatch:\norig %+v\ngot  %+v", orig, got)
	}
}

func TestEncodeDecodeMinimal(t *testing.T) {
	orig := &Tuple{ID: 1, Existence: 1}
	got, err := Decode(Encode(orig))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 1 || got.Existence != 1 || got.Det != nil || got.Unc != nil || got.Payload != nil {
		t.Fatalf("minimal round trip: %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	enc := Encode(sampleTuple())
	for _, n := range []int{0, 5, 10, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestAccessors(t *testing.T) {
	tp := sampleTuple()
	if v, ok := tp.DetValue("Name"); !ok || v != "Alice" {
		t.Fatalf("DetValue: %q %v", v, ok)
	}
	if _, ok := tp.DetValue("Nope"); ok {
		t.Fatal("missing det field found")
	}
	d, ok := tp.Uncertain("Institution")
	if !ok || d.First().Value != "Brown" {
		t.Fatalf("Uncertain: %+v %v", d, ok)
	}
	if _, ok := tp.Uncertain("Nope"); ok {
		t.Fatal("missing unc field found")
	}
	// Alice@MIT confidence: 0.9 * 0.2 = 0.18 (paper running example).
	if c := tp.Confidence("Institution", "MIT"); math.Abs(c-0.18) > 1e-12 {
		t.Fatalf("confidence = %v", c)
	}
	if c := tp.Confidence("Nope", "X"); c != 0 {
		t.Fatalf("confidence of missing attr = %v", c)
	}
}

func TestValidate(t *testing.T) {
	tp := sampleTuple()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sampleTuple()
	bad.Existence = 1.5
	if bad.Validate() == nil {
		t.Fatal("bad existence accepted")
	}
	bad2 := sampleTuple()
	bad2.Unc[0].Dist = nil
	if bad2.Validate() == nil {
		t.Fatal("empty distribution accepted")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := Encode(sampleTuple())
	b := Encode(sampleTuple())
	if !bytes.Equal(a, b) {
		t.Fatal("encoding not deterministic")
	}
}

// Property: any tuple built from quick-generated fields round-trips.
func TestRoundTripProperty(t *testing.T) {
	f := func(id uint64, name, v1, v2 string, p1 uint8, payload []byte) bool {
		prob1 := float64(p1%99+1) / 100
		if v1 == v2 {
			v2 += "x"
		}
		d, err := prob.NewDiscrete([]prob.Alternative{
			{Value: v1, Prob: prob1 / 2}, {Value: v2, Prob: prob1 / 2},
		})
		if err != nil {
			return false
		}
		orig := &Tuple{
			ID:        id,
			Existence: prob1,
			Det:       []DetField{{Name: "Name", Value: name}},
			Unc:       []UncField{{Name: "A", Dist: d}},
			Payload:   payload,
		}
		got, err := Decode(Encode(orig))
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			got.Payload = orig.Payload // nil vs empty slice
		}
		return reflect.DeepEqual(orig, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func sampleObservation() *Observation {
	seg, _ := prob.NewDiscrete([]prob.Alternative{
		{Value: "seg-00123", Prob: 0.7}, {Value: "seg-00124", Prob: 0.3},
	})
	return &Observation{
		ID:        7,
		Loc:       prob.ConstrainedGaussian{Center: prob.Point{X: 1500, Y: -800}, Sigma: 20, Bound: 100},
		Segment:   seg,
		Speed:     13.4,
		Direction: 1.57,
		Payload:   bytes.Repeat([]byte{1}, 32),
	}
}

func TestObservationRoundTrip(t *testing.T) {
	orig := sampleObservation()
	if err := orig.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeObservation(EncodeObservation(orig))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip mismatch:\norig %+v\ngot  %+v", orig, got)
	}
}

func TestObservationDecodeErrors(t *testing.T) {
	enc := EncodeObservation(sampleObservation())
	for _, n := range []int{0, 8, 20, len(enc) - 1} {
		if _, err := DecodeObservation(enc[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
	if _, err := DecodeObservation(append(enc, 9)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestObservationValidate(t *testing.T) {
	bad := sampleObservation()
	bad.Segment = nil
	if bad.Validate() == nil {
		t.Fatal("empty segment accepted")
	}
	bad2 := sampleObservation()
	bad2.Loc.Sigma = -1
	if bad2.Validate() == nil {
		t.Fatal("bad sigma accepted")
	}
}
