package tuple

import (
	"encoding/binary"
	"fmt"
	"math"

	"upidb/internal/prob"
)

// Observation is one uncertain car observation from the Cartel-style
// dataset (paper Section 7.1): a constrained-Gaussian location, an
// uncertain road-segment attribute derived from the location, speed
// and direction estimates, and an opaque payload.
type Observation struct {
	ID        uint64
	Loc       prob.ConstrainedGaussian
	Segment   prob.Discrete // uncertain road segment IDs, encoded as strings
	Speed     float64       // m/s
	Direction float64       // radians
	Payload   []byte
}

// Validate checks probability invariants.
func (o *Observation) Validate() error {
	if err := o.Loc.Validate(); err != nil {
		return fmt.Errorf("observation %d: %w", o.ID, err)
	}
	if len(o.Segment) == 0 {
		return fmt.Errorf("observation %d: no segment alternatives", o.ID)
	}
	return o.Segment.Validate()
}

// AppendEncodeObservation appends the binary encoding of o to dst.
func AppendEncodeObservation(dst []byte, o *Observation) []byte {
	dst = binary.BigEndian.AppendUint64(dst, o.ID)
	for _, f := range []float64{o.Loc.Center.X, o.Loc.Center.Y, o.Loc.Sigma, o.Loc.Bound, o.Speed, o.Direction} {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(o.Segment)))
	for _, a := range o.Segment {
		dst = appendStr16(dst, a.Value)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Prob))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(o.Payload)))
	return append(dst, o.Payload...)
}

// EncodeObservation returns the binary encoding of o.
func EncodeObservation(o *Observation) []byte { return AppendEncodeObservation(nil, o) }

// DecodeObservation parses an observation from b.
func DecodeObservation(b []byte) (*Observation, error) {
	d := decoder{buf: b}
	o := &Observation{}
	o.ID = d.u64()
	o.Loc.Center.X = math.Float64frombits(d.u64())
	o.Loc.Center.Y = math.Float64frombits(d.u64())
	o.Loc.Sigma = math.Float64frombits(d.u64())
	o.Loc.Bound = math.Float64frombits(d.u64())
	o.Speed = math.Float64frombits(d.u64())
	o.Direction = math.Float64frombits(d.u64())
	nSeg := int(d.u16())
	if d.err == nil && nSeg > 0 {
		o.Segment = make(prob.Discrete, nSeg)
		for i := 0; i < nSeg; i++ {
			o.Segment[i].Value = d.str16()
			o.Segment[i].Prob = math.Float64frombits(d.u64())
		}
	}
	plen := int(d.u32())
	if d.err == nil && plen > 0 {
		p := d.bytes(plen)
		if d.err == nil {
			o.Payload = append([]byte(nil), p...)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("tuple: decode observation: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("tuple: decode observation: %d trailing bytes", len(d.buf))
	}
	return o, nil
}
