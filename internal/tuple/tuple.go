// Package tuple defines the uncertain tuple model stored in UPI heap
// files and the binary codec used to serialize whole tuples into
// B+Tree leaves and heap pages.
//
// A tuple mirrors the paper's running example (Table 1/4): a unique
// TupleID, an existence probability, deterministic string fields
// (Name, Journal, ...), uncertain discrete attributes (Institution,
// Country, ...), and an opaque payload standing in for the remaining
// row width.
package tuple

import (
	"encoding/binary"
	"fmt"
	"math"

	"upidb/internal/prob"
)

// Tuple is one uncertain row.
type Tuple struct {
	// ID is the unique tuple identifier (the paper's TupleID).
	ID uint64
	// Existence is the probability the tuple exists at all.
	Existence float64
	// Det holds deterministic named fields, in schema order.
	Det []DetField
	// Unc holds uncertain discrete attributes, in schema order.
	Unc []UncField
	// Payload pads the tuple to a realistic row width; it is opaque.
	Payload []byte
}

// DetField is a deterministic named string field.
type DetField struct {
	Name  string
	Value string
}

// UncField is an uncertain attribute with a discrete distribution.
type UncField struct {
	Name string
	Dist prob.Discrete
}

// DetValue returns the deterministic field by name.
func (t *Tuple) DetValue(name string) (string, bool) {
	for _, f := range t.Det {
		if f.Name == name {
			return f.Value, true
		}
	}
	return "", false
}

// Uncertain returns the distribution of the named uncertain attribute.
func (t *Tuple) Uncertain(name string) (prob.Discrete, bool) {
	for _, f := range t.Unc {
		if f.Name == name {
			return f.Dist, true
		}
	}
	return nil, false
}

// Confidence returns the possible-world confidence that this tuple's
// named uncertain attribute equals value: Existence × P(value).
func (t *Tuple) Confidence(attr, value string) float64 {
	d, ok := t.Uncertain(attr)
	if !ok {
		return 0
	}
	return prob.Confidence(t.Existence, d, value)
}

// Validate checks probability invariants on all uncertain fields.
func (t *Tuple) Validate() error {
	if t.Existence < 0 || t.Existence > 1 {
		return fmt.Errorf("tuple %d: existence %v out of range", t.ID, t.Existence)
	}
	for _, f := range t.Unc {
		if len(f.Dist) == 0 {
			return fmt.Errorf("tuple %d: uncertain attribute %q has no alternatives", t.ID, f.Name)
		}
		if err := f.Dist.Validate(); err != nil {
			return fmt.Errorf("tuple %d attribute %q: %w", t.ID, f.Name, err)
		}
	}
	return nil
}

// Binary layout (all big endian):
//
//	[8: ID][8: existence bits]
//	[2: nDet] nDet × ([2: nameLen][name][2: valLen][val])
//	[2: nUnc] nUnc × ([2: nameLen][name][2: nAlts] nAlts × ([2: valLen][val][8: prob bits]))
//	[4: payloadLen][payload]

// AppendEncode appends the binary encoding of t to dst.
func AppendEncode(dst []byte, t *Tuple) []byte {
	dst = binary.BigEndian.AppendUint64(dst, t.ID)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(t.Existence))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(t.Det)))
	for _, f := range t.Det {
		dst = appendStr16(dst, f.Name)
		dst = appendStr16(dst, f.Value)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(t.Unc)))
	for _, f := range t.Unc {
		dst = appendStr16(dst, f.Name)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Dist)))
		for _, a := range f.Dist {
			dst = appendStr16(dst, a.Value)
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Prob))
		}
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.Payload)))
	return append(dst, t.Payload...)
}

// Encode returns the binary encoding of t.
func Encode(t *Tuple) []byte { return AppendEncode(nil, t) }

// Decode parses a tuple from b. The returned tuple owns copies of all
// data; b may be reused.
func Decode(b []byte) (*Tuple, error) {
	d := decoder{buf: b}
	t := &Tuple{}
	t.ID = d.u64()
	t.Existence = math.Float64frombits(d.u64())
	nDet := int(d.u16())
	if d.err == nil && nDet > 0 {
		t.Det = make([]DetField, nDet)
		for i := 0; i < nDet; i++ {
			t.Det[i].Name = d.str16()
			t.Det[i].Value = d.str16()
		}
	}
	nUnc := int(d.u16())
	if d.err == nil && nUnc > 0 {
		t.Unc = make([]UncField, nUnc)
		for i := 0; i < nUnc; i++ {
			t.Unc[i].Name = d.str16()
			nAlts := int(d.u16())
			if d.err != nil {
				break
			}
			dist := make(prob.Discrete, nAlts)
			for j := 0; j < nAlts; j++ {
				dist[j].Value = d.str16()
				dist[j].Prob = math.Float64frombits(d.u64())
			}
			t.Unc[i].Dist = dist
		}
	}
	plen := int(d.u32())
	if d.err == nil && plen > 0 {
		p := d.bytes(plen)
		if d.err == nil {
			t.Payload = append([]byte(nil), p...)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("tuple: decode: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("tuple: decode: %d trailing bytes", len(d.buf))
	}
	return t, nil
}

func appendStr16(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("short buffer: need %d, have %d", n, len(d.buf))
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) str16() string {
	n := int(d.u16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) bytes(n int) []byte { return d.take(n) }
