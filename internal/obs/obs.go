// Package obs is the engine's dependency-free metrics substrate: a
// registry of atomic counters, gauges and fixed-bucket histograms with
// a typed snapshot API and a hand-rolled Prometheus text-exposition
// encoder. It exists so every layer — fracture, shard, planner,
// streaming, server — can be instrumented without importing anything
// beyond the standard library, and without measurable cost on scan-
// worker hot paths: an increment is one atomic add, a histogram
// observation one binary search plus two atomic adds, and every method
// is nil-safe so unwired components no-op instead of branching at each
// call site.
//
// Metrics never touch the simulated disk or the I/O tapes; modeled
// query costs are byte-identical with and without a registry attached.
//
// Concurrency: all mutation methods (Inc, Add, Set, Observe) are safe
// for concurrent use from any number of goroutines, including under
// the race detector. Registration (Counter, Histogram, *Vec.With,
// GaugeFuncVec.Register) takes the registry/family lock and is safe
// concurrently too; hot paths should resolve their metric handles once
// and hold them.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. A nil Counter is a
// valid no-op target.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. A nil Gauge is a valid
// no-op target.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop; negative deltas subtract).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: cumulative-on-export bucket
// counts, a float64 sum and a total count, all updated atomically. A
// nil Histogram is a valid no-op target.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v is the bucket (le semantics); past the last
	// bound, the +Inf overflow bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// snapshot returns a consistent-enough copy (each field individually
// atomic; cross-field skew of in-flight observations is acceptable for
// monitoring).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the exported state of one histogram series.
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds; Counts has one
	// extra trailing entry for the +Inf overflow bucket. Counts are
	// per-bucket (not cumulative).
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// metricType is the Prometheus TYPE of a family.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// gaugeFn is a scrape-time evaluated gauge series.
type gaugeFn func() float64

// family is one metric name: help, type, label schema and the series
// (label-value combinations) registered under it.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // label key → *Counter | *Gauge | *Histogram | gaugeFn
}

// labelKey renders the inner label list (`a="x",b="y"`), in schema
// order, escaping values. Empty for an unlabeled series.
func (f *family) labelKey(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// get returns the series for the label key, creating it with mk on
// first use.
func (f *family) get(key string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := mk()
	f.series[key] = m
	return m
}

// set installs (or replaces) the series for the label key. Used by
// GaugeFuncVec.Register so re-attaching a table re-binds its gauges.
func (f *family) set(key string, m any) {
	f.mu.Lock()
	f.series[key] = m
	f.mu.Unlock()
}

// Registry owns a set of metric families. The zero value is not
// usable; construct with NewRegistry. A nil *Registry returns nil
// metric handles from every constructor, so a fully unwired component
// costs one predictable branch per operation.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family returns the named family, creating it on first use and
// panicking on a name re-registered with a different shape (programmer
// error; metric names are static).
func (r *Registry) family(name, help string, typ metricType, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different type or label schema", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]any),
	}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter returns the unlabeled counter of the named family, creating
// both on first use. Nil-safe: a nil registry returns a nil counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeCounter, nil, nil)
	return f.get("", func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the unlabeled gauge of the named family.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeGauge, nil, nil)
	return f.get("", func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the unlabeled histogram of the named family with
// the given ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeHistogram, nil, buckets)
	return f.get("", func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// GaugeFunc registers an unlabeled gauge whose value is computed at
// snapshot/scrape time. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.family(name, help, typeGauge, nil, nil)
	f.set("", gaugeFn(fn))
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, typeCounter, labels, nil)}
}

// With returns (creating on first use) the counter for the given label
// values, in schema order.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := v.f.labelKey(values)
	return v.f.get(key, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	key := v.f.labelKey(values)
	return v.f.get(key, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.family(name, help, typeHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := v.f.labelKey(values)
	return v.f.get(key, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// GaugeFuncVec is a labeled family of scrape-time evaluated gauges —
// the shape per-shard tuple/fracture gauges take, so the hot write
// path never maintains them.
type GaugeFuncVec struct{ f *family }

// GaugeFuncVec returns the labeled gauge-func family.
func (r *Registry) GaugeFuncVec(name, help string, labels ...string) *GaugeFuncVec {
	if r == nil {
		return nil
	}
	return &GaugeFuncVec{f: r.family(name, help, typeGauge, labels, nil)}
}

// Register binds fn as the series for the given label values,
// replacing any previous binding (so a table closed and reopened
// re-binds its gauges rather than double-reporting).
func (v *GaugeFuncVec) Register(fn func() float64, values ...string) {
	if v == nil {
		return
	}
	v.f.set(v.f.labelKey(values), gaugeFn(fn))
}

// Snapshot is a typed point-in-time view of every series in a
// registry, keyed by the canonical series name: `name` for unlabeled
// series, `name{label="value",...}` otherwise.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// seriesName renders the canonical key of one series.
func seriesName(fam, labelKey string) string {
	if labelKey == "" {
		return fam
	}
	return fam + "{" + labelKey + "}"
}

// Snapshot captures every series. GaugeFunc series are evaluated
// during the call. Nil-safe: a nil registry snapshots empty maps.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	for _, f := range r.families() {
		for key, m := range f.copySeries() {
			name := seriesName(f.name, key)
			switch m := m.(type) {
			case *Counter:
				s.Counters[name] = m.Value()
			case *Gauge:
				s.Gauges[name] = m.Value()
			case gaugeFn:
				s.Gauges[name] = m()
			case *Histogram:
				s.Histograms[name] = m.snapshot()
			}
		}
	}
	return s
}

// families returns the families in registration order.
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.order))
	for i, name := range r.order {
		out[i] = r.fams[name]
	}
	return out
}

// copySeries returns the series map under the family lock so the
// caller can iterate without holding it.
func (f *family) copySeries() map[string]any {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]any, len(f.series))
	for k, v := range f.series {
		out[k] = v
	}
	return out
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4): HELP and TYPE lines per family,
// series sorted by label key for deterministic output, histograms with
// cumulative `le` buckets plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.families() {
		series := f.copySeries()
		if len(series) == 0 {
			continue
		}
		keys := make([]string, 0, len(series))
		for k := range series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, key := range keys {
			switch m := series[key].(type) {
			case *Counter:
				writeSeries(&b, f.name, key, strconv.FormatInt(m.Value(), 10))
			case *Gauge:
				writeSeries(&b, f.name, key, formatFloat(m.Value()))
			case gaugeFn:
				writeSeries(&b, f.name, key, formatFloat(m()))
			case *Histogram:
				snap := m.snapshot()
				cum := int64(0)
				for i, bound := range snap.Bounds {
					cum += snap.Counts[i]
					writeSeries(&b, f.name+"_bucket", joinLabels(key, `le="`+formatFloat(bound)+`"`), strconv.FormatInt(cum, 10))
				}
				writeSeries(&b, f.name+"_bucket", joinLabels(key, `le="+Inf"`), strconv.FormatInt(snap.Count, 10))
				writeSeries(&b, f.name+"_sum", key, formatFloat(snap.Sum))
				writeSeries(&b, f.name+"_count", key, strconv.FormatInt(snap.Count, 10))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSeries emits one sample line.
func writeSeries(b *strings.Builder, name, labelKey, value string) {
	b.WriteString(name)
	if labelKey != "" {
		b.WriteByte('{')
		b.WriteString(labelKey)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// joinLabels appends one rendered pair to an inner label list.
func joinLabels(key, pair string) string {
	if key == "" {
		return pair
	}
	return key + "," + pair
}

// formatFloat renders a float64 the Prometheus way (+Inf, shortest
// round-trip decimal otherwise).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Default bucket layouts, shared so snapshot consumers can rely on
// stable bounds.
var (
	// WallBuckets covers wall-clock latencies from 10µs to 5s —
	// WAL fsyncs, merge builds, HTTP request service times.
	WallBuckets = []float64{1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5}
	// CostBuckets covers modeled disk costs in seconds (the paper's
	// 10ms-seek currency): 1ms to 50s.
	CostBuckets = []float64{1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10, 50}
)

// EngineMetrics is the bundle of engine-level metrics the fracture and
// shard layers report into, pre-resolved so hot paths never look a
// series up. A zero EngineMetrics (all-nil fields) is fully functional
// as a no-op sink — fracture stores default to one when no registry is
// wired — because every metric method is nil-safe.
type EngineMetrics struct {
	Inserts     *Counter // upserts included; every accepted Insert
	Deletes     *Counter
	Upserts     *Counter // Inserts that replaced a still-buffered version
	Flushes     *Counter // non-empty buffer flushes (fractures written)
	Merges      *Counter
	WALAppends  *Counter
	PinReleases *Counter // partition pins released by streams/collects
	// TopKEarlyTerm counts cross-shard top-k streams that stopped with
	// at least one shard still holding results — scans cancelled by the
	// k-th yield.
	TopKEarlyTerm *Counter

	// Plan-cache traffic: hits serve a previously costed plan verbatim,
	// misses cost one fresh. Only planner-routed queries on catalogs
	// with a generation number count.
	PlanCacheHits   *Counter
	PlanCacheMisses *Counter
	// Result-cache traffic (opt-in, per shard): hits answer a point
	// query without touching a snapshot; invalidations count writes
	// that dropped live entries.
	ResultCacheHits          *Counter
	ResultCacheMisses        *Counter
	ResultCacheInvalidations *Counter

	MergeSeconds    *Histogram // wall-clock merge duration
	WALFsyncSeconds *Histogram // wall-clock fsync time per WAL append
}

// NewEngineMetrics resolves the engine metric families on r. Nil-safe:
// a nil registry yields a usable all-no-op bundle.
func NewEngineMetrics(r *Registry) *EngineMetrics {
	return &EngineMetrics{
		Inserts:                  r.Counter("upidb_fracture_inserts_total", "Tuples accepted by Insert (upserts included)."),
		Deletes:                  r.Counter("upidb_fracture_deletes_total", "Tombstones accepted by Delete."),
		Upserts:                  r.Counter("upidb_fracture_upserts_total", "Inserts that replaced a still-buffered version of the same ID."),
		Flushes:                  r.Counter("upidb_fracture_flushes_total", "RAM-buffer flushes that wrote a new fracture."),
		Merges:                   r.Counter("upidb_fracture_merges_total", "Merges folding fractures back into a new main generation."),
		WALAppends:               r.Counter("upidb_wal_appends_total", "Acknowledged write-ahead-log record appends."),
		PinReleases:              r.Counter("upidb_stream_pin_releases_total", "Partition pins released by query execution."),
		TopKEarlyTerm:            r.Counter("upidb_shard_topk_early_terminations_total", "Cross-shard top-k streams that cancelled remaining shard scans at the k-th yield."),
		PlanCacheHits:            r.Counter("upidb_plan_cache_hits_total", "Planner requests answered from the generation-guarded plan cache."),
		PlanCacheMisses:          r.Counter("upidb_plan_cache_misses_total", "Planner requests that costed a fresh plan."),
		ResultCacheHits:          r.Counter("upidb_result_cache_hits_total", "Point queries answered from the per-shard result cache."),
		ResultCacheMisses:        r.Counter("upidb_result_cache_misses_total", "Cacheable point queries that executed against a snapshot."),
		ResultCacheInvalidations: r.Counter("upidb_result_cache_invalidations_total", "Writes that dropped live result-cache entries."),
		MergeSeconds:             r.Histogram("upidb_fracture_merge_seconds", "Wall-clock merge duration.", WallBuckets),
		WALFsyncSeconds:          r.Histogram("upidb_wal_fsync_seconds", "Wall-clock fsync time per WAL append.", WallBuckets),
	}
}
