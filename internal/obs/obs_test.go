package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "Ops.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name returns the same series.
	r.Counter("ops_total", "Ops.").Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter after re-lookup = %d, want 6", got)
	}

	g := r.Gauge("depth", "Depth.")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	// Every metric method must be callable through nil receivers — the
	// engine relies on this for its zero-value no-op sink.
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
	)
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value != 0")
	}
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value != 0")
	}
	h.Observe(1)
	r.Counter("x", "").Inc()
	r.Gauge("y", "").Set(1)
	r.Histogram("z", "", WallBuckets).Observe(1)
	r.GaugeFunc("f", "", func() float64 { return 1 })
	r.CounterVec("cv", "", "a").With("1").Inc()
	r.GaugeVec("gv", "", "a").With("1").Set(1)
	r.HistogramVec("hv", "", WallBuckets, "a").With("1").Observe(1)
	r.GaugeFuncVec("fv", "", "a").Register(func() float64 { return 1 }, "1")
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}

	em := &EngineMetrics{} // zero value: all fields nil, all calls no-ops
	em.Inserts.Inc()
	em.MergeSeconds.Observe(0.1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-105.65) > 1e-9 {
		t.Fatalf("sum = %g, want 105.65", s.Sum)
	}
	// le semantics: 0.1 lands in the first bucket, 100 in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
}

func TestLabeledVecs(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "Requests.", "endpoint", "status")
	v.With("query", "200").Add(3)
	v.With("query", "429").Inc()
	v.With("insert", "200").Inc()

	s := r.Snapshot()
	if got := s.Counters[`req_total{endpoint="query",status="200"}`]; got != 3 {
		t.Fatalf("query/200 = %d, want 3", got)
	}
	if got := s.Counters[`req_total{endpoint="insert",status="200"}`]; got != 1 {
		t.Fatalf("insert/200 = %d, want 1", got)
	}

	fv := r.GaugeFuncVec("shard_tuples", "Tuples.", "shard")
	fv.Register(func() float64 { return 7 }, "0")
	// Re-registering the same labels replaces the binding (reopen-safe).
	fv.Register(func() float64 { return 9 }, "0")
	if got := r.Snapshot().Gauges[`shard_tuples{shard="0"}`]; got != 9 {
		t.Fatalf("gauge func = %g, want 9 (replacement binding)", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", "Total ops.").Add(2)
	r.CounterVec("req_total", "Requests.", "kind").With(`we"ird\v`).Inc()
	r.Gauge("depth", "Queue depth.").Set(1.5)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("live", "Live gauge.", func() float64 { return 3 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP ops_total Total ops.",
		"# TYPE ops_total counter",
		"ops_total 2",
		"# TYPE depth gauge",
		"depth 1.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
		"live 3",
		// Label escaping: backslash and quote escaped in exposition.
		`req_total{kind="we\"ird\\v"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
}

func TestRegistrySoak(t *testing.T) {
	// Exercised under -race in CI: concurrent increments across series
	// plus snapshots must be safe and land on exact final counts.
	r := NewRegistry()
	c := r.Counter("soak_total", "")
	v := r.CounterVec("soak_vec_total", "", "worker")
	h := r.Histogram("soak_seconds", "", WallBuckets)

	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lc := v.With("w")
			for i := 0; i < per; i++ {
				c.Inc()
				lc.Inc()
				h.Observe(float64(i%10) / 1000)
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	s := r.Snapshot()
	if got := s.Counters[`soak_vec_total{worker="w"}`]; got != workers*per {
		t.Fatalf("vec counter = %d, want %d", got, workers*per)
	}
	if got := s.Histograms["soak_seconds"].Count; got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}
