// Fixture for lockcheck: firing cases and clean boundaries.
package a

import (
	"errors"
	"sync"
)

type table struct {
	mu     sync.RWMutex
	closed bool
	n      int
}

// earlyReturnLeak is the classic wedge: the error path returns with
// the write lock still held.
func (t *table) earlyReturnLeak() error {
	t.mu.Lock()
	if t.closed {
		return errClosed // want `return leaves t\.mu\.Lock\(\) held`
	}
	t.n++
	t.mu.Unlock()
	return nil
}

// neverUnlocked acquires and falls off the end.
func (t *table) neverUnlocked() {
	t.mu.RLock()
	t.n++
} // want `function exit leaves t\.mu\.RLock\(\) held`

// deferredIsClean is the house style: defer releases on every path.
func (t *table) deferredIsClean() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errClosed
	}
	t.n++
	return nil
}

// deferredClosureIsClean releases inside a deferred closure.
func (t *table) deferredClosureIsClean() {
	t.mu.Lock()
	defer func() {
		t.n = 0
		t.mu.Unlock()
	}()
	t.n++
}

// manualBalanced unlocks before each return in source order; the
// lexical tracker accepts it.
func (t *table) manualBalanced() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errClosed
	}
	t.n++
	t.mu.Unlock()
	return nil
}

// modesPairIndependently: an RLock is not released by Unlock.
func (t *table) modesPairIndependently() {
	t.mu.RLock()
	t.mu.Unlock() // pairs with nothing; the read lock is still held
} // want `function exit leaves t\.mu\.RLock\(\) held`

// cursorEscape documents the cupi pattern: the read lock deliberately
// outlives the function, released by the returned closure.
//
//lint:lockheld the caller must invoke the returned release
func (t *table) cursorEscape() func() {
	t.mu.RLock()
	return func() { t.mu.RUnlock() }
}

// closureScopesAreIndependent: a clean closure does not hide the
// enclosing function's leak, and the closure itself is analyzed.
func (t *table) closureScopesAreIndependent() func() {
	t.mu.Lock()
	f := func() {
		t.mu.RLock()
		defer t.mu.RUnlock()
		t.n++
	}
	return f // want `return leaves t\.mu\.Lock\(\) held`
}

// lockInClosureLeaks: the literal's own scope leaks.
func (t *table) lockInClosureLeaks() func() {
	return func() {
		t.mu.Lock()
		t.n++
	} // want `function exit leaves t\.mu\.Lock\(\) held`
}

// nonMutexLockIsIgnored: Lock methods on non-sync types are not
// tracked.
type fakeLocker struct{}

func (fakeLocker) Lock()   {}
func (fakeLocker) Unlock() {}

func usesFakeLocker() {
	var l fakeLocker
	l.Lock()
}

var errClosed = errors.New("closed")
