// Package lockcheck enforces the engine's lock pairing discipline: a
// sync.Mutex/RWMutex acquired in a function must be released in that
// function on every exit, unless a //lint:lockheld marker documents
// that the lock intentionally escapes (the cupi cursor pattern, where
// a streaming cursor holds the table's read lock from first pull to
// Close and an undocumented escape wedges every subsequent Insert).
//
// The check walks each function body in source order, tracking a held
// counter per (mutex expression, write/read mode): Lock/RLock raises
// it, Unlock/RUnlock lowers it, a deferred unlock (directly or inside
// a deferred closure) clears it for the rest of the function. A return
// statement — or falling off the end of the body — while the counter
// is positive and no deferred unlock is registered is a diagnostic.
// Source-order tracking is deliberately conservative: it cannot prove
// branch-balanced manual unlocking, which is exactly the style the
// engine forbids in favor of defer.
//
// Function literals are analyzed as their own scopes: a cursor body
// that locks and defers the unlock inside the pulled closure is clean,
// matching the documented cupi discipline.
package lockcheck

import (
	"go/ast"
	"go/token"

	"upidb/internal/lint"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name:    "lockcheck",
	Doc:     "reports sync.Mutex/RWMutex acquisitions that can escape their function without a matching unlock or a //lint:lockheld marker",
	Aliases: []string{"lockheld"},
	Run:     run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, fd := range lint.FuncsInFile(f) {
			checkFuncBody(pass, fd.Body)
		}
	}
	return nil
}

// lockKey identifies one mutex in one acquisition mode within a
// function: "t.mu" write-locked and "t.mu" read-locked pair
// independently.
type lockKey struct {
	expr  string
	write bool
}

type lockState struct {
	held     int
	deferred bool      // a deferred unlock is registered
	firstPos token.Pos // first acquisition, for the diagnostic
}

// checkFuncBody analyzes one function scope. Nested function literals
// are queued and analyzed as independent scopes, except literals
// inside defer statements, whose unlocks count as deferred releases
// for the enclosing scope.
func checkFuncBody(pass *lint.Pass, body *ast.BlockStmt) {
	states := make(map[lockKey]*lockState)
	var nested []*ast.BlockStmt

	var walk func(n ast.Node)
	walkStmts := func(list []ast.Stmt) {
		for _, s := range list {
			walk(s)
		}
	}
	walk = func(n ast.Node) {
		switch s := n.(type) {
		case nil:
		case *ast.ExprStmt:
			walk(s.X)
		case *ast.DeferStmt:
			// defer mu.Unlock(), or defer func(){ mu.Unlock() }():
			// either form releases on every exit.
			recordCall(pass, states, s.Call, true)
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(c ast.Node) bool {
					if call, ok := c.(*ast.CallExpr); ok {
						recordCall(pass, states, call, true)
					}
					return true
				})
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				walk(r)
			}
			reportHeld(pass, states, s.Pos(), "return")
		case *ast.FuncLit:
			nested = append(nested, s.Body)
		case *ast.BlockStmt:
			walkStmts(s.List)
		case *ast.IfStmt:
			walk(s.Init)
			walk(s.Cond)
			walk(s.Body)
			walk(s.Else)
		case *ast.ForStmt:
			walk(s.Init)
			walk(s.Cond)
			walk(s.Body)
		case *ast.RangeStmt:
			walk(s.X)
			walk(s.Body)
		case *ast.SwitchStmt:
			walk(s.Init)
			walk(s.Body)
		case *ast.TypeSwitchStmt:
			walk(s.Init)
			walk(s.Body)
		case *ast.SelectStmt:
			walk(s.Body)
		case *ast.CaseClause:
			walkStmts(s.Body)
		case *ast.CommClause:
			walkStmts(s.Body)
		case *ast.LabeledStmt:
			walk(s.Stmt)
		case *ast.GoStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				nested = append(nested, lit.Body)
			}
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				walk(r)
			}
		case *ast.CallExpr:
			recordCall(pass, states, s, false)
			for _, a := range s.Args {
				walk(a)
			}
		case ast.Expr:
			ast.Inspect(s, func(c ast.Node) bool {
				switch cc := c.(type) {
				case *ast.FuncLit:
					nested = append(nested, cc.Body)
					return false
				case *ast.CallExpr:
					recordCall(pass, states, cc, false)
				}
				return true
			})
		case ast.Stmt:
			ast.Inspect(s, func(c ast.Node) bool {
				switch cc := c.(type) {
				case *ast.FuncLit:
					nested = append(nested, cc.Body)
					return false
				case *ast.CallExpr:
					recordCall(pass, states, cc, false)
				}
				return true
			})
		}
	}
	walkStmts(body.List)
	// A body whose last statement is a return already reported there;
	// the closing brace is unreachable.
	terminal := false
	if n := len(body.List); n > 0 {
		_, terminal = body.List[n-1].(*ast.ReturnStmt)
	}
	if !terminal {
		reportHeld(pass, states, body.Rbrace, "function exit")
	}

	for _, nb := range nested {
		checkFuncBody(pass, nb)
	}
}

// recordCall updates lock state for mu.Lock/RLock/Unlock/RUnlock
// calls on sync mutexes. asDefer marks unlocks that run on every exit.
func recordCall(pass *lint.Pass, states map[lockKey]*lockState, call *ast.CallExpr, asDefer bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	method := sel.Sel.Name
	var write, acquire bool
	switch method {
	case "Lock":
		write, acquire = true, true
	case "Unlock":
		write, acquire = true, false
	case "RLock":
		write, acquire = false, true
	case "RUnlock":
		write, acquire = false, false
	default:
		return
	}
	if !isSyncMutex(pass, call) {
		return
	}
	key := lockKey{expr: lint.ExprText(pass.Fset, sel.X), write: write}
	st := states[key]
	if st == nil {
		st = &lockState{}
		states[key] = st
	}
	switch {
	case acquire:
		if st.held == 0 {
			st.firstPos = call.Pos()
		}
		st.held++
	case asDefer:
		st.deferred = true
	default:
		if st.held > 0 {
			st.held--
		}
	}
}

func isSyncMutex(pass *lint.Pass, call *ast.CallExpr) bool {
	return lint.MethodOn(pass.Info, call, "sync", "Mutex", methodName(call)) ||
		lint.MethodOn(pass.Info, call, "sync", "RWMutex", methodName(call))
}

func methodName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

func reportHeld(pass *lint.Pass, states map[lockKey]*lockState, pos token.Pos, where string) {
	for key, st := range states {
		if st.held > 0 && !st.deferred {
			mode := "Lock"
			unlock := "Unlock"
			if !key.write {
				mode, unlock = "RLock", "RUnlock"
			}
			pass.Reportf(pos, "%s leaves %s.%s() held with no deferred %s; unlock on every path or document the escape with //lint:lockheld", where, key.expr, mode, unlock)
		}
	}
}
