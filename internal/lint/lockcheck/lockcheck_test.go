package lockcheck

import (
	"testing"

	"upidb/internal/lint/linttest"
)

func TestLockcheck(t *testing.T) {
	linttest.Run(t, Analyzer, "a")
}
