package stdlite

import (
	"testing"

	"upidb/internal/lint/linttest"
)

func TestLostCancel(t *testing.T) {
	linttest.Run(t, LostCancel, "lostcancel")
}

func TestNilness(t *testing.T) {
	linttest.Run(t, Nilness, "nilness")
}

func TestUnusedWrite(t *testing.T) {
	linttest.Run(t, UnusedWrite, "unusedwrite")
}
