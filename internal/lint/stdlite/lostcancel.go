// Package stdlite carries conservative, dependency-free equivalents
// of the high-value golang.org/x/tools/go/analysis passes that go
// vet's default set omits: lostcancel, nilness and unusedwrite. The
// container this repository builds in bakes no third-party modules, so
// the upstream passes cannot be vendored; each analyzer here encodes
// the same invariant with a deliberately conservative reach — no
// SSA, no CFG — and documents what it gives up. Every diagnostic the
// lite versions emit would also be emitted by the upstream pass.
package stdlite

import (
	"go/ast"
	"go/token"
	"go/types"

	"upidb/internal/lint"
)

// LostCancel reports context cancel functions that are discarded or
// never used. The upstream pass proves cancel is called on every
// path; this version flags the two unambiguous failure shapes —
// assigning the cancel function to the blank identifier, and binding
// it to a variable that is never referenced again — which leak the
// context's resources and detach the subtree from cancellation.
var LostCancel = &lint.Analyzer{
	Name: "lostcancel",
	Doc:  "reports discarded or unused cancel functions from context.WithCancel/WithTimeout/WithDeadline",
	Run:  runLostCancel,
}

var cancelSources = []string{"WithCancel", "WithTimeout", "WithDeadline"}

func runLostCancel(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, fd := range lint.FuncsInFile(f) {
			checkLostCancel(pass, fd)
		}
	}
	return nil
}

// hasRealUse reports whether obj is used anywhere other than the
// compiler-appeasing `_ = obj` discard.
func hasRealUse(pass *lint.Pass, body ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if assign, ok := n.(*ast.AssignStmt); ok && isBlankDiscard(pass, assign, obj) {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// isBlankDiscard matches `_ = obj`.
func isBlankDiscard(pass *lint.Pass, assign *ast.AssignStmt, obj types.Object) bool {
	if assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || lhs.Name != "_" {
		return false
	}
	rhs, ok := assign.Rhs[0].(*ast.Ident)
	return ok && pass.Info.Uses[rhs] == obj
}

func checkLostCancel(pass *lint.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		src := ""
		for _, name := range cancelSources {
			if lint.IsPkgFunc(pass.Info, call, "context", name) {
				src = name
				break
			}
		}
		if src == "" {
			return true
		}
		cancelIdent, ok := assign.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if cancelIdent.Name == "_" {
			pass.Reportf(cancelIdent.Pos(), "the cancel function returned by context.%s is discarded; the context leaks until its parent is cancelled", src)
			return true
		}
		obj := pass.Info.Defs[cancelIdent]
		if obj == nil {
			// Plain = assignment to an existing variable: treated as a
			// use we cannot track further.
			return true
		}
		if !hasRealUse(pass, fd.Body, obj) {
			pass.Reportf(cancelIdent.Pos(), "the cancel function %s from context.%s is only discarded, never called; defer %s() (or call it on every path)", cancelIdent.Name, src, cancelIdent.Name)
		}
		return true
	})
}
