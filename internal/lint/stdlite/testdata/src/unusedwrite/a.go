// Fixture for unusedwrite.
package unusedwrite

func deadStore(a, b int) int {
	x := 0
	x = a // want `value stored in x is never read; it is overwritten at line \d+`
	x = b
	return x
}

// a read between the stores keeps the first alive.
func readBetween(a, b int) int {
	x := 0
	x = a
	sink(x)
	x = b
	return x
}

// control flow between stores may read on another path: no finding.
func branchBetween(a, b int, cond bool) int {
	x := 0
	x = a
	if cond {
		return x
	}
	x = b
	return x
}

// address-taken locals may be read through the pointer.
func addressTaken(a, b int) int {
	x := 0
	x = a
	p := &x
	x = b
	return *p
}

// closure-captured locals may be read by the closure.
func captured(a, b int) func() int {
	x := 0
	x = a
	f := func() int { return x }
	x = b
	return f
}

// self-referencing overwrite reads the prior value.
func accumulate(a, b int) int {
	x := a
	x = x + b
	return x
}

func sink(int) {}
