// Fixture for nilness.
package nilness

type node struct {
	name string
	next *node
}

func derefInNilBranch(n *node) string {
	if n == nil {
		return n.name // want `n is nil on this path`
	}
	return n.name
}

func derefInElseOfNotNil(n *node) string {
	if n != nil {
		return n.name
	} else {
		return n.name // want `n is nil on this path`
	}
}

func starDeref(n *node) node {
	if n == nil {
		return *n // want `n is nil on this path`
	}
	return *n
}

func reversedOperands(n *node) string {
	if nil == n {
		return n.name // want `n is nil on this path`
	}
	return n.name
}

// reassignment before use clears the proof.
func reassigned(n *node) string {
	if n == nil {
		n = &node{name: "fresh"}
		return n.name
	}
	return n.name
}

// the guarded branch is the one that must not dereference; the other
// side is fine.
func guarded(n *node) string {
	if n == nil {
		return ""
	}
	return n.name
}

// a closure-captured variable can be reassigned by any call between
// the check and the use (the btree bulk-loader pattern), so the proof
// does not hold.
func capturedByClosure(n *node) string {
	fresh := func() { n = &node{name: "fresh"} }
	if n == nil {
		fresh()
		return n.name
	}
	return n.name
}

// interface nil checks are out of scope for the lite pass.
func ifaceNil(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
