// Fixture for lostcancel.
package lostcancel

import (
	"context"
	"time"
)

func discarded(ctx context.Context) context.Context {
	child, _ := context.WithCancel(ctx) // want `cancel function returned by context\.WithCancel is discarded`
	return child
}

func discardedTimeout(ctx context.Context) context.Context {
	child, _ := context.WithTimeout(ctx, time.Second) // want `cancel function returned by context\.WithTimeout is discarded`
	return child
}

func unused(ctx context.Context) context.Context {
	child, cancel := context.WithDeadline(ctx, time.Now().Add(time.Second)) // want `cancel function cancel from context\.WithDeadline is only discarded`
	_ = cancel
	return child
}

// the house style: defer the cancel.
func deferred(ctx context.Context) error {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	return child.Err()
}

// passing cancel onward is a use.
func handedOff(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

func handedOffVar(ctx context.Context) (context.Context, context.CancelFunc) {
	child, cancel := context.WithCancel(ctx)
	return child, cancel
}
