package stdlite

import (
	"go/ast"
	"go/token"
	"go/types"

	"upidb/internal/lint"
)

// UnusedWrite reports dead stores: a value assigned to a local
// variable that is overwritten by a later assignment in the same
// block with no intervening read and no intervening control flow. The
// upstream SSA pass also finds dead struct-field and array writes;
// this version restricts itself to straight-line local overwrites —
// the shape that survives in reviewed code as a stale leftover after
// a refactor — and skips variables whose address is taken or that a
// closure captures.
var UnusedWrite = &lint.Analyzer{
	Name: "unusedwrite",
	Doc:  "reports values stored in a local variable and overwritten before any read",
	Run:  runUnusedWrite,
}

func runUnusedWrite(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, fd := range lint.FuncsInFile(f) {
			escaped := escapedLocals(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if block, ok := n.(*ast.BlockStmt); ok {
					checkBlock(pass, block, escaped)
				}
				return true
			})
		}
	}
	return nil
}

// escapedLocals collects objects whose address is taken or that appear
// inside a function literal: stores to those may be observed through
// aliases, so they are never dead for this analyzer.
func escapedLocals(pass *lint.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	escaped := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
			}
		case *ast.FuncLit:
			ast.Inspect(e.Body, func(c ast.Node) bool {
				if id, ok := c.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						escaped[obj] = true
					}
					if obj := pass.Info.Defs[id]; obj != nil {
						escaped[obj] = true
					}
				}
				return true
			})
			return false
		}
		return true
	})
	return escaped
}

// checkBlock scans one block's direct statement list for
// store-then-overwrite pairs.
func checkBlock(pass *lint.Pass, block *ast.BlockStmt, escaped map[types.Object]bool) {
	for i, stmt := range block.List {
		obj, firstIdent := simpleStore(pass, stmt)
		if obj == nil || escaped[obj] {
			continue
		}
		// Scan forward: a read, control flow, or block end clears the
		// store; another plain store to the same object kills it.
	forward:
		for j := i + 1; j < len(block.List); j++ {
			next := block.List[j]
			switch next.(type) {
			case *ast.AssignStmt, *ast.ExprStmt, *ast.IncDecStmt, *ast.DeclStmt:
				// straight-line statements: check below
			default:
				break forward // control flow may read the value later
			}
			overObj, overIdent := simpleStore(pass, next)
			if overObj == obj && !readsObject(pass, next, obj) {
				pass.Reportf(firstIdent.Pos(), "value stored in %s is never read; it is overwritten at line %d", firstIdent.Name, pass.Fset.Position(overIdent.Pos()).Line)
				break forward
			}
			if readsObject(pass, next, obj) {
				break forward
			}
		}
	}
}

// simpleStore matches `x = expr` (single LHS, plain assignment to an
// ident) and returns the stored-to object.
func simpleStore(pass *lint.Pass, stmt ast.Stmt) (types.Object, *ast.Ident) {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 {
		return nil, nil
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil, nil
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil, nil
	}
	return obj, id
}

// readsObject reports whether stmt reads obj anywhere except as the
// sole store target of a simpleStore.
func readsObject(pass *lint.Pass, stmt ast.Stmt, obj types.Object) bool {
	storeObj, storeIdent := simpleStore(pass, stmt)
	read := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if read {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != obj {
			return true
		}
		if storeObj == obj && id == storeIdent {
			return true // the overwrite target itself is not a read
		}
		read = true
		return false
	})
	return read
}
