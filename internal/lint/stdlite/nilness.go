package stdlite

import (
	"go/ast"
	"go/token"
	"go/types"

	"upidb/internal/lint"
)

// Nilness reports dereferences of a pointer that a dominating
// condition proves nil: uses of x inside `if x == nil { ... }` (or the
// else branch of `if x != nil`). The upstream SSA-based pass reasons
// over all facts; this version handles the direct shape only, stopping
// at any reassignment of x inside the branch.
var Nilness = &lint.Analyzer{
	Name: "nilness",
	Doc:  "reports uses of a pointer inside the branch where a nil check proves it nil",
	Run:  runNilness,
}

func runNilness(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, fd := range lint.FuncsInFile(f) {
			// A variable captured by a closure (or address-taken) can
			// be reassigned by any call between the nil check and the
			// use, so the proof does not hold for it.
			escaped := escapedLocals(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ifStmt, ok := n.(*ast.IfStmt)
				if !ok {
					return true
				}
				checkNilBranch(pass, ifStmt, escaped)
				return true
			})
		}
	}
	return nil
}

// checkNilBranch finds the branch on which the condition proves an
// identifier nil and scans it for dereferences.
func checkNilBranch(pass *lint.Pass, ifStmt *ast.IfStmt, escaped map[types.Object]bool) {
	cond, ok := ast.Unparen(ifStmt.Cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	var idExpr ast.Expr
	switch {
	case isNilLit(pass, cond.Y):
		idExpr = cond.X
	case isNilLit(pass, cond.X):
		idExpr = cond.Y
	default:
		return
	}
	id, ok := ast.Unparen(idExpr).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.Info.Uses[id]
	if obj == nil || escaped[obj] {
		return
	}
	// Only pointer types dereference; interfaces and maps have
	// well-defined nil behavior for most operations.
	if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
		return
	}
	var branch ast.Stmt
	switch cond.Op {
	case token.EQL:
		branch = ifStmt.Body
	case token.NEQ:
		branch = ifStmt.Else
	default:
		return
	}
	if branch == nil {
		return
	}
	scanNilUses(pass, branch, obj, id.Name)
}

// scanNilUses walks the nil branch in source order, reporting
// dereferences of obj until it is reassigned or the branch ends.
func scanNilUses(pass *lint.Pass, branch ast.Stmt, obj types.Object, name string) {
	reassigned := token.NoPos
	ast.Inspect(branch, func(n ast.Node) bool {
		if reassigned.IsValid() && n != nil && n.Pos() > reassigned {
			return false
		}
		switch e := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if lid, ok := lhs.(*ast.Ident); ok && pass.Info.Uses[lid] == obj {
					reassigned = e.Pos()
				}
			}
		case *ast.FuncLit:
			return false // deferred/async execution: out of scope
		case *ast.SelectorExpr:
			if xid, ok := ast.Unparen(e.X).(*ast.Ident); ok && pass.Info.Uses[xid] == obj {
				pass.Reportf(e.Pos(), "%s is nil on this path; this dereference panics", name)
				return false
			}
		case *ast.StarExpr:
			if xid, ok := ast.Unparen(e.X).(*ast.Ident); ok && pass.Info.Uses[xid] == obj {
				pass.Reportf(e.Pos(), "%s is nil on this path; this dereference panics", name)
				return false
			}
		}
		return true
	})
}

func isNilLit(pass *lint.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && pass.Info.Uses[id] == types.Universe.Lookup("nil")
}
