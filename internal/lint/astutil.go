package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Callee resolves the function or method object a call expression
// invokes, or nil when it cannot be determined (indirect calls,
// conversions, builtins).
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// IsPkgFunc reports whether call invokes the named function from the
// named package path (e.g. "context", "Background").
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := Callee(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// MethodOn reports whether call invokes a method with the given name
// whose receiver's type (after stripping pointers) is the named type
// pkgPath.typeName.
func MethodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	named := namedOf(selection.Recv())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

// NamedType returns the defined type t resolves to through pointers
// and aliases, or nil.
func NamedType(t types.Type) *types.Named { return namedOf(t) }

// IsErrorType reports whether t is the error interface itself.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// ImplementsError reports whether t (or *t) implements error.
func ImplementsError(t types.Type) bool {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if types.Implements(t, errIface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), errIface)
	}
	return false
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ExprText renders an expression back to source, the structural key
// analyzers use to pair calls referring to the same value (the mutex
// receiver of Lock/Unlock, the file name of Create/Sideband).
func ExprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// FuncsInFile yields every function declaration in the file.
func FuncsInFile(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// ReceiverTypeName returns the name of a method's receiver type ("" for
// plain functions).
func ReceiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// BaseFilename returns the file base name a position falls in.
func BaseFilename(fset *token.FileSet, pos token.Pos) string {
	name := fset.Position(pos).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// UsesObject reports whether any identifier under n refers to obj.
func UsesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
