// Package lint is a self-contained static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built entirely on the
// standard library so the repository carries no third-party
// dependency. It exists to encode the engine's load-bearing invariants
// — the cupi locking discipline, sideband registration of durability
// files, errors.Is against the typed sentinels, context propagation —
// as compile-time checks instead of reviewer memory.
//
// An Analyzer inspects one type-checked package at a time through a
// Pass and reports Diagnostics. The cmd/upilint driver loads packages
// (see Load), runs every registered analyzer, and exits non-zero when
// any diagnostic survives suppression.
//
// # Suppression markers
//
// A diagnostic is suppressed by a targeted marker comment, never by a
// blanket flag:
//
//	t.mu.RLock() //lint:lockheld cursor holds the read lock until Close
//
// A marker names the analyzer whose diagnostics it silences (the
// analyzer's Name, or a documented alias such as lockheld for
// lockcheck). It applies to the line it trails, or — when written in a
// function's doc comment — to the whole function. Markers carry a
// rationale after the name; an empty rationale is itself a diagnostic,
// so every suppression is documented at the site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and markers. Lower
	// case, no spaces.
	Name string

	// Doc is a one-paragraph description: what the analyzer enforces
	// and why the invariant exists.
	Doc string

	// Aliases are additional marker names that suppress this
	// analyzer's diagnostics (e.g. lockcheck honors //lint:lockheld).
	Aliases []string

	// Run inspects one package and reports diagnostics via pass.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, already resolved to a position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	markers   markerIndex
	collected *[]Diagnostic
}

// NewPass assembles a Pass over an already type-checked package,
// appending diagnostics to out. Exposed for the linttest fixture
// runner; the driver uses Run.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, out *[]Diagnostic) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		Info:      info,
		markers:   indexMarkers(fset, files),
		collected: out,
	}
}

// Reportf records a diagnostic at pos unless a targeted marker
// suppresses this analyzer there.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	*p.collected = append(*p.collected, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos falls in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

func (p *Pass) suppressed(pos token.Position) bool {
	names := append([]string{p.Analyzer.Name}, p.Analyzer.Aliases...)
	for _, n := range names {
		if p.markers.suppresses(n, pos) {
			return true
		}
	}
	return false
}

// markerRe matches one //lint:<name> marker. The rationale after the
// name is free text.
var markerRe = regexp.MustCompile(`//lint:([a-z][a-z0-9-]*)`)

type lineKey struct {
	file string
	line int
}

type funcRange struct {
	file       string
	start, end int // line range of the declaration incl. body
	names      []string
}

type markerIndex struct {
	byLine map[lineKey][]string
	byFunc []funcRange
}

// indexMarkers collects //lint: markers: trailing-comment markers by
// line, and doc-comment markers by the function they document.
func indexMarkers(fset *token.FileSet, files []*ast.File) markerIndex {
	idx := markerIndex{byLine: make(map[lineKey][]string)}
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range markerRe.FindAllStringSubmatch(c.Text, -1) {
					k := lineKey{fname, fset.Position(c.Pos()).Line}
					idx.byLine[k] = append(idx.byLine[k], m[1])
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var names []string
			for _, c := range fd.Doc.List {
				for _, m := range markerRe.FindAllStringSubmatch(c.Text, -1) {
					names = append(names, m[1])
				}
			}
			if len(names) > 0 {
				idx.byFunc = append(idx.byFunc, funcRange{
					file:  fname,
					start: fset.Position(fd.Pos()).Line,
					end:   fset.Position(fd.End()).Line,
					names: names,
				})
			}
		}
	}
	return idx
}

func (idx markerIndex) suppresses(name string, pos token.Position) bool {
	for _, n := range idx.byLine[lineKey{pos.Filename, pos.Line}] {
		if n == name {
			return true
		}
	}
	for _, fr := range idx.byFunc {
		if fr.file == pos.Filename && pos.Line >= fr.start && pos.Line <= fr.end {
			for _, n := range fr.names {
				if n == name {
					return true
				}
			}
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the
// surviving diagnostics sorted by position. Diagnostics are
// deduplicated by (analyzer, position, message) so a file linted both
// as part of a package and its test variant reports once.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, &diags)
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Pos:      token.Position{Filename: pkg.PkgPath},
					Message:  fmt.Sprintf("analyzer failed: %v", err),
				})
			}
		}
	}
	seen := make(map[string]bool, len(diags))
	out := diags[:0]
	for _, d := range diags {
		k := d.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}
