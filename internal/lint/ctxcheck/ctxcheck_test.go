package ctxcheck

import (
	"testing"

	"upidb/internal/lint/linttest"
)

func TestCtxcheck(t *testing.T) {
	linttest.Run(t, Analyzer, "a", "b")
}
