// Fixture for ctxcheck: firing cases and clean boundaries in a
// library (non-main) package.
package a

import "context"

type Store struct{ n int }

func freshRoot() {
	ctx := context.Background() // want `context\.Background\(\) in library code`
	_ = ctx
}

func freshTODO() {
	_ = context.TODO() // want `context\.TODO\(\) in library code`
}

// threading the caller's context is the house style.
func threaded(ctx context.Context) context.Context {
	return context.WithValue(ctx, key{}, 1)
}

type key struct{}

// ctx not first.
func misplaced(name string, ctx context.Context) error { // want `context\.Context must be the first parameter`
	_ = name
	return ctx.Err()
}

// ctx first is clean.
func wellPlaced(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// Query-shaped method without a context on a store type.
func (s *Store) QueryPoint(id uint64) int { // want `Store\.QueryPoint performs query I/O but takes no context`
	return s.n
}

// Same shape with a context is clean.
func (s *Store) QueryRange(ctx context.Context, lo, hi uint64) int {
	_ = ctx
	return s.n
}

// Non-query-shaped methods need no context.
func (s *Store) Len() int { return s.n }

// Unexported receivers are internal plumbing, not API surface.
type helperTable struct{}

func (helperTable) QueryAll() {}

// A documented exception stays quiet.
//
//lint:noctx snapshot read, no I/O to cancel
func (s *Store) ScanSnapshot() int { return s.n }
