// Boundary fixture: package main may mint root contexts.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
