// Package ctxcheck enforces the engine's context-propagation
// discipline, established when Run(ctx, Query) was plumbed
// facade→planner→fracture→upi→cupi: cancellation must reach every
// I/O-performing path, so
//
//   - context.Background() / context.TODO() are forbidden outside
//     package main and _test.go files — library code must thread the
//     caller's context, never mint a fresh root that silently detaches
//     a scan from its deadline;
//   - a context.Context parameter must come first, the convention the
//     whole call graph relies on;
//   - exported query-shaped methods (Query*/Scan*/Stream*/Run/
//     *Cursor) on store/table/cursor types must take a context —
//     a query path without one cannot be cancelled or admission-
//     checked at all.
//
// Intentional exceptions carry a //lint:noctx marker with a rationale.
package ctxcheck

import (
	"go/ast"
	"regexp"
	"strings"

	"upidb/internal/lint"
)

// Analyzer is the ctxcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name:    "ctxcheck",
	Doc:     "reports fresh context roots in library code, context parameters not in first position, and query-shaped methods that take no context",
	Aliases: []string{"noctx"},
	Run:     run,
}

// queryShaped matches exported method names that perform query I/O by
// convention.
var queryShaped = regexp.MustCompile(`^(Query|Scan|Stream)[A-Z0-9]|^(Run|Query|Scan|Stream)$|Cursor$`)

// ioReceivers are the receiver-type name fragments the query-shape
// rule applies to.
var ioReceivers = []string{"Store", "Table", "Cursor", "DB"}

func run(pass *lint.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		if !isMain {
			checkFreshRoots(pass, f)
		}
		for _, fd := range lint.FuncsInFile(f) {
			checkCtxPosition(pass, fd)
			if !isMain && !pass.InTestFile(fd.Pos()) {
				checkQueryShape(pass, fd)
			}
		}
	}
	return nil
}

// checkFreshRoots reports context.Background / context.TODO calls in
// non-main packages outside test files.
func checkFreshRoots(pass *lint.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range []string{"Background", "TODO"} {
			if lint.IsPkgFunc(pass.Info, call, "context", name) && !pass.InTestFile(call.Pos()) {
				pass.Reportf(call.Pos(), "context.%s() in library code detaches this path from the caller's cancellation and deadline; accept a context.Context instead", name)
			}
		}
		return true
	})
}

// checkCtxPosition reports a context.Context parameter that is not the
// first parameter.
func checkCtxPosition(pass *lint.Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		isCtx := ok && lint.IsContextType(tv.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx && pos > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter of %s", fd.Name.Name)
		}
		pos += n
	}
}

// checkQueryShape reports exported query-shaped methods on store/
// table/cursor types whose first parameter is not a context.
func checkQueryShape(pass *lint.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || !fd.Name.IsExported() || !queryShaped.MatchString(fd.Name.Name) {
		return
	}
	recv := lint.ReceiverTypeName(fd)
	if !ast.IsExported(recv) {
		return
	}
	match := false
	for _, frag := range ioReceivers {
		if strings.Contains(recv, frag) {
			match = true
			break
		}
	}
	if !match {
		return
	}
	params := fd.Type.Params
	if params != nil && len(params.List) > 0 {
		if tv, ok := pass.Info.Types[params.List[0].Type]; ok && lint.IsContextType(tv.Type) {
			return
		}
	}
	pass.Reportf(fd.Name.Pos(), "%s.%s performs query I/O but takes no context.Context; it cannot be cancelled or admission-checked (document an exception with //lint:noctx)", recv, fd.Name.Name)
}
