// Package linttest runs lint analyzers over golden fixture packages,
// the in-tree analogue of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives in testdata/src/<dir> next to the analyzer's test
// file. Expected diagnostics are declared inline:
//
//	mu.Lock() // want `return leaves mu locked`
//
// Every diagnostic must match a `// want` regexp on its line and every
// expectation must fire at least once; anything else fails the test.
// Fixtures may import standard-library and module packages — imports
// resolve through compiler export data exactly as in cmd/upilint.
package linttest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"upidb/internal/lint"
)

// Run analyzes each fixture package under testdata/src and asserts
// its diagnostics match the // want expectations exactly.
func Run(t *testing.T, a *lint.Analyzer, dirs ...string) {
	t.Helper()
	for _, dir := range dirs {
		t.Run(dir, func(t *testing.T) {
			t.Helper()
			runOne(t, a, filepath.Join("testdata", "src", dir))
		})
	}
}

func runOne(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		af, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, af)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}

	imports := importSet(files)
	lookup, err := exportData(imports)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkgPath := "fixture/" + filepath.Base(dir)
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	var diags []lint.Diagnostic
	pass := lint.NewPass(a, fset, files, tpkg, info, &diags)
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	checkExpectations(t, diags, wants)
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, m[1], pos) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses the quoted regexps after // want: either
// "double-quoted" or `backquoted`, space-separated.
func splitPatterns(t *testing.T, s string, pos token.Position) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, s[:end+1], err)
			}
			pats = append(pats, pat)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: want patterns must be quoted: %s", pos, s)
		}
	}
	return pats
}

func checkExpectations(t *testing.T, diags []lint.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q did not fire", w.file, w.line, w.re)
		}
	}
}

func importSet(files []*ast.File) []string {
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil && p != "unsafe" {
				seen[p] = true
			}
		}
	}
	var out []string
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// exportData builds an import-path -> export-file lookup by asking the
// go command to compile the fixture's imports (and their deps) into
// the build cache.
func exportData(imports []string) (func(path string) (io.ReadCloser, error), error) {
	exports := map[string]string{}
	if len(imports) > 0 {
		args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, imports...)
		cmd := exec.Command("go", args...)
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list: %w", err)
		}
		type pkg struct{ ImportPath, Export string }
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p pkg
			if err := dec.Decode(&p); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}, nil
}
