package sidebandcheck

import (
	"testing"

	"upidb/internal/lint/linttest"
)

func TestSidebandcheck(t *testing.T) {
	linttest.Run(t, Analyzer, "a")
}
