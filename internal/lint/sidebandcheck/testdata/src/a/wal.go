// Fixture for sidebandcheck, durability-scoped by file name (wal.go).
package a

import "upidb/internal/storage"

// createLog forgets to register the WAL before creating it.
func createLog(fs *storage.FS, store string) *storage.File {
	name := store + ".log"
	return fs.Create(name) // want `durability file Create\(name\) without Sideband\(name\)`
}

// createLogRegistered pairs registration with creation.
func createLogRegistered(fs *storage.FS, store string) *storage.File {
	name := store + ".log"
	fs.Sideband(name)
	return fs.Create(name)
}

// openLog opens without registration.
func openLog(fs *storage.FS, store string) (*storage.File, error) {
	name := store + ".log"
	return fs.Open(name) // want `durability file Open\(name\) without Sideband\(name\)`
}

// delegated documents that a callee registers the file.
func delegated(fs *storage.FS, store string) *storage.File {
	name := ensureRegistered(fs, store)
	return fs.Create(name) //lint:sidebandcheck ensureRegistered marked it
}

func ensureRegistered(fs *storage.FS, store string) string {
	name := store + ".log"
	fs.Sideband(name)
	return name
}
