// Fixture for sidebandcheck in an unscoped file: only expression-
// triggered and function-name-triggered creations are checked.
package a

import "upidb/internal/storage"

// modeled index files are query I/O, not durability I/O: no finding.
func buildIndex(fs *storage.FS, name string) *storage.File {
	return fs.Create(name + ".rtree")
}

// a file whose name marks it as durability bookkeeping must register
// wherever it is created.
func writeMarker(fs *storage.FS) *storage.File {
	markerFile := "UPIDB"
	return fs.Create(markerFile) // want `durability file Create\(markerFile\)`
}

// same, registered: clean.
func writeMarkerRegistered(fs *storage.FS) *storage.File {
	markerFile := "UPIDB"
	fs.Sideband(markerFile)
	return fs.Create(markerFile)
}

// function-name scope: a WAL helper outside wal.go is still checked.
func rotateWAL(fs *storage.FS, name string) *storage.File {
	return fs.Create(name + ".0") // want `durability file Create\(name \+ "\.0"\)`
}

// walkIndex is not WAL code; the Walk false-positive boundary.
func walkIndex(fs *storage.FS, name string) *storage.File {
	return fs.Create(name + ".idx")
}
