// Package sidebandcheck enforces the modeled-I/O accounting invariant
// from PR 6: every WAL, manifest, shard-count or marker file — any
// file that exists for durability bookkeeping rather than query
// execution — must be registered with storage.FS.Sideband before use,
// so its I/O is never charged to the simulated disk and never diverted
// onto a query's per-query tape. One unregistered durability file
// silently perturbs every modeled-cost experiment and the bench
// regression gate (the costs stop being byte-identical across
// backends).
//
// The analyzer flags calls to (*storage.FS).Create / Open whose result
// is durability I/O — recognized by scope (a function in wal.go /
// manifest.go, or whose name marks it as WAL/manifest/shard-file
// code) or by the file-name expression itself (it mentions wal,
// manifest, shards or marker) — that have no Sideband registration of
// the same file-name expression in the same function. Registration in
// a callee is documented at the call site with //lint:sidebandcheck.
package sidebandcheck

import (
	"go/ast"
	"regexp"
	"strings"

	"upidb/internal/lint"
)

// Analyzer is the sidebandcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name:    "sidebandcheck",
	Doc:     "reports durability files created or opened on a storage.FS without a matching Sideband registration in the same function",
	Aliases: []string{"sideband"},
	Run:     run,
}

// walFunc matches function names that are WAL code without matching
// Walk-style names: an upper-case WAL, or a lower-case wal not
// followed by k.
var walFunc = regexp.MustCompile(`WAL|[Ww]al($|[^k])`)

// inScopeFile marks whole files as durability code.
func inScopeFile(base string) bool {
	return base == "wal.go" || base == "manifest.go"
}

// inScopeFunc marks durability helpers living in other files.
func inScopeFunc(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "manifest") ||
		strings.Contains(lower, "shardsfile") ||
		walFunc.MatchString(name)
}

// exprTriggered recognizes durability files by their name expression,
// wherever they are created (the facade's marker file, a shard-count
// file written outside a scoped helper).
func exprTriggered(argText string) bool {
	lower := strings.ToLower(argText)
	for _, frag := range []string{"wal", "manifest", "shards", "marker"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		base := lint.BaseFilename(pass.Fset, f.Pos())
		for _, fd := range lint.FuncsInFile(f) {
			checkFunc(pass, fd, inScopeFile(base) || inScopeFunc(fd.Name.Name))
		}
	}
	return nil
}

type fsCall struct {
	call *ast.CallExpr
	kind string // "Create" or "Open"
	arg  string
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl, scoped bool) {
	registered := make(map[string]bool)
	var creations []fsCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return true
		}
		arg := lint.ExprText(pass.Fset, call.Args[0])
		switch {
		case lint.MethodOn(pass.Info, call, "upidb/internal/storage", "FS", "Sideband"):
			registered[arg] = true
		case lint.MethodOn(pass.Info, call, "upidb/internal/storage", "FS", "Create"):
			creations = append(creations, fsCall{call, "Create", arg})
		case lint.MethodOn(pass.Info, call, "upidb/internal/storage", "FS", "Open"):
			creations = append(creations, fsCall{call, "Open", arg})
		}
		return true
	})
	for _, c := range creations {
		if !scoped && !exprTriggered(c.arg) {
			continue
		}
		if registered[c.arg] {
			continue
		}
		pass.Reportf(c.call.Pos(), "durability file %s(%s) without Sideband(%s) in the same function: its I/O would leak into modeled tapes and per-query stats (register it, or mark //lint:sidebandcheck if a callee registers)", c.kind, c.arg, c.arg)
	}
}
