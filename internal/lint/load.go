package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Error      *struct{ Err string }
}

// LoadConfig controls Load.
type LoadConfig struct {
	// Dir is the directory go list runs in (the module root or any
	// directory inside it). Empty means the current directory.
	Dir string
	// Tests includes each matched package's test variant, so _test.go
	// files are analyzed too.
	Tests bool
}

// Load resolves the patterns with `go list -export -deps` and returns
// every directly matched package parsed and type-checked. Imports are
// satisfied from compiler export data out of the build cache, so a
// full `./...` load pays one `go list` invocation and per-package
// source parsing only for the packages under analysis — no third-party
// loader involved.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-deps"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, "-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly,ForTest,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if derr := dec.Decode(&p); errors.Is(derr, io.EOF) {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("go list output: %w", derr)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Name == "" {
			continue
		}
		// Skip synthesized test-binary mains ("pkg.test"): they carry
		// no source of ours.
		if strings.HasSuffix(p.ImportPath, ".test") && p.ForTest == "" && p.Name == "main" {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}

	// With -test, the in-package test variant ("p [p.test]") carries
	// the package's GoFiles plus its _test.go files; checking the
	// plain package too would just duplicate work.
	superseded := make(map[string]bool)
	for _, p := range targets {
		if p.ForTest != "" && p.ForTest == strings.TrimSuffix(p.ImportPath, fmt.Sprintf(" [%s.test]", p.ForTest)) {
			superseded[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	// One shared gc importer: stdlib and module export data is parsed
	// once per Load, not once per package.
	shared := &exportLookup{exports: exports}
	imp := importer.ForCompiler(fset, "gc", shared.open)

	var pkgs []*Package
	for _, p := range targets {
		if p.ForTest == "" && superseded[p.ImportPath] {
			continue
		}
		// Inside a test variant ("pkg [pkg.test]"), imports of sibling
		// packages resolve to their own test variants when those
		// exist; point the shared lookup at this variant's namespace
		// while its files are checked.
		shared.forTest = p.ForTest
		pkg, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportLookup opens compiler export data for an import path, mapping
// through test-variant namespaces when a test package is being
// checked.
type exportLookup struct {
	exports map[string]string
	forTest string
}

func (l *exportLookup) open(path string) (io.ReadCloser, error) {
	if l.forTest != "" {
		if e, ok := l.exports[fmt.Sprintf("%s [%s.test]", path, l.forTest)]; ok {
			return os.Open(e)
		}
	}
	if e, ok := l.exports[path]; ok {
		return os.Open(e)
	}
	return nil, fmt.Errorf("no export data for %q", path)
}

func typeCheck(fset *token.FileSet, imp types.Importer, p listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		af, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		PkgPath: p.ImportPath,
		Dir:     p.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
