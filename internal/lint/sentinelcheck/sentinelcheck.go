// Package sentinelcheck enforces the engine's error discipline. Every
// layer returns (or wraps) the typed sentinels in errors.go /
// internal/upi/errors.go, and the facade documents that errors.Is
// works on any error that crosses it regardless of origin. Two
// patterns silently break that contract:
//
//   - comparing error values with == or != against anything but nil:
//     a sentinel wrapped with %w compares unequal even though
//     errors.Is matches, so the comparison rots the first time a layer
//     adds context;
//   - formatting an error into fmt.Errorf with %v/%s instead of %w:
//     the chain is flattened to text and errors.Is(err, Sentinel)
//     stops matching downstream.
package sentinelcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"upidb/internal/lint"
)

// Analyzer is the sentinelcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "sentinelcheck",
	Doc:  "reports ==/!= comparisons of error values and fmt.Errorf calls that flatten an error with %v/%s instead of wrapping with %w",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, e)
			case *ast.CallExpr:
				checkErrorf(pass, e)
			}
			return true
		})
	}
	return nil
}

// checkComparison flags err == x / err != x where an operand is
// error-typed and the other is not the nil literal.
func checkComparison(pass *lint.Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	if isNil(pass, e.X) || isNil(pass, e.Y) {
		return
	}
	xErr := isErrorExpr(pass, e.X)
	yErr := isErrorExpr(pass, e.Y)
	if !xErr && !yErr {
		return
	}
	verb := "errors.Is"
	if e.Op == token.NEQ {
		verb = "!errors.Is"
	}
	pass.Reportf(e.OpPos, "error compared with %s; use %s so wrapped sentinels still match", e.Op, verb)
}

func isNil(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}

// isErrorExpr reports whether e's static type is the error interface.
// Concrete error implementations are excluded: comparing two *MyErr
// pointers is identity comparison the author chose deliberately.
func isErrorExpr(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return lint.IsErrorType(tv.Type)
}

// checkErrorf flags fmt.Errorf("... %v ...", err) where the argument
// for a %v/%s verb implements error: the wrap verb %w keeps the chain.
func checkErrorf(pass *lint.Pass, call *ast.CallExpr) {
	if !lint.IsPkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass, call.Args[0])
	if !ok {
		return
	}
	verbs, exact := parseVerbs(format)
	if !exact {
		return // indexed or star verbs: bail out rather than guess
	}
	args := call.Args[1:]
	for i, v := range verbs {
		if i >= len(args) {
			break
		}
		if v != 'v' && v != 's' {
			continue
		}
		tv, ok := pass.Info.Types[args[i]]
		if !ok || tv.Type == nil {
			continue
		}
		if lint.IsErrorType(tv.Type) || lint.ImplementsError(tv.Type) {
			if isStringy(pass, args[i]) {
				continue
			}
			pass.Reportf(args[i].Pos(), "error formatted with %%%c loses the error chain; wrap with %%w so errors.Is still matches the sentinel", v)
		}
	}
}

// isStringy excludes err.Error() style arguments, which are strings.
func isStringy(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func constantString(pass *lint.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// parseVerbs returns the verb letter for each consumed argument of a
// printf format string, in order. exact is false when the format uses
// features the simple scanner does not model (indexed arguments,
// * width/precision), in which case the caller must not map verbs to
// arguments positionally.
func parseVerbs(format string) (verbs []byte, exact bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '*' || format[i] == '[' {
			return nil, false
		}
		verbs = append(verbs, format[i])
	}
	return verbs, true
}
