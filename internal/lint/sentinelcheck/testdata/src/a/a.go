// Fixture for sentinelcheck: firing cases and clean boundaries.
package a

import (
	"errors"
	"fmt"
	"io"
)

var errSentinel = errors.New("sentinel")

type codedErr struct{ code int }

func (e *codedErr) Error() string { return "coded" }

func compare(err error) {
	if err == errSentinel { // want `error compared with ==`
		return
	}
	if err != io.EOF { // want `error compared with !=`
		return
	}
	if errSentinel == err { // want `error compared with ==`
		return
	}
	// nil comparisons are the idiom, not a finding.
	if err == nil {
		return
	}
	if err != nil {
		return
	}
	// errors.Is is the fix, not a finding.
	if errors.Is(err, errSentinel) {
		return
	}
}

// concreteIdentity: comparing concrete pointers is deliberate identity
// comparison, outside this rule.
func concreteIdentity(a, b *codedErr) bool {
	return a == b
}

func wrap(err error) error {
	return fmt.Errorf("query failed: %v", err) // want `error formatted with %v loses the error chain`
}

func wrapS(err error) error {
	return fmt.Errorf("query failed: %s", err) // want `error formatted with %s loses the error chain`
}

func wrapConcrete(e *codedErr) error {
	return fmt.Errorf("stage: %v", e) // want `error formatted with %v loses the error chain`
}

// wrapW is the house style.
func wrapW(err error) error {
	return fmt.Errorf("query failed: %w", err)
}

// stringified arguments are strings, not errors.
func wrapString(err error) error {
	return fmt.Errorf("query failed: %s", err.Error())
}

// mixed verbs map positionally.
func mixed(err error, n int) error {
	return fmt.Errorf("shard %d: %v", n, err) // want `error formatted with %v loses the error chain`
}

// indexed formats are not modeled; no finding rather than a guess.
func indexed(err error) error {
	return fmt.Errorf("%[1]v", err)
}
