package sentinelcheck

import (
	"testing"

	"upidb/internal/lint/linttest"
)

func TestSentinelcheck(t *testing.T) {
	linttest.Run(t, Analyzer, "a")
}
