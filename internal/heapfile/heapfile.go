// Package heapfile implements an unclustered, append-only heap file
// with slotted pages and RowID addressing.
//
// It is the baseline storage layout the paper compares UPIs against:
// "an unclustered table (clustered by an auto-increment sequence)".
// The PII secondary index points into this heap; fetching many rows
// costs one random seek per distinct page even after sorting RowIDs in
// heap order (the bitmap-index-scan discipline the paper assumes).
package heapfile

import (
	"encoding/binary"
	"fmt"
	"sort"

	"upidb/internal/storage"
)

// RowID locates one record: a page number and a slot within the page.
type RowID struct {
	Page storage.PageID
	Slot uint16
}

// Less orders RowIDs in physical heap order (the order a bitmap scan
// visits pages in).
func (r RowID) Less(o RowID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

func (r RowID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// Page layout:
//
//	[2: nslots][2: freeOff] then per slot [2: off][2: len]
//	record data grows from the end of the page downward.
//
// A slot with len == 0xFFFF is a tombstone.
const (
	pageHeader   = 4
	slotSize     = 4
	tombstoneLen = 0xFFFF
)

// Heap is an append-only heap file. Records are immutable once
// written; Delete marks a tombstone. Not safe for concurrent use.
type Heap struct {
	pager *storage.Pager
	// tail is the page records are currently appended to.
	tail      storage.PageID
	tailValid bool
	count     int64
}

// Create initializes an empty heap on an empty pager.
func Create(p *storage.Pager) (*Heap, error) {
	if p.NumPages() != 0 {
		return nil, fmt.Errorf("heapfile: create on non-empty file %s", p.File().Name())
	}
	return &Heap{pager: p}, nil
}

// Open loads an existing heap, recounting live records with one
// sequential pass (heap files carry no meta page).
func Open(p *storage.Pager) (*Heap, error) {
	h := &Heap{pager: p}
	if p.NumPages() > 0 {
		h.tail = p.NumPages() - 1
		h.tailValid = true
	}
	err := h.Scan(func(RowID, []byte) bool {
		h.count++
		return true
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Count returns the number of live (non-deleted) records.
func (h *Heap) Count() int64 { return h.count }

// Pager exposes the underlying pager for cache control.
func (h *Heap) Pager() *storage.Pager { return h.pager }

// NumPages returns the heap size in pages.
func (h *Heap) NumPages() storage.PageID { return h.pager.NumPages() }

func readHeader(buf []byte) (nslots int, freeOff int) {
	return int(binary.BigEndian.Uint16(buf[0:])), int(binary.BigEndian.Uint16(buf[2:]))
}

func writeHeader(buf []byte, nslots, freeOff int) {
	binary.BigEndian.PutUint16(buf[0:], uint16(nslots))
	binary.BigEndian.PutUint16(buf[2:], uint16(freeOff))
}

func slotAt(buf []byte, i int) (off, length int) {
	base := pageHeader + i*slotSize
	return int(binary.BigEndian.Uint16(buf[base:])), int(binary.BigEndian.Uint16(buf[base+2:]))
}

func setSlot(buf []byte, i, off, length int) {
	base := pageHeader + i*slotSize
	binary.BigEndian.PutUint16(buf[base:], uint16(off))
	binary.BigEndian.PutUint16(buf[base+2:], uint16(length))
}

// Append stores a record at the end of the heap and returns its RowID.
// Appends are sequential I/O: they only ever touch the tail page.
func (h *Heap) Append(rec []byte) (RowID, error) {
	ps := h.pager.PageSize()
	need := len(rec) + slotSize
	if len(rec) >= tombstoneLen || need > ps-pageHeader {
		return RowID{}, fmt.Errorf("heapfile: record of %d bytes exceeds page capacity", len(rec))
	}
	if h.tailValid {
		buf, err := h.pager.Read(h.tail)
		if err != nil {
			return RowID{}, err
		}
		nslots, freeOff := readHeader(buf)
		slotEnd := pageHeader + (nslots+1)*slotSize
		if freeOff-len(rec) >= slotEnd {
			newOff := freeOff - len(rec)
			copy(buf[newOff:], rec)
			setSlot(buf, nslots, newOff, len(rec))
			writeHeader(buf, nslots+1, newOff)
			h.pager.MarkDirty(h.tail)
			h.count++
			return RowID{Page: h.tail, Slot: uint16(nslots)}, nil
		}
	}
	id, buf, err := h.pager.Alloc()
	if err != nil {
		return RowID{}, err
	}
	newOff := ps - len(rec)
	copy(buf[newOff:], rec)
	setSlot(buf, 0, newOff, len(rec))
	writeHeader(buf, 1, newOff)
	h.pager.MarkDirty(id)
	h.tail = id
	h.tailValid = true
	h.count++
	return RowID{Page: id, Slot: 0}, nil
}

// Get returns the record at id, or ok=false if it was deleted.
func (h *Heap) Get(id RowID) ([]byte, bool, error) {
	buf, err := h.pager.Read(id.Page)
	if err != nil {
		return nil, false, err
	}
	nslots, _ := readHeader(buf)
	if int(id.Slot) >= nslots {
		return nil, false, fmt.Errorf("heapfile: no slot %d on page %d", id.Slot, id.Page)
	}
	off, length := slotAt(buf, int(id.Slot))
	if length == tombstoneLen {
		return nil, false, nil
	}
	return buf[off : off+length], true, nil
}

// Delete tombstones the record at id. Deleting an already-deleted
// record reports false. Deletes touch random pages, which is why the
// paper's Table 7 shows even the unclustered heap paying dearly for
// random deletions.
func (h *Heap) Delete(id RowID) (bool, error) {
	buf, err := h.pager.Read(id.Page)
	if err != nil {
		return false, err
	}
	nslots, _ := readHeader(buf)
	if int(id.Slot) >= nslots {
		return false, fmt.Errorf("heapfile: no slot %d on page %d", id.Slot, id.Page)
	}
	off, length := slotAt(buf, int(id.Slot))
	if length == tombstoneLen {
		return false, nil
	}
	setSlot(buf, int(id.Slot), off, tombstoneLen)
	h.pager.MarkDirty(id.Page)
	h.count--
	return true, nil
}

// Scan visits all live records in physical order (one sequential pass).
// fn returning false stops early.
func (h *Heap) Scan(fn func(id RowID, rec []byte) bool) error {
	for pg := storage.PageID(0); pg < h.pager.NumPages(); pg++ {
		buf, err := h.pager.Read(pg)
		if err != nil {
			return err
		}
		nslots, _ := readHeader(buf)
		for s := 0; s < nslots; s++ {
			off, length := slotAt(buf, s)
			if length == tombstoneLen {
				continue
			}
			if !fn(RowID{Page: pg, Slot: uint16(s)}, buf[off:off+length]) {
				return nil
			}
		}
	}
	return nil
}

// FetchSorted retrieves the records for the given RowIDs, visiting
// pages in physical order (the paper: "we always sort pointers in heap
// order before accessing heap files similarly to PostgreSQL's bitmap
// index scan"). The callback receives rows in heap order, not in the
// order ids were supplied. Deleted rows are skipped.
func (h *Heap) FetchSorted(ids []RowID, fn func(id RowID, rec []byte) bool) error {
	sorted := append([]RowID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for _, id := range sorted {
		rec, ok, err := h.Get(id)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if !fn(id, rec) {
			return nil
		}
	}
	return nil
}
