package heapfile

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"upidb/internal/sim"
	"upidb/internal/storage"
)

func newTestHeap(t *testing.T, pageSize int) (*Heap, *sim.Disk, *storage.Pager) {
	t.Helper()
	disk := sim.NewDisk(sim.DefaultParams())
	fs := storage.NewFS(disk)
	p, err := storage.NewPager(fs.Create("h"), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	return h, disk, p
}

func rec(i int) []byte { return []byte(fmt.Sprintf("record-%06d-payload", i)) }

func TestAppendGet(t *testing.T) {
	h, _, _ := newTestHeap(t, 256)
	var ids []RowID
	for i := 0; i < 100; i++ {
		id, err := h.Append(rec(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	for i, id := range ids {
		got, ok, err := h.Get(id)
		if err != nil || !ok || !bytes.Equal(got, rec(i)) {
			t.Fatalf("get %d: %q %v %v", i, got, ok, err)
		}
	}
	if h.NumPages() < 10 {
		t.Fatalf("expected multiple pages, got %d", h.NumPages())
	}
}

func TestRowIDsAreMonotonic(t *testing.T) {
	h, _, _ := newTestHeap(t, 256)
	var prev RowID
	for i := 0; i < 200; i++ {
		id, err := h.Append(rec(i))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && !prev.Less(id) {
			t.Fatalf("RowID went backwards: %v then %v", prev, id)
		}
		prev = id
	}
}

func TestDelete(t *testing.T) {
	h, _, _ := newTestHeap(t, 256)
	id0, _ := h.Append(rec(0))
	id1, _ := h.Append(rec(1))
	del, err := h.Delete(id0)
	if err != nil || !del {
		t.Fatalf("delete: %v %v", del, err)
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if _, ok, _ := h.Get(id0); ok {
		t.Fatal("deleted record still readable")
	}
	if got, ok, _ := h.Get(id1); !ok || !bytes.Equal(got, rec(1)) {
		t.Fatal("sibling record damaged by delete")
	}
	if del, _ := h.Delete(id0); del {
		t.Fatal("double delete reported true")
	}
	if _, _, err := h.Get(RowID{Page: 0, Slot: 99}); err == nil {
		t.Fatal("bad slot should error")
	}
}

func TestScan(t *testing.T) {
	h, _, _ := newTestHeap(t, 256)
	var ids []RowID
	for i := 0; i < 50; i++ {
		id, _ := h.Append(rec(i))
		ids = append(ids, id)
	}
	h.Delete(ids[10])
	h.Delete(ids[20])
	seen := 0
	err := h.Scan(func(id RowID, r []byte) bool {
		if bytes.Equal(r, rec(10)) || bytes.Equal(r, rec(20)) {
			t.Fatal("scan returned deleted record")
		}
		seen++
		return true
	})
	if err != nil || seen != 48 {
		t.Fatalf("scan: %v, saw %d", err, seen)
	}
	// Early termination.
	n := 0
	h.Scan(func(RowID, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestFetchSortedVisitsHeapOrder(t *testing.T) {
	h, _, _ := newTestHeap(t, 256)
	var ids []RowID
	for i := 0; i < 100; i++ {
		id, _ := h.Append(rec(i))
		ids = append(ids, id)
	}
	// Request in shuffled order; expect heap order back.
	shuffled := append([]RowID(nil), ids...)
	rand.New(rand.NewSource(5)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	var prev *RowID
	n := 0
	err := h.FetchSorted(shuffled, func(id RowID, _ []byte) bool {
		if prev != nil && !prev.Less(id) {
			t.Fatalf("fetch out of heap order: %v then %v", *prev, id)
		}
		p := id
		prev = &p
		n++
		return true
	})
	if err != nil || n != 100 {
		t.Fatalf("fetch: %v, n=%d", err, n)
	}
}

func TestAppendIsSequentialDeleteIsNot(t *testing.T) {
	h, disk, p := newTestHeap(t, 256)
	p.SetCacheLimit(4)
	var ids []RowID
	for i := 0; i < 2000; i++ {
		id, err := h.Append(rec(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	p.Flush()
	apStats := disk.Stats()
	if apStats.Seeks*10 > apStats.SequentialIO {
		t.Fatalf("appends too seeky: %+v", apStats)
	}

	// Random deletes touch random pages: mostly seeks.
	p.DropCache()
	before := disk.Stats()
	rng := rand.New(rand.NewSource(9))
	for _, i := range rng.Perm(2000)[:200] {
		if _, err := h.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	d := disk.Stats().Sub(before)
	if d.Seeks < 100 {
		t.Fatalf("random deletes should seek heavily: %+v", d)
	}
}

func TestRecordTooLarge(t *testing.T) {
	h, _, _ := newTestHeap(t, 256)
	if _, err := h.Append(make([]byte, 300)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestOpenRecounts(t *testing.T) {
	disk := sim.NewDisk(sim.DefaultParams())
	fs := storage.NewFS(disk)
	p, _ := storage.NewPager(fs.Create("h"), 256)
	h, _ := Create(p)
	var ids []RowID
	for i := 0; i < 60; i++ {
		id, _ := h.Append(rec(i))
		ids = append(ids, id)
	}
	h.Delete(ids[0])
	p.Flush()

	f2, _ := fs.Open("h")
	p2, _ := storage.NewPager(f2, 256)
	h2, err := Open(p2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Count() != 59 {
		t.Fatalf("reopened count = %d", h2.Count())
	}
	// Appends continue on the tail page without corrupting old data.
	if _, err := h2.Append(rec(999)); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := h2.Get(ids[59])
	if !ok || !bytes.Equal(got, rec(59)) {
		t.Fatal("old record damaged after reopen+append")
	}
}
