package server

// httptest suite for the HTTP front end: NDJSON query streaming with a
// well-formed trailer, token-bucket overload (429 + Retry-After, never
// a 5xx), deadline propagation into the engine's admission (504),
// graceful drain (503 everywhere, healthz included, and Drain returns
// with zero requests in flight), and the 400/404 rejection surface.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"upidb"
)

// newTestServer builds an in-memory DB with one sharded table holding
// n tuples (primary X over 16 values, secondary Y over 8), flushed and
// merged so statistics are fresh and planner routing works.
func newTestServer(t *testing.T, cfg Config, n int) (*Server, *httptest.Server) {
	t.Helper()
	db, err := upidb.Create("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	tab, err := db.CreateTable("authors", "X", []string{"Y"}, upidb.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		x, err := upidb.NewDiscrete([]upidb.Alternative{
			{Value: fmt.Sprintf("v%d", i%16), Prob: 0.7},
			{Value: fmt.Sprintf("v%d", (i+5)%16), Prob: 0.3},
		})
		if err != nil {
			t.Fatal(err)
		}
		y, err := upidb.NewDiscrete([]upidb.Alternative{{Value: fmt.Sprintf("w%d", i%8), Prob: 1}})
		if err != nil {
			t.Fatal(err)
		}
		tup := &upidb.Tuple{ID: uint64(i + 1), Existence: 1,
			Unc: []upidb.UncField{{Name: "X", Dist: x}, {Name: "Y", Dist: y}}}
		if err := tab.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	if n > 0 {
		if err := tab.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := tab.Merge(); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(db, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// queryNDJSON posts a query and parses the NDJSON stream into result
// lines and the trailer.
func queryNDJSON(t *testing.T, ts *httptest.Server, body any) ([]resultLine, trailerLine) {
	t.Helper()
	resp := post(t, ts.URL+"/v1/tables/authors/query", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("query: %s: %s", resp.Status, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var results []resultLine
	var trailer trailerLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var probe map[string]any
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case probe["error"] != nil:
			t.Fatalf("mid-stream error: %s", line)
		case probe["done"] != nil:
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatal(err)
			}
		default:
			var r resultLine
			if err := json.Unmarshal(line, &r); err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !trailer.Done {
		t.Fatal("stream ended without a done trailer")
	}
	return results, trailer
}

// TestQueryStream: a PTQ streams results in confidence order with a
// trailer whose counters agree with the stream, and inserts/deletes
// round-trip through their endpoints.
func TestQueryStream(t *testing.T) {
	_, ts := newTestServer(t, Config{}, 400)

	results, trailer := queryNDJSON(t, ts, map[string]any{"value": "v3", "qt": 0.2})
	if len(results) == 0 {
		t.Fatal("PTQ returned nothing")
	}
	for i := 1; i < len(results); i++ {
		if results[i].Confidence > results[i-1].Confidence {
			t.Fatalf("stream out of confidence order at %d", i)
		}
	}
	if trailer.Count != len(results) {
		t.Fatalf("trailer count %d, streamed %d", trailer.Count, len(results))
	}
	if trailer.Shards != 2 {
		t.Fatalf("trailer shards %d, want 2", trailer.Shards)
	}
	if trailer.Dispatches != 2 {
		t.Fatalf("trailer dispatches %d, want one per shard", trailer.Dispatches)
	}
	if trailer.Yields != int64(len(results)) {
		t.Fatalf("trailer yields %d for %d results", trailer.Yields, len(results))
	}

	// Top-k bounds the stream.
	results, trailer = queryNDJSON(t, ts, map[string]any{"kind": "topk", "value": "v3", "k": 5})
	if len(results) != 5 || trailer.Count != 5 {
		t.Fatalf("top-5: %d results, trailer %d", len(results), trailer.Count)
	}

	// Insert a recognizable tuple, see it in a query, delete it, see it
	// gone.
	resp := post(t, ts.URL+"/v1/tables/authors/insert", map[string]any{
		"id": 999_999, "unc": []any{map[string]any{"name": "X", "alts": []any{
			map[string]any{"value": "v3", "prob": 0.99},
		}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %s", resp.Status)
	}
	resp.Body.Close()
	results, _ = queryNDJSON(t, ts, map[string]any{"value": "v3", "qt": 0.9})
	found := false
	for _, r := range results {
		if r.ID == 999_999 {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted tuple missing from query")
	}
	resp = post(t, ts.URL+"/v1/tables/authors/delete", map[string]any{"id": 999_999})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %s", resp.Status)
	}
	resp.Body.Close()
	results, _ = queryNDJSON(t, ts, map[string]any{"value": "v3", "qt": 0.9})
	for _, r := range results {
		if r.ID == 999_999 {
			t.Fatal("deleted tuple still served")
		}
	}

	// Stats endpoint reflects the table.
	resp, err := http.Get(ts.URL + "/v1/tables/authors/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Table != "authors" || stats.PrimaryAttr != "X" || stats.Shards != 2 || !stats.Seeded {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestRejections: the 400/404 surface — malformed bodies, invalid
// parameters and unknown tables are refused before touching the
// engine.
func TestRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{}, 40)
	cases := []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{"bad json", "/v1/tables/authors/query", "{not json", http.StatusBadRequest},
		{"bad kind", "/v1/tables/authors/query", `{"kind":"scan"}`, http.StatusBadRequest},
		{"topk without k", "/v1/tables/authors/query", `{"kind":"topk","value":"v1"}`, http.StatusBadRequest},
		{"bad route", "/v1/tables/authors/query", `{"value":"v1","route":"warp"}`, http.StatusBadRequest},
		{"unknown attr", "/v1/tables/authors/query", `{"attr":"Z","value":"v1"}`, http.StatusBadRequest},
		{"unknown table", "/v1/tables/nosuch/query", `{"value":"v1"}`, http.StatusNotFound},
		{"insert id 0", "/v1/tables/authors/insert", `{"id":0}`, http.StatusBadRequest},
		{"insert bad dist", "/v1/tables/authors/insert",
			`{"id":5,"unc":[{"name":"X","alts":[{"value":"a","prob":1.7}]}]}`, http.StatusBadRequest},
		{"delete id 0", "/v1/tables/authors/delete", `{"id":0}`, http.StatusBadRequest},
		{"delete unknown table", "/v1/tables/nosuch/delete", `{"id":3}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: got %s (%s), want %d", tc.name, resp.Status, raw, tc.status)
		}
		var body map[string]string
		if err := json.Unmarshal(raw, &body); err != nil || body["error"] == "" {
			t.Errorf("%s: error body %q not a JSON error document", tc.name, raw)
		}
	}
}

// TestOverload: with a single admission token and many concurrent
// queries, the excess sheds as 429 + Retry-After — and nothing ever
// surfaces as a 5xx.
func TestOverload(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInflight: 1}, 3000)

	const clients = 16
	var ok200, shed429, other atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				resp := post(t, ts.URL+"/v1/tables/authors/query", map[string]any{"value": "v1", "qt": 0.1})
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					shed429.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("%d responses were neither 200 nor 429", other.Load())
	}
	if ok200.Load() == 0 {
		t.Fatal("no request was served at all")
	}
	if shed429.Load() == 0 {
		t.Fatal("16 clients against max-inflight 1 never shed a 429")
	}
}

// TestDeadlinePropagation: a microscopic timeout_ms flows into the
// engine's deadline admission; the planner-routed query is refused (or
// canceled mid-flight) and surfaces as 504, not 500.
func TestDeadlinePropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{}, 3000)
	// Warm nothing: modeled scan cost for 3000 tuples far exceeds 1ms.
	resp := post(t, ts.URL+"/v1/tables/authors/query",
		map[string]any{"value": "v1", "qt": 0.1, "timeout_ms": 1, "route": "planner"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("want 504, got %s: %s", resp.Status, raw)
	}
}

// TestGracefulDrain: BeginDrain turns every endpoint (healthz
// included) into 503 while an in-flight request runs to completion;
// Drain returns once it has.
func TestGracefulDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{}, 3000)

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz before drain: %s", resp.Status)
		}
	}

	// Hold one request in flight across the drain flip: start a query,
	// read its first byte so the handler is definitely past admission,
	// then BeginDrain, then finish reading.
	resp := post(t, ts.URL+"/v1/tables/authors/query", map[string]any{"value": "v1", "qt": 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight query: %s", resp.Status)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadByte(); err != nil {
		t.Fatal(err)
	}
	srv.BeginDrain()

	// New work is refused everywhere.
	if resp2 := post(t, ts.URL+"/v1/tables/authors/query", map[string]any{"value": "v1"}); resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: %s", resp2.Status)
	} else {
		resp2.Body.Close()
	}
	if resp2, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz during drain: %s", resp2.Status)
		}
	}

	// The in-flight stream still completes.
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !bytes.Contains(rest, []byte(`"done":true`)) {
		t.Fatal("in-flight stream was cut off before its trailer")
	}

	// Drain returns promptly now that nothing is in flight.
	done := make(chan struct{})
	go func() { srv.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return")
	}
}

// TestMetricsEndpoint: /metrics serves the whole registry — engine,
// facade and server families — in Prometheus text format, stays up
// during drain, and counts the requests it observed.
func TestMetricsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{}, 200)

	// Generate some traffic so the counters are nonzero.
	resp := post(t, ts.URL+"/v1/tables/authors/query", map[string]any{"value": "v3", "qt": 0.2})
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics: %s", resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Fatalf("/metrics content type %q", ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	out := scrape()
	for _, want := range []string{
		"# TYPE upidb_fracture_inserts_total counter",
		"# TYPE upidb_shard_scatters_total counter",
		"# TYPE upidb_planner_route_total counter",
		"# TYPE upidb_http_requests_total counter",
		"# TYPE upidb_http_request_seconds histogram",
		"# TYPE upidb_http_inflight gauge",
		`upidb_http_requests_total{endpoint="query",status="200"} 1`,
		`upidb_shard_tuples{`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Operators keep their telemetry while the server drains.
	srv.BeginDrain()
	if !strings.Contains(scrape(), "upidb_http_requests_total") {
		t.Error("scrape during drain lost the server families")
	}
}

// TestPprofGating: the profiling endpoints are absent by default and
// mounted only under Config.EnablePprof.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{}, 0)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in: %s, want 404", resp.Status)
	}

	_, on := newTestServer(t, Config{EnablePprof: true}, 0)
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte("goroutine")) {
		t.Fatalf("pprof index with opt-in: %s (%d bytes)", resp.Status, len(raw))
	}
}

// TestStructuredRequestLogs: every served (and refused) request emits
// exactly one parseable JSON log line carrying endpoint, status,
// wall-clock and the handler's own fields.
func TestStructuredRequestLogs(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	cfg := Config{Logf: func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}}
	srv, ts := newTestServer(t, cfg, 200)

	resp := post(t, ts.URL+"/v1/tables/authors/query", map[string]any{"value": "v3", "qt": 0.2})
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	srv.BeginDrain()
	resp = post(t, ts.URL+"/v1/tables/authors/query", map[string]any{"value": "v3"})
	resp.Body.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2: %q", len(lines), lines)
	}
	var served, refused map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &served); err != nil {
		t.Fatalf("log line not JSON: %q: %v", lines[0], err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &refused); err != nil {
		t.Fatalf("log line not JSON: %q: %v", lines[1], err)
	}
	if served["endpoint"] != "query" || served["status"] != float64(200) {
		t.Errorf("served line: %v", served)
	}
	for _, key := range []string{"duration_ms", "shards", "dispatches", "yields", "count", "table"} {
		if _, ok := served[key]; !ok {
			t.Errorf("served line missing %q: %v", key, served)
		}
	}
	if refused["status"] != float64(503) || refused["refused"] != "draining" {
		t.Errorf("drain refusal line: %v", refused)
	}
}

// TestStatsPerShard: the stats endpoint carries the per-shard
// breakdown, one entry per shard, summing to the table totals.
func TestStatsPerShard(t *testing.T) {
	_, ts := newTestServer(t, Config{}, 200)
	resp, err := http.Get(ts.URL + "/v1/tables/authors/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.PerShard) != stats.Shards || stats.Shards != 2 {
		t.Fatalf("per_shard has %d entries for %d shards", len(stats.PerShard), stats.Shards)
	}
	var tuples int64
	for i, s := range stats.PerShard {
		if s.Shard != i {
			t.Errorf("entry %d is shard %d", i, s.Shard)
		}
		tuples += s.Tuples
	}
	if tuples != stats.TrackedTuples {
		t.Errorf("per-shard tuples sum %d != tracked %d", tuples, stats.TrackedTuples)
	}
}
