// Package server is the HTTP/JSON front end over a upidb.DB: the
// network face of the shard-per-core engine. It exposes the uncertain
// tables of one database as REST-ish resources:
//
//	POST /v1/tables/{table}/query    run a PTQ or top-k, stream NDJSON
//	POST /v1/tables/{table}/insert   upsert one tuple
//	POST /v1/tables/{table}/delete   delete by tuple ID
//	GET  /v1/tables/{table}/stats    statistics-catalog + table state,
//	                                 with a per-shard breakdown
//	GET  /metrics                    Prometheus text exposition
//	GET  /healthz                    liveness (503 while draining)
//	GET  /debug/pprof/...            profiling (Config.EnablePprof only)
//
// Three serving disciplines, all built on machinery the engine already
// has:
//
//   - Admission by concurrency: a channel-of-tokens bucket caps
//     in-flight requests at Config.MaxInflight. An exhausted bucket
//     answers 429 + Retry-After immediately instead of queueing
//     unboundedly — overload sheds at the door, the worker-token
//     pattern.
//   - Admission by deadline: every request runs under a context
//     deadline (per-request timeout_ms, else Config.DefaultTimeout),
//     which flows into the engine's deadline admission — a query whose
//     modeled cost exceeds the remaining deadline is refused with 504
//     before any partition is pinned.
//   - Graceful drain: BeginDrain flips the server to refusing new work
//     (503, and healthz goes unhealthy so load balancers steer away)
//     while Drain waits for in-flight requests to finish. SIGTERM in
//     cmd/upiserve triggers exactly this, then closes the DB.
//
// Query responses stream as NDJSON riding Results.All: one
// {"id","confidence"} object per result as the globally merged stream
// yields it, then one trailer object carrying counts, the plan and
// aggregated statistics. Mid-stream failures surface as an {"error"}
// line — the status code is already on the wire.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"upidb"
	"upidb/internal/obs"
)

// Config tunes a Server.
type Config struct {
	// MaxInflight caps concurrently served requests (the token-bucket
	// size). 0 defaults to 64.
	MaxInflight int
	// DefaultTimeout bounds requests that carry no timeout_ms of their
	// own. 0 means no default deadline.
	DefaultTimeout time.Duration
	// Logf, when set, receives one structured JSON line per served
	// request (endpoint, status, shard count, trace counters,
	// wall-clock). nil disables request logging.
	Logf func(format string, args ...any)
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose heap contents and should only
	// face operators, not the open network.
	EnablePprof bool
}

// serverMetrics is the server-level metric bundle, registered on the
// DB's registry so one scrape covers engine and server families alike.
type serverMetrics struct {
	requests *obs.CounterVec   // {endpoint,status}
	latency  *obs.HistogramVec // {endpoint}: end-to-end service time
	inflight *obs.Gauge        // requests currently being served
	overload *obs.Counter      // 429s shed by the token bucket
	deadline *obs.Counter      // 504s (deadline admission or mid-flight)
}

func newServerMetrics(r *upidb.MetricsRegistry) *serverMetrics {
	return &serverMetrics{
		requests: r.CounterVec("upidb_http_requests_total", "HTTP requests served, by endpoint and status.", "endpoint", "status"),
		latency:  r.HistogramVec("upidb_http_request_seconds", "End-to-end request service time, by endpoint.", obs.WallBuckets, "endpoint"),
		inflight: r.Gauge("upidb_http_inflight", "Requests currently being served."),
		overload: r.Counter("upidb_http_overload_refusals_total", "Requests shed with 429 by the admission token bucket."),
		deadline: r.Counter("upidb_http_deadline_refusals_total", "Requests answered 504: deadline admission or mid-flight deadline."),
	}
}

// Server serves one upidb.DB over HTTP. Create with New, expose with
// Handler, shut down with BeginDrain + Drain.
type Server struct {
	db  *upidb.DB
	cfg Config
	mux *http.ServeMux
	met *serverMetrics

	// tokens is the admission bucket: a request must take a token to be
	// served and returns it when done. Buffered to MaxInflight.
	tokens   chan struct{}
	draining atomic.Bool
	inflight sync.WaitGroup

	// prepared caches one upidb.Prepared handle per query shape the
	// server has seen, so repeated traffic skips per-request descriptor
	// validation and attribute resolution and rides the engine's
	// generation-guarded plan cache. Handles are immutable and stay
	// valid across inserts, flushes and merges; per-request trace sinks
	// are derived (Prepared.WithTrace), never shared.
	prepMu   sync.Mutex
	prepared map[prepKey]*upidb.Prepared
}

// prepKey identifies one query shape on one table. The *Table pointer
// (not the name) keys it, so a handle can never outlive its table.
type prepKey struct {
	t     *upidb.Table
	kind  string
	attr  string
	value string
	qt    float64
	k     int
	route string
}

// maxPreparedHandles bounds the server's prepared-handle cache; at
// capacity the map is cleared wholesale (the shapes re-prepare on
// next use — a cheap validation, not a re-plan).
const maxPreparedHandles = 256

// prepare returns the cached handle for key, preparing and caching it
// on first sight. Handles are prepared WithStats so every execution
// measures modeled time for the request log.
func (s *Server) prepare(t *upidb.Table, key prepKey, q upidb.Query) (*upidb.Prepared, error) {
	s.prepMu.Lock()
	p, ok := s.prepared[key]
	s.prepMu.Unlock()
	if ok {
		return p, nil
	}
	p, err := t.Prepare(q.WithStats())
	if err != nil {
		return nil, err
	}
	s.prepMu.Lock()
	if len(s.prepared) >= maxPreparedHandles {
		clear(s.prepared)
	}
	s.prepared[key] = p
	s.prepMu.Unlock()
	return p, nil
}

// New builds a Server over db.
func New(db *upidb.DB, cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	s := &Server{db: db, cfg: cfg, tokens: make(chan struct{}, cfg.MaxInflight),
		prepared: make(map[prepKey]*upidb.Prepared)}
	for i := 0; i < cfg.MaxInflight; i++ {
		s.tokens <- struct{}{}
	}
	s.met = newServerMetrics(db.MetricsRegistry())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	// /metrics bypasses the admission bucket and the drain check:
	// operators need telemetry most exactly when the server is
	// overloaded or draining.
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/tables/{table}/query", s.limited("query", s.handleQuery))
	s.mux.HandleFunc("POST /v1/tables/{table}/insert", s.limited("insert", s.handleInsert))
	s.mux.HandleFunc("POST /v1/tables/{table}/delete", s.limited("delete", s.handleDelete))
	s.mux.HandleFunc("GET /v1/tables/{table}/stats", s.limited("stats", s.handleStats))
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips the server into drain mode: every subsequent
// request (healthz included) is refused with 503 while in-flight ones
// run to completion. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain blocks until every in-flight request has finished. Call after
// BeginDrain (and typically after http.Server.Shutdown, which waits
// for connections; Drain additionally covers handlers still running).
func (s *Server) Drain() { s.inflight.Wait() }

// errorBody writes a JSON error document with the given status.
func errorBody(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// limited wraps a handler with the serving disciplines: drain check,
// token-bucket admission (429 + Retry-After on an empty bucket),
// metrics, and one structured JSON log line per request.
func (s *Server) limited(endpoint string, h func(http.ResponseWriter, *http.Request) (status int, fields map[string]any)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Count the request in before checking the drain flag: BeginDrain
		// happens-before Drain's Wait, so a request that saw draining ==
		// false is either inside the WaitGroup (Drain waits for it) or
		// already answered 503.
		s.inflight.Add(1)
		defer s.inflight.Done()
		if s.draining.Load() {
			errorBody(w, http.StatusServiceUnavailable, "server is draining")
			s.record(endpoint, http.StatusServiceUnavailable, 0, r, map[string]any{"refused": "draining"})
			return
		}
		select {
		case <-s.tokens:
		default:
			// Bucket empty: shed immediately rather than queue. The client
			// owns the retry policy; Retry-After is a hint.
			w.Header().Set("Retry-After", "1")
			errorBody(w, http.StatusTooManyRequests, "server at max in-flight requests")
			s.met.overload.Inc()
			s.record(endpoint, http.StatusTooManyRequests, 0, r, map[string]any{"refused": "overload"})
			return
		}
		defer func() { s.tokens <- struct{}{} }()
		s.met.inflight.Add(1)
		start := time.Now()
		status, fields := h(w, r)
		elapsed := time.Since(start)
		s.met.inflight.Add(-1)
		if status == http.StatusGatewayTimeout {
			s.met.deadline.Inc()
		}
		s.met.latency.With(endpoint).Observe(elapsed.Seconds())
		s.record(endpoint, status, elapsed, r, fields)
	}
}

// record counts one answered request into the metrics families and,
// when logging is on, emits its one-JSON-line request log (endpoint,
// status, wall-clock, plus whatever handler-specific fields the
// handler contributed — table, shard count, trace counters, ...).
func (s *Server) record(endpoint string, status int, elapsed time.Duration, r *http.Request, fields map[string]any) {
	s.met.requests.With(endpoint, strconv.Itoa(status)).Inc()
	if s.cfg.Logf == nil {
		return
	}
	entry := map[string]any{
		"endpoint":    endpoint,
		"method":      r.Method,
		"path":        r.URL.Path,
		"status":      status,
		"duration_ms": float64(elapsed.Microseconds()) / 1000,
	}
	for k, v := range fields {
		entry[k] = v
	}
	line, err := json.Marshal(entry)
	if err != nil { // unreachable for the field types handlers emit
		s.cfg.Logf(`{"endpoint":%q,"status":%d,"log_error":%q}`, endpoint, status, err.Error())
		return
	}
	s.cfg.Logf("%s", line)
}

// handleMetrics serves the Prometheus text exposition of every metric
// family — engine (fracture/WAL/merge), shard, planner/admission and
// server alike, since they share the DB's registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.db.WritePrometheus(w)
}

// handleHealthz answers liveness probes: 200 while serving, 503 while
// draining so load balancers stop routing here before the listener
// closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		errorBody(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// table resolves the {table} path value, answering 404 through the
// returned status when unknown.
func (s *Server) table(w http.ResponseWriter, r *http.Request) (*upidb.Table, int) {
	name := r.PathValue("table")
	t := s.db.Table(name)
	if t == nil {
		errorBody(w, http.StatusNotFound, "unknown table %q", name)
		return nil, http.StatusNotFound
	}
	return t, 0
}

// queryRequest is the wire form of one query.
type queryRequest struct {
	// Kind is "ptq" (default) or "topk".
	Kind  string  `json:"kind"`
	Attr  string  `json:"attr"`
	Value string  `json:"value"`
	QT    float64 `json:"qt"`
	K     int     `json:"k"`
	// TimeoutMS bounds this request; it feeds the context deadline and
	// therefore the engine's deadline admission. 0 uses the server
	// default.
	TimeoutMS int `json:"timeout_ms"`
	// Route forces "planner" or "heuristic" routing ("" = automatic).
	Route string `json:"route"`
}

// resultLine is one streamed NDJSON result.
type resultLine struct {
	ID         uint64  `json:"id"`
	Confidence float64 `json:"confidence"`
}

// trailerLine closes a successful query stream.
type trailerLine struct {
	Done       bool   `json:"done"`
	Count      int    `json:"count"`
	Plan       string `json:"plan,omitempty"`
	PlanSource string `json:"plan_source,omitempty"`
	Partitions int    `json:"partitions"`
	Shards     int    `json:"shards"`
	Dispatches int64  `json:"dispatches"`
	Scans      int64  `json:"scans"`
	Yields     int64  `json:"yields"`
	ModeledMS  int64  `json:"modeled_ms"`
}

// queryStatus maps an engine error onto an HTTP status.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, upidb.ErrUnknownAttr):
		return http.StatusBadRequest
	case errors.Is(err, upidb.ErrCanceled):
		// Deadline admission refusal or mid-flight cancellation: the
		// deadline budget was the limiting factor either way.
		return http.StatusGatewayTimeout
	case errors.Is(err, upidb.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleQuery runs one PTQ/top-k and streams its results as NDJSON.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) (int, map[string]any) {
	t, status := s.table(w, r)
	if t == nil {
		return status, nil
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorBody(w, http.StatusBadRequest, "bad query body: %v", err)
		return http.StatusBadRequest, nil
	}

	var q upidb.Query
	kind := strings.ToLower(req.Kind)
	if kind == "" {
		kind = "ptq"
	}
	switch kind {
	case "ptq":
		q = upidb.PTQ(req.Attr, req.Value, req.QT)
	case "topk":
		if req.K <= 0 {
			errorBody(w, http.StatusBadRequest, "topk requires k >= 1")
			return http.StatusBadRequest, nil
		}
		q = upidb.TopKQuery(req.Value, req.K)
	default:
		errorBody(w, http.StatusBadRequest, "unknown query kind %q (want \"ptq\" or \"topk\")", req.Kind)
		return http.StatusBadRequest, nil
	}
	switch strings.ToLower(req.Route) {
	case "":
	case "planner":
		q = q.WithPlanner()
	case "heuristic":
		q = q.WithHeuristic()
	default:
		errorBody(w, http.StatusBadRequest, "unknown route %q (want \"planner\" or \"heuristic\")", req.Route)
		return http.StatusBadRequest, nil
	}

	// One prepared handle per query shape, validated once and reused
	// across requests; per-request state (trace sink, context) is
	// derived below, never written into the shared handle.
	prep, err := s.prepare(t, prepKey{
		t: t, kind: kind, attr: req.Attr, value: req.Value,
		qt: req.QT, k: req.K, route: strings.ToLower(req.Route),
	}, q)
	if err != nil {
		status := queryStatus(err)
		errorBody(w, status, "%v", err)
		return status, map[string]any{"table": t.Name(), "kind": kind, "error": err.Error()}
	}

	// Per-request span counters from the engine's trace hooks — the
	// substrate for the request log line.
	var dispatches, scans, yields atomic.Int64
	var admission atomic.Pointer[string]
	traced := prep.WithTrace(func(ev upidb.TraceEvent) {
		switch ev.Kind {
		case upidb.TraceDispatch:
			dispatches.Add(1)
		case upidb.TraceScanStart:
			scans.Add(1)
		case upidb.TraceYield:
			yields.Add(1)
		case upidb.TraceAdmission:
			d := ev.Detail
			admission.Store(&d)
		}
	})

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	fields := func() map[string]any {
		f := map[string]any{
			"table":      t.Name(),
			"kind":       kind,
			"shards":     t.NumShards(),
			"dispatches": dispatches.Load(),
			"scans":      scans.Load(),
			"yields":     yields.Load(),
		}
		if a := admission.Load(); a != nil {
			f["admission"] = *a
		}
		return f
	}

	res, err := traced.Run(ctx)
	if err != nil {
		status := queryStatus(err)
		errorBody(w, status, "%v", err)
		f := fields()
		f["error"] = err.Error()
		return status, f
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	count := 0
	for result, err := range res.All() {
		if err != nil {
			// The 200 is already on the wire; the error line is the
			// in-band failure contract NDJSON consumers check for.
			_ = enc.Encode(map[string]string{"error": err.Error()})
			f := fields()
			f["stream_error"] = err.Error()
			return http.StatusOK, f
		}
		_ = enc.Encode(resultLine{ID: result.Tuple.ID, Confidence: result.Confidence})
		count++
		if flusher != nil && count%64 == 0 {
			flusher.Flush()
		}
	}
	info := res.Info()
	_ = enc.Encode(trailerLine{
		Done:       true,
		Count:      count,
		Plan:       info.Plan,
		PlanSource: info.PlanSource,
		Partitions: info.Partitions,
		Shards:     t.NumShards(),
		Dispatches: dispatches.Load(),
		Scans:      scans.Load(),
		Yields:     yields.Load(),
		ModeledMS:  info.ModeledTime.Milliseconds(),
	})
	if flusher != nil {
		flusher.Flush()
	}
	f := fields()
	f["count"] = count
	if info.Plan != "" {
		f["plan"] = info.Plan
	}
	if info.PlanSource != "" {
		f["plan_source"] = info.PlanSource
	}
	return http.StatusOK, f
}

// wireTuple is the JSON form of one uncertain tuple.
type wireTuple struct {
	ID        uint64  `json:"id"`
	Existence float64 `json:"existence"` // 0 defaults to 1
	Det       []struct {
		Name  string `json:"name"`
		Value string `json:"value"`
	} `json:"det"`
	Unc []struct {
		Name string `json:"name"`
		Alts []struct {
			Value string  `json:"value"`
			Prob  float64 `json:"prob"`
		} `json:"alts"`
	} `json:"unc"`
	Payload string `json:"payload"`
}

// toTuple validates and converts the wire form.
func (wt wireTuple) toTuple() (*upidb.Tuple, error) {
	if wt.ID == 0 {
		return nil, fmt.Errorf("tuple id must be >= 1")
	}
	tup := &upidb.Tuple{ID: wt.ID, Existence: wt.Existence}
	if tup.Existence == 0 {
		tup.Existence = 1
	}
	for _, d := range wt.Det {
		tup.Det = append(tup.Det, upidb.DetField{Name: d.Name, Value: d.Value})
	}
	for _, u := range wt.Unc {
		alts := make([]upidb.Alternative, 0, len(u.Alts))
		for _, a := range u.Alts {
			alts = append(alts, upidb.Alternative{Value: a.Value, Prob: a.Prob})
		}
		dist, err := upidb.NewDiscrete(alts)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: %w", u.Name, err)
		}
		tup.Unc = append(tup.Unc, upidb.UncField{Name: u.Name, Dist: dist})
	}
	if wt.Payload != "" {
		tup.Payload = []byte(wt.Payload)
	}
	return tup, nil
}

// handleInsert upserts one tuple into the table (routed to its owning
// shard).
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) (int, map[string]any) {
	t, status := s.table(w, r)
	if t == nil {
		return status, nil
	}
	var wt wireTuple
	if err := json.NewDecoder(r.Body).Decode(&wt); err != nil {
		errorBody(w, http.StatusBadRequest, "bad tuple body: %v", err)
		return http.StatusBadRequest, nil
	}
	tup, err := wt.toTuple()
	if err != nil {
		errorBody(w, http.StatusBadRequest, "invalid tuple: %v", err)
		return http.StatusBadRequest, nil
	}
	if err := t.Insert(tup); err != nil {
		status := queryStatus(err)
		errorBody(w, status, "%v", err)
		return status, map[string]any{"table": t.Name(), "id": tup.ID, "error": err.Error()}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"ok": true, "id": tup.ID})
	return http.StatusOK, map[string]any{"table": t.Name(), "id": tup.ID}
}

// handleDelete removes one tuple by ID.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) (int, map[string]any) {
	t, status := s.table(w, r)
	if t == nil {
		return status, nil
	}
	var body struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		errorBody(w, http.StatusBadRequest, "bad delete body: %v", err)
		return http.StatusBadRequest, nil
	}
	if body.ID == 0 {
		errorBody(w, http.StatusBadRequest, "delete requires id >= 1")
		return http.StatusBadRequest, nil
	}
	if err := t.Delete(body.ID); err != nil {
		status := queryStatus(err)
		errorBody(w, status, "%v", err)
		return status, map[string]any{"table": t.Name(), "id": body.ID, "error": err.Error()}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"ok": true, "id": body.ID})
	return http.StatusOK, map[string]any{"table": t.Name(), "id": body.ID}
}

// shardStatsLine is one shard's slice in the stats response — the
// skew view: a hot shard shows up as an outlier tuple count, a
// lagging merge as an outlier fracture count or staleness.
type shardStatsLine struct {
	Shard           int     `json:"shard"`
	Tuples          int64   `json:"tuples"`
	Fractures       int     `json:"fractures"`
	BufferedInserts int     `json:"buffered_inserts"`
	SizeBytes       int64   `json:"size_bytes"`
	Staleness       float64 `json:"staleness"`
	Unabsorbed      int64   `json:"unabsorbed_deltas"`
}

// statsResponse is the wire form of GET /stats.
type statsResponse struct {
	Table         string           `json:"table"`
	PrimaryAttr   string           `json:"primary_attr"`
	Secondary     []string         `json:"secondary_attrs"`
	Shards        int              `json:"shards"`
	Fractures     int              `json:"fractures"`
	SizeBytes     int64            `json:"size_bytes"`
	Seeded        bool             `json:"stats_seeded"`
	Staleness     float64          `json:"stats_staleness"`
	Threshold     float64          `json:"stats_threshold"`
	Rebuilds      int              `json:"stats_rebuilds"`
	TrackedTuples int64            `json:"tracked_tuples"`
	Unabsorbed    int64            `json:"unabsorbed_deltas"`
	PerShard      []shardStatsLine `json:"per_shard"`
}

// handleStats reports table and statistics-catalog state: the
// aggregates over shards plus the per-shard breakdown.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) (int, map[string]any) {
	t, status := s.table(w, r)
	if t == nil {
		return status, nil
	}
	si := t.StatsInfo()
	perShard := make([]shardStatsLine, len(si.Shards))
	for i, sh := range si.Shards {
		perShard[i] = shardStatsLine{
			Shard:           sh.Shard,
			Tuples:          sh.Tuples,
			Fractures:       sh.Fractures,
			BufferedInserts: sh.BufferedInserts,
			SizeBytes:       sh.SizeBytes,
			Staleness:       sh.Staleness,
			Unabsorbed:      sh.Unabsorbed,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(statsResponse{
		Table:         t.Name(),
		PrimaryAttr:   t.PrimaryAttr(),
		Secondary:     t.SecondaryAttrs(),
		Shards:        t.NumShards(),
		Fractures:     t.NumFractures(),
		SizeBytes:     t.SizeBytes(),
		Seeded:        si.Seeded,
		Staleness:     si.Staleness,
		Threshold:     si.Threshold,
		Rebuilds:      si.Rebuilds,
		TrackedTuples: si.TrackedTuples,
		Unabsorbed:    si.Unabsorbed,
		PerShard:      perShard,
	})
	return http.StatusOK, map[string]any{"table": t.Name(), "shards": t.NumShards()}
}
