// Package server is the HTTP/JSON front end over a upidb.DB: the
// network face of the shard-per-core engine. It exposes the uncertain
// tables of one database as REST-ish resources:
//
//	POST /v1/tables/{table}/query    run a PTQ or top-k, stream NDJSON
//	POST /v1/tables/{table}/insert   upsert one tuple
//	POST /v1/tables/{table}/delete   delete by tuple ID
//	GET  /v1/tables/{table}/stats    statistics-catalog + table state
//	GET  /healthz                    liveness (503 while draining)
//
// Three serving disciplines, all built on machinery the engine already
// has:
//
//   - Admission by concurrency: a channel-of-tokens bucket caps
//     in-flight requests at Config.MaxInflight. An exhausted bucket
//     answers 429 + Retry-After immediately instead of queueing
//     unboundedly — overload sheds at the door, the worker-token
//     pattern.
//   - Admission by deadline: every request runs under a context
//     deadline (per-request timeout_ms, else Config.DefaultTimeout),
//     which flows into the engine's deadline admission — a query whose
//     modeled cost exceeds the remaining deadline is refused with 504
//     before any partition is pinned.
//   - Graceful drain: BeginDrain flips the server to refusing new work
//     (503, and healthz goes unhealthy so load balancers steer away)
//     while Drain waits for in-flight requests to finish. SIGTERM in
//     cmd/upiserve triggers exactly this, then closes the DB.
//
// Query responses stream as NDJSON riding Results.All: one
// {"id","confidence"} object per result as the globally merged stream
// yields it, then one trailer object carrying counts, the plan and
// aggregated statistics. Mid-stream failures surface as an {"error"}
// line — the status code is already on the wire.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"upidb"
)

// Config tunes a Server.
type Config struct {
	// MaxInflight caps concurrently served requests (the token-bucket
	// size). 0 defaults to 64.
	MaxInflight int
	// DefaultTimeout bounds requests that carry no timeout_ms of their
	// own. 0 means no default deadline.
	DefaultTimeout time.Duration
	// Logf, when set, receives one line per served request (method,
	// path, status, duration, trace counters). nil disables request
	// logging.
	Logf func(format string, args ...any)
}

// Server serves one upidb.DB over HTTP. Create with New, expose with
// Handler, shut down with BeginDrain + Drain.
type Server struct {
	db  *upidb.DB
	cfg Config
	mux *http.ServeMux

	// tokens is the admission bucket: a request must take a token to be
	// served and returns it when done. Buffered to MaxInflight.
	tokens   chan struct{}
	draining atomic.Bool
	inflight sync.WaitGroup
}

// New builds a Server over db.
func New(db *upidb.DB, cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	s := &Server{db: db, cfg: cfg, tokens: make(chan struct{}, cfg.MaxInflight)}
	for i := 0; i < cfg.MaxInflight; i++ {
		s.tokens <- struct{}{}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/tables/{table}/query", s.limited(s.handleQuery))
	s.mux.HandleFunc("POST /v1/tables/{table}/insert", s.limited(s.handleInsert))
	s.mux.HandleFunc("POST /v1/tables/{table}/delete", s.limited(s.handleDelete))
	s.mux.HandleFunc("GET /v1/tables/{table}/stats", s.limited(s.handleStats))
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips the server into drain mode: every subsequent
// request (healthz included) is refused with 503 while in-flight ones
// run to completion. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain blocks until every in-flight request has finished. Call after
// BeginDrain (and typically after http.Server.Shutdown, which waits
// for connections; Drain additionally covers handlers still running).
func (s *Server) Drain() { s.inflight.Wait() }

// errorBody writes a JSON error document with the given status.
func errorBody(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// limited wraps a handler with the serving disciplines: drain check,
// token-bucket admission (429 + Retry-After on an empty bucket), and
// request logging.
func (s *Server) limited(h func(http.ResponseWriter, *http.Request) (status int, note string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Count the request in before checking the drain flag: BeginDrain
		// happens-before Drain's Wait, so a request that saw draining ==
		// false is either inside the WaitGroup (Drain waits for it) or
		// already answered 503.
		s.inflight.Add(1)
		defer s.inflight.Done()
		if s.draining.Load() {
			errorBody(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		select {
		case <-s.tokens:
		default:
			// Bucket empty: shed immediately rather than queue. The client
			// owns the retry policy; Retry-After is a hint.
			w.Header().Set("Retry-After", "1")
			errorBody(w, http.StatusTooManyRequests, "server at max in-flight requests")
			return
		}
		defer func() { s.tokens <- struct{}{} }()
		start := time.Now()
		status, note := h(w, r)
		if s.cfg.Logf != nil {
			s.cfg.Logf("%s %s -> %d in %v%s", r.Method, r.URL.Path, status, time.Since(start).Round(time.Microsecond), note)
		}
	}
}

// handleHealthz answers liveness probes: 200 while serving, 503 while
// draining so load balancers stop routing here before the listener
// closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		errorBody(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// table resolves the {table} path value, answering 404 through the
// returned status when unknown.
func (s *Server) table(w http.ResponseWriter, r *http.Request) (*upidb.Table, int) {
	name := r.PathValue("table")
	t := s.db.Table(name)
	if t == nil {
		errorBody(w, http.StatusNotFound, "unknown table %q", name)
		return nil, http.StatusNotFound
	}
	return t, 0
}

// queryRequest is the wire form of one query.
type queryRequest struct {
	// Kind is "ptq" (default) or "topk".
	Kind  string  `json:"kind"`
	Attr  string  `json:"attr"`
	Value string  `json:"value"`
	QT    float64 `json:"qt"`
	K     int     `json:"k"`
	// TimeoutMS bounds this request; it feeds the context deadline and
	// therefore the engine's deadline admission. 0 uses the server
	// default.
	TimeoutMS int `json:"timeout_ms"`
	// Route forces "planner" or "heuristic" routing ("" = automatic).
	Route string `json:"route"`
}

// resultLine is one streamed NDJSON result.
type resultLine struct {
	ID         uint64  `json:"id"`
	Confidence float64 `json:"confidence"`
}

// trailerLine closes a successful query stream.
type trailerLine struct {
	Done       bool   `json:"done"`
	Count      int    `json:"count"`
	Plan       string `json:"plan,omitempty"`
	PlanSource string `json:"plan_source,omitempty"`
	Partitions int    `json:"partitions"`
	Shards     int    `json:"shards"`
	Dispatches int64  `json:"dispatches"`
	Scans      int64  `json:"scans"`
	Yields     int64  `json:"yields"`
	ModeledMS  int64  `json:"modeled_ms"`
}

// queryStatus maps an engine error onto an HTTP status.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, upidb.ErrUnknownAttr):
		return http.StatusBadRequest
	case errors.Is(err, upidb.ErrCanceled):
		// Deadline admission refusal or mid-flight cancellation: the
		// deadline budget was the limiting factor either way.
		return http.StatusGatewayTimeout
	case errors.Is(err, upidb.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleQuery runs one PTQ/top-k and streams its results as NDJSON.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) (int, string) {
	t, status := s.table(w, r)
	if t == nil {
		return status, ""
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorBody(w, http.StatusBadRequest, "bad query body: %v", err)
		return http.StatusBadRequest, ""
	}

	var q upidb.Query
	kind := strings.ToLower(req.Kind)
	if kind == "" {
		kind = "ptq"
	}
	switch kind {
	case "ptq":
		q = upidb.PTQ(req.Attr, req.Value, req.QT)
	case "topk":
		if req.K <= 0 {
			errorBody(w, http.StatusBadRequest, "topk requires k >= 1")
			return http.StatusBadRequest, ""
		}
		q = upidb.TopKQuery(req.Value, req.K)
	default:
		errorBody(w, http.StatusBadRequest, "unknown query kind %q (want \"ptq\" or \"topk\")", req.Kind)
		return http.StatusBadRequest, ""
	}
	switch strings.ToLower(req.Route) {
	case "":
	case "planner":
		q = q.WithPlanner()
	case "heuristic":
		q = q.WithHeuristic()
	default:
		errorBody(w, http.StatusBadRequest, "unknown route %q (want \"planner\" or \"heuristic\")", req.Route)
		return http.StatusBadRequest, ""
	}

	// Per-request span counters from the engine's trace hooks — the
	// substrate for the request log line.
	var dispatches, scans, yields atomic.Int64
	var admission atomic.Pointer[string]
	q = q.WithStats().WithTrace(func(ev upidb.TraceEvent) {
		switch ev.Kind {
		case upidb.TraceDispatch:
			dispatches.Add(1)
		case upidb.TraceScanStart:
			scans.Add(1)
		case upidb.TraceYield:
			yields.Add(1)
		case upidb.TraceAdmission:
			d := ev.Detail
			admission.Store(&d)
		}
	})

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	note := func() string {
		line := fmt.Sprintf(" table=%s kind=%s dispatches=%d scans=%d yields=%d",
			t.Name(), kind, dispatches.Load(), scans.Load(), yields.Load())
		if a := admission.Load(); a != nil {
			line += " admission=" + strconv.Quote(*a)
		}
		return line
	}

	res, err := t.Run(ctx, q)
	if err != nil {
		status := queryStatus(err)
		errorBody(w, status, "%v", err)
		return status, note()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	count := 0
	for result, err := range res.All() {
		if err != nil {
			// The 200 is already on the wire; the error line is the
			// in-band failure contract NDJSON consumers check for.
			_ = enc.Encode(map[string]string{"error": err.Error()})
			return http.StatusOK, note() + " streamerr"
		}
		_ = enc.Encode(resultLine{ID: result.Tuple.ID, Confidence: result.Confidence})
		count++
		if flusher != nil && count%64 == 0 {
			flusher.Flush()
		}
	}
	info := res.Info()
	_ = enc.Encode(trailerLine{
		Done:       true,
		Count:      count,
		Plan:       info.Plan,
		PlanSource: info.PlanSource,
		Partitions: info.Partitions,
		Shards:     t.NumShards(),
		Dispatches: dispatches.Load(),
		Scans:      scans.Load(),
		Yields:     yields.Load(),
		ModeledMS:  info.ModeledTime.Milliseconds(),
	})
	if flusher != nil {
		flusher.Flush()
	}
	return http.StatusOK, note()
}

// wireTuple is the JSON form of one uncertain tuple.
type wireTuple struct {
	ID        uint64  `json:"id"`
	Existence float64 `json:"existence"` // 0 defaults to 1
	Det       []struct {
		Name  string `json:"name"`
		Value string `json:"value"`
	} `json:"det"`
	Unc []struct {
		Name string `json:"name"`
		Alts []struct {
			Value string  `json:"value"`
			Prob  float64 `json:"prob"`
		} `json:"alts"`
	} `json:"unc"`
	Payload string `json:"payload"`
}

// toTuple validates and converts the wire form.
func (wt wireTuple) toTuple() (*upidb.Tuple, error) {
	if wt.ID == 0 {
		return nil, fmt.Errorf("tuple id must be >= 1")
	}
	tup := &upidb.Tuple{ID: wt.ID, Existence: wt.Existence}
	if tup.Existence == 0 {
		tup.Existence = 1
	}
	for _, d := range wt.Det {
		tup.Det = append(tup.Det, upidb.DetField{Name: d.Name, Value: d.Value})
	}
	for _, u := range wt.Unc {
		alts := make([]upidb.Alternative, 0, len(u.Alts))
		for _, a := range u.Alts {
			alts = append(alts, upidb.Alternative{Value: a.Value, Prob: a.Prob})
		}
		dist, err := upidb.NewDiscrete(alts)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: %w", u.Name, err)
		}
		tup.Unc = append(tup.Unc, upidb.UncField{Name: u.Name, Dist: dist})
	}
	if wt.Payload != "" {
		tup.Payload = []byte(wt.Payload)
	}
	return tup, nil
}

// handleInsert upserts one tuple into the table (routed to its owning
// shard).
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) (int, string) {
	t, status := s.table(w, r)
	if t == nil {
		return status, ""
	}
	var wt wireTuple
	if err := json.NewDecoder(r.Body).Decode(&wt); err != nil {
		errorBody(w, http.StatusBadRequest, "bad tuple body: %v", err)
		return http.StatusBadRequest, ""
	}
	tup, err := wt.toTuple()
	if err != nil {
		errorBody(w, http.StatusBadRequest, "invalid tuple: %v", err)
		return http.StatusBadRequest, ""
	}
	if err := t.Insert(tup); err != nil {
		status := queryStatus(err)
		errorBody(w, status, "%v", err)
		return status, ""
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"ok": true, "id": tup.ID})
	return http.StatusOK, fmt.Sprintf(" table=%s id=%d", t.Name(), tup.ID)
}

// handleDelete removes one tuple by ID.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) (int, string) {
	t, status := s.table(w, r)
	if t == nil {
		return status, ""
	}
	var body struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		errorBody(w, http.StatusBadRequest, "bad delete body: %v", err)
		return http.StatusBadRequest, ""
	}
	if body.ID == 0 {
		errorBody(w, http.StatusBadRequest, "delete requires id >= 1")
		return http.StatusBadRequest, ""
	}
	if err := t.Delete(body.ID); err != nil {
		status := queryStatus(err)
		errorBody(w, status, "%v", err)
		return status, ""
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"ok": true, "id": body.ID})
	return http.StatusOK, fmt.Sprintf(" table=%s id=%d", t.Name(), body.ID)
}

// statsResponse is the wire form of GET /stats.
type statsResponse struct {
	Table         string   `json:"table"`
	PrimaryAttr   string   `json:"primary_attr"`
	Secondary     []string `json:"secondary_attrs"`
	Shards        int      `json:"shards"`
	Fractures     int      `json:"fractures"`
	SizeBytes     int64    `json:"size_bytes"`
	Seeded        bool     `json:"stats_seeded"`
	Staleness     float64  `json:"stats_staleness"`
	Threshold     float64  `json:"stats_threshold"`
	Rebuilds      int      `json:"stats_rebuilds"`
	TrackedTuples int64    `json:"tracked_tuples"`
	Unabsorbed    int64    `json:"unabsorbed_deltas"`
}

// handleStats reports table and statistics-catalog state, aggregated
// over shards.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) (int, string) {
	t, status := s.table(w, r)
	if t == nil {
		return status, ""
	}
	si := t.StatsInfo()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(statsResponse{
		Table:         t.Name(),
		PrimaryAttr:   t.PrimaryAttr(),
		Secondary:     t.SecondaryAttrs(),
		Shards:        t.NumShards(),
		Fractures:     t.NumFractures(),
		SizeBytes:     t.SizeBytes(),
		Seeded:        si.Seeded,
		Staleness:     si.Staleness,
		Threshold:     si.Threshold,
		Rebuilds:      si.Rebuilds,
		TrackedTuples: si.TrackedTuples,
		Unabsorbed:    si.Unabsorbed,
	})
	return http.StatusOK, " table=" + t.Name()
}
