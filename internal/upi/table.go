// Package upi implements the paper's primary contribution: the
// Uncertain Primary Index (UPI) for discrete uncertain attributes,
// together with its Cutoff Index (Section 3.1), multi-pointer
// secondary indexes and Tailored Secondary Index Access (Section 3.2).
//
// A UPI table clusters the heap file itself as a B+Tree keyed by
// {attribute value ASC, confidence DESC, tuple ID}: each tuple is
// duplicated once per alternative of the primary uncertain attribute,
// except alternatives below the cutoff threshold C, which are replaced
// by pointer entries in the cutoff index (Algorithm 1). Probabilistic
// threshold queries then run as one index seek plus a sequential leaf
// scan (Algorithm 2).
package upi

import (
	"fmt"

	"upidb/internal/btree"
	"upidb/internal/storage"
	"upidb/internal/tuple"
)

// Options are the tuning parameters of one UPI (paper Sections 3, 6).
type Options struct {
	// Cutoff is the cutoff threshold C: alternatives with confidence
	// below C are stored in the cutoff index, not the heap file. 0
	// disables the cutoff index (the naive UPI of Section 2).
	Cutoff float64
	// MaxPointers caps the pointers stored in one secondary-index
	// entry ("such a limit can lower storage consumption"); 0 means
	// unlimited.
	MaxPointers int
	// PageSize is the B+Tree page size (default storage.DefaultPageSize).
	PageSize int
	// CachePages is the per-file buffer-pool capacity (default
	// storage.DefaultCachePages).
	CachePages int
}

// WithDefaults returns a copy with zero-valued size parameters
// replaced by their defaults.
func (o Options) WithDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = storage.DefaultPageSize
	}
	if o.CachePages == 0 {
		o.CachePages = storage.DefaultCachePages
	}
	return o
}

func (o Options) withDefaults() Options { return o.WithDefaults() }

// Validate checks the options.
func (o Options) Validate() error {
	if o.Cutoff < 0 || o.Cutoff >= 1 {
		return fmt.Errorf("upi: cutoff %v outside [0, 1)", o.Cutoff)
	}
	if o.MaxPointers < 0 {
		return fmt.Errorf("upi: negative MaxPointers")
	}
	return nil
}

// Table is one UPI: the clustered heap file, its cutoff index and any
// secondary indexes. It is not safe for concurrent use.
type Table struct {
	fs   *storage.FS
	name string
	// attr is the primary uncertain attribute the heap is clustered on.
	attr string
	opts Options

	heap        *btree.Tree
	cutoff      *btree.Tree
	secondaries map[string]*btree.Tree
	secAttrs    []string // stable iteration order
}

// Create initializes an empty UPI named name on fs, clustered on the
// uncertain attribute attr, with secondary indexes on secAttrs.
func Create(fs *storage.FS, name, attr string, secAttrs []string, opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	t := &Table{
		fs: fs, name: name, attr: attr, opts: opts,
		secondaries: make(map[string]*btree.Tree, len(secAttrs)),
		secAttrs:    append([]string(nil), secAttrs...),
	}
	var err error
	if t.heap, err = t.createTree(t.heapFile()); err != nil {
		return nil, err
	}
	if t.cutoff, err = t.createTree(t.cutoffFile()); err != nil {
		return nil, err
	}
	for _, a := range t.secAttrs {
		if a == attr {
			return nil, fmt.Errorf("upi: secondary index on primary attribute %q", a)
		}
		sec, err := t.createTree(t.secFile(a))
		if err != nil {
			return nil, err
		}
		t.secondaries[a] = sec
	}
	return t, nil
}

// Open loads an existing UPI.
func Open(fs *storage.FS, name, attr string, secAttrs []string, opts Options) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	t := &Table{
		fs: fs, name: name, attr: attr, opts: opts,
		secondaries: make(map[string]*btree.Tree, len(secAttrs)),
		secAttrs:    append([]string(nil), secAttrs...),
	}
	var err error
	if t.heap, err = t.openTree(t.heapFile()); err != nil {
		return nil, err
	}
	if t.cutoff, err = t.openTree(t.cutoffFile()); err != nil {
		return nil, err
	}
	for _, a := range t.secAttrs {
		sec, err := t.openTree(t.secFile(a))
		if err != nil {
			return nil, err
		}
		t.secondaries[a] = sec
	}
	return t, nil
}

func (t *Table) createTree(file string) (*btree.Tree, error) {
	p, err := storage.NewPager(t.fs.Create(file), t.opts.PageSize)
	if err != nil {
		return nil, err
	}
	if err := p.SetCacheLimit(t.opts.CachePages); err != nil {
		return nil, err
	}
	return btree.Create(p)
}

func (t *Table) openTree(file string) (*btree.Tree, error) {
	f, err := t.fs.Open(file)
	if err != nil {
		return nil, err
	}
	p, err := storage.NewPager(f, t.opts.PageSize)
	if err != nil {
		return nil, err
	}
	if err := p.SetCacheLimit(t.opts.CachePages); err != nil {
		return nil, err
	}
	return btree.Open(p)
}

// HeapFileName returns the heap-file name of a UPI named name.
func HeapFileName(name string) string { return name + ".upi.heap" }

// CutoffFileName returns the cutoff-index file name of a UPI.
func CutoffFileName(name string) string { return name + ".upi.cutoff" }

// SecFileName returns the secondary-index file name for attr.
func SecFileName(name, attr string) string { return name + ".upi.sec." + attr }

func (t *Table) heapFile() string           { return HeapFileName(t.name) }
func (t *Table) cutoffFile() string         { return CutoffFileName(t.name) }
func (t *Table) secFile(attr string) string { return SecFileName(t.name, attr) }

// Files returns the names of all files this UPI owns.
func (t *Table) Files() []string {
	files := []string{t.heapFile(), t.cutoffFile()}
	for _, a := range t.secAttrs {
		files = append(files, t.secFile(a))
	}
	return files
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Attr returns the primary uncertain attribute.
func (t *Table) Attr() string { return t.attr }

// Options returns the tuning parameters.
func (t *Table) Options() Options { return t.opts }

// SecondaryAttrs returns the attributes with secondary indexes.
func (t *Table) SecondaryAttrs() []string { return append([]string(nil), t.secAttrs...) }

// Heap exposes the heap-file B+Tree (for stats and merging).
func (t *Table) Heap() *btree.Tree { return t.heap }

// CutoffIndex exposes the cutoff-index B+Tree.
func (t *Table) CutoffIndex() *btree.Tree { return t.cutoff }

// Secondary returns the secondary index tree for attr.
func (t *Table) Secondary(attr string) (*btree.Tree, bool) {
	s, ok := t.secondaries[attr]
	return s, ok
}

// SizeBytes returns the total on-disk size of the UPI's files.
func (t *Table) SizeBytes() int64 {
	var total int64
	for _, f := range t.Files() {
		total += t.fs.Size(f)
	}
	return total
}

// Flush writes all dirty pages through to the simulated disk.
func (t *Table) Flush() error {
	for _, tr := range t.allTrees() {
		if err := tr.Pager().Flush(); err != nil {
			return err
		}
	}
	return nil
}

// DropCaches flushes and empties every buffer pool: the cold-cache
// state the paper measures queries in.
func (t *Table) DropCaches() error {
	for _, tr := range t.allTrees() {
		if err := tr.Pager().DropCache(); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) allTrees() []*btree.Tree {
	trees := []*btree.Tree{t.heap, t.cutoff}
	for _, a := range t.secAttrs {
		trees = append(trees, t.secondaries[a])
	}
	return trees
}

// primaryPointers returns the pointer list for tup's non-cutoff
// alternatives of the primary attribute (what secondary-index entries
// store), capped at MaxPointers.
func (t *Table) primaryPointers(tup *tuple.Tuple) ([]Pointer, error) {
	dist, ok := tup.Uncertain(t.attr)
	if !ok {
		return nil, fmt.Errorf("upi: tuple %d lacks primary attribute %q", tup.ID, t.attr)
	}
	ps := make([]Pointer, 0, len(dist))
	for i, a := range dist {
		conf := tup.Existence * a.Prob
		if i > 0 && conf < t.opts.Cutoff {
			continue // cutoff alternative: not in the heap, no pointer
		}
		ps = append(ps, Pointer{Value: a.Value, Conf: conf})
		if t.opts.MaxPointers > 0 && len(ps) >= t.opts.MaxPointers {
			break
		}
	}
	return ps, nil
}
