package upi

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"upidb/internal/prob"
	"upidb/internal/sim"
	"upidb/internal/storage"
	"upidb/internal/tuple"
)

func newFS() *storage.FS { return storage.NewFS(sim.NewDisk(sim.DefaultParams())) }

// runningExample returns the paper's Table 4 Author tuples.
func runningExample(t *testing.T) []*tuple.Tuple {
	t.Helper()
	mk := func(id uint64, name string, exist float64, inst, country []prob.Alternative) *tuple.Tuple {
		instD, err := prob.NewDiscrete(inst)
		if err != nil {
			t.Fatal(err)
		}
		countryD, err := prob.NewDiscrete(country)
		if err != nil {
			t.Fatal(err)
		}
		return &tuple.Tuple{
			ID: id, Existence: exist,
			Det: []tuple.DetField{{Name: "Name", Value: name}},
			Unc: []tuple.UncField{
				{Name: "Institution", Dist: instD},
				{Name: "Country", Dist: countryD},
			},
		}
	}
	return []*tuple.Tuple{
		mk(1, "Alice", 0.9,
			[]prob.Alternative{{Value: "Brown", Prob: 0.8}, {Value: "MIT", Prob: 0.2}},
			[]prob.Alternative{{Value: "US", Prob: 1.0}}),
		mk(2, "Bob", 1.0,
			[]prob.Alternative{{Value: "MIT", Prob: 0.95}, {Value: "UCB", Prob: 0.05}},
			[]prob.Alternative{{Value: "US", Prob: 1.0}}),
		mk(3, "Carol", 0.8,
			[]prob.Alternative{{Value: "Brown", Prob: 0.6}, {Value: "U. Tokyo", Prob: 0.4}},
			[]prob.Alternative{{Value: "US", Prob: 0.6}, {Value: "Japan", Prob: 0.4}}),
	}
}

func createExample(t *testing.T, cutoff float64) *Table {
	t.Helper()
	tab, err := Create(newFS(), "author", "Institution", []string{"Country"}, Options{Cutoff: cutoff, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range runningExample(t) {
		if err := tab.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// TestPaperTable2Layout pins the naive-UPI ordering of the paper's
// Table 2: institution ASC, confidence DESC.
func TestPaperTable2Layout(t *testing.T) {
	tab := createExample(t, 0) // no cutoff: naive UPI
	type row struct {
		value string
		conf  float64
		name  string
	}
	var got []row
	err := tab.ScanHeap(func(value string, conf float64, _ uint64, enc []byte) bool {
		tup, err := tuple.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		name, _ := tup.DetValue("Name")
		got = append(got, row{value, conf, name})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []row{
		{"Brown", 0.72, "Alice"},
		{"Brown", 0.48, "Carol"},
		{"MIT", 0.95, "Bob"},
		{"MIT", 0.18, "Alice"},
		{"U. Tokyo", 0.32, "Carol"},
		{"UCB", 0.05, "Bob"},
	}
	if len(got) != len(want) {
		t.Fatalf("heap rows: got %d want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].value != want[i].value || got[i].name != want[i].name ||
			math.Abs(got[i].conf-want[i].conf) > 1e-9 {
			t.Fatalf("row %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestPaperTable3Cutoff pins the cutoff behaviour of Table 3 (C=10%):
// Bob's UCB alternative moves to the cutoff index with a pointer to MIT.
func TestPaperTable3Cutoff(t *testing.T) {
	tab := createExample(t, 0.10)
	if n := tab.Heap().Count(); n != 5 {
		t.Fatalf("heap entries = %d, want 5", n)
	}
	if n := tab.CutoffIndex().Count(); n != 1 {
		t.Fatalf("cutoff entries = %d, want 1", n)
	}
	err := tab.CutoffIndex().Scan(nil, nil, func(k, v []byte) bool {
		value, conf, id, err := DecodeHeapKey(k)
		if err != nil {
			t.Fatal(err)
		}
		if value != "UCB" || id != 2 || math.Abs(conf-0.05) > 1e-9 {
			t.Fatalf("cutoff entry: %s %v %d", value, conf, id)
		}
		ps, err := DecodePointers(v)
		if err != nil || len(ps) != 1 || ps[0].Value != "MIT" || math.Abs(ps[0].Conf-0.95) > 1e-9 {
			t.Fatalf("cutoff pointer: %+v %v", ps, err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFirstAlternativeStaysInHeap: a tuple whose best alternative is
// below C must still have its first alternative in the heap file.
func TestFirstAlternativeStaysInHeap(t *testing.T) {
	tab, err := Create(newFS(), "t", "A", nil, Options{Cutoff: 0.5, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := prob.NewDiscrete([]prob.Alternative{
		{Value: "x", Prob: 0.3}, {Value: "y", Prob: 0.3}, {Value: "z", Prob: 0.2},
	})
	tup := &tuple.Tuple{ID: 1, Existence: 1, Unc: []tuple.UncField{{Name: "A", Dist: d}}}
	if err := tab.Insert(tup); err != nil {
		t.Fatal(err)
	}
	if tab.Heap().Count() != 1 || tab.CutoffIndex().Count() != 2 {
		t.Fatalf("heap=%d cutoff=%d, want 1/2", tab.Heap().Count(), tab.CutoffIndex().Count())
	}
	// The tuple must still be findable under its first value at low QT.
	res, _, err := tab.Query(context.Background(), "x", 0.1)
	if err != nil || len(res) != 1 {
		t.Fatalf("query x: %v %d", err, len(res))
	}
	// And under a cutoff value when QT < C.
	res, st, err := tab.Query(context.Background(), "y", 0.1)
	if err != nil || len(res) != 1 {
		t.Fatalf("query y: %v %d", err, len(res))
	}
	if st.CutoffPointers != 1 {
		t.Fatalf("cutoff pointers = %d", st.CutoffPointers)
	}
}

func TestQuery1RunningExample(t *testing.T) {
	for _, cutoff := range []float64{0, 0.1, 0.3} {
		tab := createExample(t, cutoff)
		// Query 1 at QT=0.1: {Alice 18%, Bob 95%}.
		res, _, err := tab.Query(context.Background(), "MIT", 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 2 {
			t.Fatalf("C=%v: got %d results", cutoff, len(res))
		}
		if name, _ := res[0].Tuple.DetValue("Name"); name != "Bob" || math.Abs(res[0].Confidence-0.95) > 1e-9 {
			t.Fatalf("C=%v: first = %+v", cutoff, res[0])
		}
		if name, _ := res[1].Tuple.DetValue("Name"); name != "Alice" || math.Abs(res[1].Confidence-0.18) > 1e-9 {
			t.Fatalf("C=%v: second = %+v", cutoff, res[1])
		}
		// At QT=0.5 only Bob remains.
		res, _, err = tab.Query(context.Background(), "MIT", 0.5)
		if err != nil || len(res) != 1 {
			t.Fatalf("C=%v at 0.5: %v %d", cutoff, err, len(res))
		}
		// No matches for unknown value.
		res, _, err = tab.Query(context.Background(), "Nowhere", 0.0)
		if err != nil || len(res) != 0 {
			t.Fatalf("C=%v unknown: %v %d", cutoff, err, len(res))
		}
	}
}

// TestQueryMatchesPossibleWorlds cross-checks UPI query answers against
// the possible-world enumerator on randomized small tables, for several
// cutoff settings and thresholds. This is the semantic oracle test.
func TestQueryMatchesPossibleWorlds(t *testing.T) {
	values := []string{"A", "B", "C", "D", "E"}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		cutoff := []float64{0, 0.15, 0.4}[trial%3]
		tab, err := Create(newFS(), "t", "X", nil, Options{Cutoff: cutoff, PageSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		var worlds []prob.WorldTuple
		n := 2 + rng.Intn(5)
		for i := 0; i < n; i++ {
			nAlts := 1 + rng.Intn(3)
			var alts []prob.Alternative
			perm := rng.Perm(len(values))
			remaining := 1.0
			for j := 0; j < nAlts; j++ {
				p := remaining * (0.3 + 0.5*rng.Float64())
				alts = append(alts, prob.Alternative{Value: values[perm[j]], Prob: p})
				remaining -= p
			}
			d, err := prob.NewDiscrete(alts)
			if err != nil {
				t.Fatal(err)
			}
			exist := 0.5 + rng.Float64()*0.5
			tup := &tuple.Tuple{ID: uint64(i + 1), Existence: exist, Unc: []tuple.UncField{{Name: "X", Dist: d}}}
			if err := tab.Insert(tup); err != nil {
				t.Fatal(err)
			}
			worlds = append(worlds, prob.WorldTuple{ID: tup.ID, Existence: exist, Attr: d})
		}
		for _, qt := range []float64{0.05, 0.2, 0.5} {
			for _, v := range values {
				want := prob.PTQAnswer(worlds, v, qt)
				got, _, err := tab.Query(context.Background(), v, qt)
				if err != nil {
					t.Fatal(err)
				}
				gotIDs := make(map[uint64]bool, len(got))
				for _, r := range got {
					gotIDs[r.Tuple.ID] = true
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d C=%v value=%s qt=%v: got %d want %d", trial, cutoff, v, qt, len(got), len(want))
				}
				for _, id := range want {
					if !gotIDs[id] {
						t.Fatalf("trial %d: missing id %d for %s@%v", trial, id, v, qt)
					}
				}
			}
		}
	}
}

func TestSecondaryIndexTable5(t *testing.T) {
	tab := createExample(t, 0.10)
	// Paper Table 5: secondary index on Country.
	sec, ok := tab.Secondary("Country")
	if !ok {
		t.Fatal("no Country index")
	}
	type srow struct {
		value string
		conf  float64
		id    uint64
		ptrs  int
	}
	var got []srow
	sec.Scan(nil, nil, func(k, v []byte) bool {
		value, conf, id, err := DecodeHeapKey(k)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := DecodePointers(v)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, srow{value, conf, id, len(ps)})
		return true
	})
	want := []srow{
		{"Japan", 0.32, 3, 2}, // Carol: Brown, U. Tokyo
		{"US", 1.00, 2, 1},    // Bob: MIT only (UCB is cutoff)
		{"US", 0.90, 1, 2},    // Alice: Brown, MIT
		{"US", 0.48, 3, 2},    // Carol
	}
	if len(got) != len(want) {
		t.Fatalf("rows: %+v", got)
	}
	for i := range want {
		if got[i].value != want[i].value || got[i].id != want[i].id ||
			math.Abs(got[i].conf-want[i].conf) > 1e-9 || got[i].ptrs != want[i].ptrs {
			t.Fatalf("row %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestQuerySecondaryPaperExample(t *testing.T) {
	tab := createExample(t, 0.10)
	// Paper Section 3.2: Country=US with QT=80% returns Bob and Alice;
	// tailored access fetches Alice from the MIT region because Bob
	// committed us to MIT.
	for _, tailored := range []bool{false, true} {
		res, st, err := tab.QuerySecondary(context.Background(), "Country", "US", 0.8, tailored)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 2 {
			t.Fatalf("tailored=%v: %d results", tailored, len(res))
		}
		names := map[string]bool{}
		for _, r := range res {
			n, _ := r.Tuple.DetValue("Name")
			names[n] = true
		}
		if !names["Alice"] || !names["Bob"] {
			t.Fatalf("tailored=%v: wrong names %v", tailored, names)
		}
		if tailored && st.ReusedPointers != 1 {
			t.Fatalf("tailored: reused = %d, want 1 (Alice via MIT)", st.ReusedPointers)
		}
	}
}

func TestQuerySecondaryMatchesPrimarySemantics(t *testing.T) {
	tab := createExample(t, 0.10)
	// Country=Japan at QT=0.3: Carol only (0.8 × 0.4 = 0.32).
	res, _, err := tab.QuerySecondary(context.Background(), "Country", "Japan", 0.3, true)
	if err != nil || len(res) != 1 {
		t.Fatalf("%v %d", err, len(res))
	}
	if name, _ := res[0].Tuple.DetValue("Name"); name != "Carol" {
		t.Fatalf("got %s", name)
	}
	if math.Abs(res[0].Confidence-0.32) > 1e-9 {
		t.Fatalf("conf = %v", res[0].Confidence)
	}
	// QT above: no results.
	res, _, _ = tab.QuerySecondary(context.Background(), "Country", "Japan", 0.5, true)
	if len(res) != 0 {
		t.Fatalf("got %d", len(res))
	}
	// Unknown secondary attr errors.
	if _, _, err := tab.QuerySecondary(context.Background(), "Nope", "x", 0.1, true); err == nil {
		t.Fatal("missing index accepted")
	}
}

func TestDeleteRemovesEverywhere(t *testing.T) {
	tab := createExample(t, 0.10)
	tuples := runningExample(t)
	if err := tab.Delete(tuples[1]); err != nil { // Bob
		t.Fatal(err)
	}
	res, _, err := tab.Query(context.Background(), "MIT", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if name, _ := r.Tuple.DetValue("Name"); name == "Bob" {
			t.Fatal("Bob still in heap")
		}
	}
	if tab.CutoffIndex().Count() != 0 {
		t.Fatal("Bob's UCB cutoff entry not removed")
	}
	res, _, _ = tab.QuerySecondary(context.Background(), "Country", "US", 0.5, true)
	for _, r := range res {
		if name, _ := r.Tuple.DetValue("Name"); name == "Bob" {
			t.Fatal("Bob still in secondary index")
		}
	}
}

func TestUpdate(t *testing.T) {
	tab := createExample(t, 0.10)
	tuples := runningExample(t)
	// Move Alice fully to MIT.
	newAlice := *tuples[0]
	d, _ := prob.NewDiscrete([]prob.Alternative{{Value: "MIT", Prob: 1.0}})
	newAlice.Unc = []tuple.UncField{
		{Name: "Institution", Dist: d},
		{Name: "Country", Dist: tuples[0].Unc[1].Dist},
	}
	if err := tab.Update(tuples[0], &newAlice); err != nil {
		t.Fatal(err)
	}
	res, _, err := tab.Query(context.Background(), "MIT", 0.89)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if name, _ := r.Tuple.DetValue("Name"); name == "Alice" {
			found = true
			if math.Abs(r.Confidence-0.9) > 1e-9 {
				t.Fatalf("Alice conf = %v", r.Confidence)
			}
		}
	}
	if !found {
		t.Fatal("updated Alice not found at MIT")
	}
	if res, _, _ := tab.Query(context.Background(), "Brown", 0.0); len(res) != 1 {
		t.Fatalf("Brown should only hold Carol now, got %d", len(res))
	}
}

func TestTopK(t *testing.T) {
	tab := createExample(t, 0.10)
	res, _, err := tab.TopK(context.Background(), "MIT", 1)
	if err != nil || len(res) != 1 {
		t.Fatalf("%v %d", err, len(res))
	}
	if name, _ := res[0].Tuple.DetValue("Name"); name != "Bob" {
		t.Fatalf("top1 = %s", name)
	}
	res, _, err = tab.TopK(context.Background(), "MIT", 5)
	if err != nil || len(res) != 2 {
		t.Fatalf("top5: %v %d", err, len(res))
	}
	// Top-k must see cutoff entries too: UCB has only a cutoff entry.
	res, _, err = tab.TopK(context.Background(), "UCB", 3)
	if err != nil || len(res) != 1 {
		t.Fatalf("UCB topk: %v %d", err, len(res))
	}
	if name, _ := res[0].Tuple.DetValue("Name"); name != "Bob" {
		t.Fatalf("UCB top = %s", name)
	}
	if res, _, _ := tab.TopK(context.Background(), "MIT", 0); res != nil {
		t.Fatal("k=0 should return nothing")
	}
}

func TestMaxPointersCap(t *testing.T) {
	fs := newFS()
	tab, err := Create(fs, "t", "X", []string{"Y"}, Options{Cutoff: 0, MaxPointers: 2, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := prob.NewDiscrete([]prob.Alternative{
		{Value: "a", Prob: 0.4}, {Value: "b", Prob: 0.3}, {Value: "c", Prob: 0.2}, {Value: "d", Prob: 0.1},
	})
	y, _ := prob.NewDiscrete([]prob.Alternative{{Value: "q", Prob: 1.0}})
	tup := &tuple.Tuple{ID: 1, Existence: 1, Unc: []tuple.UncField{{Name: "X", Dist: x}, {Name: "Y", Dist: y}}}
	if err := tab.Insert(tup); err != nil {
		t.Fatal(err)
	}
	sec, _ := tab.Secondary("Y")
	sec.Scan(nil, nil, func(_, v []byte) bool {
		ps, err := DecodePointers(v)
		if err != nil || len(ps) != 2 {
			t.Fatalf("pointers: %+v %v", ps, err)
		}
		return true
	})
	// Query via secondary must still work with capped pointers.
	res, _, err := tab.QuerySecondary(context.Background(), "Y", "q", 0.5, true)
	if err != nil || len(res) != 1 {
		t.Fatalf("%v %d", err, len(res))
	}
}

func TestBulkBuildEquivalentToInserts(t *testing.T) {
	tuples := runningExample(t)
	ins := createExample(t, 0.10)
	bulk, err := BulkBuild(newFS(), "author", "Institution", []string{"Country"}, Options{Cutoff: 0.10, PageSize: 512}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Heap().Count() != bulk.Heap().Count() ||
		ins.CutoffIndex().Count() != bulk.CutoffIndex().Count() {
		t.Fatalf("counts differ: heap %d/%d cutoff %d/%d",
			ins.Heap().Count(), bulk.Heap().Count(), ins.CutoffIndex().Count(), bulk.CutoffIndex().Count())
	}
	for _, qt := range []float64{0.05, 0.2, 0.6} {
		for _, v := range []string{"MIT", "Brown", "UCB", "U. Tokyo"} {
			a, _, err := ins.Query(context.Background(), v, qt)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := bulk.Query(context.Background(), v, qt)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("%s@%v: %d vs %d", v, qt, len(a), len(b))
			}
			for i := range a {
				if a[i].Tuple.ID != b[i].Tuple.ID || math.Abs(a[i].Confidence-b[i].Confidence) > 1e-9 {
					t.Fatalf("%s@%v result %d differs", v, qt, i)
				}
			}
		}
	}
}

func TestOpenRoundTrip(t *testing.T) {
	fs := newFS()
	opts := Options{Cutoff: 0.10, PageSize: 512}
	tab, err := Create(fs, "author", "Institution", []string{"Country"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range runningExample(t) {
		if err := tab.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(fs, "author", "Institution", []string{"Country"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := re.Query(context.Background(), "MIT", 0.1)
	if err != nil || len(res) != 2 {
		t.Fatalf("reopened query: %v %d", err, len(res))
	}
	if re.SizeBytes() == 0 {
		t.Fatal("SizeBytes = 0")
	}
	if len(re.Files()) != 3 {
		t.Fatalf("files: %v", re.Files())
	}
}

func TestOptionsValidate(t *testing.T) {
	if _, err := Create(newFS(), "t", "X", nil, Options{Cutoff: -0.1}); err == nil {
		t.Fatal("negative cutoff accepted")
	}
	if _, err := Create(newFS(), "t", "X", nil, Options{Cutoff: 1.0}); err == nil {
		t.Fatal("cutoff=1 accepted")
	}
	if _, err := Create(newFS(), "t", "X", []string{"X"}, Options{}); err == nil {
		t.Fatal("secondary on primary attr accepted")
	}
	if _, err := Create(newFS(), "t", "X", nil, Options{MaxPointers: -1}); err == nil {
		t.Fatal("negative MaxPointers accepted")
	}
}

func TestInsertValidation(t *testing.T) {
	tab, _ := Create(newFS(), "t", "X", nil, Options{PageSize: 512})
	bad := &tuple.Tuple{ID: 1, Existence: 2}
	if err := tab.Insert(bad); err == nil {
		t.Fatal("invalid tuple accepted")
	}
	noAttr := &tuple.Tuple{ID: 1, Existence: 1}
	if err := tab.Insert(noAttr); err == nil {
		t.Fatal("tuple without primary attr accepted")
	}
}

// TestUPIScanIsSequential verifies the headline physical property: a
// non-selective PTQ on the UPI is answered with sequential I/O.
func TestUPIScanIsSequential(t *testing.T) {
	disk := sim.NewDisk(sim.DefaultParams())
	fs := storage.NewFS(disk)
	var tuples []*tuple.Tuple
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 3000; i++ {
		v := "common"
		if i%10 != 0 {
			v = fmt.Sprintf("rare%04d", i)
		}
		d, err := prob.NewDiscrete([]prob.Alternative{{Value: v, Prob: 0.9}, {Value: "other" + fmt.Sprint(i%7), Prob: 0.1}})
		if err != nil {
			t.Fatal(err)
		}
		tuples = append(tuples, &tuple.Tuple{
			ID: uint64(i + 1), Existence: 0.8 + 0.2*rng.Float64(),
			Unc:     []tuple.UncField{{Name: "X", Dist: d}},
			Payload: bytes.Repeat([]byte{1}, 100),
		})
	}
	tab, err := BulkBuild(fs, "t", "X", nil, Options{Cutoff: 0.2}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	before := disk.Stats()
	res, _, err := tab.Query(context.Background(), "common", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 200 {
		t.Fatalf("query too selective for this test: %d", len(res))
	}
	d := disk.Stats().Sub(before)
	if d.Seeks > 10 {
		t.Fatalf("UPI PTQ should be ~1 seek + sequential scan, got %+v", d)
	}
}
