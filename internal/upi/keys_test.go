package upi

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestHeapKeyRoundTrip(t *testing.T) {
	f := func(value string, confBits uint16, id uint64) bool {
		conf := float64(confBits) / math.MaxUint16 // [0, 1]
		k := HeapKey(value, conf, id)
		v, c, i, err := DecodeHeapKey(k)
		return err == nil && v == value && c == conf && i == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapKeyOrdering pins the clustering order: value ASC, then
// confidence DESC, then tuple ID ASC.
func TestHeapKeyOrdering(t *testing.T) {
	f := func(v1, v2 string, c1Bits, c2Bits uint16, id1, id2 uint64) bool {
		c1 := float64(c1Bits) / math.MaxUint16
		c2 := float64(c2Bits) / math.MaxUint16
		k1 := HeapKey(v1, c1, id1)
		k2 := HeapKey(v2, c2, id2)
		cmp := bytes.Compare(k1, k2)
		switch {
		case v1 != v2:
			return (v1 < v2) == (cmp < 0)
		case c1 != c2:
			return (c1 > c2) == (cmp < 0) // DESC
		case id1 != id2:
			return (id1 < id2) == (cmp < 0)
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapKeyDecodeErrors(t *testing.T) {
	k := HeapKey("MIT", 0.5, 7)
	for _, n := range []int{0, 1, len(k) / 2, len(k) - 1} {
		if _, _, _, err := DecodeHeapKey(k[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
	if _, _, _, err := DecodeHeapKey(append(k, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestPointersRoundTrip(t *testing.T) {
	f := func(vals []string, confs []uint16) bool {
		n := len(vals)
		if len(confs) < n {
			n = len(confs)
		}
		if n > 20 {
			n = 20
		}
		ps := make([]Pointer, n)
		for i := 0; i < n; i++ {
			if len(vals[i]) > 1000 {
				return true
			}
			ps[i] = Pointer{Value: vals[i], Conf: float64(confs[i]) / math.MaxUint16}
		}
		got, err := DecodePointers(EncodePointers(ps))
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != ps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPointersDecodeErrors(t *testing.T) {
	enc := EncodePointers([]Pointer{{Value: "MIT", Conf: 0.95}})
	for _, n := range []int{0, 1, 3, len(enc) - 1} {
		if _, err := DecodePointers(enc[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
	if _, err := DecodePointers(append(enc, 1)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestValuePrefixBounds(t *testing.T) {
	// Every heap key for a value sorts within [prefix, prefixEnd).
	f := func(value string, confBits uint16, id uint64) bool {
		conf := float64(confBits) / math.MaxUint16
		k := HeapKey(value, conf, id)
		start := ValuePrefix(value)
		end := ValuePrefixEnd(value)
		if bytes.Compare(start, k) > 0 {
			return false
		}
		return end == nil || bytes.Compare(k, end) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	// Keys of a *different* value never fall inside the range.
	a := HeapKey("MIU", 0.99, 1) // adjacent string to MIT
	if bytes.Compare(a, ValuePrefix("MIT")) >= 0 && bytes.Compare(a, ValuePrefixEnd("MIT")) < 0 {
		t.Fatal("MIU key inside MIT range")
	}
}

func TestPointerHeapKey(t *testing.T) {
	p := Pointer{Value: "MIT", Conf: 0.95}
	if !bytes.Equal(p.HeapKey(7), HeapKey("MIT", 0.95, 7)) {
		t.Fatal("Pointer.HeapKey mismatch")
	}
}
