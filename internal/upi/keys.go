package upi

import (
	"encoding/binary"
	"fmt"
	"math"

	"upidb/internal/keyenc"
)

// Heap-file and cutoff-index keys are the composite
// {attribute value ASC, confidence DESC, tuple ID ASC} where
// confidence = existence × alternative probability, matching the
// paper's Table 2 ("Brown (80%*90%=72%) Alice"). The tuple ID makes
// keys unique when confidences tie.

// HeapKey encodes the composite key.
func HeapKey(value string, conf float64, id uint64) []byte {
	k := keyenc.AppendString(nil, value)
	k = keyenc.AppendFloat64Desc(k, conf)
	return keyenc.AppendUint64(k, id)
}

// DecodeHeapKey parses a composite key.
func DecodeHeapKey(k []byte) (value string, conf float64, id uint64, err error) {
	value, rest, err := keyenc.DecodeString(k)
	if err != nil {
		return "", 0, 0, fmt.Errorf("upi: heap key: %w", err)
	}
	conf, rest, err = keyenc.DecodeFloat64Desc(rest)
	if err != nil {
		return "", 0, 0, fmt.Errorf("upi: heap key: %w", err)
	}
	id, rest, err = keyenc.DecodeUint64(rest)
	if err != nil {
		return "", 0, 0, fmt.Errorf("upi: heap key: %w", err)
	}
	if len(rest) != 0 {
		return "", 0, 0, fmt.Errorf("upi: heap key has %d trailing bytes", len(rest))
	}
	return value, conf, id, nil
}

// ValuePrefix returns the key prefix covering every entry for one
// attribute value; [ValuePrefix, ValuePrefixEnd) bounds the range scan
// of Algorithm 2.
func ValuePrefix(value string) []byte { return keyenc.AppendString(nil, value) }

// ValuePrefixEnd returns the exclusive upper bound for ValuePrefix.
func ValuePrefixEnd(value string) []byte { return keyenc.PrefixEnd(ValuePrefix(value)) }

// Pointer references one heap entry of a tuple: the alternative value
// it is clustered under and that alternative's confidence. Together
// with the tuple ID (carried alongside) it reconstructs the heap key.
type Pointer struct {
	Value string
	Conf  float64
}

// HeapKey returns the heap key this pointer resolves to for tuple id.
func (p Pointer) HeapKey(id uint64) []byte { return HeapKey(p.Value, p.Conf, id) }

// appendPointer serializes one pointer.
func appendPointer(dst []byte, p Pointer) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Value)))
	dst = append(dst, p.Value...)
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(p.Conf))
}

func decodePointer(b []byte) (Pointer, []byte, error) {
	if len(b) < 2 {
		return Pointer{}, nil, fmt.Errorf("upi: short pointer")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n+8 {
		return Pointer{}, nil, fmt.Errorf("upi: truncated pointer")
	}
	p := Pointer{
		Value: string(b[:n]),
		Conf:  math.Float64frombits(binary.BigEndian.Uint64(b[n:])),
	}
	return p, b[n+8:], nil
}

// EncodePointers serializes a pointer list (a secondary-index entry
// value or, with a single element, a cutoff-index entry value).
func EncodePointers(ps []Pointer) []byte {
	out := binary.BigEndian.AppendUint16(nil, uint16(len(ps)))
	for _, p := range ps {
		out = appendPointer(out, p)
	}
	return out
}

// DecodePointers parses a pointer list.
func DecodePointers(b []byte) ([]Pointer, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("upi: short pointer list")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	ps := make([]Pointer, 0, n)
	for i := 0; i < n; i++ {
		p, rest, err := decodePointer(b)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("upi: pointer list has %d trailing bytes", len(b))
	}
	return ps, nil
}
