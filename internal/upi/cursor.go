package upi

import (
	"context"
	"iter"

	"upidb/internal/tuple"
)

// Cursor is a pull-based result stream over one UPI partition: results
// arrive in (Confidence DESC, tuple ID ASC) order, and the underlying
// index pages are read only as pulls demand them. A cursor is the
// streaming form of the collect-then-return executors (Query, TopK,
// QuerySecondary, FullScan): draining one to exhaustion yields exactly
// the same results, statistics and I/O pattern as the materialized
// call.
//
// The context passed at construction is checked between pulls (every
// ctxCheckEvery scanned entries); once it is done, Next fails with an
// error wrapping ErrCanceled and no further pages are read.
//
// A Cursor is single-consumer and not safe for concurrent use. Callers
// must Close it when done (Close is idempotent and implied by
// exhaustion or error).
type Cursor struct {
	next  func() (Result, error, bool)
	stop  func()
	stats QueryStats
	err   error
	done  bool
}

// newCursor wraps a push-style body into a pull cursor. The body runs
// in a coroutine (iter.Pull2) that only advances while Next is being
// called, so all I/O the body performs is demand-driven; its yield
// returns false once the consumer stops pulling, at which point the
// body must return promptly.
func newCursor(body func(yield func(Result) bool) error) *Cursor {
	c := &Cursor{}
	seq := func(yield func(Result, error) bool) {
		if err := body(func(r Result) bool { return yield(r, nil) }); err != nil {
			yield(Result{}, err)
		}
	}
	c.next, c.stop = iter.Pull2(seq)
	return c
}

// Next returns the next result. ok is false when the stream is
// exhausted or failed; err is non-nil exactly once, on failure, and is
// sticky afterwards.
func (c *Cursor) Next() (r Result, ok bool, err error) {
	if c.done {
		return Result{}, false, c.err
	}
	r, err, ok = c.next()
	if !ok {
		c.done = true
		c.stop()
		return Result{}, false, nil
	}
	if err != nil {
		c.done = true
		c.err = err
		c.stop()
		return Result{}, false, err
	}
	return r, true, nil
}

// Close releases the cursor's coroutine without draining it. Pages not
// yet read are never read (and so never charged). Idempotent.
func (c *Cursor) Close() {
	if !c.done {
		c.done = true
		c.stop()
	}
}

// Stats reports what the cursor has touched so far; the counts are
// final once the cursor is exhausted, failed or closed. They are
// updated between pulls, so reading them from the consuming goroutine
// is race-free.
func (c *Cursor) Stats() QueryStats { return c.stats }

// drainCursor exhausts a cursor into a slice — the bridge from the
// pull-based executors back to the materialized call shape.
func drainCursor(c *Cursor) ([]Result, QueryStats, error) {
	defer c.Close()
	var results []Result
	for {
		r, ok, err := c.Next()
		if err != nil {
			return nil, c.Stats(), err
		}
		if !ok {
			return results, c.Stats(), nil
		}
		results = append(results, r)
	}
}

// QueryCursor is the streaming form of Query (Algorithm 2): it yields
// the PTQ's results in confidence order, reading heap pages only as
// pulls demand them. Entries at or above the cutoff stream straight
// from the heap scan; once the scan drops below the cutoff the heap
// alone no longer dictates global order, so the remaining heap entries
// are held back, the cutoff index is consulted (charged only if the
// consumer pulls that deep), and the merged tail streams from the
// combined sorted set. On a full drain the I/O sequence — all heap
// pages, then the cutoff scan and its sorted fetches — is identical to
// the materialized Query's.
func (t *Table) QueryCursor(ctx context.Context, value string, qt float64) *Cursor {
	var c *Cursor
	c = newCursor(func(yield func(Result) bool) error {
		if err := CtxErr(ctx); err != nil {
			return err
		}
		// pending holds heap entries below the cutoff: they must wait
		// for the cutoff merge before they may be yielded in order.
		var pending []Result
		stopped := false
		start, end := ValuePrefix(value), ValuePrefixEnd(value)
		var scanErr error
		err := t.heap.Scan(start, end, func(k, v []byte) bool {
			if c.stats.HeapEntries%ctxCheckEvery == 0 {
				if scanErr = CtxErr(ctx); scanErr != nil {
					return false
				}
			}
			_, conf, _, err := DecodeHeapKey(k)
			if err != nil {
				scanErr = err
				return false
			}
			if conf < qt {
				return false
			}
			c.stats.HeapEntries++
			tup, err := tuple.Decode(v)
			if err != nil {
				scanErr = err
				return false
			}
			r := Result{Tuple: tup, Confidence: conf}
			if qt < t.opts.Cutoff && conf < t.opts.Cutoff {
				pending = append(pending, r)
				return true
			}
			if !yield(r) {
				stopped = true
				return false
			}
			return true
		})
		if err == nil {
			err = scanErr
		}
		if err != nil || stopped {
			return err
		}
		if qt < t.opts.Cutoff {
			cutoffResults, n, err := t.queryCutoff(ctx, value, qt)
			c.stats.CutoffPointers = n
			if err != nil {
				return err
			}
			pending = append(pending, cutoffResults...)
			sortByConfDesc(pending)
			for _, r := range pending {
				if !yield(r) {
					return nil
				}
			}
		}
		return nil
	})
	return c
}

// TopKCursor is the streaming form of TopK: at most k results in
// confidence order, scanning at most k heap entries (the heap is
// confidence-sorted, so k entries always suffice) and consulting the
// cutoff index only under the materialized TopK's trigger — fewer than
// k heap results, or a k-th result below the cutoff.
func (t *Table) TopKCursor(ctx context.Context, value string, k int) *Cursor {
	var c *Cursor
	c = newCursor(func(yield func(Result) bool) error {
		if k <= 0 {
			return nil
		}
		if err := CtxErr(ctx); err != nil {
			return err
		}
		var pending []Result
		yielded, scanned := 0, 0
		stopped := false
		start, end := ValuePrefix(value), ValuePrefixEnd(value)
		var scanErr error
		err := t.heap.Scan(start, end, func(kk, v []byte) bool {
			if scanned >= k {
				return false
			}
			if c.stats.HeapEntries%ctxCheckEvery == 0 {
				if scanErr = CtxErr(ctx); scanErr != nil {
					return false
				}
			}
			_, conf, _, err := DecodeHeapKey(kk)
			if err != nil {
				scanErr = err
				return false
			}
			c.stats.HeapEntries++
			scanned++
			tup, err := tuple.Decode(v)
			if err != nil {
				scanErr = err
				return false
			}
			r := Result{Tuple: tup, Confidence: conf}
			if conf < t.opts.Cutoff {
				// The scan is confidence-sorted: once below the cutoff
				// it never rises back, so no later heap entry can
				// out-rank an already-yielded one.
				pending = append(pending, r)
				return true
			}
			yielded++
			if !yield(r) {
				stopped = true
				return false
			}
			return true
		})
		if err == nil {
			err = scanErr
		}
		if err != nil || stopped {
			return err
		}
		if scanned >= k && len(pending) == 0 {
			// k results, all at or above the cutoff: nothing in the
			// cutoff index can displace them.
			return nil
		}
		cutoffResults, n, err := t.queryCutoff(ctx, value, 0)
		c.stats.CutoffPointers = n
		if err != nil {
			return err
		}
		pending = append(pending, cutoffResults...)
		sortByConfDesc(pending)
		for _, r := range pending {
			if yielded >= k {
				break
			}
			yielded++
			if !yield(r) {
				return nil
			}
		}
		return nil
	})
	return c
}

// SecondaryCursor is the streaming form of QuerySecondary. Tailored
// access needs the full matching entry set before any pointer can be
// chosen (Algorithm 3 is a global analysis), so this cursor
// materializes on the first pull — all index and heap I/O happens then
// — and streams the sorted results. A cursor that is never pulled
// charges nothing.
func (t *Table) SecondaryCursor(ctx context.Context, attr, value string, qt float64, tailored bool) *Cursor {
	var c *Cursor
	c = newCursor(func(yield func(Result) bool) error {
		rs, st, err := t.QuerySecondary(ctx, attr, value, qt, tailored)
		c.stats = st
		if err != nil {
			return err
		}
		for _, r := range rs {
			if !yield(r) {
				return nil
			}
		}
		return nil
	})
	return c
}

// ScanCursor is the streaming form of FullScan. A full scan cannot
// yield in confidence order before reading the whole heap (the heap is
// value-sorted, not globally confidence-sorted), so it materializes on
// the first pull and streams the sorted results.
func (t *Table) ScanCursor(ctx context.Context, attr, value string, qt float64) *Cursor {
	var c *Cursor
	c = newCursor(func(yield func(Result) bool) error {
		rs, st, err := t.FullScan(ctx, attr, value, qt)
		c.stats = st
		if err != nil {
			return err
		}
		for _, r := range rs {
			if !yield(r) {
				return nil
			}
		}
		return nil
	})
	return c
}
