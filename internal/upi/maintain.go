package upi

import (
	"bytes"
	"fmt"
	"sort"

	"upidb/internal/btree"
	"upidb/internal/storage"
	"upidb/internal/tuple"
)

// Insert adds a tuple to the UPI per Algorithm 1: every alternative of
// the primary attribute with confidence >= C (or the first
// alternative, unconditionally) becomes a full heap entry; the rest
// become cutoff-index pointers to the first alternative. Secondary
// indexes receive one multi-pointer entry per alternative of their
// attribute.
func (t *Table) Insert(tup *tuple.Tuple) error {
	if err := tup.Validate(); err != nil {
		return err
	}
	dist, ok := tup.Uncertain(t.attr)
	if !ok {
		return fmt.Errorf("upi: tuple %d lacks primary attribute %q", tup.ID, t.attr)
	}
	enc := tuple.Encode(tup)
	first := Pointer{Value: dist.First().Value, Conf: tup.Existence * dist.First().Prob}
	for i, a := range dist {
		conf := tup.Existence * a.Prob
		key := HeapKey(a.Value, conf, tup.ID)
		if i == 0 || conf >= t.opts.Cutoff {
			if _, err := t.heap.Put(key, enc); err != nil {
				return err
			}
		} else {
			if _, err := t.cutoff.Put(key, EncodePointers([]Pointer{first})); err != nil {
				return err
			}
		}
	}
	ptrs, err := t.primaryPointers(tup)
	if err != nil {
		return err
	}
	ptrVal := EncodePointers(ptrs)
	for _, attr := range t.secAttrs {
		secDist, ok := tup.Uncertain(attr)
		if !ok {
			return fmt.Errorf("upi: tuple %d lacks secondary attribute %q", tup.ID, attr)
		}
		for _, a := range secDist {
			conf := tup.Existence * a.Prob
			if _, err := t.secondaries[attr].Put(HeapKey(a.Value, conf, tup.ID), ptrVal); err != nil {
				return err
			}
		}
	}
	return nil
}

// Delete removes a tuple from the UPI ("Deletion from the UPI is
// handled similarly, deleting entries from the heap file or cutoff
// index depends on the probability"). The caller supplies the tuple so
// all of its keys can be reconstructed.
func (t *Table) Delete(tup *tuple.Tuple) error {
	dist, ok := tup.Uncertain(t.attr)
	if !ok {
		return fmt.Errorf("upi: tuple %d lacks primary attribute %q", tup.ID, t.attr)
	}
	for i, a := range dist {
		conf := tup.Existence * a.Prob
		key := HeapKey(a.Value, conf, tup.ID)
		if i == 0 || conf >= t.opts.Cutoff {
			if _, err := t.heap.Delete(key); err != nil {
				return err
			}
		} else {
			if _, err := t.cutoff.Delete(key); err != nil {
				return err
			}
		}
	}
	for _, attr := range t.secAttrs {
		secDist, ok := tup.Uncertain(attr)
		if !ok {
			continue
		}
		for _, a := range secDist {
			conf := tup.Existence * a.Prob
			if _, err := t.secondaries[attr].Delete(HeapKey(a.Value, conf, tup.ID)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Update replaces a tuple ("Updates are processed as a deletion
// followed by an insertion").
func (t *Table) Update(oldTup, newTup *tuple.Tuple) error {
	if err := t.Delete(oldTup); err != nil {
		return err
	}
	return t.Insert(newTup)
}

// entry is one (key, value) pair destined for a bulk build.
type entry struct {
	key []byte
	val []byte
}

type entrySlice []entry

func (e entrySlice) Len() int           { return len(e) }
func (e entrySlice) Swap(i, j int)      { e[i], e[j] = e[j], e[i] }
func (e entrySlice) Less(i, j int) bool { return bytes.Compare(e[i].key, e[j].key) < 0 }

// BulkBuild creates a UPI from a batch of tuples with sequential
// writes only: all index entries are generated, sorted in memory and
// bulk-loaded. This is how fractures are written (Section 4: "all
// files ... are written out sequentially by the clustering key as a
// part of a single write") and how the experiments load tables.
func BulkBuild(fs *storage.FS, name, attr string, secAttrs []string, opts Options, tuples []*tuple.Tuple) (*Table, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	t := &Table{
		fs: fs, name: name, attr: attr, opts: opts,
		secondaries: make(map[string]*btree.Tree, len(secAttrs)),
		secAttrs:    append([]string(nil), secAttrs...),
	}

	var heapEntries, cutoffEntries entrySlice
	secEntries := make(map[string]entrySlice, len(secAttrs))
	for _, tup := range tuples {
		if err := tup.Validate(); err != nil {
			return nil, err
		}
		dist, ok := tup.Uncertain(attr)
		if !ok {
			return nil, fmt.Errorf("upi: tuple %d lacks primary attribute %q", tup.ID, attr)
		}
		enc := tuple.Encode(tup)
		first := Pointer{Value: dist.First().Value, Conf: tup.Existence * dist.First().Prob}
		for i, a := range dist {
			conf := tup.Existence * a.Prob
			key := HeapKey(a.Value, conf, tup.ID)
			if i == 0 || conf >= opts.Cutoff {
				heapEntries = append(heapEntries, entry{key: key, val: enc})
			} else {
				cutoffEntries = append(cutoffEntries, entry{key: key, val: EncodePointers([]Pointer{first})})
			}
		}
		ptrs, err := t.primaryPointers(tup)
		if err != nil {
			return nil, err
		}
		ptrVal := EncodePointers(ptrs)
		for _, sa := range secAttrs {
			secDist, ok := tup.Uncertain(sa)
			if !ok {
				return nil, fmt.Errorf("upi: tuple %d lacks secondary attribute %q", tup.ID, sa)
			}
			for _, a := range secDist {
				conf := tup.Existence * a.Prob
				secEntries[sa] = append(secEntries[sa], entry{key: HeapKey(a.Value, conf, tup.ID), val: ptrVal})
			}
		}
	}

	var err error
	if t.heap, err = bulkTree(fs, t.heapFile(), opts, heapEntries); err != nil {
		return nil, err
	}
	if t.cutoff, err = bulkTree(fs, t.cutoffFile(), opts, cutoffEntries); err != nil {
		return nil, err
	}
	for _, sa := range secAttrs {
		if sa == attr {
			return nil, fmt.Errorf("upi: secondary index on primary attribute %q", sa)
		}
		sec, err := bulkTree(fs, t.secFile(sa), opts, secEntries[sa])
		if err != nil {
			return nil, err
		}
		t.secondaries[sa] = sec
	}
	if err := t.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}

func bulkTree(fs *storage.FS, file string, opts Options, entries entrySlice) (*btree.Tree, error) {
	sort.Sort(entries)
	p, err := storage.NewPager(fs.Create(file), opts.PageSize)
	if err != nil {
		return nil, err
	}
	if err := p.SetCacheLimit(opts.CachePages); err != nil {
		return nil, err
	}
	b, err := btree.NewBuilder(p)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if err := b.Add(e.key, e.val); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}
