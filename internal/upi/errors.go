package upi

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors shared by every query layer. The public facade
// re-exports them, so errors.Is works across the API boundary no
// matter which layer produced the error.
var (
	// ErrUnknownAttr reports a query on an attribute the table has no
	// index for.
	ErrUnknownAttr = errors.New("upidb: unknown attribute")
	// ErrCanceled reports a query stopped by its context before
	// completion. Errors returned for a cancelled query wrap both
	// ErrCanceled and the specific context error (context.Canceled or
	// context.DeadlineExceeded), so errors.Is matches either.
	ErrCanceled = errors.New("upidb: query canceled")
	// ErrClosed reports an operation on a table after Close. Both the
	// fractured store and the continuous UPI return it (fracture
	// re-exports it for compatibility), and the public facade aliases
	// it, so errors.Is works across the API boundary.
	ErrClosed = errors.New("upidb: table closed")
)

// CtxErr returns nil while ctx is live, and an error wrapping both
// ErrCanceled and ctx.Err() once it is done. Query paths call it at
// entry and periodically between pages so a cancelled query stops
// promptly without charging further modeled I/O.
func CtxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}
