package upi

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"upidb/internal/tuple"
)

// Result is one query answer: a tuple and the possible-world
// confidence with which it satisfies the predicate.
type Result struct {
	Tuple      *tuple.Tuple
	Confidence float64
}

// QueryStats reports what one query touched, for cost-model validation.
type QueryStats struct {
	// HeapEntries is the number of heap-file entries scanned.
	HeapEntries int
	// CutoffPointers is the number of pointers retrieved from the
	// cutoff index (the x of the saturation model, Figure 11).
	CutoffPointers int
	// SecondaryEntries is the number of secondary-index entries read.
	SecondaryEntries int
	// ReusedPointers counts tailored-access pointer choices that
	// landed on an already-visited heap region.
	ReusedPointers int
}

// ctxCheckEvery is how many scanned entries pass between context
// checks — roughly one leaf page of heap entries, so a cancelled
// query stops within a page's worth of work.
const ctxCheckEvery = 64

// Query answers the PTQ "SELECT * WHERE attr = value, confidence >= qt"
// per Algorithm 2: one seek plus a sequential scan of the heap file,
// followed — only when qt < C — by a cutoff-index scan whose pointers
// are sorted in heap order before being chased. The context is checked
// between heap pages; a cancelled query returns ErrCanceled.
//
// Query is the materialized form of QueryCursor: it drains the cursor
// to exhaustion, so results, statistics and the I/O sequence are the
// cursor's.
func (t *Table) Query(ctx context.Context, value string, qt float64) ([]Result, QueryStats, error) {
	return drainCursor(t.QueryCursor(ctx, value, qt))
}

// queryCutoff performs the second half of Algorithm 2: collect
// matching cutoff pointers, sort them in heap order (the bitmap-scan
// discipline that produces saturation), then fetch each tuple.
func (t *Table) queryCutoff(ctx context.Context, value string, qt float64) ([]Result, int, error) {
	type ref struct {
		heapKey []byte
		conf    float64 // confidence of the *queried* value, not the pointed-to one
	}
	var refs []ref
	start, end := ValuePrefix(value), ValuePrefixEnd(value)
	var scanErr error
	err := t.cutoff.Scan(start, end, func(k, v []byte) bool {
		if len(refs)%ctxCheckEvery == 0 {
			if scanErr = CtxErr(ctx); scanErr != nil {
				return false
			}
		}
		_, conf, id, err := DecodeHeapKey(k)
		if err != nil {
			scanErr = err
			return false
		}
		if conf < qt {
			return false
		}
		ps, err := DecodePointers(v)
		if err != nil || len(ps) != 1 {
			scanErr = fmt.Errorf("upi: bad cutoff entry: %w", err)
			return false
		}
		refs = append(refs, ref{heapKey: ps[0].HeapKey(id), conf: conf})
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return nil, 0, err
	}
	sort.Slice(refs, func(i, j int) bool { return bytes.Compare(refs[i].heapKey, refs[j].heapKey) < 0 })
	results := make([]Result, 0, len(refs))
	for i, r := range refs {
		if i%ctxCheckEvery == 0 {
			if err := CtxErr(ctx); err != nil {
				return nil, len(refs), err
			}
		}
		v, ok, err := t.heap.Get(r.heapKey)
		if err != nil {
			return nil, len(refs), err
		}
		if !ok {
			return nil, len(refs), fmt.Errorf("upi: dangling cutoff pointer %x", r.heapKey)
		}
		tup, err := tuple.Decode(v)
		if err != nil {
			return nil, len(refs), err
		}
		results = append(results, Result{Tuple: tup, Confidence: r.conf})
	}
	return results, len(refs), nil
}

// QuerySecondary answers a PTQ on a secondary uncertain attribute. With
// tailored access (Algorithm 3) it exploits the duplicated heap
// entries: entries with a single pointer commit their heap region
// first, then multi-pointer entries preferentially reuse regions
// already being read. Without tailored access it always follows the
// first (highest-confidence) pointer, like a conventional secondary
// index. Querying an attribute with no secondary index returns
// ErrUnknownAttr.
func (t *Table) QuerySecondary(ctx context.Context, attr, value string, qt float64, tailored bool) ([]Result, QueryStats, error) {
	var stats QueryStats
	if err := CtxErr(ctx); err != nil {
		return nil, stats, err
	}
	sec, ok := t.secondaries[attr]
	if !ok {
		return nil, stats, fmt.Errorf("%w: no secondary index on %q", ErrUnknownAttr, attr)
	}
	type secEntry struct {
		id   uint64
		conf float64
		ptrs []Pointer
	}
	var entries []secEntry
	start, end := ValuePrefix(value), ValuePrefixEnd(value)
	var scanErr error
	err := sec.Scan(start, end, func(k, v []byte) bool {
		if len(entries)%ctxCheckEvery == 0 {
			if scanErr = CtxErr(ctx); scanErr != nil {
				return false
			}
		}
		_, conf, id, err := DecodeHeapKey(k)
		if err != nil {
			scanErr = err
			return false
		}
		if conf < qt {
			return false
		}
		ps, err := DecodePointers(v)
		if err != nil {
			scanErr = err
			return false
		}
		entries = append(entries, secEntry{id: id, conf: conf, ptrs: ps})
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return nil, stats, err
	}
	stats.SecondaryEntries = len(entries)

	// Choose one pointer per entry.
	chosen := make([]Pointer, len(entries))
	if !tailored {
		for i, e := range entries {
			chosen[i] = e.ptrs[0]
		}
	} else {
		// Algorithm 3, pass 1: single-pointer entries are forced moves;
		// record the heap regions (primary values) they commit us to.
		seen := make(map[string]bool)
		for i, e := range entries {
			if len(e.ptrs) == 1 {
				chosen[i] = e.ptrs[0]
				seen[e.ptrs[0].Value] = true
			}
		}
		// Pass 2: multi-pointer entries reuse a committed region when
		// any of their pointers lands in one.
		for i, e := range entries {
			if len(e.ptrs) == 1 {
				continue
			}
			picked := false
			for _, p := range e.ptrs {
				if seen[p.Value] {
					chosen[i] = p
					picked = true
					stats.ReusedPointers++
					break
				}
			}
			if !picked {
				chosen[i] = e.ptrs[0]
				seen[e.ptrs[0].Value] = true
			}
		}
	}

	// Fetch tuples in heap order (bitmap-scan discipline).
	type fetchRef struct {
		key  []byte
		conf float64
	}
	refs := make([]fetchRef, len(entries))
	for i, e := range entries {
		refs[i] = fetchRef{key: chosen[i].HeapKey(e.id), conf: e.conf}
	}
	sort.Slice(refs, func(i, j int) bool { return bytes.Compare(refs[i].key, refs[j].key) < 0 })
	results := make([]Result, 0, len(refs))
	for i, r := range refs {
		if i%ctxCheckEvery == 0 {
			if err := CtxErr(ctx); err != nil {
				return nil, stats, err
			}
		}
		v, ok, err := t.heap.Get(r.key)
		if err != nil {
			return nil, stats, err
		}
		if !ok {
			return nil, stats, fmt.Errorf("upi: dangling secondary pointer %x", r.key)
		}
		tup, err := tuple.Decode(v)
		if err != nil {
			return nil, stats, err
		}
		results = append(results, Result{Tuple: tup, Confidence: r.conf})
	}
	sortByConfDesc(results)
	return results, stats, nil
}

// TopK returns the k highest-confidence tuples for the given value of
// the primary attribute. Because the heap orders entries by confidence
// DESC, the scan stops after k heap entries unless the cutoff index
// may still hold candidates (Section 3.1: "a top-k query can terminate
// scanning the index when the top-k results are identified").
//
// TopK is the materialized form of TopKCursor: it drains the cursor to
// exhaustion.
func (t *Table) TopK(ctx context.Context, value string, k int) ([]Result, QueryStats, error) {
	return drainCursor(t.TopKCursor(ctx, value, k))
}

// scanReadAhead is the sequential read-ahead window (pages) a full
// scan runs the heap pager with, so the modeled cost matches the
// Costscan assumption of one seek per run of pages rather than one
// per page.
const scanReadAhead = 64

// FullScan answers the PTQ "attr = value AND confidence >= qt" by
// reading the whole heap file sequentially and filtering — the
// physical execution of the planner's FullScan plan. It touches no
// secondary or cutoff index: every live tuple keeps at least its
// first alternative in the heap, entries are deduplicated by tuple
// ID, and the confidence is recomputed from the tuple itself, so
// results are exact for any attribute and any threshold (including
// below the cutoff). attr "" means the primary attribute.
func (t *Table) FullScan(ctx context.Context, attr, value string, qt float64) ([]Result, QueryStats, error) {
	var stats QueryStats
	if err := CtxErr(ctx); err != nil {
		return nil, stats, err
	}
	if attr == "" {
		attr = t.attr
	}
	// Reference-counted hold: a concurrent scan or merge of the same
	// heap keeps its read-ahead until the last sequential reader is
	// done.
	release := t.heap.Pager().PushPrefetch(scanReadAhead)
	defer release()
	seen := make(map[uint64]bool)
	var results []Result
	var scanErr error
	err := t.ScanHeap(func(_ string, _ float64, id uint64, enc []byte) bool {
		if stats.HeapEntries%ctxCheckEvery == 0 {
			if scanErr = CtxErr(ctx); scanErr != nil {
				return false
			}
		}
		stats.HeapEntries++
		if seen[id] {
			return true // another alternative of an already-decided tuple
		}
		seen[id] = true
		tup, err := tuple.Decode(enc)
		if err != nil {
			scanErr = err
			return false
		}
		if conf := tup.Confidence(attr, value); conf > 0 && conf >= qt {
			results = append(results, Result{Tuple: tup, Confidence: conf})
		}
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return nil, stats, err
	}
	sortByConfDesc(results)
	return results, stats, nil
}

// sortByConfDesc orders results by confidence descending, tuple ID
// ascending for determinism.
func sortByConfDesc(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Confidence != rs[j].Confidence {
			return rs[i].Confidence > rs[j].Confidence
		}
		return rs[i].Tuple.ID < rs[j].Tuple.ID
	})
}

// ScanHeap visits every heap entry in key order. Used by histogram
// construction and fracture merging.
//
//lint:noctx callers thread cancellation through fn — FullScan and fracture merging both check ctx in their callbacks
func (t *Table) ScanHeap(fn func(value string, conf float64, id uint64, tup []byte) bool) error {
	var scanErr error
	err := t.heap.Scan(nil, nil, func(k, v []byte) bool {
		value, conf, id, err := DecodeHeapKey(k)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(value, conf, id, v)
	})
	if err == nil {
		err = scanErr
	}
	return err
}
