package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"upidb/internal/fracture"
	"upidb/internal/obs"
	"upidb/internal/upi"
)

// Prepared is a query scattered across every shard: one pinned
// fracture.Prepared per shard. Exactly one of Collect (materialized)
// or Stream (incremental gather) may consume it; Release discards an
// unconsumed Prepared. Per-shard pins release independently — a shard
// whose stream is exhausted frees its partitions while slower shards
// are still scanning.
type Prepared struct {
	table *Table
	preps []*fracture.Prepared
	k     int
	trace fracture.TraceFunc
	met   *obs.EngineMetrics
	used  bool
}

// errConsumed reports a second consumption of a Prepared.
var errConsumed = fmt.Errorf("shard: prepared query already consumed")

// Release discards an unconsumed Prepared, dropping every shard's
// partition pins. Idempotent; consuming paths release on their own.
func (p *Prepared) Release() {
	p.used = true
	for _, sub := range p.preps {
		sub.Release()
	}
}

// addFracStats folds one shard's execution statistics into the
// aggregate: counters sum, partition counts sum, modeled time sums
// (each shard's tapes replay against the shared disk model, so the
// table-level modeled cost is the serial sum of the per-shard costs).
func addFracStats(agg *fracture.Stats, st fracture.Stats) {
	agg.HeapEntries += st.HeapEntries
	agg.CutoffPointers += st.CutoffPointers
	agg.SecondaryEntries += st.SecondaryEntries
	agg.ReusedPointers += st.ReusedPointers
	agg.PartitionsRead += st.PartitionsRead
	agg.BufferHits += st.BufferHits
	agg.ModeledTime += st.ModeledTime
}

// Collect executes the query the materialized way on every shard in
// parallel, then merges the per-shard result sets into one globally
// (Confidence DESC, ID ASC)-ordered set, truncated to k for a top-k
// query (each shard already returned at most its local top k, and the
// global top k is a subset of the union of the local ones). Statistics
// aggregate across shards; on failure the first failing shard's error
// (by shard index, for determinism) is returned with the aggregated
// partial statistics.
func (p *Prepared) Collect(ctx context.Context) ([]upi.Result, fracture.Stats, error) {
	if p.used {
		return nil, fracture.Stats{}, errConsumed
	}
	p.used = true
	n := len(p.preps)
	if n == 1 {
		return p.preps[0].Collect(ctx)
	}
	type out struct {
		rs  []upi.Result
		st  fracture.Stats
		err error
	}
	outs := make([]out, n)
	var wg sync.WaitGroup
	for i, sub := range p.preps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, st, err := sub.Collect(ctx)
			outs[i] = out{rs: rs, st: st, err: err}
		}()
	}
	wg.Wait()

	var agg fracture.Stats
	var results []upi.Result
	for i := range outs {
		addFracStats(&agg, outs[i].st)
		if outs[i].err != nil {
			return nil, agg, outs[i].err
		}
		results = append(results, outs[i].rs...)
	}
	sortResults(results)
	if p.k > 0 && len(results) > p.k {
		results = results[:p.k]
	}
	return results, agg, nil
}

// sortResults orders results (Confidence DESC, ID ASC) — the engine's
// canonical result order. IDs are unique across shards (each lives on
// exactly one), so the order is total.
func sortResults(rs []upi.Result) {
	sort.Slice(rs, func(i, j int) bool { return resultBefore(rs[i], rs[j]) })
}

// Stream consumes the Prepared incrementally: a k-way merge over the
// per-shard streams (each itself a k-way merge over that shard's
// partitions), yielding the globally next-best result. May be called
// at most once.
func (p *Prepared) Stream(ctx context.Context) *Stream {
	if p.used {
		return &Stream{done: true, err: errConsumed}
	}
	p.used = true
	st := &Stream{ctx: ctx, k: p.k, trace: p.trace, met: p.met, subs: make([]*subStream, len(p.preps))}
	for i, sub := range p.preps {
		st.subs[i] = &subStream{shard: i, st: sub.Stream(ctx)}
	}
	return st
}

// subStream is one shard's side of the merge.
type subStream struct {
	shard   int
	st      *fracture.Stream
	head    upi.Result
	hasHead bool
}

// Stream is the gathered, globally ordered result stream of a sharded
// query. Semantics mirror fracture.Stream: single-consumer, context
// checked between pulls, top-k stops — and cancels every shard's
// remaining scans — at the k-th yield, and a fully drained stream's
// aggregated statistics equal the materialized Collect's.
//
// The merge is lazy: after the priming pull only the shard whose head
// was yielded is advanced, so a one-shard table drives its underlying
// stream with exactly the pull sequence an unsharded consumer would —
// pull-for-pull identical modeled costs.
type Stream struct {
	ctx   context.Context
	subs  []*subStream
	k     int
	trace fracture.TraceFunc
	met   *obs.EngineMetrics

	primed  bool
	last    *subStream // sub whose head was yielded by the previous Next
	yielded int
	done    bool
	err     error
}

// advance pulls sub's next head. A sub whose stream is exhausted has
// already finalized itself (fracture streams replay tapes and release
// pins per partition as they drain).
func (st *Stream) advance(sub *subStream) error {
	r, ok, err := sub.st.Next()
	if err != nil {
		sub.hasHead = false
		return err
	}
	sub.head, sub.hasHead = r, ok
	return nil
}

// prime pulls every shard's first head, one goroutine per shard — each
// shard's own priming already fans out across its partition worker
// pool, so this overlaps whole shards. The first error by shard index
// wins, for determinism.
func (st *Stream) prime() error {
	st.primed = true
	errs := make([]error, len(st.subs))
	var wg sync.WaitGroup
	for i, sub := range st.subs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = st.advance(sub)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// finish terminates the stream: every shard's stream is closed
// (cancelling remaining scans, charging only consumed I/O, releasing
// every pin) and the terminal error, if any, made sticky.
func (st *Stream) finish(err error) {
	if st.done {
		return
	}
	st.done = true
	st.err = err
	for _, sub := range st.subs {
		sub.st.Close()
	}
}

// Next returns the globally next-best result across every shard. ok is
// false when the stream is exhausted (or, for top-k, the k-th result
// has been yielded); err is non-nil exactly once, on failure, and
// sticky afterwards.
func (st *Stream) Next() (r upi.Result, ok bool, err error) {
	if st.done {
		return upi.Result{}, false, st.err
	}
	if err := upi.CtxErr(st.ctx); err != nil {
		st.finish(err)
		return upi.Result{}, false, err
	}
	// The top-k check runs before any refill: at the k-th yield no
	// shard is pulled again, so — exactly like an unsharded stream —
	// pages beyond the k-th result are never read and never charged.
	if st.k > 0 && st.yielded >= st.k {
		// An early termination only counts when it actually cut work
		// short: some shard still held an unconsumed head whose scans
		// the finish below cancels.
		for _, sub := range st.subs {
			if sub.hasHead {
				st.met.TopKEarlyTerm.Inc()
				break
			}
		}
		st.finish(nil)
		return upi.Result{}, false, nil
	}
	if !st.primed {
		if err := st.prime(); err != nil {
			st.finish(err)
			return upi.Result{}, false, err
		}
	} else if st.last != nil {
		sub := st.last
		st.last = nil
		if err := st.advance(sub); err != nil {
			st.finish(err)
			return upi.Result{}, false, err
		}
	}

	var best *subStream
	for _, sub := range st.subs {
		if !sub.hasHead {
			continue
		}
		if best == nil || resultBefore(sub.head, best.head) {
			best = sub
		}
	}
	if best == nil {
		st.finish(nil)
		return upi.Result{}, false, nil
	}
	r = best.head
	st.last = best
	st.yielded++
	if st.trace != nil {
		st.trace(fracture.TraceEvent{
			Kind:   fracture.TraceYield,
			Shard:  best.shard,
			Detail: fmt.Sprintf("tuple %d conf %.6f", r.Tuple.ID, r.Confidence),
		})
	}
	return r, true, nil
}

// Close terminates the stream without draining it. Idempotent;
// exhaustion and errors imply it.
func (st *Stream) Close() { st.finish(st.err) }

// Stats aggregates what every shard's stream has touched so far.
// Counters are final once the stream is exhausted, failed or closed.
func (st *Stream) Stats() fracture.Stats {
	var agg fracture.Stats
	for _, sub := range st.subs {
		addFracStats(&agg, sub.st.Stats())
	}
	return agg
}

// resultBefore is the merge order: confidence descending, tuple ID
// ascending.
func resultBefore(a, b upi.Result) bool {
	if a.Confidence != b.Confidence {
		return a.Confidence > b.Confidence
	}
	return a.Tuple.ID < b.Tuple.ID
}
