// Package shard hash-partitions one logical uncertain table across N
// independent fracture.Stores — the shard-per-core architecture. Each
// shard owns a full vertical slice of the engine: its own RAM insert
// buffer, fracture set, merge pipeline, WAL+manifest (when durable),
// statistics catalog and planner, so shards share no locks and scale
// writes and merges with cores.
//
// Tuples are routed by a fixed hash of the primary ID: Insert and
// Delete touch exactly one shard, while queries scatter to every shard
// and gather their per-shard streams through a k-way merge into one
// globally confidence-ordered stream (see Prepared). A table with one
// shard is byte-identical to an unsharded fracture.Store — same file
// names, same modeled costs — so sharding is strictly opt-in.
//
// Shard i of table "name" stores its partitions under the store name
// "name.shard<i>" (a single-shard table uses plain "name"), which
// gives every shard its own WAL ("name.shard<i>.wal") and manifest for
// free: crash recovery is the unsharded machinery applied per shard.
// The shard count itself is persisted in a sideband "name.shards"
// file, so Open rediscovers the layout without being told.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"upidb/internal/fracture"
	"upidb/internal/obs"
	"upidb/internal/planner"
	"upidb/internal/sim"
	"upidb/internal/stats"
	"upidb/internal/storage"
	"upidb/internal/tuple"
)

// Table is one logical table hash-partitioned across independent
// fracture stores. It is safe for concurrent use to exactly the degree
// its shards are: mutations lock only the owning shard, queries
// snapshot every shard independently.
type Table struct {
	fs       *storage.FS
	name     string
	disk     sim.Params
	stores   []*fracture.Store
	cats     []*stats.Catalog
	planners []*planner.Planner
	met      *obs.EngineMetrics
}

// shardsFile is the sideband file persisting the shard count of one
// table (absent for single-shard tables, so legacy layouts reopen
// unchanged).
func shardsFile(name string) string { return name + ".shards" }

// storeName returns the fracture-store name of shard i. A single-shard
// table keeps the plain table name: its on-disk layout (and therefore
// its modeled costs, WAL name and manifest) is byte-identical to an
// unsharded store's.
func storeName(name string, i, n int) string {
	if n == 1 {
		return name
	}
	return fmt.Sprintf("%s.shard%d", name, i)
}

// shardOf routes a tuple ID to its owning shard: a splitmix64-style
// finalizer over the ID, reduced mod n. IDs are often sequential;
// the mixer spreads them uniformly regardless.
func shardOf(id uint64, n int) int {
	if n == 1 {
		return 0
	}
	x := id
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(n))
}

// resolveNew resolves the shard count for a fresh table: n >= 1 is
// explicit, anything else defaults to GOMAXPROCS (shard-per-core).
func resolveNew(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// writeShardsFile persists the shard count (multi-shard tables only).
// The file is sideband: never routed, never charged.
func writeShardsFile(fs *storage.FS, name string, n int, durable bool) error {
	if n == 1 {
		return nil
	}
	file := shardsFile(name)
	fs.Sideband(file)
	f := fs.Create(file)
	if err := f.WriteAt([]byte(fmt.Sprintf("shards %d\n", n)), 0); err != nil {
		return err
	}
	if durable {
		return f.Sync()
	}
	return nil
}

// readShardsFile returns the persisted shard count, or 0 when the
// table has none recorded (legacy / single-shard layout).
func readShardsFile(fs *storage.FS, name string) (int, error) {
	file := shardsFile(name)
	fs.Sideband(file)
	if !fs.Exists(file) {
		return 0, nil
	}
	f, err := fs.Open(file)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, f.Size())
	if err := f.ReadAt(buf, 0); err != nil {
		return 0, err
	}
	var n int
	if _, err := fmt.Sscanf(strings.TrimSpace(string(buf)), "shards %d", &n); err != nil || n < 1 {
		return 0, fmt.Errorf("shard: corrupt shards file %q: %q", file, string(buf))
	}
	return n, nil
}

// newTable assembles the Table around per-shard stores, giving each
// shard its own statistics catalog (wired into the store's delta and
// merge-rebuild hooks) and planner. A shared catalog would not work:
// each shard's merge atomically replaces its catalog's content from
// that merge's own heap stream, which must only ever describe that
// shard's tuples.
func newTable(fs *storage.FS, name string, disk sim.Params, stores []*fracture.Store, cfg fracture.Config, known bool) *Table {
	met := cfg.Metrics
	if met == nil {
		met = &obs.EngineMetrics{}
	}
	t := &Table{
		fs:       fs,
		name:     name,
		disk:     disk,
		stores:   stores,
		cats:     make([]*stats.Catalog, len(stores)),
		planners: make([]*planner.Planner, len(stores)),
		met:      met,
	}
	for i, s := range stores {
		cat := stats.NewCatalog(s.Main().Attr(), s.Main().SecondaryAttrs(), cfg.StatsStaleness, known)
		s.SetStats(cat)
		t.cats[i] = cat
		t.planners[i] = planner.New(s, cat, disk)
		t.planners[i].SetMetrics(met)
	}
	return t
}

// closeAll closes stores built so far when a constructor fails midway.
func closeAll(stores []*fracture.Store) {
	for _, s := range stores {
		if s != nil {
			_ = s.Close()
		}
	}
}

// New creates an empty sharded table with n shards (n < 1 defaults to
// GOMAXPROCS). Every shard starts with complete (empty) statistics, so
// planner routing works from the first query, matching the unsharded
// create path.
func New(fs *storage.FS, name, attr string, secAttrs []string, cfg fracture.Config, n int, disk sim.Params) (*Table, error) {
	n = resolveNew(n)
	if err := writeShardsFile(fs, name, n, cfg.Durable); err != nil {
		return nil, err
	}
	stores := make([]*fracture.Store, n)
	for i := range stores {
		s, err := fracture.NewStore(fs, storeName(name, i, n), attr, secAttrs, cfg)
		if err != nil {
			closeAll(stores)
			return nil, err
		}
		stores[i] = s
	}
	return newTable(fs, name, disk, stores, cfg, true), nil
}

// BulkLoad creates a sharded table whose shards are bulk-built from
// the tuples owned by each (sequential I/O only, per shard). Each
// shard's catalog is seeded from its own slice, so the table owns
// complete cardinality knowledge immediately.
func BulkLoad(fs *storage.FS, name, attr string, secAttrs []string, cfg fracture.Config, n int, disk sim.Params, tuples []*tuple.Tuple) (*Table, error) {
	n = resolveNew(n)
	if err := writeShardsFile(fs, name, n, cfg.Durable); err != nil {
		return nil, err
	}
	parts := partition(tuples, n)
	stores := make([]*fracture.Store, n)
	for i := range stores {
		s, err := fracture.BulkLoad(fs, storeName(name, i, n), attr, secAttrs, cfg, parts[i])
		if err != nil {
			closeAll(stores)
			return nil, err
		}
		stores[i] = s
	}
	t := newTable(fs, name, disk, stores, cfg, false)
	for i, cat := range t.cats {
		if err := cat.Seed(parts[i]); err != nil {
			closeAll(stores)
			return nil, err
		}
	}
	return t, nil
}

// Open reloads a sharded table from storage. The persisted shard count
// is authoritative: passing n < 1 accepts whatever the table was
// created with (1 when nothing is recorded — the legacy unsharded
// layout), while an explicit n that contradicts the persisted count is
// an error rather than a silent resharding. Recovery is the unsharded
// machinery applied shard by shard: each shard replays its own WAL
// against its own manifest.
func Open(fs *storage.FS, name, attr string, secAttrs []string, cfg fracture.Config, n int, disk sim.Params) (*Table, error) {
	persisted, err := readShardsFile(fs, name)
	if err != nil {
		return nil, err
	}
	switch {
	case persisted == 0 && n < 1:
		n = 1
	case persisted == 0:
		if n != 1 {
			return nil, fmt.Errorf("shard: table %q was created with 1 shard; cannot open with %d (resharding is not supported)", name, n)
		}
	case n >= 1 && n != persisted:
		return nil, fmt.Errorf("shard: table %q was created with %d shards; cannot open with %d (resharding is not supported)", name, persisted, n)
	default:
		n = persisted
	}
	stores := make([]*fracture.Store, n)
	for i := range stores {
		s, err := fracture.Open(fs, storeName(name, i, n), attr, secAttrs, cfg)
		if err != nil {
			closeAll(stores)
			return nil, err
		}
		stores[i] = s
	}
	return newTable(fs, name, disk, stores, cfg, false), nil
}

// partition splits tuples by owning shard, preserving order within
// each shard.
func partition(tuples []*tuple.Tuple, n int) [][]*tuple.Tuple {
	parts := make([][]*tuple.Tuple, n)
	for _, tup := range tuples {
		i := shardOf(tup.ID, n)
		parts[i] = append(parts[i], tup)
	}
	return parts
}

// Name returns the logical table name.
func (t *Table) Name() string { return t.name }

// NumShards returns the shard count.
func (t *Table) NumShards() int { return len(t.stores) }

// Attr returns the primary (clustered) uncertain attribute.
func (t *Table) Attr() string { return t.stores[0].Main().Attr() }

// SecondaryAttrs returns the secondary-indexed attributes.
func (t *Table) SecondaryAttrs() []string { return t.stores[0].Main().SecondaryAttrs() }

// Catalog exposes shard i's statistics catalog (tests and diagnostics;
// shard 0 of a single-shard table is the whole table).
func (t *Table) Catalog(i int) *stats.Catalog { return t.cats[i] }

// Insert routes the tuple to its owning shard (buffered there; an
// upsert exactly like the unsharded store's).
func (t *Table) Insert(tup *tuple.Tuple) error {
	return t.stores[shardOf(tup.ID, len(t.stores))].Insert(tup)
}

// Delete routes the tombstone to the owning shard.
func (t *Table) Delete(id uint64) error {
	return t.stores[shardOf(id, len(t.stores))].Delete(id)
}

// each runs f over every shard and returns the first error, by shard
// index.
func (t *Table) each(f func(*fracture.Store) error) error {
	var first error
	for _, s := range t.stores {
		if err := f(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush flushes every shard's RAM buffer into a new fracture.
func (t *Table) Flush() error { return t.each((*fracture.Store).Flush) }

// Merge folds every shard's fractures back into its main UPI. Shards
// merge independently; with background merging each shard triggers on
// its own thresholds.
func (t *Table) Merge() error { return t.each((*fracture.Store).Merge) }

// Close closes every shard; the first error wins. Closing twice is
// safe.
func (t *Table) Close() error { return t.each((*fracture.Store).Close) }

// DropCaches empties every shard's buffer pools, plan cache and result
// cache — after it, every query cold-starts: pages re-read, plans
// re-costed, point results re-executed. This is what keeps upibench's
// cold-cache modeled runs deterministic even with caching layered on.
func (t *Table) DropCaches() error {
	for _, p := range t.planners {
		p.DropPlanCache()
	}
	return t.each((*fracture.Store).DropCaches)
}

// SetParallelism sets the per-query partition fan-out width on every
// shard.
func (t *Table) SetParallelism(n int) {
	for _, s := range t.stores {
		s.SetParallelism(n)
	}
}

// StartAutoMerge starts one background merger per shard.
func (t *Table) StartAutoMerge(opts fracture.AutoMergeOptions) error {
	return t.each(func(s *fracture.Store) error { return s.StartAutoMerge(opts) })
}

// StopAutoMerge stops every shard's background merger, returning the
// first background-merge error.
func (t *Table) StopAutoMerge() error { return t.each((*fracture.Store).StopAutoMerge) }

// NumFractures returns the fracture count summed over shards.
func (t *Table) NumFractures() int {
	n := 0
	for _, s := range t.stores {
		n += s.NumFractures()
	}
	return n
}

// SizeBytes returns the on-disk size summed over shards.
func (t *Table) SizeBytes() int64 {
	var n int64
	for _, s := range t.stores {
		n += s.SizeBytes()
	}
	return n
}

// BufferedInserts returns the RAM-buffered tuple count summed over
// shards.
func (t *Table) BufferedInserts() int {
	n := 0
	for _, s := range t.stores {
		n += s.BufferedInserts()
	}
	return n
}

// Seed seeds every shard's statistics catalog from the sample tuples
// it owns (the BuildStats path). Every shard is seeded, including
// shards the sample happens to leave empty — a sample is a statement
// about the whole table.
func (t *Table) Seed(sample []*tuple.Tuple, attrs ...string) error {
	parts := partition(sample, len(t.stores))
	for i, cat := range t.cats {
		if err := cat.Seed(parts[i], attrs...); err != nil {
			return err
		}
	}
	return nil
}

// Fresh reports whether every shard's statistics for attr are complete
// and within the staleness threshold — the gate for automatic planner
// routing. One stale shard degrades the whole table to heuristic
// routing: a cost estimate summed over shards is only as good as its
// worst input.
func (t *Table) Fresh(attr string) bool {
	for _, cat := range t.cats {
		if !cat.Fresh(attr) {
			return false
		}
	}
	return true
}

// ShardStats is one shard's slice of the table: the per-shard
// breakdown operators read to spot skew (hot shards, lagging merges,
// stale statistics) that the table-level sums hide.
type ShardStats struct {
	Shard           int
	Tuples          int64
	Fractures       int
	BufferedInserts int
	SizeBytes       int64
	Staleness       float64
	Unabsorbed      int64
}

// PerShardStats reports every shard's individual state, in shard
// order. Each shard is read independently (no cross-shard lock), so
// the breakdown is approximate under concurrent writes — exactly as
// approximate as each per-shard counter already is.
func (t *Table) PerShardStats() []ShardStats {
	out := make([]ShardStats, len(t.stores))
	for i, s := range t.stores {
		out[i] = ShardStats{
			Shard:           i,
			Tuples:          t.cats[i].TotalTuples(),
			Fractures:       s.NumFractures(),
			BufferedInserts: s.BufferedInserts(),
			SizeBytes:       s.SizeBytes(),
			Staleness:       t.cats[i].Staleness(),
			Unabsorbed:      t.cats[i].Unabsorbed(),
		}
	}
	return out
}

// ShardTuples returns the tuple count tracked by shard i's catalog
// (cheap: one atomic read — suitable for scrape-time gauges).
func (t *Table) ShardTuples(i int) int64 { return t.cats[i].TotalTuples() }

// ShardFractures returns shard i's current fracture count.
func (t *Table) ShardFractures(i int) int { return t.stores[i].NumFractures() }

// StatsSummary aggregates the per-shard catalog states: counts sum,
// Seeded requires every shard, staleness is the pooled unabsorbed
// ratio, and the threshold is shared (all shards inherit the same
// configuration).
type StatsSummary struct {
	Seeded     bool
	Staleness  float64
	Threshold  float64
	Rebuilds   int
	Tracked    int64
	Unabsorbed int64
}

// StatsSummary reports the aggregated statistics-catalog state.
func (t *Table) StatsSummary() StatsSummary {
	sum := StatsSummary{Seeded: true, Threshold: t.cats[0].Threshold()}
	for _, cat := range t.cats {
		if !cat.Seeded(t.Attr()) {
			sum.Seeded = false
		}
		sum.Rebuilds += cat.Rebuilds()
		sum.Tracked += cat.TotalTuples()
		sum.Unabsorbed += cat.Unabsorbed()
	}
	if sum.Unabsorbed > 0 {
		sum.Staleness = float64(sum.Unabsorbed) / float64(sum.Tracked+sum.Unabsorbed)
	}
	return sum
}

// PlanPTQ costs the candidate plans for "attr = value AND confidence
// >= qt" across every shard and returns the summed plans, cheapest
// first. Every shard offers the same plan kinds (the kind set depends
// only on whether attr is primary), so per-kind summation is exact:
// the scatter executes the same physical plan on every shard, and the
// table-level cost of a plan is the sum of its per-shard costs. Fails
// with the planner's ErrNoStats if any shard lacks a histogram for
// attr.
func (t *Table) PlanPTQ(attr, value string, qt float64) ([]planner.Plan, error) {
	plans, _, err := t.PlanPTQCached(attr, value, qt)
	return plans, err
}

// PlanPTQCached is PlanPTQ plus provenance: cached reports whether
// every shard served its plans from its generation-guarded plan cache.
// A single fresh costing anywhere makes the whole answer fresh — the
// summed costs then reflect at least one re-read of live statistics.
func (t *Table) PlanPTQCached(attr, value string, qt float64) ([]planner.Plan, bool, error) {
	first, cached, err := t.planners[0].PlanPTQCached(attr, value, qt)
	if err != nil {
		return nil, false, err
	}
	if len(t.planners) == 1 {
		return first, cached, nil
	}
	// Sum by kind across shards, keeping shard 0's detail as the
	// exemplar.
	byKind := make(map[planner.PlanKind]*planner.Plan, len(first))
	plans := make([]planner.Plan, len(first))
	copy(plans, first)
	for i := range plans {
		plans[i].Detail = fmt.Sprintf("sum over %d shards; shard0: %s", len(t.planners), plans[i].Detail)
		byKind[plans[i].Kind] = &plans[i]
	}
	for _, p := range t.planners[1:] {
		more, hit, err := p.PlanPTQCached(attr, value, qt)
		if err != nil {
			return nil, false, err
		}
		cached = cached && hit
		for _, pl := range more {
			agg, ok := byKind[pl.Kind]
			if !ok { // defensive: kind sets are identical by construction
				return nil, false, fmt.Errorf("shard: plan kind %v missing on shard 0", pl.Kind)
			}
			agg.EstimatedCost += pl.EstimatedCost
			agg.EstimatedRows += pl.EstimatedRows
		}
	}
	// Cheapest first (insertion sort; the slice has 2 entries).
	for i := 1; i < len(plans); i++ {
		for j := i; j > 0 && plans[j].EstimatedCost < plans[j-1].EstimatedCost; j-- {
			plans[j-1], plans[j] = plans[j], plans[j-1]
		}
	}
	return plans, cached, nil
}

// Generation sums the per-shard catalog generations. Each shard's
// number is monotonically nondecreasing, so any statistics transition
// anywhere strictly increases the sum — a cheap freshness token for
// table-level consumers (prepared handles, tests).
func (t *Table) Generation() uint64 {
	var g uint64
	for _, cat := range t.cats {
		g += cat.Generation()
	}
	return g
}

// HasHistogram reports whether every shard can cost plans for attr.
func (t *Table) HasHistogram(attr string) bool {
	for _, p := range t.planners {
		if !p.HasHistogram(attr) {
			return false
		}
	}
	return true
}

// Prepare compiles req and pins a consistent snapshot on every shard
// (the scatter half of scatter-gather). Each shard receives the same
// request; per-shard trace events are stamped with the shard index and
// a dispatch event is emitted per shard. On any failure the already
// pinned shards are released and the error returned. The gather half
// is the returned Prepared's Collect or Stream.
func (t *Table) Prepare(ctx context.Context, req fracture.Req) (*Prepared, error) {
	trace := req.Trace
	preps := make([]*fracture.Prepared, len(t.stores))
	for i, s := range t.stores {
		sub := req
		sub.Trace = stampShard(trace, i)
		if trace != nil {
			trace(fracture.TraceEvent{Kind: fracture.TraceDispatch, Shard: i, Detail: storeName(t.name, i, len(t.stores))})
		}
		p, err := s.Prepare(ctx, sub)
		if err != nil {
			for _, done := range preps[:i] {
				done.Release()
			}
			return nil, err
		}
		preps[i] = p
	}
	return &Prepared{table: t, preps: preps, k: req.K, trace: trace, met: t.met}, nil
}

// stampShard wraps a trace function so every event the shard's engine
// emits carries the shard index.
func stampShard(fn fracture.TraceFunc, i int) fracture.TraceFunc {
	if fn == nil {
		return nil
	}
	return func(ev fracture.TraceEvent) {
		ev.Shard = i
		fn(ev)
	}
}
