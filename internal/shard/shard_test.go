package shard

// Golden parity tests for the shard-per-core table: a sharded table at
// every shard count must return exactly the results — same set, same
// global confidence order — an unsharded store returns for the same
// logical workload, with the single-shard case additionally
// byte-identical in modeled cost. Plus: top-k early termination across
// shards, pin release, shard-count persistence, trace span stamping,
// and a race-enabled concurrent soak.

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"upidb/internal/fracture"
	"upidb/internal/prob"
	"upidb/internal/sim"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

const parityValues = 7

func parityVal(v int) string { return fmt.Sprintf("v%02d", v%parityValues) }

func parityTuple(id uint64, v int) *tuple.Tuple {
	p := 0.3 + float64((id*7+uint64(v)*13)%60)/100
	alts := []prob.Alternative{{Value: parityVal(v), Prob: p}}
	if other := (v + 1) % parityValues; other != v {
		alts = append(alts, prob.Alternative{Value: parityVal(other), Prob: (1 - p) * 0.9})
	}
	x, err := prob.NewDiscrete(alts)
	if err != nil {
		panic(err)
	}
	y, err := prob.NewDiscrete([]prob.Alternative{{Value: "y" + parityVal(v), Prob: 1}})
	if err != nil {
		panic(err)
	}
	return &tuple.Tuple{
		ID: id, Existence: 0.9,
		Unc: []tuple.UncField{{Name: "X", Dist: x}, {Name: "Y", Dist: y}},
	}
}

func parityCfg() fracture.Config {
	return fracture.Config{UPI: upi.Options{Cutoff: 0.15}}
}

// mutator is the logical-workload surface Store and Table share.
type mutator interface {
	Insert(*tuple.Tuple) error
	Delete(uint64) error
	Flush() error
}

// applyWorkload layers fractures, deletes and a live RAM buffer (with a
// pending delete) on top of the bulk-loaded base, identically for the
// sharded and unsharded builds.
func applyWorkload(t testing.TB, m mutator) {
	t.Helper()
	id := uint64(1000)
	for f := 0; f < 4; f++ {
		for i := 0; i < 25; i++ {
			if err := m.Insert(parityTuple(id, int(id))); err != nil {
				t.Fatal(err)
			}
			id++
		}
		if err := m.Delete(uint64(f*10 + 1)); err != nil {
			t.Fatal(err)
		}
		if err := m.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := m.Insert(parityTuple(id, int(id))); err != nil {
			t.Fatal(err)
		}
		id++
	}
	if err := m.Delete(55); err != nil {
		t.Fatal(err)
	}
}

func parityBase() []*tuple.Tuple {
	var base []*tuple.Tuple
	for i := 0; i < 120; i++ {
		base = append(base, parityTuple(uint64(i+1), i+1))
	}
	return base
}

// buildUnsharded is the golden reference: one fracture.Store.
func buildUnsharded(t testing.TB) (*fracture.Store, *sim.Disk) {
	t.Helper()
	disk := sim.NewDisk(sim.DefaultParams())
	fs := storage.NewFS(disk)
	s, err := fracture.BulkLoad(fs, "par", "X", []string{"Y"}, parityCfg(), parityBase())
	if err != nil {
		t.Fatal(err)
	}
	applyWorkload(t, s)
	return s, disk
}

func buildSharded(t testing.TB, n int) (*Table, *storage.FS) {
	t.Helper()
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	tab, err := BulkLoad(fs, "par", "X", []string{"Y"}, parityCfg(), n, sim.DefaultParams(), parityBase())
	if err != nil {
		t.Fatal(err)
	}
	applyWorkload(t, tab)
	return tab, fs
}

func parityReqs() []fracture.Req {
	return []fracture.Req{
		{Kind: fracture.KindPTQ, Value: parityVal(3), QT: 0.05},
		{Kind: fracture.KindPTQ, Value: parityVal(3), QT: 0.4},
		{Kind: fracture.KindSecondary, Attr: "Y", Value: "y" + parityVal(2), QT: 0.05, Tailored: true},
		{Kind: fracture.KindTopK, Value: parityVal(4), K: 9},
		{Kind: fracture.KindScan, Value: parityVal(5), QT: 0.1},
	}
}

func keys(rs []upi.Result) [][2]float64 {
	out := make([][2]float64, len(rs))
	for i, r := range rs {
		out[i] = [2]float64{float64(r.Tuple.ID), r.Confidence}
	}
	return out
}

func drain(t *testing.T, st *Stream) []upi.Result {
	t.Helper()
	var out []upi.Result
	for {
		r, ok, err := st.Next()
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// TestShardParity: at shard counts 1, 2 and 7, both consumption paths
// of the sharded table (materialized Collect, merged Stream) return
// exactly the unsharded store's results in the same global confidence
// order; Collect and a full Stream drain agree on summed modeled cost;
// and the single-shard table reports modeled costs byte-identical to
// the unsharded store's.
func TestShardParity(t *testing.T) {
	ref, _ := buildUnsharded(t)
	defer ref.Close()
	ctx := context.Background()
	for _, n := range []int{1, 2, 7} {
		tab, _ := buildSharded(t, n)
		if got := tab.NumShards(); got != n {
			t.Fatalf("n=%d: NumShards=%d", n, got)
		}
		for qi, req := range parityReqs() {
			want, wantStats, err := ref.Run(ctx, req)
			if err != nil {
				t.Fatalf("n=%d q=%d ref: %v", n, qi, err)
			}

			prep, err := tab.Prepare(ctx, req)
			if err != nil {
				t.Fatalf("n=%d q=%d prepare: %v", n, qi, err)
			}
			got, gotStats, err := prep.Collect(ctx)
			if err != nil {
				t.Fatalf("n=%d q=%d collect: %v", n, qi, err)
			}
			if !reflect.DeepEqual(keys(got), keys(want)) {
				t.Fatalf("n=%d q=%d: sharded Collect diverged\n got %v\nwant %v", n, qi, keys(got), keys(want))
			}

			prep, err = tab.Prepare(ctx, req)
			if err != nil {
				t.Fatalf("n=%d q=%d prepare stream: %v", n, qi, err)
			}
			stream := prep.Stream(ctx)
			streamed := drain(t, stream)
			if !reflect.DeepEqual(keys(streamed), keys(want)) {
				t.Fatalf("n=%d q=%d: sharded Stream diverged\n got %v\nwant %v", n, qi, keys(streamed), keys(want))
			}

			// Summed modeled cost: on full drains (everything but top-k,
			// where the stream's early termination legitimately reads
			// less) both consumption paths charge the same total.
			if req.Kind != fracture.KindTopK {
				if sc := stream.Stats(); sc.ModeledTime != gotStats.ModeledTime {
					t.Fatalf("n=%d q=%d: stream modeled cost %v != collect %v", n, qi, sc.ModeledTime, gotStats.ModeledTime)
				}
			}
			// One shard is the unsharded layout: identical stats to the
			// reference store, modeled cost included.
			if n == 1 && !reflect.DeepEqual(gotStats, wantStats) {
				t.Fatalf("q=%d: single-shard stats diverged\n got %+v\nwant %+v", qi, gotStats, wantStats)
			}
		}
		if err := tab.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardTopKTermination: the merged stream stops at exactly k
// yields, charges strictly less modeled I/O than the materialized
// scatter-gather (which scans every shard's every partition, cutoff
// chases included), and leaves no partition pinned — after a merge no
// old-generation fracture file survives. The store mirrors the
// unsharded early-termination test: mains rich in high-confidence
// matches, fractures full of below-cutoff alternatives the stream
// never has to chase.
func TestShardTopKTermination(t *testing.T) {
	hot := func(id uint64, conf float64) *tuple.Tuple {
		x, err := prob.NewDiscrete([]prob.Alternative{{Value: "hot", Prob: conf}})
		if err != nil {
			t.Fatal(err)
		}
		return &tuple.Tuple{ID: id, Existence: 1, Unc: []tuple.UncField{{Name: "X", Dist: x}}}
	}
	coldHot := func(id uint64) *tuple.Tuple {
		x, err := prob.NewDiscrete([]prob.Alternative{
			{Value: "cold", Prob: 0.8}, {Value: "hot", Prob: 0.1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return &tuple.Tuple{ID: id, Existence: 1, Unc: []tuple.UncField{{Name: "X", Dist: x}}}
	}
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	id := uint64(1)
	var base []*tuple.Tuple
	for i := 0; i < 90; i++ {
		base = append(base, hot(id, 0.5+float64(i)*0.005))
		id++
	}
	tab, err := BulkLoad(fs, "topk", "X", nil, parityCfg(), 3, sim.DefaultParams(), base)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	for f := 0; f < 6; f++ {
		for j := 0; j < 6; j++ {
			if err := tab.Insert(hot(id, 0.2+float64(f*6+j)*0.005)); err != nil {
				t.Fatal(err)
			}
			id++
		}
		for j := 0; j < 30; j++ {
			if err := tab.Insert(coldHot(id)); err != nil {
				t.Fatal(err)
			}
			id++
		}
		if err := tab.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	req := fracture.Req{Kind: fracture.KindTopK, Value: "hot", K: 20, Parallelism: 1}

	if err := tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	prep, err := tab.Prepare(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want, fullStats, err := prep.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != req.K || fullStats.ModeledTime <= 0 {
		t.Fatalf("materialized top-k: %d rows, cost %v", len(want), fullStats.ModeledTime)
	}

	if err := tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	prep, err = tab.Prepare(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	stream := prep.Stream(ctx)
	got := drain(t, stream)
	if !reflect.DeepEqual(keys(got), keys(want)) {
		t.Fatalf("streamed top-k diverged from materialized")
	}
	if _, ok, err := stream.Next(); ok || err != nil {
		t.Fatalf("stream resumed after top-k termination: ok=%v err=%v", ok, err)
	}
	if early := stream.Stats().ModeledTime; early >= fullStats.ModeledTime {
		t.Fatalf("top-k stream charged %v, not less than materialized %v", early, fullStats.ModeledTime)
	}

	// A released (unconsumed) Prepared and the terminated stream must
	// both have returned their pins: after merging every shard, no
	// fracture file of any generation may remain.
	prep, err = tab.Prepare(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	prep.Release()
	if err := tab.Merge(); err != nil {
		t.Fatal(err)
	}
	for _, name := range fs.List() {
		if strings.Contains(name, ".frac") {
			t.Fatalf("leaked pin kept %s alive after merge", name)
		}
	}
	if rs, err := tab.Prepare(ctx, req); err != nil {
		t.Fatal(err)
	} else if res, _, err := rs.Collect(ctx); err != nil || len(res) == 0 {
		t.Fatalf("table broken after top-k + merge: %v (%d rows)", err, len(res))
	}
}

// TestShardPersistence: the shard count survives Close/Open via the
// sideband shards file, opening with a contradicting count is a typed
// refusal, and legacy single-shard layouts (no shards file) reopen
// unchanged.
func TestShardPersistence(t *testing.T) {
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	cfg := parityCfg()
	cfg.Durable = true // Open needs each shard's manifest
	tab, err := New(fs, "persist", "X", []string{"Y"}, cfg, 3, sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		x, err := prob.NewDiscrete([]prob.Alternative{{Value: "same", Prob: 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		tup := &tuple.Tuple{ID: uint64(i), Existence: 1, Unc: []tuple.UncField{
			{Name: "X", Dist: x},
			{Name: "Y", Dist: x},
		}}
		if err := tab.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}

	// Open without naming a count: the persisted one wins.
	tab, err = Open(fs, "persist", "X", []string{"Y"}, cfg, -1, sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.NumShards(); got != 3 {
		t.Fatalf("reopened with %d shards, want 3", got)
	}
	rs, err := tab.Prepare(context.Background(), fracture.Req{Kind: fracture.KindPTQ, Value: "same", QT: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := rs.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 30 {
		t.Fatalf("reopened table has %d tuples, want 30", len(res))
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}

	// Open with a contradicting explicit count: refused, not resharded.
	if _, err := Open(fs, "persist", "X", []string{"Y"}, cfg, 5, sim.DefaultParams()); err == nil {
		t.Fatal("open with wrong shard count succeeded")
	} else if !strings.Contains(err.Error(), "resharding") {
		t.Fatalf("want resharding refusal, got: %v", err)
	}

	// Legacy layout: a single-shard table writes no shards file and
	// reopens as one shard; demanding more is refused.
	single, err := New(fs, "legacy", "X", nil, cfg, 1, sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if fs.Exists(shardsFile("legacy")) {
		t.Fatal("single-shard table wrote a shards file")
	}
	if err := single.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(fs, "legacy", "X", nil, cfg, -1, sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.NumShards(); got != 1 {
		t.Fatalf("legacy table reopened with %d shards", got)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(fs, "legacy", "X", nil, cfg, 4, sim.DefaultParams()); err == nil {
		t.Fatal("open of legacy layout with 4 shards succeeded")
	}
}

// TestShardTrace: span events carry the owning shard index — one
// dispatch per shard, balanced scan start/end pairs from inside each
// shard's engine, and one merge yield per delivered result.
func TestShardTrace(t *testing.T) {
	tab, _ := buildSharded(t, 3)
	defer tab.Close()

	var mu sync.Mutex
	var events []fracture.TraceEvent
	req := fracture.Req{
		Kind: fracture.KindPTQ, Value: parityVal(3), QT: 0.05,
		Trace: func(ev fracture.TraceEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	prep, err := tab.Prepare(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, prep.Stream(context.Background()))

	dispatch := map[int]int{}
	starts, ends, yields := 0, 0, 0
	for _, ev := range events {
		if ev.Shard < 0 || ev.Shard >= 3 {
			t.Fatalf("event %+v has shard outside [0,3)", ev)
		}
		switch ev.Kind {
		case fracture.TraceDispatch:
			dispatch[ev.Shard]++
		case fracture.TraceScanStart:
			starts++
		case fracture.TraceScanEnd:
			ends++
		case fracture.TraceYield:
			yields++
		}
	}
	for i := 0; i < 3; i++ {
		if dispatch[i] != 1 {
			t.Fatalf("shard %d dispatched %d times, want 1", i, dispatch[i])
		}
	}
	if starts == 0 || starts != ends {
		t.Fatalf("unbalanced scan spans: %d starts, %d ends", starts, ends)
	}
	if yields != len(got) {
		t.Fatalf("%d yield events for %d results", yields, len(got))
	}
}

// TestShardOfSpread: sequential IDs must spread across shards — the
// mixer, not the raw ID, decides ownership.
func TestShardOfSpread(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	for id := uint64(1); id <= 1000; id++ {
		s := shardOf(id, n)
		if s < 0 || s >= n {
			t.Fatalf("shardOf(%d, %d) = %d out of range", id, n, s)
		}
		counts[s]++
	}
	for i, c := range counts {
		if c < 50 {
			t.Fatalf("shard %d owns only %d of 1000 sequential IDs: %v", i, c, counts)
		}
	}
	if shardOf(42, 1) != 0 {
		t.Fatal("single shard must own everything")
	}
}

// TestShardSoak: concurrent writers, readers on both consumption
// paths, and flush/merge churn across every shard — the -race target.
func TestShardSoak(t *testing.T) {
	tab, _ := buildSharded(t, 4)
	defer tab.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := uint64(10_000 + w*1_000)
			for i := 0; i < 150; i++ {
				if err := tab.Insert(parityTuple(id, int(id))); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 9 {
					if err := tab.Delete(id - 5); err != nil {
						t.Error(err)
						return
					}
				}
				id++
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				req := fracture.Req{Kind: fracture.KindPTQ, Value: parityVal(i), QT: 0.05}
				if i%3 == 0 {
					req = fracture.Req{Kind: fracture.KindTopK, Value: parityVal(i), K: 7}
				}
				prep, err := tab.Prepare(ctx, req)
				if err != nil {
					t.Error(err)
					return
				}
				if (i+r)%2 == 0 {
					if _, _, err := prep.Collect(ctx); err != nil {
						t.Error(err)
						return
					}
				} else {
					st := prep.Stream(ctx)
					for {
						_, ok, err := st.Next()
						if err != nil {
							t.Error(err)
							return
						}
						if !ok {
							break
						}
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := tab.Flush(); err != nil {
				t.Error(err)
				return
			}
			if i%2 == 1 {
				if err := tab.Merge(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()

	// Converged state: both consumption paths agree exactly.
	req := fracture.Req{Kind: fracture.KindPTQ, Value: parityVal(3), QT: 0.05}
	prep, err := tab.Prepare(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := prep.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	prep, err = tab.Prepare(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, prep.Stream(ctx))
	if !reflect.DeepEqual(keys(got), keys(want)) {
		t.Fatalf("post-soak paths diverged:\n got %v\nwant %v", keys(got), keys(want))
	}
}
