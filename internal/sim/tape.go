package sim

import (
	"sync"
	"time"
)

// opKind distinguishes the operations a Tape can record.
type opKind uint8

const (
	opOpen opKind = iota
	opRead
	opWrite
)

type tapeOp struct {
	kind opKind
	file string
	off  int64
	n    int64
}

// Tape records disk operations without charging them, preserving their
// order. A parallel query records each partition's I/O on its own tape
// while the partitions are scanned concurrently, then replays the tapes
// in partition order: the charged sequence — and therefore every seek/
// sequential classification and the modeled total — is identical to a
// serial scan, no matter how the goroutines actually interleaved.
//
// Tape is safe for concurrent use, though a tape normally has a single
// writer (the worker that owns the partition).
type Tape struct {
	mu  sync.Mutex
	ops []tapeOp
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Open records a file-open (Costinit) charge.
func (t *Tape) Open(file string) {
	t.mu.Lock()
	t.ops = append(t.ops, tapeOp{kind: opOpen, file: file})
	t.mu.Unlock()
}

// Read records a read of n bytes at offset off.
func (t *Tape) Read(file string, off, n int64) {
	t.mu.Lock()
	t.ops = append(t.ops, tapeOp{kind: opRead, file: file, off: off, n: n})
	t.mu.Unlock()
}

// Write records a write of n bytes at offset off.
func (t *Tape) Write(file string, off, n int64) {
	t.mu.Lock()
	t.ops = append(t.ops, tapeOp{kind: opWrite, file: file, off: off, n: n})
	t.mu.Unlock()
}

// Len returns the number of recorded operations.
func (t *Tape) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ops)
}

// Replay charges every operation recorded on the tape, in order, as one
// atomic batch: no other disk activity can interleave with the tape, so
// head movement within the batch is exactly what the recorded sequence
// dictates. The tape is left empty. It returns the modeled time charged
// for this batch, letting callers attribute cost to exactly one query
// even when other disk activity runs concurrently.
func (d *Disk) Replay(t *Tape) time.Duration {
	t.mu.Lock()
	ops := t.ops
	t.ops = nil
	t.mu.Unlock()
	if len(ops) == 0 {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var cost time.Duration
	for _, op := range ops {
		switch op.kind {
		case opOpen:
			d.stats.FileOpens++
			d.stats.Elapsed += d.params.Init
			cost += d.params.Init
		case opRead:
			cost += d.accessLocked(op.file, op.off, op.n, false)
		case opWrite:
			cost += d.accessLocked(op.file, op.off, op.n, true)
		}
	}
	return cost
}
