package sim

import (
	"sync"
	"testing"
	"time"
)

func TestSequentialVsSeek(t *testing.T) {
	d := NewDisk(DefaultParams())
	d.Read("f", 0, 100)
	st := d.Stats()
	if st.Seeks != 1 {
		t.Fatalf("first access should seek, got %d seeks", st.Seeks)
	}
	d.Read("f", 100, 100) // contiguous
	st = d.Stats()
	if st.Seeks != 1 || st.SequentialIO != 1 {
		t.Fatalf("contiguous read should be sequential: %+v", st)
	}
	d.Read("f", 0, 100) // jump back
	if got := d.Stats().Seeks; got != 2 {
		t.Fatalf("jump back should seek, got %d", got)
	}
	d.Read("g", 100, 100) // other file
	if got := d.Stats().Seeks; got != 3 {
		t.Fatalf("file switch should seek, got %d", got)
	}
}

func TestReadWriteCosts(t *testing.T) {
	p := DefaultParams()
	d := NewDisk(p)
	cost := d.Read("f", 0, 1<<20)
	want := p.Seek + p.ReadPerMB
	if cost != want {
		t.Fatalf("1MB read cost = %v, want %v", cost, want)
	}
	cost = d.Write("f", 1<<20, 1<<20) // sequential write after read
	if cost != p.WritePerMB {
		t.Fatalf("sequential 1MB write cost = %v, want %v", cost, p.WritePerMB)
	}
}

func TestOpenCost(t *testing.T) {
	p := DefaultParams()
	d := NewDisk(p)
	d.Open("f")
	if got := d.Elapsed(); got != p.Init {
		t.Fatalf("open cost = %v, want %v", got, p.Init)
	}
	if got := d.Stats().FileOpens; got != 1 {
		t.Fatalf("opens = %d, want 1", got)
	}
}

func TestStatsSub(t *testing.T) {
	d := NewDisk(DefaultParams())
	d.Read("f", 0, 10)
	before := d.Stats()
	d.Read("f", 10, 10)
	d.Read("f", 100, 10)
	delta := d.Stats().Sub(before)
	if delta.Seeks != 1 || delta.SequentialIO != 1 || delta.BytesRead != 20 {
		t.Fatalf("unexpected delta: %+v", delta)
	}
}

func TestSpan(t *testing.T) {
	d := NewDisk(DefaultParams())
	d.Read("f", 0, 10)
	sp := StartSpan(d)
	d.Read("f", 10, 10)
	got := sp.End()
	if got.BytesRead != 10 || got.Seeks != 0 {
		t.Fatalf("span = %+v", got)
	}
}

func TestResetStatsKeepsHead(t *testing.T) {
	d := NewDisk(DefaultParams())
	d.Read("f", 0, 100)
	d.ResetStats()
	d.Read("f", 100, 100) // still contiguous with pre-reset head
	st := d.Stats()
	if st.Seeks != 0 || st.SequentialIO != 1 {
		t.Fatalf("head position lost across ResetStats: %+v", st)
	}
}

func TestZeroByteAccess(t *testing.T) {
	d := NewDisk(DefaultParams())
	d.Read("f", 0, 0)
	if st := d.Stats(); st.Seeks != 1 || st.BytesRead != 0 {
		t.Fatalf("zero byte read: %+v", st)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative size")
		}
	}()
	NewDisk(DefaultParams()).Read("f", 0, -1)
}

func TestConcurrentAccess(t *testing.T) {
	d := NewDisk(DefaultParams())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				d.Read("f", int64(j*10), 10)
			}
		}(i)
	}
	wg.Wait()
	st := d.Stats()
	if st.BytesRead != 8*100*10 {
		t.Fatalf("lost reads under concurrency: %+v", st)
	}
	if st.Seeks+st.SequentialIO != 800 {
		t.Fatalf("op count mismatch: %+v", st)
	}
}

func TestElapsedMonotonic(t *testing.T) {
	d := NewDisk(DefaultParams())
	var last time.Duration
	for i := 0; i < 50; i++ {
		d.Read("f", int64(i*7), 7)
		e := d.Elapsed()
		if e < last {
			t.Fatalf("elapsed went backwards: %v < %v", e, last)
		}
		last = e
	}
}
