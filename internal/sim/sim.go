// Package sim provides a deterministic simulated disk used by every
// storage component in this repository.
//
// The UPI paper's evaluation ran on a 10k RPM hard drive with a cold
// buffer cache; all of its reported effects (primary vs. secondary
// index, cutoff-pointer saturation, fragmentation) are seek-versus-
// sequential-I/O effects. Modern test machines have no such disk, so
// instead of wall-clock time this package charges every file access
// with the paper's own cost constants (Table 6):
//
//	Tseek  = 10 ms    per random seek
//	Tread  = 20 ms/MB sequential read
//	Twrite = 50 ms/MB sequential write
//	Costinit = 100 ms per database file open
//
// A read or write is sequential when it starts exactly where the
// previous operation on the same file ended; anything else moves the
// disk head and pays Tseek. The accumulated modeled time is what the
// benchmark harness reports as "query runtime".
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Params holds the disk cost constants (paper Table 6).
type Params struct {
	// Seek is the cost of one random disk seek (Tseek).
	Seek time.Duration
	// ReadPerMB is the cost of sequentially reading one mebibyte (Tread).
	ReadPerMB time.Duration
	// WritePerMB is the cost of sequentially writing one mebibyte (Twrite).
	WritePerMB time.Duration
	// Init is the cost of opening a database file (Costinit).
	Init time.Duration
}

// DefaultParams returns the constants used throughout the paper's
// experimental section (Table 6).
func DefaultParams() Params {
	return Params{
		Seek:       10 * time.Millisecond,
		ReadPerMB:  20 * time.Millisecond,
		WritePerMB: 50 * time.Millisecond,
		Init:       100 * time.Millisecond,
	}
}

// Stats is a snapshot of accumulated disk activity.
type Stats struct {
	Seeks        int64
	SequentialIO int64 // operations that continued from the head position
	BytesRead    int64
	BytesWritten int64
	FileOpens    int64
	Elapsed      time.Duration // modeled elapsed disk time
}

// Sub returns the difference s - o, field by field. It is used to
// measure the cost of a single query between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Seeks:        s.Seeks - o.Seeks,
		SequentialIO: s.SequentialIO - o.SequentialIO,
		BytesRead:    s.BytesRead - o.BytesRead,
		BytesWritten: s.BytesWritten - o.BytesWritten,
		FileOpens:    s.FileOpens - o.FileOpens,
		Elapsed:      s.Elapsed - o.Elapsed,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("seeks=%d seq=%d read=%dB written=%dB opens=%d elapsed=%v",
		s.Seeks, s.SequentialIO, s.BytesRead, s.BytesWritten, s.FileOpens, s.Elapsed)
}

const bytesPerMB = 1 << 20

// Disk models a single spinning disk shared by all files of one
// database. It tracks the head position (file, offset) and charges
// modeled time for every operation. Disk is safe for concurrent use.
type Disk struct {
	params Params

	mu       sync.Mutex
	headFile string
	headOff  int64
	headSet  bool
	stats    Stats
}

// NewDisk returns a disk with the given cost parameters.
func NewDisk(p Params) *Disk {
	return &Disk{params: p}
}

// Params returns the disk's cost constants.
func (d *Disk) Params() Params { return d.params }

// Open charges the file-open cost (Costinit). The storage layer calls
// it once per database file handle.
func (d *Disk) Open(file string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.FileOpens++
	d.stats.Elapsed += d.params.Init
}

// Read charges a read of n bytes at offset off in file. It returns the
// modeled cost of this single operation.
func (d *Disk) Read(file string, off, n int64) time.Duration {
	return d.access(file, off, n, false)
}

// Write charges a write of n bytes at offset off in file. It returns
// the modeled cost of this single operation.
func (d *Disk) Write(file string, off, n int64) time.Duration {
	return d.access(file, off, n, true)
}

func (d *Disk) access(file string, off, n int64, write bool) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.accessLocked(file, off, n, write)
}

func (d *Disk) accessLocked(file string, off, n int64, write bool) time.Duration {
	if n < 0 {
		panic("sim: negative I/O size")
	}
	var cost time.Duration
	if !d.headSet || d.headFile != file || d.headOff != off {
		cost += d.params.Seek
		d.stats.Seeks++
	} else {
		d.stats.SequentialIO++
	}
	perMB := d.params.ReadPerMB
	if write {
		perMB = d.params.WritePerMB
		d.stats.BytesWritten += n
	} else {
		d.stats.BytesRead += n
	}
	cost += time.Duration(float64(perMB) * float64(n) / bytesPerMB)

	d.headFile = file
	d.headOff = off + n
	d.headSet = true
	d.stats.Elapsed += cost
	return cost
}

// Stats returns a snapshot of the accumulated counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Elapsed returns the total modeled disk time accumulated so far.
func (d *Disk) Elapsed() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats.Elapsed
}

// ResetStats zeroes the counters but keeps the head position, so a
// measurement window can be isolated without pretending the head
// teleported.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// Span measures modeled disk activity between its creation and End.
type Span struct {
	d     *Disk
	start Stats
}

// StartSpan begins a measurement window on the disk.
func StartSpan(d *Disk) *Span {
	return &Span{d: d, start: d.Stats()}
}

// End returns the activity accumulated since the span started.
func (s *Span) End() Stats {
	return s.d.Stats().Sub(s.start)
}
