package prob

import (
	"fmt"
	"math"
)

// Point is a 2-D location. The Cartel-style datasets use a local
// tangent-plane coordinate system in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Rect is an axis-aligned rectangle (MBR).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether the rectangle contains p.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether r fully contains o.
func (r Rect) ContainsRect(o Rect) bool {
	return o.MinX >= r.MinX && o.MaxX <= r.MaxX && o.MinY >= r.MinY && o.MaxY <= r.MaxY
}

// Intersects reports whether two rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Union returns the smallest rectangle covering both.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, o.MinX), MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX), MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// Area returns the rectangle's area (0 for degenerate rectangles).
func (r Rect) Area() float64 {
	w, h := r.MaxX-r.MinX, r.MaxY-r.MinY
	if w < 0 || h < 0 {
		return 0
	}
	return w * h
}

// Margin returns the half-perimeter, used by R*-style split heuristics.
func (r Rect) Margin() float64 { return (r.MaxX - r.MinX) + (r.MaxY - r.MinY) }

// Intersection returns the overlapping rectangle (possibly degenerate).
func (r Rect) Intersection(o Rect) Rect {
	return Rect{
		MinX: math.Max(r.MinX, o.MinX), MinY: math.Max(r.MinY, o.MinY),
		MaxX: math.Min(r.MaxX, o.MaxX), MaxY: math.Min(r.MaxY, o.MaxY),
	}
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point { return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2} }

// ConstrainedGaussian is the paper's continuous uncertainty model for
// GPS positions (Section 7.1: "a constrained Gaussian distribution...
// with a boundary to limit the distribution as done in [16]"): an
// isotropic 2-D Gaussian centered at Center with standard deviation
// Sigma, truncated to the disk of radius Bound and renormalized.
type ConstrainedGaussian struct {
	Center Point
	Sigma  float64
	Bound  float64 // truncation radius; must be > 0
}

// Validate checks the distribution parameters.
func (g ConstrainedGaussian) Validate() error {
	if g.Sigma <= 0 {
		return fmt.Errorf("prob: sigma %v must be positive", g.Sigma)
	}
	if g.Bound <= 0 {
		return fmt.Errorf("prob: bound %v must be positive", g.Bound)
	}
	return nil
}

// MBR returns the minimum bounding rectangle of the uncertainty
// region (the truncation disk).
func (g ConstrainedGaussian) MBR() Rect {
	return Rect{
		MinX: g.Center.X - g.Bound, MinY: g.Center.Y - g.Bound,
		MaxX: g.Center.X + g.Bound, MaxY: g.Center.Y + g.Bound,
	}
}

// truncNorm is the normalizing mass of the untruncated Gaussian inside
// the bound: P(r <= Bound) = 1 - exp(-Bound² / 2σ²).
func (g ConstrainedGaussian) truncNorm() float64 {
	return 1 - math.Exp(-(g.Bound*g.Bound)/(2*g.Sigma*g.Sigma))
}

// CDFRadius returns P(distance from center <= d) under the constrained
// Gaussian. For the isotropic 2-D Gaussian the radial CDF is
// 1 - exp(-d²/2σ²), renormalized by the truncation mass.
func (g ConstrainedGaussian) CDFRadius(d float64) float64 {
	if d <= 0 {
		return 0
	}
	if d >= g.Bound {
		return 1
	}
	return (1 - math.Exp(-(d*d)/(2*g.Sigma*g.Sigma))) / g.truncNorm()
}

// QuantileRadius returns the radius containing probability mass p
// (inverse of CDFRadius). It is what the U-Tree precomputes for its
// probabilistically constrained regions.
func (g ConstrainedGaussian) QuantileRadius(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return g.Bound
	}
	// Invert p = (1 - exp(-r²/2σ²)) / norm.
	inner := 1 - p*g.truncNorm()
	return math.Sqrt(-2 * g.Sigma * g.Sigma * math.Log(inner))
}

// probGridN is the resolution of the deterministic grid integrator.
// 48×48 cells keeps the absolute error well under 1e-3 for the
// sigma/bound ratios the datasets use, which is enough for threshold
// decisions at the 0.05 granularity the experiments sweep.
const probGridN = 48

// ProbInCircle returns the probability that the (truncated) position
// falls within the disk of the given radius around q, by deterministic
// grid integration over the intersection of the two disks.
func (g ConstrainedGaussian) ProbInCircle(q Point, radius float64) float64 {
	// Fast paths: disjoint or fully containing query regions.
	centerDist := g.Center.Dist(q)
	if centerDist >= radius+g.Bound {
		return 0
	}
	if centerDist+g.Bound <= radius {
		return 1
	}
	// Integrate the truncated Gaussian density over the intersection
	// of the two disks' bounding boxes, so grid resolution adapts to
	// the (possibly small) query region.
	qBox := Rect{MinX: q.X - radius, MinY: q.Y - radius, MaxX: q.X + radius, MaxY: q.Y + radius}
	box := g.MBR().Intersection(qBox)
	return g.integrate(box, func(p Point) bool { return p.Dist(q) <= radius })
}

// integrate sums the truncated Gaussian density over grid cells of box
// that satisfy inside.
func (g ConstrainedGaussian) integrate(box Rect, inside func(Point) bool) float64 {
	if box.Area() == 0 {
		return 0
	}
	norm := g.truncNorm()
	twoSigma2 := 2 * g.Sigma * g.Sigma
	stepX := (box.MaxX - box.MinX) / probGridN
	stepY := (box.MaxY - box.MinY) / probGridN
	cellArea := stepX * stepY
	sum := 0.0
	for i := 0; i < probGridN; i++ {
		x := box.MinX + (float64(i)+0.5)*stepX
		for j := 0; j < probGridN; j++ {
			y := box.MinY + (float64(j)+0.5)*stepY
			p := Point{X: x, Y: y}
			dc := p.Dist(g.Center)
			if dc > g.Bound || !inside(p) {
				continue
			}
			density := math.Exp(-(dc*dc)/twoSigma2) / (2 * math.Pi * g.Sigma * g.Sigma * norm)
			sum += density * cellArea
		}
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// ProbInRect returns the probability that the position falls inside
// rectangle r, by the same grid integration.
func (g ConstrainedGaussian) ProbInRect(r Rect) float64 {
	if !r.Intersects(g.MBR()) {
		return 0
	}
	if r.ContainsRect(g.MBR()) {
		return 1
	}
	box := g.MBR().Intersection(r)
	return g.integrate(box, r.Contains)
}
