// Package prob implements the uncertainty model of the paper: tuples
// with an existence probability and uncertain attributes carrying
// either a discrete distribution over alternative values or a
// constrained (truncated) Gaussian over 2-D locations.
//
// Semantics follow possible-world semantics (paper Section 1): an
// uncertain database is a distribution over deterministic instances;
// the confidence of an answer tuple for an equality predicate on an
// uncertain attribute is existence × P(attribute = value).
package prob

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ProbEpsilon is the tolerance used when validating that probabilities
// sum to at most 1.
const ProbEpsilon = 1e-9

// Alternative is one possible value of a discrete uncertain attribute
// together with its conditional probability (given the tuple exists).
type Alternative struct {
	Value string
	Prob  float64
}

// Discrete is a discrete distribution over alternative values, kept
// sorted by decreasing probability (the paper's "Alternatives = sort
// by probability" in Algorithm 1). Probabilities may sum to less than
// 1 (the remainder is "some other, unmodeled value"), never more.
type Discrete []Alternative

// errors returned by Validate.
var (
	ErrProbRange = errors.New("prob: probability outside (0, 1]")
	ErrProbSum   = errors.New("prob: probabilities sum to more than 1")
	ErrDupValue  = errors.New("prob: duplicate alternative value")
	ErrUnsorted  = errors.New("prob: alternatives not sorted by decreasing probability")
)

// NewDiscrete builds a distribution from alternatives, merging
// duplicate values (summing their probabilities, mirroring the
// paper's dataset construction: "sum the probabilities if an
// institution appears at more than one ranks"), sorting by decreasing
// probability and validating.
func NewDiscrete(alts []Alternative) (Discrete, error) {
	merged := make(map[string]float64, len(alts))
	for _, a := range alts {
		merged[a.Value] += a.Prob
	}
	d := make(Discrete, 0, len(merged))
	for v, p := range merged {
		d = append(d, Alternative{Value: v, Prob: p})
	}
	d.sort()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// sort orders by decreasing probability, breaking ties by value so the
// ordering (and therefore "the first alternative" that Algorithm 1
// keeps in the heap file) is deterministic.
func (d Discrete) sort() {
	sort.Slice(d, func(i, j int) bool {
		if d[i].Prob != d[j].Prob {
			return d[i].Prob > d[j].Prob
		}
		return d[i].Value < d[j].Value
	})
}

// Validate checks range, ordering, uniqueness and total mass.
func (d Discrete) Validate() error {
	sum := 0.0
	seen := make(map[string]bool, len(d))
	for i, a := range d {
		if a.Prob <= 0 || a.Prob > 1 {
			return fmt.Errorf("%w: %q has %v", ErrProbRange, a.Value, a.Prob)
		}
		if seen[a.Value] {
			return fmt.Errorf("%w: %q", ErrDupValue, a.Value)
		}
		seen[a.Value] = true
		if i > 0 && d[i-1].Prob < a.Prob {
			return fmt.Errorf("%w: index %d", ErrUnsorted, i)
		}
		sum += a.Prob
	}
	if sum > 1+ProbEpsilon {
		return fmt.Errorf("%w: %v", ErrProbSum, sum)
	}
	return nil
}

// First returns the highest-probability alternative. It panics on an
// empty distribution; uncertain attributes always have at least one
// alternative.
func (d Discrete) First() Alternative {
	if len(d) == 0 {
		panic("prob: First on empty distribution")
	}
	return d[0]
}

// P returns the probability of the given value (0 if absent).
func (d Discrete) P(value string) float64 {
	for _, a := range d {
		if a.Value == value {
			return a.Prob
		}
	}
	return 0
}

// Mass returns the total probability mass of the alternatives.
func (d Discrete) Mass() float64 {
	sum := 0.0
	for _, a := range d {
		sum += a.Prob
	}
	return sum
}

// Normalize scales probabilities to sum to exactly 1, returning a new
// distribution. Used by dataset generation where alternatives are
// derived from scores rather than true probabilities.
func (d Discrete) Normalize() Discrete {
	mass := d.Mass()
	if mass == 0 {
		return nil
	}
	out := make(Discrete, len(d))
	for i, a := range d {
		out[i] = Alternative{Value: a.Value, Prob: a.Prob / mass}
	}
	return out
}

// TruncateLowest drops alternatives beyond maxAlts, keeping the
// highest-probability ones (the paper keeps "up to ten per author").
func (d Discrete) TruncateLowest(maxAlts int) Discrete {
	if len(d) <= maxAlts {
		return d
	}
	return d[:maxAlts]
}

// Confidence is the possible-world confidence of an equality answer:
// existence × P(value).
func Confidence(existence float64, d Discrete, value string) float64 {
	return existence * d.P(value)
}

// Entropy returns the Shannon entropy (nats) of the distribution,
// counting any residual mass as one extra outcome. Used by adaptive
// tuning heuristics to characterize attribute uncertainty.
func (d Discrete) Entropy() float64 {
	h := 0.0
	sum := 0.0
	for _, a := range d {
		h -= a.Prob * math.Log(a.Prob)
		sum += a.Prob
	}
	if rest := 1 - sum; rest > ProbEpsilon {
		h -= rest * math.Log(rest)
	}
	return h
}
