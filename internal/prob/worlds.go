package prob

// Possible-world enumeration. This is the executable specification of
// the paper's query semantics: it is exponential in the number of
// tuples and exists so tests can check that index-based query answers
// match the semantics exactly on small instances.

// WorldTuple is one uncertain tuple as seen by the enumerator: an
// existence probability and a discrete distribution for the queried
// attribute.
type WorldTuple struct {
	ID        uint64
	Existence float64
	Attr      Discrete
}

// EqualityConfidences computes, for every tuple, the exact confidence
// that the tuple exists and its attribute equals value, by enumerating
// possible worlds. Tuples are independent, so the closed form is
// existence × P(value); the enumeration is done the hard way on
// purpose, as an independent oracle for tests.
func EqualityConfidences(tuples []WorldTuple, value string) map[uint64]float64 {
	conf := make(map[uint64]float64, len(tuples))
	for _, t := range tuples {
		conf[t.ID] = 0
	}
	var walk func(i int, p float64, matches []uint64)
	walk = func(i int, p float64, matches []uint64) {
		if p == 0 {
			return
		}
		if i == len(tuples) {
			for _, id := range matches {
				conf[id] += p
			}
			return
		}
		t := tuples[i]
		// World branch: tuple absent.
		walk(i+1, p*(1-t.Existence), matches)
		// World branches: tuple present with each alternative.
		rest := 1.0
		for _, a := range t.Attr {
			rest -= a.Prob
			if a.Value == value {
				walk(i+1, p*t.Existence*a.Prob, append(matches, t.ID))
			} else {
				walk(i+1, p*t.Existence*a.Prob, matches)
			}
		}
		// Residual mass: attribute takes some unmodeled value.
		if rest > ProbEpsilon {
			walk(i+1, p*t.Existence*rest, matches)
		}
	}
	walk(0, 1, nil)
	return conf
}

// PTQAnswer returns the IDs whose equality confidence meets the
// threshold qt, per possible-world enumeration.
func PTQAnswer(tuples []WorldTuple, value string, qt float64) []uint64 {
	conf := EqualityConfidences(tuples, value)
	var out []uint64
	for _, t := range tuples {
		if conf[t.ID] >= qt {
			out = append(out, t.ID)
		}
	}
	return out
}
