package prob

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDiscreteSortsAndMerges(t *testing.T) {
	d, err := NewDiscrete([]Alternative{
		{Value: "MIT", Prob: 0.2},
		{Value: "Brown", Prob: 0.5},
		{Value: "Brown", Prob: 0.3}, // merged: Brown = 0.8
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || d[0].Value != "Brown" || !almostEq(d[0].Prob, 0.8, 1e-12) {
		t.Fatalf("got %+v", d)
	}
	if d.First().Value != "Brown" {
		t.Fatalf("First = %+v", d.First())
	}
}

func TestNewDiscreteValidation(t *testing.T) {
	if _, err := NewDiscrete([]Alternative{{Value: "A", Prob: 0.7}, {Value: "B", Prob: 0.7}}); err == nil {
		t.Fatal("over-mass distribution accepted")
	}
	if _, err := NewDiscrete([]Alternative{{Value: "A", Prob: -0.1}}); err == nil {
		t.Fatal("negative probability accepted")
	}
	if _, err := NewDiscrete([]Alternative{{Value: "A", Prob: 1.5}}); err == nil {
		t.Fatal("probability > 1 accepted")
	}
}

func TestDiscreteDeterministicTieBreak(t *testing.T) {
	d1, _ := NewDiscrete([]Alternative{{Value: "B", Prob: 0.5}, {Value: "A", Prob: 0.5}})
	d2, _ := NewDiscrete([]Alternative{{Value: "A", Prob: 0.5}, {Value: "B", Prob: 0.5}})
	if d1[0].Value != d2[0].Value || d1[0].Value != "A" {
		t.Fatalf("tie break not deterministic: %+v vs %+v", d1, d2)
	}
}

func TestPAndMass(t *testing.T) {
	d, _ := NewDiscrete([]Alternative{{Value: "MIT", Prob: 0.95}, {Value: "UCB", Prob: 0.05}})
	if d.P("MIT") != 0.95 || d.P("UCB") != 0.05 || d.P("Brown") != 0 {
		t.Fatalf("P wrong: %+v", d)
	}
	if !almostEq(d.Mass(), 1.0, 1e-12) {
		t.Fatalf("mass = %v", d.Mass())
	}
}

func TestNormalizeAndTruncate(t *testing.T) {
	d := Discrete{{Value: "A", Prob: 0.6}, {Value: "B", Prob: 0.3}, {Value: "C", Prob: 0.1}}
	trunc := d.TruncateLowest(2)
	if len(trunc) != 2 || trunc[0].Value != "A" || trunc[1].Value != "B" {
		t.Fatalf("truncate: %+v", trunc)
	}
	n := trunc.Normalize()
	if !almostEq(n.Mass(), 1.0, 1e-12) || !almostEq(n[0].Prob, 2.0/3.0, 1e-12) {
		t.Fatalf("normalize: %+v", n)
	}
	if got := d.TruncateLowest(10); len(got) != 3 {
		t.Fatal("truncate with large limit changed distribution")
	}
	if Discrete(nil).Normalize() != nil {
		t.Fatal("normalize of empty should be nil")
	}
}

func TestConfidenceRunningExample(t *testing.T) {
	// Paper Section 1: Alice works for MIT with confidence 90%×20% = 18%.
	alice, _ := NewDiscrete([]Alternative{{Value: "Brown", Prob: 0.8}, {Value: "MIT", Prob: 0.2}})
	if c := Confidence(0.9, alice, "MIT"); !almostEq(c, 0.18, 1e-12) {
		t.Fatalf("Alice MIT confidence = %v, want 0.18", c)
	}
	bob, _ := NewDiscrete([]Alternative{{Value: "MIT", Prob: 0.95}, {Value: "UCB", Prob: 0.05}})
	if c := Confidence(1.0, bob, "MIT"); !almostEq(c, 0.95, 1e-12) {
		t.Fatalf("Bob MIT confidence = %v, want 0.95", c)
	}
}

func TestEntropy(t *testing.T) {
	uniform := Discrete{{Value: "A", Prob: 0.5}, {Value: "B", Prob: 0.5}}
	point := Discrete{{Value: "A", Prob: 1.0}}
	if uniform.Entropy() <= point.Entropy() {
		t.Fatal("uniform should have higher entropy than point mass")
	}
	if !almostEq(point.Entropy(), 0, 1e-12) {
		t.Fatalf("point entropy = %v", point.Entropy())
	}
}

// TestWorldEnumerationMatchesClosedForm: the exponential enumerator
// must agree with existence × P(value) since tuples are independent.
func TestWorldEnumerationMatchesClosedForm(t *testing.T) {
	alice, _ := NewDiscrete([]Alternative{{Value: "Brown", Prob: 0.8}, {Value: "MIT", Prob: 0.2}})
	bob, _ := NewDiscrete([]Alternative{{Value: "MIT", Prob: 0.95}, {Value: "UCB", Prob: 0.05}})
	carol, _ := NewDiscrete([]Alternative{{Value: "Brown", Prob: 0.6}, {Value: "U. Tokyo", Prob: 0.4}})
	tuples := []WorldTuple{
		{ID: 1, Existence: 0.9, Attr: alice},
		{ID: 2, Existence: 1.0, Attr: bob},
		{ID: 3, Existence: 0.8, Attr: carol},
	}
	conf := EqualityConfidences(tuples, "MIT")
	if !almostEq(conf[1], 0.18, 1e-9) || !almostEq(conf[2], 0.95, 1e-9) || !almostEq(conf[3], 0, 1e-9) {
		t.Fatalf("confidences: %+v", conf)
	}
	// Paper's Query 1 with QT given: {Alice 18%, Bob 95%}.
	ids := PTQAnswer(tuples, "MIT", 0.10)
	if len(ids) != 2 {
		t.Fatalf("PTQ answer: %v", ids)
	}
	ids = PTQAnswer(tuples, "MIT", 0.50)
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("PTQ answer at 0.5: %v", ids)
	}
}

func TestWorldEnumerationResidualMass(t *testing.T) {
	// Distribution with mass 0.6: residual 0.4 never matches.
	d := Discrete{{Value: "A", Prob: 0.6}}
	conf := EqualityConfidences([]WorldTuple{{ID: 1, Existence: 1.0, Attr: d}}, "A")
	if !almostEq(conf[1], 0.6, 1e-9) {
		t.Fatalf("conf = %v", conf[1])
	}
}

func TestRectOps(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	if !a.Intersects(b) || a.Intersection(b).Area() != 25 {
		t.Fatalf("intersection: %+v", a.Intersection(b))
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 15, 15}) {
		t.Fatalf("union: %+v", u)
	}
	if a.Area() != 100 || a.Margin() != 20 {
		t.Fatalf("area/margin: %v %v", a.Area(), a.Margin())
	}
	if !a.Contains(Point{5, 5}) || a.Contains(Point{11, 5}) {
		t.Fatal("contains wrong")
	}
	if !u.ContainsRect(a) || a.ContainsRect(u) {
		t.Fatal("ContainsRect wrong")
	}
	far := Rect{100, 100, 110, 110}
	if a.Intersects(far) || a.Intersection(far).Area() != 0 {
		t.Fatal("disjoint rect handling wrong")
	}
	if c := a.Center(); c != (Point{5, 5}) {
		t.Fatalf("center: %+v", c)
	}
}

func TestConstrainedGaussianRadialCDF(t *testing.T) {
	g := ConstrainedGaussian{Center: Point{0, 0}, Sigma: 20, Bound: 100}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.CDFRadius(0) != 0 || g.CDFRadius(100) != 1 || g.CDFRadius(200) != 1 {
		t.Fatal("CDF boundary values wrong")
	}
	// Monotone.
	prev := 0.0
	for d := 5.0; d <= 100; d += 5 {
		c := g.CDFRadius(d)
		if c < prev {
			t.Fatalf("CDF not monotone at %v", d)
		}
		prev = c
	}
	// Quantile inverts CDF.
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		r := g.QuantileRadius(p)
		if !almostEq(g.CDFRadius(r), p, 1e-9) {
			t.Fatalf("quantile/CDF mismatch at p=%v: r=%v cdf=%v", p, r, g.CDFRadius(r))
		}
	}
	if g.QuantileRadius(0) != 0 || g.QuantileRadius(1) != g.Bound {
		t.Fatal("quantile boundaries wrong")
	}
	if (ConstrainedGaussian{Sigma: 0, Bound: 1}).Validate() == nil {
		t.Fatal("zero sigma accepted")
	}
	if (ConstrainedGaussian{Sigma: 1, Bound: 0}).Validate() == nil {
		t.Fatal("zero bound accepted")
	}
}

func TestProbInCircleAgreesWithRadialCDF(t *testing.T) {
	// A query circle centered on the object: grid integration must
	// agree with the exact radial CDF.
	g := ConstrainedGaussian{Center: Point{50, -30}, Sigma: 20, Bound: 100}
	for _, r := range []float64{20, 40, 60, 80} {
		grid := g.ProbInCircle(g.Center, r)
		exact := g.CDFRadius(r)
		if !almostEq(grid, exact, 0.01) {
			t.Fatalf("r=%v: grid=%v exact=%v", r, grid, exact)
		}
	}
}

func TestProbInCircleFastPaths(t *testing.T) {
	g := ConstrainedGaussian{Center: Point{0, 0}, Sigma: 10, Bound: 50}
	if p := g.ProbInCircle(Point{1000, 0}, 100); p != 0 {
		t.Fatalf("disjoint: %v", p)
	}
	if p := g.ProbInCircle(Point{0, 0}, 200); p != 1 {
		t.Fatalf("containing: %v", p)
	}
}

func TestProbInCircleOffCenter(t *testing.T) {
	g := ConstrainedGaussian{Center: Point{0, 0}, Sigma: 20, Bound: 100}
	// A query covering exactly half the plane through the center
	// cannot be represented as a circle, but a big circle centered far
	// to the right whose boundary passes through the origin covers
	// about half the mass.
	p := g.ProbInCircle(Point{10000, 0}, 10000)
	if !almostEq(p, 0.5, 0.03) {
		t.Fatalf("half-plane approx = %v, want ~0.5", p)
	}
}

func TestProbInRect(t *testing.T) {
	g := ConstrainedGaussian{Center: Point{0, 0}, Sigma: 20, Bound: 100}
	if p := g.ProbInRect(Rect{-200, -200, 200, 200}); !almostEq(p, 1, 0.01) {
		t.Fatalf("covering rect: %v", p)
	}
	if p := g.ProbInRect(Rect{500, 500, 600, 600}); p != 0 {
		t.Fatalf("disjoint rect: %v", p)
	}
	// Right half-plane ≈ 0.5.
	if p := g.ProbInRect(Rect{0, -200, 200, 200}); !almostEq(p, 0.5, 0.03) {
		t.Fatalf("half rect: %v", p)
	}
}

// Property: confidence is always within [0, existence].
func TestConfidenceBounds(t *testing.T) {
	err := quick.Check(func(e, p1, p2 float64) bool {
		e = math.Abs(math.Mod(e, 1))
		p1 = math.Abs(math.Mod(p1, 0.5))
		p2 = math.Abs(math.Mod(p2, 0.5))
		if p1 == 0 {
			p1 = 0.25
		}
		if p2 == 0 {
			p2 = 0.25
		}
		d, err := NewDiscrete([]Alternative{{Value: "A", Prob: p1}, {Value: "B", Prob: p2}})
		if err != nil {
			return false
		}
		c := Confidence(e, d, "A")
		return c >= 0 && c <= e+1e-12
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}
