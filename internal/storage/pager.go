package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// DefaultPageSize matches the BerkeleyDB B+Tree page size the paper's
// prototype used (Table 6 derives leaf counts as Stable / 8KB).
const DefaultPageSize = 8192

// HeapPageSize is the larger page size the continuous UPI uses for its
// heap file (Section 5: "heap pages with larger page size (e.g., 64KB)").
const HeapPageSize = 64 * 1024

// RTreePageSize is the small node page size for R-Tree structures
// (Section 5: "R-Tree nodes with small page sizes (e.g., 4KB)").
const RTreePageSize = 4096

// PageID identifies a page within one pager's file.
type PageID uint32

// InvalidPage is a sentinel PageID that never refers to a real page.
const InvalidPage PageID = ^PageID(0)

// DefaultCachePages is the default buffer-pool capacity per pager.
// 512 pages x 8 KiB = 4 MiB, small relative to the tables the
// experiments build, mirroring the paper's cold-cache regime.
const DefaultCachePages = 512

// Pager provides fixed-size pages over a File with an LRU buffer pool.
// Page contents obtained from Read or Alloc remain valid until the
// next pager call that may evict (any Read, Alloc, or SetCacheLimit);
// callers that need longer-lived data must copy.
//
// Pager is not safe for concurrent use; each index structure owns its
// pager and the engine serializes access per table.
type Pager struct {
	f        *File
	pageSize int
	maxPages int
	prefetch int // pages fetched per read miss (>=1)

	mu           sync.Mutex
	prefetchRefs int                      // active PushPrefetch holds
	cache        map[PageID]*list.Element // -> *cachedPage
	lru          *list.List               // front = most recently used
	nPage        PageID                   // number of pages in file
}

type cachedPage struct {
	id    PageID
	data  []byte
	dirty bool
}

// NewPager creates a pager over f with the given page size. Any
// existing file content must be a whole number of pages.
func NewPager(f *File, pageSize int) (*Pager, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: invalid page size %d", pageSize)
	}
	size := f.Size()
	if size%int64(pageSize) != 0 {
		return nil, fmt.Errorf("storage: file %s size %d not a multiple of page size %d",
			f.Name(), size, pageSize)
	}
	return &Pager{
		f:        f,
		pageSize: pageSize,
		maxPages: DefaultCachePages,
		prefetch: 1,
		cache:    make(map[PageID]*list.Element),
		lru:      list.New(),
		nPage:    PageID(size / int64(pageSize)),
	}, nil
}

// SetPrefetch sets how many contiguous pages one read miss fetches in
// a single disk operation. It models sequential read-ahead: a merge or
// table scan that enables it pays one seek per run of pages instead of
// one per page. The default of 1 disables read-ahead.
func (p *Pager) SetPrefetch(pages int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pages < 1 {
		pages = 1
	}
	p.prefetch = pages
}

// PushPrefetch raises the read-ahead window to at least pages and
// returns a release function. Holds are reference-counted: concurrent
// sequential readers of the same file (a full scan overlapping a
// merge, two overlapping scans) keep the widest requested window until
// the *last* hold releases, which restores the default of 1 — so one
// reader finishing cannot strip the read-ahead out from under another
// mid-scan.
func (p *Pager) PushPrefetch(pages int) (release func()) {
	p.mu.Lock()
	p.prefetchRefs++
	if pages > p.prefetch {
		p.prefetch = pages
	}
	p.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.prefetchRefs--
			if p.prefetchRefs == 0 {
				p.prefetch = 1
			}
			p.mu.Unlock()
		})
	}
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// NumPages returns the number of pages currently in the file.
func (p *Pager) NumPages() PageID { return p.nPage }

// File returns the underlying file.
func (p *Pager) File() *File { return p.f }

// SetCacheLimit changes the buffer-pool capacity, evicting (and
// flushing) pages as needed.
func (p *Pager) SetCacheLimit(pages int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pages < 1 {
		pages = 1
	}
	p.maxPages = pages
	return p.evictLocked()
}

// Alloc appends a new zeroed page to the file and returns its ID and a
// writable buffer for it. The page is born dirty in the cache; it is
// written to disk on eviction or Flush.
func (p *Pager) Alloc() (PageID, []byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nPage
	p.nPage++
	cp := &cachedPage{id: id, data: make([]byte, p.pageSize), dirty: true}
	if err := p.insertLocked(cp); err != nil {
		return 0, nil, err
	}
	return id, cp.data, nil
}

// Read returns the contents of page id, through the buffer pool. The
// returned slice aliases the cached page: mutate it only via Write.
func (p *Pager) Read(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readLocked(id)
}

func (p *Pager) readLocked(id PageID) ([]byte, error) {
	if id >= p.nPage {
		return nil, fmt.Errorf("storage: read page %d of %d in %s", id, p.nPage, p.f.Name())
	}
	if el, ok := p.cache[id]; ok {
		p.lru.MoveToFront(el)
		return el.Value.(*cachedPage).data, nil
	}
	// Determine the read-ahead run: contiguous pages starting at id
	// that are on disk, not cached (cached copies may be newer), and
	// within half the pool so the run cannot evict itself.
	run := p.prefetch
	if max := p.maxPages / 2; run > max {
		run = max
	}
	if run < 1 {
		run = 1
	}
	onDisk := PageID(p.f.Size() / int64(p.pageSize))
	for n := 1; n < run; n++ {
		next := id + PageID(n)
		if next >= onDisk {
			run = n
			break
		}
		if _, cached := p.cache[next]; cached {
			run = n
			break
		}
	}
	if id+PageID(run) > onDisk {
		run = 1 // requested page may live only beyond the flushed tail
	}
	data := make([]byte, run*p.pageSize)
	if err := p.f.ReadAt(data, int64(id)*int64(p.pageSize)); err != nil {
		return nil, err
	}
	// Insert read-ahead pages first, the requested page last, so the
	// requested page is the most recently used.
	for n := run - 1; n >= 1; n-- {
		cp := &cachedPage{id: id + PageID(n), data: append([]byte(nil), data[n*p.pageSize:(n+1)*p.pageSize]...)}
		if err := p.insertLocked(cp); err != nil {
			return nil, err
		}
	}
	cp := &cachedPage{id: id, data: data[:p.pageSize:p.pageSize]}
	if err := p.insertLocked(cp); err != nil {
		return nil, err
	}
	return cp.data, nil
}

// Write replaces the contents of page id and marks it dirty. data must
// be exactly one page.
func (p *Pager) Write(id PageID, data []byte) error {
	if len(data) != p.pageSize {
		return fmt.Errorf("storage: write page %d: got %d bytes, want %d", id, len(data), p.pageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.nPage {
		return fmt.Errorf("storage: write page %d of %d in %s", id, p.nPage, p.f.Name())
	}
	if el, ok := p.cache[id]; ok {
		cp := el.Value.(*cachedPage)
		copy(cp.data, data)
		cp.dirty = true
		p.lru.MoveToFront(el)
		return nil
	}
	cp := &cachedPage{id: id, data: append([]byte(nil), data...), dirty: true}
	return p.insertLocked(cp)
}

// MarkDirty flags a cached page (previously obtained from Read or
// Alloc and mutated in place) so it is flushed before eviction.
func (p *Pager) MarkDirty(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.cache[id]; ok {
		el.Value.(*cachedPage).dirty = true
		p.lru.MoveToFront(el)
	}
}

func (p *Pager) insertLocked(cp *cachedPage) error {
	p.cache[cp.id] = p.lru.PushFront(cp)
	return p.evictLocked()
}

func (p *Pager) evictLocked() error {
	for p.lru.Len() > p.maxPages {
		el := p.lru.Back()
		cp := el.Value.(*cachedPage)
		if cp.dirty {
			if err := p.f.WriteAt(cp.data, int64(cp.id)*int64(p.pageSize)); err != nil {
				return err
			}
			cp.dirty = false
		}
		p.lru.Remove(el)
		delete(p.cache, cp.id)
	}
	return nil
}

// Flush writes all dirty pages to the file in page order (one mostly
// sequential pass), keeping them cached.
func (p *Pager) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *Pager) flushLocked() error {
	dirty := make([]*cachedPage, 0)
	for _, el := range p.cache {
		if cp := el.Value.(*cachedPage); cp.dirty {
			dirty = append(dirty, cp)
		}
	}
	// Write in ascending page order so flushes of bulk loads are
	// sequential on the simulated disk.
	for i := 1; i < len(dirty); i++ {
		for j := i; j > 0 && dirty[j-1].id > dirty[j].id; j-- {
			dirty[j-1], dirty[j] = dirty[j], dirty[j-1]
		}
	}
	for _, cp := range dirty {
		if err := p.f.WriteAt(cp.data, int64(cp.id)*int64(p.pageSize)); err != nil {
			return err
		}
		cp.dirty = false
	}
	return nil
}

// DropCache flushes dirty pages and empties the buffer pool. It is how
// experiments reproduce the paper's cold-cache setting before each
// measured query.
func (p *Pager) DropCache() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.flushLocked(); err != nil {
		return err
	}
	p.cache = make(map[PageID]*list.Element)
	p.lru.Init()
	return nil
}

// CachedPages returns how many pages the buffer pool currently holds.
func (p *Pager) CachedPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}
