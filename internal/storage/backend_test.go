package storage

import (
	"bytes"
	"errors"
	"testing"

	"upidb/internal/sim"
)

// backendContract runs the semantics every Backend must share.
func backendContract(t *testing.T, b Backend) {
	t.Helper()
	if err := b.Create("a"); err != nil {
		t.Fatal(err)
	}
	if !b.Exists("a") || b.Exists("nope") {
		t.Fatal("Exists wrong")
	}
	if err := b.WriteAt("a", []byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	// Write past EOF creates a hole reading as zeroes.
	if err := b.WriteAt("a", []byte("!!"), 20); err != nil {
		t.Fatal(err)
	}
	if size, ok := b.Size("a"); !ok || size != 22 {
		t.Fatalf("size = %d, %v", size, ok)
	}
	hole := make([]byte, 9)
	if err := b.ReadAt("a", hole, 11); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hole, make([]byte, 9)) {
		t.Fatalf("hole not zero: %v", hole)
	}
	// Out-of-range read is an error, not a short read.
	if err := b.ReadAt("a", make([]byte, 5), 20); err == nil {
		t.Fatal("read past EOF should fail")
	}
	if err := b.Sync("a"); err != nil {
		t.Fatal(err)
	}
	// Truncate both ways.
	if err := b.Truncate("a", 5); err != nil {
		t.Fatal(err)
	}
	if size, _ := b.Size("a"); size != 5 {
		t.Fatalf("after shrink size = %d", size)
	}
	if err := b.Truncate("a", 8); err != nil {
		t.Fatal(err)
	}
	tail := make([]byte, 3)
	if err := b.ReadAt("a", tail, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, make([]byte, 3)) {
		t.Fatalf("grown tail not zero: %v", tail)
	}
	// Create truncates.
	if err := b.Create("a"); err != nil {
		t.Fatal(err)
	}
	if size, _ := b.Size("a"); size != 0 {
		t.Fatalf("create did not truncate: %d", size)
	}
	// Rename replaces; Remove deletes.
	b.Create("b")
	b.WriteAt("b", []byte("x"), 0)
	if err := b.Rename("b", "a"); err != nil {
		t.Fatal(err)
	}
	if b.Exists("b") {
		t.Fatal("rename left source")
	}
	got := make([]byte, 1)
	if err := b.ReadAt("a", got, 0); err != nil || got[0] != 'x' {
		t.Fatalf("content lost: %v %q", err, got)
	}
	if err := b.Rename("zzz", "y"); err == nil {
		t.Fatal("rename of missing file should fail")
	}
	if err := b.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove("a"); err == nil {
		t.Fatal("double remove should fail")
	}
	if names := b.List(); len(names) != 0 {
		t.Fatalf("list = %v", names)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemBackendContract(t *testing.T) {
	backendContract(t, NewMemBackend())
}

func TestDiskBackendContract(t *testing.T) {
	b, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	backendContract(t, b)
}

func TestDiskBackendPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	b.Create("t")
	b.WriteAt("t", []byte("durable"), 0)
	b.Sync("t")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	got := make([]byte, 7)
	if err := b2.ReadAt("t", got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Fatalf("read back %q", got)
	}
	if names := b2.List(); len(names) != 1 || names[0] != "t" {
		t.Fatalf("list = %v", names)
	}
}

func TestFSOverDiskBackend(t *testing.T) {
	b, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	disk := sim.NewDisk(sim.DefaultParams())
	fs := NewFSOn(disk, b)
	f := fs.Create("t")
	if err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Modeled charges accrue identically over a disk backend.
	if got := disk.Stats().BytesWritten; got != 5 {
		t.Fatalf("written = %d", got)
	}
	p, err := NewPager(fs.Create("pages"), 64)
	if err != nil {
		t.Fatal(err)
	}
	id, buf, _ := p.Alloc()
	buf[0] = 9
	p.MarkDirty(id)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(id)
	if err != nil || got[0] != 9 {
		t.Fatalf("pager over disk: %v %v", err, got)
	}
}

func TestSidebandUnchargedAndUnrouted(t *testing.T) {
	disk := sim.NewDisk(sim.DefaultParams())
	fs := NewFS(disk)
	fs.Sideband("wal")
	w := fs.Create("wal")
	q := fs.Create("data")

	before := disk.Stats()
	if err := w.WriteAt(make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	if err := w.ReadAt(make([]byte, 50), 0); err != nil {
		t.Fatal(err)
	}
	if d := disk.Stats().Sub(before); d.BytesWritten != 0 || d.BytesRead != 0 {
		t.Fatalf("sideband charged disk: %+v", d)
	}

	// A route claiming both files must only capture the regular one.
	tape := sim.NewTape()
	release := fs.RouteTo([]string{"wal", "data"}, tape)
	w.WriteAt(make([]byte, 10), 0)
	q.WriteAt(make([]byte, 10), 0)
	release()
	if got := tape.Len(); got != 1 {
		t.Fatalf("tape captured %d ops, want 1 (the data write only)", got)
	}

	// The mark follows a rename and dies with Remove.
	if err := fs.Rename("wal", "wal2"); err != nil {
		t.Fatal(err)
	}
	if !fs.IsSideband("wal2") || fs.IsSideband("wal") {
		t.Fatal("sideband mark did not follow rename")
	}
	if err := fs.Remove("wal2"); err != nil {
		t.Fatal(err)
	}
	if fs.IsSideband("wal2") {
		t.Fatal("sideband mark survived remove")
	}
}

func TestFaultBackendWriteCountdownAndPartial(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend())
	fb.Create("t")
	fb.Arm(Fault{Op: OpWrite, Name: "t", CountDown: 1, PartialBytes: 3})

	if err := fb.WriteAt("t", []byte("first"), 0); err != nil {
		t.Fatalf("countdown write should pass: %v", err)
	}
	err := fb.WriteAt("t", []byte("second"), 5)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !fb.Triggered() {
		t.Fatal("not triggered")
	}
	// Torn write: 3 bytes of the failing payload landed.
	if size, _ := fb.Size("t"); size != 8 {
		t.Fatalf("size after torn write = %d, want 8", size)
	}
	// Fault is one-shot.
	if err := fb.WriteAt("t", []byte("third"), 8); err != nil {
		t.Fatalf("fault should be disarmed: %v", err)
	}
}

func TestFaultBackendOtherOps(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend())
	fb.Create("a")

	fb.Arm(Fault{Op: OpSync, Name: "a"})
	if err := fb.Sync("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: %v", err)
	}
	fb.Arm(Fault{Op: OpRename, Name: "a"})
	if err := fb.Rename("a", "b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: %v", err)
	}
	fb.Arm(Fault{Op: OpCreate, Name: "x"})
	if err := fb.Create("other"); err != nil {
		t.Fatalf("non-matching name must pass: %v", err)
	}
	if err := fb.Create("x.tmp"); !errors.Is(err, ErrInjected) {
		t.Fatalf("create: %v", err)
	}
	fb.Disarm()
	if err := fb.Truncate("a", 0); err != nil {
		t.Fatalf("disarmed: %v", err)
	}
}

func TestCreateFailureSurfacesOnUse(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend())
	disk := sim.NewDisk(sim.DefaultParams())
	fs := NewFSOn(disk, fb)
	fb.Arm(Fault{Op: OpCreate})
	f := fs.Create("doomed")
	if err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("deferred create error not surfaced: %v", err)
	}
	if err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("deferred create error not surfaced on read: %v", err)
	}
}
