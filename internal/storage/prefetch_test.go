package storage

import (
	"testing"

	"upidb/internal/sim"
)

func newPrefetchPager(t *testing.T) (*Pager, *sim.Disk) {
	t.Helper()
	disk := sim.NewDisk(sim.DefaultParams())
	fs := NewFS(disk)
	p, err := NewPager(fs.Create("t"), 64)
	if err != nil {
		t.Fatal(err)
	}
	return p, disk
}

func fillPages(t *testing.T, p *Pager, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id, buf, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		p.MarkDirty(id)
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchReadsRunInOneOp(t *testing.T) {
	p, disk := newPrefetchPager(t)
	fillPages(t, p, 100)
	p.SetPrefetch(16)
	before := disk.Stats()
	for i := 0; i < 32; i++ {
		got, err := p.Read(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("page %d corrupted by prefetch", i)
		}
	}
	d := disk.Stats().Sub(before)
	// 32 pages with a 16-page window: 2 disk ops, contiguous.
	if d.Seeks+d.SequentialIO > 3 {
		t.Fatalf("prefetch did not batch: %+v", d)
	}
	if d.BytesRead != 32*64 {
		t.Fatalf("read %d bytes", d.BytesRead)
	}
}

func TestPrefetchStopsAtCachedPage(t *testing.T) {
	p, disk := newPrefetchPager(t)
	fillPages(t, p, 20)
	p.SetPrefetch(16)
	// Warm page 5 and dirty it with a value newer than disk.
	if _, err := p.Read(5); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(5, append(make([]byte, 63), 0xEE)); err != nil {
		t.Fatal(err)
	}
	_ = disk
	// Reading page 0 with a 16-page window must not clobber cached
	// page 5.
	if _, err := p.Read(0); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if got[63] != 0xEE {
		t.Fatal("prefetch clobbered a dirty cached page")
	}
}

func TestPrefetchClampsToFileEnd(t *testing.T) {
	p, _ := newPrefetchPager(t)
	fillPages(t, p, 10)
	p.SetPrefetch(64)
	got, err := p.Read(8) // only pages 8,9 remain on disk
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 8 {
		t.Fatalf("page 8 = %d", got[0])
	}
	if _, err := p.Read(9); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchClampsToCache(t *testing.T) {
	p, _ := newPrefetchPager(t)
	fillPages(t, p, 50)
	if err := p.SetCacheLimit(8); err != nil {
		t.Fatal(err)
	}
	p.SetPrefetch(100) // larger than the pool: clamped to maxPages/2
	got, err := p.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("requested page evicted by its own read-ahead")
	}
	if p.CachedPages() > 8 {
		t.Fatalf("cache over limit: %d", p.CachedPages())
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	p, disk := newPrefetchPager(t)
	fillPages(t, p, 10)
	before := disk.Stats()
	if _, err := p.Read(0); err != nil {
		t.Fatal(err)
	}
	if d := disk.Stats().Sub(before); d.BytesRead != 64 {
		t.Fatalf("default read fetched %d bytes", d.BytesRead)
	}
	p.SetPrefetch(0) // invalid values clamp to 1
	if _, err := p.Read(1); err != nil {
		t.Fatal(err)
	}
}
