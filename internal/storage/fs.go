// Package storage provides the file and page abstractions used by all
// index structures in this repository: a file system whose every byte
// of I/O is charged to a sim.Disk, and a Pager that exposes fixed-size
// pages through an LRU buffer pool.
//
// The bytes themselves live in a pluggable Backend: MemBackend (the
// default) keeps them in memory so modeled-cost experiments stay
// deterministic, DiskBackend keeps them in real files with real fsync
// so tables survive the process. The FS layer on top is the same
// either way — it owns the accounting.
//
// The combination stands in for BerkeleyDB's mpool + file layer in the
// paper's prototype: hot pages are served from the buffer pool for
// free, cold pages pay modeled disk time, and DropCache reproduces the
// paper's cold-cache experimental setting.
package storage

import (
	"fmt"
	"sync"

	"upidb/internal/sim"
)

// FS is a file system front-end charging I/O to a simulated disk and
// storing bytes in a Backend. All methods are safe for concurrent use.
type FS struct {
	disk    *sim.Disk
	backend Backend

	mu       sync.Mutex
	routes   map[string]routeEntry
	routeSeq uint64
	sideband map[string]bool
}

// Recorder receives the I/O charges of routed files in place of the
// disk. *sim.Tape implements it.
type Recorder interface {
	Open(file string)
	Read(file string, off, n int64)
	Write(file string, off, n int64)
}

type routeEntry struct {
	rec   Recorder
	token uint64
}

// NewFS returns an empty file system charging I/O to disk, storing
// bytes in memory.
func NewFS(disk *sim.Disk) *FS {
	return NewFSOn(disk, NewMemBackend())
}

// NewFSOn returns a file system charging I/O to disk and storing bytes
// in the given backend.
func NewFSOn(disk *sim.Disk, backend Backend) *FS {
	return &FS{disk: disk, backend: backend}
}

// Disk returns the simulated disk backing this file system.
func (fs *FS) Disk() *sim.Disk { return fs.disk }

// Backend returns the byte store underneath this file system.
func (fs *FS) Backend() Backend { return fs.backend }

// Sideband marks the named file as accounting-exempt: its I/O is never
// charged to the disk and never diverted by RouteTo, so durability
// bookkeeping (WAL appends, manifest writes) cannot perturb modeled
// query costs or be attributed to a concurrent query's per-query
// stats. The mark survives Create/truncate and follows the file
// through Rename; Remove clears it.
func (fs *FS) Sideband(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.sideband == nil {
		fs.sideband = make(map[string]bool)
	}
	fs.sideband[name] = true
}

// IsSideband reports whether the named file is accounting-exempt.
func (fs *FS) IsSideband(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.sideband[name]
}

// RouteTo diverts the I/O charges of the named files to rec instead of
// the disk until the returned release function is called. A parallel
// query routes each partition's files to a private sim.Tape, then
// replays the tapes in partition order for deterministic accounting.
// Sideband files are never routed: a WAL or manifest name in files is
// silently skipped, so durability appends cannot land on a query's
// recorder.
//
// Routes nest last-writer-wins: if a second RouteTo claims a file, the
// newer route receives subsequent charges and the older release leaves
// it untouched, so every operation is charged to exactly one sink.
// Consequently, when two actors scan the same files at the same time
// (two queries on one table, or a query overlapping a background
// merge), totals remain exactly-once but the split *between* their
// recorders is approximate — per-query determinism is guaranteed only
// for scans that do not share files with concurrent activity.
func (fs *FS) RouteTo(files []string, rec Recorder) (release func()) {
	fs.mu.Lock()
	if fs.routes == nil {
		fs.routes = make(map[string]routeEntry)
	}
	fs.routeSeq++
	token := fs.routeSeq
	routed := make([]string, 0, len(files))
	for _, name := range files {
		if fs.sideband[name] {
			continue
		}
		fs.routes[name] = routeEntry{rec: rec, token: token}
		routed = append(routed, name)
	}
	fs.mu.Unlock()
	return func() {
		fs.mu.Lock()
		for _, name := range routed {
			if e, ok := fs.routes[name]; ok && e.token == token {
				delete(fs.routes, name)
			}
		}
		fs.mu.Unlock()
	}
}

// sink classifies where charges for name go: the routed recorder, the
// disk (rec nil, charge true), or nowhere (sideband).
func (fs *FS) sink(name string) (rec Recorder, charge bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.sideband[name] {
		return nil, false
	}
	if e, ok := fs.routes[name]; ok {
		return e.rec, true
	}
	return nil, true
}

// Create creates (or truncates) a file and returns an open handle.
// Creating charges the file-open cost. A backend failure is carried by
// the handle and surfaces on its first read or write.
func (fs *FS) Create(name string) *File {
	err := fs.backend.Create(name)
	if err != nil {
		err = fmt.Errorf("storage: create %s: %w", name, err)
	}
	if _, charge := fs.sink(name); charge {
		fs.disk.Open(name)
	}
	return &File{fs: fs, name: name, err: err}
}

// Open opens an existing file, charging the file-open cost (Costinit).
func (fs *FS) Open(name string) (*File, error) {
	if !fs.backend.Exists(name) {
		return nil, fmt.Errorf("storage: open %s: no such file", name)
	}
	if _, charge := fs.sink(name); charge {
		fs.disk.Open(name)
	}
	return &File{fs: fs, name: name}, nil
}

// Exists reports whether a file with the given name exists.
func (fs *FS) Exists(name string) bool {
	return fs.backend.Exists(name)
}

// Remove deletes a file. Removing a missing file is an error.
func (fs *FS) Remove(name string) error {
	if err := fs.backend.Remove(name); err != nil {
		return err
	}
	fs.mu.Lock()
	delete(fs.sideband, name)
	fs.mu.Unlock()
	return nil
}

// Rename moves a file to a new name, replacing any existing file. The
// sideband mark, if any, follows the file.
func (fs *FS) Rename(oldName, newName string) error {
	if err := fs.backend.Rename(oldName, newName); err != nil {
		return err
	}
	fs.mu.Lock()
	if fs.sideband[oldName] {
		delete(fs.sideband, oldName)
		fs.sideband[newName] = true
	} else {
		delete(fs.sideband, newName)
	}
	fs.mu.Unlock()
	return nil
}

// List returns the names of all files, sorted.
func (fs *FS) List() []string {
	return fs.backend.List()
}

// TotalSize returns the sum of all file sizes in bytes.
func (fs *FS) TotalSize() int64 {
	var total int64
	for _, name := range fs.backend.List() {
		if size, ok := fs.backend.Size(name); ok {
			total += size
		}
	}
	return total
}

// Size returns the size of the named file, or 0 if it does not exist.
func (fs *FS) Size(name string) int64 {
	size, _ := fs.backend.Size(name)
	return size
}

// Sync makes the named file's written bytes durable (uncharged; a
// no-op on memory backends).
func (fs *FS) Sync(name string) error {
	return fs.backend.Sync(name)
}

// File is a handle on one file of an FS. The handle itself carries no
// position; all access is by explicit offset.
type File struct {
	fs   *FS
	name string
	err  error // deferred Create failure
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the current size of the file in bytes.
func (f *File) Size() int64 {
	return f.fs.Size(f.name)
}

// ReadAt reads len(p) bytes at offset off, charging the disk. Reading
// past the end of the file is an error.
func (f *File) ReadAt(p []byte, off int64) error {
	if f.err != nil {
		return f.err
	}
	if err := f.fs.backend.ReadAt(f.name, p, off); err != nil {
		return err
	}
	rec, charge := f.fs.sink(f.name)
	if rec != nil {
		rec.Read(f.name, off, int64(len(p)))
	} else if charge {
		f.fs.disk.Read(f.name, off, int64(len(p)))
	}
	return nil
}

// WriteAt writes len(p) bytes at offset off, growing the file if the
// write extends past its end, and charges the disk.
func (f *File) WriteAt(p []byte, off int64) error {
	if f.err != nil {
		return f.err
	}
	if err := f.fs.backend.WriteAt(f.name, p, off); err != nil {
		return err
	}
	rec, charge := f.fs.sink(f.name)
	if rec != nil {
		rec.Write(f.name, off, int64(len(p)))
	} else if charge {
		f.fs.disk.Write(f.name, off, int64(len(p)))
	}
	return nil
}

// Sync makes previously written bytes durable. It is uncharged: the
// simulated disk has no fsync model, and on the disk backend fsync
// cost is real wall-clock time, not modeled time.
func (f *File) Sync() error {
	if f.err != nil {
		return f.err
	}
	return f.fs.backend.Sync(f.name)
}

// Truncate sets the file's size, discarding bytes past it. Uncharged,
// like Sync: it exists for durability bookkeeping (WAL self-healing),
// not for modeled I/O.
func (f *File) Truncate(size int64) error {
	if f.err != nil {
		return f.err
	}
	return f.fs.backend.Truncate(f.name, size)
}
