// Package storage provides the file and page abstractions used by all
// index structures in this repository: an in-memory file system whose
// every byte of I/O is charged to a sim.Disk, and a Pager that exposes
// fixed-size pages through an LRU buffer pool.
//
// The combination stands in for BerkeleyDB's mpool + file layer in the
// paper's prototype: hot pages are served from the buffer pool for
// free, cold pages pay modeled disk time, and DropCache reproduces the
// paper's cold-cache experimental setting.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"upidb/internal/sim"
)

// FS is an in-memory file system backed by a simulated disk. All
// methods are safe for concurrent use.
type FS struct {
	disk *sim.Disk

	mu    sync.Mutex
	files map[string]*fileData
}

type fileData struct {
	data []byte
}

// NewFS returns an empty file system charging I/O to disk.
func NewFS(disk *sim.Disk) *FS {
	return &FS{disk: disk, files: make(map[string]*fileData)}
}

// Disk returns the simulated disk backing this file system.
func (fs *FS) Disk() *sim.Disk { return fs.disk }

// Create creates (or truncates) a file and returns an open handle.
// Creating charges the file-open cost.
func (fs *FS) Create(name string) *File {
	fs.mu.Lock()
	fs.files[name] = &fileData{}
	fs.mu.Unlock()
	fs.disk.Open(name)
	return &File{fs: fs, name: name}
}

// Open opens an existing file, charging the file-open cost (Costinit).
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	_, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: open %s: no such file", name)
	}
	fs.disk.Open(name)
	return &File{fs: fs, name: name}, nil
}

// Exists reports whether a file with the given name exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// Remove deletes a file. Removing a missing file is an error.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("storage: remove %s: no such file", name)
	}
	delete(fs.files, name)
	return nil
}

// Rename moves a file to a new name, replacing any existing file.
func (fs *FS) Rename(oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, ok := fs.files[oldName]
	if !ok {
		return fmt.Errorf("storage: rename %s: no such file", oldName)
	}
	delete(fs.files, oldName)
	fs.files[newName] = fd
	return nil
}

// List returns the names of all files, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalSize returns the sum of all file sizes in bytes.
func (fs *FS) TotalSize() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var total int64
	for _, fd := range fs.files {
		total += int64(len(fd.data))
	}
	return total
}

// Size returns the size of the named file, or 0 if it does not exist.
func (fs *FS) Size(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, ok := fs.files[name]
	if !ok {
		return 0
	}
	return int64(len(fd.data))
}

// File is a handle on one file of an FS. The handle itself carries no
// position; all access is by explicit offset.
type File struct {
	fs   *FS
	name string
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the current size of the file in bytes.
func (f *File) Size() int64 {
	return f.fs.Size(f.name)
}

// ReadAt reads len(p) bytes at offset off, charging the disk. Reading
// past the end of the file is an error.
func (f *File) ReadAt(p []byte, off int64) error {
	f.fs.mu.Lock()
	fd, ok := f.fs.files[f.name]
	if !ok {
		f.fs.mu.Unlock()
		return fmt.Errorf("storage: read %s: no such file", f.name)
	}
	if off < 0 || off+int64(len(p)) > int64(len(fd.data)) {
		f.fs.mu.Unlock()
		return fmt.Errorf("storage: read %s: out of range [%d, %d) of %d",
			f.name, off, off+int64(len(p)), len(fd.data))
	}
	copy(p, fd.data[off:])
	f.fs.mu.Unlock()
	f.fs.disk.Read(f.name, off, int64(len(p)))
	return nil
}

// WriteAt writes len(p) bytes at offset off, growing the file if the
// write extends past its end, and charges the disk.
func (f *File) WriteAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: write %s: negative offset", f.name)
	}
	f.fs.mu.Lock()
	fd, ok := f.fs.files[f.name]
	if !ok {
		f.fs.mu.Unlock()
		return fmt.Errorf("storage: write %s: no such file", f.name)
	}
	end := off + int64(len(p))
	if end > int64(len(fd.data)) {
		if end > int64(cap(fd.data)) {
			// Grow capacity geometrically so sequential appends are
			// amortized O(1) instead of quadratic.
			newCap := 2 * int64(cap(fd.data))
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, fd.data)
			fd.data = grown
		} else {
			fd.data = fd.data[:end]
		}
	}
	copy(fd.data[off:], p)
	f.fs.mu.Unlock()
	f.fs.disk.Write(f.name, off, int64(len(p)))
	return nil
}
