// Package storage provides the file and page abstractions used by all
// index structures in this repository: an in-memory file system whose
// every byte of I/O is charged to a sim.Disk, and a Pager that exposes
// fixed-size pages through an LRU buffer pool.
//
// The combination stands in for BerkeleyDB's mpool + file layer in the
// paper's prototype: hot pages are served from the buffer pool for
// free, cold pages pay modeled disk time, and DropCache reproduces the
// paper's cold-cache experimental setting.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"upidb/internal/sim"
)

// FS is an in-memory file system backed by a simulated disk. All
// methods are safe for concurrent use.
type FS struct {
	disk *sim.Disk

	mu       sync.Mutex
	files    map[string]*fileData
	routes   map[string]routeEntry
	routeSeq uint64
}

// Recorder receives the I/O charges of routed files in place of the
// disk. *sim.Tape implements it.
type Recorder interface {
	Open(file string)
	Read(file string, off, n int64)
	Write(file string, off, n int64)
}

type routeEntry struct {
	rec   Recorder
	token uint64
}

type fileData struct {
	data []byte
}

// NewFS returns an empty file system charging I/O to disk.
func NewFS(disk *sim.Disk) *FS {
	return &FS{disk: disk, files: make(map[string]*fileData)}
}

// Disk returns the simulated disk backing this file system.
func (fs *FS) Disk() *sim.Disk { return fs.disk }

// RouteTo diverts the I/O charges of the named files to rec instead of
// the disk until the returned release function is called. A parallel
// query routes each partition's files to a private sim.Tape, then
// replays the tapes in partition order for deterministic accounting.
//
// Routes nest last-writer-wins: if a second RouteTo claims a file, the
// newer route receives subsequent charges and the older release leaves
// it untouched, so every operation is charged to exactly one sink.
// Consequently, when two actors scan the same files at the same time
// (two queries on one table, or a query overlapping a background
// merge), totals remain exactly-once but the split *between* their
// recorders is approximate — per-query determinism is guaranteed only
// for scans that do not share files with concurrent activity.
func (fs *FS) RouteTo(files []string, rec Recorder) (release func()) {
	fs.mu.Lock()
	if fs.routes == nil {
		fs.routes = make(map[string]routeEntry)
	}
	fs.routeSeq++
	token := fs.routeSeq
	for _, name := range files {
		fs.routes[name] = routeEntry{rec: rec, token: token}
	}
	fs.mu.Unlock()
	routed := append([]string(nil), files...)
	return func() {
		fs.mu.Lock()
		for _, name := range routed {
			if e, ok := fs.routes[name]; ok && e.token == token {
				delete(fs.routes, name)
			}
		}
		fs.mu.Unlock()
	}
}

// route returns the recorder currently claiming name, if any.
func (fs *FS) route(name string) Recorder {
	if e, ok := fs.routes[name]; ok {
		return e.rec
	}
	return nil
}

// Create creates (or truncates) a file and returns an open handle.
// Creating charges the file-open cost.
func (fs *FS) Create(name string) *File {
	fs.mu.Lock()
	fs.files[name] = &fileData{}
	fs.mu.Unlock()
	fs.disk.Open(name)
	return &File{fs: fs, name: name}
}

// Open opens an existing file, charging the file-open cost (Costinit).
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	_, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: open %s: no such file", name)
	}
	fs.disk.Open(name)
	return &File{fs: fs, name: name}, nil
}

// Exists reports whether a file with the given name exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// Remove deletes a file. Removing a missing file is an error.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("storage: remove %s: no such file", name)
	}
	delete(fs.files, name)
	return nil
}

// Rename moves a file to a new name, replacing any existing file.
func (fs *FS) Rename(oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, ok := fs.files[oldName]
	if !ok {
		return fmt.Errorf("storage: rename %s: no such file", oldName)
	}
	delete(fs.files, oldName)
	fs.files[newName] = fd
	return nil
}

// List returns the names of all files, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalSize returns the sum of all file sizes in bytes.
func (fs *FS) TotalSize() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var total int64
	for _, fd := range fs.files {
		total += int64(len(fd.data))
	}
	return total
}

// Size returns the size of the named file, or 0 if it does not exist.
func (fs *FS) Size(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd, ok := fs.files[name]
	if !ok {
		return 0
	}
	return int64(len(fd.data))
}

// File is a handle on one file of an FS. The handle itself carries no
// position; all access is by explicit offset.
type File struct {
	fs   *FS
	name string
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the current size of the file in bytes.
func (f *File) Size() int64 {
	return f.fs.Size(f.name)
}

// ReadAt reads len(p) bytes at offset off, charging the disk. Reading
// past the end of the file is an error.
func (f *File) ReadAt(p []byte, off int64) error {
	f.fs.mu.Lock()
	fd, ok := f.fs.files[f.name]
	if !ok {
		f.fs.mu.Unlock()
		return fmt.Errorf("storage: read %s: no such file", f.name)
	}
	if off < 0 || off+int64(len(p)) > int64(len(fd.data)) {
		f.fs.mu.Unlock()
		return fmt.Errorf("storage: read %s: out of range [%d, %d) of %d",
			f.name, off, off+int64(len(p)), len(fd.data))
	}
	copy(p, fd.data[off:])
	rec := f.fs.route(f.name)
	f.fs.mu.Unlock()
	if rec != nil {
		rec.Read(f.name, off, int64(len(p)))
	} else {
		f.fs.disk.Read(f.name, off, int64(len(p)))
	}
	return nil
}

// WriteAt writes len(p) bytes at offset off, growing the file if the
// write extends past its end, and charges the disk.
func (f *File) WriteAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: write %s: negative offset", f.name)
	}
	f.fs.mu.Lock()
	fd, ok := f.fs.files[f.name]
	if !ok {
		f.fs.mu.Unlock()
		return fmt.Errorf("storage: write %s: no such file", f.name)
	}
	end := off + int64(len(p))
	if end > int64(len(fd.data)) {
		if end > int64(cap(fd.data)) {
			// Grow capacity geometrically so sequential appends are
			// amortized O(1) instead of quadratic.
			newCap := 2 * int64(cap(fd.data))
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, fd.data)
			fd.data = grown
		} else {
			fd.data = fd.data[:end]
		}
	}
	copy(fd.data[off:], p)
	rec := f.fs.route(f.name)
	f.fs.mu.Unlock()
	if rec != nil {
		rec.Write(f.name, off, int64(len(p)))
	} else {
		f.fs.disk.Write(f.name, off, int64(len(p)))
	}
	return nil
}
