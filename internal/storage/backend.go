package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Backend is the byte store underneath an FS. The FS keeps all I/O
// accounting (sim.Disk charges, per-query RouteTo recorders) and
// delegates the bytes themselves here, so the same engine runs over an
// in-memory simulation (MemBackend, the default) or real files on a
// real disk (DiskBackend) without either layer knowing about the
// other.
//
// Semantics every implementation must provide:
//
//   - Create truncates an existing file to zero length.
//   - WriteAt past the current end extends the file; the gap reads as
//     zeroes (holes).
//   - ReadAt of a range not entirely inside the file is an error, not
//     a short read.
//   - Sync makes previously written bytes durable (a no-op for memory
//     backends). Rename and Remove are durable on return for backends
//     that persist anything at all.
type Backend interface {
	// Create creates or truncates the named file.
	Create(name string) error
	// Exists reports whether the named file exists.
	Exists(name string) bool
	// ReadAt fills p from offset off. The range must lie inside the
	// file.
	ReadAt(name string, p []byte, off int64) error
	// WriteAt writes p at offset off, extending the file if needed.
	WriteAt(name string, p []byte, off int64) error
	// Sync durably persists all written bytes of the named file.
	Sync(name string) error
	// Truncate sets the file's size, discarding bytes past it.
	Truncate(name string, size int64) error
	// Remove deletes the named file. Removing a missing file is an
	// error.
	Remove(name string) error
	// Rename moves a file to a new name, replacing any existing file.
	Rename(oldName, newName string) error
	// List returns the names of all files, sorted.
	List() []string
	// Size returns the file's size in bytes and whether it exists.
	Size(name string) (int64, bool)
	// Close releases backend resources (open handles). The backend
	// must not be used afterwards.
	Close() error
}

// MemBackend holds every file in memory. It is the default backend:
// nothing survives the process, which is exactly what the modeled-cost
// experiments want — every run starts cold and deterministic.
type MemBackend struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	data []byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{files: make(map[string]*memFile)}
}

func (b *MemBackend) Create(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.files[name] = &memFile{}
	return nil
}

func (b *MemBackend) Exists(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.files[name]
	return ok
}

func (b *MemBackend) ReadAt(name string, p []byte, off int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	fd, ok := b.files[name]
	if !ok {
		return fmt.Errorf("storage: read %s: no such file", name)
	}
	if off < 0 || off+int64(len(p)) > int64(len(fd.data)) {
		return fmt.Errorf("storage: read %s: out of range [%d, %d) of %d",
			name, off, off+int64(len(p)), len(fd.data))
	}
	copy(p, fd.data[off:])
	return nil
}

func (b *MemBackend) WriteAt(name string, p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: write %s: negative offset", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	fd, ok := b.files[name]
	if !ok {
		return fmt.Errorf("storage: write %s: no such file", name)
	}
	end := off + int64(len(p))
	if end > int64(len(fd.data)) {
		if end > int64(cap(fd.data)) {
			// Grow capacity geometrically so sequential appends are
			// amortized O(1) instead of quadratic.
			newCap := 2 * int64(cap(fd.data))
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, fd.data)
			fd.data = grown
		} else {
			fd.data = fd.data[:end]
		}
	}
	copy(fd.data[off:], p)
	return nil
}

func (b *MemBackend) Sync(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.files[name]; !ok {
		return fmt.Errorf("storage: sync %s: no such file", name)
	}
	return nil
}

func (b *MemBackend) Truncate(name string, size int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	fd, ok := b.files[name]
	if !ok {
		return fmt.Errorf("storage: truncate %s: no such file", name)
	}
	if size < 0 {
		return fmt.Errorf("storage: truncate %s: negative size", name)
	}
	if size <= int64(len(fd.data)) {
		fd.data = fd.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, fd.data)
	fd.data = grown
	return nil
}

func (b *MemBackend) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.files[name]; !ok {
		return fmt.Errorf("storage: remove %s: no such file", name)
	}
	delete(b.files, name)
	return nil
}

func (b *MemBackend) Rename(oldName, newName string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	fd, ok := b.files[oldName]
	if !ok {
		return fmt.Errorf("storage: rename %s: no such file", oldName)
	}
	delete(b.files, oldName)
	b.files[newName] = fd
	return nil
}

func (b *MemBackend) List() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.files))
	for n := range b.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (b *MemBackend) Size(name string) (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fd, ok := b.files[name]
	if !ok {
		return 0, false
	}
	return int64(len(fd.data)), true
}

func (b *MemBackend) Close() error { return nil }

// DiskBackend stores every file under one directory using os.File,
// with the fsync discipline a durable store needs: Sync fsyncs the
// file, and Create/Remove/Rename fsync the directory so the name
// change itself survives a crash.
//
// File names map directly to entries of the root directory; the engine
// only ever uses flat names ("tbl.main.0.heap"), so no sub-directories
// are created.
type DiskBackend struct {
	root string

	mu      sync.Mutex
	handles map[string]*os.File
}

// NewDiskBackend opens (creating if necessary) the directory root and
// returns a backend storing its files there.
func NewDiskBackend(root string) (*DiskBackend, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("storage: disk backend: %w", err)
	}
	return &DiskBackend{root: root, handles: make(map[string]*os.File)}, nil
}

// Root returns the backing directory.
func (b *DiskBackend) Root() string { return b.root }

func (b *DiskBackend) path(name string) string {
	return filepath.Join(b.root, name)
}

// handle returns the cached open handle for name, opening it lazily.
// Callers must hold b.mu.
func (b *DiskBackend) handleLocked(name string) (*os.File, error) {
	if h, ok := b.handles[name]; ok {
		return h, nil
	}
	h, err := os.OpenFile(b.path(name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	b.handles[name] = h
	return h, nil
}

// syncDir fsyncs the backing directory, making renames and unlinks
// durable.
func (b *DiskBackend) syncDir() error {
	d, err := os.Open(b.root)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (b *DiskBackend) Create(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if h, ok := b.handles[name]; ok {
		h.Close()
		delete(b.handles, name)
	}
	h, err := os.OpenFile(b.path(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	b.handles[name] = h
	return b.syncDir()
}

func (b *DiskBackend) Exists(name string) bool {
	_, err := os.Stat(b.path(name))
	return err == nil
}

func (b *DiskBackend) ReadAt(name string, p []byte, off int64) error {
	b.mu.Lock()
	h, err := b.handleLocked(name)
	b.mu.Unlock()
	if err != nil {
		return fmt.Errorf("storage: read %s: no such file", name)
	}
	if _, err := h.ReadAt(p, off); err != nil {
		if errors.Is(err, io.EOF) {
			size, _ := b.Size(name)
			return fmt.Errorf("storage: read %s: out of range [%d, %d) of %d",
				name, off, off+int64(len(p)), size)
		}
		return fmt.Errorf("storage: read %s: %w", name, err)
	}
	return nil
}

func (b *DiskBackend) WriteAt(name string, p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: write %s: negative offset", name)
	}
	b.mu.Lock()
	h, err := b.handleLocked(name)
	b.mu.Unlock()
	if err != nil {
		return fmt.Errorf("storage: write %s: no such file", name)
	}
	if _, err := h.WriteAt(p, off); err != nil {
		return fmt.Errorf("storage: write %s: %w", name, err)
	}
	return nil
}

func (b *DiskBackend) Sync(name string) error {
	b.mu.Lock()
	h, err := b.handleLocked(name)
	b.mu.Unlock()
	if err != nil {
		return fmt.Errorf("storage: sync %s: no such file", name)
	}
	if err := h.Sync(); err != nil {
		return fmt.Errorf("storage: sync %s: %w", name, err)
	}
	return nil
}

func (b *DiskBackend) Truncate(name string, size int64) error {
	b.mu.Lock()
	h, err := b.handleLocked(name)
	b.mu.Unlock()
	if err != nil {
		return fmt.Errorf("storage: truncate %s: no such file", name)
	}
	if err := h.Truncate(size); err != nil {
		return fmt.Errorf("storage: truncate %s: %w", name, err)
	}
	return nil
}

func (b *DiskBackend) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if h, ok := b.handles[name]; ok {
		h.Close()
		delete(b.handles, name)
	}
	if err := os.Remove(b.path(name)); err != nil {
		return fmt.Errorf("storage: remove %s: no such file", name)
	}
	return b.syncDir()
}

func (b *DiskBackend) Rename(oldName, newName string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Close both handles: the old name's handle keeps working after a
	// rename on POSIX but would be cached under a stale key, and the
	// destination's handle would silently keep pointing at the
	// replaced inode.
	for _, n := range []string{oldName, newName} {
		if h, ok := b.handles[n]; ok {
			h.Close()
			delete(b.handles, n)
		}
	}
	if err := os.Rename(b.path(oldName), b.path(newName)); err != nil {
		return fmt.Errorf("storage: rename %s: no such file", oldName)
	}
	return b.syncDir()
}

func (b *DiskBackend) List() []string {
	entries, err := os.ReadDir(b.root)
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func (b *DiskBackend) Size(name string) (int64, bool) {
	st, err := os.Stat(b.path(name))
	if err != nil {
		return 0, false
	}
	return st.Size(), true
}

func (b *DiskBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var first error
	for name, h := range b.handles {
		if err := h.Close(); err != nil && first == nil {
			first = err
		}
		delete(b.handles, name)
	}
	return first
}
