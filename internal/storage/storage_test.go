package storage

import (
	"bytes"
	"testing"

	"upidb/internal/sim"
)

func newTestFS() *FS {
	return NewFS(sim.NewDisk(sim.DefaultParams()))
}

func TestFSCreateOpenRemove(t *testing.T) {
	fs := newTestFS()
	f := fs.Create("a")
	if f.Name() != "a" || f.Size() != 0 {
		t.Fatalf("fresh file: name=%q size=%d", f.Name(), f.Size())
	}
	if _, err := fs.Open("missing"); err == nil {
		t.Fatal("open missing file should fail")
	}
	if !fs.Exists("a") || fs.Exists("b") {
		t.Fatal("Exists wrong")
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a"); err == nil {
		t.Fatal("double remove should fail")
	}
}

func TestFSReadWrite(t *testing.T) {
	fs := newTestFS()
	f := fs.Create("a")
	if err := f.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt([]byte("!!"), 20); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 22 {
		t.Fatalf("size = %d, want 22", f.Size())
	}
	buf := make([]byte, 5)
	if err := f.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("read %q", buf)
	}
	if err := f.ReadAt(make([]byte, 5), 20); err == nil {
		t.Fatal("read past EOF should fail")
	}
	// Hole between 11 and 20 must read as zeroes.
	hole := make([]byte, 9)
	if err := f.ReadAt(hole, 11); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hole, make([]byte, 9)) {
		t.Fatalf("hole not zero: %v", hole)
	}
}

func TestFSRename(t *testing.T) {
	fs := newTestFS()
	f := fs.Create("a")
	if err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a") || !fs.Exists("b") {
		t.Fatal("rename did not move file")
	}
	g, err := fs.Open("b")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := g.ReadAt(buf, 0); err != nil || buf[0] != 'x' {
		t.Fatalf("content lost: %v %q", err, buf)
	}
	if err := fs.Rename("zzz", "y"); err == nil {
		t.Fatal("rename of missing file should fail")
	}
}

func TestFSListAndSizes(t *testing.T) {
	fs := newTestFS()
	fs.Create("b").WriteAt(make([]byte, 10), 0)
	fs.Create("a").WriteAt(make([]byte, 5), 0)
	names := fs.List()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("list = %v", names)
	}
	if fs.TotalSize() != 15 {
		t.Fatalf("total = %d", fs.TotalSize())
	}
	if fs.Size("a") != 5 || fs.Size("nope") != 0 {
		t.Fatal("Size wrong")
	}
}

func TestFSChargesDisk(t *testing.T) {
	disk := sim.NewDisk(sim.DefaultParams())
	fs := NewFS(disk)
	f := fs.Create("a")
	if got := disk.Stats().FileOpens; got != 1 {
		t.Fatalf("create should charge open, got %d", got)
	}
	f.WriteAt(make([]byte, 100), 0)
	if got := disk.Stats().BytesWritten; got != 100 {
		t.Fatalf("written = %d", got)
	}
	f.ReadAt(make([]byte, 50), 0)
	if got := disk.Stats().BytesRead; got != 50 {
		t.Fatalf("read = %d", got)
	}
}

func newTestPager(t *testing.T, pageSize int) *Pager {
	t.Helper()
	fs := newTestFS()
	p, err := NewPager(fs.Create("t"), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPagerAllocReadWrite(t *testing.T) {
	p := newTestPager(t, 128)
	id0, buf0, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id0 != 0 || len(buf0) != 128 {
		t.Fatalf("alloc: id=%d len=%d", id0, len(buf0))
	}
	id1, _, _ := p.Alloc()
	if id1 != 1 || p.NumPages() != 2 {
		t.Fatalf("second alloc id=%d n=%d", id1, p.NumPages())
	}
	data := make([]byte, 128)
	copy(data, "page one")
	if err := p.Write(id1, data); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(id1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:8]) != "page one" {
		t.Fatalf("read back %q", got[:8])
	}
	if _, err := p.Read(99); err == nil {
		t.Fatal("read of unallocated page should fail")
	}
	if err := p.Write(0, make([]byte, 5)); err == nil {
		t.Fatal("short write should fail")
	}
}

func TestPagerPersistsThroughEviction(t *testing.T) {
	p := newTestPager(t, 64)
	if err := p.SetCacheLimit(2); err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		id, buf, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		p.MarkDirty(id)
	}
	if p.CachedPages() > 2 {
		t.Fatalf("cache over limit: %d", p.CachedPages())
	}
	for i := 0; i < n; i++ {
		got, err := p.Read(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("page %d lost: got %d", i, got[0])
		}
	}
}

func TestPagerDropCacheColdReads(t *testing.T) {
	disk := sim.NewDisk(sim.DefaultParams())
	fs := NewFS(disk)
	p, _ := NewPager(fs.Create("t"), 64)
	id, buf, _ := p.Alloc()
	buf[0] = 42
	p.MarkDirty(id)

	// Warm read: served from cache, no disk traffic.
	before := disk.Stats()
	p.Read(id)
	if d := disk.Stats().Sub(before); d.BytesRead != 0 {
		t.Fatalf("warm read hit disk: %+v", d)
	}

	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	if p.CachedPages() != 0 {
		t.Fatal("cache not empty after drop")
	}
	before = disk.Stats()
	got, err := p.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatal("data lost across DropCache")
	}
	if d := disk.Stats().Sub(before); d.BytesRead != 64 {
		t.Fatalf("cold read should hit disk: %+v", d)
	}
}

func TestPagerFlushWritesInPageOrder(t *testing.T) {
	disk := sim.NewDisk(sim.DefaultParams())
	fs := NewFS(disk)
	p, _ := NewPager(fs.Create("t"), 64)
	for i := 0; i < 10; i++ {
		p.Alloc()
	}
	before := disk.Stats()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	d := disk.Stats().Sub(before)
	// 10 contiguous pages: first write seeks, rest are sequential.
	if d.Seeks != 1 || d.SequentialIO != 9 {
		t.Fatalf("flush not sequential: %+v", d)
	}
}

func TestPagerReopenExistingFile(t *testing.T) {
	fs := newTestFS()
	f := fs.Create("t")
	p, _ := NewPager(f, 64)
	id, buf, _ := p.Alloc()
	buf[0] = 7
	p.MarkDirty(id)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	f2, err := fs.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPager(f2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumPages() != 1 {
		t.Fatalf("reopened pager pages = %d", p2.NumPages())
	}
	got, err := p2.Read(0)
	if err != nil || got[0] != 7 {
		t.Fatalf("reopen read: %v %v", err, got[0])
	}

	// Non-page-multiple file must be rejected.
	f3 := fs.Create("bad")
	f3.WriteAt(make([]byte, 65), 0)
	if _, err := NewPager(f3, 64); err == nil {
		t.Fatal("expected error for ragged file")
	}
}
