package storage

import (
	"errors"
	"strings"
	"sync"
)

// ErrInjected is the error every triggered fault returns. Crash tests
// check for it with errors.Is to distinguish injected failures from
// real bugs.
var ErrInjected = errors.New("storage: injected fault")

// FaultOp names a Backend operation a Fault can intercept.
type FaultOp string

const (
	OpCreate   FaultOp = "create"
	OpWrite    FaultOp = "write"
	OpSync     FaultOp = "sync"
	OpTruncate FaultOp = "truncate"
	OpRemove   FaultOp = "remove"
	OpRename   FaultOp = "rename"
)

// Fault describes one failpoint: the Nth operation of the given kind
// whose file name contains Name fails with ErrInjected. For writes,
// PartialBytes of the payload may be let through first, modeling a
// torn write that a crash leaves behind.
type Fault struct {
	// Op is the operation kind to intercept.
	Op FaultOp
	// Name is a substring the file name must contain ("" matches all).
	Name string
	// CountDown skips that many matching operations before failing:
	// 0 fails the first match, 1 the second, and so on.
	CountDown int
	// PartialBytes applies to OpWrite: how many bytes of the failing
	// write reach the backend before the error (0 = none).
	PartialBytes int
}

// FaultBackend wraps a Backend and fails exactly one armed operation,
// simulating the first half of a crash: everything before the
// failpoint reached the store, nothing after it did. It is safe for
// concurrent use; at most one operation triggers per Arm.
type FaultBackend struct {
	inner Backend

	mu        sync.Mutex
	fault     *Fault
	remaining int
	triggered bool
}

// NewFaultBackend wraps inner with no fault armed.
func NewFaultBackend(inner Backend) *FaultBackend {
	return &FaultBackend{inner: inner}
}

// Arm installs the fault, replacing any previous one and clearing the
// triggered flag.
func (b *FaultBackend) Arm(f Fault) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fault = &f
	b.remaining = f.CountDown
	b.triggered = false
}

// Disarm removes any armed fault.
func (b *FaultBackend) Disarm() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fault = nil
}

// Triggered reports whether the armed fault has fired.
func (b *FaultBackend) Triggered() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.triggered
}

// check decides whether this operation fires the fault. On fire it
// returns (true, partialBytes).
func (b *FaultBackend) check(op FaultOp, name string) (bool, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := b.fault
	if f == nil || f.Op != op || !strings.Contains(name, f.Name) {
		return false, 0
	}
	if b.remaining > 0 {
		b.remaining--
		return false, 0
	}
	b.fault = nil
	b.triggered = true
	return true, f.PartialBytes
}

func (b *FaultBackend) Create(name string) error {
	if fire, _ := b.check(OpCreate, name); fire {
		return ErrInjected
	}
	return b.inner.Create(name)
}

func (b *FaultBackend) Exists(name string) bool { return b.inner.Exists(name) }

func (b *FaultBackend) ReadAt(name string, p []byte, off int64) error {
	return b.inner.ReadAt(name, p, off)
}

func (b *FaultBackend) WriteAt(name string, p []byte, off int64) error {
	if fire, partial := b.check(OpWrite, name); fire {
		if partial > 0 {
			if partial > len(p) {
				partial = len(p)
			}
			// Torn write: a prefix lands, then the "crash".
			_ = b.inner.WriteAt(name, p[:partial], off)
		}
		return ErrInjected
	}
	return b.inner.WriteAt(name, p, off)
}

func (b *FaultBackend) Sync(name string) error {
	if fire, _ := b.check(OpSync, name); fire {
		return ErrInjected
	}
	return b.inner.Sync(name)
}

func (b *FaultBackend) Truncate(name string, size int64) error {
	if fire, _ := b.check(OpTruncate, name); fire {
		return ErrInjected
	}
	return b.inner.Truncate(name, size)
}

func (b *FaultBackend) Remove(name string) error {
	if fire, _ := b.check(OpRemove, name); fire {
		return ErrInjected
	}
	return b.inner.Remove(name)
}

func (b *FaultBackend) Rename(oldName, newName string) error {
	if fire, _ := b.check(OpRename, oldName+" "+newName); fire {
		return ErrInjected
	}
	return b.inner.Rename(oldName, newName)
}

func (b *FaultBackend) List() []string { return b.inner.List() }

func (b *FaultBackend) Size(name string) (int64, bool) { return b.inner.Size(name) }

func (b *FaultBackend) Close() error { return b.inner.Close() }
