package keyenc

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestStringRoundTrip(t *testing.T) {
	cases := []string{"", "a", "MIT", "Brown", "U. Tokyo", "a\x00b", "\x00", "\x00\xff", strings.Repeat("x", 300)}
	for _, s := range cases {
		enc := AppendString(nil, s)
		got, rest, err := DecodeString(enc)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if got != s || len(rest) != 0 {
			t.Fatalf("%q round-tripped to %q (rest %d)", s, got, len(rest))
		}
	}
}

func TestStringOrderPreserving(t *testing.T) {
	err := quick.Check(func(a, b string) bool {
		ea, eb := AppendString(nil, a), AppendString(nil, b)
		cmpStr := strings.Compare(a, b)
		cmpEnc := bytes.Compare(ea, eb)
		return sign(cmpStr) == sign(cmpEnc)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStringComponentBoundary checks composites compare component-wise:
// ("ab","c") must sort before ("abc","") iff "ab" < "abc".
func TestStringComponentBoundary(t *testing.T) {
	a := AppendString(AppendString(nil, "ab"), "c")
	b := AppendString(AppendString(nil, "abc"), "")
	if bytes.Compare(a, b) >= 0 {
		t.Fatal("component boundary broken: (ab,c) should sort before (abc,)")
	}
	// Embedded NULs must not break the boundary either.
	c := AppendString(AppendString(nil, "a\x00"), "z")
	d := AppendString(AppendString(nil, "a"), "\x00z")
	if bytes.Compare(c, d) <= 0 {
		t.Fatal(`("a\x00","z") should sort after ("a","\x00z")`)
	}
}

func TestUint64RoundTripAndOrder(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		ea, eb := AppendUint64(nil, a), AppendUint64(nil, b)
		da, rest, err := DecodeUint64(ea)
		if err != nil || da != a || len(rest) != 0 {
			return false
		}
		return sign(bytes.Compare(ea, eb)) == sign(cmpU64(a, b))
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeUint64([]byte{1, 2}); err == nil {
		t.Fatal("short decode should fail")
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	cases := []float64{0, -0.0, 1, -1, 0.5, 0.05, 0.95, math.Inf(1), math.Inf(-1),
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64}
	for _, f := range cases {
		got, rest, err := DecodeFloat64(AppendFloat64(nil, f))
		if err != nil || len(rest) != 0 {
			t.Fatalf("%v: %v", f, err)
		}
		if got != f && !(f == 0 && got == 0) { // -0.0 == 0.0 is fine
			t.Fatalf("%v round-tripped to %v", f, got)
		}
		gotD, _, err := DecodeFloat64Desc(AppendFloat64Desc(nil, f))
		if err != nil || (gotD != f && !(f == 0 && gotD == 0)) {
			t.Fatalf("desc %v round-tripped to %v (%v)", f, gotD, err)
		}
	}
}

func TestFloat64Order(t *testing.T) {
	err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		asc := bytes.Compare(AppendFloat64(nil, a), AppendFloat64(nil, b))
		desc := bytes.Compare(AppendFloat64Desc(nil, a), AppendFloat64Desc(nil, b))
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		if a == b { // covers -0.0 vs 0.0: equal floats may encode differently
			return true
		}
		return sign(asc) == want && sign(desc) == -want
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestProbDescOrder pins the property the UPI relies on: probabilities
// encoded descending sort highest-first.
func TestProbDescOrder(t *testing.T) {
	probs := []float64{0.95, 0.72, 0.48, 0.32, 0.18, 0.05}
	var encs [][]byte
	for _, p := range probs {
		encs = append(encs, AppendFloat64Desc(nil, p))
	}
	if !sort.SliceIsSorted(encs, func(i, j int) bool { return bytes.Compare(encs[i], encs[j]) < 0 }) {
		t.Fatal("descending prob encodings are not ascending in byte order")
	}
}

func TestCompositeKeyOrder(t *testing.T) {
	// The paper's Table 2 ordering: by institution ASC, then prob DESC.
	type row struct {
		inst string
		prob float64
	}
	want := []row{
		{"Brown", 0.72}, {"Brown", 0.48}, {"MIT", 0.95}, {"MIT", 0.18},
		{"U. Tokyo", 0.32}, {"UCB", 0.05},
	}
	enc := func(r row) []byte {
		return AppendFloat64Desc(AppendString(nil, r.inst), r.prob)
	}
	for i := 1; i < len(want); i++ {
		if bytes.Compare(enc(want[i-1]), enc(want[i])) >= 0 {
			t.Fatalf("rows %d and %d out of order: %+v %+v", i-1, i, want[i-1], want[i])
		}
	}
}

func TestPrefixEnd(t *testing.T) {
	p := AppendString(nil, "MIT")
	end := PrefixEnd(p)
	if end == nil {
		t.Fatal("nil end")
	}
	inRange := AppendFloat64Desc(AppendString(nil, "MIT"), 0.5)
	if !(bytes.Compare(p, inRange) <= 0 && bytes.Compare(inRange, end) < 0) {
		t.Fatal("MIT key not within [prefix, end)")
	}
	outOfRange := AppendFloat64Desc(AppendString(nil, "UCB"), 0.99)
	if bytes.Compare(outOfRange, end) < 0 {
		t.Fatal("UCB key inside MIT range")
	}
	if PrefixEnd([]byte{0xFF, 0xFF}) != nil {
		t.Fatal("all-0xFF prefix has no end")
	}
	if got := PrefixEnd([]byte{0x01, 0xFF}); !bytes.Equal(got, []byte{0x02}) {
		t.Fatalf("PrefixEnd(01 FF) = %v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeString([]byte{'a', 'b'}); err == nil {
		t.Fatal("unterminated string should fail")
	}
	if _, _, err := DecodeString([]byte{0x00}); err == nil {
		t.Fatal("truncated escape should fail")
	}
	if _, _, err := DecodeString([]byte{0x00, 0x7F}); err == nil {
		t.Fatal("bad escape should fail")
	}
	if _, _, err := DecodeFloat64([]byte{1}); err == nil {
		t.Fatal("short float should fail")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
