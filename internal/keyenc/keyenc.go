// Package keyenc implements order-preserving binary key encoding.
//
// UPI heap files and cutoff indexes are B+Trees keyed by the composite
// {attribute value ASC, probability DESC, tuple ID ASC} (paper
// Section 2: "a B+Tree indexed by {Institution (ASC) and probability
// (DESC)}"). B+Trees compare raw bytes, so every component must be
// encoded such that bytes.Compare on the encodings agrees with the
// desired component order, and components must be self-delimiting so
// composites compare component-wise.
package keyenc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// String escape scheme: 0x00 inside the string is escaped as
// {0x00, 0xFF}; the string is terminated by {0x00, 0x00}. Any string
// that is a prefix of another sorts first, and no encoded string is a
// prefix of a different encoded string's component boundary.
const (
	strEscape byte = 0x00
	strEscTag byte = 0xFF
	strTerm   byte = 0x00
)

// AppendString appends the ascending order-preserving encoding of s.
func AppendString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == strEscape {
			dst = append(dst, strEscape, strEscTag)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, strEscape, strTerm)
}

// DecodeString decodes a string encoded by AppendString from the front
// of b, returning the string and the remaining bytes.
func DecodeString(b []byte) (string, []byte, error) {
	var out []byte
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c != strEscape {
			out = append(out, c)
			continue
		}
		if i+1 >= len(b) {
			return "", nil, fmt.Errorf("keyenc: truncated string escape")
		}
		switch b[i+1] {
		case strTerm:
			return string(out), b[i+2:], nil
		case strEscTag:
			out = append(out, strEscape)
			i++
		default:
			return "", nil, fmt.Errorf("keyenc: bad string escape 0x%02x", b[i+1])
		}
	}
	return "", nil, fmt.Errorf("keyenc: unterminated string")
}

// AppendUint64 appends the ascending encoding of v (8 bytes, big endian).
func AppendUint64(dst []byte, v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return append(dst, buf[:]...)
}

// DecodeUint64 decodes a uint64 from the front of b.
func DecodeUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("keyenc: short uint64: %d bytes", len(b))
	}
	return binary.BigEndian.Uint64(b[:8]), b[8:], nil
}

// floatBits maps a float64 to a uint64 whose unsigned order matches
// the float order: flip the sign bit for non-negative values, flip all
// bits for negative ones. NaN is rejected by callers that care; here
// it maps above +Inf (sign 0, max exponent, nonzero mantissa).
func floatBits(f float64) uint64 {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | (1 << 63)
}

func floatFromBits(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// AppendFloat64 appends the ascending encoding of f (8 bytes).
func AppendFloat64(dst []byte, f float64) []byte {
	return AppendUint64(dst, floatBits(f))
}

// DecodeFloat64 decodes an ascending float64 from the front of b.
func DecodeFloat64(b []byte) (float64, []byte, error) {
	u, rest, err := DecodeUint64(b)
	if err != nil {
		return 0, nil, err
	}
	return floatFromBits(u), rest, nil
}

// AppendFloat64Desc appends the DESCENDING encoding of f: larger
// floats sort earlier. UPI keys use this for the probability component
// so that within one attribute value, high-probability duplicates come
// first and a PTQ scan can stop at the query threshold.
func AppendFloat64Desc(dst []byte, f float64) []byte {
	return AppendUint64(dst, ^floatBits(f))
}

// DecodeFloat64Desc decodes a descending float64 from the front of b.
func DecodeFloat64Desc(b []byte) (float64, []byte, error) {
	u, rest, err := DecodeUint64(b)
	if err != nil {
		return 0, nil, err
	}
	return floatFromBits(^u), rest, nil
}

// Compare is bytes.Compare, re-exported so index code does not import
// bytes just for key comparison.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// PrefixEnd returns the smallest key strictly greater than every key
// having the given prefix, or nil if no such key exists (prefix is all
// 0xFF). It is used to bound range scans over one attribute value.
func PrefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
