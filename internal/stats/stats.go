// Package stats implements the engine's self-maintaining statistics
// subsystem: a concurrency-safe Catalog of per-attribute histograms
// (paper Section 6.1) that stays fresh without caller intervention.
//
// Three maintenance channels feed a catalog:
//
//   - Incremental deltas. Every Insert applies the tuple's histogram
//     contribution immediately (AddTuple); a Delete of a still-buffered
//     insert subtracts it exactly (RemoveTuple).
//   - Unabsorbed deltas. A Delete of an on-disk tuple cannot be
//     subtracted — the engine only has the ID, not the distributions —
//     and an Insert that supersedes an on-disk version leaves the old
//     version counted. Both are tallied (NoteDeleteID, and AddTuple's
//     own duplicate-ID detection) and surface as *staleness*: the
//     ratio of unabsorbed deltas to tracked tuples.
//   - Merge re-derivation. A merge already reads every live entry of
//     every partition; the store feeds those entries to a Rebuild
//     handle, which re-derives all histograms from scratch for free and
//     atomically replaces the catalog's state on commit, resetting
//     staleness to zero.
//
// Query routing trusts the catalog while Staleness() stays at or below
// the configured threshold; beyond it — or before the catalog has ever
// been seeded — the caller falls back to heuristic routing until the
// next merge re-derivation.
package stats

import (
	"fmt"
	"sync"

	"upidb/internal/histogram"
	"upidb/internal/tuple"
)

// DefaultStaleness is the default staleness threshold: routing trusts
// the catalog while unabsorbed deltas stay at or below 10% of tracked
// tuples.
const DefaultStaleness = 0.1

// Catalog owns the per-attribute histograms of one table and tracks
// how stale they are. All methods are safe for concurrent use.
type Catalog struct {
	primary   string
	attrs     []string // primary first, then secondary attributes
	threshold float64

	mu sync.Mutex
	// hists holds one histogram per attribute; the map value is never
	// nil. Histograms are internally synchronized, so handing the
	// pointer to a concurrent reader (the planner) is safe even while
	// deltas keep applying.
	hists map[string]*histogram.Histogram
	// seeded marks attributes whose histogram describes the complete
	// table content (via Seed, a merge re-derivation, or because the
	// table was born empty) rather than only the deltas seen so far.
	seeded map[string]bool
	// ids tracks the tuple IDs currently absorbed, so an insert that
	// supersedes an already-counted version is detected as an
	// unabsorbable update rather than silently double-counted.
	ids map[uint64]bool
	// unabsorbed counts deltas the histograms could not absorb —
	// deletes of on-disk tuples whose content is unknown, and old
	// versions superseded by updates.
	unabsorbed int64
	// rebuilds counts committed merge re-derivations.
	rebuilds int
	// rb is the in-flight merge re-derivation, if any.
	rb *Rebuild
	// gen is the catalog generation: it advances whenever the
	// statistics are wholesale replaced (Seed, merge re-derivation) or
	// the staleness ratio crosses the freshness threshold in either
	// direction. Incremental deltas that keep the catalog on the same
	// side of the threshold do not advance it — a plan costed from this
	// catalog stays valid for exactly one generation.
	gen uint64
}

// NewCatalog creates a catalog for a table clustered on primary with
// the given secondary attributes. threshold is the staleness ratio up
// to which Fresh reports true (0 means DefaultStaleness; negative
// disables freshness entirely, so automatic planner routing never
// engages). known marks the catalog as seeded from the start — correct
// for a table created empty, where every future change flows through
// the delta hooks; pass false when the table's current content is
// unknown (reopened files), leaving the catalog stale until the first
// merge re-derives it.
func NewCatalog(primary string, secondary []string, threshold float64, known bool) *Catalog {
	if threshold == 0 {
		threshold = DefaultStaleness
	}
	c := &Catalog{
		primary:   primary,
		attrs:     append([]string{primary}, secondary...),
		threshold: threshold,
		hists:     make(map[string]*histogram.Histogram),
		seeded:    make(map[string]bool),
		ids:       make(map[uint64]bool),
	}
	for _, a := range c.attrs {
		c.hists[a] = histogram.New(a)
		c.seeded[a] = known
	}
	return c
}

// Attrs returns the attributes the catalog tracks, primary first.
func (c *Catalog) Attrs() []string { return append([]string(nil), c.attrs...) }

// Threshold returns the staleness threshold Fresh compares against.
func (c *Catalog) Threshold() float64 { return c.threshold }

// Seed replaces the catalog's content with histograms built from a
// representative sample, the manual BuildStats path. With no explicit
// attrs every tracked attribute is seeded; with a subset, the named
// attributes are seeded and the rest are reset to unseeded (their old
// content no longer matches the sample). Unknown attributes error.
func (c *Catalog) Seed(sample []*tuple.Tuple, attrs ...string) error {
	if len(attrs) == 0 {
		attrs = c.attrs
	}
	want := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if _, ok := c.hists[a]; !ok {
			return fmt.Errorf("stats: catalog does not track attribute %q", a)
		}
		want[a] = true
	}
	built := make(map[string]*histogram.Histogram, len(attrs))
	for a := range want {
		h, err := histogram.Build(a, sample)
		if err != nil {
			return err
		}
		built[a] = h
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range c.attrs {
		if want[a] {
			c.hists[a] = built[a]
			c.seeded[a] = true
		} else {
			c.hists[a] = histogram.New(a)
			c.seeded[a] = false
		}
	}
	c.ids = make(map[uint64]bool, len(sample))
	for _, t := range sample {
		c.ids[t.ID] = true
	}
	c.unabsorbed = 0
	c.gen++
	return nil
}

// Generation returns the catalog generation number. It is monotonic:
// it advances on Seed, on every committed merge re-derivation, and
// whenever an incremental delta moves the staleness ratio across the
// freshness threshold. A consumer that costed a plan at generation g
// may keep serving it while Generation() == g; any other value means
// the statistics the plan was derived from are gone.
func (c *Catalog) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// freshSideLocked reports which side of the freshness threshold the
// catalog is on; deltas that flip it advance the generation.
func (c *Catalog) freshSideLocked() bool {
	return c.threshold >= 0 && c.stalenessLocked() <= c.threshold
}

// Histogram returns the live histogram for attr, or nil when the
// catalog has no seeded statistics for it. The returned histogram is
// internally synchronized and keeps absorbing deltas after the call.
func (c *Catalog) Histogram(attr string) *histogram.Histogram {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.seeded[attr] {
		return nil
	}
	return c.hists[attr]
}

// encodedLen returns the tuple's encoded payload size, computed once
// per delta and shared by every per-attribute histogram.
func encodedLen(t *tuple.Tuple) int64 { return int64(len(tuple.Encode(t))) }

// AddTuple absorbs one inserted tuple into every tracked histogram.
// Inserting an ID the catalog already counts is an update whose old
// version cannot be subtracted (its content is on disk, unknown here),
// so it additionally counts as one unabsorbed delta — exactly like a
// delete of an on-disk tuple — until a merge re-derivation clears it.
func (c *Catalog) AddTuple(t *tuple.Tuple) {
	enc := encodedLen(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	wasFresh := c.freshSideLocked()
	defer c.noteThresholdLocked(wasFresh)
	if c.ids[t.ID] {
		c.unabsorbed++
		if c.rb != nil {
			// The superseded version is (almost certainly) in the merge
			// snapshot being fed, so the rebuilt histograms carry the
			// same phantom.
			c.rb.unabsorbed++
		}
	}
	c.ids[t.ID] = true
	if c.rb != nil {
		c.rb.ids[t.ID] = true
	}
	for _, a := range c.attrs {
		c.hists[a].AddSized(t, enc, +1)
		if c.rb != nil {
			c.rb.hists[a].AddSized(t, enc, +1)
		}
	}
}

// RemoveTuple subtracts one tuple whose full content is known (a
// delete that cancelled a still-buffered insert) — the exact inverse
// of AddTuple. IDs the catalog does not track are ignored: after a
// Seed whose sample omitted a still-buffered tuple, the histograms
// never absorbed it, and subtracting it anyway would drive buckets
// negative.
func (c *Catalog) RemoveTuple(t *tuple.Tuple) {
	enc := encodedLen(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.ids[t.ID] {
		return
	}
	wasFresh := c.freshSideLocked()
	defer c.noteThresholdLocked(wasFresh)
	delete(c.ids, t.ID)
	for _, a := range c.attrs {
		c.hists[a].AddSized(t, enc, -1)
	}
	if c.rb != nil {
		if c.rb.ids[t.ID] {
			delete(c.rb.ids, t.ID)
			for _, a := range c.attrs {
				c.rb.hists[a].AddSized(t, enc, -1)
			}
		}
	}
}

// NoteDeleteID records the deletion of a tuple known only by ID. If
// the catalog currently tracks the ID, its histogram contribution
// becomes an unabsorbed delta (the content is on disk, unknown here)
// until a merge re-derivation clears it; deleting an untracked ID —
// nonexistent, already deleted, or already superseded by an update —
// counts nothing.
func (c *Catalog) NoteDeleteID(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.ids[id] {
		return
	}
	wasFresh := c.freshSideLocked()
	defer c.noteThresholdLocked(wasFresh)
	delete(c.ids, id)
	c.unabsorbed++
	if c.rb != nil {
		// The deleted version is in the merge snapshot being fed, so
		// the rebuilt histograms carry the same phantom.
		delete(c.rb.ids, id)
		c.rb.unabsorbed++
	}
}

// noteThresholdLocked advances the generation when a delta moved the
// staleness ratio across the freshness threshold, in either direction.
func (c *Catalog) noteThresholdLocked(wasFresh bool) {
	if c.freshSideLocked() != wasFresh {
		c.gen++
	}
}

// Staleness returns the unabsorbed-delta ratio: unabsorbed deltas over
// tracked tuples. An empty, fully-absorbed catalog is 0 (fresh); a
// catalog holding nothing but unabsorbed deltas tends to 1.
func (c *Catalog) Staleness() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stalenessLocked()
}

func (c *Catalog) stalenessLocked() float64 {
	if c.unabsorbed == 0 {
		return 0
	}
	total := c.hists[c.primary].TotalTuples()
	return float64(c.unabsorbed) / float64(total+c.unabsorbed)
}

// Fresh reports whether the catalog's statistics for attr are complete
// (seeded) and within the staleness threshold — the gate for automatic
// planner routing.
func (c *Catalog) Fresh(attr string) bool {
	if c.threshold < 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seeded[attr] && c.stalenessLocked() <= c.threshold
}

// Seeded reports whether attr has complete statistics, regardless of
// staleness.
func (c *Catalog) Seeded(attr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seeded[attr]
}

// Unabsorbed returns the current unabsorbed-delta count.
func (c *Catalog) Unabsorbed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.unabsorbed
}

// TotalTuples returns the number of tuples the primary histogram
// currently tracks.
func (c *Catalog) TotalTuples() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hists[c.primary].TotalTuples()
}

// Rebuilds returns the number of committed merge re-derivations.
func (c *Catalog) Rebuilds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rebuilds
}

// Rebuild is one in-flight re-derivation, fed by a merge's whole-heap
// scan. Between BeginRebuild and Commit, concurrent deltas apply to
// both the live histograms and the rebuild's, so nothing inserted
// while the merge builds is lost; the feed itself supplies exactly the
// live tuples of the merge snapshot. A nil *Rebuild is a valid no-op
// receiver, so callers without a catalog need no branching.
type Rebuild struct {
	c     *Catalog
	hists map[string]*histogram.Histogram
	// seen dedupes the merge feed (one heap entry per alternative);
	// ids additionally collects IDs added by concurrent deltas, so the
	// committed catalog's ID set is feed ∪ deltas.
	seen       map[uint64]bool
	ids        map[uint64]bool
	unabsorbed int64
}

// BeginRebuild starts a re-derivation. It must be called under the
// same critical section that snapshots the merge's source partitions,
// so the feed and the concurrently-applied deltas partition cleanly:
// every tuple is either in the snapshot (fed by the merge) or inserted
// after it (applied by AddTuple) — never both.
func (c *Catalog) BeginRebuild() *Rebuild {
	rb := &Rebuild{
		c:     c,
		hists: make(map[string]*histogram.Histogram, len(c.attrs)),
		seen:  make(map[uint64]bool),
		ids:   make(map[uint64]bool),
	}
	for _, a := range c.attrs {
		rb.hists[a] = histogram.New(a)
	}
	c.mu.Lock()
	c.rb = rb
	c.mu.Unlock()
	return rb
}

// FeedTuple absorbs one live tuple of the merge snapshot, deduplicated
// by ID (heap scans yield one entry per alternative).
func (r *Rebuild) FeedTuple(t *tuple.Tuple) {
	if r == nil || r.seen[t.ID] {
		return
	}
	r.feed(t, encodedLen(t))
}

// FeedEntry absorbs one heap entry (encoded tuple) of the merge's
// k-way merge stream, deduplicated by ID; decoding is skipped for IDs
// already fed, and the entry's own length serves as the encoded size
// (no re-serialization). Decode failures are ignored — the merge
// itself validates entries, and statistics tolerate a dropped tuple.
func (r *Rebuild) FeedEntry(id uint64, enc []byte) {
	if r == nil || r.seen[id] {
		return
	}
	t, err := tuple.Decode(enc)
	if err != nil {
		return
	}
	r.feed(t, int64(len(enc)))
}

func (r *Rebuild) feed(t *tuple.Tuple, enc int64) {
	r.seen[t.ID] = true
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	for _, a := range r.c.attrs {
		r.hists[a].AddSized(t, enc, +1)
	}
}

// Commit atomically replaces the catalog's histograms with the rebuilt
// ones, marks every attribute seeded and resets staleness to the
// deltas that arrived since BeginRebuild. A superseded or nil handle
// commits as a no-op.
func (r *Rebuild) Commit() {
	if r == nil {
		return
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	if r.c.rb != r {
		return
	}
	r.c.rb = nil
	r.c.hists = r.hists
	for _, a := range r.c.attrs {
		r.c.seeded[a] = true
	}
	for id := range r.ids {
		r.seen[id] = true
	}
	r.c.ids = r.seen
	r.c.unabsorbed = r.unabsorbed
	r.c.rebuilds++
	r.c.gen++
}

// Abort discards the rebuild (the merge failed); the live histograms
// keep their pre-merge state and staleness. Nil-safe.
func (r *Rebuild) Abort() {
	if r == nil {
		return
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	if r.c.rb == r {
		r.c.rb = nil
	}
}
