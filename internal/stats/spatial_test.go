package stats

import (
	"fmt"
	"math"
	"testing"

	"upidb/internal/prob"
	"upidb/internal/tuple"
)

// gridObs builds one observation at (x, y) with a single-alternative
// segment value.
func gridObs(id uint64, x, y float64, seg string, p float64) *tuple.Observation {
	d, err := prob.NewDiscrete([]prob.Alternative{
		{Value: seg, Prob: p},
		{Value: "other", Prob: 1 - p},
	})
	if err != nil {
		panic(err)
	}
	return &tuple.Observation{
		ID:      id,
		Loc:     prob.ConstrainedGaussian{Center: prob.Point{X: x, Y: y}, Sigma: 3, Bound: 9},
		Segment: d,
	}
}

func TestSpatialCatalogCircleEstimates(t *testing.T) {
	var obs []*tuple.Observation
	id := uint64(1)
	// A 40×40 uniform lattice over [0, 1000)².
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			obs = append(obs, gridObs(id, float64(i)*25, float64(j)*25, fmt.Sprintf("s%d", i%5), 0.6))
			id++
		}
	}
	c := NewSpatialCatalog()
	if c.Seeded() || c.Fresh() {
		t.Fatal("new catalog must be unseeded")
	}
	if c.SegmentHistogram() != nil {
		t.Fatal("unseeded catalog must return a nil segment histogram")
	}
	c.Seed(obs)
	if !c.Seeded() || !c.Fresh() {
		t.Fatal("seeded catalog must be fresh")
	}
	if got := c.TotalObservations(); got != int64(len(obs)) {
		t.Fatalf("TotalObservations %d, want %d", got, len(obs))
	}

	// Full coverage is exact.
	if got := c.EstimateCircleCandidates(prob.Point{X: 500, Y: 500}, 5000); got != float64(len(obs)) {
		t.Fatalf("full-coverage estimate %v, want %d", got, len(obs))
	}
	// A quarter-extent query MBR should estimate roughly a quarter of
	// the centroids (uniform data, fixed grid: allow 25% slack).
	got := c.EstimateCircleCandidates(prob.Point{X: 250, Y: 250}, 250)
	brute := 0
	for _, o := range obs {
		cen := o.Loc.MBR().Center()
		if cen.X >= 0 && cen.X <= 500 && cen.Y >= 0 && cen.Y <= 500 {
			brute++
		}
	}
	if math.Abs(got-float64(brute)) > 0.25*float64(brute) {
		t.Fatalf("quarter estimate %v, brute %d", got, brute)
	}
	// Far outside the extent: nothing.
	if got := c.EstimateCircleCandidates(prob.Point{X: 1e6, Y: 1e6}, 10); got != 0 {
		t.Fatalf("out-of-extent estimate %v, want 0", got)
	}
}

func TestSpatialCatalogSegmentEstimatesAndDeltas(t *testing.T) {
	var obs []*tuple.Observation
	for i := uint64(1); i <= 200; i++ {
		obs = append(obs, gridObs(i, float64(i), float64(i), "busy", 0.8))
	}
	c := NewSpatialCatalog()
	c.Seed(obs)
	if got := c.SegmentHistogram().EstimateEntries("busy", 0.5); math.Abs(got-200) > 5 {
		t.Fatalf("busy@0.5 estimate %v, want ~200", got)
	}
	if got := c.SegmentHistogram().EstimateEntries("busy", 0.9); got > 10 {
		t.Fatalf("busy@0.9 estimate %v, want ~0", got)
	}
	if got := c.SegmentHistogram().EstimateEntries("absent", 0); got != 0 {
		t.Fatalf("absent estimate %v, want 0", got)
	}
	// Insert deltas keep both histograms fresh.
	before := c.EstimateCircleCandidates(prob.Point{X: 100, Y: 100}, 150)
	for i := uint64(1000); i < 1050; i++ {
		c.AddObservation(gridObs(i, 100, 100, "busy", 0.8))
	}
	if got := c.TotalObservations(); got != 250 {
		t.Fatalf("TotalObservations after deltas %d, want 250", got)
	}
	after := c.EstimateCircleCandidates(prob.Point{X: 100, Y: 100}, 150)
	if after < before+40 {
		t.Fatalf("grid did not absorb deltas: before %v after %v", before, after)
	}
	if got := c.SegmentHistogram().EstimateEntries("busy", 0.5); math.Abs(got-250) > 6 {
		t.Fatalf("busy@0.5 after deltas %v, want ~250", got)
	}
	// Out-of-extent inserts clamp into the border cells but are still
	// counted.
	c.AddObservation(gridObs(2000, 1e6, 1e6, "busy", 0.8))
	if got := c.EstimateCircleCandidates(prob.Point{X: 100, Y: 100}, 1e7); got != 251 {
		t.Fatalf("full-coverage after clamped insert %v, want 251", got)
	}
}

func TestSpatialCatalogEmptySeed(t *testing.T) {
	c := NewSpatialCatalog()
	c.Seed(nil)
	if !c.Fresh() {
		t.Fatal("an empty table's catalog is complete")
	}
	if got := c.EstimateCircleCandidates(prob.Point{}, 100); got != 0 {
		t.Fatalf("empty estimate %v", got)
	}
	// The first insert establishes the extent.
	c.AddObservation(gridObs(1, 50, 50, "s", 0.9))
	if got := c.EstimateCircleCandidates(prob.Point{X: 50, Y: 50}, 10); got != 1 {
		t.Fatalf("estimate after first insert %v, want 1", got)
	}
}
