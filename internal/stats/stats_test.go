package stats

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"upidb/internal/histogram"
	"upidb/internal/prob"
	"upidb/internal/tuple"
)

func mkTuple(t *testing.T, id uint64, x, y string, p float64) *tuple.Tuple {
	t.Helper()
	xd, err := prob.NewDiscrete([]prob.Alternative{{Value: x, Prob: p}, {Value: x + "'", Prob: (1 - p) * 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	yd, err := prob.NewDiscrete([]prob.Alternative{{Value: y, Prob: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return &tuple.Tuple{ID: id, Existence: 0.9, Unc: []tuple.UncField{
		{Name: "X", Dist: xd}, {Name: "Y", Dist: yd},
	}}
}

// agree fails unless the catalog's histogram for attr matches a
// from-scratch Build over truth, on totals and probed estimates.
func agree(t *testing.T, c *Catalog, attr string, truth []*tuple.Tuple, values []string) {
	t.Helper()
	want, err := histogram.Build(attr, truth)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Histogram(attr)
	if got == nil {
		t.Fatalf("no seeded histogram for %q", attr)
	}
	if got.TotalTuples() != want.TotalTuples() || got.TotalEntries() != want.TotalEntries() ||
		got.DistinctValues() != want.DistinctValues() {
		t.Fatalf("%s totals: tuples %d/%d entries %d/%d distinct %d/%d", attr,
			got.TotalTuples(), want.TotalTuples(), got.TotalEntries(), want.TotalEntries(),
			got.DistinctValues(), want.DistinctValues())
	}
	for _, v := range values {
		for _, qt := range []float64{0, 0.2, 0.5} {
			if g, w := got.EstimateEntries(v, qt), want.EstimateEntries(v, qt); math.Abs(g-w) > 1e-9 {
				t.Fatalf("%s EstimateEntries(%q, %v): %v vs %v", attr, v, qt, g, w)
			}
		}
	}
}

func TestCatalogDeltasMatchBuild(t *testing.T) {
	c := NewCatalog("X", []string{"Y"}, 0, true)
	var truth []*tuple.Tuple
	var values []string
	for i := 0; i < 200; i++ {
		tup := mkTuple(t, uint64(i+1), fmt.Sprintf("v%d", i%11), fmt.Sprintf("y%d", i%5), 0.3+float64(i%60)/100)
		truth = append(truth, tup)
		c.AddTuple(tup)
	}
	for i := 0; i < 11; i++ {
		values = append(values, fmt.Sprintf("v%d", i))
	}
	// Cancel a few inserts exactly.
	for i := 0; i < 20; i += 3 {
		c.RemoveTuple(truth[i])
	}
	var left []*tuple.Tuple
	for i, tup := range truth {
		if i < 20 && i%3 == 0 {
			continue
		}
		left = append(left, tup)
	}
	agree(t, c, "X", left, values)
	agree(t, c, "Y", left, []string{"y0", "y3"})
	if s := c.Staleness(); s != 0 {
		t.Fatalf("fully absorbed catalog reports staleness %v", s)
	}
	if !c.Fresh("X") || !c.Fresh("Y") {
		t.Fatal("fresh catalog not trusted")
	}
}

func TestStalenessAndFreshness(t *testing.T) {
	c := NewCatalog("X", nil, 0.1, true)
	for i := 0; i < 100; i++ {
		c.AddTuple(mkTuple(t, uint64(i+1), "a", "y", 0.5))
	}
	if !c.Fresh("X") {
		t.Fatal("no deltas: should be fresh")
	}
	for id := uint64(1); id <= 5; id++ {
		c.NoteDeleteID(id)
	}
	if s := c.Staleness(); math.Abs(s-5.0/105.0) > 1e-9 {
		t.Fatalf("staleness: %v", s)
	}
	if !c.Fresh("X") {
		t.Fatal("5% unabsorbed should still be fresh at threshold 10%")
	}
	for id := uint64(6); id <= 25; id++ {
		c.NoteDeleteID(id)
	}
	if c.Fresh("X") {
		t.Fatalf("25 unabsorbed of 100 should be stale: %v", c.Staleness())
	}
	// Deleting unknown or already-deleted IDs counts nothing.
	c.NoteDeleteID(9999)
	c.NoteDeleteID(1)
	if got := c.Unabsorbed(); got != 25 {
		t.Fatalf("untracked deletes should not count: %d", got)
	}
	// Only a re-derivation restores freshness.
	rb := c.BeginRebuild()
	for i := 25; i < 100; i++ {
		rb.FeedTuple(mkTuple(t, uint64(i+1), "a", "y", 0.5))
	}
	rb.Commit()
	if !c.Fresh("X") || c.Unabsorbed() != 0 {
		t.Fatalf("rebuild should restore freshness: %v / %d", c.Staleness(), c.Unabsorbed())
	}
	// Unknown attribute is never fresh.
	if c.Fresh("Nope") {
		t.Fatal("untracked attribute reported fresh")
	}
	// Negative threshold disables freshness entirely.
	d := NewCatalog("X", nil, -1, true)
	if d.Fresh("X") {
		t.Fatal("negative threshold should never be fresh")
	}
}

// TestUpdateCountsAsStaleness: re-inserting an already-tracked ID is
// an update whose superseded version cannot be subtracted, so it must
// raise staleness exactly like an on-disk delete — an update-heavy
// workload may not keep reporting fresh statistics forever.
func TestUpdateCountsAsStaleness(t *testing.T) {
	c := NewCatalog("X", nil, 0.1, true)
	for i := 0; i < 100; i++ {
		c.AddTuple(mkTuple(t, uint64(i+1), "a", "y", 0.5))
	}
	for i := 0; i < 30; i++ { // update the same 30 tuples
		c.AddTuple(mkTuple(t, uint64(i+1), "b", "y", 0.6))
	}
	if got := c.Unabsorbed(); got != 30 {
		t.Fatalf("30 updates should leave 30 unabsorbed phantoms: %d", got)
	}
	if c.Fresh("X") {
		t.Fatalf("update-heavy catalog should be stale: staleness %v", c.Staleness())
	}
	// A rebuild (fed the true current content) clears the phantoms.
	rb := c.BeginRebuild()
	for i := 0; i < 100; i++ {
		v, p := "a", 0.5
		if i < 30 {
			v, p = "b", 0.6
		}
		rb.FeedTuple(mkTuple(t, uint64(i+1), v, "y", p))
	}
	rb.Commit()
	if c.Unabsorbed() != 0 || !c.Fresh("X") {
		t.Fatalf("rebuild should clear update phantoms: %+v unabsorbed=%d", c.Staleness(), c.Unabsorbed())
	}
	// Exact buffered replacement (Remove then Add of the same ID) is
	// not an update phantom.
	old := mkTuple(t, 7, "b", "y", 0.6)
	c.RemoveTuple(old)
	c.AddTuple(mkTuple(t, 7, "c", "y", 0.7))
	if got := c.Unabsorbed(); got != 0 {
		t.Fatalf("buffered replacement counted as phantom: %d", got)
	}
}

func TestUnseededUntilRebuild(t *testing.T) {
	c := NewCatalog("X", []string{"Y"}, 0, false) // unknown content (reopened table)
	if c.Fresh("X") || c.Histogram("X") != nil {
		t.Fatal("unseeded catalog handed out statistics")
	}
	c.AddTuple(mkTuple(t, 1, "a", "y", 0.5)) // deltas absorb but do not seed
	if c.Fresh("X") {
		t.Fatal("deltas alone must not seed an unknown catalog")
	}
	rb := c.BeginRebuild()
	rb.FeedTuple(mkTuple(t, 1, "a", "y", 0.5))
	rb.FeedTuple(mkTuple(t, 2, "b", "y", 0.6))
	rb.Commit()
	if !c.Fresh("X") || !c.Fresh("Y") {
		t.Fatal("committed rebuild should seed every attribute")
	}
	if c.Rebuilds() != 1 {
		t.Fatalf("rebuilds: %d", c.Rebuilds())
	}
	if got := c.Histogram("X").TotalTuples(); got != 2 {
		t.Fatalf("rebuilt tuples: %d", got)
	}
}

func TestRebuildAbsorbsConcurrentDeltas(t *testing.T) {
	c := NewCatalog("X", nil, 0, true)
	base := []*tuple.Tuple{
		mkTuple(t, 1, "a", "y", 0.5),
		mkTuple(t, 2, "b", "y", 0.6),
		mkTuple(t, 4, "d", "y", 0.4),
	}
	for _, tup := range base {
		c.AddTuple(tup)
	}
	c.NoteDeleteID(2) // tuple 2 deleted on disk before the merge starts

	rb := c.BeginRebuild()
	// The merge snapshot holds tuples 1 and 4 (2 was deleted).
	rb.FeedTuple(base[0])
	rb.FeedTuple(base[0]) // duplicate feed (second heap alternative) is deduped
	rb.FeedTuple(base[2])
	// While the merge builds, an insert and an on-disk delete arrive.
	during := mkTuple(t, 3, "c", "y", 0.7)
	c.AddTuple(during)
	c.NoteDeleteID(4)
	rb.Commit()

	// The rebuilt histograms hold the snapshot (1, 4) plus the insert
	// during the build (3); tuple 4's deletion is the one phantom.
	agree(t, c, "X", []*tuple.Tuple{base[0], base[2], during}, []string{"a", "b", "c", "d"})
	if got := c.Unabsorbed(); got != 1 {
		t.Fatalf("unabsorbed after commit: %d (only the delete during the rebuild should remain)", got)
	}
	if c.Staleness() == 0 {
		t.Fatal("post-rebuild staleness should reflect the delete during the build")
	}
}

func TestRebuildAbortKeepsLiveState(t *testing.T) {
	c := NewCatalog("X", nil, 0, true)
	c.AddTuple(mkTuple(t, 1, "a", "y", 0.5))
	rb := c.BeginRebuild()
	rb.FeedTuple(mkTuple(t, 99, "z", "y", 0.9))
	rb.Abort()
	if got := c.Histogram("X").TotalTuples(); got != 1 {
		t.Fatalf("abort leaked rebuild state: %d tuples", got)
	}
	rb.Commit() // aborted handle must stay a no-op
	if got := c.Histogram("X").TotalTuples(); got != 1 {
		t.Fatalf("aborted handle committed: %d tuples", got)
	}
	// Nil handles are no-ops everywhere (stores without a catalog).
	var nilRB *Rebuild
	nilRB.FeedTuple(mkTuple(t, 5, "q", "y", 0.5))
	nilRB.FeedEntry(6, nil)
	nilRB.Commit()
	nilRB.Abort()
}

func TestFeedEntryDecodes(t *testing.T) {
	c := NewCatalog("X", []string{"Y"}, 0, false)
	tup := mkTuple(t, 7, "a", "y", 0.5)
	rb := c.BeginRebuild()
	rb.FeedEntry(7, tuple.Encode(tup))
	rb.FeedEntry(7, tuple.Encode(tup)) // deduped
	rb.FeedEntry(8, []byte("garbage")) // ignored
	rb.Commit()
	if got := c.Histogram("X").TotalTuples(); got != 1 {
		t.Fatalf("fed tuples: %d", got)
	}
}

// TestConcurrentCatalog hammers deltas, reads and a rebuild at once;
// run with -race.
func TestConcurrentCatalog(t *testing.T) {
	c := NewCatalog("X", []string{"Y"}, 0, true)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			c.AddTuple(mkTuple(t, uint64(1000+i), fmt.Sprintf("v%d", i%7), "y", 0.5))
			if i%10 == 5 {
				c.NoteDeleteID(uint64(1000 + i - 1))
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if h := c.Histogram("X"); h != nil {
				_ = h.EstimateEntries("v1", 0.2)
			}
			_ = c.Staleness()
			_ = c.Fresh("X")
		}
	}()
	go func() {
		defer wg.Done()
		rb := c.BeginRebuild()
		for i := 0; i < 100; i++ {
			rb.FeedTuple(mkTuple(t, uint64(i+1), "a", "y", 0.5))
		}
		rb.Commit()
	}()
	wg.Wait()
	if c.Rebuilds() != 1 {
		t.Fatalf("rebuilds: %d", c.Rebuilds())
	}
}
