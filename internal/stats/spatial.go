package stats

import (
	"sync"

	"upidb/internal/histogram"
	"upidb/internal/prob"
	"upidb/internal/tuple"
)

// GridN is the fixed resolution of the spatial grid histogram: the
// extent is divided into GridN × GridN equal cells. A quadtree
// refinement (variable resolution where observations cluster) is a
// recorded ROADMAP follow-on.
const GridN = 32

// SegmentAttr is the attribute name the spatial catalog's segment
// histogram is registered under.
const SegmentAttr = "Segment"

// SpatialCatalog is the continuous-UPI counterpart of Catalog: the
// self-maintaining statistics of one spatial table. It holds
//
//   - a fixed-grid 2-D histogram of observation MBR centroids
//     (Section 6.1 generalized to two dimensions), which estimates how
//     many R-Tree candidates a circle query's MBR will touch, and
//   - a per-value confidence histogram of the uncertain segment
//     attribute (the ordinary Section 6.1 histogram over the segment
//     distribution), which estimates segment-index entry counts.
//
// Both are kept fresh by Insert deltas exactly like discrete tables:
// the facade feeds every committed spatial Insert to AddObservation.
// Spatial tables have no deletes and no merge, so there is no
// unabsorbed-delta channel — a seeded spatial catalog never goes
// stale. All methods are safe for concurrent use.
type SpatialCatalog struct {
	mu sync.RWMutex
	// extent is the grid's fixed frame, established when the catalog
	// is seeded (or by the first insert into an empty catalog).
	// Centroids outside it are clamped into the border cells — the
	// fixed-grid approximation this catalog accepts.
	extent    prob.Rect
	hasExtent bool
	cells     [GridN * GridN]int64
	total     int64
	seeded    bool
	// seg summarizes the segment attribute via the shared histogram
	// machinery, fed synthetic single-attribute tuples.
	seg *histogram.Histogram
}

// NewSpatialCatalog creates an unseeded spatial catalog.
func NewSpatialCatalog() *SpatialCatalog {
	return &SpatialCatalog{seg: histogram.New(SegmentAttr)}
}

// segTuple adapts one observation's segment distribution to the tuple
// shape the histogram package consumes. The observation encoding size
// stands in for the entry payload size.
func segTuple(o *tuple.Observation) (*tuple.Tuple, int64) {
	t := &tuple.Tuple{
		ID:        o.ID,
		Existence: 1,
		Unc:       []tuple.UncField{{Name: SegmentAttr, Dist: o.Segment}},
	}
	return t, int64(len(tuple.EncodeObservation(o)))
}

// Seed replaces the catalog's content with statistics derived from the
// complete observation set (the bulk-load path): the grid extent is
// the bounding box of all centroids, and every observation is
// absorbed. Seeding an empty set is valid — the catalog is complete
// (nothing exists) and future inserts establish the extent.
func (c *SpatialCatalog) Seed(obs []*tuple.Observation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cells = [GridN * GridN]int64{}
	c.total = 0
	c.hasExtent = false
	c.seg = histogram.New(SegmentAttr)
	for _, o := range obs {
		cen := o.Loc.MBR().Center()
		if !c.hasExtent {
			c.extent = prob.Rect{MinX: cen.X, MinY: cen.Y, MaxX: cen.X, MaxY: cen.Y}
			c.hasExtent = true
		} else {
			c.extent = c.extent.Union(prob.Rect{MinX: cen.X, MinY: cen.Y, MaxX: cen.X, MaxY: cen.Y})
		}
	}
	for _, o := range obs {
		c.absorbLocked(o)
	}
	c.seeded = true
}

// AddObservation absorbs one committed insert — the spatial delta
// hook. On an unseeded catalog it is a no-op (the content is unknown;
// one more unknown changes nothing).
func (c *SpatialCatalog) AddObservation(o *tuple.Observation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.seeded {
		return
	}
	if !c.hasExtent {
		cen := o.Loc.MBR().Center()
		c.extent = prob.Rect{MinX: cen.X, MinY: cen.Y, MaxX: cen.X, MaxY: cen.Y}
		c.hasExtent = true
	}
	c.absorbLocked(o)
}

func (c *SpatialCatalog) absorbLocked(o *tuple.Observation) {
	c.cells[c.cellOfLocked(o.Loc.MBR().Center())]++
	c.total++
	t, enc := segTuple(o)
	c.seg.AddSized(t, enc, +1)
}

// cellOfLocked maps a centroid to its grid cell, clamping out-of-extent
// points into the border cells.
func (c *SpatialCatalog) cellOfLocked(p prob.Point) int {
	ix := cellIndex(p.X, c.extent.MinX, c.extent.MaxX)
	iy := cellIndex(p.Y, c.extent.MinY, c.extent.MaxY)
	return iy*GridN + ix
}

func cellIndex(v, lo, hi float64) int {
	if hi <= lo {
		return 0
	}
	i := int((v - lo) / (hi - lo) * GridN)
	if i < 0 {
		return 0
	}
	if i >= GridN {
		return GridN - 1
	}
	return i
}

// Seeded reports whether the catalog describes the complete table.
func (c *SpatialCatalog) Seeded() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.seeded
}

// Fresh reports whether planner routing may trust the catalog. A
// spatial catalog has no unabsorbed-delta channel (no deletes, no
// on-disk updates it cannot see), so freshness equals seededness.
func (c *SpatialCatalog) Fresh() bool { return c.Seeded() }

// TotalObservations returns the number of observations absorbed.
func (c *SpatialCatalog) TotalObservations() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.total
}

// SegmentHistogram returns the live segment-attribute histogram, or
// nil when the catalog is unseeded. The histogram keeps absorbing
// deltas after the call (it is internally synchronized).
func (c *SpatialCatalog) SegmentHistogram() *histogram.Histogram {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.seeded {
		return nil
	}
	return c.seg
}

// EstimateRectCandidates estimates how many observations' uncertainty
// regions a query rectangle intersects — the R-Tree candidate count of
// a circle query with that MBR. Cells partially covered by the
// rectangle contribute their count scaled by the covered area
// fraction (uniformity within a cell, the classic histogram
// assumption).
func (c *SpatialCatalog) EstimateRectCandidates(r prob.Rect) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.hasExtent || c.total == 0 {
		return 0
	}
	if r.ContainsRect(c.extent) {
		return float64(c.total)
	}
	w := (c.extent.MaxX - c.extent.MinX) / GridN
	h := (c.extent.MaxY - c.extent.MinY) / GridN
	if w <= 0 || h <= 0 {
		// Degenerate extent (all centroids collinear or identical):
		// everything is in the border cells; either the rect covers the
		// extent line or it does not.
		if r.Intersects(c.extent) {
			return float64(c.total)
		}
		return 0
	}
	est := 0.0
	for iy := 0; iy < GridN; iy++ {
		for ix := 0; ix < GridN; ix++ {
			n := c.cells[iy*GridN+ix]
			if n == 0 {
				continue
			}
			cell := prob.Rect{
				MinX: c.extent.MinX + float64(ix)*w,
				MinY: c.extent.MinY + float64(iy)*h,
				MaxX: c.extent.MinX + float64(ix+1)*w,
				MaxY: c.extent.MinY + float64(iy+1)*h,
			}
			if !cell.Intersects(r) {
				continue
			}
			ov := cell.Intersection(r)
			frac := ov.Area() / cell.Area()
			if frac > 1 {
				frac = 1
			}
			est += float64(n) * frac
		}
	}
	return est
}

// EstimateCircleCandidates estimates the R-Tree candidates of a circle
// query: the observations whose centroid falls inside the query MBR.
func (c *SpatialCatalog) EstimateCircleCandidates(q prob.Point, radius float64) float64 {
	return c.EstimateRectCandidates(prob.Rect{
		MinX: q.X - radius, MinY: q.Y - radius,
		MaxX: q.X + radius, MaxY: q.Y + radius,
	})
}
