package stats

import (
	"testing"

	"upidb/internal/tuple"
)

// TestGenerationSemantics: the catalog generation advances exactly on
// wholesale replacement (Seed, committed rebuild) and on staleness
// crossings of the freshness threshold — never on deltas that keep the
// catalog on the same side.
func TestGenerationSemantics(t *testing.T) {
	c := NewCatalog("X", []string{"Y"}, 0.1, true)
	if g := c.Generation(); g != 0 {
		t.Fatalf("new catalog generation: %d", g)
	}

	// Plain inserts: fresh before, fresh after — no bump.
	for i := 1; i <= 20; i++ {
		c.AddTuple(mkTuple(t, uint64(i), "a", "b", 0.8))
	}
	if g := c.Generation(); g != 0 {
		t.Fatalf("generation after 20 fresh inserts: %d", g)
	}

	// Removing a still-buffered insert is an exact subtraction: no
	// staleness, no bump.
	c.RemoveTuple(mkTuple(t, 20, "a", "b", 0.8))
	if g := c.Generation(); g != 0 {
		t.Fatalf("generation after exact removal: %d", g)
	}

	// Two on-disk deletes: staleness 2/21 ≈ 9.5% stays under the 10%
	// threshold — no crossing, no bump.
	c.NoteDeleteID(1)
	c.NoteDeleteID(2)
	if g, s := c.Generation(), c.Staleness(); g != 0 || s > 0.1 {
		t.Fatalf("below threshold: gen %d staleness %v", g, s)
	}

	// The delete that pushes staleness past the threshold bumps once.
	c.NoteDeleteID(3)
	if g, s := c.Generation(), c.Staleness(); g != 1 || s <= 0.1 {
		t.Fatalf("threshold crossing: gen %d staleness %v", g, s)
	}

	// Further deltas on the stale side: no additional bumps.
	c.NoteDeleteID(4)
	c.AddTuple(mkTuple(t, 100, "a", "b", 0.8))
	if g := c.Generation(); g != 1 {
		t.Fatalf("generation while staying stale: %d", g)
	}

	// Enough fresh inserts dilute staleness back under the threshold:
	// the crossing back bumps once more.
	for i := 101; i <= 140; i++ {
		c.AddTuple(mkTuple(t, uint64(i), "a", "b", 0.8))
	}
	if g, s := c.Generation(), c.Staleness(); g != 2 || s > 0.1 {
		t.Fatalf("re-crossing to fresh: gen %d staleness %v", g, s)
	}

	// An aborted rebuild leaves the generation alone; a committed one
	// advances it.
	c.BeginRebuild().Abort()
	if g := c.Generation(); g != 2 {
		t.Fatalf("generation after aborted rebuild: %d", g)
	}
	rb := c.BeginRebuild()
	rb.FeedTuple(mkTuple(t, 1, "a", "b", 0.8))
	rb.Commit()
	if g := c.Generation(); g != 3 {
		t.Fatalf("generation after committed rebuild: %d", g)
	}

	// Seed is a wholesale replacement too.
	if err := c.Seed([]*tuple.Tuple{mkTuple(t, 1, "a", "b", 0.8)}); err != nil {
		t.Fatal(err)
	}
	if g := c.Generation(); g != 4 {
		t.Fatalf("generation after Seed: %d", g)
	}
}

// TestGenerationDisabledThreshold: with freshness disabled (negative
// threshold) the catalog is never on the fresh side, so no delta can
// cross — only Seed and rebuilds advance the generation.
func TestGenerationDisabledThreshold(t *testing.T) {
	c := NewCatalog("X", nil, -1, true)
	for i := 1; i <= 10; i++ {
		c.AddTuple(mkTuple(t, uint64(i), "a", "b", 0.8))
	}
	for i := 1; i <= 9; i++ {
		c.NoteDeleteID(uint64(i))
	}
	if g := c.Generation(); g != 0 {
		t.Fatalf("disabled threshold: generation %d after heavy staleness", g)
	}
	if err := c.Seed(nil); err != nil {
		t.Fatal(err)
	}
	if g := c.Generation(); g != 1 {
		t.Fatalf("disabled threshold: generation %d after Seed", g)
	}
}
