// Package pii implements the Probabilistic Inverted Index of Singh et
// al. (ICDE 2007), the baseline the paper compares UPIs against for
// discrete distributions ("PII is an uncertain index based on an
// inverted index which orders inverted entries by their probability").
//
// A PII is a *secondary* index: the heap file is unclustered
// (insertion order), and the index maps {value, confidence DESC,
// tuple ID} to a RowID. Answering a PTQ therefore requires one random
// heap access per matching entry, mitigated only by sorting RowIDs in
// heap order first — which is exactly the disadvantage the UPI
// eliminates.
package pii

import (
	"context"
	"fmt"
	"sort"

	"upidb/internal/btree"
	"upidb/internal/heapfile"
	"upidb/internal/keyenc"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// Options configure a PII-indexed table.
type Options struct {
	PageSize   int
	CachePages int
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = storage.DefaultPageSize
	}
	if o.CachePages == 0 {
		o.CachePages = storage.DefaultCachePages
	}
	return o
}

// Table is an unclustered heap file with PII indexes on one or more
// uncertain attributes. It is not safe for concurrent use.
type Table struct {
	fs   *storage.FS
	name string
	opts Options

	heap    *heapfile.Heap
	indexes map[string]*btree.Tree
	attrs   []string
	// rows tracks the RowID of each tuple so deletes can find them.
	rows map[uint64]heapfile.RowID
}

// Create initializes an empty PII table with indexes on attrs.
func Create(fs *storage.FS, name string, attrs []string, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		fs: fs, name: name, opts: opts,
		indexes: make(map[string]*btree.Tree, len(attrs)),
		attrs:   append([]string(nil), attrs...),
		rows:    make(map[uint64]heapfile.RowID),
	}
	hp, err := storage.NewPager(fs.Create(name+".pii.heap"), opts.PageSize)
	if err != nil {
		return nil, err
	}
	if err := hp.SetCacheLimit(opts.CachePages); err != nil {
		return nil, err
	}
	if t.heap, err = heapfile.Create(hp); err != nil {
		return nil, err
	}
	for _, a := range attrs {
		p, err := storage.NewPager(fs.Create(name+".pii.idx."+a), opts.PageSize)
		if err != nil {
			return nil, err
		}
		if err := p.SetCacheLimit(opts.CachePages); err != nil {
			return nil, err
		}
		idx, err := btree.Create(p)
		if err != nil {
			return nil, err
		}
		t.indexes[a] = idx
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Heap exposes the unclustered heap file.
func (t *Table) Heap() *heapfile.Heap { return t.heap }

// Index returns the PII B+Tree for attr.
func (t *Table) Index(attr string) (*btree.Tree, bool) {
	idx, ok := t.indexes[attr]
	return idx, ok
}

// SizeBytes returns the total on-disk size of the table's files.
func (t *Table) SizeBytes() int64 {
	total := t.fs.Size(t.name + ".pii.heap")
	for _, a := range t.attrs {
		total += t.fs.Size(t.name + ".pii.idx." + a)
	}
	return total
}

// Flush writes all dirty pages to disk.
func (t *Table) Flush() error {
	if err := t.heap.Pager().Flush(); err != nil {
		return err
	}
	for _, a := range t.attrs {
		if err := t.indexes[a].Pager().Flush(); err != nil {
			return err
		}
	}
	return nil
}

// DropCaches empties all buffer pools (cold-cache state).
func (t *Table) DropCaches() error {
	if err := t.heap.Pager().DropCache(); err != nil {
		return err
	}
	for _, a := range t.attrs {
		if err := t.indexes[a].Pager().DropCache(); err != nil {
			return err
		}
	}
	return nil
}

// rowIDValue encodes a RowID as an index value.
func rowIDValue(id heapfile.RowID) []byte {
	v := keyenc.AppendUint64(nil, uint64(id.Page))
	return keyenc.AppendUint64(v, uint64(id.Slot))
}

func decodeRowID(v []byte) (heapfile.RowID, error) {
	pg, rest, err := keyenc.DecodeUint64(v)
	if err != nil {
		return heapfile.RowID{}, err
	}
	slot, _, err := keyenc.DecodeUint64(rest)
	if err != nil {
		return heapfile.RowID{}, err
	}
	return heapfile.RowID{Page: storage.PageID(pg), Slot: uint16(slot)}, nil
}

// Insert appends the tuple to the heap and adds one inverted entry per
// alternative of every indexed attribute, keyed by confidence DESC.
func (t *Table) Insert(tup *tuple.Tuple) error {
	if err := tup.Validate(); err != nil {
		return err
	}
	rid, err := t.heap.Append(tuple.Encode(tup))
	if err != nil {
		return err
	}
	t.rows[tup.ID] = rid
	rv := rowIDValue(rid)
	for _, attr := range t.attrs {
		dist, ok := tup.Uncertain(attr)
		if !ok {
			return fmt.Errorf("pii: tuple %d lacks indexed attribute %q", tup.ID, attr)
		}
		for _, a := range dist {
			conf := tup.Existence * a.Prob
			if _, err := t.indexes[attr].Put(upi.HeapKey(a.Value, conf, tup.ID), rv); err != nil {
				return err
			}
		}
	}
	return nil
}

// Delete tombstones the tuple in the heap and removes its inverted
// entries.
func (t *Table) Delete(tup *tuple.Tuple) error {
	rid, ok := t.rows[tup.ID]
	if !ok {
		return fmt.Errorf("pii: unknown tuple %d", tup.ID)
	}
	if _, err := t.heap.Delete(rid); err != nil {
		return err
	}
	delete(t.rows, tup.ID)
	for _, attr := range t.attrs {
		dist, ok := tup.Uncertain(attr)
		if !ok {
			continue
		}
		for _, a := range dist {
			conf := tup.Existence * a.Prob
			if _, err := t.indexes[attr].Delete(upi.HeapKey(a.Value, conf, tup.ID)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Query answers the PTQ "attr = value, confidence >= qt": scan the
// inverted list (ordered by confidence DESC, so it stops at qt), sort
// the collected RowIDs in heap order, then fetch each tuple from the
// unclustered heap — one random page access per distinct page.
func (t *Table) Query(ctx context.Context, attr, value string, qt float64) ([]upi.Result, error) {
	if err := upi.CtxErr(ctx); err != nil {
		return nil, err
	}
	idx, ok := t.indexes[attr]
	if !ok {
		return nil, fmt.Errorf("pii: no index on %q", attr)
	}
	type match struct {
		rid  heapfile.RowID
		conf float64
	}
	var matches []match
	var scanErr error
	start := upi.ValuePrefix(value)
	end := upi.ValuePrefixEnd(value)
	err := idx.Scan(start, end, func(k, v []byte) bool {
		_, conf, _, err := upi.DecodeHeapKey(k)
		if err != nil {
			scanErr = err
			return false
		}
		if conf < qt {
			return false
		}
		rid, err := decodeRowID(v)
		if err != nil {
			scanErr = err
			return false
		}
		matches = append(matches, match{rid: rid, conf: conf})
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return nil, err
	}
	// Bitmap-scan discipline: visit heap pages in physical order.
	sort.Slice(matches, func(i, j int) bool { return matches[i].rid.Less(matches[j].rid) })
	results := make([]upi.Result, 0, len(matches))
	for i, m := range matches {
		if i%64 == 0 {
			if err := upi.CtxErr(ctx); err != nil {
				return nil, err
			}
		}
		rec, ok, err := t.heap.Get(m.rid)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // deleted under a stale index entry
		}
		tup, err := tuple.Decode(rec)
		if err != nil {
			return nil, err
		}
		results = append(results, upi.Result{Tuple: tup, Confidence: m.conf})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Confidence != results[j].Confidence {
			return results[i].Confidence > results[j].Confidence
		}
		return results[i].Tuple.ID < results[j].Tuple.ID
	})
	return results, nil
}

// BulkBuild loads a PII table from a batch of tuples: heap appends are
// sequential; index entries are sorted and bulk-loaded.
func BulkBuild(fs *storage.FS, name string, attrs []string, opts Options, tuples []*tuple.Tuple) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{
		fs: fs, name: name, opts: opts,
		indexes: make(map[string]*btree.Tree, len(attrs)),
		attrs:   append([]string(nil), attrs...),
		rows:    make(map[uint64]heapfile.RowID, len(tuples)),
	}
	hp, err := storage.NewPager(fs.Create(name+".pii.heap"), opts.PageSize)
	if err != nil {
		return nil, err
	}
	if err := hp.SetCacheLimit(opts.CachePages); err != nil {
		return nil, err
	}
	if t.heap, err = heapfile.Create(hp); err != nil {
		return nil, err
	}

	type entry struct {
		key []byte
		val []byte
	}
	idxEntries := make(map[string][]entry, len(attrs))
	for _, tup := range tuples {
		if err := tup.Validate(); err != nil {
			return nil, err
		}
		rid, err := t.heap.Append(tuple.Encode(tup))
		if err != nil {
			return nil, err
		}
		t.rows[tup.ID] = rid
		rv := rowIDValue(rid)
		for _, attr := range attrs {
			dist, ok := tup.Uncertain(attr)
			if !ok {
				return nil, fmt.Errorf("pii: tuple %d lacks indexed attribute %q", tup.ID, attr)
			}
			for _, a := range dist {
				conf := tup.Existence * a.Prob
				idxEntries[attr] = append(idxEntries[attr], entry{key: upi.HeapKey(a.Value, conf, tup.ID), val: rv})
			}
		}
	}
	for _, attr := range attrs {
		es := idxEntries[attr]
		sort.Slice(es, func(i, j int) bool { return keyenc.Compare(es[i].key, es[j].key) < 0 })
		p, err := storage.NewPager(fs.Create(name+".pii.idx."+attr), opts.PageSize)
		if err != nil {
			return nil, err
		}
		if err := p.SetCacheLimit(opts.CachePages); err != nil {
			return nil, err
		}
		b, err := btree.NewBuilder(p)
		if err != nil {
			return nil, err
		}
		for _, e := range es {
			if err := b.Add(e.key, e.val); err != nil {
				return nil, err
			}
		}
		idx, err := b.Finish()
		if err != nil {
			return nil, err
		}
		t.indexes[attr] = idx
	}
	if err := t.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}
