package pii

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"upidb/internal/prob"
	"upidb/internal/sim"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

func newFS() *storage.FS { return storage.NewFS(sim.NewDisk(sim.DefaultParams())) }

func mkTuple(t *testing.T, id uint64, exist float64, alts ...prob.Alternative) *tuple.Tuple {
	t.Helper()
	d, err := prob.NewDiscrete(alts)
	if err != nil {
		t.Fatal(err)
	}
	return &tuple.Tuple{ID: id, Existence: exist, Unc: []tuple.UncField{{Name: "X", Dist: d}}}
}

func TestInsertQuery(t *testing.T) {
	tab, err := Create(newFS(), "t", []string{"X"}, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert(mkTuple(t, 1, 0.9, prob.Alternative{Value: "A", Prob: 0.8}, prob.Alternative{Value: "B", Prob: 0.2}))
	tab.Insert(mkTuple(t, 2, 1.0, prob.Alternative{Value: "A", Prob: 0.5}, prob.Alternative{Value: "C", Prob: 0.5}))
	res, err := tab.Query(context.Background(), "X", "A", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	// Ordered by confidence desc: tuple 1 (0.72), tuple 2 (0.5).
	if res[0].Tuple.ID != 1 || math.Abs(res[0].Confidence-0.72) > 1e-9 {
		t.Fatalf("first: %+v", res[0])
	}
	res, _ = tab.Query(context.Background(), "X", "A", 0.6)
	if len(res) != 1 {
		t.Fatalf("qt=0.6: %d", len(res))
	}
	res, _ = tab.Query(context.Background(), "X", "Z", 0.0)
	if len(res) != 0 {
		t.Fatalf("unknown value: %d", len(res))
	}
	if _, err := tab.Query(context.Background(), "Nope", "A", 0); err == nil {
		t.Fatal("missing index accepted")
	}
}

func TestQueryCanceled(t *testing.T) {
	tab, err := Create(newFS(), "t", []string{"X"}, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert(mkTuple(t, 1, 0.9, prob.Alternative{Value: "A", Prob: 0.8}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tab.Query(ctx, "X", "A", 0); !errors.Is(err, upi.ErrCanceled) {
		t.Fatalf("canceled query: got %v, want ErrCanceled", err)
	}
	if _, err := tab.Query(ctx, "X", "A", 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query: got %v, want context.Canceled", err)
	}
}

func TestDelete(t *testing.T) {
	tab, _ := Create(newFS(), "t", []string{"X"}, Options{PageSize: 512})
	t1 := mkTuple(t, 1, 1.0, prob.Alternative{Value: "A", Prob: 1.0})
	tab.Insert(t1)
	tab.Insert(mkTuple(t, 2, 1.0, prob.Alternative{Value: "A", Prob: 0.9}))
	if err := tab.Delete(t1); err != nil {
		t.Fatal(err)
	}
	res, _ := tab.Query(context.Background(), "X", "A", 0)
	if len(res) != 1 || res[0].Tuple.ID != 2 {
		t.Fatalf("after delete: %+v", res)
	}
	if err := tab.Delete(t1); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestBulkBuildMatchesInserts(t *testing.T) {
	var tuples []*tuple.Tuple
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		v1 := fmt.Sprintf("v%02d", rng.Intn(20))
		v2 := fmt.Sprintf("v%02d", (rng.Intn(20)+7)%25)
		p := 0.3 + rng.Float64()*0.6
		alts := []prob.Alternative{{Value: v1, Prob: p}}
		if v2 != v1 {
			alts = append(alts, prob.Alternative{Value: v2, Prob: (1 - p) * 0.9})
		}
		tuples = append(tuples, mkTuple(t, uint64(i+1), 0.5+rng.Float64()/2, alts...))
	}
	ins, _ := Create(newFS(), "t", []string{"X"}, Options{PageSize: 512})
	for _, tup := range tuples {
		if err := ins.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := BulkBuild(newFS(), "t", []string{"X"}, Options{PageSize: 512}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	for _, qt := range []float64{0.1, 0.4, 0.8} {
		for v := 0; v < 25; v++ {
			val := fmt.Sprintf("v%02d", v)
			a, err := ins.Query(context.Background(), "X", val, qt)
			if err != nil {
				t.Fatal(err)
			}
			b, err := bulk.Query(context.Background(), "X", val, qt)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("%s@%v: %d vs %d", val, qt, len(a), len(b))
			}
			for i := range a {
				if a[i].Tuple.ID != b[i].Tuple.ID {
					t.Fatalf("%s@%v: result %d differs", val, qt, i)
				}
			}
		}
	}
}

// TestPIIAgreesWithUPI: the baseline and the UPI must return identical
// answer sets; only their I/O profiles differ.
func TestPIIAgreesWithUPI(t *testing.T) {
	var tuples []*tuple.Tuple
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 800; i++ {
		v1 := fmt.Sprintf("v%02d", rng.Intn(15))
		v2 := fmt.Sprintf("w%02d", rng.Intn(15))
		p := 0.2 + rng.Float64()*0.7
		tuples = append(tuples, mkTuple(t, uint64(i+1), 0.5+rng.Float64()/2,
			prob.Alternative{Value: v1, Prob: p},
			prob.Alternative{Value: v2, Prob: (1 - p) * 0.8}))
	}
	piiTab, err := BulkBuild(newFS(), "t", []string{"X"}, Options{PageSize: 512}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	upiTab, err := upi.BulkBuild(newFS(), "t", "X", nil, upi.Options{Cutoff: 0.15, PageSize: 512}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	for _, qt := range []float64{0.05, 0.3, 0.7} {
		for v := 0; v < 15; v++ {
			val := fmt.Sprintf("v%02d", v)
			a, err := piiTab.Query(context.Background(), "X", val, qt)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := upiTab.Query(context.Background(), val, qt)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("%s@%v: pii %d vs upi %d", val, qt, len(a), len(b))
			}
			for i := range a {
				if a[i].Tuple.ID != b[i].Tuple.ID || math.Abs(a[i].Confidence-b[i].Confidence) > 1e-9 {
					t.Fatalf("%s@%v: result %d differs: %+v vs %+v", val, qt, i, a[i], b[i])
				}
			}
		}
	}
}

// TestPIINeedsMoreSeeksThanUPI verifies the paper's headline physical
// claim on a non-selective query.
func TestPIINeedsMoreSeeksThanUPI(t *testing.T) {
	var tuples []*tuple.Tuple
	rng := rand.New(rand.NewSource(31))
	// 2% of tuples match the query; matches are scattered across the
	// whole unclustered heap, so the PII pays ~one seek per match
	// while the UPI reads one small contiguous region.
	for i := 0; i < 8000; i++ {
		v := "hot"
		if i%50 != 0 {
			v = fmt.Sprintf("cold%03d", rng.Intn(400))
		}
		tuples = append(tuples, &tuple.Tuple{
			ID: uint64(i + 1), Existence: 1,
			Unc: []tuple.UncField{{Name: "X", Dist: prob.Discrete{
				{Value: v, Prob: 0.9}, {Value: "alt" + fmt.Sprint(i%11), Prob: 0.1},
			}}},
			Payload: bytes.Repeat([]byte{7}, 300),
		})
	}
	// Shuffle so heap insertion order is uncorrelated with the value.
	rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })

	piiDisk := sim.NewDisk(sim.DefaultParams())
	piiTab, err := BulkBuild(storage.NewFS(piiDisk), "t", []string{"X"}, Options{}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	upiDisk := sim.NewDisk(sim.DefaultParams())
	upiTab, err := upi.BulkBuild(storage.NewFS(upiDisk), "t", "X", nil, upi.Options{Cutoff: 0.2}, tuples)
	if err != nil {
		t.Fatal(err)
	}

	piiTab.DropCaches()
	b1 := piiDisk.Stats()
	resP, err := piiTab.Query(context.Background(), "X", "hot", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	piiCost := piiDisk.Stats().Sub(b1)

	upiTab.DropCaches()
	b2 := upiDisk.Stats()
	resU, _, err := upiTab.Query(context.Background(), "hot", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	upiCost := upiDisk.Stats().Sub(b2)

	if len(resP) != len(resU) || len(resP) == 0 {
		t.Fatalf("answer sizes: %d vs %d", len(resP), len(resU))
	}
	if piiCost.Seeks < upiCost.Seeks*5 {
		t.Fatalf("PII should seek far more than UPI: pii=%+v upi=%+v", piiCost, upiCost)
	}
	if piiCost.Elapsed <= upiCost.Elapsed {
		t.Fatalf("PII should be slower: pii=%v upi=%v", piiCost.Elapsed, upiCost.Elapsed)
	}
}
