package fracture

// Tests for the incremental k-way merged stream: golden equivalence
// with the materialized Collect at every parallelism, exact modeled
// cost on full drains, per-partition pin release, top-k early
// termination, and mid-stream cancellation.

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"upidb/internal/prob"
	"upidb/internal/sim"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// drainStream pulls a stream to exhaustion.
func drainStream(t *testing.T, st *Stream) []upi.Result {
	t.Helper()
	var out []upi.Result
	for {
		r, ok, err := st.Next()
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func resultKeys(rs []upi.Result) [][2]float64 {
	out := make([][2]float64, len(rs))
	for i, r := range rs {
		out[i] = [2]float64{float64(r.Tuple.ID), r.Confidence}
	}
	return out
}

// TestStreamMatchesCollect: for every query kind and at serial, narrow
// and wide parallelism, the merged stream yields exactly the results
// the materialized Collect returns, in identical order.
func TestStreamMatchesCollect(t *testing.T) {
	reqs := []Req{
		{Kind: KindPTQ, Value: concValue(3), QT: 0.05},
		{Kind: KindPTQ, Value: concValue(3), QT: 0.4},
		{Kind: KindSecondary, Attr: "Y", Value: "y" + concValue(2), QT: 0.05, Tailored: true},
		{Kind: KindTopK, Value: concValue(4), K: 9},
		{Kind: KindScan, Value: concValue(5), QT: 0.1},
	}
	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		s, _ := buildConcStore(t, 5, 30)
		// Leave work in the RAM buffer so the merge crosses every
		// partition type, and a pending delete so supersedence applies
		// at yield time.
		if err := s.Insert(concTuple(90001, 3)); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert(concTuple(90002, 4)); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(7); err != nil {
			t.Fatal(err)
		}
		for qi, req := range reqs {
			req.Parallelism = par
			want, _, err := s.Run(context.Background(), req)
			if err != nil {
				t.Fatalf("par=%d q=%d collect: %v", par, qi, err)
			}
			prep, err := s.Prepare(context.Background(), req)
			if err != nil {
				t.Fatalf("par=%d q=%d prepare: %v", par, qi, err)
			}
			got := drainStream(t, prep.Stream(context.Background()))
			if !reflect.DeepEqual(resultKeys(got), resultKeys(want)) {
				t.Fatalf("par=%d q=%d: stream %d rows diverged from collect %d rows",
					par, qi, len(got), len(want))
			}
		}
	}
}

// TestStreamModeledCostMatchesCollect: a fully drained PTQ stream
// charges exactly the modeled I/O of the materialized execution — the
// per-partition tapes hold the same operations and replay in
// self-contained batches — at any parallelism.
func TestStreamModeledCostMatchesCollect(t *testing.T) {
	req := Req{Kind: KindPTQ, Value: concValue(3), QT: 0.05}
	s, disk := buildConcStore(t, 5, 30)
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	_, st, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := st.ModeledTime
	if want <= 0 {
		t.Fatal("materialized run charged nothing")
	}
	for _, par := range []int{1, 4} {
		req.Parallelism = par
		if err := s.DropCaches(); err != nil {
			t.Fatal(err)
		}
		before := disk.Stats()
		prep, err := s.Prepare(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		stream := prep.Stream(context.Background())
		drainStream(t, stream)
		if got := stream.Stats().ModeledTime; got != want {
			t.Fatalf("par=%d: stream modeled %v != collect %v", par, got, want)
		}
		if d := disk.Stats().Sub(before); d.Elapsed != stream.Stats().ModeledTime {
			t.Fatalf("par=%d: disk charged %v, stream reported %v", par, d.Elapsed, stream.Stats().ModeledTime)
		}
	}
}

// TestStreamTopKEarlyTermination: a top-k stream over many partitions
// yields its first result — and its full k results — for strictly
// less modeled I/O than the materialized execution, which scans every
// partition (including every fracture's cutoff chase) before returning
// anything. The store is engineered so the main partition holds plenty
// of high-confidence matches while every fracture has fewer than k
// heap matches plus many below-cutoff alternatives: the materialized
// per-partition TopK must chase every fracture's cutoff pointers,
// while the merged stream fills its k results from the main partition
// and never pulls any fracture past its first head.
func TestStreamTopKEarlyTermination(t *testing.T) {
	hot := func(id uint64, conf float64) *tuple.Tuple {
		x, err := prob.NewDiscrete([]prob.Alternative{{Value: "hot", Prob: conf}})
		if err != nil {
			t.Fatal(err)
		}
		return &tuple.Tuple{ID: id, Existence: 1, Unc: []tuple.UncField{{Name: "X", Dist: x}}}
	}
	coldHot := func(id uint64) *tuple.Tuple {
		x, err := prob.NewDiscrete([]prob.Alternative{
			{Value: "cold", Prob: 0.8}, {Value: "hot", Prob: 0.1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return &tuple.Tuple{ID: id, Existence: 1, Unc: []tuple.UncField{{Name: "X", Dist: x}}}
	}
	disk := sim.NewDisk(sim.DefaultParams())
	fs := storage.NewFS(disk)
	id := uint64(1)
	var base []*tuple.Tuple
	for i := 0; i < 60; i++ {
		base = append(base, hot(id, 0.5+float64(i)*0.008))
		id++
	}
	s, err := BulkLoad(fs, "topk", "X", nil, Config{UPI: upi.Options{Cutoff: 0.15}}, base)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 6; f++ {
		for j := 0; j < 4; j++ {
			if err := s.Insert(hot(id, 0.2+float64(f*4+j)*0.01)); err != nil {
				t.Fatal(err)
			}
			id++
		}
		for j := 0; j < 20; j++ {
			// "hot" at confidence 0.1 — below the cutoff, so it lives
			// in the fracture's cutoff index.
			if err := s.Insert(coldHot(id)); err != nil {
				t.Fatal(err)
			}
			id++
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	req := Req{Kind: KindTopK, Value: "hot", K: 20, Parallelism: 1}

	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	before := disk.Stats()
	want, _, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	fullCost := disk.Stats().Sub(before).Elapsed
	if len(want) != req.K || fullCost <= 0 {
		t.Fatalf("materialized top-k: %d rows, cost %v", len(want), fullCost)
	}

	// First result: the stream needs one head per partition, not any
	// partition's completed scan.
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	before = disk.Stats()
	prep, err := s.Prepare(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	stream := prep.Stream(context.Background())
	first, ok, err := stream.Next()
	if err != nil || !ok {
		t.Fatalf("first pull: ok=%v err=%v", ok, err)
	}
	if first.Tuple.ID != want[0].Tuple.ID || first.Confidence != want[0].Confidence {
		t.Fatalf("first streamed result %d/%v, want %d/%v",
			first.Tuple.ID, first.Confidence, want[0].Tuple.ID, want[0].Confidence)
	}
	stream.Close()
	firstCost := disk.Stats().Sub(before).Elapsed
	if firstCost >= fullCost {
		t.Fatalf("first-result cost %v not below materialized cost %v", firstCost, fullCost)
	}

	// Full streamed top-k: same k results, strictly less modeled I/O.
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	before = disk.Stats()
	prep, err = s.Prepare(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	stream = prep.Stream(context.Background())
	got := drainStream(t, stream)
	streamCost := disk.Stats().Sub(before).Elapsed
	if !reflect.DeepEqual(resultKeys(got), resultKeys(want)) {
		t.Fatalf("streamed top-k diverged from materialized")
	}
	if streamCost >= fullCost {
		t.Fatalf("streamed top-k cost %v not below materialized %v", streamCost, fullCost)
	}
}

// TestStreamReleasesPinsIncrementally: once the stream is exhausted —
// and on Close after a partial drain — every partition pin is back,
// so a merge can reclaim the old generation immediately. Cancelling
// mid-stream behaves the same and stops charging.
func TestStreamReleasesPinsIncrementally(t *testing.T) {
	s, disk := buildConcStore(t, 5, 30)
	req := Req{Kind: KindPTQ, Value: concValue(3), QT: 0.05, Parallelism: 1}

	// Partial drain + Close.
	prep, err := s.Prepare(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	stream := prep.Stream(context.Background())
	if _, ok, err := stream.Next(); !ok || err != nil {
		t.Fatalf("first pull: ok=%v err=%v", ok, err)
	}
	stream.Close()
	after := disk.Stats()
	if _, ok, err := stream.Next(); ok || err != nil {
		t.Fatalf("closed stream yielded: ok=%v err=%v", ok, err)
	}
	if d := disk.Stats().Sub(after); d.Elapsed != 0 {
		t.Fatalf("closed stream kept charging: %v", d)
	}

	// Cancellation mid-stream: terminates with ErrCanceled, stops
	// charging, releases pins.
	ctx := newCountdownCtx(20)
	prep, err = s.Prepare(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	stream = prep.Stream(ctx)
	var streamErr error
	for {
		_, ok, err := stream.Next()
		if err != nil {
			streamErr = err
			break
		}
		if !ok {
			break
		}
	}
	if !errors.Is(streamErr, upi.ErrCanceled) {
		t.Fatalf("cancelled stream: want ErrCanceled, got %v", streamErr)
	}
	after = disk.Stats()
	if _, ok, err := stream.Next(); ok || !errors.Is(err, upi.ErrCanceled) {
		t.Fatalf("cancelled stream resumed: ok=%v err=%v", ok, err)
	}
	if d := disk.Stats().Sub(after); d.Elapsed != 0 {
		t.Fatalf("cancelled stream kept charging: %v", d)
	}

	// All pins must be back: after a merge no old-generation file may
	// survive.
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	for _, name := range s.fs.List() {
		if strings.Contains(name, ".frac") {
			t.Fatalf("leaked stream pin kept %s alive after merge", name)
		}
	}
	rs, _, err := s.Run(context.Background(), Req{Kind: KindPTQ, Value: concValue(3), QT: 0.05})
	if err != nil || len(rs) == 0 {
		t.Fatalf("store broken after streamed queries + merge: %v (%d rows)", err, len(rs))
	}
}

// TestStreamSurvivesConcurrentMerge: a stream opened before a merge
// finishes on the generation it pinned, even though the merge swapped
// and doomed those partitions midway.
func TestStreamSurvivesConcurrentMerge(t *testing.T) {
	s, _ := buildConcStore(t, 5, 30)
	req := Req{Kind: KindPTQ, Value: concValue(3), QT: 0.05, Parallelism: 1}
	want, _, err := s.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := s.Prepare(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	stream := prep.Stream(context.Background())
	// Pull one result, then merge underneath the open stream.
	if _, ok, err := stream.Next(); !ok || err != nil {
		t.Fatalf("first pull: ok=%v err=%v", ok, err)
	}
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	rest := drainStream(t, stream)
	if len(rest)+1 != len(want) {
		t.Fatalf("stream across merge: got %d rows, want %d", len(rest)+1, len(want))
	}
	for i, r := range rest {
		w := want[i+1]
		if r.Tuple.ID != w.Tuple.ID || r.Confidence != w.Confidence {
			t.Fatalf("row %d across merge: got %d/%v want %d/%v",
				i+1, r.Tuple.ID, r.Confidence, w.Tuple.ID, w.Confidence)
		}
	}
}

// TestPreparedSingleConsumption: a Prepared may be consumed once;
// Release is safe before, after and instead of consumption.
func TestPreparedSingleConsumption(t *testing.T) {
	s, _ := buildConcStore(t, 2, 10)
	req := Req{Kind: KindPTQ, Value: concValue(1), QT: 0.1}
	prep, err := s.Prepare(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prep.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := prep.Collect(context.Background()); !errors.Is(err, errConsumed) {
		t.Fatalf("second Collect: %v", err)
	}
	if _, ok, err := prep.Stream(context.Background()).Next(); ok || !errors.Is(err, errConsumed) {
		t.Fatalf("stream after Collect: ok=%v err=%v", ok, err)
	}
	prep.Release() // idempotent after consumption

	// Release without consumption leaves no pins behind — and spends
	// the handle, so a later Collect cannot scan unpinned partitions.
	prep, err = s.Prepare(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	prep.Release()
	if _, _, err := prep.Collect(context.Background()); !errors.Is(err, errConsumed) {
		t.Fatalf("Collect after Release: %v", err)
	}
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	for _, name := range s.fs.List() {
		if strings.Contains(name, ".frac") {
			t.Fatalf("released Prepared leaked pin on %s", name)
		}
	}
}
