package fracture

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"upidb/internal/prob"
	"upidb/internal/sim"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// concTuple builds a deterministic two-alternative tuple for value
// index v of a small value universe.
func concTuple(id uint64, v int) *tuple.Tuple {
	p := 0.3 + float64((id*7+uint64(v)*13)%60)/100
	alts := []prob.Alternative{{Value: concValue(v), Prob: p}}
	if other := (v + 1) % concValues; other != v {
		alts = append(alts, prob.Alternative{Value: concValue(other), Prob: (1 - p) * 0.9})
	}
	x, err := prob.NewDiscrete(alts)
	if err != nil {
		panic(err)
	}
	y, err := prob.NewDiscrete([]prob.Alternative{{Value: "y" + concValue(v), Prob: 1}})
	if err != nil {
		panic(err)
	}
	return &tuple.Tuple{
		ID: id, Existence: 0.9,
		Unc: []tuple.UncField{{Name: "X", Dist: x}, {Name: "Y", Dist: y}},
	}
}

const concValues = 8

func concValue(v int) string { return fmt.Sprintf("v%02d", v%concValues) }

// buildConcStore creates a fractured store with nFrac fractures of
// batch tuples each, plus a bulk-loaded base. Identical inputs produce
// byte-identical files, caches and disk state.
func buildConcStore(t testing.TB, nFrac, batch int) (*Store, *sim.Disk) {
	t.Helper()
	disk := sim.NewDisk(sim.DefaultParams())
	fs := storage.NewFS(disk)
	var base []*tuple.Tuple
	id := uint64(1)
	for i := 0; i < 4*batch; i++ {
		base = append(base, concTuple(id, int(id)))
		id++
	}
	s, err := BulkLoad(fs, "conc", "X", []string{"Y"}, Config{UPI: upi.Options{Cutoff: 0.15}}, base)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < nFrac; f++ {
		for i := 0; i < batch; i++ {
			if err := s.Insert(concTuple(id, int(id))); err != nil {
				t.Fatal(err)
			}
			id++
		}
		// Delete one older tuple per batch so delete sets are exercised.
		s.Delete(uint64(f*batch + 1))
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return s, disk
}

// TestParallelismInvariance: two byte-identical stores, one queried
// serially and one with maximum fan-out, must report identical
// results, identical QueryStats and identical modeled disk time.
func TestParallelismInvariance(t *testing.T) {
	serial, serialDisk := buildConcStore(t, 6, 40)
	parallel, parallelDisk := buildConcStore(t, 6, 40)
	serial.SetParallelism(1)
	parallel.SetParallelism(7) // deliberately not a divisor of the partition count

	if got, want := serialDisk.Stats(), parallelDisk.Stats(); got != want {
		t.Fatalf("builds diverged before queries: %v vs %v", got, want)
	}

	type run func(s *Store) ([]upi.Result, Stats, error)
	cases := []struct {
		name string
		run  run
	}{
		{"ptq", func(s *Store) ([]upi.Result, Stats, error) { return s.Query(context.Background(), concValue(3), 0.1) }},
		{"ptq-high", func(s *Store) ([]upi.Result, Stats, error) { return s.Query(context.Background(), concValue(5), 0.5) }},
		{"secondary", func(s *Store) ([]upi.Result, Stats, error) {
			return s.QuerySecondary(context.Background(), "Y", "y"+concValue(3), 0.1, true)
		}},
		{"topk", func(s *Store) ([]upi.Result, Stats, error) { return s.TopK(context.Background(), concValue(2), 5) }},
	}
	for _, tc := range cases {
		rs1, st1, err1 := tc.run(serial)
		rs2, st2, err2 := tc.run(parallel)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: errors %v / %v", tc.name, err1, err2)
		}
		if st1 != st2 {
			t.Errorf("%s: stats diverged: serial %+v parallel %+v", tc.name, st1, st2)
		}
		if len(rs1) != len(rs2) {
			t.Fatalf("%s: %d results serial vs %d parallel", tc.name, len(rs1), len(rs2))
		}
		for i := range rs1 {
			if rs1[i].Tuple.ID != rs2[i].Tuple.ID || rs1[i].Confidence != rs2[i].Confidence {
				t.Fatalf("%s: result %d diverged: %v vs %v", tc.name, i, rs1[i], rs2[i])
			}
		}
		if got, want := serialDisk.Stats(), parallelDisk.Stats(); got != want {
			t.Errorf("%s: modeled disk activity diverged:\n serial   %v\n parallel %v", tc.name, got, want)
		}
	}
}

// TestInFlightQuerySurvivesMerge: a query snapshot taken before a merge
// keeps the old generation's files alive until released, then they
// disappear.
func TestInFlightQuerySurvivesMerge(t *testing.T) {
	s, _ := buildConcStore(t, 3, 20)
	fracFile := upi.HeapFileName(s.fracName(1))
	if !s.fs.Exists(fracFile) {
		t.Fatalf("expected fracture file %s", fracFile)
	}

	snap, err := s.snapshotFor(0, func(*tuple.Tuple) (float64, bool) { return 0, false })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	if !s.fs.Exists(fracFile) {
		t.Fatal("merged fracture file removed while a query snapshot pins it")
	}
	// The snapshot must still answer from the old generation.
	rs, _, err := s.collect(context.Background(), snap, func(ctx context.Context, tab *upi.Table) ([]upi.Result, upi.QueryStats, error) {
		return tab.Query(ctx, concValue(3), 0.1)
	}, nil)
	if err != nil {
		t.Fatalf("query over pinned old generation: %v", err)
	}
	if len(rs) == 0 {
		t.Fatal("pinned old generation returned nothing")
	}
	snap.release()
	if s.fs.Exists(fracFile) {
		t.Fatal("old generation files not removed after last pin released")
	}
	for _, name := range s.fs.List() {
		if strings.Contains(name, ".frac") {
			t.Fatalf("stale fracture file after merge: %s", name)
		}
	}
}

// TestConcurrentQueriesAndMerges hammers one store with readers while
// merges and flushes run; meant for -race.
func TestConcurrentQueriesAndMerges(t *testing.T) {
	s, _ := buildConcStore(t, 4, 20)
	s.SetParallelism(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					if _, _, err := s.Query(context.Background(), concValue(rng.Intn(concValues)), 0.1); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, _, err := s.QuerySecondary(context.Background(), "Y", "y"+concValue(rng.Intn(concValues)), 0.1, true); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, _, err := s.TopK(context.Background(), concValue(rng.Intn(concValues)), 3); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(r))
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		id := uint64(1_000_000)
		for i := 0; i < 6; i++ {
			for j := 0; j < 30; j++ {
				if err := s.Insert(concTuple(id, int(id))); err != nil {
					errs <- err
					return
				}
				id++
			}
			if err := s.Flush(); err != nil {
				errs <- err
				return
			}
			if err := s.Merge(); err != nil {
				errs <- err
				return
			}
		}
	}()

	timer := time.NewTimer(60 * time.Second)
	defer timer.Stop()
	select {
	case <-writerDone:
	case <-timer.C:
		t.Fatal("concurrent soak deadlocked")
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestAutoMerge: the background merger keeps the fracture count at bay
// and folds everything cleanly on stop.
func TestAutoMerge(t *testing.T) {
	disk := sim.NewDisk(sim.DefaultParams())
	fs := storage.NewFS(disk)
	s, err := NewStore(fs, "am", "X", []string{"Y"}, Config{
		UPI:          upi.Options{Cutoff: 0.15},
		BufferTuples: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StartAutoMerge(AutoMergeOptions{}); err == nil {
		t.Fatal("auto-merge with no thresholds accepted")
	}
	if err := s.StartAutoMerge(AutoMergeOptions{MaxFractures: 3, Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := s.StartAutoMerge(AutoMergeOptions{MaxFractures: 3}); err == nil {
		t.Fatal("second auto-merger accepted")
	}
	for id := uint64(1); id <= 400; id++ {
		if err := s.Insert(concTuple(id, int(id))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.NumFractures() >= 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := s.NumFractures(); n >= 3+1 {
		t.Fatalf("auto-merge never caught up: %d fractures", n)
	}
	if err := s.StopAutoMerge(); err != nil {
		t.Fatalf("background merge failed: %v", err)
	}
	if err := s.StopAutoMerge(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
	// All inserted tuples are still answerable after merging settles.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for v := 0; v < concValues; v++ {
		rs, _, err := s.Query(context.Background(), concValue(v), 0)
		if err != nil {
			t.Fatal(err)
		}
		total += len(rs)
	}
	// Every tuple has two alternatives over the value universe, so the
	// sum over all values counts each tuple twice.
	if total != 2*400 {
		t.Fatalf("after auto-merge: %d value hits, want %d", total, 800)
	}
}
