package fracture

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestOpenRoundTrip(t *testing.T) {
	fs := newFS()
	rng := rand.New(rand.NewSource(19))
	s, err := NewStore(fs, "t", "X", []string{"Y"}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[uint64]bool)
	for b := 0; b < 4; b++ {
		for _, tup := range randomTuples(t, rng, uint64(b*1000+1), 120) {
			if err := s.Insert(tup); err != nil {
				t.Fatal(err)
			}
			live[tup.ID] = true
		}
		// Delete a few already-flushed tuples.
		if b > 0 {
			for id := range live {
				s.Delete(id)
				delete(live, id)
				break
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FlushPages(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(fs, "t", "X", []string{"Y"}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if re.NumFractures() != s.NumFractures() {
		t.Fatalf("fractures: %d vs %d", re.NumFractures(), s.NumFractures())
	}
	for _, qt := range []float64{0.05, 0.3, 0.7} {
		for v := 0; v < 14; v++ {
			val := fmt.Sprintf("v%02d", v)
			a, _, err := s.Query(context.Background(), val, qt)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := re.Query(context.Background(), val, qt)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("%s@%v: %d vs %d after reopen", val, qt, len(a), len(b))
			}
			for i := range a {
				if a[i].Tuple.ID != b[i].Tuple.ID || math.Abs(a[i].Confidence-b[i].Confidence) > 1e-9 {
					t.Fatalf("%s@%v result %d differs after reopen", val, qt, i)
				}
			}
		}
	}
	// The reopened store must be fully operational: insert, flush,
	// merge.
	for _, tup := range randomTuples(t, rng, 90000, 30) {
		if err := re.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := re.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := re.Merge(); err != nil {
		t.Fatal(err)
	}
	if re.NumFractures() != 0 {
		t.Fatal("merge after reopen failed")
	}
}

func TestOpenAfterMerge(t *testing.T) {
	fs := newFS()
	rng := rand.New(rand.NewSource(23))
	s, _ := NewStore(fs, "t", "X", []string{"Y"}, defaultOpts())
	for _, tup := range randomTuples(t, rng, 1, 150) {
		s.Insert(tup)
	}
	s.Flush()
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushPages(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(fs, "t", "X", []string{"Y"}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if re.NumFractures() != 0 {
		t.Fatalf("fractures after reopen: %d", re.NumFractures())
	}
	total := 0
	for v := 0; v < 14; v++ {
		rs, _, err := re.Query(context.Background(), fmt.Sprintf("v%02d", v), 0)
		if err != nil {
			t.Fatal(err)
		}
		total += len(rs)
	}
	if total < 150 {
		t.Fatalf("tuples lost: %d", total)
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(newFS(), "nope", "X", nil, defaultOpts()); err == nil {
		t.Fatal("open of missing store accepted")
	}
}

// TestOpenDropsUnflushedBuffer documents the durability contract: RAM
// buffer contents do not survive a reopen.
func TestOpenDropsUnflushedBuffer(t *testing.T) {
	fs := newFS()
	rng := rand.New(rand.NewSource(29))
	s, _ := NewStore(fs, "t", "X", []string{"Y"}, defaultOpts())
	flushed := randomTuples(t, rng, 1, 50)
	for _, tup := range flushed {
		s.Insert(tup)
	}
	s.Flush()
	for _, tup := range randomTuples(t, rng, 1000, 50) { // never flushed
		s.Insert(tup)
	}
	s.FlushPages()
	re, err := Open(fs, "t", "X", []string{"Y"}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for v := 0; v < 14; v++ {
		rs, _, _ := re.Query(context.Background(), fmt.Sprintf("v%02d", v), 0)
		total += len(rs)
	}
	if total < 50 || total >= 100 {
		t.Fatalf("reopened store has %d results; want only the flushed ~50+", total)
	}
	if re.BufferedInserts() != 0 {
		t.Fatal("buffer should be empty after reopen")
	}
}
