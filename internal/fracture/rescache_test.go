package fracture

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"upidb/internal/obs"
	"upidb/internal/prob"
)

// cachedStore builds a store with the result cache enabled and a
// readable metrics bundle.
func cachedStore(t *testing.T, capacity int) (*Store, *obs.EngineMetrics) {
	t.Helper()
	met := obs.NewEngineMetrics(obs.NewRegistry())
	opts := defaultOpts()
	opts.ResultCache = capacity
	opts.Metrics = met
	rng := rand.New(rand.NewSource(7))
	s, err := BulkLoad(newFS(), "rc", "X", []string{"Y"}, opts, randomTuples(t, rng, 1, 120))
	if err != nil {
		t.Fatal(err)
	}
	return s, met
}

// TestResultCacheHitReplaysExecution: a repeated PTQ is served from the
// cache with byte-identical results and statistics — modeled cost
// included — and the hit/miss counters account for it.
func TestResultCacheHitReplaysExecution(t *testing.T) {
	s, met := cachedStore(t, 8)
	defer s.Close()
	ctx := context.Background()

	r1, st1, err := s.Query(ctx, "v03", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if met.ResultCacheMisses.Value() != 1 || met.ResultCacheHits.Value() != 0 {
		t.Fatalf("after first run: hits %d misses %d",
			met.ResultCacheHits.Value(), met.ResultCacheMisses.Value())
	}
	r2, st2, err := s.Query(ctx, "v03", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if met.ResultCacheHits.Value() != 1 {
		t.Fatalf("second run did not hit: hits %d", met.ResultCacheHits.Value())
	}
	if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(st1, st2) {
		t.Fatalf("cached replay diverged:\n %v %+v\nvs %v %+v", r1, st1, r2, st2)
	}
	if st2.ModeledTime == 0 {
		t.Fatal("cached stats lost the modeled cost")
	}

	// Secondary PTQs are cacheable too.
	sr1, sst1, err := s.QuerySecondary(ctx, "Y", "cv05", 0.3, true)
	if err != nil {
		t.Fatal(err)
	}
	sr2, sst2, err := s.QuerySecondary(ctx, "Y", "cv05", 0.3, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr1, sr2) || !reflect.DeepEqual(sst1, sst2) {
		t.Fatal("secondary cached replay diverged")
	}

	// Top-k is not cacheable: repeats never hit beyond the two PTQ hits.
	hits := met.ResultCacheHits.Value()
	if _, _, err := s.TopK(ctx, "v03", 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.TopK(ctx, "v03", 5); err != nil {
		t.Fatal(err)
	}
	if met.ResultCacheHits.Value() != hits {
		t.Fatal("top-k repeat was served from the result cache")
	}
}

// TestResultCacheInvalidation: every write class — insert, delete,
// flush, merge — invalidates, and DropCaches purges.
func TestResultCacheInvalidation(t *testing.T) {
	s, met := cachedStore(t, 8)
	defer s.Close()
	ctx := context.Background()
	run := func() ([]uint64, int64) {
		t.Helper()
		rs, _, err := s.Query(ctx, "v03", 0.2)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, 0, len(rs))
		for _, r := range rs {
			ids = append(ids, r.Tuple.ID)
		}
		return ids, met.ResultCacheHits.Value()
	}

	run() // populate
	if _, h := run(); h != 1 {
		t.Fatalf("warm hit count: %d", h)
	}

	// Insert a new match: the cache must not serve the stale set.
	if err := s.Insert(mkTuple(t, 999, 1.0, prob.Alternative{Value: "v03", Prob: 0.9})); err != nil {
		t.Fatal(err)
	}
	before := len(mustQuery(t, s, "v03", 0.2))
	if met.ResultCacheInvalidations.Value() == 0 {
		t.Fatal("insert did not invalidate")
	}
	if _, h := run(); h != 2 {
		t.Fatalf("re-populated entry did not hit: %d", h)
	}

	// Delete invalidates.
	if err := s.Delete(999); err != nil {
		t.Fatal(err)
	}
	after := len(mustQuery(t, s, "v03", 0.2))
	if after != before-1 {
		t.Fatalf("delete not visible through cache: %d vs %d", after, before)
	}

	// Flush invalidates even though content is unchanged: a fresh
	// execution reads one more partition, and the cached statistics
	// must never diverge from what a fresh run reports.
	mustQuery(t, s, "v03", 0.2) // populate
	inv := met.ResultCacheInvalidations.Value()
	if err := s.Insert(mkTuple(t, 1000, 1.0, prob.Alternative{Value: "zzz", Prob: 0.9})); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if met.ResultCacheInvalidations.Value() <= inv {
		t.Fatal("flush did not invalidate")
	}
	_, stFresh, err := s.Query(ctx, "v03", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if stFresh.PartitionsRead != 1+s.NumFractures() {
		t.Fatalf("post-flush stats stale: read %d partitions, have %d",
			stFresh.PartitionsRead, 1+s.NumFractures())
	}

	// Merge invalidates (epoch bumps under the swap lock).
	inv = met.ResultCacheInvalidations.Value()
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	if met.ResultCacheInvalidations.Value() <= inv {
		t.Fatal("merge did not invalidate")
	}

	// DropCaches purges: the next repeat is a miss again.
	mustQuery(t, s, "v03", 0.2)
	hits := met.ResultCacheHits.Value()
	s.DropCaches()
	mustQuery(t, s, "v03", 0.2)
	if met.ResultCacheHits.Value() != hits {
		t.Fatal("DropCaches left the result cache warm")
	}
}

// TestResultCacheEpochProtection: a write that lands between Prepare
// and the drain's completion must keep that drain's result set out of
// the cache — the set reflects the pre-write snapshot.
func TestResultCacheEpochProtection(t *testing.T) {
	s, met := cachedStore(t, 8)
	defer s.Close()
	ctx := context.Background()

	p, err := s.Prepare(ctx, Req{Kind: KindPTQ, Value: "v03", QT: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// The write intervenes while the query is in flight.
	if err := s.Insert(mkTuple(t, 999, 1.0, prob.Alternative{Value: "v03", Prob: 0.9})); err != nil {
		t.Fatal(err)
	}
	stale, _, err := p.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The drained set is pre-insert; committing it would poison the
	// cache. The next run must miss and see the insert.
	fresh := mustQuery(t, s, "v03", 0.2)
	if met.ResultCacheHits.Value() != 0 {
		t.Fatal("post-write query hit an entry the stale drain committed")
	}
	if len(fresh) != len(stale)+1 {
		t.Fatalf("fresh run missing the insert: %d vs stale %d", len(fresh), len(stale))
	}
}

// TestResultCacheStreamCommit: only a naturally exhausted stream
// commits; an early Close proves nothing about the full set and must
// not.
func TestResultCacheStreamCommit(t *testing.T) {
	s, met := cachedStore(t, 8)
	defer s.Close()
	ctx := context.Background()

	// Early close: no commit.
	p, err := s.Prepare(ctx, Req{Kind: KindPTQ, Value: "v03", QT: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stream(ctx)
	if _, ok, err := st.Next(); err != nil || !ok {
		t.Fatalf("first pull: %v %v", ok, err)
	}
	st.Close()
	mustQuery(t, s, "v03", 0.2)
	if met.ResultCacheHits.Value() != 0 {
		t.Fatal("partially drained stream committed a result set")
	}

	// The materialized run above committed; a full stream drain now
	// replays it, and a fresh shape drained to exhaustion commits too.
	p, err = s.Prepare(ctx, Req{Kind: KindPTQ, Value: "v05", QT: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	st = p.Stream(ctx)
	var streamed []uint64
	for {
		r, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		streamed = append(streamed, r.Tuple.ID)
	}
	streamStats := st.Stats()
	hits := met.ResultCacheHits.Value()
	rs, stMat, err := s.Query(ctx, "v05", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if met.ResultCacheHits.Value() != hits+1 {
		t.Fatal("exhausted stream did not commit its result set")
	}
	if len(rs) != len(streamed) || !reflect.DeepEqual(stMat, streamStats) {
		t.Fatalf("stream-committed entry diverges: %d vs %d results, %+v vs %+v",
			len(rs), len(streamed), stMat, streamStats)
	}
}

func mustQuery(t *testing.T, s *Store, value string, qt float64) []uint64 {
	t.Helper()
	rs, _, err := s.Query(context.Background(), value, qt)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 0, len(rs))
	for _, r := range rs {
		ids = append(ids, r.Tuple.ID)
	}
	return ids
}
