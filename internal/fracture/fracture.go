// Package fracture implements the Fractured UPI of paper Section 4.
//
// A fractured UPI buffers inserts and deletes in RAM; when the buffer
// fills, the changes are written out sequentially as a new *fracture*
// — an independent UPI (heap file + cutoff index + secondary indexes)
// plus a delete set holding the IDs of tuples deleted — or replaced by
// an upsert — since the previous flush. A partition's delete set
// applies only to *older* partitions, so inserting an existing ID
// supersedes the old version without touching it: queries consult the
// in-memory buffer, every fracture and the main UPI, union the results
// and drop tuples present in any applicable delete set. Merge folds
// all fractures back into the main UPI with one sequential k-way merge
// pass, restoring query performance (Figure 10) and physically
// dropping deleted and superseded versions.
//
// # Concurrency
//
// Store is safe for concurrent use. An RWMutex guards the partition
// list, the RAM buffer and the delete sets: queries snapshot the
// partition set under the read lock and then scan the on-disk
// partitions — which are immutable once built — outside it, so readers
// never block each other. Insert and Delete block readers only
// momentarily; a Flush (explicit or buffer-triggered) holds the write
// lock while the new fracture is bulk-built, the paper's one
// sequential write. Queries fan the per-partition scans out across a bounded
// worker pool (Config.Parallelism); each partition records its I/O on
// a private sim.Tape that is replayed in partition order afterwards,
// so the modeled cost is identical to a serial scan regardless of how
// the goroutines interleave.
//
// Merge may run in the background (see StartAutoMerge): it snapshots
// the partitions to fold under the write lock, builds the new main
// generation without holding any lock, and atomically swaps it in.
// Old partition files are reference-counted and removed only after the
// last in-flight query over the previous generation finishes.
//
// Queries execute either materialized (Store.Run / Prepared.Collect:
// every partition scanned to completion, tapes replayed in partition
// order) or incrementally (Prepared.Stream: per-partition pull-based
// cursors under a k-way merge, each partition's tape replayed and its
// pin released the moment its cursor is exhausted). Both see the same
// snapshot and produce identical results in identical order.
package fracture

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"upidb/internal/obs"
	"upidb/internal/stats"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// ErrClosed reports an operation on a store after Close. It is the
// shared upi.ErrClosed sentinel (the continuous UPI returns the same
// value), re-exported here for compatibility; the public facade
// aliases it, so errors.Is works across the API boundary.
var ErrClosed = upi.ErrClosed

// Config is the one canonical configuration of a fractured UPI. The
// public facade's functional options (upidb.WithCutoff, WithDurability,
// ...) all thread into this struct; nothing is duplicated above it.
type Config struct {
	// UPI are the parameters each fracture and the main UPI share.
	// (Section 4.2 notes fractures *may* use different parameters; the
	// Store applies the current value of Config.UPI to each new
	// fracture, so callers can retune between flushes.)
	UPI upi.Options
	// BufferTuples is the insert-buffer capacity; reaching it triggers
	// an automatic flush. 0 means flush only on explicit Flush calls.
	BufferTuples int
	// Parallelism bounds the worker goroutines one query fans out
	// across the main UPI and the fractures. 0 means GOMAXPROCS;
	// 1 scans partitions serially. The modeled I/O cost of a query is
	// the same at every setting.
	Parallelism int
	// StatsStaleness is the statistics-staleness threshold the facade
	// applies to the table's catalog (the fracture layer itself does
	// not read it; it lives here so one struct carries the whole table
	// configuration). 0 means the catalog default; negative disables
	// automatic planner routing.
	StatsStaleness float64
	// Durable, when true, gives the store crash-consistency: every
	// Insert/Delete is WAL-logged and fsynced before it is
	// acknowledged, flushes and merges commit through an atomically
	// renamed manifest, and Open replays the WAL to reconstruct the
	// RAM buffer. When false (the default), the store keeps the
	// legacy simulation behavior: no WAL, no manifest, no fsync — and
	// no extra bytes, so modeled costs are byte-identical to earlier
	// releases.
	Durable bool
	// Metrics, when set, receives engine-level observability counters
	// and histograms (inserts, flushes, merges, WAL fsync timing, pin
	// releases, ...). nil disables instrumentation at zero cost; the
	// metrics never touch the I/O tapes, so modeled query costs are
	// identical either way.
	Metrics *obs.EngineMetrics
	// ResultCache, when positive, caches up to that many point-query
	// result sets (PTQ and secondary-PTQ) per store, invalidated
	// wholesale by any write to the store — see rescache.go. A hit
	// replays the stored results and statistics without pinning a
	// snapshot or touching the modeled-I/O tapes. 0 disables caching.
	ResultCache int
}

// Store is a fractured UPI. It is safe for concurrent use: any number
// of concurrent readers (Query, QuerySecondary, TopK) may run alongside
// writers (Insert, Delete, Flush) and a Merge — including the
// background merger started with StartAutoMerge.
type Store struct {
	fs       *storage.FS
	name     string
	attr     string
	secAttrs []string

	// mu guards every field below. Queries hold it only while
	// snapshotting; partition scans run outside it.
	mu     sync.RWMutex
	opts   Config
	closed bool

	main      *upi.Table
	mainRef   *partRef // lifetime of the current main's files
	mainGen   int      // generation of the current main (for the manifest)
	fractures []*fract
	fracGens  []int // generation number of each fracture (for file names)
	gen       int   // generation counter for fracture / main file names

	// wal is the write-ahead log, present only on durable stores. Its
	// appends are serialized by mu, in buffer-mutation order.
	wal *wal

	// Insert buffer ("on RAM" in Figure 1): pending tuples by ID, plus
	// their arrival order for deterministic flushing.
	bufTuples map[uint64]*tuple.Tuple
	bufOrder  []uint64
	// Pending delete set: IDs deleted since the last flush.
	bufDeletes map[uint64]bool

	// cat, when set, receives statistics deltas: inserts and deletes
	// feed it incrementally, and merges re-derive it from their
	// whole-heap scan.
	cat *stats.Catalog

	// am is the background merger, if StartAutoMerge is active.
	// amFailed holds a merger that died on a merge error until
	// StopAutoMerge collects it.
	am       *autoMerger
	amFailed *autoMerger

	// mergeMu serializes whole merges (manual and background) so at
	// most one new main generation is under construction at a time.
	mergeMu sync.Mutex

	// rc is the opt-in point-result cache (Config.ResultCache > 0);
	// nil when disabled. It carries its own synchronization.
	rc *resultCache
}

// fract is one on-disk fracture: an independent UPI and the delete set
// flushed with it. The delete set applies to *older* data (the main
// UPI and earlier fractures), never to this fracture's own inserts.
type fract struct {
	table   *upi.Table
	deleted map[uint64]bool
	ref     *partRef
}

// partRef tracks the on-disk lifetime of one partition (the main UPI
// or a fracture). Query snapshots pin every partition they reference;
// a merge that replaces partitions dooms them with the list of files
// to remove, and the files disappear when the last pin is released —
// so in-flight queries always finish on the generation they started
// on, even while a background merge swaps the main underneath them.
type partRef struct {
	fs *storage.FS

	mu     sync.Mutex
	refs   int
	doomed bool
	dead   []string
}

func newPartRef(fs *storage.FS) *partRef { return &partRef{fs: fs} }

func (p *partRef) pin() {
	p.mu.Lock()
	p.refs++
	p.mu.Unlock()
}

func (p *partRef) unpin() {
	p.mu.Lock()
	p.refs--
	var dead []string
	if p.doomed && p.refs == 0 {
		dead, p.dead = p.dead, nil
	}
	p.mu.Unlock()
	p.remove(dead)
}

// doom marks the partition's files for removal once no query pins it.
func (p *partRef) doom(files []string) {
	p.mu.Lock()
	p.doomed = true
	p.dead = append(p.dead, files...)
	var dead []string
	if p.refs == 0 {
		dead, p.dead = p.dead, nil
	}
	p.mu.Unlock()
	p.remove(dead)
}

func (p *partRef) remove(files []string) {
	for _, f := range files {
		if p.fs.Exists(f) {
			// Remove on the in-memory FS only fails for missing files,
			// which Exists just excluded.
			_ = p.fs.Remove(f)
		}
	}
}

// NewStore creates an empty fractured UPI.
func NewStore(fs *storage.FS, name, attr string, secAttrs []string, opts Config) (*Store, error) {
	opts.UPI = opts.UPI.WithDefaults()
	s := newShell(fs, name, attr, secAttrs, opts)
	main, err := upi.Create(fs, s.mainName(0), attr, secAttrs, opts.UPI)
	if err != nil {
		return nil, err
	}
	s.main = main
	if err := s.initDurable(); err != nil {
		return nil, err
	}
	return s, nil
}

// BulkLoad creates a fractured UPI whose main partition is bulk-built
// from tuples (the initial load of the experiments).
func BulkLoad(fs *storage.FS, name, attr string, secAttrs []string, opts Config, tuples []*tuple.Tuple) (*Store, error) {
	opts.UPI = opts.UPI.WithDefaults()
	s := newShell(fs, name, attr, secAttrs, opts)
	main, err := upi.BulkBuild(fs, s.mainName(0), attr, secAttrs, opts.UPI, tuples)
	if err != nil {
		return nil, err
	}
	s.main = main
	if err := s.initDurable(); err != nil {
		return nil, err
	}
	return s, nil
}

// newShell builds a Store with everything but the main partition.
func newShell(fs *storage.FS, name, attr string, secAttrs []string, opts Config) *Store {
	if opts.Metrics == nil {
		// A zero EngineMetrics is an all-no-op sink (every metric
		// method is nil-safe), so instrumentation sites stay
		// unconditional.
		opts.Metrics = &obs.EngineMetrics{}
	}
	s := &Store{
		fs: fs, name: name, attr: attr,
		secAttrs:   append([]string(nil), secAttrs...),
		opts:       opts,
		mainRef:    newPartRef(fs),
		bufTuples:  make(map[uint64]*tuple.Tuple),
		bufDeletes: make(map[uint64]bool),
	}
	if opts.ResultCache > 0 {
		s.rc = newResultCache(opts.ResultCache, opts.Metrics)
	}
	return s
}

// initDurable brings a freshly created durable store to a recoverable
// on-disk state: main partition fsynced, manifest committed, empty WAL
// in place. A no-op for non-durable stores.
func (s *Store) initDurable() error {
	if !s.opts.Durable {
		return nil
	}
	if err := s.main.Flush(); err != nil {
		return err
	}
	if err := syncTableFiles(s.fs, s.main); err != nil {
		return err
	}
	if err := writeManifest(s.fs, s.name, s.mainGen, nil); err != nil {
		return err
	}
	w, err := createWAL(s.fs, s.name, s.opts.Metrics)
	if err != nil {
		return err
	}
	s.wal = w
	return nil
}

func (s *Store) mainName(gen int) string { return fmt.Sprintf("%s.main%d", s.name, gen) }
func (s *Store) fracName(id int) string  { return fmt.Sprintf("%s.frac%d", s.name, id) }
func (s *Store) delSetFile(id int) string {
	return fmt.Sprintf("%s.frac%d.delset", s.name, id)
}

// Main exposes the main UPI (for stats and cache control). The
// returned table is replaced — not mutated — by Merge, so it is safe
// to read concurrently; it may be one generation stale by the time the
// caller uses it.
func (s *Store) Main() *upi.Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.main
}

// NumFractures returns the current fracture count (Nfrac in the cost
// model).
func (s *Store) NumFractures() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.fractures)
}

// BufferedInserts returns the number of tuples waiting in RAM.
func (s *Store) BufferedInserts() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bufTuples)
}

// SetFractureOptions changes the UPI parameters used for fractures
// created by future flushes (Section 4.2: "each fracture can have
// different tuning parameters as long as the UPI files in the fracture
// share the same parameters... we propose to dynamically tune these
// parameters by analyzing recent query workloads... whenever the
// insert buffer is flushed"). Existing partitions are unaffected;
// a later Merge rebuilds the main UPI with the current options.
func (s *Store) SetFractureOptions(o upi.Options) error {
	if err := o.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	s.opts.UPI = o.WithDefaults()
	s.mu.Unlock()
	return nil
}

// FractureOptions returns the UPI parameters future fractures will use.
func (s *Store) FractureOptions() upi.Options {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.opts.UPI
}

// SetStats attaches a statistics catalog: from now on every Insert
// and Delete applies its delta to the catalog, and every Merge
// re-derives it from the merge's own whole-heap scan. The caller is
// responsible for seeding the catalog with the table's pre-existing
// content (or leaving it unseeded so routing falls back to heuristics
// until the first merge).
func (s *Store) SetStats(c *stats.Catalog) {
	s.mu.Lock()
	s.cat = c
	if c != nil {
		// A WAL-recovered store may already hold buffered operations
		// that predate the catalog attachment; feed their deltas now so
		// the catalog sees exactly what a crash-free run would have.
		for _, id := range s.bufOrder {
			c.AddTuple(s.bufTuples[id])
		}
		for id := range s.bufDeletes {
			if _, buffered := s.bufTuples[id]; !buffered {
				c.NoteDeleteID(id)
			}
		}
	}
	s.mu.Unlock()
}

// SetParallelism changes the per-query partition fan-out width
// (0 = GOMAXPROCS, 1 = serial). Modeled query costs do not depend on
// it.
func (s *Store) SetParallelism(n int) {
	s.mu.Lock()
	s.opts.Parallelism = n
	s.mu.Unlock()
}

// parallelismLocked resolves the effective worker count.
func (s *Store) parallelismLocked() int {
	if s.opts.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.opts.Parallelism
}

// Insert buffers a tuple, adding it if the ID is new and replacing
// any existing version otherwise (upsert): the ID joins the pending
// delete set, which applies only to partitions older than the
// fracture this buffer flushes into — so an older on-disk version is
// superseded immediately at query time and dropped physically by the
// next merge, while the new version is served from the buffer (and
// later its own fracture) untouched.
func (s *Store) Insert(tup *tuple.Tuple) error {
	if err := tup.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	// WAL first: the operation is applied (and later acknowledged)
	// only once its record is durable, so recovery never holds writes
	// the caller was not promised, and a failed append changes
	// nothing.
	if s.wal != nil {
		if err := s.wal.appendInsert(tup); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	_, replacing := s.bufTuples[tup.ID]
	s.applyInsertLocked(tup)
	s.opts.Metrics.Inserts.Inc()
	if replacing {
		// An upsert of an on-disk version is only visible as statistics
		// staleness; this counts the detectable kind — a replaced
		// still-buffered version.
		s.opts.Metrics.Upserts.Inc()
	}
	var err error
	flushed := false
	if s.opts.BufferTuples > 0 && len(s.bufTuples) >= s.opts.BufferTuples {
		err = s.flushLocked()
		flushed = err == nil
	}
	am := s.am
	s.mu.Unlock()
	if flushed && am != nil {
		am.kick()
	}
	return err
}

// applyInsertLocked is the buffer mutation of Insert, shared with WAL
// replay. Callers must hold mu.
func (s *Store) applyInsertLocked(tup *tuple.Tuple) {
	s.rc.invalidate()
	if s.cat != nil {
		// Absorb the delta: the new version counts immediately; a
		// replaced buffered version is subtracted exactly. (A replaced
		// on-disk version stays counted — AddTuple detects the
		// duplicate ID and tallies it as an unabsorbed delta until the
		// next merge re-derivation.)
		if old, exists := s.bufTuples[tup.ID]; exists {
			s.cat.RemoveTuple(old)
		}
		s.cat.AddTuple(tup)
	}
	s.bufDeletes[tup.ID] = true
	if _, exists := s.bufTuples[tup.ID]; !exists {
		s.bufOrder = append(s.bufOrder, tup.ID)
	}
	s.bufTuples[tup.ID] = tup
}

// Delete buffers a deletion by tuple ID. "Deletion is handled like
// insertion by storing a delete set which holds IDs of deleted tuples."
// Like Insert, it fails with ErrClosed once the store is closed.
func (s *Store) Delete(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal != nil {
		if err := s.wal.appendDelete(id); err != nil {
			return err
		}
	}
	s.applyDeleteLocked(id)
	s.opts.Metrics.Deletes.Inc()
	return nil
}

// applyDeleteLocked is the buffer mutation of Delete, shared with WAL
// replay. Callers must hold mu.
func (s *Store) applyDeleteLocked(id uint64) {
	s.rc.invalidate()
	if old, buffered := s.bufTuples[id]; buffered {
		// The buffered version never reached disk; cancel it and
		// subtract its statistics delta exactly, since the content is
		// known. The ID stays in the pending delete set (Insert put it
		// there), which keeps any older on-disk version deleted.
		if s.cat != nil {
			s.cat.RemoveTuple(old)
			s.cat.NoteDeleteID(id)
		}
		delete(s.bufTuples, id)
		for i, bid := range s.bufOrder {
			if bid == id {
				s.bufOrder = append(s.bufOrder[:i], s.bufOrder[i+1:]...)
				break
			}
		}
		return
	}
	// An on-disk tuple is known only by ID; the catalog cannot subtract
	// its histogram contribution, so the delete counts as staleness
	// until a merge re-derives the statistics.
	if s.cat != nil {
		s.cat.NoteDeleteID(id)
	}
	s.bufDeletes[id] = true
}

// Flush writes the buffered changes out as a new fracture: a bulk-built
// UPI over the buffered tuples plus a sequentially written delete-set
// file. A flush with empty buffers is a no-op.
func (s *Store) Flush() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	err := s.flushLocked()
	am := s.am
	s.mu.Unlock()
	if err == nil && am != nil {
		am.kick()
	}
	return err
}

// Close marks the store closed: it stops the background merger (if
// any) and makes every subsequent Insert, Delete, Flush, Merge and
// query fail with ErrClosed. In-flight queries finish normally on the
// snapshot they hold. Close returns the first background-merge error,
// like StopAutoMerge; closing twice is safe.
func (s *Store) Close() error {
	// Set closed before stopping the merger: a concurrent
	// StartAutoMerge either installed its merger first (and is stopped
	// below) or sees closed and refuses — no merger can slip in after
	// the stop.
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.StopAutoMerge()
}

func (s *Store) flushLocked() error {
	if len(s.bufTuples) == 0 && len(s.bufDeletes) == 0 {
		return nil
	}
	// A flush moves content between partitions without changing it, but
	// cached statistics (partition counts, buffer hits) would no longer
	// match a fresh execution — retire them.
	s.rc.invalidate()
	s.gen++
	id := s.gen
	tuples := make([]*tuple.Tuple, 0, len(s.bufTuples))
	for _, tid := range s.bufOrder {
		tuples = append(tuples, s.bufTuples[tid])
	}
	tab, err := upi.BulkBuild(s.fs, s.fracName(id), s.attr, s.secAttrs, s.opts.UPI, tuples)
	if err != nil {
		return err
	}
	deleted := make(map[uint64]bool, len(s.bufDeletes))
	for did := range s.bufDeletes {
		deleted[did] = true
	}
	if err := s.writeDelSet(id, deleted); err != nil {
		return err
	}
	// Durable flush ordering: fsync the fracture's files, commit the
	// new partition list through the manifest rename, and only then
	// drop the WAL records the fracture now covers. A crash at any
	// point leaves a recoverable state — before the manifest commit
	// the WAL still holds everything (the half-built fracture becomes
	// an orphan, removed on open); after it, replaying a not-yet-
	// truncated WAL merely re-applies operations the fracture already
	// holds, which upsert semantics dedupe.
	if s.opts.Durable {
		if err := syncTableFiles(s.fs, tab); err != nil {
			return err
		}
		if err := s.fs.Sync(s.delSetFile(id)); err != nil {
			return err
		}
		if err := writeManifest(s.fs, s.name, s.mainGen, append(append([]int(nil), s.fracGens...), id)); err != nil {
			return err
		}
	}
	s.fractures = append(s.fractures, &fract{table: tab, deleted: deleted, ref: newPartRef(s.fs)})
	s.fracGens = append(s.fracGens, id)
	s.opts.Metrics.Flushes.Inc()
	s.bufTuples = make(map[uint64]*tuple.Tuple)
	s.bufOrder = nil
	s.bufDeletes = make(map[uint64]bool)
	if s.wal != nil {
		// The fracture is the checkpoint; its WAL records are now
		// redundant. If this truncate fails the flush has still fully
		// committed — recovery just replays records the fracture
		// already holds.
		if err := s.wal.reset(); err != nil {
			return err
		}
	}
	return nil
}

// writeDelSet writes the delete set as one sequential file: count then
// sorted IDs.
func (s *Store) writeDelSet(id int, deleted map[uint64]bool) error {
	ids := make([]uint64, 0, len(deleted))
	for d := range deleted {
		ids = append(ids, d)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := binary.BigEndian.AppendUint64(nil, uint64(len(ids)))
	for _, d := range ids {
		buf = binary.BigEndian.AppendUint64(buf, d)
	}
	return s.fs.Create(s.delSetFile(id)).WriteAt(buf, 0)
}

// deletesAfterLocked returns the union of the delete sets of fractures
// with index > i, plus the in-RAM pending deletes. An entry stored in
// fracture i (or, with i == -1, in the main UPI) is live iff its ID is
// absent from this set. Callers must hold mu (either mode). Only the
// (rare) merge path materializes these unions; the per-query snapshot
// references the immutable per-fracture sets directly instead.
func (s *Store) deletesAfterLocked(i int) map[uint64]bool {
	out := make(map[uint64]bool)
	for j := i + 1; j < len(s.fractures); j++ {
		for id := range s.fractures[j].deleted {
			out[id] = true
		}
	}
	for id := range s.bufDeletes {
		out[id] = true
	}
	return out
}

// SizeBytes returns the total on-disk size: main, fractures and delete
// sets.
func (s *Store) SizeBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := s.main.SizeBytes()
	for _, f := range s.fractures {
		total += f.table.SizeBytes()
	}
	for _, name := range s.fs.List() {
		if strings.HasPrefix(name, s.name) && len(name) > len(s.name) && strings.HasSuffix(name, ".delset") {
			total += s.fs.Size(name)
		}
	}
	return total
}

// fractureBytes returns the on-disk size of the fractures alone (the
// size-based auto-merge trigger).
func (s *Store) fractureBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, f := range s.fractures {
		total += f.table.SizeBytes()
	}
	return total
}

// Flush-through and cache control for cold-cache measurements.

// FlushPages writes all dirty pages of all partitions to disk.
func (s *Store) FlushPages() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.main.Flush(); err != nil {
		return err
	}
	for _, f := range s.fractures {
		if err := f.table.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// DropCaches empties every partition's buffer pools and the store's
// result cache, so the next query of any shape cold-starts.
func (s *Store) DropCaches() error {
	s.rc.purge()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.main.DropCaches(); err != nil {
		return err
	}
	for _, f := range s.fractures {
		if err := f.table.DropCaches(); err != nil {
			return err
		}
	}
	return nil
}
