// Package fracture implements the Fractured UPI of paper Section 4.
//
// A fractured UPI buffers inserts and deletes in RAM; when the buffer
// fills, the changes are written out sequentially as a new *fracture*
// — an independent UPI (heap file + cutoff index + secondary indexes)
// plus a delete set holding the IDs of tuples deleted since the
// previous flush. Queries consult the in-memory buffer, every fracture
// and the main UPI, union the results and drop tuples present in any
// applicable delete set. A background-style Merge folds all fractures
// back into the main UPI with one sequential k-way merge pass,
// restoring query performance (Figure 10).
package fracture

import (
	"encoding/binary"
	"fmt"
	"sort"

	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// Options configure a fractured UPI.
type Options struct {
	// UPI are the parameters each fracture and the main UPI share.
	// (Section 4.2 notes fractures *may* use different parameters; the
	// Store applies the current value of Options.UPI to each new
	// fracture, so callers can retune between flushes.)
	UPI upi.Options
	// BufferTuples is the insert-buffer capacity; reaching it triggers
	// an automatic flush. 0 means flush only on explicit Flush calls.
	BufferTuples int
}

// Store is a fractured UPI. It is not safe for concurrent use.
type Store struct {
	fs       *storage.FS
	name     string
	attr     string
	secAttrs []string
	opts     Options

	main      *upi.Table
	fractures []*fract
	fracGens  []int // generation number of each fracture (for file names)
	gen       int   // generation counter for fracture / main file names

	// Insert buffer ("on RAM" in Figure 1): pending tuples by ID, plus
	// their arrival order for deterministic flushing.
	bufTuples map[uint64]*tuple.Tuple
	bufOrder  []uint64
	// Pending delete set: IDs deleted since the last flush.
	bufDeletes map[uint64]bool
}

// fract is one on-disk fracture: an independent UPI and the delete set
// flushed with it. The delete set applies to *older* data (the main
// UPI and earlier fractures), never to this fracture's own inserts.
type fract struct {
	table   *upi.Table
	deleted map[uint64]bool
}

// NewStore creates an empty fractured UPI.
func NewStore(fs *storage.FS, name, attr string, secAttrs []string, opts Options) (*Store, error) {
	opts.UPI = opts.UPI.WithDefaults()
	s := &Store{
		fs: fs, name: name, attr: attr,
		secAttrs:   append([]string(nil), secAttrs...),
		opts:       opts,
		bufTuples:  make(map[uint64]*tuple.Tuple),
		bufDeletes: make(map[uint64]bool),
	}
	main, err := upi.Create(fs, s.mainName(0), attr, secAttrs, opts.UPI)
	if err != nil {
		return nil, err
	}
	s.main = main
	return s, nil
}

// BulkLoad creates a fractured UPI whose main partition is bulk-built
// from tuples (the initial load of the experiments).
func BulkLoad(fs *storage.FS, name, attr string, secAttrs []string, opts Options, tuples []*tuple.Tuple) (*Store, error) {
	opts.UPI = opts.UPI.WithDefaults()
	s := &Store{
		fs: fs, name: name, attr: attr,
		secAttrs:   append([]string(nil), secAttrs...),
		opts:       opts,
		bufTuples:  make(map[uint64]*tuple.Tuple),
		bufDeletes: make(map[uint64]bool),
	}
	main, err := upi.BulkBuild(fs, s.mainName(0), attr, secAttrs, opts.UPI, tuples)
	if err != nil {
		return nil, err
	}
	s.main = main
	return s, nil
}

func (s *Store) mainName(gen int) string { return fmt.Sprintf("%s.main%d", s.name, gen) }
func (s *Store) fracName(id int) string  { return fmt.Sprintf("%s.frac%d", s.name, id) }
func (s *Store) delSetFile(id int) string {
	return fmt.Sprintf("%s.frac%d.delset", s.name, id)
}

// Main exposes the main UPI (for stats and cache control).
func (s *Store) Main() *upi.Table { return s.main }

// NumFractures returns the current fracture count (Nfrac in the cost
// model).
func (s *Store) NumFractures() int { return len(s.fractures) }

// BufferedInserts returns the number of tuples waiting in RAM.
func (s *Store) BufferedInserts() int { return len(s.bufTuples) }

// SetFractureOptions changes the UPI parameters used for fractures
// created by future flushes (Section 4.2: "each fracture can have
// different tuning parameters as long as the UPI files in the fracture
// share the same parameters... we propose to dynamically tune these
// parameters by analyzing recent query workloads... whenever the
// insert buffer is flushed"). Existing partitions are unaffected;
// a later Merge rebuilds the main UPI with the current options.
func (s *Store) SetFractureOptions(o upi.Options) error {
	if err := o.Validate(); err != nil {
		return err
	}
	s.opts.UPI = o.WithDefaults()
	return nil
}

// FractureOptions returns the UPI parameters future fractures will use.
func (s *Store) FractureOptions() upi.Options { return s.opts.UPI }

// Insert buffers a tuple; the write reaches disk at the next flush.
func (s *Store) Insert(tup *tuple.Tuple) error {
	if err := tup.Validate(); err != nil {
		return err
	}
	// Re-inserting an ID pending deletion revives it.
	delete(s.bufDeletes, tup.ID)
	if _, exists := s.bufTuples[tup.ID]; !exists {
		s.bufOrder = append(s.bufOrder, tup.ID)
	}
	s.bufTuples[tup.ID] = tup
	if s.opts.BufferTuples > 0 && len(s.bufTuples) >= s.opts.BufferTuples {
		return s.Flush()
	}
	return nil
}

// Delete buffers a deletion by tuple ID. "Deletion is handled like
// insertion by storing a delete set which holds IDs of deleted tuples."
func (s *Store) Delete(id uint64) {
	if _, buffered := s.bufTuples[id]; buffered {
		// Never reached disk; cancel the pending insert.
		delete(s.bufTuples, id)
		for i, bid := range s.bufOrder {
			if bid == id {
				s.bufOrder = append(s.bufOrder[:i], s.bufOrder[i+1:]...)
				break
			}
		}
		return
	}
	s.bufDeletes[id] = true
}

// Flush writes the buffered changes out as a new fracture: a bulk-built
// UPI over the buffered tuples plus a sequentially written delete-set
// file. A flush with empty buffers is a no-op.
func (s *Store) Flush() error {
	if len(s.bufTuples) == 0 && len(s.bufDeletes) == 0 {
		return nil
	}
	s.gen++
	id := s.gen
	tuples := make([]*tuple.Tuple, 0, len(s.bufTuples))
	for _, tid := range s.bufOrder {
		tuples = append(tuples, s.bufTuples[tid])
	}
	tab, err := upi.BulkBuild(s.fs, s.fracName(id), s.attr, s.secAttrs, s.opts.UPI, tuples)
	if err != nil {
		return err
	}
	deleted := make(map[uint64]bool, len(s.bufDeletes))
	for did := range s.bufDeletes {
		deleted[did] = true
	}
	if err := s.writeDelSet(id, deleted); err != nil {
		return err
	}
	s.fractures = append(s.fractures, &fract{table: tab, deleted: deleted})
	s.fracGens = append(s.fracGens, id)
	s.bufTuples = make(map[uint64]*tuple.Tuple)
	s.bufOrder = nil
	s.bufDeletes = make(map[uint64]bool)
	return nil
}

// writeDelSet writes the delete set as one sequential file: count then
// sorted IDs.
func (s *Store) writeDelSet(id int, deleted map[uint64]bool) error {
	ids := make([]uint64, 0, len(deleted))
	for d := range deleted {
		ids = append(ids, d)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := binary.BigEndian.AppendUint64(nil, uint64(len(ids)))
	for _, d := range ids {
		buf = binary.BigEndian.AppendUint64(buf, d)
	}
	return s.fs.Create(s.delSetFile(id)).WriteAt(buf, 0)
}

// deletesAfter returns the union of the delete sets of fractures with
// index > i, plus the in-RAM pending deletes. An entry stored in
// fracture i (or, with i == -1, in the main UPI) is live iff its ID is
// absent from this set.
func (s *Store) deletesAfter(i int) map[uint64]bool {
	out := make(map[uint64]bool)
	for j := i + 1; j < len(s.fractures); j++ {
		for id := range s.fractures[j].deleted {
			out[id] = true
		}
	}
	for id := range s.bufDeletes {
		out[id] = true
	}
	return out
}

// SizeBytes returns the total on-disk size: main, fractures and delete
// sets.
func (s *Store) SizeBytes() int64 {
	total := s.main.SizeBytes()
	for _, f := range s.fractures {
		total += f.table.SizeBytes()
	}
	for _, name := range s.fs.List() {
		if len(name) > len(s.name) && name[:len(s.name)] == s.name && hasSuffix(name, ".delset") {
			total += s.fs.Size(name)
		}
	}
	return total
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// Flush-through and cache control for cold-cache measurements.

// FlushPages writes all dirty pages of all partitions to disk.
func (s *Store) FlushPages() error {
	if err := s.main.Flush(); err != nil {
		return err
	}
	for _, f := range s.fractures {
		if err := f.table.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// DropCaches empties every partition's buffer pools.
func (s *Store) DropCaches() error {
	if err := s.main.DropCaches(); err != nil {
		return err
	}
	for _, f := range s.fractures {
		if err := f.table.DropCaches(); err != nil {
			return err
		}
	}
	return nil
}
