package fracture

import (
	"fmt"
	"sync"
	"time"
)

// AutoMergeOptions tune the background merger.
type AutoMergeOptions struct {
	// MaxFractures triggers a merge when the fracture count reaches
	// this value. 0 disables the count trigger.
	MaxFractures int
	// MaxFractureBytes triggers a merge when the total on-disk size of
	// the fractures reaches this value. 0 disables the size trigger.
	MaxFractureBytes int64
	// Interval is the polling period between threshold checks; flushes
	// additionally kick an immediate check. Default 100ms.
	Interval time.Duration
}

// autoMerger is the background merge goroutine's handle.
type autoMerger struct {
	opts  AutoMergeOptions
	stop  chan struct{}
	kicks chan struct{}
	wg    sync.WaitGroup

	errMu sync.Mutex
	err   error // first background merge failure
}

// kick requests an immediate threshold check (non-blocking).
func (a *autoMerger) kick() {
	select {
	case a.kicks <- struct{}{}:
	default:
	}
}

// StartAutoMerge launches a background goroutine that merges the store
// whenever the fracture count or total fracture size crosses the given
// thresholds. Queries keep running during a background merge and
// in-flight ones finish on the generation they started on; the swap to
// the merged main is atomic. At least one threshold must be set.
// Returns an error if an auto-merger is already running.
func (s *Store) StartAutoMerge(opts AutoMergeOptions) error {
	if opts.MaxFractures <= 0 && opts.MaxFractureBytes <= 0 {
		return fmt.Errorf("fracture: auto-merge needs MaxFractures or MaxFractureBytes")
	}
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	am := &autoMerger{
		opts:  opts,
		stop:  make(chan struct{}),
		kicks: make(chan struct{}, 1),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.am != nil {
		s.mu.Unlock()
		return fmt.Errorf("fracture: auto-merge already running on %q", s.name)
	}
	s.am = am
	s.mu.Unlock()

	am.wg.Add(1)
	go func() {
		defer am.wg.Done()
		ticker := time.NewTicker(am.opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-am.stop:
				return
			case <-ticker.C:
			case <-am.kicks:
			}
			if !s.shouldMerge(am.opts) {
				continue
			}
			if err := s.Merge(); err != nil {
				am.errMu.Lock()
				if am.err == nil {
					am.err = err
				}
				am.errMu.Unlock()
				// Disarm so flush kicks stop going nowhere and a
				// later StartAutoMerge can re-arm; the error stays
				// retrievable through StopAutoMerge.
				s.mu.Lock()
				if s.am == am {
					s.am = nil
					s.amFailed = am
				}
				s.mu.Unlock()
				return
			}
		}
	}()
	return nil
}

// shouldMerge checks the auto-merge thresholds.
func (s *Store) shouldMerge(opts AutoMergeOptions) bool {
	if opts.MaxFractures > 0 && s.NumFractures() >= opts.MaxFractures {
		return true
	}
	if opts.MaxFractureBytes > 0 && s.fractureBytes() >= opts.MaxFractureBytes {
		return true
	}
	return false
}

// StopAutoMerge stops the background merger, waits for any in-progress
// merge to finish, and returns the first error a background merge hit
// (nil if none, or if no merger was running). A merger that already
// died on a merge error is reported here too. Safe to call twice.
func (s *Store) StopAutoMerge() error {
	s.mu.Lock()
	am := s.am
	if am == nil {
		am = s.amFailed
	}
	s.am = nil
	s.amFailed = nil
	s.mu.Unlock()
	if am == nil {
		return nil
	}
	close(am.stop)
	am.wg.Wait()
	am.errMu.Lock()
	defer am.errMu.Unlock()
	return am.err
}
