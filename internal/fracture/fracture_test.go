package fracture

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"upidb/internal/prob"
	"upidb/internal/sim"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

func newFS() *storage.FS { return storage.NewFS(sim.NewDisk(sim.DefaultParams())) }

func mkTuple(t *testing.T, id uint64, exist float64, alts ...prob.Alternative) *tuple.Tuple {
	t.Helper()
	d, err := prob.NewDiscrete(alts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := prob.NewDiscrete([]prob.Alternative{{Value: "c" + alts[0].Value, Prob: 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	return &tuple.Tuple{ID: id, Existence: exist, Unc: []tuple.UncField{
		{Name: "X", Dist: d}, {Name: "Y", Dist: c},
	}}
}

func defaultOpts() Config {
	return Config{UPI: upi.Options{Cutoff: 0.1, PageSize: 512}}
}

func randomTuples(t *testing.T, rng *rand.Rand, startID uint64, n int) []*tuple.Tuple {
	t.Helper()
	out := make([]*tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		v1 := fmt.Sprintf("v%02d", rng.Intn(12))
		v2 := fmt.Sprintf("v%02d", (rng.Intn(12)+5)%14)
		p := 0.3 + rng.Float64()*0.6
		alts := []prob.Alternative{{Value: v1, Prob: p}}
		if v2 != v1 {
			alts = append(alts, prob.Alternative{Value: v2, Prob: (1 - p) * 0.9})
		}
		out = append(out, mkTuple(t, startID+uint64(i), 0.5+rng.Float64()/2, alts...))
	}
	return out
}

func TestInsertBufferedThenFlushed(t *testing.T) {
	s, err := NewStore(newFS(), "t", "X", []string{"Y"}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	tup := mkTuple(t, 1, 1.0, prob.Alternative{Value: "A", Prob: 0.9})
	if err := s.Insert(tup); err != nil {
		t.Fatal(err)
	}
	if s.BufferedInserts() != 1 || s.NumFractures() != 0 {
		t.Fatalf("buffer=%d fractures=%d", s.BufferedInserts(), s.NumFractures())
	}
	// Visible from the buffer before any flush.
	res, st, err := s.Query(context.Background(), "A", 0.5)
	if err != nil || len(res) != 1 || st.BufferHits != 1 {
		t.Fatalf("buffered query: %v %d %+v", err, len(res), st)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.BufferedInserts() != 0 || s.NumFractures() != 1 {
		t.Fatalf("after flush: buffer=%d fractures=%d", s.BufferedInserts(), s.NumFractures())
	}
	res, st, err = s.Query(context.Background(), "A", 0.5)
	if err != nil || len(res) != 1 || st.BufferHits != 0 {
		t.Fatalf("flushed query: %v %d %+v", err, len(res), st)
	}
}

func TestAutoFlushAtCapacity(t *testing.T) {
	opts := defaultOpts()
	opts.BufferTuples = 3
	s, _ := NewStore(newFS(), "t", "X", []string{"Y"}, opts)
	for i := 1; i <= 7; i++ {
		s.Insert(mkTuple(t, uint64(i), 1.0, prob.Alternative{Value: "A", Prob: 0.9}))
	}
	if s.NumFractures() != 2 || s.BufferedInserts() != 1 {
		t.Fatalf("fractures=%d buffered=%d", s.NumFractures(), s.BufferedInserts())
	}
	res, _, err := s.Query(context.Background(), "A", 0.5)
	if err != nil || len(res) != 7 {
		t.Fatalf("%v %d", err, len(res))
	}
}

func TestDeleteSemantics(t *testing.T) {
	s, _ := NewStore(newFS(), "t", "X", []string{"Y"}, defaultOpts())
	// Tuple 1 flushed in fracture 1.
	s.Insert(mkTuple(t, 1, 1.0, prob.Alternative{Value: "A", Prob: 0.9}))
	s.Flush()
	// Delete it while buffered, then flush the delete set.
	s.Delete(1)
	res, _, _ := s.Query(context.Background(), "A", 0.1)
	if len(res) != 0 {
		t.Fatalf("pending delete not applied: %d", len(res))
	}
	s.Flush()
	res, _, _ = s.Query(context.Background(), "A", 0.1)
	if len(res) != 0 {
		t.Fatalf("flushed delete not applied: %d", len(res))
	}
	// Deleting a buffered-only tuple cancels the insert; the ID stays
	// tombstoned (upsert semantics — an older on-disk version of the
	// same ID, if any, must not resurface).
	s.Insert(mkTuple(t, 2, 1.0, prob.Alternative{Value: "B", Prob: 0.9}))
	s.Delete(2)
	if s.BufferedInserts() != 0 || !s.bufDeletes[2] {
		t.Fatalf("buffered delete should cancel the insert and keep the tombstone: deletes=%v inserts=%d",
			s.bufDeletes, s.BufferedInserts())
	}
	if res, _, _ := s.Query(context.Background(), "B", 0.1); len(res) != 0 {
		t.Fatalf("cancelled insert still visible: %+v", res)
	}
	// Re-insert after delete revives the ID in newer data only.
	s.Insert(mkTuple(t, 1, 1.0, prob.Alternative{Value: "C", Prob: 0.9}))
	s.Flush()
	res, _, _ = s.Query(context.Background(), "C", 0.5)
	if len(res) != 1 || res[0].Tuple.ID != 1 {
		t.Fatalf("revived tuple missing: %+v", res)
	}
	res, _, _ = s.Query(context.Background(), "A", 0.1)
	if len(res) != 0 {
		t.Fatal("old version of revived tuple leaked")
	}
}

// TestUpsertSupersedesOnDisk: inserting an existing ID replaces the
// on-disk version immediately — exactly one version answers queries at
// every stage (buffered, flushed, merged), and the old version's
// alternatives stop matching.
func TestUpsertSupersedesOnDisk(t *testing.T) {
	s, err := NewStore(newFS(), "t", "X", []string{"Y"}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(mkTuple(t, 1, 1.0, prob.Alternative{Value: "A", Prob: 0.9})); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Update while the old version is on disk: A drops to 0.5, B appears.
	if err := s.Insert(mkTuple(t, 1, 1.0,
		prob.Alternative{Value: "A", Prob: 0.5}, prob.Alternative{Value: "B", Prob: 0.4})); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		res, _, err := s.Query(context.Background(), "A", 0.1)
		if err != nil || len(res) != 1 || res[0].Confidence != 0.5 {
			t.Fatalf("%s: want exactly the new version of A (conf 0.5): %v %+v", stage, err, res)
		}
		res, _, err = s.Query(context.Background(), "B", 0.1)
		if err != nil || len(res) != 1 {
			t.Fatalf("%s: new alternative B missing: %v %+v", stage, err, res)
		}
	}
	check("buffered")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	check("flushed")
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	if s.NumFractures() != 0 {
		t.Fatalf("fractures after merge: %d", s.NumFractures())
	}
	check("merged")
}

// TestMatchesPlainUPI: a fractured UPI must give exactly the answers a
// plain UPI gives after the same operation sequence.
func TestMatchesPlainUPI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tuples := randomTuples(t, rng, 1, 600)

	plain, err := upi.BulkBuild(newFS(), "p", "X", []string{"Y"}, upi.Options{Cutoff: 0.1, PageSize: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(newFS(), "f", "X", []string{"Y"}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[uint64]*tuple.Tuple)
	for i, tup := range tuples {
		if err := plain.Insert(tup); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert(tup); err != nil {
			t.Fatal(err)
		}
		live[tup.ID] = tup
		if i%97 == 0 {
			s.Flush()
		}
		if i%13 == 0 && i > 0 {
			// Delete a random live tuple from both.
			for id, victim := range live {
				if err := plain.Delete(victim); err != nil {
					t.Fatal(err)
				}
				s.Delete(id)
				delete(live, id)
				break
			}
		}
	}
	if s.NumFractures() < 3 {
		t.Fatalf("want several fractures, got %d", s.NumFractures())
	}
	compare := func(stage string) {
		t.Helper()
		for _, qt := range []float64{0.05, 0.3, 0.7} {
			for v := 0; v < 14; v++ {
				val := fmt.Sprintf("v%02d", v)
				a, _, err := plain.Query(context.Background(), val, qt)
				if err != nil {
					t.Fatal(err)
				}
				b, _, err := s.Query(context.Background(), val, qt)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("%s %s@%v: plain %d vs fractured %d", stage, val, qt, len(a), len(b))
				}
				for i := range a {
					if a[i].Tuple.ID != b[i].Tuple.ID || math.Abs(a[i].Confidence-b[i].Confidence) > 1e-9 {
						t.Fatalf("%s %s@%v result %d: %+v vs %+v", stage, val, qt, i, a[i], b[i])
					}
				}
				// Secondary query equivalence.
				sa, _, err := plain.QuerySecondary(context.Background(), "Y", "c"+val, qt, true)
				if err != nil {
					t.Fatal(err)
				}
				sb, _, err := s.QuerySecondary(context.Background(), "Y", "c"+val, qt, true)
				if err != nil {
					t.Fatal(err)
				}
				if len(sa) != len(sb) {
					t.Fatalf("%s secondary %s@%v: %d vs %d", stage, val, qt, len(sa), len(sb))
				}
			}
		}
	}
	compare("before merge")
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	if s.NumFractures() != 0 {
		t.Fatalf("fractures after merge: %d", s.NumFractures())
	}
	compare("after merge")
}

func TestMergeRemovesOldFiles(t *testing.T) {
	fs := newFS()
	s, _ := NewStore(fs, "t", "X", []string{"Y"}, defaultOpts())
	rng := rand.New(rand.NewSource(7))
	for _, tup := range randomTuples(t, rng, 1, 100) {
		s.Insert(tup)
	}
	s.Flush()
	for _, tup := range randomTuples(t, rng, 1000, 100) {
		s.Insert(tup)
	}
	s.Flush()
	filesBefore := len(fs.List())
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	filesAfter := len(fs.List())
	if filesAfter >= filesBefore {
		t.Fatalf("merge did not shrink file count: %d -> %d", filesBefore, filesAfter)
	}
	// All tuples still present.
	total := 0
	for v := 0; v < 14; v++ {
		res, _, err := s.Query(context.Background(), fmt.Sprintf("v%02d", v), 0.0)
		if err != nil {
			t.Fatal(err)
		}
		total += len(res)
	}
	if total < 200 { // every tuple appears under >= 1 value
		t.Fatalf("tuples lost in merge: %d", total)
	}
}

func TestTopKAcrossFractures(t *testing.T) {
	s, _ := NewStore(newFS(), "t", "X", []string{"Y"}, defaultOpts())
	s.Insert(mkTuple(t, 1, 1.0, prob.Alternative{Value: "A", Prob: 0.9}))
	s.Flush()
	s.Insert(mkTuple(t, 2, 1.0, prob.Alternative{Value: "A", Prob: 0.95}))
	s.Flush()
	s.Insert(mkTuple(t, 3, 1.0, prob.Alternative{Value: "A", Prob: 0.8})) // buffered
	res, _, err := s.TopK(context.Background(), "A", 2)
	if err != nil || len(res) != 2 {
		t.Fatalf("%v %d", err, len(res))
	}
	if res[0].Tuple.ID != 2 || res[1].Tuple.ID != 1 {
		t.Fatalf("top2: %d %d", res[0].Tuple.ID, res[1].Tuple.ID)
	}
	if res, _, _ := s.TopK(context.Background(), "A", 0); res != nil {
		t.Fatal("k=0")
	}
}

// TestFlushIsSequentialInsertIsFree reproduces the Table 7 property:
// fractured-UPI maintenance is buffered RAM work plus sequential
// writes, never random I/O.
func TestFlushIsSequentialInsertIsFree(t *testing.T) {
	disk := sim.NewDisk(sim.DefaultParams())
	fs := storage.NewFS(disk)
	s, _ := NewStore(fs, "t", "X", []string{"Y"}, defaultOpts())
	rng := rand.New(rand.NewSource(9))
	tuples := randomTuples(t, rng, 1, 2000)

	before := disk.Stats()
	for _, tup := range tuples {
		if err := s.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	d := disk.Stats().Sub(before)
	if d.BytesWritten != 0 || d.BytesRead != 0 {
		t.Fatalf("buffered inserts touched disk: %+v", d)
	}

	before = disk.Stats()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	d = disk.Stats().Sub(before)
	if d.Seeks > d.SequentialIO/5+10 {
		t.Fatalf("flush not sequential: %+v", d)
	}
}

// TestMergeCostIsLinear verifies Costmerge ≈ read + write of the whole
// table: merging must not be seek-dominated.
func TestMergeCostIsLinear(t *testing.T) {
	disk := sim.NewDisk(sim.DefaultParams())
	fs := storage.NewFS(disk)
	s, _ := NewStore(fs, "t", "X", []string{"Y"}, defaultOpts())
	rng := rand.New(rand.NewSource(11))
	for b := 0; b < 5; b++ {
		for _, tup := range randomTuples(t, rng, uint64(b*1000+1), 400) {
			s.Insert(tup)
		}
		s.Flush()
	}
	s.FlushPages()
	s.DropCaches()
	before := disk.Stats()
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	d := disk.Stats().Sub(before)
	// Read-ahead must amortize seeks: far fewer seeks than pages read.
	pagesRead := d.BytesRead / 512
	if d.Seeks > pagesRead/8 {
		t.Fatalf("merge seeks not amortized: %d seeks for %d pages (%+v)", d.Seeks, pagesRead, d)
	}
}

func TestQueryCostGrowsWithFractures(t *testing.T) {
	disk := sim.NewDisk(sim.DefaultParams())
	fs := storage.NewFS(disk)
	s, _ := NewStore(fs, "t", "X", []string{"Y"}, defaultOpts())
	rng := rand.New(rand.NewSource(13))

	measure := func() int64 {
		s.FlushPages()
		s.DropCaches()
		sp := sim.StartSpan(disk)
		if _, _, err := s.Query(context.Background(), "v01", 0.3); err != nil {
			t.Fatal(err)
		}
		return int64(sp.End().Elapsed)
	}
	for b := 0; b < 6; b++ {
		for _, tup := range randomTuples(t, rng, uint64(b*1000+1), 150) {
			s.Insert(tup)
		}
		s.Flush()
	}
	costMany := measure()
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	costMerged := measure()
	if costMerged >= costMany {
		t.Fatalf("merge should restore performance: %d -> %d", costMany, costMerged)
	}
}

func TestBulkLoadStore(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tuples := randomTuples(t, rng, 1, 300)
	s, err := BulkLoad(newFS(), "t", "X", []string{"Y"}, defaultOpts(), tuples)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for v := 0; v < 14; v++ {
		res, _, err := s.Query(context.Background(), fmt.Sprintf("v%02d", v), 0.0)
		if err != nil {
			t.Fatal(err)
		}
		total += len(res)
	}
	if total < 300 {
		t.Fatalf("bulk load lost tuples: %d", total)
	}
}
