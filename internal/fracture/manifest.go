package fracture

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"upidb/internal/storage"
	"upidb/internal/upi"
)

// The manifest is the durable store's partition catalog: one small
// text file naming the current main generation and every fracture
// generation, in flush order. It is written to a temp file, fsynced
// and renamed into place, so the rename is the atomic commit point of
// every flush and merge — a crash before the rename leaves the old
// manifest (and the half-built files as orphans, removed on the next
// open); a crash after it leaves the new state fully described.
//
// Non-durable stores write no manifest and keep the legacy behavior of
// discovering partitions by scanning file names.

func manifestName(store string) string { return store + ".manifest" }
func manifestTmpName(store string) string {
	return store + ".manifest.tmp"
}

// writeManifest atomically replaces the manifest with the given
// partition catalog.
func writeManifest(fs *storage.FS, store string, mainGen int, fracGens []int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "main %d\n", mainGen)
	for _, g := range fracGens {
		fmt.Fprintf(&b, "frac %d\n", g)
	}
	tmp := manifestTmpName(store)
	fs.Sideband(tmp)
	fs.Sideband(manifestName(store))
	f := fs.Create(tmp)
	if err := f.WriteAt([]byte(b.String()), 0); err != nil {
		return fmt.Errorf("fracture: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("fracture: sync manifest: %w", err)
	}
	if err := fs.Rename(tmp, manifestName(store)); err != nil {
		return fmt.Errorf("fracture: commit manifest: %w", err)
	}
	return nil
}

// readManifest loads the partition catalog. ok is false if no manifest
// exists (legacy or non-durable store).
func readManifest(fs *storage.FS, store string) (mainGen int, fracGens []int, ok bool, err error) {
	name := manifestName(store)
	if !fs.Exists(name) {
		return 0, nil, false, nil
	}
	fs.Sideband(name)
	f, err := fs.Open(name)
	if err != nil {
		return 0, nil, false, err
	}
	data := make([]byte, f.Size())
	if len(data) > 0 {
		if err := f.ReadAt(data, 0); err != nil {
			return 0, nil, false, err
		}
	}
	mainGen = -1
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		kind, num, found := strings.Cut(line, " ")
		if !found {
			return 0, nil, false, fmt.Errorf("fracture: corrupt manifest line %q", line)
		}
		n, err := strconv.Atoi(num)
		if err != nil {
			return 0, nil, false, fmt.Errorf("fracture: corrupt manifest line %q", line)
		}
		switch kind {
		case "main":
			mainGen = n
		case "frac":
			fracGens = append(fracGens, n)
		default:
			return 0, nil, false, fmt.Errorf("fracture: corrupt manifest line %q", line)
		}
	}
	if mainGen < 0 {
		return 0, nil, false, fmt.Errorf("fracture: manifest for %q names no main partition", store)
	}
	sort.Ints(fracGens)
	return mainGen, fracGens, true, nil
}

// removeOrphans deletes partition files of generations the manifest
// does not name — debris of a flush or merge that crashed before its
// manifest commit — plus any stranded manifest temp file. Only files
// clearly belonging to this store's partition namespace are touched.
func removeOrphans(fs *storage.FS, store string, mainGen int, fracGens []int) {
	keepFrac := make(map[int]bool, len(fracGens))
	for _, g := range fracGens {
		keepFrac[g] = true
	}
	for _, f := range fs.List() {
		rest, found := strings.CutPrefix(f, store+".")
		if !found {
			continue
		}
		if rest == "manifest.tmp" {
			_ = fs.Remove(f)
			continue
		}
		kind, gen, found := cutPartitionName(rest)
		if !found {
			continue
		}
		orphan := false
		switch kind {
		case "main":
			orphan = gen != mainGen
		case "frac":
			orphan = !keepFrac[gen]
		}
		if orphan {
			_ = fs.Remove(f)
		}
	}
}

// cutPartitionName parses "main<gen>.upi...", "frac<gen>.upi..." or
// "frac<gen>.delset" into its partition kind and generation.
func cutPartitionName(rest string) (kind string, gen int, ok bool) {
	for _, k := range []string{"main", "frac"} {
		num, found := strings.CutPrefix(rest, k)
		if !found {
			continue
		}
		digits, _, found := strings.Cut(num, ".")
		if !found {
			return "", 0, false
		}
		n, err := strconv.Atoi(digits)
		if err != nil {
			return "", 0, false
		}
		return k, n, true
	}
	return "", 0, false
}

// syncTableFiles fsyncs every file of a UPI partition.
func syncTableFiles(fs *storage.FS, t *upi.Table) error {
	for _, f := range t.Files() {
		if err := fs.Sync(f); err != nil {
			return err
		}
	}
	return nil
}
