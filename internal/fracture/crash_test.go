package fracture

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"upidb/internal/prob"
	"upidb/internal/sim"
	"upidb/internal/storage"
)

// The crash suite proves the durability contract: inject a failure at
// every WAL / flush / checkpoint / merge stage, "kill" the process by
// abandoning the store, reopen over the same backend bytes, and verify
// the recovered contents against an independently tracked ground truth
// — exactly the acknowledged writes, nothing else.

func durableOpts() Config {
	o := defaultOpts()
	o.Durable = true
	return o
}

func crashVal(id uint64) string { return fmt.Sprintf("v%02d", id%14) }

// crashRig drives one durable store over a fault-injecting backend and
// tracks the acknowledged-live ground truth beside it.
type crashRig struct {
	t    *testing.T
	mem  *storage.MemBackend
	fb   *storage.FaultBackend
	s    *Store
	live map[uint64]bool
}

func newCrashRig(t *testing.T) *crashRig {
	t.Helper()
	mem := storage.NewMemBackend()
	fb := storage.NewFaultBackend(mem)
	fs := storage.NewFSOn(sim.NewDisk(sim.DefaultParams()), fb)
	s, err := NewStore(fs, "t", "X", []string{"Y"}, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	return &crashRig{t: t, mem: mem, fb: fb, s: s, live: make(map[uint64]bool)}
}

func (r *crashRig) insert(id uint64) error {
	tup := mkTuple(r.t, id, 1.0, prob.Alternative{Value: crashVal(id), Prob: 0.9})
	err := r.s.Insert(tup)
	if err == nil {
		r.live[id] = true
	}
	return err
}

func (r *crashRig) delete(id uint64) error {
	err := r.s.Delete(id)
	if err == nil {
		delete(r.live, id)
	}
	return err
}

func (r *crashRig) mustInsert(from, to uint64) {
	r.t.Helper()
	for id := from; id <= to; id++ {
		if err := r.insert(id); err != nil {
			r.t.Fatal(err)
		}
	}
}

// crashAndReopen abandons the current store (the "kill") and reopens
// from the backend's bytes with fault injection disabled, as a fresh
// process would.
func (r *crashRig) crashAndReopen() *Store {
	r.t.Helper()
	fs := storage.NewFSOn(sim.NewDisk(sim.DefaultParams()), r.mem)
	re, err := Open(fs, "t", "X", []string{"Y"}, durableOpts())
	if err != nil {
		r.t.Fatalf("recovery open: %v", err)
	}
	r.s = re
	return re
}

// verify checks the store's queryable contents against the ground
// truth, value by value, as exact ID sets.
func (r *crashRig) verify(s *Store) {
	r.t.Helper()
	for v := uint64(0); v < 14; v++ {
		val := fmt.Sprintf("v%02d", v)
		var want []uint64
		for id := range r.live {
			if crashVal(id) == val {
				want = append(want, id)
			}
		}
		rs, _, err := s.Query(context.Background(), val, 0.5)
		if err != nil {
			r.t.Fatalf("verify query %s: %v", val, err)
		}
		got := make([]uint64, 0, len(rs))
		for _, res := range rs {
			got = append(got, res.Tuple.ID)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			r.t.Fatalf("value %s: recovered %d tuples, want %d (got %v, want %v)",
				val, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				r.t.Fatalf("value %s: recovered IDs %v, want %v", val, got, want)
			}
		}
	}
}

func TestCrashRecoveryMatrix(t *testing.T) {
	cases := []struct {
		name  string
		fault storage.Fault
		// run performs the operation expected to hit the failpoint;
		// wantErr says whether that operation must surface the
		// injection.
		run     func(r *crashRig) error
		wantErr bool
	}{
		{
			name:    "wal-append-write",
			fault:   storage.Fault{Op: storage.OpWrite, Name: ".wal"},
			run:     func(r *crashRig) error { return r.insert(100) },
			wantErr: true,
		},
		{
			name:    "wal-append-torn",
			fault:   storage.Fault{Op: storage.OpWrite, Name: ".wal", PartialBytes: 7},
			run:     func(r *crashRig) error { return r.insert(100) },
			wantErr: true,
		},
		{
			name:    "wal-append-sync",
			fault:   storage.Fault{Op: storage.OpSync, Name: ".wal"},
			run:     func(r *crashRig) error { return r.insert(100) },
			wantErr: true,
		},
		{
			name:    "wal-delete-append",
			fault:   storage.Fault{Op: storage.OpWrite, Name: ".wal"},
			run:     func(r *crashRig) error { return r.delete(3) },
			wantErr: true,
		},
		{
			name:    "flush-fracture-write",
			fault:   storage.Fault{Op: storage.OpWrite, Name: ".frac"},
			run:     func(r *crashRig) error { return r.s.Flush() },
			wantErr: true,
		},
		{
			name:    "flush-delset-write",
			fault:   storage.Fault{Op: storage.OpWrite, Name: ".delset"},
			run:     func(r *crashRig) error { return r.s.Flush() },
			wantErr: true,
		},
		{
			name:    "flush-manifest-write",
			fault:   storage.Fault{Op: storage.OpWrite, Name: ".manifest.tmp"},
			run:     func(r *crashRig) error { return r.s.Flush() },
			wantErr: true,
		},
		{
			name:    "flush-manifest-rename",
			fault:   storage.Fault{Op: storage.OpRename, Name: ".manifest.tmp"},
			run:     func(r *crashRig) error { return r.s.Flush() },
			wantErr: true,
		},
		{
			// The checkpoint truncate fails *after* the flush has fully
			// committed: the flush reports the degradation, but the
			// fracture holds the data and replaying the stale WAL must
			// dedupe, not duplicate.
			name:    "flush-wal-truncate",
			fault:   storage.Fault{Op: storage.OpTruncate, Name: ".wal"},
			run:     func(r *crashRig) error { return r.s.Flush() },
			wantErr: true,
		},
		{
			name:  "merge-build-write",
			fault: storage.Fault{Op: storage.OpWrite, Name: ".main"},
			run: func(r *crashRig) error {
				if err := r.s.Flush(); err != nil {
					return fmt.Errorf("pre-merge flush: %w", err)
				}
				return r.s.Merge()
			},
			wantErr: true,
		},
		{
			name:  "merge-swap-sync",
			fault: storage.Fault{Op: storage.OpSync, Name: ".main"},
			run: func(r *crashRig) error {
				if err := r.s.Flush(); err != nil {
					return fmt.Errorf("pre-merge flush: %w", err)
				}
				return r.s.Merge()
			},
			wantErr: true,
		},
		{
			name:  "merge-swap-manifest-rename",
			fault: storage.Fault{Op: storage.OpRename, Name: ".manifest.tmp"},
			run: func(r *crashRig) error {
				if err := r.s.Flush(); err != nil {
					return fmt.Errorf("pre-merge flush: %w", err)
				}
				return r.s.Merge()
			},
			wantErr: true,
		},
		{
			// No fault at all: a clean kill with a populated buffer.
			name:    "kill-with-buffered-writes",
			run:     func(r *crashRig) error { return nil },
			wantErr: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newCrashRig(t)
			// Phase 1 (all acknowledged): one flushed fracture, one
			// buffered batch, a couple of deletes spanning both.
			r.mustInsert(1, 20)
			if err := r.s.Flush(); err != nil {
				t.Fatal(err)
			}
			r.mustInsert(21, 30)
			if err := r.delete(5); err != nil { // on-disk delete
				t.Fatal(err)
			}
			if err := r.delete(25); err != nil { // buffered delete
				t.Fatal(err)
			}

			if tc.fault.Op != "" {
				r.fb.Arm(tc.fault)
			}
			err := tc.run(r)
			if tc.wantErr {
				if !errors.Is(err, storage.ErrInjected) {
					t.Fatalf("failpoint not surfaced: %v", err)
				}
				if !r.fb.Triggered() {
					t.Fatal("fault armed but never fired")
				}
			} else if err != nil {
				t.Fatal(err)
			}
			r.fb.Disarm()

			re := r.crashAndReopen()
			r.verify(re)

			// The recovered store must be fully operational: write,
			// flush, merge, and survive one more clean crash.
			r.mustInsert(200, 210)
			if err := r.s.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := r.s.Merge(); err != nil {
				t.Fatal(err)
			}
			r.verify(r.s)
			r.verify(r.crashAndReopen())
		})
	}
}

// TestDurableRoundTripOnDisk runs the create / write / kill / reopen
// cycle over a real directory: the same engine, real files, real
// fsync.
func TestDurableRoundTripOnDisk(t *testing.T) {
	dir := t.TempDir()
	open := func() *Store {
		t.Helper()
		b, err := storage.NewDiskBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		fs := storage.NewFSOn(sim.NewDisk(sim.DefaultParams()), b)
		if fs.Exists("t.manifest") {
			s, err := Open(fs, "t", "X", []string{"Y"}, durableOpts())
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		s, err := NewStore(fs, "t", "X", []string{"Y"}, durableOpts())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := open()
	live := make(map[uint64]bool)
	ins := func(id uint64) {
		t.Helper()
		if err := s.Insert(mkTuple(t, id, 1.0, prob.Alternative{Value: crashVal(id), Prob: 0.9})); err != nil {
			t.Fatal(err)
		}
		live[id] = true
	}
	for id := uint64(1); id <= 40; id++ {
		ins(id)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for id := uint64(41); id <= 55; id++ {
		ins(id) // stay buffered: only the WAL has these
	}
	if err := s.Delete(7); err != nil {
		t.Fatal(err)
	}
	delete(live, 7)
	s.Close() // kill without flushing the buffer

	s = open()
	if got := s.BufferedInserts(); got != 15 {
		t.Fatalf("recovered buffer holds %d tuples, want 15", got)
	}
	for v := uint64(0); v < 14; v++ {
		val := fmt.Sprintf("v%02d", v)
		rs, _, err := s.Query(context.Background(), val, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for id := range live {
			if crashVal(id) == val {
				want++
			}
		}
		if len(rs) != want {
			t.Fatalf("value %s: %d results, want %d", val, len(rs), want)
		}
	}
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	s.Close()
}

// TestCrashRecoverySoak is the store-vs-ground-truth soak: random
// operations with a random failpoint armed each round, a kill at the
// failpoint, reopen, exact verification — then keep going on the
// recovered store.
func TestCrashRecoverySoak(t *testing.T) {
	r := newCrashRig(t)
	rng := rand.New(rand.NewSource(47))
	faults := []storage.Fault{
		{Op: storage.OpWrite, Name: ".wal"},
		{Op: storage.OpWrite, Name: ".wal", PartialBytes: 5},
		{Op: storage.OpSync, Name: ".wal"},
		{Op: storage.OpWrite, Name: ".frac"},
		{Op: storage.OpWrite, Name: ".delset"},
		{Op: storage.OpRename, Name: ".manifest.tmp"},
		{Op: storage.OpTruncate, Name: ".wal"},
		{Op: storage.OpWrite, Name: ".main"},
		{Op: storage.OpSync, Name: ".main"},
	}
	nextID := uint64(1)
	rounds := 40
	if testing.Short() {
		rounds = 12
	}
	for round := 0; round < rounds; round++ {
		// A burst of acknowledged operations.
		for op := 0; op < 30; op++ {
			switch rng.Intn(10) {
			case 0: // delete something that may or may not exist
				if err := r.delete(uint64(rng.Intn(int(nextID)) + 1)); err != nil {
					t.Fatalf("round %d: delete: %v", round, err)
				}
			case 1:
				if err := r.s.Flush(); err != nil {
					t.Fatalf("round %d: flush: %v", round, err)
				}
			default:
				if err := r.insert(nextID); err != nil {
					t.Fatalf("round %d: insert: %v", round, err)
				}
				nextID++
			}
		}
		// Arm a random failpoint a few operations in the future, then
		// hammer until it fires (or the budget runs out — the fault
		// may target a stage this round never reaches).
		f := faults[rng.Intn(len(faults))]
		f.CountDown = rng.Intn(3)
		r.fb.Arm(f)
		for op := 0; op < 25 && !r.fb.Triggered(); op++ {
			var err error
			switch rng.Intn(6) {
			case 0:
				err = r.s.Flush()
			case 1:
				err = r.s.Merge()
			case 2:
				err = r.delete(uint64(rng.Intn(int(nextID)) + 1))
			default:
				err = r.insert(nextID)
				if err == nil {
					nextID++
				}
			}
			if err != nil && !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("round %d: unexpected error: %v", round, err)
			}
		}
		r.fb.Disarm()
		r.verify(r.crashAndReopen())
	}
}
