package fracture

import (
	"bytes"

	"upidb/internal/btree"
	"upidb/internal/storage"
	"upidb/internal/upi"
)

// Merge folds every fracture (and the RAM buffer) back into a fresh
// main UPI (Section 4.3): "The merging process is essentially a
// parallel sort-merge operation. Each file is already sorted
// internally, so we open cursors on all fractures in parallel and keep
// picking the smallest key from amongst all cursors." The new files
// are written sequentially; old partitions are then removed. Its cost
// is therefore ≈ Stable × (Tread + Twrite), the paper's Costmerge.
func (s *Store) Merge() error {
	// Buffered changes become one final fracture so the merge only
	// deals with on-disk partitions.
	if err := s.Flush(); err != nil {
		return err
	}
	s.gen++
	newName := s.mainName(s.gen)

	// Entry-level k-way merging preserves each entry's heap-vs-cutoff
	// placement, which is only correct when every partition was built
	// with the same parameters as the merged result. When fractures
	// carry different tuning parameters (Section 4.2), rebuild from
	// the live tuples instead — still one sequential read of all
	// partitions plus one sequential write.
	if !s.partitionsHomogeneous() {
		return s.mergeByRebuild(newName)
	}

	// Sources oldest-to-newest: main then fractures. Priority grows
	// with recency; on duplicate keys the newest version wins.
	type source struct {
		table   *upi.Table
		deleted map[uint64]bool // delete filter for entries of this source
	}
	sources := make([]source, 0, 1+len(s.fractures))
	sources = append(sources, source{table: s.main, deleted: s.deletesAfter(-1)})
	for i, f := range s.fractures {
		sources = append(sources, source{table: f.table, deleted: s.deletesAfter(i)})
	}

	mergeInto := func(file string, pick func(t *upi.Table) *btree.Tree) (*btree.Tree, error) {
		p, err := storage.NewPager(s.fs.Create(file), s.opts.UPI.PageSize)
		if err != nil {
			return nil, err
		}
		if cp := s.opts.UPI.CachePages; cp > 0 {
			if err := p.SetCacheLimit(cp); err != nil {
				return nil, err
			}
		}
		b, err := btree.NewBuilder(p)
		if err != nil {
			return nil, err
		}
		curs := make([]*mergeCursor, len(sources))
		for i, src := range sources {
			tree := pick(src.table)
			// Sequential read-ahead: the merge reads every source file
			// front to back, so one seek covers a whole run of pages
			// ("the cost of merging is about the same as the cost of
			// sequentially reading all files").
			tree.Pager().SetPrefetch(mergeReadAhead)
			curs[i] = &mergeCursor{
				c:        tree.NewCursor().First(),
				priority: i,
				deleted:  src.deleted,
			}
		}
		err = kWayMerge(curs, b)
		for _, src := range sources {
			pick(src.table).Pager().SetPrefetch(1)
		}
		if err != nil {
			return nil, err
		}
		t, err := b.Finish()
		if err != nil {
			return nil, err
		}
		return t, p.Flush()
	}

	if _, err := mergeInto(upi.HeapFileName(newName), func(t *upi.Table) *btree.Tree { return t.Heap() }); err != nil {
		return err
	}
	if _, err := mergeInto(upi.CutoffFileName(newName), func(t *upi.Table) *btree.Tree { return t.CutoffIndex() }); err != nil {
		return err
	}
	for _, attr := range s.secAttrs {
		a := attr
		if _, err := mergeInto(upi.SecFileName(newName, a), func(t *upi.Table) *btree.Tree {
			sec, _ := t.Secondary(a)
			return sec
		}); err != nil {
			return err
		}
	}

	newMain, err := upi.Open(s.fs, newName, s.attr, s.secAttrs, s.opts.UPI)
	if err != nil {
		return err
	}
	return s.swapMain(newMain)
}

// partitionsHomogeneous reports whether the main UPI and every
// fracture share the placement-relevant parameters of the current
// options.
func (s *Store) partitionsHomogeneous() bool {
	same := func(o upi.Options) bool {
		return o.Cutoff == s.opts.UPI.Cutoff && o.MaxPointers == s.opts.UPI.MaxPointers
	}
	if !same(s.main.Options()) {
		return false
	}
	for _, f := range s.fractures {
		if !same(f.table.Options()) {
			return false
		}
	}
	return true
}

// mergeByRebuild collects every live tuple (sequential heap scans,
// oldest partition first) and bulk-builds a fresh main UPI with the
// current options.
func (s *Store) mergeByRebuild(newName string) error {
	for _, src := range append([]*upi.Table{s.main}, s.fractureTables()...) {
		src.Heap().Pager().SetPrefetch(mergeReadAhead)
	}
	tuples, err := s.collectLiveTuples()
	for _, src := range append([]*upi.Table{s.main}, s.fractureTables()...) {
		src.Heap().Pager().SetPrefetch(1)
	}
	if err != nil {
		return err
	}
	newMain, err := upi.BulkBuild(s.fs, newName, s.attr, s.secAttrs, s.opts.UPI, tuples)
	if err != nil {
		return err
	}
	return s.swapMain(newMain)
}

func (s *Store) fractureTables() []*upi.Table {
	ts := make([]*upi.Table, len(s.fractures))
	for i, f := range s.fractures {
		ts[i] = f.table
	}
	return ts
}

// swapMain installs the merged main UPI and removes all old partition
// files and delete sets.
func (s *Store) swapMain(newMain *upi.Table) error {
	oldFiles := append([]string(nil), s.main.Files()...)
	for i, f := range s.fractures {
		oldFiles = append(oldFiles, f.table.Files()...)
		oldFiles = append(oldFiles, s.delSetFile(s.fracGens[i]))
	}
	s.main = newMain
	s.fractures = nil
	s.fracGens = nil
	for _, f := range oldFiles {
		if s.fs.Exists(f) {
			if err := s.fs.Remove(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeReadAhead is the per-source read-ahead window (pages) during a
// merge, standing in for the multi-megabyte merge buffers an LSM engine
// allocates per input run.
const mergeReadAhead = 64

type mergeCursor struct {
	c        *btree.Cursor
	priority int
	deleted  map[uint64]bool
}

// kWayMerge drains the cursors in global key order into the builder,
// applying each source's delete filter and letting the
// highest-priority (newest) source win duplicate keys.
func kWayMerge(curs []*mergeCursor, b *btree.Builder) error {
	for {
		// Find the smallest current key.
		var minKey []byte
		for _, mc := range curs {
			if !mc.c.Valid() {
				continue
			}
			if minKey == nil || bytes.Compare(mc.c.Key(), minKey) < 0 {
				minKey = mc.c.Key()
			}
		}
		if minKey == nil {
			break
		}
		minKey = append([]byte(nil), minKey...)
		// Collect all cursors at that key; pick the newest live entry.
		var (
			bestPriority = -1
			bestVal      []byte
		)
		for _, mc := range curs {
			if !mc.c.Valid() || !bytes.Equal(mc.c.Key(), minKey) {
				continue
			}
			_, _, id, err := upi.DecodeHeapKey(minKey)
			if err != nil {
				return err
			}
			if !mc.deleted[id] && mc.priority > bestPriority {
				bestPriority = mc.priority
				bestVal = append(bestVal[:0], mc.c.Value()...)
			}
			mc.c.Next()
		}
		if bestPriority >= 0 {
			if err := b.Add(minKey, bestVal); err != nil {
				return err
			}
		}
	}
	for _, mc := range curs {
		if err := mc.c.Err(); err != nil {
			return err
		}
	}
	return nil
}
