package fracture

import (
	"bytes"
	"time"

	"upidb/internal/btree"
	"upidb/internal/stats"
	"upidb/internal/storage"
	"upidb/internal/upi"
)

// mergeSnapshot is everything a merge needs from the store, captured
// under the write lock so the build can proceed without holding it.
type mergeSnapshot struct {
	parts    []*upi.Table // index 0 = main, then the fractures to fold
	deletes  []map[uint64]bool
	nMerged  int // number of fractures being folded
	newGen   int // generation of the main UPI being built
	newName  string
	opts     upi.Options
	homogene bool
}

// Merge folds every fracture (and the RAM buffer) back into a fresh
// main UPI (Section 4.3): "The merging process is essentially a
// parallel sort-merge operation. Each file is already sorted
// internally, so we open cursors on all fractures in parallel and keep
// picking the smallest key from amongst all cursors." The new files
// are written sequentially.
//
// Merge is concurrency-friendly: it snapshots the partitions to fold
// under the write lock, builds the new main generation with no lock
// held — queries, inserts and flushes proceed meanwhile — and then
// atomically swaps the new main in. Fractures flushed while the merge
// was building survive the swap untouched. Old partition files are
// removed once the last in-flight query over them finishes.
//
// Queries that overlap the build window read the same source
// partitions the merge is scanning, so their modeled cost can vary
// with timing (the merge widens those pagers' read-ahead and warms
// their caches, and I/O attribution between overlapping scans of one
// file is approximate). Total disk accounting stays exactly-once;
// queries that do not overlap a merge keep fully deterministic costs.
//
// When a statistics catalog is attached (SetStats), the merge also
// re-derives it for free: the live entries the merge is already
// reading are fed to a stats.Rebuild, which atomically replaces the
// catalog's histograms once the new main is swapped in — so every
// merge resets statistics staleness to zero without any extra I/O.
func (s *Store) Merge() error {
	// One merge at a time; a second caller (or the background merger)
	// waits rather than building a competing generation.
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	mergeStart := time.Now()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	// Buffered changes become one final fracture so the merge only
	// deals with on-disk partitions.
	if err := s.flushLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.gen++
	snap := mergeSnapshot{
		parts:   make([]*upi.Table, 0, 1+len(s.fractures)),
		deletes: make([]map[uint64]bool, 0, 1+len(s.fractures)),
		nMerged: len(s.fractures),
		newGen:  s.gen,
		newName: s.mainName(s.gen),
		opts:    s.opts.UPI,
	}
	snap.parts = append(snap.parts, s.main)
	snap.deletes = append(snap.deletes, s.deletesAfterLocked(-1))
	for i, f := range s.fractures {
		snap.parts = append(snap.parts, f.table)
		snap.deletes = append(snap.deletes, s.deletesAfterLocked(i))
	}
	snap.homogene = s.partitionsHomogeneousLocked()
	// The statistics rebuild must begin inside this critical section:
	// everything in the snapshot is fed by the merge scan below, and
	// everything arriving after the unlock reaches the rebuild through
	// the live delta hooks — never both.
	var rb *stats.Rebuild
	if s.cat != nil {
		rb = s.cat.BeginRebuild()
	}
	s.mu.Unlock()

	// Build the new main generation without holding the store lock.
	// The source partitions are immutable on disk, and mergeMu keeps
	// any other merge from removing them mid-read.
	var (
		newMain *upi.Table
		err     error
	)
	if snap.homogene {
		newMain, err = s.mergeByCursor(snap, rb)
	} else {
		newMain, err = s.mergeByRebuild(snap, rb)
	}
	if err != nil {
		rb.Abort()
		return err
	}
	if err := s.swapMerged(newMain, snap.newGen, snap.nMerged); err != nil {
		rb.Abort()
		return err
	}
	rb.Commit()
	s.opts.Metrics.Merges.Inc()
	s.opts.Metrics.MergeSeconds.Observe(time.Since(mergeStart).Seconds())
	return nil
}

// partitionsHomogeneousLocked reports whether the main UPI and every
// fracture share the placement-relevant parameters of the current
// options. Callers must hold mu.
func (s *Store) partitionsHomogeneousLocked() bool {
	same := func(o upi.Options) bool {
		return o.Cutoff == s.opts.UPI.Cutoff && o.MaxPointers == s.opts.UPI.MaxPointers
	}
	if !same(s.main.Options()) {
		return false
	}
	for _, f := range s.fractures {
		if !same(f.table.Options()) {
			return false
		}
	}
	return true
}

// mergeByCursor performs the entry-level k-way merge. Entry-level
// merging preserves each entry's heap-vs-cutoff placement, which is
// only correct when every partition was built with the same parameters
// as the merged result (snap.homogene). The heap pass — which sees
// every live entry — additionally feeds the statistics rebuild.
func (s *Store) mergeByCursor(snap mergeSnapshot, rb *stats.Rebuild) (*upi.Table, error) {
	mergeInto := func(file string, pick func(t *upi.Table) *btree.Tree, feed func(id uint64, val []byte)) (*btree.Tree, error) {
		p, err := storage.NewPager(s.fs.Create(file), snap.opts.PageSize)
		if err != nil {
			return nil, err
		}
		if cp := snap.opts.CachePages; cp > 0 {
			if err := p.SetCacheLimit(cp); err != nil {
				return nil, err
			}
		}
		b, err := btree.NewBuilder(p)
		if err != nil {
			return nil, err
		}
		// Sources oldest-to-newest: main then fractures. Priority grows
		// with recency; on duplicate keys the newest version wins.
		curs := make([]*mergeCursor, len(snap.parts))
		releases := make([]func(), len(snap.parts))
		for i, src := range snap.parts {
			tree := pick(src)
			// Sequential read-ahead: the merge reads every source file
			// front to back, so one seek covers a whole run of pages
			// ("the cost of merging is about the same as the cost of
			// sequentially reading all files"). Reference-counted so an
			// overlapping full scan of the same partition cannot strip
			// the window mid-merge (or vice versa).
			releases[i] = tree.Pager().PushPrefetch(mergeReadAhead)
			curs[i] = &mergeCursor{
				c:        tree.NewCursor().First(),
				priority: i,
				deleted:  snap.deletes[i],
			}
		}
		err = kWayMerge(curs, b, feed)
		for _, release := range releases {
			release()
		}
		if err != nil {
			return nil, err
		}
		t, err := b.Finish()
		if err != nil {
			return nil, err
		}
		return t, p.Flush()
	}

	var feed func(id uint64, val []byte)
	if rb != nil {
		feed = rb.FeedEntry
	}
	if _, err := mergeInto(upi.HeapFileName(snap.newName), func(t *upi.Table) *btree.Tree { return t.Heap() }, feed); err != nil {
		return nil, err
	}
	if _, err := mergeInto(upi.CutoffFileName(snap.newName), func(t *upi.Table) *btree.Tree { return t.CutoffIndex() }, nil); err != nil {
		return nil, err
	}
	for _, attr := range s.secAttrs {
		a := attr
		if _, err := mergeInto(upi.SecFileName(snap.newName, a), func(t *upi.Table) *btree.Tree {
			sec, _ := t.Secondary(a)
			return sec
		}, nil); err != nil {
			return nil, err
		}
	}
	return upi.Open(s.fs, snap.newName, s.attr, s.secAttrs, snap.opts)
}

// mergeByRebuild collects every live tuple (sequential heap scans,
// oldest partition first) and bulk-builds a fresh main UPI with the
// current options. The collected tuples double as the statistics
// rebuild's feed.
func (s *Store) mergeByRebuild(snap mergeSnapshot, rb *stats.Rebuild) (*upi.Table, error) {
	releases := make([]func(), len(snap.parts))
	for i, src := range snap.parts {
		releases[i] = src.Heap().Pager().PushPrefetch(mergeReadAhead)
	}
	tuples, err := collectLiveTuples(snap.parts, snap.deletes)
	for _, release := range releases {
		release()
	}
	if err != nil {
		return nil, err
	}
	if rb != nil {
		for _, t := range tuples {
			rb.FeedTuple(t)
		}
	}
	return upi.BulkBuild(s.fs, snap.newName, s.attr, s.secAttrs, snap.opts, tuples)
}

// swapMerged atomically installs the merged main UPI, drops the folded
// fractures (keeping any flushed while the merge was building) and
// dooms the replaced partitions' files: they disappear as soon as the
// last in-flight query over the old generation releases its snapshot.
//
// On a durable store the manifest rename is the commit point: the new
// main's files are fsynced and the manifest rewritten *before* the
// in-memory swap, so a failure (or crash) before the rename changes
// nothing — the new files are removed (or swept as orphans on the next
// open) and the old generation remains authoritative.
func (s *Store) swapMerged(newMain *upi.Table, newGen, nMerged int) error {
	s.mu.Lock()
	if s.opts.Durable {
		err := syncTableFiles(s.fs, newMain)
		if err == nil {
			err = writeManifest(s.fs, s.name, newGen, s.fracGens[nMerged:])
		}
		if err != nil {
			s.mu.Unlock()
			for _, f := range newMain.Files() {
				if s.fs.Exists(f) {
					_ = s.fs.Remove(f)
				}
			}
			return err
		}
	}
	// Same content, new partition layout: cached statistics would no
	// longer match a fresh execution. Inside the critical section so the
	// epoch bump orders against concurrent queries' snapshots.
	s.rc.invalidate()
	oldMain := s.main
	oldMainRef := s.mainRef
	merged := s.fractures[:nMerged]
	mergedGens := s.fracGens[:nMerged]
	s.main = newMain
	s.mainRef = newPartRef(s.fs)
	s.mainGen = newGen
	s.fractures = append([]*fract(nil), s.fractures[nMerged:]...)
	s.fracGens = append([]int(nil), s.fracGens[nMerged:]...)
	s.mu.Unlock()

	oldMainRef.doom(oldMain.Files())
	for i, f := range merged {
		f.ref.doom(append(f.table.Files(), s.delSetFile(mergedGens[i])))
	}
	return nil
}

// mergeReadAhead is the per-source read-ahead window (pages) during a
// merge, standing in for the multi-megabyte merge buffers an LSM engine
// allocates per input run.
const mergeReadAhead = 64

type mergeCursor struct {
	c        *btree.Cursor
	priority int
	deleted  map[uint64]bool
}

// kWayMerge drains the cursors in global key order into the builder,
// applying each source's delete filter and letting the
// highest-priority (newest) source win duplicate keys. feed, when
// non-nil, receives every surviving entry (tuple ID plus value) — the
// statistics piggyback on the scan the merge performs anyway.
func kWayMerge(curs []*mergeCursor, b *btree.Builder, feed func(id uint64, val []byte)) error {
	for {
		// Find the smallest current key.
		var minKey []byte
		for _, mc := range curs {
			if !mc.c.Valid() {
				continue
			}
			if minKey == nil || bytes.Compare(mc.c.Key(), minKey) < 0 {
				minKey = mc.c.Key()
			}
		}
		if minKey == nil {
			break
		}
		minKey = append([]byte(nil), minKey...)
		_, _, id, err := upi.DecodeHeapKey(minKey)
		if err != nil {
			return err
		}
		// Collect all cursors at that key; pick the newest live entry.
		var (
			bestPriority = -1
			bestVal      []byte
		)
		for _, mc := range curs {
			if !mc.c.Valid() || !bytes.Equal(mc.c.Key(), minKey) {
				continue
			}
			if !mc.deleted[id] && mc.priority > bestPriority {
				bestPriority = mc.priority
				bestVal = append(bestVal[:0], mc.c.Value()...)
			}
			mc.c.Next()
		}
		if bestPriority >= 0 {
			if err := b.Add(minKey, bestVal); err != nil {
				return err
			}
			if feed != nil {
				feed(id, bestVal)
			}
		}
	}
	for _, mc := range curs {
		if err := mc.c.Err(); err != nil {
			return err
		}
	}
	return nil
}
