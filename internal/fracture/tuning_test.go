package fracture

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"upidb/internal/upi"
)

// TestPerFractureOptions: fractures created with different cutoff
// thresholds coexist and answer queries identically to a uniform
// store, both before and after a merge (which rebuilds everything with
// the final options).
func TestPerFractureOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	batch1 := randomTuples(t, rng, 1, 200)
	batch2 := randomTuples(t, rng, 1000, 200)
	batch3 := randomTuples(t, rng, 2000, 200)

	tuned, err := NewStore(newFS(), "tuned", "X", []string{"Y"}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := NewStore(newFS(), "uniform", "X", []string{"Y"}, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Batch 1 with the default cutoff.
	for _, tup := range batch1 {
		if err := tuned.Insert(tup); err != nil {
			t.Fatal(err)
		}
		if err := uniform.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := tuned.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := uniform.Flush(); err != nil {
		t.Fatal(err)
	}

	// Batch 2 with an aggressive cutoff on the tuned store only.
	if err := tuned.SetFractureOptions(upi.Options{Cutoff: 0.45, PageSize: 512}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range batch2 {
		tuned.Insert(tup)
		uniform.Insert(tup)
	}
	tuned.Flush()
	uniform.Flush()

	// Batch 3 with no cutoff at all.
	if err := tuned.SetFractureOptions(upi.Options{Cutoff: 0, PageSize: 512}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range batch3 {
		tuned.Insert(tup)
		uniform.Insert(tup)
	}
	tuned.Flush()
	uniform.Flush()

	compare := func(stage string) {
		t.Helper()
		for _, qt := range []float64{0.05, 0.3, 0.7} {
			for v := 0; v < 14; v++ {
				val := fmt.Sprintf("v%02d", v)
				a, _, err := tuned.Query(context.Background(), val, qt)
				if err != nil {
					t.Fatal(err)
				}
				b, _, err := uniform.Query(context.Background(), val, qt)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("%s %s@%v: tuned %d vs uniform %d", stage, val, qt, len(a), len(b))
				}
				for i := range a {
					if a[i].Tuple.ID != b[i].Tuple.ID {
						t.Fatalf("%s %s@%v: result %d differs", stage, val, qt, i)
					}
				}
			}
		}
	}
	compare("mixed fractures")
	if err := tuned.Merge(); err != nil {
		t.Fatal(err)
	}
	compare("after merge")
	if got := tuned.FractureOptions().Cutoff; got != 0 {
		t.Fatalf("options not retained: %v", got)
	}
}

func TestSetFractureOptionsValidates(t *testing.T) {
	s, err := NewStore(newFS(), "t", "X", nil, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetFractureOptions(upi.Options{Cutoff: -1}); err == nil {
		t.Fatal("invalid options accepted")
	}
}
