package fracture

import (
	"slices"
	"sync"

	"upidb/internal/obs"
	"upidb/internal/upi"
)

// resultCache is the opt-in point-result cache of one store
// (Config.ResultCache > 0): full result sets of PTQ and secondary-PTQ
// queries, keyed by shape, invalidated wholesale by any write to the
// store. Because every shard owns its own store, invalidation is per
// shard by construction — a write to one shard leaves the other
// shards' caches intact.
//
// Correctness under concurrency hangs on the epoch: every write bumps
// it (inside the store's critical section), and a query records the
// epoch *before* pinning its snapshot. The entry is committed only if
// the epoch is still current when the drain completes, so a result
// set that raced a write — whichever side of the snapshot the write
// landed on — is never stored. A hit replays the stored results and
// statistics verbatim: no snapshot, no pins, no modeled I/O, which is
// also why the stored Stats (including ModeledTime) are byte-identical
// to what the uncached execution reported.
type resultCache struct {
	met *obs.EngineMetrics

	mu      sync.Mutex
	cap     int
	epoch   uint64
	entries map[resKey]resEntry
}

// resKey is one cacheable query shape against one store. Parallelism
// is deliberately absent: results, statistics and modeled cost are
// identical at every fan-out.
type resKey struct {
	kind     Kind
	attr     string
	value    string
	qt       float64
	tailored bool
}

type resEntry struct {
	results []upi.Result
	stats   Stats
}

func newResultCache(capacity int, met *obs.EngineMetrics) *resultCache {
	return &resultCache{
		met:     met,
		cap:     capacity,
		entries: make(map[resKey]resEntry),
	}
}

// cacheable reports whether req's results may be served from / stored
// into the cache: point lookups only. Top-k is excluded (its result
// depends on k, and the stream cancels scans mid-flight) and scans are
// the planner's saturation escape hatch, not repeated point traffic.
func cacheable(req Req) bool {
	return req.Kind == KindPTQ || req.Kind == KindSecondary
}

func reqKey(req Req) resKey {
	return resKey{kind: req.Kind, attr: req.Attr, value: req.Value, qt: req.QT, tailored: req.Tailored}
}

// lookup returns the cached results for k, or the current epoch for
// the miss path to commit against. Nil-safe; a nil cache always
// misses with epoch 0.
func (rc *resultCache) lookup(k resKey) ([]upi.Result, Stats, uint64, bool) {
	if rc == nil {
		return nil, Stats{}, 0, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e, ok := rc.entries[k]
	if !ok {
		rc.met.ResultCacheMisses.Inc()
		return nil, Stats{}, rc.epoch, false
	}
	rc.met.ResultCacheHits.Inc()
	// Hand out a copy of the slice: callers may truncate or splice
	// result sets while merging across shards.
	return slices.Clone(e.results), e.stats, rc.epoch, true
}

// commit stores a fully drained result set, unless a write invalidated
// the epoch the query started from. Nil-safe.
func (rc *resultCache) commit(k resKey, epoch uint64, results []upi.Result, stats Stats) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if epoch != rc.epoch {
		return
	}
	if _, ok := rc.entries[k]; !ok && len(rc.entries) >= rc.cap {
		// Wholesale reset at capacity: hot traffic is a handful of
		// shapes, so overflow means the cache is mis-sized, not that
		// eviction order matters.
		clear(rc.entries)
	}
	rc.entries[k] = resEntry{results: slices.Clone(results), stats: stats}
}

// invalidate retires every entry and advances the epoch so in-flight
// queries cannot commit results that straddle the write. Called from
// the store's write paths, inside their critical sections. Nil-safe.
func (rc *resultCache) invalidate() {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.epoch++
	if len(rc.entries) > 0 {
		rc.met.ResultCacheInvalidations.Inc()
		clear(rc.entries)
	}
}

// purge is invalidate for DropCaches: same retirement, but not counted
// as a write invalidation. Nil-safe.
func (rc *resultCache) purge() {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.epoch++
	clear(rc.entries)
}
