package fracture

import (
	"context"
	"sync"
	"sync/atomic"

	"upidb/internal/sim"
	"upidb/internal/upi"
)

// Stream is the incremental form of a fractured-UPI query: a k-way
// merge of the per-partition confidence-sorted cursors (plus the RAM
// insert buffer), yielding the globally next-best result while slower
// partitions have read only as many heap pages as their own pulls
// demanded. It mirrors the cursor discipline of kWayMerge — every
// source is already sorted, keep picking the best head — applied to
// query results instead of B+Tree entries.
//
// Ordering and content are identical to the materialized Collect:
// results arrive in (Confidence DESC, tuple ID ASC) order and pass the
// pending-delete/upsert supersedence filter at yield time. For a top-k
// query the stream stops after k yields and cancels the remaining
// partition cursors, so pages they never reached are never read — and
// never charged.
//
// Accounting: each partition records its I/O on a private tape as its
// pages are consumed; the tape is replayed against the shared disk in
// one batch the moment that partition's cursor is exhausted (or when
// the stream terminates early), and the partition's pin is released at
// the same moment. Partition tapes never share files, so the replayed
// total for a full drain is exactly the serial scan's, at any
// parallelism. The first pull primes every partition cursor across the
// snapshot's worker pool; after that, pulls are demand-driven.
//
// A Stream is single-consumer and not safe for concurrent use. The
// context is checked between pulls; a cancelled stream terminates with
// an error wrapping upi.ErrCanceled, charges only the I/O already
// consumed and releases every partition pin.
type Stream struct {
	ctx    context.Context
	s      *Store
	snap   *snapshot
	cursor func(ctx context.Context, t *upi.Table) *upi.Cursor
	trace  TraceFunc
	k      int // stop after this many yields (0 = drain everything)

	primed  bool
	parts   []*streamPart
	buf     []upi.Result // sorted RAM-buffer matches
	bufIdx  int
	yielded int
	stats   Stats
	done    bool
	err     error

	// Result-cache plumbing: a cache-hit stream replays cached instead
	// of merging partitions (stats are the stored execution's, final
	// from the start); a cacheable miss accumulates its yields in acc
	// and commits them on natural exhaustion — the only termination
	// that proves the set is complete.
	fromCache  bool
	cached     []upi.Result
	cachedIdx  int
	acc        []upi.Result
	ckey       resKey
	cepoch     uint64
	commitable bool
}

// streamPart is one partition's side of the merge.
type streamPart struct {
	idx     int
	cur     *upi.Cursor
	tape    *sim.Tape
	release func() // tape routing release
	head    upi.Result
	hasHead bool
	// finished marks the partition finalized: cursor closed, tape
	// replayed, stats folded in, pin released.
	finished bool
}

// Stream consumes the Prepared incrementally. Like Collect, it may be
// called at most once; a Prepared that was already consumed returns a
// stream that fails immediately.
func (p *Prepared) Stream(ctx context.Context) *Stream {
	if p.used {
		return &Stream{done: true, err: errConsumed}
	}
	p.used = true
	st := &Stream{ctx: ctx, s: p.s, snap: p.snap, cursor: p.plan.cursor, trace: p.trace, k: p.plan.k}
	if p.cachedOK {
		st.fromCache = true
		st.cached = p.cached
		st.stats = p.cachedStats
		st.primed = true
		return st
	}
	st.ckey, st.cepoch, st.commitable = p.ckey, p.cepoch, p.commitable
	if p.snap == nil {
		st.done = true
	}
	return st
}

// prime opens every partition cursor and positions it on its first
// live result, fanning the openings out across the snapshot's worker
// pool — so the expensive first pull (which materializes secondary and
// full-scan partitions) overlaps across partitions. The RAM-buffer
// matches are sorted here too; they participate in the merge as a
// zero-I/O source.
func (st *Stream) prime() error {
	st.primed = true
	snap := st.snap
	n := len(snap.parts)
	st.stats.PartitionsRead = n
	st.parts = make([]*streamPart, n)
	st.buf = snap.bufResults
	sortResults(st.buf)

	errs := make([]error, n)
	open := func(i int) {
		p := &streamPart{idx: i, tape: sim.NewTape()}
		st.parts[i] = p
		if err := upi.CtxErr(st.ctx); err != nil {
			errs[i] = err
			return
		}
		t := snap.parts[i]
		st.trace.emit(TraceScanStart, i, t.Name())
		p.release = st.s.fs.RouteTo(t.Files(), p.tape)
		p.tape.Open(t.Name())
		p.cur = st.cursor(st.ctx, t)
		errs[i] = st.advance(p)
	}

	if workers := min(snap.parallelism, n); workers <= 1 {
		for i := 0; i < n; i++ {
			open(i)
		}
	} else {
		var next atomic.Int32
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= n {
						return
					}
					open(i)
				}
			}()
		}
		wg.Wait()
	}

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return errs[i]
		}
	}
	// Partitions that turned out empty are finalized immediately, so
	// their pins and tapes do not linger for the stream's lifetime.
	for _, p := range st.parts {
		if !p.hasHead {
			st.finalizePart(p)
		}
	}
	return nil
}

// advance pulls the next live result (one that passes the supersedence
// filter) into p.head. It does not finalize on exhaustion — callers
// decide when to fold the partition in, because prime runs advance
// concurrently and finalization charges the shared disk.
func (st *Stream) advance(p *streamPart) error {
	killers := st.snap.killers[p.idx]
	for {
		r, ok, err := p.cur.Next()
		if err != nil {
			p.hasHead = false
			return err
		}
		if !ok {
			p.hasHead = false
			return nil
		}
		if killedBy(killers, r.Tuple.ID) {
			continue
		}
		p.head, p.hasHead = r, true
		return nil
	}
}

// finalizePart folds an exhausted (or abandoned) partition into the
// stream: close the cursor so no further pages can be read, stop
// routing, replay the consumed I/O in one batch, fold the statistics
// in and release the partition's pin.
func (st *Stream) finalizePart(p *streamPart) {
	if p.finished {
		return
	}
	p.finished = true
	if p.cur != nil {
		p.cur.Close()
		st.stats.QueryStats = addStats(st.stats.QueryStats, p.cur.Stats())
	}
	if p.release != nil {
		p.release()
	}
	st.stats.ModeledTime += st.s.fs.Disk().Replay(p.tape)
	st.snap.unpinPart(p.idx)
	st.trace.emit(TraceScanEnd, p.idx, st.snap.parts[p.idx].Name())
}

// finish terminates the stream: every remaining partition is
// finalized (charging only the I/O its cursor actually consumed) and
// the terminal error, if any, is made sticky.
func (st *Stream) finish(err error) {
	if st.done {
		return
	}
	st.done = true
	st.err = err
	for _, p := range st.parts {
		st.finalizePart(p)
	}
	if st.snap != nil {
		st.snap.release()
	}
}

// Next returns the globally next-best result. ok is false when the
// stream is exhausted (or, for top-k, the k-th result has been
// yielded); err is non-nil exactly once, on failure, and sticky
// afterwards.
func (st *Stream) Next() (r upi.Result, ok bool, err error) {
	if st.done {
		return upi.Result{}, false, st.err
	}
	if err := upi.CtxErr(st.ctx); err != nil {
		st.finish(err)
		return upi.Result{}, false, err
	}
	if st.fromCache {
		if st.cachedIdx >= len(st.cached) {
			st.finish(nil)
			return upi.Result{}, false, nil
		}
		r = st.cached[st.cachedIdx]
		st.cachedIdx++
		st.yielded++
		return r, true, nil
	}
	if !st.primed {
		if err := st.prime(); err != nil {
			st.finish(err)
			return upi.Result{}, false, err
		}
	}
	if st.k > 0 && st.yielded >= st.k {
		// Top-k early termination: every live cursor's next candidate
		// ranks at or below the k-th yielded result, so the remaining
		// scans can only produce discards. Cancel them; unread pages
		// are never charged.
		st.finish(nil)
		return upi.Result{}, false, nil
	}

	// Pick the best head among the partition cursors and the buffer —
	// the same pick-the-smallest-cursor discipline as kWayMerge, with
	// (Confidence DESC, ID ASC) in place of key order.
	var best *streamPart
	for _, p := range st.parts {
		if !p.hasHead {
			continue
		}
		if best == nil || resultBefore(p.head, best.head) {
			best = p
		}
	}
	useBuf := st.bufIdx < len(st.buf) &&
		(best == nil || resultBefore(st.buf[st.bufIdx], best.head))

	switch {
	case useBuf:
		r = st.buf[st.bufIdx]
		st.bufIdx++
		st.stats.BufferHits++
	case best != nil:
		r = best.head
		if err := st.advance(best); err != nil {
			st.finish(err)
			return upi.Result{}, false, err
		}
		if !best.hasHead {
			st.finalizePart(best)
		}
	default:
		// Natural exhaustion: every source drained, so the accumulated
		// yields are the complete result set — the one termination a
		// cacheable drain may commit from.
		if st.commitable {
			st.s.rc.commit(st.ckey, st.cepoch, st.acc, st.stats)
		}
		st.finish(nil)
		return upi.Result{}, false, nil
	}
	st.yielded++
	if st.commitable {
		st.acc = append(st.acc, r)
	}
	return r, true, nil
}

// Close terminates the stream without draining it: remaining cursors
// are cancelled, consumed I/O is charged, and every pin is released.
// Idempotent; exhaustion and errors imply it.
func (st *Stream) Close() { st.finish(st.err) }

// Stats reports what the stream has touched so far. Counters are
// final once the stream is exhausted, failed or closed; a partition's
// scan statistics and modeled time fold in when that partition
// finishes.
func (st *Stream) Stats() Stats { return st.stats }

// resultBefore is the merge order: confidence descending, tuple ID
// ascending. Live results are unique on (confidence, ID) — the
// supersedence filter leaves at most one live version per tuple — so
// the order is total.
func resultBefore(a, b upi.Result) bool {
	if a.Confidence != b.Confidence {
		return a.Confidence > b.Confidence
	}
	return a.Tuple.ID < b.Tuple.ID
}
