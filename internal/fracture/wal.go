package fracture

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"upidb/internal/obs"
	"upidb/internal/storage"
	"upidb/internal/tuple"
)

// The write-ahead log makes the RAM insert buffer durable (the gap the
// paper's "write-buffered" design leaves open): every Insert and
// Delete appends one record and fsyncs before the call returns, so a
// crash loses nothing that was acknowledged. A flush persists the
// buffered changes as a fracture and then truncates the WAL — the
// fracture *is* the checkpoint — and Open replays whatever the WAL
// still holds to reconstruct the buffer and the pending delete set.
//
// Record layout (all integers big-endian):
//
//	[1 byte type][4 bytes payload len][payload][4 bytes CRC32-IEEE]
//
// The CRC covers type, length and payload. Replay stops at the first
// torn or corrupt record and truncates it away: a broken tail can only
// be an append that was never acknowledged, because acknowledged
// appends were fsynced whole.
//
// WAL replay is idempotent thanks to the store's upsert semantics:
// re-applying an insert supersedes the identical flushed version, and
// re-applying a delete re-deletes — so a crash *between* the
// checkpoint fracture landing and the WAL truncation recovers a
// harmless superset of operations, never a wrong state.
const (
	walRecInsert byte = 1 // payload: tuple.Encode
	walRecDelete byte = 2 // payload: 8-byte tuple ID
)

// walHeader is type+len before the payload; walFooter the CRC after.
const (
	walHeader = 5
	walFooter = 4
)

// wal is an open write-ahead log file. It is not internally locked:
// the Store serializes access under its write lock, which also keeps
// append order identical to buffer-mutation order.
type wal struct {
	f    *storage.File
	size int64 // bytes of valid, fsynced records
	met  *obs.EngineMetrics
}

func walName(store string) string { return store + ".wal" }

// createWAL creates an empty WAL (truncating any leftover).
func createWAL(fs *storage.FS, store string, met *obs.EngineMetrics) (*wal, error) {
	if met == nil {
		met = &obs.EngineMetrics{}
	}
	name := walName(store)
	fs.Sideband(name)
	f := fs.Create(name)
	if err := f.Sync(); err != nil {
		return nil, fmt.Errorf("fracture: create wal: %w", err)
	}
	return &wal{f: f, met: met}, nil
}

// openWAL opens an existing WAL and replays its records through apply,
// self-healing a torn tail. Records are applied in append order.
func openWAL(fs *storage.FS, store string, met *obs.EngineMetrics, apply func(recType byte, payload []byte) error) (*wal, error) {
	if met == nil {
		met = &obs.EngineMetrics{}
	}
	name := walName(store)
	fs.Sideband(name)
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	w := &wal{f: f, met: met}
	size := f.Size()
	data := make([]byte, size)
	if size > 0 {
		if err := f.ReadAt(data, 0); err != nil {
			return nil, fmt.Errorf("fracture: read wal: %w", err)
		}
	}
	off := 0
	for {
		rec, payload, ok := nextWALRecord(data[off:])
		if !ok {
			break
		}
		recType := data[off]
		if err := apply(recType, payload); err != nil {
			return nil, fmt.Errorf("fracture: replay wal: %w", err)
		}
		off += rec
	}
	if int64(off) != size {
		// Torn tail from a crash mid-append: the operation was never
		// acknowledged, so dropping it is correct.
		if err := f.Truncate(int64(off)); err != nil {
			return nil, fmt.Errorf("fracture: heal wal: %w", err)
		}
	}
	w.size = int64(off)
	return w, nil
}

// nextWALRecord parses one record at the head of data, returning its
// total length and payload. ok is false for a torn or corrupt record.
func nextWALRecord(data []byte) (recLen int, payload []byte, ok bool) {
	if len(data) < walHeader+walFooter {
		return 0, nil, false
	}
	plen := int(binary.BigEndian.Uint32(data[1:walHeader]))
	total := walHeader + plen + walFooter
	if plen < 0 || len(data) < total {
		return 0, nil, false
	}
	crc := binary.BigEndian.Uint32(data[walHeader+plen:])
	if crc32.ChecksumIEEE(data[:walHeader+plen]) != crc {
		return 0, nil, false
	}
	if t := data[0]; t != walRecInsert && t != walRecDelete {
		return 0, nil, false
	}
	return total, data[walHeader : walHeader+plen], true
}

// append writes one record and fsyncs it; only then is the operation
// acknowledged. On any error the WAL is healed back to its previous
// length, so the file never retains a record whose append failed.
func (w *wal) append(recType byte, payload []byte) error {
	rec := make([]byte, 0, walHeader+len(payload)+walFooter)
	rec = append(rec, recType)
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	if err := w.f.WriteAt(rec, w.size); err != nil {
		w.heal()
		return fmt.Errorf("fracture: wal append: %w", err)
	}
	fsyncStart := time.Now()
	if err := w.f.Sync(); err != nil {
		w.heal()
		return fmt.Errorf("fracture: wal sync: %w", err)
	}
	w.met.WALFsyncSeconds.Observe(time.Since(fsyncStart).Seconds())
	w.met.WALAppends.Inc()
	w.size += int64(len(rec))
	return nil
}

// heal truncates the file back to the last acknowledged record after a
// failed append. Best-effort: if the truncate itself fails, replay's
// CRC check still discards the partial record.
func (w *wal) heal() {
	_ = w.f.Truncate(w.size)
}

// reset empties the WAL after a checkpoint (flush) made its records
// redundant.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("fracture: wal truncate: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("fracture: wal truncate sync: %w", err)
	}
	w.size = 0
	return nil
}

// appendInsert logs an upsert of tup.
func (w *wal) appendInsert(tup *tuple.Tuple) error {
	return w.append(walRecInsert, tuple.Encode(tup))
}

// appendDelete logs a delete of id.
func (w *wal) appendDelete(id uint64) error {
	return w.append(walRecDelete, binary.BigEndian.AppendUint64(nil, id))
}
