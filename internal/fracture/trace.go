package fracture

// Query-level tracing. A query descriptor may carry a TraceFunc
// (upidb.Query.WithTrace on the facade); the engine then emits one
// TraceEvent per span milestone as execution proceeds — shard
// dispatch, per-partition scan start/end, merged-stream yields and the
// admission verdict — giving servers a substrate for per-request
// metrics without touching the result path. With no TraceFunc set the
// hooks cost one nil check.
//
// Events are emitted synchronously from whichever goroutine reaches
// the milestone: partition scans fan out across a worker pool, so a
// TraceFunc must be safe for concurrent use (atomic counters or a
// locked sink). It must also be fast — the scan worker blocks on it.

// The trace event kinds the engine emits.
const (
	// TraceAdmission is the admission verdict of a Run: admitted,
	// refused (deadline below modeled cost), or unpriced (heuristic
	// route, no cost-based admission). Emitted by the facade.
	TraceAdmission = "admission"
	// TraceDispatch marks one shard receiving its per-shard request
	// during scatter. Emitted once per shard, before the shard's
	// partition snapshot is pinned.
	TraceDispatch = "shard.dispatch"
	// TraceScanStart marks one partition scan (materialized) or
	// partition cursor (streaming) starting.
	TraceScanStart = "partition.scan.start"
	// TraceScanEnd marks one partition finishing: scanned to
	// completion, exhausted, or cancelled.
	TraceScanEnd = "partition.scan.end"
	// TraceYield marks the merged stream yielding one result,
	// identifying the shard that produced it. Emitted on the streaming
	// path only.
	TraceYield = "merge.yield"
)

// TraceEvent is one span event of a traced query.
type TraceEvent struct {
	// Kind is one of the Trace* constants.
	Kind string
	// Shard is the shard the event belongs to (0 on unsharded tables
	// and for table-level events like admission).
	Shard int
	// Part is the partition index within the shard (0 = main UPI,
	// i >= 1 = fracture i-1); meaningful for scan events only.
	Part int
	// Detail is a human-readable annotation: the partition table name
	// for scan events, the verdict for admission, the yielded tuple
	// for merge.yield.
	Detail string
}

// TraceFunc receives span events. Implementations must be safe for
// concurrent use; see the package comment above.
type TraceFunc func(TraceEvent)

// emit calls fn if set. The nil check keeps untraced queries free.
func (fn TraceFunc) emit(kind string, part int, detail string) {
	if fn != nil {
		fn(TraceEvent{Kind: kind, Part: part, Detail: detail})
	}
}
