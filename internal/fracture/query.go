package fracture

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"upidb/internal/obs"
	"upidb/internal/sim"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// Stats aggregates per-partition query statistics.
type Stats struct {
	upi.QueryStats
	// PartitionsRead is 1 (main) + the number of fractures consulted.
	PartitionsRead int
	// BufferHits counts results served from the RAM insert buffer.
	BufferHits int
	// ModeledTime is the modeled disk time this query's own I/O was
	// charged (the sum of its replayed partition tapes) — exact per
	// query even while other queries or merges run concurrently.
	ModeledTime time.Duration
}

// Kind identifies the query class a Req describes.
type Kind int

// The query classes the fractured store executes.
const (
	// KindPTQ is a probabilistic threshold query on the primary
	// attribute.
	KindPTQ Kind = iota
	// KindSecondary is a PTQ on a secondary attribute.
	KindSecondary
	// KindTopK is a top-k query on the primary attribute.
	KindTopK
	// KindScan is a PTQ executed as a sequential full scan of every
	// partition's heap with an in-flight filter — the physical form of
	// the planner's FullScan plan. Attr may name any attribute ("" =
	// primary); no index is consulted.
	KindScan
)

// Req is one query descriptor: the predicate plus per-query execution
// options. It is the single entry point the facade's Table.Run maps to.
type Req struct {
	Kind  Kind
	Attr  string // secondary attribute (KindSecondary only)
	Value string
	QT    float64 // threshold (PTQ kinds)
	K     int     // result bound (KindTopK)
	// Tailored enables tailored secondary-index access (Section 3.2).
	Tailored bool
	// Parallelism overrides the store's partition fan-out width for
	// this query only (0 = store default).
	Parallelism int
	// Trace, when set, receives span events (partition scan start/end)
	// as the query executes. It may be called from concurrent scan
	// workers; see TraceFunc.
	Trace TraceFunc
}

// snapshot is a consistent view of the store taken under the read
// lock: the partition tables (index 0 = main), the delete filter each
// partition's results must pass, the matches already found in the RAM
// insert buffer, and pins on every partition's file lifetime so a
// concurrent merge cannot remove files mid-scan.
type snapshot struct {
	parts []*upi.Table
	// killers[i] holds the delete sets that apply to partition i's
	// results: every newer fracture's delete set (immutable once
	// flushed, so shared by reference) plus the pending-buffer
	// tombstones copied at snapshot time. Referencing the immutable
	// maps instead of materializing their union keeps snapshotting
	// O(buffer) — delete sets now carry every upserted ID, so unions
	// would grow with all inserts since the last merge.
	killers     [][]map[uint64]bool
	pins        []*partRef
	bufResults  []upi.Result
	parallelism int
	met         *obs.EngineMetrics

	// mu guards pinned. Pins are normally released by the single
	// consumer (collect, or the merged stream partition by partition),
	// but an abandoned Prepared may be released by a GC cleanup on
	// another goroutine, so the bookkeeping is locked and idempotent.
	mu     sync.Mutex
	pinned []bool
}

// killedBy reports whether any of the delete sets holds id.
func killedBy(sets []map[uint64]bool, id uint64) bool {
	for _, m := range sets {
		if m[id] {
			return true
		}
	}
	return false
}

// snapshotFor captures the current partitions and evaluates the RAM
// buffer under the read lock. match returns the confidence of a
// buffered tuple and whether it qualifies; buffer evaluation is pure
// CPU, so doing it under the lock keeps the snapshot consistent at no
// I/O cost. parallelism > 0 overrides the store default for this
// query. Fails with ErrClosed once the store is closed.
func (s *Store) snapshotFor(parallelism int, match func(*tuple.Tuple) (float64, bool)) (*snapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	n := 1 + len(s.fractures)
	snap := &snapshot{
		parts:       make([]*upi.Table, n),
		killers:     make([][]map[uint64]bool, n),
		pins:        make([]*partRef, n),
		parallelism: s.parallelismLocked(),
		met:         s.opts.Metrics,
	}
	if parallelism > 0 {
		snap.parallelism = parallelism
	}
	// The buffer's tombstones keep changing after the snapshot is
	// released, so copy them once; fracture delete sets are immutable
	// after the flush that wrote them and are shared by reference.
	bufDel := make(map[uint64]bool, len(s.bufDeletes))
	for id := range s.bufDeletes {
		bufDel[id] = true
	}
	snap.parts[0] = s.main
	snap.pins[0] = s.mainRef
	for i, f := range s.fractures {
		snap.parts[i+1] = f.table
		snap.pins[i+1] = f.ref
	}
	for p := 0; p < n; p++ {
		// Partition p (0 = main, p >= 1 = fracture p-1) is filtered by
		// the delete sets of strictly newer fractures plus the buffer.
		sets := make([]map[uint64]bool, 0, len(s.fractures)-p+1)
		for j := p; j < len(s.fractures); j++ {
			sets = append(sets, s.fractures[j].deleted)
		}
		snap.killers[p] = append(sets, bufDel)
	}
	snap.pinned = make([]bool, n)
	for i, p := range snap.pins {
		p.pin()
		snap.pinned[i] = true
	}
	for _, id := range s.bufOrder {
		tup := s.bufTuples[id]
		if conf, ok := match(tup); ok {
			snap.bufResults = append(snap.bufResults, upi.Result{Tuple: tup, Confidence: conf})
		}
	}
	return snap, nil
}

// unpinPart releases the pin on one partition, exactly once; the
// merged stream calls it the moment that partition's result stream is
// exhausted, so a long-lived stream does not keep already-drained
// partitions' files alive.
func (snap *snapshot) unpinPart(i int) {
	snap.mu.Lock()
	wasPinned := snap.pinned[i]
	snap.pinned[i] = false
	snap.mu.Unlock()
	if wasPinned {
		snap.pins[i].unpin()
		snap.met.PinReleases.Inc()
	}
}

// release unpins every partition still pinned. Idempotent.
func (snap *snapshot) release() {
	for i := range snap.pins {
		snap.unpinPart(i)
	}
}

// partQuery runs one query against a single partition.
type partQuery func(ctx context.Context, t *upi.Table) ([]upi.Result, upi.QueryStats, error)

// collect fans q out over the snapshot's partitions with a bounded
// worker pool, then merges results in partition order. Each partition
// is charged a table-open cost (the Nfrac × Costinit term of the
// Section 6 cost model) plus its scan I/O, recorded on a per-partition
// tape and replayed in partition order — so the modeled cost equals a
// serial scan's at any parallelism.
//
// The context is checked before each partition scan starts and, inside
// upi, between heap pages. When a partition fails — including by
// cancellation — its tape and every later partition's tape are
// discarded instead of replayed: an abandoned query stops charging
// modeled I/O beyond the partitions it had already completed.
func (s *Store) collect(ctx context.Context, snap *snapshot, q partQuery, trace TraceFunc) ([]upi.Result, Stats, error) {
	n := len(snap.parts)
	type partOut struct {
		rs   []upi.Result
		qs   upi.QueryStats
		err  error
		tape *sim.Tape
	}
	outs := make([]partOut, n)

	scan := func(i int) {
		if err := upi.CtxErr(ctx); err != nil {
			outs[i] = partOut{err: err, tape: sim.NewTape()}
			return
		}
		t := snap.parts[i]
		trace.emit(TraceScanStart, i, t.Name())
		tape := sim.NewTape()
		release := s.fs.RouteTo(t.Files(), tape)
		tape.Open(t.Name())
		rs, qs, err := q(ctx, t)
		release()
		outs[i] = partOut{rs: rs, qs: qs, err: err, tape: tape}
		if err != nil {
			trace.emit(TraceScanEnd, i, t.Name()+": "+err.Error())
		} else {
			trace.emit(TraceScanEnd, i, t.Name())
		}
	}

	if workers := min(snap.parallelism, n); workers <= 1 {
		for i := 0; i < n; i++ {
			scan(i)
		}
	} else {
		var next atomic.Int32
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= n {
						return
					}
					scan(i)
				}
			}()
		}
		wg.Wait()
	}

	// Deterministic accounting: charge partition I/O in partition
	// order, exactly as a serial scan would have — but only up to the
	// first failed partition, so a cancelled query stops charging.
	firstErr := n
	for i := range outs {
		if outs[i].err != nil {
			firstErr = i
			break
		}
	}
	disk := s.fs.Disk()
	var modeled time.Duration
	for i := 0; i < firstErr; i++ {
		modeled += disk.Replay(outs[i].tape)
	}

	var stats Stats
	stats.ModeledTime = modeled
	var results []upi.Result
	for i := range outs {
		stats.PartitionsRead++
		if outs[i].err != nil {
			return nil, stats, outs[i].err
		}
		stats.QueryStats = addStats(stats.QueryStats, outs[i].qs)
		results = appendLive(results, outs[i].rs, snap.killers[i])
	}
	// Insert buffer: pure RAM, no I/O charge.
	results = append(results, snap.bufResults...)
	stats.BufferHits = len(snap.bufResults)
	sortResults(results)
	return results, stats, nil
}

// execPlan is everything a Req compiles to: the RAM-buffer match
// predicate, the materialized per-partition executor, the streaming
// per-partition cursor factory, and the top-k bound (0 = unbounded).
type execPlan struct {
	match  func(*tuple.Tuple) (float64, bool)
	q      partQuery
	cursor func(ctx context.Context, t *upi.Table) *upi.Cursor
	k      int
	empty  bool // trivially empty query (top-k with k <= 0)
}

// compileReq maps a Req onto its execution plan.
func (s *Store) compileReq(req Req) (execPlan, error) {
	var p execPlan
	switch req.Kind {
	case KindPTQ:
		p.match = func(tup *tuple.Tuple) (float64, bool) {
			// conf > 0 mirrors the on-disk paths: a tuple without the
			// value among its alternatives never matches, even at qt=0
			// (it has no heap entry under the value either).
			conf := tup.Confidence(s.attr, req.Value)
			return conf, conf > 0 && conf >= req.QT
		}
		p.q = func(ctx context.Context, t *upi.Table) ([]upi.Result, upi.QueryStats, error) {
			return t.Query(ctx, req.Value, req.QT)
		}
		p.cursor = func(ctx context.Context, t *upi.Table) *upi.Cursor {
			return t.QueryCursor(ctx, req.Value, req.QT)
		}
	case KindSecondary:
		p.match = func(tup *tuple.Tuple) (float64, bool) {
			conf := tup.Confidence(req.Attr, req.Value)
			return conf, conf > 0 && conf >= req.QT
		}
		p.q = func(ctx context.Context, t *upi.Table) ([]upi.Result, upi.QueryStats, error) {
			return t.QuerySecondary(ctx, req.Attr, req.Value, req.QT, req.Tailored)
		}
		p.cursor = func(ctx context.Context, t *upi.Table) *upi.Cursor {
			return t.SecondaryCursor(ctx, req.Attr, req.Value, req.QT, req.Tailored)
		}
	case KindTopK:
		if req.K <= 0 {
			return execPlan{empty: true}, nil
		}
		p.k = req.K
		p.match = func(tup *tuple.Tuple) (float64, bool) {
			conf := tup.Confidence(s.attr, req.Value)
			return conf, conf > 0
		}
		p.q = func(ctx context.Context, t *upi.Table) ([]upi.Result, upi.QueryStats, error) {
			return t.TopK(ctx, req.Value, req.K)
		}
		p.cursor = func(ctx context.Context, t *upi.Table) *upi.Cursor {
			return t.TopKCursor(ctx, req.Value, req.K)
		}
	case KindScan:
		attr := req.Attr
		if attr == "" {
			attr = s.attr
		}
		p.match = func(tup *tuple.Tuple) (float64, bool) {
			conf := tup.Confidence(attr, req.Value)
			return conf, conf > 0 && conf >= req.QT
		}
		p.q = func(ctx context.Context, t *upi.Table) ([]upi.Result, upi.QueryStats, error) {
			return t.FullScan(ctx, attr, req.Value, req.QT)
		}
		p.cursor = func(ctx context.Context, t *upi.Table) *upi.Cursor {
			return t.ScanCursor(ctx, attr, req.Value, req.QT)
		}
	default:
		return execPlan{}, fmt.Errorf("fracture: unknown query kind %d", req.Kind)
	}
	return p, nil
}

// Run executes one query described by req against the fractured UPI:
// the union of the main UPI, every fracture and the insert buffer,
// minus deleted tuples (Section 4.2). Partitions are scanned in
// parallel up to the effective parallelism. A done context fails fast
// with ErrCanceled before any partition is pinned or charged.
func (s *Store) Run(ctx context.Context, req Req) ([]upi.Result, Stats, error) {
	p, err := s.Prepare(ctx, req)
	if err != nil {
		return nil, Stats{}, err
	}
	return p.Collect(ctx)
}

// Prepared is a query that has been compiled and snapshotted but not
// yet executed: the partition set is pinned as of the Prepare call, so
// the result set is fixed no matter when — or how — it is consumed.
// Exactly one of Collect (materialized, partition-parallel) or Stream
// (incremental k-way merged) may consume it; Release discards an
// unconsumed Prepared.
type Prepared struct {
	s     *Store
	plan  execPlan
	snap  *snapshot // nil for trivially empty queries
	trace TraceFunc
	used  bool

	// Result-cache plumbing. On a hit, cached carries the stored
	// result set (cachedOK distinguishes a hit from a trivially empty
	// query) and no snapshot exists; on a cacheable miss, ckey/cepoch
	// identify the entry a fully drained execution commits.
	cached      []upi.Result
	cachedStats Stats
	cachedOK    bool
	ckey        resKey
	cepoch      uint64
	commitable  bool
}

// Prepare compiles req, evaluates the RAM buffer and pins the current
// partition set. A done context fails fast with ErrCanceled before
// any partition is pinned or any modeled I/O charged.
//
// With a result cache enabled, a cacheable req whose shape is cached
// skips the snapshot entirely: the returned Prepared replays the
// stored results and statistics. A cacheable miss records the cache
// epoch before pinning, so the drain can commit its result set only
// if no write intervened.
func (s *Store) Prepare(ctx context.Context, req Req) (*Prepared, error) {
	if err := upi.CtxErr(ctx); err != nil {
		return nil, err
	}
	plan, err := s.compileReq(req)
	if err != nil {
		return nil, err
	}
	p := &Prepared{s: s, plan: plan, trace: req.Trace}
	if plan.empty {
		return p, nil
	}
	if s.rc != nil && cacheable(req) {
		s.mu.RLock()
		closed := s.closed
		s.mu.RUnlock()
		if closed {
			return nil, ErrClosed
		}
		p.ckey = reqKey(req)
		rs, st, epoch, ok := s.rc.lookup(p.ckey)
		if ok {
			p.cached, p.cachedStats, p.cachedOK = rs, st, true
			return p, nil
		}
		p.cepoch, p.commitable = epoch, true
	}
	snap, err := s.snapshotFor(req.Parallelism, plan.match)
	if err != nil {
		return nil, err
	}
	p.snap = snap
	return p, nil
}

// Collect executes the prepared query the materialized way: every
// partition is scanned to completion (fanned out across the worker
// pool), per-partition tapes are replayed in partition order, and the
// sorted result set is returned — the exact semantics, statistics and
// modeled cost of the pre-streaming engine.
func (p *Prepared) Collect(ctx context.Context) ([]upi.Result, Stats, error) {
	if p.used {
		return nil, Stats{}, errConsumed
	}
	p.used = true
	if p.cachedOK {
		if err := upi.CtxErr(ctx); err != nil {
			return nil, Stats{}, err
		}
		return p.cached, p.cachedStats, nil
	}
	if p.snap == nil {
		return nil, Stats{}, nil
	}
	defer p.snap.release()
	results, stats, err := p.s.collect(ctx, p.snap, p.plan.q, p.trace)
	if err != nil {
		return nil, stats, err
	}
	if p.plan.k > 0 && len(results) > p.plan.k {
		results = results[:p.plan.k]
	}
	if p.commitable {
		p.s.rc.commit(p.ckey, p.cepoch, results, stats)
	}
	return results, stats, nil
}

// Release discards a Prepared without consuming it, dropping every
// partition pin and spending the handle — a later Collect or Stream
// fails instead of scanning partitions whose files may already be
// reclaimed. Safe to call at any time and idempotent; consuming paths
// release on their own.
func (p *Prepared) Release() {
	p.used = true
	if p.snap != nil {
		p.snap.release()
	}
}

// errConsumed reports a second consumption of a Prepared.
var errConsumed = errors.New("fracture: prepared query already consumed")

// Query answers a PTQ on the primary attribute. It is shorthand for
// Run with a KindPTQ request.
func (s *Store) Query(ctx context.Context, value string, qt float64) ([]upi.Result, Stats, error) {
	return s.Run(ctx, Req{Kind: KindPTQ, Value: value, QT: qt})
}

// QuerySecondary answers a PTQ on a secondary attribute across all
// partitions. Each fracture's secondary index points into that
// fracture's own heap (Section 4.2), so tailored access runs
// per-partition — which also makes the fan-out embarrassingly
// parallel.
func (s *Store) QuerySecondary(ctx context.Context, attr, value string, qt float64, tailored bool) ([]upi.Result, Stats, error) {
	return s.Run(ctx, Req{Kind: KindSecondary, Attr: attr, Value: value, QT: qt, Tailored: tailored})
}

// TopK returns the k highest-confidence matches across all partitions.
func (s *Store) TopK(ctx context.Context, value string, k int) ([]upi.Result, Stats, error) {
	return s.Run(ctx, Req{Kind: KindTopK, Value: value, K: k})
}

func appendLive(dst []upi.Result, src []upi.Result, killers []map[uint64]bool) []upi.Result {
	for _, r := range src {
		if !killedBy(killers, r.Tuple.ID) {
			dst = append(dst, r)
		}
	}
	return dst
}

func addStats(a, b upi.QueryStats) upi.QueryStats {
	a.HeapEntries += b.HeapEntries
	a.CutoffPointers += b.CutoffPointers
	a.SecondaryEntries += b.SecondaryEntries
	a.ReusedPointers += b.ReusedPointers
	return a
}

func sortResults(rs []upi.Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Confidence != rs[j].Confidence {
			return rs[i].Confidence > rs[j].Confidence
		}
		return rs[i].Tuple.ID < rs[j].Tuple.ID
	})
}

// collectLiveTuples returns every live tuple across the given
// partitions (index 0 = main, then fractures oldest first),
// deduplicated by ID. The per-partition delete filters are the
// snapshot-time deletesAfter sets. Used by the rebuild path of Merge,
// which always runs after a flush, so there is no RAM buffer to fold
// in.
func collectLiveTuples(parts []*upi.Table, deletes []map[uint64]bool) ([]*tuple.Tuple, error) {
	byID := make(map[uint64]*tuple.Tuple)
	for i, t := range parts {
		deleted := deletes[i]
		err := t.ScanHeap(func(value string, conf float64, id uint64, enc []byte) bool {
			if deleted[id] {
				return true
			}
			if _, seen := byID[id]; seen {
				return true // other alternatives of an already-collected tuple
			}
			tup, err := tuple.Decode(enc)
			if err != nil {
				return false
			}
			byID[id] = tup
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	ids := make([]uint64, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*tuple.Tuple, len(ids))
	for i, id := range ids {
		out[i] = byID[id]
	}
	return out, nil
}
