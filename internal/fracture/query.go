package fracture

import (
	"sort"
	"sync"
	"sync/atomic"

	"upidb/internal/sim"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// Stats aggregates per-partition query statistics.
type Stats struct {
	upi.QueryStats
	// PartitionsRead is 1 (main) + the number of fractures consulted.
	PartitionsRead int
	// BufferHits counts results served from the RAM insert buffer.
	BufferHits int
}

// snapshot is a consistent view of the store taken under the read
// lock: the partition tables (index 0 = main), the delete filter each
// partition's results must pass, the matches already found in the RAM
// insert buffer, and pins on every partition's file lifetime so a
// concurrent merge cannot remove files mid-scan.
type snapshot struct {
	parts       []*upi.Table
	deletes     []map[uint64]bool
	pins        []*partRef
	bufResults  []upi.Result
	parallelism int
}

// snapshotFor captures the current partitions and evaluates the RAM
// buffer under the read lock. match returns the confidence of a
// buffered tuple and whether it qualifies; buffer evaluation is pure
// CPU, so doing it under the lock keeps the snapshot consistent at no
// I/O cost.
func (s *Store) snapshotFor(match func(*tuple.Tuple) (float64, bool)) *snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 1 + len(s.fractures)
	snap := &snapshot{
		parts:       make([]*upi.Table, n),
		deletes:     make([]map[uint64]bool, n),
		pins:        make([]*partRef, n),
		parallelism: s.parallelismLocked(),
	}
	snap.parts[0] = s.main
	snap.deletes[0] = s.deletesAfterLocked(-1)
	snap.pins[0] = s.mainRef
	for i, f := range s.fractures {
		snap.parts[i+1] = f.table
		snap.deletes[i+1] = s.deletesAfterLocked(i)
		snap.pins[i+1] = f.ref
	}
	for _, p := range snap.pins {
		p.pin()
	}
	for _, id := range s.bufOrder {
		tup := s.bufTuples[id]
		if conf, ok := match(tup); ok {
			snap.bufResults = append(snap.bufResults, upi.Result{Tuple: tup, Confidence: conf})
		}
	}
	return snap
}

func (snap *snapshot) release() {
	for _, p := range snap.pins {
		p.unpin()
	}
}

// partQuery runs one query against a single partition.
type partQuery func(t *upi.Table) ([]upi.Result, upi.QueryStats, error)

// collect fans q out over the snapshot's partitions with a bounded
// worker pool, then merges results in partition order. Each partition
// is charged a table-open cost (the Nfrac × Costinit term of the
// Section 6 cost model) plus its scan I/O, recorded on a per-partition
// tape and replayed in partition order — so the modeled cost equals a
// serial scan's at any parallelism.
func (s *Store) collect(snap *snapshot, q partQuery) ([]upi.Result, Stats, error) {
	n := len(snap.parts)
	type partOut struct {
		rs   []upi.Result
		qs   upi.QueryStats
		err  error
		tape *sim.Tape
	}
	outs := make([]partOut, n)

	scan := func(i int) {
		t := snap.parts[i]
		tape := sim.NewTape()
		release := s.fs.RouteTo(t.Files(), tape)
		tape.Open(t.Name())
		rs, qs, err := q(t)
		release()
		outs[i] = partOut{rs: rs, qs: qs, err: err, tape: tape}
	}

	if workers := min(snap.parallelism, n); workers <= 1 {
		for i := 0; i < n; i++ {
			scan(i)
		}
	} else {
		var next atomic.Int32
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= n {
						return
					}
					scan(i)
				}
			}()
		}
		wg.Wait()
	}

	// Deterministic accounting: charge partition I/O in partition
	// order, exactly as a serial scan would have.
	disk := s.fs.Disk()
	for i := range outs {
		disk.Replay(outs[i].tape)
	}

	var stats Stats
	var results []upi.Result
	for i := range outs {
		stats.PartitionsRead++
		if outs[i].err != nil {
			return nil, stats, outs[i].err
		}
		stats.QueryStats = addStats(stats.QueryStats, outs[i].qs)
		results = appendLive(results, outs[i].rs, snap.deletes[i])
	}
	// Insert buffer: pure RAM, no I/O charge.
	results = append(results, snap.bufResults...)
	stats.BufferHits = len(snap.bufResults)
	sortResults(results)
	return results, stats, nil
}

// Query answers a PTQ over the fractured UPI: the union of the main
// UPI, every fracture and the insert buffer, minus deleted tuples
// (Section 4.2). Partitions are scanned in parallel up to
// Options.Parallelism.
func (s *Store) Query(value string, qt float64) ([]upi.Result, Stats, error) {
	snap := s.snapshotFor(func(tup *tuple.Tuple) (float64, bool) {
		conf := tup.Confidence(s.attr, value)
		return conf, conf >= qt
	})
	defer snap.release()
	return s.collect(snap, func(t *upi.Table) ([]upi.Result, upi.QueryStats, error) {
		return t.Query(value, qt)
	})
}

// QuerySecondary answers a PTQ on a secondary attribute across all
// partitions. Each fracture's secondary index points into that
// fracture's own heap (Section 4.2), so tailored access runs
// per-partition — which also makes the fan-out embarrassingly
// parallel.
func (s *Store) QuerySecondary(attr, value string, qt float64, tailored bool) ([]upi.Result, Stats, error) {
	snap := s.snapshotFor(func(tup *tuple.Tuple) (float64, bool) {
		conf := tup.Confidence(attr, value)
		return conf, conf >= qt
	})
	defer snap.release()
	return s.collect(snap, func(t *upi.Table) ([]upi.Result, upi.QueryStats, error) {
		return t.QuerySecondary(attr, value, qt, tailored)
	})
}

// TopK returns the k highest-confidence matches across all partitions.
func (s *Store) TopK(value string, k int) ([]upi.Result, Stats, error) {
	if k <= 0 {
		return nil, Stats{}, nil
	}
	snap := s.snapshotFor(func(tup *tuple.Tuple) (float64, bool) {
		conf := tup.Confidence(s.attr, value)
		return conf, conf > 0
	})
	defer snap.release()
	results, stats, err := s.collect(snap, func(t *upi.Table) ([]upi.Result, upi.QueryStats, error) {
		return t.TopK(value, k)
	})
	if err != nil {
		return nil, stats, err
	}
	if len(results) > k {
		results = results[:k]
	}
	return results, stats, nil
}

func appendLive(dst []upi.Result, src []upi.Result, deleted map[uint64]bool) []upi.Result {
	for _, r := range src {
		if !deleted[r.Tuple.ID] {
			dst = append(dst, r)
		}
	}
	return dst
}

func addStats(a, b upi.QueryStats) upi.QueryStats {
	a.HeapEntries += b.HeapEntries
	a.CutoffPointers += b.CutoffPointers
	a.SecondaryEntries += b.SecondaryEntries
	a.ReusedPointers += b.ReusedPointers
	return a
}

func sortResults(rs []upi.Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Confidence != rs[j].Confidence {
			return rs[i].Confidence > rs[j].Confidence
		}
		return rs[i].Tuple.ID < rs[j].Tuple.ID
	})
}

// collectLiveTuples returns every live tuple across the given
// partitions (index 0 = main, then fractures oldest first),
// deduplicated by ID. The per-partition delete filters are the
// snapshot-time deletesAfter sets. Used by the rebuild path of Merge,
// which always runs after a flush, so there is no RAM buffer to fold
// in.
func collectLiveTuples(parts []*upi.Table, deletes []map[uint64]bool) ([]*tuple.Tuple, error) {
	byID := make(map[uint64]*tuple.Tuple)
	for i, t := range parts {
		deleted := deletes[i]
		err := t.ScanHeap(func(value string, conf float64, id uint64, enc []byte) bool {
			if deleted[id] {
				return true
			}
			if _, seen := byID[id]; seen {
				return true // other alternatives of an already-collected tuple
			}
			tup, err := tuple.Decode(enc)
			if err != nil {
				return false
			}
			byID[id] = tup
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	ids := make([]uint64, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*tuple.Tuple, len(ids))
	for i, id := range ids {
		out[i] = byID[id]
	}
	return out, nil
}
