package fracture

import (
	"sort"

	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// Stats aggregates per-partition query statistics.
type Stats struct {
	upi.QueryStats
	// PartitionsRead is 1 (main) + the number of fractures consulted.
	PartitionsRead int
	// BufferHits counts results served from the RAM insert buffer.
	BufferHits int
}

// Query answers a PTQ over the fractured UPI: the union of the main
// UPI, every fracture and the insert buffer, minus deleted tuples
// (Section 4.2). Each on-disk partition is charged a table-open cost,
// which is the Nfrac × Costinit term of the Section 6 cost model.
func (s *Store) Query(value string, qt float64) ([]upi.Result, Stats, error) {
	var stats Stats
	disk := s.fs.Disk()

	var results []upi.Result
	// Main UPI: delete sets of all fractures apply.
	disk.Open(s.main.Name())
	stats.PartitionsRead++
	rs, qs, err := s.main.Query(value, qt)
	if err != nil {
		return nil, stats, err
	}
	stats.QueryStats = addStats(stats.QueryStats, qs)
	results = appendLive(results, rs, s.deletesAfter(-1))

	for i, f := range s.fractures {
		disk.Open(f.table.Name())
		stats.PartitionsRead++
		rs, qs, err := f.table.Query(value, qt)
		if err != nil {
			return nil, stats, err
		}
		stats.QueryStats = addStats(stats.QueryStats, qs)
		results = appendLive(results, rs, s.deletesAfter(i))
	}

	// Insert buffer: pure RAM, no I/O charge.
	for _, id := range s.bufOrder {
		tup := s.bufTuples[id]
		if conf := tup.Confidence(s.attr, value); conf >= qt {
			results = append(results, upi.Result{Tuple: tup, Confidence: conf})
			stats.BufferHits++
		}
	}
	sortResults(results)
	return results, stats, nil
}

// QuerySecondary answers a PTQ on a secondary attribute across all
// partitions. Each fracture's secondary index points into that
// fracture's own heap (Section 4.2), so tailored access runs
// per-partition.
func (s *Store) QuerySecondary(attr, value string, qt float64, tailored bool) ([]upi.Result, Stats, error) {
	var stats Stats
	disk := s.fs.Disk()

	var results []upi.Result
	disk.Open(s.main.Name())
	stats.PartitionsRead++
	rs, qs, err := s.main.QuerySecondary(attr, value, qt, tailored)
	if err != nil {
		return nil, stats, err
	}
	stats.QueryStats = addStats(stats.QueryStats, qs)
	results = appendLive(results, rs, s.deletesAfter(-1))

	for i, f := range s.fractures {
		disk.Open(f.table.Name())
		stats.PartitionsRead++
		rs, qs, err := f.table.QuerySecondary(attr, value, qt, tailored)
		if err != nil {
			return nil, stats, err
		}
		stats.QueryStats = addStats(stats.QueryStats, qs)
		results = appendLive(results, rs, s.deletesAfter(i))
	}

	for _, id := range s.bufOrder {
		tup := s.bufTuples[id]
		if conf := tup.Confidence(attr, value); conf >= qt {
			results = append(results, upi.Result{Tuple: tup, Confidence: conf})
			stats.BufferHits++
		}
	}
	sortResults(results)
	return results, stats, nil
}

// TopK returns the k highest-confidence matches across all partitions.
func (s *Store) TopK(value string, k int) ([]upi.Result, Stats, error) {
	var stats Stats
	if k <= 0 {
		return nil, stats, nil
	}
	disk := s.fs.Disk()
	var results []upi.Result

	disk.Open(s.main.Name())
	stats.PartitionsRead++
	rs, qs, err := s.main.TopK(value, k)
	if err != nil {
		return nil, stats, err
	}
	stats.QueryStats = addStats(stats.QueryStats, qs)
	results = appendLive(results, rs, s.deletesAfter(-1))

	for i, f := range s.fractures {
		disk.Open(f.table.Name())
		stats.PartitionsRead++
		rs, qs, err := f.table.TopK(value, k)
		if err != nil {
			return nil, stats, err
		}
		stats.QueryStats = addStats(stats.QueryStats, qs)
		results = appendLive(results, rs, s.deletesAfter(i))
	}
	for _, id := range s.bufOrder {
		tup := s.bufTuples[id]
		if conf := tup.Confidence(s.attr, value); conf > 0 {
			results = append(results, upi.Result{Tuple: tup, Confidence: conf})
			stats.BufferHits++
		}
	}
	sortResults(results)
	if len(results) > k {
		results = results[:k]
	}
	return results, stats, nil
}

func appendLive(dst []upi.Result, src []upi.Result, deleted map[uint64]bool) []upi.Result {
	for _, r := range src {
		if !deleted[r.Tuple.ID] {
			dst = append(dst, r)
		}
	}
	return dst
}

func addStats(a, b upi.QueryStats) upi.QueryStats {
	a.HeapEntries += b.HeapEntries
	a.CutoffPointers += b.CutoffPointers
	a.SecondaryEntries += b.SecondaryEntries
	a.ReusedPointers += b.ReusedPointers
	return a
}

func sortResults(rs []upi.Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Confidence != rs[j].Confidence {
			return rs[i].Confidence > rs[j].Confidence
		}
		return rs[i].Tuple.ID < rs[j].Tuple.ID
	})
}

// collectLiveTuples returns every live tuple across all partitions and
// the buffer, deduplicated by ID (newest version wins). Used by Merge.
func (s *Store) collectLiveTuples() ([]*tuple.Tuple, error) {
	byID := make(map[uint64]*tuple.Tuple)
	// Oldest first so newer versions overwrite.
	scan := func(t *upi.Table, deleted map[uint64]bool) error {
		return t.ScanHeap(func(value string, conf float64, id uint64, enc []byte) bool {
			if deleted[id] {
				return true
			}
			if _, seen := byID[id]; seen {
				return true // other alternatives of an already-collected tuple
			}
			tup, err := tuple.Decode(enc)
			if err != nil {
				return false
			}
			byID[id] = tup
			return true
		})
	}
	if err := scan(s.main, s.deletesAfter(-1)); err != nil {
		return nil, err
	}
	for i, f := range s.fractures {
		if err := scan(f.table, s.deletesAfter(i)); err != nil {
			return nil, err
		}
	}
	for _, id := range s.bufOrder {
		byID[id] = s.bufTuples[id]
	}
	ids := make([]uint64, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*tuple.Tuple, len(ids))
	for i, id := range ids {
		out[i] = byID[id]
	}
	return out, nil
}
