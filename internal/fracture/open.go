package fracture

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"upidb/internal/storage"
	"upidb/internal/upi"
)

// Open loads an existing fractured UPI from its files: the newest main
// generation, every fracture in flush order, and their delete sets.
// The RAM insert buffer is empty after opening (it never survives a
// shutdown; unflushed changes are lost by design, like any
// write-buffered store without a WAL).
func Open(fs *storage.FS, name, attr string, secAttrs []string, opts Options) (*Store, error) {
	opts.UPI = opts.UPI.WithDefaults()
	s := newShell(fs, name, attr, secAttrs, opts)

	mainGen, fracGens, err := scanPartitions(fs, name)
	if err != nil {
		return nil, err
	}
	main, err := upi.Open(fs, s.mainName(mainGen), attr, secAttrs, opts.UPI)
	if err != nil {
		return nil, err
	}
	s.main = main
	s.gen = mainGen
	for _, g := range fracGens {
		tab, err := upi.Open(fs, s.fracName(g), attr, secAttrs, opts.UPI)
		if err != nil {
			return nil, err
		}
		deleted, err := s.readDelSet(g)
		if err != nil {
			return nil, err
		}
		s.fractures = append(s.fractures, &fract{table: tab, deleted: deleted, ref: newPartRef(fs)})
		s.fracGens = append(s.fracGens, g)
		if g > s.gen {
			s.gen = g
		}
	}
	return s, nil
}

// scanPartitions finds the newest main generation and the fracture
// generations (sorted ascending = flush order) from the file listing.
func scanPartitions(fs *storage.FS, name string) (mainGen int, fracGens []int, err error) {
	mainGen = -1
	for _, f := range fs.List() {
		rest, ok := strings.CutPrefix(f, name+".")
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(rest, "main") && strings.HasSuffix(rest, ".upi.heap"):
			n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(rest, "main"), ".upi.heap"))
			if err == nil && n > mainGen {
				mainGen = n
			}
		case strings.HasPrefix(rest, "frac") && strings.HasSuffix(rest, ".upi.heap"):
			n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(rest, "frac"), ".upi.heap"))
			if err == nil {
				fracGens = append(fracGens, n)
			}
		}
	}
	if mainGen < 0 {
		return 0, nil, fmt.Errorf("fracture: no main partition found for %q", name)
	}
	sort.Ints(fracGens)
	return mainGen, fracGens, nil
}

// readDelSet loads one delete-set file written by writeDelSet.
func (s *Store) readDelSet(gen int) (map[uint64]bool, error) {
	file := s.delSetFile(gen)
	if !s.fs.Exists(file) {
		return map[uint64]bool{}, nil
	}
	f, err := s.fs.Open(file)
	if err != nil {
		return nil, err
	}
	head := make([]byte, 8)
	if err := f.ReadAt(head, 0); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint64(head)
	if int64(8+8*n) > f.Size() {
		return nil, fmt.Errorf("fracture: corrupt delete set %s: %d entries in %d bytes", file, n, f.Size())
	}
	body := make([]byte, 8*n)
	if err := f.ReadAt(body, 8); err != nil {
		return nil, err
	}
	out := make(map[uint64]bool, n)
	for i := uint64(0); i < n; i++ {
		out[binary.BigEndian.Uint64(body[8*i:])] = true
	}
	return out, nil
}
