package fracture

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// Open loads an existing fractured UPI from its files. A durable store
// (one with a manifest) is opened from its manifest — the authoritative
// partition catalog — with debris of any crashed flush or merge swept
// away, and its write-ahead log replayed to reconstruct the RAM insert
// buffer and pending delete set: every acknowledged write survives.
//
// A store without a manifest is opened the legacy way, by scanning
// file names for the newest main generation and every fracture in
// flush order; its RAM buffer is empty after opening (unflushed
// changes of a non-durable store are lost by design).
//
// Opening a durable store with opts.Durable unset downgrades it: the
// WAL is replayed one last time, then the WAL and manifest are removed
// so they cannot go stale beside future unlogged writes.
func Open(fs *storage.FS, name, attr string, secAttrs []string, opts Config) (*Store, error) {
	opts.UPI = opts.UPI.WithDefaults()
	s := newShell(fs, name, attr, secAttrs, opts)

	mainGen, fracGens, fromManifest, err := readManifest(fs, name)
	if err != nil {
		return nil, err
	}
	if fromManifest {
		// Partition files the manifest does not name are debris of a
		// crashed flush or merge; the WAL (replayed below) holds
		// anything acknowledged that they contained.
		removeOrphans(fs, name, mainGen, fracGens)
	} else {
		if mainGen, fracGens, err = scanPartitions(fs, name); err != nil {
			return nil, err
		}
	}
	main, err := upi.Open(fs, s.mainName(mainGen), attr, secAttrs, opts.UPI)
	if err != nil {
		return nil, err
	}
	s.main = main
	s.mainGen = mainGen
	s.gen = mainGen
	for _, g := range fracGens {
		tab, err := upi.Open(fs, s.fracName(g), attr, secAttrs, opts.UPI)
		if err != nil {
			return nil, err
		}
		deleted, err := s.readDelSet(g)
		if err != nil {
			return nil, err
		}
		s.fractures = append(s.fractures, &fract{table: tab, deleted: deleted, ref: newPartRef(fs)})
		s.fracGens = append(s.fracGens, g)
		if g > s.gen {
			s.gen = g
		}
	}
	if err := s.recoverWAL(fromManifest); err != nil {
		return nil, err
	}
	return s, nil
}

// recoverWAL replays an existing WAL into the freshly opened store and
// arranges the durability mode the caller asked for: durable stores
// keep (or gain) a live WAL and manifest, non-durable ones shed both.
func (s *Store) recoverWAL(hadManifest bool) error {
	if s.fs.Exists(walName(s.name)) {
		w, err := openWAL(s.fs, s.name, s.opts.Metrics, func(recType byte, payload []byte) error {
			switch recType {
			case walRecInsert:
				tup, err := tuple.Decode(payload)
				if err != nil {
					return err
				}
				s.applyInsertLocked(tup)
			case walRecDelete:
				if len(payload) != 8 {
					return fmt.Errorf("delete record has %d payload bytes", len(payload))
				}
				s.applyDeleteLocked(binary.BigEndian.Uint64(payload))
			}
			return nil
		})
		if err != nil {
			return err
		}
		if s.opts.Durable {
			s.wal = w
		}
	} else if s.opts.Durable {
		w, err := createWAL(s.fs, s.name, s.opts.Metrics)
		if err != nil {
			return err
		}
		s.wal = w
	}
	if s.opts.Durable {
		if !hadManifest {
			// Upgrade: give a legacy store its manifest so the next
			// open trusts the catalog, not the file scan.
			return writeManifest(s.fs, s.name, s.mainGen, s.fracGens)
		}
		return nil
	}
	// Downgrade: recovered operations now live only in RAM, matching
	// non-durable semantics; stale durability files must not linger.
	for _, f := range []string{walName(s.name), manifestName(s.name)} {
		if s.fs.Exists(f) {
			if err := s.fs.Remove(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// scanPartitions finds the newest main generation and the fracture
// generations (sorted ascending = flush order) from the file listing.
func scanPartitions(fs *storage.FS, name string) (mainGen int, fracGens []int, err error) {
	mainGen = -1
	for _, f := range fs.List() {
		rest, ok := strings.CutPrefix(f, name+".")
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(rest, "main") && strings.HasSuffix(rest, ".upi.heap"):
			n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(rest, "main"), ".upi.heap"))
			if err == nil && n > mainGen {
				mainGen = n
			}
		case strings.HasPrefix(rest, "frac") && strings.HasSuffix(rest, ".upi.heap"):
			n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(rest, "frac"), ".upi.heap"))
			if err == nil {
				fracGens = append(fracGens, n)
			}
		}
	}
	if mainGen < 0 {
		return 0, nil, fmt.Errorf("fracture: no main partition found for %q", name)
	}
	sort.Ints(fracGens)
	return mainGen, fracGens, nil
}

// readDelSet loads one delete-set file written by writeDelSet.
func (s *Store) readDelSet(gen int) (map[uint64]bool, error) {
	file := s.delSetFile(gen)
	if !s.fs.Exists(file) {
		return map[uint64]bool{}, nil
	}
	f, err := s.fs.Open(file)
	if err != nil {
		return nil, err
	}
	head := make([]byte, 8)
	if err := f.ReadAt(head, 0); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint64(head)
	if int64(8+8*n) > f.Size() {
		return nil, fmt.Errorf("fracture: corrupt delete set %s: %d entries in %d bytes", file, n, f.Size())
	}
	body := make([]byte, 8*n)
	if err := f.ReadAt(body, 8); err != nil {
		return nil, err
	}
	out := make(map[uint64]bool, n)
	for i := uint64(0); i < n; i++ {
		out[binary.BigEndian.Uint64(body[8*i:])] = true
	}
	return out, nil
}
