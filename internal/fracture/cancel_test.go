package fracture

// Cancellation semantics of the fractured store: a done context fails
// fast with zero modeled I/O, and a mid-scan cancellation releases
// every partition pin so a subsequent merge can reclaim the old
// generation's files.

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"upidb/internal/upi"
)

// countdownCtx is a context whose Err starts returning
// context.Canceled after budget calls — a deterministic way to cancel
// "mid-scan" without racing a timer against the query.
type countdownCtx struct {
	context.Context
	budget atomic.Int64
}

func newCountdownCtx(budget int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.budget.Store(budget)
	return c
}

func (c *countdownCtx) Err() error {
	if c.budget.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestRunCanceledBeforeStart(t *testing.T) {
	s, _ := buildConcStore(t, 4, 30)
	disk := s.fs.Disk()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := disk.Stats()
	_, st, err := s.Run(ctx, Req{Kind: KindPTQ, Value: concValue(3), QT: 0.1})
	if !errors.Is(err, upi.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	if st.PartitionsRead != 0 {
		t.Fatalf("cancelled-before-start query read %d partitions", st.PartitionsRead)
	}
	if d := disk.Stats().Sub(before); d != (before.Sub(before)) {
		t.Fatalf("cancelled query touched the disk: %v", d)
	}
}

// TestMidScanCancelReleasesPins: a query cancelled between partitions
// returns ErrCanceled, charges at most the partitions it completed,
// and releases every pin — after a merge, no old-generation file
// survives (a leaked partRef would keep its doomed files on disk).
func TestMidScanCancelReleasesPins(t *testing.T) {
	s, _ := buildConcStore(t, 5, 40)
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	disk := s.fs.Disk()
	full := disk.Stats()
	if _, _, err := s.Run(context.Background(), Req{Kind: KindPTQ, Value: concValue(3), QT: 0.05}); err != nil {
		t.Fatal(err)
	}
	fullCost := disk.Stats().Sub(full).Elapsed
	if fullCost <= 0 {
		t.Fatal("baseline query charged nothing")
	}

	// Budget enough checks to pass the entry gates and partition 0,
	// then cancel. Serial scan makes the cut deterministic.
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	ctx := newCountdownCtx(3)
	before := disk.Stats()
	_, _, err := s.Run(ctx, Req{Kind: KindPTQ, Value: concValue(3), QT: 0.05, Parallelism: 1})
	if !errors.Is(err, upi.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	partial := disk.Stats().Sub(before).Elapsed
	if partial >= fullCost {
		t.Fatalf("cancelled query charged full cost: %v >= %v", partial, fullCost)
	}

	// Every pin must be back: merge and verify the old generation's
	// files are gone the moment the merge finishes.
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	for _, name := range s.fs.List() {
		if strings.Contains(name, ".frac") {
			t.Fatalf("leaked partition pin kept %s alive after merge", name)
		}
	}
	// And the store still answers.
	rs, _, err := s.Run(context.Background(), Req{Kind: KindPTQ, Value: concValue(3), QT: 0.05})
	if err != nil || len(rs) == 0 {
		t.Fatalf("store broken after cancelled query + merge: %v (%d rows)", err, len(rs))
	}
}

// TestCancelDuringParallelScan: cancellation with a wide worker pool
// also errors out cleanly and releases pins.
func TestCancelDuringParallelScan(t *testing.T) {
	s, _ := buildConcStore(t, 6, 40)
	ctx := newCountdownCtx(4)
	start := time.Now()
	_, _, err := s.Run(ctx, Req{Kind: KindSecondary, Attr: "Y", Value: "y" + concValue(2), QT: 0.05, Tailored: true, Parallelism: 8})
	if !errors.Is(err, upi.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("cancelled parallel query hung for %v", wall)
	}
	if err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	for _, name := range s.fs.List() {
		if strings.Contains(name, ".frac") {
			t.Fatalf("leaked pin after parallel cancel: %s", name)
		}
	}
}

// TestCloseStopsStore: Close rejects every subsequent operation with
// ErrClosed and is idempotent.
func TestCloseStopsStore(t *testing.T) {
	s, _ := buildConcStore(t, 2, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query(context.Background(), concValue(1), 0.1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close: %v", err)
	}
	if err := s.Insert(concTuple(99999, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close: %v", err)
	}
	if err := s.Delete(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close: %v", err)
	}
	if err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v", err)
	}
	if err := s.Merge(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Merge after Close: %v", err)
	}
	if err := s.StartAutoMerge(AutoMergeOptions{MaxFractures: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("StartAutoMerge after Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
