package bench

import (
	"context"
	"fmt"
	"time"

	"upidb/internal/fracture"
	"upidb/internal/prob"
	"upidb/internal/sim"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// streamingTopK is the k of the streaming experiment's top-k query.
const streamingTopK = 10

// streamingFractures is the partition fan-out of the streaming
// experiment (plus the bulk-loaded main).
const streamingFractures = 8

// streamingCutoff is the cutoff threshold C of the experiment's table.
const streamingCutoff = 0.15

// buildStreamingStore builds the skew the streaming experiment
// measures: a main partition full of high-confidence matches for one
// hot value, and fractures whose matches are mostly *below* the cutoff
// — so a materialized top-k must chase every fracture's cutoff
// pointers (one modeled seek each) while the merged stream terminates
// inside the main partition's heap prefix.
func buildStreamingStore(e *Env) (*fracture.Store, *sim.Disk, error) {
	scale := e.cfg.Scale
	nMain := int(8000 * scale)
	if nMain < 400 {
		nMain = 400
	}
	nCut := int(2000 * scale)
	if nCut < 400 {
		nCut = 400
	}

	hot := func(id uint64, conf float64) (*tuple.Tuple, error) {
		x, err := prob.NewDiscrete([]prob.Alternative{{Value: "hot", Prob: conf}})
		if err != nil {
			return nil, err
		}
		return &tuple.Tuple{ID: id, Existence: 1, Unc: []tuple.UncField{{Name: "X", Dist: x}}}, nil
	}
	coldPayload := make([]byte, 256)
	coldHot := func(id uint64, j int) (*tuple.Tuple, error) {
		// "hot" at confidence 0.1 — below the cutoff, so the entry
		// lives in the fracture's cutoff index and costs a pointer
		// chase to retrieve. Distinct primary values and a realistic
		// row width spread the chase targets across heap pages.
		x, err := prob.NewDiscrete([]prob.Alternative{
			{Value: fmt.Sprintf("c%04d", j), Prob: 0.8}, {Value: "hot", Prob: 0.1},
		})
		if err != nil {
			return nil, err
		}
		return &tuple.Tuple{ID: id, Existence: 1,
			Unc:     []tuple.UncField{{Name: "X", Dist: x}},
			Payload: coldPayload,
		}, nil
	}

	disk, fs := newDisk()
	id := uint64(1)
	base := make([]*tuple.Tuple, 0, nMain)
	for i := 0; i < nMain; i++ {
		t, err := hot(id, 0.5+0.499*float64(i)/float64(nMain))
		if err != nil {
			return nil, nil, err
		}
		base = append(base, t)
		id++
	}
	store, err := fracture.BulkLoad(fs, "stream", "X", nil,
		fracture.Config{UPI: upi.Options{Cutoff: streamingCutoff}, Parallelism: e.cfg.Parallelism}, base)
	if err != nil {
		return nil, nil, err
	}
	// Each fracture holds fewer than k heap matches, so a per-partition
	// top-k cannot stop at its heap prefix: the materialized path must
	// chase the fracture's whole cutoff list.
	hotPerFracture := streamingTopK / 2
	for f := 0; f < streamingFractures; f++ {
		for j := 0; j < hotPerFracture; j++ {
			t, err := hot(id, 0.2+0.01*float64(f*hotPerFracture+j)/float64(streamingFractures))
			if err != nil {
				return nil, nil, err
			}
			if err := store.Insert(t); err != nil {
				return nil, nil, err
			}
			id++
		}
		for j := 0; j < nCut; j++ {
			t, err := coldHot(id, j)
			if err != nil {
				return nil, nil, err
			}
			if err := store.Insert(t); err != nil {
				return nil, nil, err
			}
			id++
		}
		if err := store.Flush(); err != nil {
			return nil, nil, err
		}
	}
	return store, disk, nil
}

// StreamingLatency measures what true incremental streaming buys over
// the materialized execution, in modeled disk time (deterministic per
// scale/seed):
//
//   - first result: the modeled I/O consumed before the first result
//     is available. The materialized path pays its full cost before
//     anything yields; the merged stream needs one head per partition.
//   - top-k drain: the stream stops scanning — and stops charging — at
//     the k-th result (cross-partition early termination), skipping
//     every fracture's cutoff chase; the materialized path runs every
//     partition's own top-k to completion first.
//   - PTQ full drain: a control row — draining the whole stream
//     charges exactly the materialized cost, so streaming is free when
//     everything is consumed.
func StreamingLatency(ctx context.Context, e *Env) (*Experiment, error) {
	store, disk, err := buildStreamingStore(e)
	if err != nil {
		return nil, err
	}

	cold := func(run func() error) (time.Duration, error) {
		return coldRun(disk, store.DropCaches, run)
	}
	streamCost := func(req fracture.Req, pulls int) (time.Duration, error) {
		// pulls < 0 drains the stream; otherwise it stops (and closes)
		// after that many results.
		return cold(func() error {
			prep, err := store.Prepare(ctx, req)
			if err != nil {
				return err
			}
			st := prep.Stream(ctx)
			defer st.Close()
			for n := 0; pulls < 0 || n < pulls; n++ {
				_, ok, err := st.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
			}
			return nil
		})
	}
	materializedCost := func(req fracture.Req) (time.Duration, error) {
		return cold(func() error {
			_, _, err := store.Run(ctx, req)
			return err
		})
	}

	// qt below the cutoff: the full drain must merge the cutoff
	// entries in, but the stream defers every partition's chase until
	// the consumer actually pulls below the cutoff boundary.
	const ptqQT = 0.05
	ptq := fracture.Req{Kind: fracture.KindPTQ, Value: "hot", QT: ptqQT, Parallelism: 1}
	topk := fracture.Req{Kind: fracture.KindTopK, Value: "hot", K: streamingTopK, Parallelism: 1}

	exp := &Experiment{
		ID:      "streaming-latency",
		Title:   fmt.Sprintf("Incremental streaming vs materialized execution (%d partitions)", store.NumFractures()+1),
		XLabel:  "measurement",
		Columns: []string{"Streaming [s]", "Materialized [s]", "Saved %"},
		Notes:   "modeled cold-cache disk time; 'first result' is the I/O consumed before the first row is available",
	}
	row := func(label string, stream, mat time.Duration) {
		saved := 0.0
		if mat > 0 {
			saved = 100 * (1 - float64(stream)/float64(mat))
		}
		exp.Rows = append(exp.Rows, Row{
			Label:  label,
			Values: []float64{seconds(stream), seconds(mat), saved},
		})
	}

	matTopK, err := materializedCost(topk)
	if err != nil {
		return nil, err
	}
	firstTopK, err := streamCost(topk, 1)
	if err != nil {
		return nil, err
	}
	row(fmt.Sprintf("top-%d first result", streamingTopK), firstTopK, matTopK)
	fullTopK, err := streamCost(topk, -1)
	if err != nil {
		return nil, err
	}
	row(fmt.Sprintf("top-%d early-terminated drain", streamingTopK), fullTopK, matTopK)
	if fullTopK >= matTopK {
		return nil, fmt.Errorf("bench: streamed top-k charged %v, materialized %v — early termination saved nothing", fullTopK, matTopK)
	}

	matPTQ, err := materializedCost(ptq)
	if err != nil {
		return nil, err
	}
	firstPTQ, err := streamCost(ptq, 1)
	if err != nil {
		return nil, err
	}
	row(fmt.Sprintf("Q1 qt=%.2f first result", ptqQT), firstPTQ, matPTQ)
	fullPTQ, err := streamCost(ptq, -1)
	if err != nil {
		return nil, err
	}
	row(fmt.Sprintf("Q1 qt=%.2f full drain", ptqQT), fullPTQ, matPTQ)
	if fullPTQ != matPTQ {
		return nil, fmt.Errorf("bench: streamed PTQ drain charged %v, materialized %v — parity broken", fullPTQ, matPTQ)
	}
	return exp, nil
}
