package bench

import (
	"context"
	"fmt"
	"time"

	"upidb/internal/costmodel"
	"upidb/internal/dataset"
	"upidb/internal/histogram"
	"upidb/internal/pii"
	"upidb/internal/sim"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// defaultCutoff is the cutoff threshold the headline experiments use
// (the paper runs Figures 4-6 with C = 10%).
const defaultCutoff = 0.10

func newDisk() (*sim.Disk, *storage.FS) {
	d := sim.NewDisk(sim.DefaultParams())
	return d, storage.NewFS(d)
}

func buildAuthorUPI(tuples []*tuple.Tuple, cutoff float64) (*upi.Table, *sim.Disk, error) {
	disk, fs := newDisk()
	tab, err := upi.BulkBuild(fs, "author", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, upi.Options{Cutoff: cutoff}, tuples)
	return tab, disk, err
}

func buildAuthorPII(tuples []*tuple.Tuple) (*pii.Table, *sim.Disk, error) {
	disk, fs := newDisk()
	tab, err := pii.BulkBuild(fs, "author",
		[]string{dataset.AttrInstitution, dataset.AttrCountry}, pii.Options{}, tuples)
	return tab, disk, err
}

// pickSelectiveValue returns an institution matched by roughly
// 1/500th of the tuples MIT matches — the "selective query" of
// Figure 3 (300 vs 37,000 authors in the paper).
func pickSelectiveValue(tuples []*tuple.Tuple) string {
	counts := make(map[string]int)
	mit := 0
	for _, t := range tuples {
		dist, _ := t.Uncertain(dataset.AttrInstitution)
		for _, a := range dist {
			counts[a.Value]++
			if a.Value == dataset.MITInstitution {
				mit++
			}
		}
	}
	target := mit / 100
	if target < 3 {
		target = 3
	}
	best, bestDiff := "", 1<<31
	for v, n := range counts {
		if v == dataset.MITInstitution {
			continue
		}
		diff := n - target
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = v, diff
		}
	}
	return best
}

// cutoffSweepQTs are the query thresholds of Figures 3 and 12.
var cutoffSweepQTs = []float64{0.05, 0.15, 0.25}

// cutoffSweepCs are the cutoff thresholds of Figures 3 and 12.
var cutoffSweepCs = []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}

// Fig3CutoffRuntime regenerates Figure 3: real query runtime against
// the cutoff threshold C for several query thresholds QT, for a
// non-selective query (Institution = MIT) and a selective one.
func Fig3CutoffRuntime(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	selective := pickSelectiveValue(d.Authors)
	exp := &Experiment{
		ID:     "fig3",
		Title:  "Cutoff Index Real Runtime (Query 1), non-selective and selective",
		XLabel: "C",
		Notes:  fmt.Sprintf("runtimes in modeled seconds; selective value = %s", selective),
	}
	for _, qt := range cutoffSweepQTs {
		exp.Columns = append(exp.Columns, fmt.Sprintf("nonsel QT=%.2f", qt))
	}
	for _, qt := range cutoffSweepQTs {
		exp.Columns = append(exp.Columns, fmt.Sprintf("sel QT=%.2f", qt))
	}
	for _, c := range cutoffSweepCs {
		tab, disk, err := buildAuthorUPI(d.Authors, c)
		if err != nil {
			return nil, err
		}
		row := Row{X: c}
		for _, value := range []string{dataset.MITInstitution, selective} {
			for _, qt := range cutoffSweepQTs {
				dur, err := coldRun(disk, tab.DropCaches, func() error {
					_, _, qerr := tab.Query(ctx, value, qt)
					return qerr
				})
				if err != nil {
					return nil, err
				}
				row.Values = append(row.Values, seconds(dur))
			}
		}
		exp.Rows = append(exp.Rows, row)
	}
	return exp, nil
}

// Fig4Query1 regenerates Figure 4: Query 1 (Author, Institution=MIT)
// runtime against QT, PII versus UPI (C = 10%).
func Fig4Query1(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	upiTab, upiDisk, err := buildAuthorUPI(d.Authors, defaultCutoff)
	if err != nil {
		return nil, err
	}
	piiTab, piiDisk, err := buildAuthorPII(d.Authors)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig4",
		Title:   "Query 1 Runtime (Author WHERE Institution=MIT)",
		XLabel:  "QT",
		Columns: []string{"PII", "UPI"},
		Notes:   "modeled seconds; UPI cutoff C=0.10",
	}
	for qt := 0.1; qt <= 0.91; qt += 0.1 {
		qt := qt
		piiDur, err := coldRun(piiDisk, piiTab.DropCaches, func() error {
			_, qerr := piiTab.Query(ctx, dataset.AttrInstitution, dataset.MITInstitution, qt)
			return qerr
		})
		if err != nil {
			return nil, err
		}
		upiDur, err := coldRun(upiDisk, upiTab.DropCaches, func() error {
			_, _, qerr := upiTab.Query(ctx, dataset.MITInstitution, qt)
			return qerr
		})
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{X: qt, Values: []float64{seconds(piiDur), seconds(upiDur)}})
	}
	return exp, nil
}

// groupCountJournal evaluates the GROUP BY Journal COUNT(*) of
// Queries 2 and 3 over a result set (pure CPU; the measured cost is
// the retrieval).
func groupCountJournal(results []upi.Result) map[string]int {
	counts := make(map[string]int)
	for _, r := range results {
		if j, ok := r.Tuple.DetValue(dataset.DetJournal); ok {
			counts[j]++
		}
	}
	return counts
}

// Fig5Query2 regenerates Figure 5: Query 2 (Publication aggregate on
// Institution=MIT GROUP BY Journal) runtime against QT, PII vs UPI.
func Fig5Query2(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	upiDisk, upiFS := newDisk()
	upiTab, err := upi.BulkBuild(upiFS, "pub", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, upi.Options{Cutoff: defaultCutoff}, d.Publications)
	if err != nil {
		return nil, err
	}
	piiDisk, piiFS := newDisk()
	piiTab, err := pii.BulkBuild(piiFS, "pub",
		[]string{dataset.AttrInstitution, dataset.AttrCountry}, pii.Options{}, d.Publications)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig5",
		Title:   "Query 2 Runtime (Publication aggregate on Institution=MIT)",
		XLabel:  "QT",
		Columns: []string{"PII", "UPI"},
		Notes:   "modeled seconds; GROUP BY Journal computed over retrieved tuples",
	}
	for qt := 0.1; qt <= 0.91; qt += 0.1 {
		qt := qt
		piiDur, err := coldRun(piiDisk, piiTab.DropCaches, func() error {
			rs, qerr := piiTab.Query(ctx, dataset.AttrInstitution, dataset.MITInstitution, qt)
			groupCountJournal(rs)
			return qerr
		})
		if err != nil {
			return nil, err
		}
		upiDur, err := coldRun(upiDisk, upiTab.DropCaches, func() error {
			rs, _, qerr := upiTab.Query(ctx, dataset.MITInstitution, qt)
			groupCountJournal(rs)
			return qerr
		})
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{X: qt, Values: []float64{seconds(piiDur), seconds(upiDur)}})
	}
	return exp, nil
}

// Fig6Query3 regenerates Figure 6: Query 3 (Publication aggregate on
// Country=Japan via a secondary index) against QT, comparing PII on an
// unclustered heap, the UPI secondary index without tailored access,
// and with tailored access.
func Fig6Query3(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	upiDisk, upiFS := newDisk()
	upiTab, err := upi.BulkBuild(upiFS, "pub", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, upi.Options{Cutoff: defaultCutoff}, d.Publications)
	if err != nil {
		return nil, err
	}
	piiDisk, piiFS := newDisk()
	piiTab, err := pii.BulkBuild(piiFS, "pub",
		[]string{dataset.AttrCountry}, pii.Options{}, d.Publications)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig6",
		Title:   "Query 3 Runtime (Publication aggregate on Country=Japan, secondary index)",
		XLabel:  "QT",
		Columns: []string{"PII on unclustered heap", "PII on UPI", "PII on UPI w/ Tailored Access"},
		Notes:   "modeled seconds",
	}
	for qt := 0.1; qt <= 0.91; qt += 0.1 {
		qt := qt
		piiDur, err := coldRun(piiDisk, piiTab.DropCaches, func() error {
			rs, qerr := piiTab.Query(ctx, dataset.AttrCountry, dataset.JapanCountry, qt)
			groupCountJournal(rs)
			return qerr
		})
		if err != nil {
			return nil, err
		}
		plainDur, err := coldRun(upiDisk, upiTab.DropCaches, func() error {
			rs, _, qerr := upiTab.QuerySecondary(ctx, dataset.AttrCountry, dataset.JapanCountry, qt, false)
			groupCountJournal(rs)
			return qerr
		})
		if err != nil {
			return nil, err
		}
		tailoredDur, err := coldRun(upiDisk, upiTab.DropCaches, func() error {
			rs, _, qerr := upiTab.QuerySecondary(ctx, dataset.AttrCountry, dataset.JapanCountry, qt, true)
			groupCountJournal(rs)
			return qerr
		})
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{X: qt, Values: []float64{
			seconds(piiDur), seconds(plainDur), seconds(tailoredDur),
		}})
	}
	return exp, nil
}

// Fig11PointerEstimate regenerates Figure 11: the number of cutoff
// pointers a Query 1 retrieves, real versus estimated from the
// histograms, across (QT, C) combinations with QT < C.
func Fig11PointerEstimate(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	hist, err := histogram.Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig11",
		Title:   "#Cutoff-Pointers, Real vs Estimated (Query 1, Institution=MIT)",
		XLabel:  "combo",
		Columns: []string{"Real", "Estimated"},
	}
	for _, c := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		tab, _, err := buildAuthorUPI(d.Authors, c)
		if err != nil {
			return nil, err
		}
		for _, qt := range cutoffSweepQTs {
			if qt >= c {
				continue
			}
			_, stats, err := tab.Query(ctx, dataset.MITInstitution, qt)
			if err != nil {
				return nil, err
			}
			est := hist.EstimateCutoffPointers(dataset.MITInstitution, qt, c)
			exp.Rows = append(exp.Rows, Row{
				Label:  fmt.Sprintf("C=%.2f QT=%.2f", c, qt),
				Values: []float64{float64(stats.CutoffPointers), est},
			})
		}
	}
	return exp, nil
}

// Fig12CutoffModel regenerates Figure 12: the cost model's estimated
// runtimes on the exact axes of Figure 3.
func Fig12CutoffModel(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	hist, err := histogram.Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		return nil, err
	}
	selective := pickSelectiveValue(d.Authors)
	exp := &Experiment{
		ID:     "fig12",
		Title:  "Cutoff Index Cost Model (estimated runtimes, same axes as fig3)",
		XLabel: "C",
		Notes:  fmt.Sprintf("modeled seconds from Section 6.3 cost model; selective value = %s", selective),
	}
	for _, qt := range cutoffSweepQTs {
		exp.Columns = append(exp.Columns, fmt.Sprintf("nonsel QT=%.2f", qt))
	}
	for _, qt := range cutoffSweepQTs {
		exp.Columns = append(exp.Columns, fmt.Sprintf("sel QT=%.2f", qt))
	}
	// One representative build to take H from; table size and leaves
	// per C come from the histogram estimates.
	refTab, _, err := buildAuthorUPI(d.Authors, defaultCutoff)
	if err != nil {
		return nil, err
	}
	for _, c := range cutoffSweepCs {
		row := Row{X: c}
		tableBytes := hist.EstimateTableBytes(c)
		params := costmodel.Params{
			Disk:       sim.DefaultParams(),
			Height:     refTab.Heap().Height(),
			TableBytes: int64(tableBytes),
			Leaves:     int64(tableBytes / float64(storage.DefaultPageSize) / 0.9),
		}
		for _, value := range []string{dataset.MITInstitution, selective} {
			for _, qt := range cutoffSweepQTs {
				// The heap scan covers entries above max(qt, C).
				scanQT := qt
				if c > scanQT {
					scanQT = c
				}
				sel := hist.EstimateEntries(value, scanQT) / hist.EstimateHeapEntriesTotal(c)
				var est time.Duration
				if qt < c {
					ptrs := hist.EstimateCutoffPointers(value, qt, c)
					est = params.CostCutoff(sel, ptrs)
				} else {
					est = params.CostSingle(sel)
				}
				row.Values = append(row.Values, seconds(est))
			}
		}
		exp.Rows = append(exp.Rows, row)
	}
	return exp, nil
}
