package bench

import (
	"context"
	"fmt"

	upidb "upidb"
	"upidb/internal/dataset"
)

// routingBatches is how many insert/delete batches (one fracture each)
// the routing experiment applies before measuring, so the planner and
// the heuristic both face a realistically fractured table.
const routingBatches = 6

// PlannerRouting compares the self-maintained planner routing (the
// Table.Run default: a fresh statistics catalog picks the cheapest
// costed plan) against the fixed heuristic routing (WithHeuristic:
// primary → clustered UPI scan, secondary → tailored secondary
// access) on the paper's query mix over a fractured authors table.
// Modeled cold-cache runtimes, deterministic per scale/seed; this is
// the perf-trajectory baseline for planner-by-default.
func PlannerRouting(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	db, err := upidb.Create("")
	if err != nil {
		return nil, err
	}
	tab, err := db.BulkLoadTable("authors", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, d.Authors,
		upidb.WithCutoff(fig9QT), upidb.WithParallelism(e.cfg.Parallelism))
	if err != nil {
		return nil, err
	}
	w := newBatchWorkload(e.cfg.Seed+600, d.Authors)
	for b := 0; b < routingBatches; b++ {
		deletes, inserts := w.next()
		for _, t := range deletes {
			if err := tab.Delete(t.ID); err != nil {
				return nil, err
			}
		}
		for _, t := range inserts {
			if err := tab.Insert(t); err != nil {
				return nil, err
			}
		}
		if err := tab.Flush(); err != nil {
			return nil, err
		}
	}

	exp := &Experiment{
		ID:      "planner-routing",
		Title:   fmt.Sprintf("Planner-by-default vs heuristic routing (%d fractures)", tab.NumFractures()),
		XLabel:  "query",
		Columns: []string{"Planner [s]", "Heuristic [s]", "Results"},
		Notes: fmt.Sprintf("default Run plans from the self-maintained catalog (staleness %.1f%%); WithHeuristic pins the fixed pre-catalog routing",
			tab.StatsInfo().Staleness*100),
	}
	queries := []struct {
		label string
		q     upidb.Query
	}{
		{"Q1 Inst=MIT qt=0.3", upidb.PTQ("", dataset.MITInstitution, 0.3)},
		{fmt.Sprintf("Q1 Inst=MIT qt=%.2f", fig9QT/2), upidb.PTQ("", dataset.MITInstitution, fig9QT/2)},
		{"Q3 Country=Japan qt=0.3", upidb.PTQ(dataset.AttrCountry, dataset.JapanCountry, 0.3)},
	}
	for _, qc := range queries {
		if err := tab.DropCaches(); err != nil {
			return nil, err
		}
		planned, err := tab.Run(ctx, qc.q.WithStats())
		if err != nil {
			return nil, err
		}
		if src := planned.Info().PlanSource; src != upidb.PlanSourceStats {
			return nil, fmt.Errorf("bench: %s not planner-routed (source %q)", qc.label, src)
		}
		if err := tab.DropCaches(); err != nil {
			return nil, err
		}
		heur, err := tab.Run(ctx, qc.q.WithStats().WithHeuristic())
		if err != nil {
			return nil, err
		}
		if planned.Len() != heur.Len() {
			return nil, fmt.Errorf("bench: %s: planner %d results vs heuristic %d",
				qc.label, planned.Len(), heur.Len())
		}
		exp.Rows = append(exp.Rows, Row{
			Label: fmt.Sprintf("%s [%s]", qc.label, planned.Info().Plan),
			Values: []float64{
				seconds(planned.Info().ModeledTime),
				seconds(heur.Info().ModeledTime),
				float64(planned.Len()),
			},
		})
	}
	return exp, nil
}
