// Package bench regenerates every table and figure of the paper's
// evaluation (Section 7). Each experiment builds its tables on a
// private simulated disk, runs the paper's queries cold-cache, and
// reports modeled runtimes — deterministic, hardware-independent
// reproductions of the published series (see the repository README.md
// for the experiment index).
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"upidb/internal/dataset"
	"upidb/internal/sim"
)

// Config scales the experiments.
type Config struct {
	// Scale multiplies the default dataset sizes (1.0 ≈ 70k authors,
	// 130k publications, 150k observations — a 10× reduction of the
	// paper's datasets).
	Scale float64
	// Seed drives all dataset generation.
	Seed int64
	// Parallelism is the per-query partition fan-out the fractured-UPI
	// experiments run with (0 = GOMAXPROCS, 1 = serial). Modeled
	// runtimes are identical at every setting, so reported numbers do
	// not depend on it — only wall-clock regeneration time does.
	Parallelism int
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 1} }

// Env lazily generates and caches the datasets shared by experiments.
type Env struct {
	cfg    Config
	dblp   *dataset.DBLP
	cartel *dataset.Cartel
}

// NewEnv creates an experiment environment.
func NewEnv(cfg Config) *Env {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	return &Env{cfg: cfg}
}

// Config returns the environment's configuration.
func (e *Env) Config() Config { return e.cfg }

// DBLP returns the (cached) uncertain-DBLP-like dataset.
func (e *Env) DBLP() (*dataset.DBLP, error) {
	if e.dblp == nil {
		cfg := dataset.DefaultDBLPConfig().Scaled(e.cfg.Scale)
		cfg.Seed = e.cfg.Seed
		d, err := dataset.GenerateDBLP(cfg)
		if err != nil {
			return nil, err
		}
		e.dblp = d
	}
	return e.dblp, nil
}

// Cartel returns the (cached) Cartel-like dataset.
func (e *Env) Cartel() (*dataset.Cartel, error) {
	if e.cartel == nil {
		cfg := dataset.DefaultCartelConfig().Scaled(e.cfg.Scale)
		cfg.Seed = e.cfg.Seed + 1
		c, err := dataset.GenerateCartel(cfg)
		if err != nil {
			return nil, err
		}
		e.cartel = c
	}
	return e.cartel, nil
}

// Row is one data point of an experiment: an x value (or a label for
// table-style experiments) and one value per column.
type Row struct {
	X      float64
	Label  string
	Values []float64
}

// Experiment is one regenerated table or figure.
type Experiment struct {
	ID      string // "fig4", "table7", ...
	Title   string
	XLabel  string
	Columns []string
	Rows    []Row
	Notes   string
}

// String renders the experiment as an aligned text table. Values are
// printed as given (the harness reports seconds for runtimes).
func (e *Experiment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
	if e.Notes != "" {
		fmt.Fprintf(&b, "   %s\n", e.Notes)
	}
	header := make([]string, 0, len(e.Columns)+1)
	header = append(header, e.XLabel)
	header = append(header, e.Columns...)
	rows := make([][]string, 0, len(e.Rows)+1)
	rows = append(rows, header)
	for _, r := range e.Rows {
		cells := make([]string, 0, len(r.Values)+1)
		if r.Label != "" {
			cells = append(cells, r.Label)
		} else {
			cells = append(cells, trimFloat(r.X))
		}
		for _, v := range r.Values {
			cells = append(cells, trimFloat(v))
		}
		rows = append(rows, cells)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Column returns the series of one column, in row order.
func (e *Experiment) Column(name string) ([]float64, error) {
	idx := -1
	for i, c := range e.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("bench: no column %q in %s", name, e.ID)
	}
	out := make([]float64, len(e.Rows))
	for i, r := range e.Rows {
		if idx >= len(r.Values) {
			return nil, fmt.Errorf("bench: row %d of %s lacks column %d", i, e.ID, idx)
		}
		out[i] = r.Values[idx]
	}
	return out, nil
}

// seconds converts a modeled duration to float seconds for reporting.
func seconds(d time.Duration) float64 { return d.Seconds() }

// coldRun drops the given caches, then measures the modeled disk time
// of run.
func coldRun(disk *sim.Disk, drop func() error, run func() error) (time.Duration, error) {
	if err := drop(); err != nil {
		return 0, err
	}
	sp := sim.StartSpan(disk)
	if err := run(); err != nil {
		return 0, err
	}
	return sp.End().Elapsed, nil
}

// RunFunc produces one experiment.
type RunFunc func(context.Context, *Env) (*Experiment, error)

// Registered lists every experiment in paper order.
func Registered() []struct {
	ID  string
	Run RunFunc
} {
	return []struct {
		ID  string
		Run RunFunc
	}{
		{"fig3", Fig3CutoffRuntime},
		{"fig4", Fig4Query1},
		{"fig5", Fig5Query2},
		{"fig6", Fig6Query3},
		{"fig7", Fig7Query4},
		{"fig8", Fig8Query5},
		{"fig9", Fig9Deterioration},
		{"fig10", Fig10FracturedModel},
		{"fig11", Fig11PointerEstimate},
		{"fig12", Fig12CutoffModel},
		{"table7", Table7Maintenance},
		{"table8", Table8Merging},
		{"parallel-ptq", ParallelPTQ},
		{"planner-routing", PlannerRouting},
		{"spatial-routing", SpatialRouting},
		{"streaming-latency", StreamingLatency},
		{"ablation-pointers", AblationMaxPointers},
		{"ablation-size", AblationCutoffSize},
		{"wallclock-disk", WallclockDisk},
		{"plan-cache", PlanCache},
	}
}

// Run executes one experiment by ID.
func Run(ctx context.Context, env *Env, id string) (*Experiment, error) {
	for _, r := range Registered() {
		if r.ID == id {
			return r.Run(ctx, env)
		}
	}
	ids := make([]string, 0)
	for _, r := range Registered() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}
