package bench

import (
	"context"
	"fmt"

	upidb "upidb"
	"upidb/internal/cupi"
	"upidb/internal/sim"
)

// SpatialRouting compares the spatial planner routing (the
// SpatialTable.Run default: the spatial statistics catalog picks the
// cheapest of R-Tree probe, segment-index scan and sequential full
// scan) against both forced physical paths on the paper's Query 4/5
// mix. The planner and forced-index columns run through the facade
// (WithStats modeled time); the full-scan column runs the same
// predicates on an identical continuous UPI built on a private disk,
// since the facade deliberately exposes no force-full-scan knob.
// Modeled cold-cache runtimes, deterministic per scale/seed.
func SpatialRouting(ctx context.Context, e *Env) (*Experiment, error) {
	c, err := e.Cartel()
	if err != nil {
		return nil, err
	}
	db, err := upidb.Create("")
	if err != nil {
		return nil, err
	}
	tab, err := db.BulkLoadSpatial("cars", c.Observations)
	if err != nil {
		return nil, err
	}
	// Twin table for the forced-full-scan column.
	scanDisk, scanFS := newDisk()
	scanTab, err := cupi.BulkBuild(scanFS, "cars", c.Observations, cupi.Options{})
	if err != nil {
		return nil, err
	}

	counts := make(map[string]int)
	for _, o := range c.Observations {
		counts[o.Segment.First().Value]++
	}
	seg, bestN := "", 0
	for s, n := range counts {
		if n > bestN {
			seg, bestN = s, n
		}
	}

	q := fig7QueryPoint(c.Extent)
	extentW := c.Extent.MaxX - c.Extent.MinX
	type spatialQuery struct {
		label string
		q     upidb.Query
		scan  func(ctx context.Context) (int, error)
	}
	circle := func(radius, th float64) spatialQuery {
		return spatialQuery{
			label: fmt.Sprintf("Q4 r=%.0f qt=%.1f", radius, th),
			q:     upidb.Circle(q, radius, th),
			scan: func(ctx context.Context) (int, error) {
				rs, _, err := scanTab.FullScanCircle(ctx, q, radius, th)
				return len(rs), err
			},
		}
	}
	segment := func(qt float64) spatialQuery {
		return spatialQuery{
			label: fmt.Sprintf("Q5 %s qt=%.1f", seg, qt),
			q:     upidb.Segment(seg, qt),
			scan: func(ctx context.Context) (int, error) {
				rs, _, err := scanTab.FullScanSegment(ctx, seg, qt)
				return len(rs), err
			},
		}
	}
	queries := []spatialQuery{
		circle(150, 0.5),
		circle(500, 0.5),
		circle(2*extentW, 0.3), // saturating: the full scan should win
		segment(0.2),
		segment(0.7),
	}

	exp := &Experiment{
		ID:      "spatial-routing",
		Title:   fmt.Sprintf("Spatial planner vs forced index vs full scan (%d observations)", len(c.Observations)),
		XLabel:  "query",
		Columns: []string{"Planner [s]", "Index [s]", "Full scan [s]", "Results"},
		Notes:   "default spatial Run plans from the grid/segment statistics catalog; Index pins the fixed R-Tree/segment-index routing (WithHeuristic); Full scan filters the whole clustered heap",
	}
	for _, qc := range queries {
		if err := tab.DropCaches(); err != nil {
			return nil, err
		}
		planned, err := tab.Run(ctx, qc.q.WithStats())
		if err != nil {
			return nil, err
		}
		nPlanned := planned.Len()
		if err := planned.Err(); err != nil {
			return nil, err
		}
		if src := planned.Info().PlanSource; src != upidb.PlanSourceStats {
			return nil, fmt.Errorf("bench: %s not planner-routed (source %q)", qc.label, src)
		}
		if err := tab.DropCaches(); err != nil {
			return nil, err
		}
		forced, err := tab.Run(ctx, qc.q.WithStats().WithHeuristic())
		if err != nil {
			return nil, err
		}
		if forced.Len() != nPlanned {
			return nil, fmt.Errorf("bench: %s: planner %d results vs forced index %d",
				qc.label, nPlanned, forced.Len())
		}
		// Full-scan column with the same per-query tape accounting the
		// facade uses (including the table-open charge), so the three
		// columns are directly comparable.
		if err := scanTab.DropCaches(); err != nil {
			return nil, err
		}
		tape := sim.NewTape()
		release := scanFS.RouteTo(scanTab.Files(), tape)
		tape.Open(scanTab.Name())
		nScan, serr := qc.scan(ctx)
		release()
		scanDur := scanDisk.Replay(tape)
		if serr != nil {
			return nil, serr
		}
		if nScan != nPlanned {
			return nil, fmt.Errorf("bench: %s: planner %d results vs full scan %d",
				qc.label, nPlanned, nScan)
		}
		exp.Rows = append(exp.Rows, Row{
			Label: fmt.Sprintf("%s [%s]", qc.label, planned.Info().Plan),
			Values: []float64{
				seconds(planned.Info().ModeledTime),
				seconds(forced.Info().ModeledTime),
				seconds(scanDur),
				float64(nPlanned),
			},
		})
	}
	return exp, nil
}
