package bench

import (
	"context"
	"upidb/internal/cupi"
	"upidb/internal/prob"
	"upidb/internal/utree"
)

// fig7QueryPoint places the paper's Query 4 center away from downtown
// so the query stays selective relative to the metro extent (the paper
// queries a fixed point and sweeps the radius).
func fig7QueryPoint(extent prob.Rect) prob.Point {
	return prob.Point{
		X: extent.MaxX * 0.5,
		Y: extent.MaxY * 0.38,
	}
}

// Fig7Query4 regenerates Figure 7: Query 4 (location range PTQ)
// runtime against the radius, continuous UPI versus secondary U-Tree,
// at QT = 50%.
func Fig7Query4(ctx context.Context, e *Env) (*Experiment, error) {
	c, err := e.Cartel()
	if err != nil {
		return nil, err
	}
	cuDisk, cuFS := newDisk()
	cu, err := cupi.BulkBuild(cuFS, "car", c.Observations, cupi.Options{})
	if err != nil {
		return nil, err
	}
	utDisk, utFS := newDisk()
	ut, err := utree.BulkBuild(utFS, "car", c.Observations, utree.Options{})
	if err != nil {
		return nil, err
	}
	q := fig7QueryPoint(c.Extent)
	exp := &Experiment{
		ID:      "fig7",
		Title:   "Query 4 Runtime (Cartel location range, QT=0.5)",
		XLabel:  "Radius [m]",
		Columns: []string{"Continuous UPI", "U-Tree"},
		Notes:   "modeled seconds",
	}
	for radius := 100.0; radius <= 1000.0; radius += 100 {
		radius := radius
		cuDur, err := coldRun(cuDisk, cu.DropCaches, func() error {
			_, _, qerr := cu.QueryCircle(ctx, q, radius, 0.5)
			return qerr
		})
		if err != nil {
			return nil, err
		}
		utDur, err := coldRun(utDisk, ut.DropCaches, func() error {
			_, _, qerr := ut.QueryCircle(q, radius, 0.5)
			return qerr
		})
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{X: radius, Values: []float64{seconds(cuDur), seconds(utDur)}})
	}
	return exp, nil
}

// Fig8Query5 regenerates Figure 8: Query 5 (road-segment PTQ via the
// secondary index) against QT, comparing the index into the clustered
// continuous-UPI heap with the same index into an unclustered heap.
func Fig8Query5(ctx context.Context, e *Env) (*Experiment, error) {
	c, err := e.Cartel()
	if err != nil {
		return nil, err
	}
	cuDisk, cuFS := newDisk()
	cu, err := cupi.BulkBuild(cuFS, "car", c.Observations, cupi.Options{})
	if err != nil {
		return nil, err
	}
	utDisk, utFS := newDisk()
	ut, err := utree.BulkBuild(utFS, "car", c.Observations, utree.Options{})
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int)
	for _, o := range c.Observations {
		counts[o.Segment.First().Value]++
	}
	seg, bestN := "", 0
	for s, n := range counts {
		if n > bestN {
			seg, bestN = s, n
		}
	}
	exp := &Experiment{
		ID:      "fig8",
		Title:   "Query 5 Runtime (Cartel WHERE Segment=" + seg + ")",
		XLabel:  "QT",
		Columns: []string{"PII on Continuous UPI", "PII on unclustered heap"},
		Notes:   "modeled seconds",
	}
	for qt := 0.1; qt <= 0.81; qt += 0.1 {
		qt := qt
		cuDur, err := coldRun(cuDisk, cu.DropCaches, func() error {
			_, _, qerr := cu.QuerySegment(ctx, seg, qt)
			return qerr
		})
		if err != nil {
			return nil, err
		}
		utDur, err := coldRun(utDisk, ut.DropCaches, func() error {
			_, qerr := ut.QuerySegment(seg, qt)
			return qerr
		})
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{X: qt, Values: []float64{seconds(cuDur), seconds(utDur)}})
	}
	return exp, nil
}
