package bench

import (
	"context"
	"fmt"
	"testing"

	"upidb/internal/dataset"
)

// TestParallelPTQModeledInvariant: the modeled cost and result count of
// the PTQ are bit-identical at every fan-out width; only wall-clock may
// differ.
func TestParallelPTQModeledInvariant(t *testing.T) {
	exp, err := ParallelPTQ(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	modeled := getColumn(t, exp, "Modeled [s/query]")
	results := getColumn(t, exp, "Results")
	if len(modeled) < 3 {
		t.Fatalf("want >= 3 parallelism levels, got %d", len(modeled))
	}
	for i := 1; i < len(modeled); i++ {
		if modeled[i] != modeled[0] {
			t.Errorf("parallelism row %d: modeled cost %v != serial %v", i, modeled[i], modeled[0])
		}
		if results[i] != results[0] {
			t.Errorf("parallelism row %d: %v results != serial %v", i, results[i], results[0])
		}
	}
	if modeled[0] <= 0 {
		t.Fatalf("modeled cost should be positive, got %v", modeled[0])
	}
}

// BenchmarkParallelPTQ reports wall-clock per query at each fan-out
// width over the fractured author table (modeled cost is identical at
// every width; the speedup is real CPU/scan parallelism).
func BenchmarkParallelPTQ(b *testing.B) {
	env := NewEnv(Config{Scale: 0.25, Seed: 1})
	store, _, err := buildFracturedAuthors(env)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			store.SetParallelism(par)
			for i := 0; i < b.N; i++ {
				if err := store.DropCaches(); err != nil {
					b.Fatal(err)
				}
				if _, _, err := store.Query(context.Background(), dataset.MITInstitution, fig9QT); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
