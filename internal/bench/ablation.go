package bench

import (
	"context"
	"upidb/internal/dataset"
	"upidb/internal/histogram"
	"upidb/internal/upi"
)

// AblationMaxPointers quantifies the secondary-index tuning option of
// Section 3.2: "One tuning option ... is to limit the number of
// pointers stored in each secondary index entry. Though the query
// performance gradually degenerates to the normal secondary index
// access with a tighter limit, such a limit can lower storage
// consumption." It sweeps the pointer cap and reports the tailored
// Query 3 runtime and the secondary index size.
func AblationMaxPointers(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "ablation-pointers",
		Title:   "Tailored access vs secondary-index pointer cap (Query 3, QT=0.3)",
		XLabel:  "max pointers",
		Columns: []string{"Runtime [s]", "Secondary index [MB]"},
		Notes:   "cap 0 = unlimited; tighter caps approach plain secondary access",
	}
	for _, cap := range []int{1, 2, 4, 8, 0} {
		disk, fs := newDisk()
		tab, err := upi.BulkBuild(fs, "pub", dataset.AttrInstitution,
			[]string{dataset.AttrCountry},
			upi.Options{Cutoff: defaultCutoff, MaxPointers: cap}, d.Publications)
		if err != nil {
			return nil, err
		}
		dur, err := coldRun(disk, tab.DropCaches, func() error {
			_, _, qerr := tab.QuerySecondary(ctx, dataset.AttrCountry, dataset.JapanCountry, 0.3, true)
			return qerr
		})
		if err != nil {
			return nil, err
		}
		secBytes := fs.Size(upi.SecFileName("pub", dataset.AttrCountry))
		x := float64(cap)
		label := ""
		if cap == 0 {
			label = "unlimited"
		}
		exp.Rows = append(exp.Rows, Row{
			X: x, Label: label,
			Values: []float64{seconds(dur), float64(secBytes) / (1 << 20)},
		})
	}
	return exp, nil
}

// AblationCutoffSize reports the storage side of the cutoff threshold
// trade-off (Section 3.1: "Larger C values could reduce the size of
// the UPI by orders of magnitude when the probability distribution is
// long tailed"): heap-file and cutoff-index sizes per C, with the
// histogram's size estimate alongside.
func AblationCutoffSize(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	hist, err := histogram.Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "ablation-size",
		Title:   "UPI size vs cutoff threshold C (Author table)",
		XLabel:  "C",
		Columns: []string{"Heap [MB]", "Cutoff idx [MB]", "Estimated heap [MB]"},
	}
	for _, c := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		_, fs := newDisk()
		_, err := upi.BulkBuild(fs, "author", dataset.AttrInstitution,
			[]string{dataset.AttrCountry}, upi.Options{Cutoff: c}, d.Authors)
		if err != nil {
			return nil, err
		}
		heapMB := float64(fs.Size(upi.HeapFileName("author"))) / (1 << 20)
		cutMB := float64(fs.Size(upi.CutoffFileName("author"))) / (1 << 20)
		estMB := hist.EstimateTableBytes(c) / (1 << 20)
		exp.Rows = append(exp.Rows, Row{X: c, Values: []float64{heapMB, cutMB, estMB}})
	}
	return exp, nil
}
