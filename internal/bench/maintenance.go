package bench

import (
	"context"
	"fmt"
	"math/rand"

	"upidb/internal/costmodel"
	"upidb/internal/dataset"
	"upidb/internal/fracture"
	"upidb/internal/heapfile"
	"upidb/internal/histogram"
	"upidb/internal/sim"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// batchWorkload produces the paper's insert batches: each batch
// deletes 1% of the live tuples at random and inserts new tuples equal
// to 10% of the original table size ("we randomly delete 1% of the
// tuples from the DBLP Author table and randomly insert new tuples
// equal to 10% of the existing tuples").
type batchWorkload struct {
	rng    *rand.Rand
	live   []*tuple.Tuple
	nextID uint64
	// template tuples to clone new inserts from (fresh IDs, same
	// distribution shapes).
	templates []*tuple.Tuple
	batchIns  int
	batchDel  int
}

func newBatchWorkload(seed int64, base []*tuple.Tuple) *batchWorkload {
	w := &batchWorkload{
		rng:       rand.New(rand.NewSource(seed)),
		live:      append([]*tuple.Tuple(nil), base...),
		templates: base,
		batchIns:  len(base) / 10,
		batchDel:  len(base) / 100,
	}
	for _, t := range base {
		if t.ID >= w.nextID {
			w.nextID = t.ID + 1
		}
	}
	return w
}

// next returns the deletions and insertions of the next batch.
func (w *batchWorkload) next() (deletes []*tuple.Tuple, inserts []*tuple.Tuple) {
	for i := 0; i < w.batchDel && len(w.live) > 0; i++ {
		j := w.rng.Intn(len(w.live))
		deletes = append(deletes, w.live[j])
		w.live[j] = w.live[len(w.live)-1]
		w.live = w.live[:len(w.live)-1]
	}
	for i := 0; i < w.batchIns; i++ {
		tmpl := w.templates[w.rng.Intn(len(w.templates))]
		clone := *tmpl
		clone.ID = w.nextID
		w.nextID++
		inserts = append(inserts, &clone)
		w.live = append(w.live, &clone)
	}
	return deletes, inserts
}

// Table7Maintenance regenerates Table 7: the cost of one insert batch
// (10%) and one delete batch (1%) on an unclustered table (PII), a
// plain UPI and a Fractured UPI.
func Table7Maintenance(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "table7",
		Title:   "Maintenance Cost (insert 10%, delete 1%)",
		XLabel:  "approach",
		Columns: []string{"Insert [s]", "Delete [s]"},
		Notes:   "modeled seconds; deletes and inserts in random order",
	}
	w := newBatchWorkload(e.cfg.Seed+100, d.Authors)
	deletes, inserts := w.next()

	// Unclustered: "an append-only table without primary indexes"
	// (Section 4.1) — a bare heap file. Inserts append sequentially;
	// deletes tombstone random pages.
	{
		disk, fs := newDisk()
		hp, err := storage.NewPager(fs.Create("author.heap"), storage.DefaultPageSize)
		if err != nil {
			return nil, err
		}
		heap, err := heapfile.Create(hp)
		if err != nil {
			return nil, err
		}
		rows := make(map[uint64]heapfile.RowID, len(d.Authors))
		for _, t := range d.Authors {
			rid, err := heap.Append(tuple.Encode(t))
			if err != nil {
				return nil, err
			}
			rows[t.ID] = rid
		}
		if err := hp.Flush(); err != nil {
			return nil, err
		}
		insDur, err := coldRun(disk, hp.DropCache, func() error {
			for _, t := range inserts {
				rid, err := heap.Append(tuple.Encode(t))
				if err != nil {
					return err
				}
				rows[t.ID] = rid
			}
			return hp.Flush()
		})
		if err != nil {
			return nil, err
		}
		delDur, err := coldRun(disk, hp.DropCache, func() error {
			for _, t := range deletes {
				if _, err := heap.Delete(rows[t.ID]); err != nil {
					return err
				}
			}
			return hp.Flush()
		})
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{Label: "Unclustered", Values: []float64{seconds(insDur), seconds(delDur)}})
	}

	// Plain UPI, maintained in place.
	{
		upiTab, disk, err := buildAuthorUPI(d.Authors, defaultCutoff)
		if err != nil {
			return nil, err
		}
		insDur, err := coldRun(disk, upiTab.DropCaches, func() error {
			for _, t := range inserts {
				if err := upiTab.Insert(t); err != nil {
					return err
				}
			}
			return upiTab.Flush()
		})
		if err != nil {
			return nil, err
		}
		delDur, err := coldRun(disk, upiTab.DropCaches, func() error {
			for _, t := range deletes {
				if err := upiTab.Delete(t); err != nil {
					return err
				}
			}
			return upiTab.Flush()
		})
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{Label: "UPI", Values: []float64{seconds(insDur), seconds(delDur)}})
	}

	// Fractured UPI: buffer in RAM, one sequential flush per batch.
	{
		disk, fs := newDisk()
		store, err := fracture.BulkLoad(fs, "author", dataset.AttrInstitution,
			[]string{dataset.AttrCountry}, fracture.Config{UPI: upi.Options{Cutoff: defaultCutoff},
				Parallelism: e.cfg.Parallelism}, d.Authors)
		if err != nil {
			return nil, err
		}
		insDur, err := coldRun(disk, store.DropCaches, func() error {
			for _, t := range inserts {
				if err := store.Insert(t); err != nil {
					return err
				}
			}
			if err := store.Flush(); err != nil {
				return err
			}
			return store.FlushPages()
		})
		if err != nil {
			return nil, err
		}
		delDur, err := coldRun(disk, store.DropCaches, func() error {
			for _, t := range deletes {
				store.Delete(t.ID)
			}
			if err := store.Flush(); err != nil {
				return err
			}
			return store.FlushPages()
		})
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{Label: "Fractured UPI", Values: []float64{seconds(insDur), seconds(delDur)}})
	}
	return exp, nil
}

// fig9Query is the query measured between insert batches (Q1 with
// C = QT = 0.1, as in Figure 9).
const fig9QT = 0.1

// Fig9Deterioration regenerates Figure 9: Query 1 runtime after each
// of 10 insert batches on the three approaches.
func Fig9Deterioration(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig9",
		Title:   "Q1 (C=QT=0.1) Deterioration over insert batches",
		XLabel:  "batch",
		Columns: []string{"Unclustered heap", "UPI", "Fractured UPI"},
		Notes:   "modeled seconds; batch = +10% inserts, -1% deletes",
	}

	piiTab, piiDisk, err := buildAuthorPII(d.Authors)
	if err != nil {
		return nil, err
	}
	upiTab, upiDisk, err := buildAuthorUPI(d.Authors, fig9QT)
	if err != nil {
		return nil, err
	}
	fracDisk, fracFS := newDisk()
	store, err := fracture.BulkLoad(fracFS, "author", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, fracture.Config{UPI: upi.Options{Cutoff: fig9QT},
			Parallelism: e.cfg.Parallelism}, d.Authors)
	if err != nil {
		return nil, err
	}

	measure := func() (Row, error) {
		row := Row{}
		piiDur, err := coldRun(piiDisk, piiTab.DropCaches, func() error {
			_, qerr := piiTab.Query(ctx, dataset.AttrInstitution, dataset.MITInstitution, fig9QT)
			return qerr
		})
		if err != nil {
			return row, err
		}
		upiDur, err := coldRun(upiDisk, upiTab.DropCaches, func() error {
			_, _, qerr := upiTab.Query(ctx, dataset.MITInstitution, fig9QT)
			return qerr
		})
		if err != nil {
			return row, err
		}
		fracDur, err := coldRun(fracDisk, store.DropCaches, func() error {
			_, _, qerr := store.Query(ctx, dataset.MITInstitution, fig9QT)
			return qerr
		})
		if err != nil {
			return row, err
		}
		row.Values = []float64{seconds(piiDur), seconds(upiDur), seconds(fracDur)}
		return row, nil
	}

	row, err := measure()
	if err != nil {
		return nil, err
	}
	row.X = 0
	exp.Rows = append(exp.Rows, row)

	w := newBatchWorkload(e.cfg.Seed+200, d.Authors)
	for batch := 1; batch <= 10; batch++ {
		deletes, inserts := w.next()
		for _, t := range deletes {
			if err := piiTab.Delete(t); err != nil {
				return nil, err
			}
			if err := upiTab.Delete(t); err != nil {
				return nil, err
			}
			store.Delete(t.ID)
		}
		for _, t := range inserts {
			if err := piiTab.Insert(t); err != nil {
				return nil, err
			}
			if err := upiTab.Insert(t); err != nil {
				return nil, err
			}
			if err := store.Insert(t); err != nil {
				return nil, err
			}
		}
		if err := store.Flush(); err != nil { // one fracture per batch
			return nil, err
		}
		row, err := measure()
		if err != nil {
			return nil, err
		}
		row.X = float64(batch)
		exp.Rows = append(exp.Rows, row)
	}
	return exp, nil
}

// Fig10FracturedModel regenerates Figure 10: the Fractured UPI's real
// query runtime over 30 insert batches with a merge after every 10,
// against the Section 6.2 cost-model estimate.
func Fig10FracturedModel(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	hist, err := histogram.Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		return nil, err
	}
	disk, fs := newDisk()
	store, err := fracture.BulkLoad(fs, "author", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, fracture.Config{UPI: upi.Options{Cutoff: fig9QT},
			Parallelism: e.cfg.Parallelism}, d.Authors)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig10",
		Title:   "Fractured UPI Runtime, Real vs Estimated (merge every 10 batches)",
		XLabel:  "batch",
		Columns: []string{"Real", "Estimated"},
		Notes:   "modeled seconds; Q1 at QT=0.1",
	}
	selEst := hist.EstimateSelectivity(dataset.MITInstitution, fig9QT)

	measure := func(batch int) error {
		real, err := coldRun(disk, store.DropCaches, func() error {
			_, _, qerr := store.Query(ctx, dataset.MITInstitution, fig9QT)
			return qerr
		})
		if err != nil {
			return err
		}
		params := costmodel.Params{
			Disk:       sim.DefaultParams(),
			Height:     store.Main().Heap().Height(),
			TableBytes: store.SizeBytes(),
			Fractures:  store.NumFractures() + 1, // main counts as a partition too
		}
		est := params.CostFractured(selEst)
		exp.Rows = append(exp.Rows, Row{X: float64(batch), Values: []float64{seconds(real), seconds(est)}})
		return nil
	}
	if err := measure(0); err != nil {
		return nil, err
	}
	w := newBatchWorkload(e.cfg.Seed+300, d.Authors)
	for batch := 1; batch <= 30; batch++ {
		deletes, inserts := w.next()
		for _, t := range deletes {
			store.Delete(t.ID)
		}
		for _, t := range inserts {
			if err := store.Insert(t); err != nil {
				return nil, err
			}
		}
		if err := store.Flush(); err != nil {
			return nil, err
		}
		if batch%10 == 0 {
			if err := store.Merge(); err != nil {
				return nil, err
			}
		}
		if err := measure(batch); err != nil {
			return nil, err
		}
	}
	return exp, nil
}

// Table8Merging regenerates Table 8: the cost and resulting database
// size of three successive merges, each after 10 insert batches.
func Table8Merging(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	disk, fs := newDisk()
	store, err := fracture.BulkLoad(fs, "author", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, fracture.Config{UPI: upi.Options{Cutoff: defaultCutoff},
			Parallelism: e.cfg.Parallelism}, d.Authors)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "table8",
		Title:   "Merging Cost",
		XLabel:  "#",
		Columns: []string{"Time [s]", "DB size [MB]", "Estimated [s]"},
		Notes:   "merge after every 10 insert batches; estimate = Stable x (Tread + Twrite)",
	}
	w := newBatchWorkload(e.cfg.Seed+400, d.Authors)
	for m := 1; m <= 3; m++ {
		for b := 0; b < 10; b++ {
			deletes, inserts := w.next()
			for _, t := range deletes {
				store.Delete(t.ID)
			}
			for _, t := range inserts {
				if err := store.Insert(t); err != nil {
					return nil, err
				}
			}
			if err := store.Flush(); err != nil {
				return nil, err
			}
		}
		if err := store.FlushPages(); err != nil {
			return nil, err
		}
		params := costmodel.Params{Disk: sim.DefaultParams(), TableBytes: store.SizeBytes()}
		est := params.CostMerge()
		dur, err := coldRun(disk, store.DropCaches, store.Merge)
		if err != nil {
			return nil, err
		}
		sizeMB := float64(store.SizeBytes()) / (1 << 20)
		exp.Rows = append(exp.Rows, Row{
			Label:  fmt.Sprintf("%d", m),
			Values: []float64{seconds(dur), sizeMB, seconds(est)},
		})
	}
	return exp, nil
}
