package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"upidb/internal/dataset"
	"upidb/internal/fracture"
	"upidb/internal/sim"
	"upidb/internal/upi"
)

// parallelBatches is how many insert batches (one fracture each) the
// parallel experiment accumulates before measuring, so the fan-out has
// enough partitions to spread across workers.
const parallelBatches = 12

// parallelRepeats is how many times the measured PTQ is repeated per
// parallelism level, to make the wall-clock column readable.
const parallelRepeats = 8

// buildFracturedAuthors loads the author table and applies insert
// batches, flushing after each, leaving parallelBatches fractures.
func buildFracturedAuthors(e *Env) (*fracture.Store, *sim.Disk, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, nil, err
	}
	disk, fs := newDisk()
	store, err := fracture.BulkLoad(fs, "author", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, fracture.Config{UPI: upi.Options{Cutoff: fig9QT},
			Parallelism: e.cfg.Parallelism}, d.Authors)
	if err != nil {
		return nil, nil, err
	}
	w := newBatchWorkload(e.cfg.Seed+500, d.Authors)
	for b := 0; b < parallelBatches; b++ {
		deletes, inserts := w.next()
		for _, t := range deletes {
			store.Delete(t.ID)
		}
		for _, t := range inserts {
			if err := store.Insert(t); err != nil {
				return nil, nil, err
			}
		}
		if err := store.Flush(); err != nil {
			return nil, nil, err
		}
	}
	return store, disk, nil
}

// ParallelPTQ measures the same PTQ (Q1 at QT=0.1) over a heavily
// fractured table at increasing fan-out widths. The modeled cost is
// identical at every parallelism — per-partition I/O is recorded on
// tapes and replayed in partition order — while wall-clock time drops
// as partition scans spread across workers. This is the
// partition-parallel read path of the concurrent engine; it is the
// only experiment whose wall-clock column depends on the host machine.
func ParallelPTQ(ctx context.Context, e *Env) (*Experiment, error) {
	store, disk, err := buildFracturedAuthors(e)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "parallel-ptq",
		Title:   fmt.Sprintf("Parallel PTQ over %d partitions (Q1 at QT=%.1f)", store.NumFractures()+1, fig9QT),
		XLabel:  "parallelism",
		Columns: []string{"Wall [ms/query]", "Modeled [s/query]", "Results"},
		Notes:   "modeled cost is parallelism-invariant by construction; wall-clock is host-dependent",
	}

	widths := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		widths = append(widths, p)
	}
	for _, par := range widths {
		store.SetParallelism(par)
		var (
			modeled time.Duration
			results int
			wall    time.Duration
		)
		for r := 0; r < parallelRepeats; r++ {
			if err := store.DropCaches(); err != nil {
				return nil, err
			}
			sp := sim.StartSpan(disk)
			start := time.Now()
			rs, _, err := store.Query(ctx, dataset.MITInstitution, fig9QT)
			if err != nil {
				return nil, err
			}
			wall += time.Since(start)
			modeled += sp.End().Elapsed
			results = len(rs)
		}
		exp.Rows = append(exp.Rows, Row{
			X: float64(par),
			Values: []float64{
				float64(wall.Microseconds()) / 1000 / parallelRepeats,
				seconds(modeled) / parallelRepeats,
				float64(results),
			},
		})
	}
	return exp, nil
}
