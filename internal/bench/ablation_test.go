package bench

import (
	"context"
	"testing"
)

// TestAblationMaxPointers: an unlimited pointer cap must be at least
// as fast as a cap of 1 (which degenerates to plain secondary access),
// and tighter caps must shrink the secondary index.
func TestAblationMaxPointers(t *testing.T) {
	exp, err := AblationMaxPointers(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 5 {
		t.Fatalf("rows: %d", len(exp.Rows))
	}
	cap1 := exp.Rows[0]
	unlimited := exp.Rows[len(exp.Rows)-1]
	if unlimited.Values[0] > cap1.Values[0]+1e-9 {
		t.Fatalf("unlimited pointers slower than cap=1: %v vs %v", unlimited.Values[0], cap1.Values[0])
	}
	if cap1.Values[1] >= unlimited.Values[1] {
		t.Fatalf("cap=1 index should be smaller: %v vs %v MB", cap1.Values[1], unlimited.Values[1])
	}
	// Sizes are non-decreasing in the cap.
	for i := 1; i < 4; i++ {
		if exp.Rows[i].Values[1]+1e-9 < exp.Rows[i-1].Values[1] {
			t.Fatalf("index size decreased with a looser cap: %+v", exp.Rows)
		}
	}
}

// TestAblationCutoffSize: the heap shrinks and the cutoff index grows
// as C rises; the histogram's size estimate tracks the real heap.
func TestAblationCutoffSize(t *testing.T) {
	exp, err := AblationCutoffSize(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	first, last := exp.Rows[0], exp.Rows[len(exp.Rows)-1]
	if last.Values[0] >= first.Values[0] {
		t.Fatalf("heap should shrink with C: %v -> %v MB", first.Values[0], last.Values[0])
	}
	if last.Values[1] <= first.Values[1] {
		t.Fatalf("cutoff index should grow with C: %v -> %v MB", first.Values[1], last.Values[1])
	}
	for _, r := range exp.Rows {
		real, est := r.Values[0], r.Values[2]
		ratio := est / real
		if ratio < 0.5 || ratio > 2 {
			t.Fatalf("size estimate off at C=%v: real %v est %v", r.X, real, est)
		}
	}
}
