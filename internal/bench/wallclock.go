package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	upidb "upidb"
	"upidb/internal/dataset"
)

// wallclockInserts is how many single-tuple inserts the WAL-fsync
// phase performs (each one appends and fsyncs a WAL record before
// acknowledging).
const wallclockInserts = 500

// WallclockDisk exercises the real on-disk backend end to end — bulk
// load, WAL-fsynced inserts, flush, cold query, merge — and reports,
// for each phase, the modeled disk time next to the first measured
// wall-clock column. Modeled costs price the same I/O the simulated
// backend would charge; wall-clock times are real fsync-bound
// machine-dependent measurements, so the column is named with "Wall"
// and excluded from the regression gate.
func WallclockDisk(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "upibench-disk-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := upidb.Create(dir)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	exp := &Experiment{
		ID:      "wallclock-disk",
		Title:   "Disk backend: modeled cost vs wall-clock (durable tables)",
		XLabel:  "phase",
		Columns: []string{"Modeled [s]", "Wall [ms Wall]"},
		Notes: fmt.Sprintf("real files + per-write WAL fsync in a temp dir; %d authors; wall times are machine-dependent and not gated",
			len(d.Authors)),
	}
	var lastModeled time.Duration
	phase := func(label string, run func() error) error {
		wallStart := time.Now()
		if err := run(); err != nil {
			return fmt.Errorf("bench: %s: %w", label, err)
		}
		wall := time.Since(wallStart)
		modeled := db.DiskStats().Elapsed
		exp.Rows = append(exp.Rows, Row{
			Label:  label,
			Values: []float64{seconds(modeled - lastModeled), float64(wall.Microseconds()) / 1000},
		})
		lastModeled = modeled
		return nil
	}

	var tab *upidb.Table
	if err := phase(fmt.Sprintf("bulk load %d authors", len(d.Authors)), func() error {
		tab, err = db.BulkLoadTable("authors", dataset.AttrInstitution,
			[]string{dataset.AttrCountry}, d.Authors,
			upidb.WithCutoff(fig9QT), upidb.WithParallelism(e.cfg.Parallelism))
		return err
	}); err != nil {
		return nil, err
	}
	if err := phase(fmt.Sprintf("%d inserts (WAL fsync each)", wallclockInserts), func() error {
		for i := 0; i < wallclockInserts; i++ {
			tup := *d.Authors[i%len(d.Authors)]
			tup.ID = uint64(1_000_000 + i)
			if err := tab.Insert(&tup); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := phase("flush (fracture + manifest commit)", tab.Flush); err != nil {
		return nil, err
	}
	if err := phase("Q1 Inst=MIT qt=0.1 cold", func() error {
		if err := tab.DropCaches(); err != nil {
			return err
		}
		res, err := tab.Run(ctx, upidb.PTQ("", dataset.MITInstitution, 0.1))
		if err != nil {
			return err
		}
		if res.Len() == 0 {
			return fmt.Errorf("empty result")
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := phase("merge (WAL checkpoint)", tab.Merge); err != nil {
		return nil, err
	}
	return exp, nil
}
