package bench

import (
	"context"
	"fmt"
	"time"

	upidb "upidb"
	"upidb/internal/dataset"
)

// planCacheReps is how many times each query shape repeats per timing
// mode; planning is pure CPU, so the per-op average stabilizes fast.
const planCacheReps = 40

// PlanCache measures what the generation-guarded plan cache saves on
// repeated query shapes: per-repetition planning time with the cache
// cold (DropCaches before every repetition forces a fresh costing)
// against warm repeats of the same shape. Planning is isolated with
// explain-only runs — no execution, no modeled I/O — so the delta is
// the costing work itself. The experiment also executes each shape
// once cold and once warm and fails unless the two executions return
// the identical result set with the identical modeled cost: the cache
// must be invisible to everything except provenance and wall-clock.
// Timing columns are wall-clock and so not regression-gated; the
// Modeled column is deterministic per scale/seed.
func PlanCache(ctx context.Context, e *Env) (*Experiment, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	db, err := upidb.Create("")
	if err != nil {
		return nil, err
	}
	tab, err := db.BulkLoadTable("authors", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, d.Authors,
		upidb.WithCutoff(fig9QT), upidb.WithParallelism(e.cfg.Parallelism))
	if err != nil {
		return nil, err
	}
	w := newBatchWorkload(e.cfg.Seed+900, d.Authors)
	for b := 0; b < routingBatches; b++ {
		deletes, inserts := w.next()
		for _, t := range deletes {
			if err := tab.Delete(t.ID); err != nil {
				return nil, err
			}
		}
		for _, t := range inserts {
			if err := tab.Insert(t); err != nil {
				return nil, err
			}
		}
		if err := tab.Flush(); err != nil {
			return nil, err
		}
	}

	exp := &Experiment{
		ID:      "plan-cache",
		Title:   fmt.Sprintf("Plan cache on repeated query shapes (%d fractures, %d reps)", tab.NumFractures(), planCacheReps),
		XLabel:  "query",
		Columns: []string{"Cold plan Wall [µs/op]", "Cached plan Wall [µs/op]", "Modeled [s]", "Results"},
		Notes:   "cold = DropCaches before every repetition (fresh costing); cached = warm repeats served by the generation-guarded plan cache; both modes are asserted to return identical result sets at identical modeled cost",
	}
	queries := []struct {
		label string
		q     upidb.Query
	}{
		{"Q1 Inst=MIT qt=0.3", upidb.PTQ("", dataset.MITInstitution, 0.3)},
		{fmt.Sprintf("Q1 Inst=MIT qt=%.2f", fig9QT/2), upidb.PTQ("", dataset.MITInstitution, fig9QT/2)},
		{"Q3 Country=Japan qt=0.3", upidb.PTQ(dataset.AttrCountry, dataset.JapanCountry, 0.3)},
	}
	collect := func(q upidb.Query) ([][2]float64, upidb.QueryInfo, error) {
		res, err := tab.Run(ctx, q.WithStats())
		if err != nil {
			return nil, upidb.QueryInfo{}, err
		}
		var out [][2]float64
		for r, err := range res.All() {
			if err != nil {
				return nil, upidb.QueryInfo{}, err
			}
			out = append(out, [2]float64{float64(r.Tuple.ID), r.Confidence})
		}
		return out, res.Info(), nil
	}
	for _, qc := range queries {
		// Parity gate: a stats-planned execution and a cached-plan
		// execution, both against a cold buffer pool, must be
		// indistinguishable except for plan provenance. The cache is
		// seeded with an explain-only run, which plans without
		// executing and so leaves the buffer pool cold.
		if err := tab.DropCaches(); err != nil {
			return nil, err
		}
		coldRes, coldInfo, err := collect(qc.q)
		if err != nil {
			return nil, err
		}
		if coldInfo.PlanSource != upidb.PlanSourceStats {
			return nil, fmt.Errorf("bench: %s cold run source %q", qc.label, coldInfo.PlanSource)
		}
		if err := tab.DropCaches(); err != nil {
			return nil, err
		}
		if _, err := tab.Run(ctx, qc.q.WithExplain()); err != nil {
			return nil, err
		}
		warmRes, warmInfo, err := collect(qc.q)
		if err != nil {
			return nil, err
		}
		if warmInfo.PlanSource != upidb.PlanSourceCached {
			return nil, fmt.Errorf("bench: %s warm run source %q (plan cache missed)", qc.label, warmInfo.PlanSource)
		}
		if len(coldRes) != len(warmRes) {
			return nil, fmt.Errorf("bench: %s: cold %d results vs cached %d", qc.label, len(coldRes), len(warmRes))
		}
		for i := range coldRes {
			if coldRes[i] != warmRes[i] {
				return nil, fmt.Errorf("bench: %s: result %d diverges under the plan cache", qc.label, i)
			}
		}
		if coldInfo.ModeledTime != warmInfo.ModeledTime {
			return nil, fmt.Errorf("bench: %s: modeled cost diverges under the plan cache: %v vs %v",
				qc.label, coldInfo.ModeledTime, warmInfo.ModeledTime)
		}

		// Timing: explain-only runs isolate the costing work.
		explain := qc.q.WithExplain()
		var coldWall time.Duration
		for r := 0; r < planCacheReps; r++ {
			if err := tab.DropCaches(); err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := tab.Run(ctx, explain); err != nil {
				return nil, err
			}
			coldWall += time.Since(start)
		}
		if err := tab.DropCaches(); err != nil {
			return nil, err
		}
		if _, err := tab.Run(ctx, explain); err != nil { // re-seed the cache
			return nil, err
		}
		var warmWall time.Duration
		for r := 0; r < planCacheReps; r++ {
			start := time.Now()
			if _, err := tab.Run(ctx, explain); err != nil {
				return nil, err
			}
			warmWall += time.Since(start)
		}
		exp.Rows = append(exp.Rows, Row{
			Label: fmt.Sprintf("%s [%s]", qc.label, coldInfo.Plan),
			Values: []float64{
				float64(coldWall.Microseconds()) / planCacheReps,
				float64(warmWall.Microseconds()) / planCacheReps,
				seconds(coldInfo.ModeledTime),
				float64(len(coldRes)),
			},
		})
	}
	return exp, nil
}
