package bench

import (
	"context"
	"math"
	"testing"
)

// testEnv uses a small scale so the full suite runs in seconds while
// every shape assertion still holds.
func testEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv(Config{Scale: 0.08, Seed: 1})
}

func getColumn(t *testing.T, e *Experiment, name string) []float64 {
	t.Helper()
	col, err := e.Column(name)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run(context.Background(), testEnv(t), "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentFormatting(t *testing.T) {
	e := &Experiment{
		ID: "x", Title: "T", XLabel: "qt", Columns: []string{"A", "B"},
		Rows: []Row{{X: 0.5, Values: []float64{1.25, 2}}},
	}
	s := e.String()
	if len(s) == 0 || s[0] != '=' {
		t.Fatalf("format: %q", s)
	}
	if _, err := e.Column("C"); err == nil {
		t.Fatal("missing column accepted")
	}
}

// TestFig4Shape: UPI beats PII at every QT, by a large factor at low QT
// (paper: 20-100x).
func TestFig4Shape(t *testing.T) {
	exp, err := Fig4Query1(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	piiCol := getColumn(t, exp, "PII")
	upiCol := getColumn(t, exp, "UPI")
	for i := range piiCol {
		if upiCol[i] > piiCol[i] {
			t.Fatalf("row %d: UPI %v slower than PII %v", i, upiCol[i], piiCol[i])
		}
	}
	if piiCol[0] < upiCol[0]*5 {
		t.Fatalf("low-QT speedup too small: pii=%v upi=%v", piiCol[0], upiCol[0])
	}
	// Both get faster (or equal) as QT rises.
	if piiCol[len(piiCol)-1] > piiCol[0] {
		t.Fatal("PII should be cheaper at high QT")
	}
}

func TestFig5Shape(t *testing.T) {
	exp, err := Fig5Query2(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	piiCol := getColumn(t, exp, "PII")
	upiCol := getColumn(t, exp, "UPI")
	if mean(piiCol) < mean(upiCol)*3 {
		t.Fatalf("UPI should win Query 2 clearly: pii=%v upi=%v", mean(piiCol), mean(upiCol))
	}
}

// TestFig6Shape: tailored access dominates plain UPI secondary access;
// plain UPI without tailoring is sometimes no better than PII (the
// paper observes it can even be slower).
func TestFig6Shape(t *testing.T) {
	exp, err := Fig6Query3(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	piiCol := getColumn(t, exp, "PII on unclustered heap")
	plainCol := getColumn(t, exp, "PII on UPI")
	tailCol := getColumn(t, exp, "PII on UPI w/ Tailored Access")
	for i := range tailCol {
		if tailCol[i] > plainCol[i]+1e-9 {
			t.Fatalf("row %d: tailored %v worse than plain %v", i, tailCol[i], plainCol[i])
		}
	}
	// At test scale the margin is modest (the paper reports up to 8x
	// at 13x our size); require a clear ordering.
	if mean(piiCol) < mean(tailCol)*1.3 {
		t.Fatalf("tailored should beat PII: pii=%v tailored=%v", mean(piiCol), mean(tailCol))
	}
}

// TestFig3Shape: queries with QT >= C are fast; dropping QT below C
// makes them slower (cutoff pointer chasing).
func TestFig3Shape(t *testing.T) {
	exp, err := Fig3CutoffRuntime(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	col := getColumn(t, exp, "nonsel QT=0.05")
	// Row 1 is C=0.05 (QT >= C, pure heap); the last row is C=0.5
	// where QT=0.05 << C and the query must chase pointers.
	if col[len(col)-1] < col[1]*1.5 {
		t.Fatalf("cutoff penalty missing: C=0.05 %v vs C=0.5 %v", col[1], col[len(col)-1])
	}
	// At QT=0.25 the penalty only starts beyond C=0.25: the runtime at
	// C=0.25 must be comparable to C=0.05 (both pure heap scans).
	col25 := getColumn(t, exp, "nonsel QT=0.25")
	if col25[5] > col25[1]*1.5+0.2 {
		t.Fatalf("QT=0.25 should stay fast through C=0.25: %v vs %v", col25[5], col25[1])
	}
}

func TestFig7Shape(t *testing.T) {
	exp, err := Fig7Query4(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	cuCol := getColumn(t, exp, "Continuous UPI")
	utCol := getColumn(t, exp, "U-Tree")
	if mean(utCol) < mean(cuCol)*2 {
		t.Fatalf("CUPI should clearly win: cupi=%v utree=%v", mean(cuCol), mean(utCol))
	}
	// U-Tree cost grows with radius.
	if utCol[len(utCol)-1] < utCol[0] {
		t.Fatal("U-Tree cost should grow with radius")
	}
}

func TestFig8Shape(t *testing.T) {
	exp, err := Fig8Query5(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	cuCol := getColumn(t, exp, "PII on Continuous UPI")
	utCol := getColumn(t, exp, "PII on unclustered heap")
	if mean(utCol) < mean(cuCol)*1.5 {
		t.Fatalf("clustered secondary should win: cupi=%v unclustered=%v", mean(cuCol), mean(utCol))
	}
}

// TestFig9Shape: the plain UPI deteriorates most; the fractured UPI
// deteriorates least relative to it (paper: 40x vs 9x vs 4x).
func TestFig9Shape(t *testing.T) {
	exp, err := Fig9Deterioration(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	unclCol := getColumn(t, exp, "Unclustered heap")
	upiCol := getColumn(t, exp, "UPI")
	fracCol := getColumn(t, exp, "Fractured UPI")
	last := len(upiCol) - 1
	// The in-place UPI deteriorates sharply from fragmentation
	// (paper: 40x); the unclustered heap deteriorates much less
	// (paper: 4x).
	upiRatio := upiCol[last] / upiCol[0]
	unclRatio := unclCol[last] / unclCol[0]
	if upiRatio < 2 {
		t.Fatalf("UPI should deteriorate over batches: ratio %v", upiRatio)
	}
	if upiRatio < unclRatio {
		t.Fatalf("UPI should deteriorate more than unclustered: %v vs %v", upiRatio, unclRatio)
	}
	// The fractured UPI's slowdown is the per-fracture overhead, which
	// grows roughly linearly in the number of fractures (paper: 9x
	// after 10 batches). At test scale the per-fracture open cost
	// dominates the tiny base query, so assert linear growth rather
	// than an absolute ordering against the in-place UPI (the
	// full-scale ordering is recorded by the README.md experiment notes).
	perFracture := (fracCol[last] - fracCol[0]) / 10
	for b := 1; b <= 10; b++ {
		expected := fracCol[0] + float64(b)*perFracture
		if diff := math.Abs(fracCol[b] - expected); diff > 0.3*expected+0.05 {
			t.Fatalf("fractured growth not linear at batch %d: %v vs %v", b, fracCol[b], expected)
		}
	}
}

// TestFig10Shape: merging restores performance, and the cost model
// tracks the real runtime.
func TestFig10Shape(t *testing.T) {
	exp, err := Fig10FracturedModel(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	real := getColumn(t, exp, "Real")
	est := getColumn(t, exp, "Estimated")
	// Runtime right after a merge (batch 10) is lower than right
	// before it (batch 9).
	if real[10] > real[9] {
		t.Fatalf("merge did not restore runtime: batch9=%v batch10=%v", real[9], real[10])
	}
	// Estimates correlate with reality: mean relative error bounded.
	var relErr float64
	n := 0
	for i := range real {
		if real[i] > 0.01 {
			relErr += math.Abs(est[i]-real[i]) / real[i]
			n++
		}
	}
	if n == 0 || relErr/float64(n) > 1.0 {
		t.Fatalf("cost model off: mean rel err %v over %d points", relErr/float64(n), n)
	}
}

// TestFig11Shape: estimates track real cutoff-pointer counts.
func TestFig11Shape(t *testing.T) {
	exp, err := Fig11PointerEstimate(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	real := getColumn(t, exp, "Real")
	est := getColumn(t, exp, "Estimated")
	for i := range real {
		diff := math.Abs(real[i] - est[i])
		if diff > 0.25*real[i]+10 {
			t.Fatalf("row %d (%s): real %v est %v", i, exp.Rows[i].Label, real[i], est[i])
		}
	}
}

// TestFig12Shape: the cost model reproduces the fig3 shape — flat fast
// region for QT >= C, rising penalty for QT < C.
func TestFig12Shape(t *testing.T) {
	exp, err := Fig12CutoffModel(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	col := getColumn(t, exp, "nonsel QT=0.05")
	if col[len(col)-1] < col[1] {
		t.Fatalf("model misses cutoff penalty: %v vs %v", col[1], col[len(col)-1])
	}
}

// TestTable7Shape: fractured insert ≪ unclustered insert ≪ UPI insert;
// fractured delete is near-free.
func TestTable7Shape(t *testing.T) {
	exp, err := Table7Maintenance(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 3 {
		t.Fatalf("rows: %+v", exp.Rows)
	}
	uncl, upiRow, frac := exp.Rows[0], exp.Rows[1], exp.Rows[2]
	// In-place UPI maintenance is random I/O: orders of magnitude
	// slower than the sequential alternatives (paper: 650s vs 7.8s
	// and 4.0s).
	if upiRow.Values[0] < uncl.Values[0]*10 || upiRow.Values[0] < frac.Values[0]*10 {
		t.Fatalf("UPI insert should dwarf sequential approaches: upi=%v uncl=%v frac=%v",
			upiRow.Values[0], uncl.Values[0], frac.Values[0])
	}
	// The fractured flush writes ~5x the raw bytes (duplication +
	// indexes) but stays sequential: same order of magnitude as the
	// bare heap, nowhere near the in-place UPI.
	if frac.Values[0] > uncl.Values[0]*20 {
		t.Fatalf("fractured insert should stay sequential-cheap: %v vs %v", frac.Values[0], uncl.Values[0])
	}
	// Deletes: tombstoning random heap pages is expensive; the
	// fractured delete set is a tiny sequential write (paper: 75s vs
	// 0.03s; at full scale we measure 11.5s vs 0.44s). At test scale
	// the fracture-creation overhead narrows the gap, so require a
	// strict ordering only.
	if frac.Values[1] >= uncl.Values[1] {
		t.Fatalf("fractured delete should beat unclustered delete: %v vs %v", frac.Values[1], uncl.Values[1])
	}
	if upiRow.Values[1] < frac.Values[1]*10 {
		t.Fatalf("UPI delete should dwarf fractured: %v vs %v", upiRow.Values[1], frac.Values[1])
	}
}

// TestTable8Shape: merge cost grows with database size and tracks the
// Costmerge estimate.
func TestTable8Shape(t *testing.T) {
	exp, err := Table8Merging(context.Background(), testEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 3 {
		t.Fatalf("rows: %d", len(exp.Rows))
	}
	for i := 1; i < 3; i++ {
		if exp.Rows[i].Values[1] <= exp.Rows[i-1].Values[1] {
			t.Fatalf("DB size should grow: %+v", exp.Rows)
		}
		if exp.Rows[i].Values[0] <= exp.Rows[i-1].Values[0]*0.5 {
			t.Fatalf("merge time should roughly grow: %+v", exp.Rows)
		}
	}
	for _, r := range exp.Rows {
		real, est := r.Values[0], r.Values[2]
		if est <= 0 || real <= 0 {
			t.Fatalf("degenerate merge row %+v", r)
		}
		ratio := real / est
		if ratio < 0.3 || ratio > 3 {
			t.Fatalf("merge estimate off: real=%v est=%v", real, est)
		}
	}
}
