package cupi

import (
	"context"
	"iter"
	"sort"

	"upidb/internal/heapfile"
	"upidb/internal/prob"
	"upidb/internal/tuple"
	"upidb/internal/upi"
	"upidb/internal/utree"
)

// Cursor is a pull-based result stream over the continuous UPI — the
// spatial analogue of upi.Cursor. The underlying R-Tree pages, segment
// index pages and heap fetches happen only as pulls demand them.
//
// Delivery order depends on the query class:
//
//   - A CircleCursor yields results in refinement order (R-Tree DFS
//     leaf order, which is heap order for the bulk-loaded clustered
//     region): a result is yielded the moment its heap fetch qualifies
//     it, long before the full candidate set has been integrated.
//     Circle confidences are computed, not indexed, so confidence-
//     ordered delivery would require draining the whole candidate set
//     first.
//   - A SegmentCursor yields in confidence DESC, ID ASC order — the
//     segment index's native key order — which is exactly the order
//     the materialized QuerySegment returns.
//
// The cursor takes the table's read lock on its first pull and holds
// it until exhaustion, failure or Close, so writers wait for the drain;
// never Insert into the table from the goroutine that is consuming one
// of its cursors. A Cursor is single-consumer and not safe for
// concurrent use; Close is idempotent and implied by exhaustion.
type Cursor struct {
	next  func() (Result, error, bool)
	stop  func()
	stats Stats
	err   error
	done  bool
}

// newCursor wraps a push-style body into a pull cursor (iter.Pull2:
// the body only advances while Next is being called). The body
// receives the cursor so it can update Stats between yields.
func newCursor(body func(c *Cursor, yield func(Result) bool) error) *Cursor {
	c := &Cursor{}
	seq := func(yield func(Result, error) bool) {
		if err := body(c, func(r Result) bool { return yield(r, nil) }); err != nil {
			yield(Result{}, err)
		}
	}
	c.next, c.stop = iter.Pull2(seq)
	return c
}

// Next returns the next result. ok is false when the stream is
// exhausted or failed; err is non-nil exactly once, on failure, and is
// sticky afterwards.
func (c *Cursor) Next() (r Result, ok bool, err error) {
	if c.done {
		return Result{}, false, c.err
	}
	r, err, ok = c.next()
	if !ok {
		c.done = true
		c.stop()
		return Result{}, false, nil
	}
	if err != nil {
		c.done = true
		c.err = err
		c.stop()
		return Result{}, false, err
	}
	return r, true, nil
}

// Close releases the cursor without draining it: the read lock is
// dropped and pages not yet read are never read (nor charged).
// Idempotent.
func (c *Cursor) Close() {
	if !c.done {
		c.done = true
		c.stop()
	}
}

// Stats reports what the cursor has touched so far; final once the
// cursor is exhausted, failed or closed. Updated between pulls, so
// reading it from the consuming goroutine is race-free.
func (c *Cursor) Stats() Stats { return c.stats }

// drainCursor exhausts a cursor into a canonically sorted slice — the
// bridge from the pull-based executors back to the materialized call
// shape (same results, stats and I/O as consuming the cursor).
func drainCursor(c *Cursor) ([]Result, Stats, error) {
	defer c.Close()
	var out []Result
	for {
		r, ok, err := c.Next()
		if err != nil {
			return nil, c.stats, err
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	utree.SortResults(out)
	return out, c.stats, nil
}

// CircleCursor streams a circle query: the R-Tree traversal runs
// lazily leaf by leaf (via rtree.LeafCursor), each leaf's candidates
// are PCR-filtered and fetched from the clustered heap in RowID order,
// and every qualifying observation is yielded immediately. Draining it
// produces the same result set as QueryCircle, in refinement order
// rather than confidence order (see Cursor).
func (t *Table) CircleCursor(ctx context.Context, q prob.Point, radius, threshold float64) *Cursor {
	queryMBR := queryRect(q, radius)
	return newCursor(func(c *Cursor, yield func(Result) bool) error {
		if err := upi.CtxErr(ctx); err != nil {
			return err
		}
		t.mu.RLock()
		defer t.mu.RUnlock()
		if err := t.checkOpenRLocked(); err != nil {
			return err
		}
		lc := t.rt.LeafCursor(queryMBR)
		defer lc.Close()
		seen := make(map[uint64]bool)
		for {
			hit, ok, err := lc.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := upi.CtxErr(ctx); err != nil {
				return err
			}
			// PCR-filter this leaf's matches, then fetch its survivors
			// in RowID order (contiguous for the bulk-loaded region).
			cands := t.filterLeafCandidates(hit.Matches, q, radius, threshold, seen, &c.stats, nil)
			sort.Slice(cands, func(i, j int) bool { return cands[i].rid.Less(cands[j].rid) })
			for _, cand := range cands {
				r, ok, err := t.refineCand(cand, q, radius, threshold, &c.stats)
				if err != nil {
					return err
				}
				if ok && !yield(r) {
					return nil
				}
				if err := upi.CtxErr(ctx); err != nil {
					return err
				}
			}
		}
	})
}

// SegmentCursor streams a segment PTQ in the index's native
// {confidence DESC, ID ASC} order: each index entry's heap row is
// fetched as the pull demands it (random access per row, against the
// materialized path's one sorted sweep — clustering keeps the touched
// page set small either way, which is the Figure 8 effect). Draining
// it yields exactly QuerySegment's results in exactly its order.
func (t *Table) SegmentCursor(ctx context.Context, seg string, qt float64) *Cursor {
	return newCursor(func(c *Cursor, yield func(Result) bool) error {
		if err := upi.CtxErr(ctx); err != nil {
			return err
		}
		t.mu.RLock()
		defer t.mu.RUnlock()
		if err := t.checkOpenRLocked(); err != nil {
			return err
		}
		var scanErr error
		stopped := false
		start, end := upi.ValuePrefix(seg), upi.ValuePrefixEnd(seg)
		err := t.segIdx.Scan(start, end, func(k, v []byte) bool {
			if scanErr = upi.CtxErr(ctx); scanErr != nil {
				return false
			}
			_, conf, id, err := upi.DecodeHeapKey(k)
			if err != nil {
				scanErr = err
				return false
			}
			if conf < qt {
				return false
			}
			c.stats.Candidates++
			rid, err := utree.DecodeRowID(v)
			if err != nil {
				scanErr = err
				return false
			}
			if committed, ok := t.rows[id]; !ok || committed != rid {
				return true // stale entry of a failed insert
			}
			rec, ok, err := t.heap.Get(rid)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				return true
			}
			o, err := tuple.DecodeObservation(rec)
			if err != nil {
				scanErr = err
				return false
			}
			c.stats.Fetched++
			if !yield(Result{Obs: o, Confidence: conf}) {
				stopped = true
				return false
			}
			return true
		})
		if err == nil {
			err = scanErr
		}
		if stopped {
			return nil
		}
		return err
	})
}

// ScanCircleCursor streams the SpatialFullScan plan for a circle
// query. A full scan filters in heap order with no index; to keep its
// streamed order identical to CircleCursor-style refinement order it
// simply yields in heap order, materializing nothing beyond the
// current page.
func (t *Table) ScanCircleCursor(ctx context.Context, q prob.Point, radius, threshold float64) *Cursor {
	return t.scanCursor(ctx, func(o *tuple.Observation) (float64, bool) {
		conf := o.Loc.ProbInCircle(q, radius)
		return conf, conf >= threshold
	}, true)
}

// ScanSegmentCursor streams the SpatialFullScan plan for a segment
// PTQ, in heap order. Note this differs from SegmentCursor's
// confidence order: a full scan has no confidence-sorted index to
// follow; consumers needing the canonical order should Collect.
func (t *Table) ScanSegmentCursor(ctx context.Context, seg string, qt float64) *Cursor {
	return t.scanCursor(ctx, func(o *tuple.Observation) (float64, bool) {
		conf := o.Segment.P(seg)
		return conf, conf > 0 && conf >= qt
	}, false)
}

// scanCursor streams a sequential heap scan with an in-flight filter,
// yielding qualifying observations in heap order.
func (t *Table) scanCursor(ctx context.Context, match func(*tuple.Observation) (float64, bool), integrates bool) *Cursor {
	return newCursor(func(c *Cursor, yield func(Result) bool) error {
		if err := upi.CtxErr(ctx); err != nil {
			return err
		}
		t.mu.RLock()
		defer t.mu.RUnlock()
		if err := t.checkOpenRLocked(); err != nil {
			return err
		}
		release := t.heap.Pager().PushPrefetch(64)
		defer release()
		var (
			scanErr error
			stopped bool
			n       int
		)
		err := t.heap.Scan(func(rid heapfile.RowID, rec []byte) bool {
			if n%64 == 0 {
				if scanErr = upi.CtxErr(ctx); scanErr != nil {
					return false
				}
			}
			n++
			o, derr := tuple.DecodeObservation(rec)
			if derr != nil {
				scanErr = derr
				return false
			}
			if committed, ok := t.rows[o.ID]; !ok || committed != rid {
				return true
			}
			c.stats.Fetched++
			conf, ok := match(o)
			if integrates {
				c.stats.Integrations++
			}
			if ok && !yield(Result{Obs: o, Confidence: conf}) {
				stopped = true
				return false
			}
			return true
		})
		if err == nil {
			err = scanErr
		}
		if stopped {
			return nil
		}
		return err
	})
}
