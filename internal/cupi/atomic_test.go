package cupi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"upidb/internal/prob"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// testObs builds a deterministic observation with two segment
// alternatives (so the segment-index stage of Insert has a mid-point
// to fail at).
func testObs(id uint64) *tuple.Observation {
	x := float64(id%100) * 10
	y := float64((id/100)%100) * 10
	seg, err := prob.NewDiscrete([]prob.Alternative{
		{Value: fmt.Sprintf("s%02d", id%7), Prob: 0.7},
		{Value: fmt.Sprintf("s%02d", (id+1)%7), Prob: 0.3},
	})
	if err != nil {
		panic(err)
	}
	return &tuple.Observation{
		ID:      id,
		Loc:     prob.ConstrainedGaussian{Center: prob.Point{X: x, Y: y}, Sigma: 5, Bound: 15},
		Segment: seg,
	}
}

// queryAll returns every committed observation of the table via a
// saturating circle query.
func queryAll(t *testing.T, tab *Table) map[uint64]float64 {
	t.Helper()
	rs, _, err := tab.QueryCircle(context.Background(), prob.Point{X: 500, Y: 500}, 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64]float64, len(rs))
	for _, r := range rs {
		if _, dup := out[r.Obs.ID]; dup {
			t.Fatalf("duplicate result for observation %d", r.Obs.ID)
		}
		out[r.Obs.ID] = r.Confidence
	}
	return out
}

// TestInsertAllOrNothing drives the Insert error path at every stage
// and checks the failed insert is invisible to both query paths,
// retryable, and leaves no phantom or duplicate results behind.
func TestInsertAllOrNothing(t *testing.T) {
	injected := errors.New("injected")
	for _, stage := range []string{"heap", "rtree", "seg:0", "seg:1"} {
		t.Run(stage, func(t *testing.T) {
			var base []*tuple.Observation
			for id := uint64(1); id <= 40; id++ {
				base = append(base, testObs(id))
			}
			tab, err := BulkBuild(newFS(), "a", base, Options{})
			if err != nil {
				t.Fatal(err)
			}
			o := testObs(1000)
			tab.insertFail = func(s string) error {
				if s == stage {
					return injected
				}
				return nil
			}
			if err := tab.Insert(o); !errors.Is(err, injected) {
				t.Fatalf("Insert: got %v, want injected failure", err)
			}
			// The failed insert must be invisible on both paths.
			if all := queryAll(t, tab); len(all) != 40 {
				t.Fatalf("after failed insert: %d visible observations, want 40", len(all))
			}
			for _, a := range o.Segment {
				rs, _, err := tab.QuerySegment(context.Background(), a.Value, 0)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range rs {
					if r.Obs.ID == o.ID {
						t.Fatalf("stage %s: phantom segment result for failed insert", stage)
					}
				}
			}
			// Retry without the failpoint must succeed and become
			// visible exactly once everywhere.
			tab.insertFail = nil
			if err := tab.Insert(o); err != nil {
				t.Fatalf("retry: %v", err)
			}
			all := queryAll(t, tab)
			if len(all) != 41 {
				t.Fatalf("after retry: %d visible observations, want 41", len(all))
			}
			if _, ok := all[o.ID]; !ok {
				t.Fatalf("retried insert not visible")
			}
			found := 0
			rs, _, err := tab.QuerySegment(context.Background(), o.Segment.First().Value, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rs {
				if r.Obs.ID == o.ID {
					found++
				}
			}
			if found != 1 {
				t.Fatalf("retried insert appears %d times in segment results, want 1", found)
			}
			// Full scans must agree (they see physical rows and rely on
			// the commit filter to hide the failed insert's leftovers).
			fs, _, err := tab.FullScanCircle(context.Background(), prob.Point{X: 500, Y: 500}, 1e6, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(fs) != 41 {
				t.Fatalf("full scan sees %d observations, want 41", len(fs))
			}
		})
	}
}

// TestCursorsMatchMaterialized checks every cursor against its
// materialized counterpart: same result set, and for the segment
// cursor the exact same order.
func TestCursorsMatchMaterialized(t *testing.T) {
	c := smallCartel(t, 1200)
	tab, err := BulkBuild(newFS(), "c", c.Observations[:1000], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range c.Observations[1000:] {
		if err := tab.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	q := prob.Point{X: 200, Y: -100}
	const radius, th = 400, 0.4

	drain := func(cur *Cursor) []Result {
		t.Helper()
		var out []Result
		for {
			r, ok, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return out
			}
			out = append(out, r)
		}
	}
	asSet := func(rs []Result) map[uint64]float64 {
		m := make(map[uint64]float64, len(rs))
		for _, r := range rs {
			m[r.Obs.ID] = r.Confidence
		}
		return m
	}
	sameSet := func(what string, a, b []Result) {
		t.Helper()
		sa, sb := asSet(a), asSet(b)
		if len(a) != len(b) || len(sa) != len(sb) {
			t.Fatalf("%s: %d results vs %d", what, len(a), len(b))
		}
		for id, conf := range sa {
			if bc, ok := sb[id]; !ok || math.Abs(bc-conf) > 1e-12 {
				t.Fatalf("%s: observation %d mismatch", what, id)
			}
		}
	}

	want, _, err := tab.QueryCircle(ctx, q, radius, th)
	if err != nil {
		t.Fatal(err)
	}
	sameSet("CircleCursor", drain(tab.CircleCursor(ctx, q, radius, th)), want)
	fsWant, _, err := tab.FullScanCircle(ctx, q, radius, th)
	if err != nil {
		t.Fatal(err)
	}
	sameSet("FullScanCircle vs QueryCircle", fsWant, want)
	sameSet("ScanCircleCursor", drain(tab.ScanCircleCursor(ctx, q, radius, th)), want)

	seg := c.Observations[0].Segment.First().Value
	const qt = 0.25
	segWant, _, err := tab.QuerySegment(ctx, seg, qt)
	if err != nil {
		t.Fatal(err)
	}
	segGot := drain(tab.SegmentCursor(ctx, seg, qt))
	if len(segGot) != len(segWant) {
		t.Fatalf("SegmentCursor: %d results vs %d", len(segGot), len(segWant))
	}
	for i := range segGot {
		if segGot[i].Obs.ID != segWant[i].Obs.ID || segGot[i].Confidence != segWant[i].Confidence {
			t.Fatalf("SegmentCursor order parity broken at %d: %d vs %d",
				i, segGot[i].Obs.ID, segWant[i].Obs.ID)
		}
	}
	fsSeg, _, err := tab.FullScanSegment(ctx, seg, qt)
	if err != nil {
		t.Fatal(err)
	}
	sameSet("FullScanSegment vs QuerySegment", fsSeg, segWant)
	sameSet("ScanSegmentCursor", drain(tab.ScanSegmentCursor(ctx, seg, qt)), segWant)

	// Abandoning a cursor mid-drain must release the read lock so a
	// writer can proceed.
	cur := tab.CircleCursor(ctx, q, radius, th)
	if _, ok, err := cur.Next(); err != nil || !ok {
		t.Fatalf("first pull: ok=%v err=%v", ok, err)
	}
	cur.Close()
	if err := tab.Insert(testObs(999_999)); err != nil {
		t.Fatalf("insert after abandoned cursor: %v", err)
	}
}

// TestCloseSemantics: a closed table fails every operation with
// upi.ErrClosed, including a cursor's first pull.
func TestCloseSemantics(t *testing.T) {
	c := smallCartel(t, 200)
	tab, err := BulkBuild(newFS(), "c", c.Observations, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	ctx := context.Background()
	if err := tab.Insert(testObs(1_000_000)); !errors.Is(err, upi.ErrClosed) {
		t.Fatalf("Insert after Close: %v", err)
	}
	if _, _, err := tab.QueryCircle(ctx, prob.Point{}, 100, 0.5); !errors.Is(err, upi.ErrClosed) {
		t.Fatalf("QueryCircle after Close: %v", err)
	}
	if _, _, err := tab.QuerySegment(ctx, "s", 0.5); !errors.Is(err, upi.ErrClosed) {
		t.Fatalf("QuerySegment after Close: %v", err)
	}
	if _, _, err := tab.FullScanCircle(ctx, prob.Point{}, 100, 0.5); !errors.Is(err, upi.ErrClosed) {
		t.Fatalf("FullScanCircle after Close: %v", err)
	}
	cur := tab.CircleCursor(ctx, prob.Point{}, 100, 0.5)
	if _, _, err := cur.Next(); !errors.Is(err, upi.ErrClosed) {
		t.Fatalf("cursor pull after Close: %v", err)
	}
}

// TestConcurrentInsertAndQuery is the package-level race net: inserts
// race circle and segment queries. Run with -race; against the
// pre-lock Table this fails immediately with a data-race report.
func TestConcurrentInsertAndQuery(t *testing.T) {
	var base []*tuple.Observation
	for id := uint64(1); id <= 300; id++ {
		base = append(base, testObs(id))
	}
	tab, err := BulkBuild(newFS(), "c", base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				if err := tab.Insert(testObs(uint64(10_000 + w*1000 + i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				if _, _, err := tab.QueryCircle(ctx, prob.Point{X: 300, Y: 300}, 500, 0.3); err != nil {
					errs <- err
					return
				}
				if _, _, err := tab.QuerySegment(ctx, "s03", 0.2); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if all := queryAll(t, tab); len(all) != 300+2*150 {
		t.Fatalf("final count %d, want %d", len(all), 300+2*150)
	}
}

// TestFailedInsertRetryWithNewLocation: an insert that fails after the
// R-Tree stage leaves a stale entry for the old location; a retry of
// the same ID with a *different* location must not let the stale
// entry's PCR decision (or its dedup slot) leak wrong results into
// circle queries around either location.
func TestFailedInsertRetryWithNewLocation(t *testing.T) {
	var base []*tuple.Observation
	for id := uint64(1); id <= 30; id++ {
		base = append(base, testObs(id))
	}
	tab, err := BulkBuild(newFS(), "a", base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected")
	oldLoc := prob.ConstrainedGaussian{Center: prob.Point{X: 5000, Y: 5000}, Sigma: 2, Bound: 6}
	o := testObs(777)
	o.Loc = oldLoc
	tab.insertFail = func(s string) error {
		if s == "seg:0" {
			return injected
		}
		return nil
	}
	if err := tab.Insert(o); !errors.Is(err, injected) {
		t.Fatalf("Insert: %v", err)
	}
	tab.insertFail = nil
	// Retry far away from the stale entry's location.
	o2 := testObs(777)
	o2.Loc = prob.ConstrainedGaussian{Center: prob.Point{X: 8000, Y: 8000}, Sigma: 2, Bound: 6}
	if err := tab.Insert(o2); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// A tight query around the OLD location: the stale R-Tree entry is
	// a PCR-accept there, but the committed observation is far away and
	// must not appear.
	rs, _, err := tab.QueryCircle(ctx, prob.Point{X: 5000, Y: 5000}, 50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Obs.ID == 777 {
			t.Fatalf("relocated observation leaked into a query around its failed insert's location (conf %v)", r.Confidence)
		}
	}
	// Around the NEW location it must appear exactly once.
	rs, _, err = tab.QueryCircle(ctx, prob.Point{X: 8000, Y: 8000}, 50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, r := range rs {
		if r.Obs.ID == 777 {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("relocated observation found %d times around its committed location, want 1", found)
	}
	// The streaming path applies the same stale-entry discipline.
	cur := tab.CircleCursor(ctx, prob.Point{X: 5000, Y: 5000}, 50, 0.5)
	for {
		r, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if r.Obs.ID == 777 {
			t.Fatalf("relocated observation leaked into the streamed query")
		}
	}
}
