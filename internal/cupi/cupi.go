// Package cupi implements the Continuous UPI of paper Section 5: a
// primary index for uncertain 2-D attributes built on top of a U-Tree.
//
// The R-Tree (small 4 KiB node pages) indexes uncertainty-region MBRs
// with embedded PCRs; a separate heap file with large 64 KiB pages
// stores the observations clustered by the hierarchical location of
// their R-Tree leaf: the heap is written in DFS leaf order, so tuples
// of one leaf share a heap page and neighboring leaves occupy
// neighboring pages ("which achieves sequential access similar to a
// primary index as long as the R-Tree nodes are clustered well").
//
// A secondary index on the uncertain road-segment attribute points
// into this clustered heap; because segment and location are
// correlated, its pointer targets cluster into few heap pages, which
// is the effect Figure 8 measures.
//
// # Concurrency
//
// A Table is safe for concurrent use: queries take a read lock for
// their whole traversal (the R-Tree, segment index and heap are
// mutated in place, so unlike the fractured store there is no
// immutable partition snapshot to scan outside the lock), Insert takes
// the write lock. Readers run in parallel. A streaming cursor
// (CircleCursor, SegmentCursor) holds the read lock from its first
// pull until it is exhausted, failed or closed — so a slow stream
// consumer delays writers, and once a writer is waiting, new queries
// queue behind it (Go's RWMutex blocks later readers behind a pending
// writer) until the stream finishes. Always Close an abandoned cursor:
// a cursor dropped mid-drain without Close holds the read lock forever
// and wedges every subsequent Insert, Flush and Close. A goroutine
// must not Insert into the table while it is itself mid-drain on one
// of the table's cursors (self-deadlock). Lock-free streaming via an
// immutable-root R-Tree is a recorded ROADMAP follow-on.
//
// # Insert atomicity
//
// Insert is all-or-nothing with respect to queries: the rows map is
// the commit point, written only after the heap append and every index
// insert succeeded. Both query paths ignore physical artifacts that
// are not committed in rows (R-Tree entries and heap rows of a failed
// insert are invisible; stale segment-index entries are filtered by
// RowID mismatch), so a failed Insert leaves no phantom results and
// does not block a retry of the same observation ID.
package cupi

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"upidb/internal/btree"
	"upidb/internal/heapfile"
	"upidb/internal/keyenc"
	"upidb/internal/prob"
	"upidb/internal/rtree"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
	"upidb/internal/utree"
)

// Options configure a continuous UPI.
type Options struct {
	// NodePageSize is the R-Tree node page size (default 4 KiB,
	// paper Figure 2).
	NodePageSize int
	// HeapPageSize is the clustered heap page size (default 64 KiB,
	// paper Figure 2).
	HeapPageSize int
	CachePages   int
}

func (o Options) withDefaults() Options {
	if o.NodePageSize == 0 {
		o.NodePageSize = storage.RTreePageSize
	}
	if o.HeapPageSize == 0 {
		o.HeapPageSize = storage.HeapPageSize
	}
	if o.CachePages == 0 {
		o.CachePages = storage.DefaultCachePages
	}
	return o
}

// Table is a continuous UPI with a secondary index on the uncertain
// segment attribute. Safe for concurrent use (see the package comment
// for the locking discipline).
type Table struct {
	fs   *storage.FS
	name string
	opts Options

	// mu guards everything below: the trees and the heap are mutated
	// in place by Insert, so queries hold the read lock for their whole
	// traversal and Insert holds the write lock.
	mu     sync.RWMutex
	closed bool
	rt     *rtree.Tree
	heap   *heapfile.Heap
	segIdx *btree.Tree
	rows   map[uint64]heapfile.RowID

	// insertFail, when set (tests only), injects an error after the
	// named insert stage: "heap", "rtree", "seg:<i>".
	insertFail func(stage string) error
}

// Result is one query answer.
type Result = utree.Result

// Stats aliases the U-Tree query statistics.
type Stats = utree.Stats

// BulkBuild loads observations into a new continuous UPI: STR R-Tree
// first, then the heap written in DFS leaf order, then the segment
// index bulk-loaded.
func BulkBuild(fs *storage.FS, name string, obs []*tuple.Observation, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{fs: fs, name: name, opts: opts, rows: make(map[uint64]heapfile.RowID, len(obs))}

	byID := make(map[uint64]*tuple.Observation, len(obs))
	entries := make([]rtree.Entry, 0, len(obs))
	for _, o := range obs {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if _, dup := byID[o.ID]; dup {
			return nil, fmt.Errorf("cupi: duplicate observation ID %d", o.ID)
		}
		byID[o.ID] = o
		entries = append(entries, rtree.Entry{MBR: o.Loc.MBR(), Data: o.ID, Aux: utree.PCRAux(o.Loc)})
	}

	np, err := storage.NewPager(fs.Create(name+".cupi.rtree"), opts.NodePageSize)
	if err != nil {
		return nil, err
	}
	if err := np.SetCacheLimit(opts.CachePages); err != nil {
		return nil, err
	}
	if t.rt, err = rtree.Create(np); err != nil {
		return nil, err
	}
	if err := t.rt.BulkLoad(entries); err != nil {
		return nil, err
	}

	// Heap: append in DFS leaf order — the clustering step.
	hp, err := storage.NewPager(fs.Create(name+".cupi.heap"), opts.HeapPageSize)
	if err != nil {
		return nil, err
	}
	if err := hp.SetCacheLimit(opts.CachePages); err != nil {
		return nil, err
	}
	if t.heap, err = heapfile.Create(hp); err != nil {
		return nil, err
	}
	err = t.rt.Leaves(func(_ storage.PageID, es []rtree.Entry) bool {
		for _, e := range es {
			o := byID[e.Data]
			rid, aerr := t.heap.Append(tuple.EncodeObservation(o))
			if aerr != nil {
				err = aerr
				return false
			}
			t.rows[o.ID] = rid
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	// Segment secondary index: {segment, conf DESC, id} -> RowID.
	type segEntry struct {
		key []byte
		rid heapfile.RowID
	}
	var segs []segEntry
	for _, o := range obs {
		for _, a := range o.Segment {
			segs = append(segs, segEntry{
				key: upi.HeapKey(a.Value, a.Prob, o.ID),
				rid: t.rows[o.ID],
			})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return keyenc.Compare(segs[i].key, segs[j].key) < 0 })
	sp, err := storage.NewPager(fs.Create(name+".cupi.seg"), storage.DefaultPageSize)
	if err != nil {
		return nil, err
	}
	if err := sp.SetCacheLimit(opts.CachePages); err != nil {
		return nil, err
	}
	sb, err := btree.NewBuilder(sp)
	if err != nil {
		return nil, err
	}
	for _, s := range segs {
		if err := sb.Add(s.key, utree.EncodeRowID(s.rid)); err != nil {
			return nil, err
		}
	}
	if t.segIdx, err = sb.Finish(); err != nil {
		return nil, err
	}
	if err := t.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}

// failpoint fires the injected insert failure for one stage.
func (t *Table) failpoint(stage string) error {
	if t.insertFail == nil {
		return nil
	}
	return t.insertFail(stage)
}

// Insert adds one observation after the initial load. The R-Tree
// grows normally; the observation is appended at the heap tail (an
// overflow region), so clustering degrades gradually until a rebuild —
// the continuous analogue of fragmentation.
//
// Insert is all-or-nothing: the rows map (the commit point both query
// paths consult) is written last, and a failure in any index insert
// unwinds the segment-index entries already written. Physical leftovers
// of a failed insert — a heap row and possibly an R-Tree entry — are
// invisible to queries and are overwritten or superseded when the same
// observation is inserted again.
func (t *Table) Insert(o *tuple.Observation) error {
	if err := o.Validate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return upi.ErrClosed
	}
	if _, dup := t.rows[o.ID]; dup {
		return fmt.Errorf("cupi: duplicate observation ID %d", o.ID)
	}
	rid, err := t.heap.Append(tuple.EncodeObservation(o))
	if err != nil {
		return err
	}
	if err := t.failpoint("heap"); err != nil {
		return err
	}
	if err := t.rt.Insert(rtree.Entry{MBR: o.Loc.MBR(), Data: o.ID, Aux: utree.PCRAux(o.Loc)}); err != nil {
		return err
	}
	if err := t.failpoint("rtree"); err != nil {
		return err
	}
	for i, a := range o.Segment {
		err := t.failpoint(fmt.Sprintf("seg:%d", i))
		if err == nil {
			_, err = t.segIdx.Put(upi.HeapKey(a.Value, a.Prob, o.ID), utree.EncodeRowID(rid))
		}
		if err != nil {
			// Unwind the entries already written so the index never
			// points at an uncommitted heap row; the RowID commit
			// filter in the query paths backstops a failed unwind.
			for _, b := range o.Segment[:i] {
				_, _ = t.segIdx.Delete(upi.HeapKey(b.Value, b.Prob, o.ID))
			}
			return err
		}
	}
	t.rows[o.ID] = rid // commit point: the insert becomes visible
	return nil
}

// Close marks the table closed: every subsequent query, cursor pull
// and Insert fails with upi.ErrClosed. In-flight queries (which hold
// the read lock) finish normally first. Closing twice is safe.
func (t *Table) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	return nil
}

// Closed reports whether the table has been closed.
func (t *Table) Closed() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.closed
}

// checkOpenRLocked fails with ErrClosed once the table is closed. The
// caller holds at least the read lock.
func (t *Table) checkOpenRLocked() error {
	if t.closed {
		return upi.ErrClosed
	}
	return nil
}

// RTree exposes the R-Tree. Intended for bulk-load-time inspection;
// direct traversals are not synchronized with concurrent inserts.
func (t *Table) RTree() *rtree.Tree { return t.rt }

// Heap exposes the clustered heap file (same caveat as RTree).
func (t *Table) Heap() *heapfile.Heap { return t.heap }

// SegmentIndex exposes the secondary index tree (same caveat as RTree).
func (t *Table) SegmentIndex() *btree.Tree { return t.segIdx }

// Name returns the table name files are derived from.
func (t *Table) Name() string { return t.name }

// Files lists the table's on-disk files, the routing set for
// per-query tape accounting.
func (t *Table) Files() []string {
	return []string{t.name + ".cupi.rtree", t.name + ".cupi.heap", t.name + ".cupi.seg"}
}

// Geometry is a snapshot of the table's physical shape — the inputs
// the spatial planner's cost formulas need.
type Geometry struct {
	// Observations is the number of committed observations.
	Observations int64
	// RTreeHeight is the R-Tree height (1 = root is a leaf);
	// RTreeFanout the node capacity in entries.
	RTreeHeight int
	RTreeFanout int
	// NodePageSize and HeapPageSize are the configured page sizes.
	NodePageSize int
	HeapPageSize int
	// HeapBytes and SegBytes are the on-disk file sizes.
	HeapBytes int64
	SegBytes  int64
	// SegHeight is the segment B-Tree height.
	SegHeight int
}

// Geometry returns the current physical shape of the table.
func (t *Table) Geometry() Geometry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return Geometry{
		Observations: int64(len(t.rows)),
		RTreeHeight:  t.rt.Height(),
		RTreeFanout:  t.rt.MaxEntries(),
		NodePageSize: t.opts.NodePageSize,
		HeapPageSize: t.opts.HeapPageSize,
		HeapBytes:    t.fs.Size(t.name + ".cupi.heap"),
		SegBytes:     t.fs.Size(t.name + ".cupi.seg"),
		SegHeight:    t.segIdx.Height(),
	}
}

// SizeBytes returns the total on-disk size.
func (t *Table) SizeBytes() int64 {
	return t.fs.Size(t.name+".cupi.rtree") + t.fs.Size(t.name+".cupi.heap") + t.fs.Size(t.name+".cupi.seg")
}

// Flush writes all dirty pages.
func (t *Table) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.heap.Pager().Flush(); err != nil {
		return err
	}
	if err := t.rt.Pager().Flush(); err != nil {
		return err
	}
	return t.segIdx.Pager().Flush()
}

// DropCaches empties all buffer pools (cold-cache state).
func (t *Table) DropCaches() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.heap.Pager().DropCache(); err != nil {
		return err
	}
	if err := t.rt.Pager().DropCache(); err != nil {
		return err
	}
	return t.segIdx.Pager().DropCache()
}

// queryRect is the MBR of a circle query.
func queryRect(q prob.Point, radius float64) prob.Rect {
	return prob.Rect{MinX: q.X - radius, MinY: q.Y - radius, MaxX: q.X + radius, MaxY: q.Y + radius}
}

// circleCand is one R-Tree candidate of a circle query. mbr is the
// R-Tree entry's rectangle: refineCand only honors a PCR accept when
// it matches the fetched observation's own MBR, so an accept computed
// from a stale entry (leftover of a failed insert, later retried with
// a different location) can never suppress the exact threshold check.
type circleCand struct {
	rid      heapfile.RowID
	mbr      prob.Rect
	accepted bool
}

// filterLeafCandidates applies the PCR filter, the committed-rows
// filter and the retried-insert dedup (seen) to one leaf's matching
// entries, appending the survivors — with their entry MBR captured for
// refineCand's stale-accept guard — to cands. The caller holds the
// read lock. Shared by the materialized QueryCircle and the streaming
// CircleCursor so both apply exactly the same candidate discipline.
func (t *Table) filterLeafCandidates(es []rtree.Entry, q prob.Point, radius, threshold float64, seen map[uint64]bool, stats *Stats, cands []circleCand) []circleCand {
	for _, e := range es {
		stats.Candidates++
		decision := utree.CheckPCR(e.MBR.Center(), e.Aux, q, radius, threshold)
		if decision == utree.PCRReject {
			stats.PCRRejected++
			continue
		}
		if decision == utree.PCRAccept {
			stats.PCRAccepted++
		}
		rid, ok := t.rows[e.Data]
		if !ok || seen[e.Data] {
			continue
		}
		seen[e.Data] = true
		cands = append(cands, circleCand{rid: rid, mbr: e.MBR, accepted: decision == utree.PCRAccept})
	}
	return cands
}

// circleCandidates runs the R-Tree traversal + PCR filter phase of a
// circle query under the read lock the caller holds.
func (t *Table) circleCandidates(ctx context.Context, queryMBR prob.Rect, q prob.Point, radius, threshold float64, stats *Stats) ([]circleCand, error) {
	var (
		cands  []circleCand
		seen   = make(map[uint64]bool)
		ctxErr error
	)
	err := t.rt.SearchLeaves(queryMBR, func(_ storage.PageID, es []rtree.Entry) bool {
		if ctxErr = upi.CtxErr(ctx); ctxErr != nil {
			return false
		}
		cands = t.filterLeafCandidates(es, q, radius, threshold, seen, stats, cands)
		return true
	})
	if err == nil {
		err = ctxErr
	}
	return cands, err
}

// refineCand fetches one candidate and computes its exact confidence.
// ok is false when the row vanished or the confidence is below the
// threshold.
func (t *Table) refineCand(c circleCand, q prob.Point, radius, threshold float64, stats *Stats) (Result, bool, error) {
	rec, ok, err := t.heap.Get(c.rid)
	if err != nil || !ok {
		return Result{}, false, err
	}
	stats.Fetched++
	o, err := tuple.DecodeObservation(rec)
	if err != nil {
		return Result{}, false, err
	}
	conf := o.Loc.ProbInCircle(q, radius)
	if !c.accepted || c.mbr != o.Loc.MBR() {
		if !c.accepted {
			stats.Integrations++
		}
		if conf < threshold {
			return Result{}, false, nil
		}
	}
	return Result{Obs: o, Confidence: conf}, true, nil
}

// QueryCircle answers the paper's Query 4 on the continuous UPI:
// observations within radius of q with appearance probability >=
// threshold. Traversal groups candidates by R-Tree leaf; because the
// heap is clustered in leaf order, the fetch phase reads a compact,
// mostly sequential run of heap pages. The context is checked between
// R-Tree leaves and between heap fetches; a cancelled query returns
// upi.ErrCanceled. Results are sorted by confidence DESC, ID ASC.
func (t *Table) QueryCircle(ctx context.Context, q prob.Point, radius, threshold float64) ([]Result, Stats, error) {
	var stats Stats
	if err := upi.CtxErr(ctx); err != nil {
		return nil, stats, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.checkOpenRLocked(); err != nil {
		return nil, stats, err
	}
	cands, err := t.circleCandidates(ctx, queryRect(q, radius), q, radius, threshold, &stats)
	if err != nil {
		return nil, stats, err
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].rid.Less(cands[j].rid) })
	var results []Result
	for i, c := range cands {
		if i%64 == 0 {
			if err := upi.CtxErr(ctx); err != nil {
				return nil, stats, err
			}
		}
		r, ok, err := t.refineCand(c, q, radius, threshold, &stats)
		if err != nil {
			return nil, stats, err
		}
		if ok {
			results = append(results, r)
		}
	}
	utree.SortResults(results)
	return results, stats, nil
}

// segEntry is one collected segment-index entry: the heap row it
// points at plus the confidence encoded in its own key. Keeping the
// confidence per entry (not per observation ID) means a stale entry
// left by a failed insert whose unwind also failed can never clobber
// the committed entry's confidence — the stale RowID is simply
// filtered at fetch time.
type segEntry struct {
	rid  heapfile.RowID
	id   uint64
	conf float64
}

// scanSegment collects the index entries for one segment value above
// qt under the read lock the caller holds.
func (t *Table) scanSegment(seg string, qt float64) ([]segEntry, error) {
	var (
		entries []segEntry
		scanErr error
	)
	start, end := upi.ValuePrefix(seg), upi.ValuePrefixEnd(seg)
	err := t.segIdx.Scan(start, end, func(k, v []byte) bool {
		_, conf, id, err := upi.DecodeHeapKey(k)
		if err != nil {
			scanErr = err
			return false
		}
		if conf < qt {
			return false
		}
		rid, err := utree.DecodeRowID(v)
		if err != nil {
			scanErr = err
			return false
		}
		entries = append(entries, segEntry{rid: rid, id: id, conf: conf})
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// fetchSegment fetches committed observations for the collected
// segment-index entries in heap (physical) order and attaches each
// entry's own confidence. Entries whose RowID does not match the
// committed row for their observation ID are stale artifacts of a
// failed insert and are skipped.
func (t *Table) fetchSegment(ctx context.Context, entries []segEntry, stats *Stats) ([]Result, error) {
	sorted := append([]segEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].rid.Less(sorted[j].rid) })
	var results []Result
	for i, e := range sorted {
		if i%64 == 0 {
			if err := upi.CtxErr(ctx); err != nil {
				return nil, err
			}
		}
		if committed, ok := t.rows[e.id]; !ok || committed != e.rid {
			continue
		}
		rec, ok, err := t.heap.Get(e.rid)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		o, err := tuple.DecodeObservation(rec)
		if err != nil {
			return nil, err
		}
		stats.Fetched++
		results = append(results, Result{Obs: o, Confidence: e.conf})
	}
	utree.SortResults(results)
	return results, nil
}

// QuerySegment answers the paper's Query 5: observations whose
// uncertain road segment equals seg with probability >= qt, via the
// secondary index into the clustered heap. The context is checked
// before the index scan and between heap fetches. Stats reports the
// index entries scanned (Candidates) and heap records fetched.
func (t *Table) QuerySegment(ctx context.Context, seg string, qt float64) ([]Result, Stats, error) {
	var stats Stats
	if err := upi.CtxErr(ctx); err != nil {
		return nil, stats, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.checkOpenRLocked(); err != nil {
		return nil, stats, err
	}
	entries, err := t.scanSegment(seg, qt)
	if err != nil {
		return nil, stats, err
	}
	stats.Candidates = len(entries)
	if err := upi.CtxErr(ctx); err != nil {
		return nil, stats, err
	}
	rs, err := t.fetchSegment(ctx, entries, &stats)
	if err != nil {
		return nil, stats, err
	}
	return rs, stats, nil
}

// FullScanCircle answers a circle query by scanning the whole heap
// sequentially and integrating every committed observation — the
// physical form of the spatial planner's SpatialFullScan plan, which
// wins once a query region covers most of the extent and the R-Tree
// probe would touch nearly every leaf anyway. It is the materialized
// drain of ScanCircleCursor, byte-identical in results, stats and I/O.
func (t *Table) FullScanCircle(ctx context.Context, q prob.Point, radius, threshold float64) ([]Result, Stats, error) {
	return drainCursor(t.ScanCircleCursor(ctx, q, radius, threshold))
}

// FullScanSegment answers a segment PTQ by scanning the whole heap
// sequentially, without touching the segment index. It is the
// materialized drain of ScanSegmentCursor.
func (t *Table) FullScanSegment(ctx context.Context, seg string, qt float64) ([]Result, Stats, error) {
	return drainCursor(t.ScanSegmentCursor(ctx, seg, qt))
}
