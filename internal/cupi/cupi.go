// Package cupi implements the Continuous UPI of paper Section 5: a
// primary index for uncertain 2-D attributes built on top of a U-Tree.
//
// The R-Tree (small 4 KiB node pages) indexes uncertainty-region MBRs
// with embedded PCRs; a separate heap file with large 64 KiB pages
// stores the observations clustered by the hierarchical location of
// their R-Tree leaf: the heap is written in DFS leaf order, so tuples
// of one leaf share a heap page and neighboring leaves occupy
// neighboring pages ("which achieves sequential access similar to a
// primary index as long as the R-Tree nodes are clustered well").
//
// A secondary index on the uncertain road-segment attribute points
// into this clustered heap; because segment and location are
// correlated, its pointer targets cluster into few heap pages, which
// is the effect Figure 8 measures.
package cupi

import (
	"context"
	"fmt"
	"sort"

	"upidb/internal/btree"
	"upidb/internal/heapfile"
	"upidb/internal/keyenc"
	"upidb/internal/prob"
	"upidb/internal/rtree"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
	"upidb/internal/utree"
)

// Options configure a continuous UPI.
type Options struct {
	// NodePageSize is the R-Tree node page size (default 4 KiB,
	// paper Figure 2).
	NodePageSize int
	// HeapPageSize is the clustered heap page size (default 64 KiB,
	// paper Figure 2).
	HeapPageSize int
	CachePages   int
}

func (o Options) withDefaults() Options {
	if o.NodePageSize == 0 {
		o.NodePageSize = storage.RTreePageSize
	}
	if o.HeapPageSize == 0 {
		o.HeapPageSize = storage.HeapPageSize
	}
	if o.CachePages == 0 {
		o.CachePages = storage.DefaultCachePages
	}
	return o
}

// Table is a continuous UPI with a secondary index on the uncertain
// segment attribute. Not safe for concurrent use.
type Table struct {
	fs   *storage.FS
	name string
	opts Options

	rt     *rtree.Tree
	heap   *heapfile.Heap
	segIdx *btree.Tree
	rows   map[uint64]heapfile.RowID
}

// Result is one query answer.
type Result = utree.Result

// Stats aliases the U-Tree query statistics.
type Stats = utree.Stats

// BulkBuild loads observations into a new continuous UPI: STR R-Tree
// first, then the heap written in DFS leaf order, then the segment
// index bulk-loaded.
func BulkBuild(fs *storage.FS, name string, obs []*tuple.Observation, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	t := &Table{fs: fs, name: name, opts: opts, rows: make(map[uint64]heapfile.RowID, len(obs))}

	byID := make(map[uint64]*tuple.Observation, len(obs))
	entries := make([]rtree.Entry, 0, len(obs))
	for _, o := range obs {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if _, dup := byID[o.ID]; dup {
			return nil, fmt.Errorf("cupi: duplicate observation ID %d", o.ID)
		}
		byID[o.ID] = o
		entries = append(entries, rtree.Entry{MBR: o.Loc.MBR(), Data: o.ID, Aux: utree.PCRAux(o.Loc)})
	}

	np, err := storage.NewPager(fs.Create(name+".cupi.rtree"), opts.NodePageSize)
	if err != nil {
		return nil, err
	}
	if err := np.SetCacheLimit(opts.CachePages); err != nil {
		return nil, err
	}
	if t.rt, err = rtree.Create(np); err != nil {
		return nil, err
	}
	if err := t.rt.BulkLoad(entries); err != nil {
		return nil, err
	}

	// Heap: append in DFS leaf order — the clustering step.
	hp, err := storage.NewPager(fs.Create(name+".cupi.heap"), opts.HeapPageSize)
	if err != nil {
		return nil, err
	}
	if err := hp.SetCacheLimit(opts.CachePages); err != nil {
		return nil, err
	}
	if t.heap, err = heapfile.Create(hp); err != nil {
		return nil, err
	}
	err = t.rt.Leaves(func(_ storage.PageID, es []rtree.Entry) bool {
		for _, e := range es {
			o := byID[e.Data]
			rid, aerr := t.heap.Append(tuple.EncodeObservation(o))
			if aerr != nil {
				err = aerr
				return false
			}
			t.rows[o.ID] = rid
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	// Segment secondary index: {segment, conf DESC, id} -> RowID.
	type segEntry struct {
		key []byte
		rid heapfile.RowID
	}
	var segs []segEntry
	for _, o := range obs {
		for _, a := range o.Segment {
			segs = append(segs, segEntry{
				key: upi.HeapKey(a.Value, a.Prob, o.ID),
				rid: t.rows[o.ID],
			})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return keyenc.Compare(segs[i].key, segs[j].key) < 0 })
	sp, err := storage.NewPager(fs.Create(name+".cupi.seg"), storage.DefaultPageSize)
	if err != nil {
		return nil, err
	}
	if err := sp.SetCacheLimit(opts.CachePages); err != nil {
		return nil, err
	}
	sb, err := btree.NewBuilder(sp)
	if err != nil {
		return nil, err
	}
	for _, s := range segs {
		if err := sb.Add(s.key, utree.EncodeRowID(s.rid)); err != nil {
			return nil, err
		}
	}
	if t.segIdx, err = sb.Finish(); err != nil {
		return nil, err
	}
	if err := t.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}

// Insert adds one observation after the initial load. The R-Tree
// grows normally; the observation is appended at the heap tail (an
// overflow region), so clustering degrades gradually until a rebuild —
// the continuous analogue of fragmentation.
func (t *Table) Insert(o *tuple.Observation) error {
	if err := o.Validate(); err != nil {
		return err
	}
	if _, dup := t.rows[o.ID]; dup {
		return fmt.Errorf("cupi: duplicate observation ID %d", o.ID)
	}
	rid, err := t.heap.Append(tuple.EncodeObservation(o))
	if err != nil {
		return err
	}
	t.rows[o.ID] = rid
	if err := t.rt.Insert(rtree.Entry{MBR: o.Loc.MBR(), Data: o.ID, Aux: utree.PCRAux(o.Loc)}); err != nil {
		return err
	}
	for _, a := range o.Segment {
		if _, err := t.segIdx.Put(upi.HeapKey(a.Value, a.Prob, o.ID), utree.EncodeRowID(rid)); err != nil {
			return err
		}
	}
	return nil
}

// RTree exposes the R-Tree.
func (t *Table) RTree() *rtree.Tree { return t.rt }

// Heap exposes the clustered heap file.
func (t *Table) Heap() *heapfile.Heap { return t.heap }

// SegmentIndex exposes the secondary index tree.
func (t *Table) SegmentIndex() *btree.Tree { return t.segIdx }

// SizeBytes returns the total on-disk size.
func (t *Table) SizeBytes() int64 {
	return t.fs.Size(t.name+".cupi.rtree") + t.fs.Size(t.name+".cupi.heap") + t.fs.Size(t.name+".cupi.seg")
}

// Flush writes all dirty pages.
func (t *Table) Flush() error {
	if err := t.heap.Pager().Flush(); err != nil {
		return err
	}
	if err := t.rt.Pager().Flush(); err != nil {
		return err
	}
	return t.segIdx.Pager().Flush()
}

// DropCaches empties all buffer pools (cold-cache state).
func (t *Table) DropCaches() error {
	if err := t.heap.Pager().DropCache(); err != nil {
		return err
	}
	if err := t.rt.Pager().DropCache(); err != nil {
		return err
	}
	return t.segIdx.Pager().DropCache()
}

// QueryCircle answers the paper's Query 4 on the continuous UPI:
// observations within radius of q with appearance probability >=
// threshold. Traversal groups candidates by R-Tree leaf; because the
// heap is clustered in leaf order, the fetch phase reads a compact,
// mostly sequential run of heap pages. The context is checked between
// R-Tree leaves and between heap fetches; a cancelled query returns
// upi.ErrCanceled.
func (t *Table) QueryCircle(ctx context.Context, q prob.Point, radius, threshold float64) ([]Result, Stats, error) {
	var stats Stats
	if err := upi.CtxErr(ctx); err != nil {
		return nil, stats, err
	}
	queryMBR := prob.Rect{MinX: q.X - radius, MinY: q.Y - radius, MaxX: q.X + radius, MaxY: q.Y + radius}
	type cand struct {
		rid      heapfile.RowID
		accepted bool
	}
	var cands []cand
	var ctxErr error
	err := t.rt.SearchLeaves(queryMBR, func(_ storage.PageID, es []rtree.Entry) bool {
		if ctxErr = upi.CtxErr(ctx); ctxErr != nil {
			return false
		}
		for _, e := range es {
			stats.Candidates++
			decision := utree.CheckPCR(e.MBR.Center(), e.Aux, q, radius, threshold)
			if decision == utree.PCRReject {
				stats.PCRRejected++
				continue
			}
			if decision == utree.PCRAccept {
				stats.PCRAccepted++
			}
			rid, ok := t.rows[e.Data]
			if !ok {
				continue
			}
			cands = append(cands, cand{rid: rid, accepted: decision == utree.PCRAccept})
		}
		return true
	})
	if err == nil {
		err = ctxErr
	}
	if err != nil {
		return nil, stats, err
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].rid.Less(cands[j].rid) })
	var results []Result
	for i, c := range cands {
		if i%64 == 0 {
			if err := upi.CtxErr(ctx); err != nil {
				return nil, stats, err
			}
		}
		rec, ok, err := t.heap.Get(c.rid)
		if err != nil {
			return nil, stats, err
		}
		if !ok {
			continue
		}
		stats.Fetched++
		o, err := tuple.DecodeObservation(rec)
		if err != nil {
			return nil, stats, err
		}
		conf := o.Loc.ProbInCircle(q, radius)
		if !c.accepted {
			stats.Integrations++
			if conf < threshold {
				continue
			}
		}
		results = append(results, Result{Obs: o, Confidence: conf})
	}
	utree.SortResults(results)
	return results, stats, nil
}

// QuerySegment answers the paper's Query 5: observations whose
// uncertain road segment equals seg with probability >= qt, via the
// secondary index into the clustered heap. The context is checked
// before the index scan and before the heap fetch phase.
func (t *Table) QuerySegment(ctx context.Context, seg string, qt float64) ([]Result, error) {
	if err := upi.CtxErr(ctx); err != nil {
		return nil, err
	}
	rids, confs, err := utree.ScanSegmentIndex(t.segIdx, seg, qt)
	if err != nil {
		return nil, err
	}
	if err := upi.CtxErr(ctx); err != nil {
		return nil, err
	}
	return utree.FetchSegmentResults(t.heap, rids, confs)
}
