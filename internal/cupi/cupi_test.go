package cupi

import (
	"context"
	"math"
	"testing"

	"upidb/internal/dataset"
	"upidb/internal/heapfile"
	"upidb/internal/prob"
	"upidb/internal/rtree"
	"upidb/internal/sim"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/utree"
)

func newFS() *storage.FS { return storage.NewFS(sim.NewDisk(sim.DefaultParams())) }

func smallCartel(t *testing.T, n int) *dataset.Cartel {
	t.Helper()
	cfg := dataset.DefaultCartelConfig()
	cfg.Observations = n
	cfg.GridN = 8
	c, err := dataset.GenerateCartel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func bruteQuery(obs []*tuple.Observation, q prob.Point, radius, threshold float64) map[uint64]float64 {
	out := make(map[uint64]float64)
	for _, o := range obs {
		if p := o.Loc.ProbInCircle(q, radius); p >= threshold {
			out[o.ID] = p
		}
	}
	return out
}

func TestQueryCircleMatchesBrute(t *testing.T) {
	c := smallCartel(t, 1500)
	tab, err := BulkBuild(newFS(), "c", c.Observations, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []prob.Point{{X: 0, Y: 0}, {X: 400, Y: 300}} {
		for _, radius := range []float64{150, 400} {
			for _, th := range []float64{0.3, 0.6} {
				want := bruteQuery(c.Observations, q, radius, th)
				got, _, err := tab.QueryCircle(context.Background(), q, radius, th)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("q=%+v r=%v th=%v: got %d want %d", q, radius, th, len(got), len(want))
				}
				for _, r := range got {
					if w, ok := want[r.Obs.ID]; !ok || math.Abs(w-r.Confidence) > 1e-9 {
						t.Fatalf("result %d mismatch", r.Obs.ID)
					}
				}
			}
		}
	}
}

// TestCUPIAgreesWithUTree: same answers, different I/O profile.
func TestCUPIAgreesWithUTree(t *testing.T) {
	c := smallCartel(t, 1000)
	cu, err := BulkBuild(newFS(), "c", c.Observations, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ut, err := utree.BulkBuild(newFS(), "u", c.Observations, utree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := prob.Point{X: 100, Y: -100}
	a, _, err := cu.QueryCircle(context.Background(), q, 350, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ut.QueryCircle(q, 350, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("answer sizes: cupi %d vs utree %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Obs.ID != b[i].Obs.ID {
			t.Fatalf("result %d differs: %d vs %d", i, a[i].Obs.ID, b[i].Obs.ID)
		}
	}
}

// TestFig7Property: the continuous UPI must answer circle queries with
// far less modeled I/O time than the secondary U-Tree (paper Figure 7:
// 50-60× on the real datasets).
func TestFig7Property(t *testing.T) {
	cfg := dataset.DefaultCartelConfig()
	cfg.Observations = 20000
	cfg.GridN = 20
	c, err := dataset.GenerateCartel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cuDisk := sim.NewDisk(sim.DefaultParams())
	cu, err := BulkBuild(storage.NewFS(cuDisk), "c", c.Observations, Options{})
	if err != nil {
		t.Fatal(err)
	}
	utDisk := sim.NewDisk(sim.DefaultParams())
	ut, err := utree.BulkBuild(storage.NewFS(utDisk), "u", c.Observations, utree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Query 4 is selective relative to the whole metro
	// area (radius <= 1km over all of Boston); an off-center query
	// with modest radius reproduces that regime at this scale. A
	// saturating query would make both indexes degenerate to a full
	// scan and hide the difference (that regime is exercised by the
	// cutoff-index experiments instead).
	q := prob.Point{X: 1200, Y: 900}
	const radius, th = 250, 0.5

	cu.DropCaches()
	sp := sim.StartSpan(cuDisk)
	resC, _, err := cu.QueryCircle(context.Background(), q, radius, th)
	if err != nil {
		t.Fatal(err)
	}
	cuCost := sp.End()

	ut.DropCaches()
	sp = sim.StartSpan(utDisk)
	resU, _, err := ut.QueryCircle(q, radius, th)
	if err != nil {
		t.Fatal(err)
	}
	utCost := sp.End()

	if len(resC) != len(resU) || len(resC) < 10 {
		t.Fatalf("answers: %d vs %d", len(resC), len(resU))
	}
	if utCost.Elapsed < cuCost.Elapsed*5 {
		t.Fatalf("CUPI should be >=5x faster: cupi=%v utree=%v (seeks %d vs %d)",
			cuCost.Elapsed, utCost.Elapsed, cuCost.Seeks, utCost.Seeks)
	}
}

// TestFig8Property: the segment secondary index into the clustered
// CUPI heap must beat the same index into the unclustered heap.
func TestFig8Property(t *testing.T) {
	cfg := dataset.DefaultCartelConfig()
	cfg.Observations = 20000
	cfg.GridN = 20
	c, err := dataset.GenerateCartel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cuDisk := sim.NewDisk(sim.DefaultParams())
	cu, err := BulkBuild(storage.NewFS(cuDisk), "c", c.Observations, Options{})
	if err != nil {
		t.Fatal(err)
	}
	utDisk := sim.NewDisk(sim.DefaultParams())
	ut, err := utree.BulkBuild(storage.NewFS(utDisk), "u", c.Observations, utree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a busy segment.
	counts := make(map[string]int)
	for _, o := range c.Observations {
		counts[o.Segment.First().Value]++
	}
	var seg string
	best := 0
	for s, n := range counts {
		if n > best {
			seg, best = s, n
		}
	}

	cu.DropCaches()
	sp := sim.StartSpan(cuDisk)
	resC, _, err := cu.QuerySegment(context.Background(), seg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cuCost := sp.End()

	ut.DropCaches()
	sp = sim.StartSpan(utDisk)
	resU, err := ut.QuerySegment(seg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	utCost := sp.End()

	if len(resC) != len(resU) || len(resC) < 20 {
		t.Fatalf("answers: %d vs %d", len(resC), len(resU))
	}
	if utCost.Elapsed < cuCost.Elapsed*2 {
		t.Fatalf("clustered secondary should be >=2x faster: cupi=%v utree=%v (seeks %d vs %d)",
			cuCost.Elapsed, utCost.Elapsed, cuCost.Seeks, utCost.Seeks)
	}
}

func TestInsertAfterBulkLoad(t *testing.T) {
	c := smallCartel(t, 500)
	tab, err := BulkBuild(newFS(), "c", c.Observations[:400], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range c.Observations[400:] {
		if err := tab.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate insert must fail.
	if err := tab.Insert(c.Observations[0]); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	want := bruteQuery(c.Observations, prob.Point{}, 400, 0.4)
	got, _, err := tab.QueryCircle(context.Background(), prob.Point{}, 400, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d want %d", len(got), len(want))
	}
}

// TestHeapClusteredByLeafOrder checks the Section 5 invariant directly:
// scanning observations in heap order visits them in R-Tree DFS leaf
// order.
func TestHeapClusteredByLeafOrder(t *testing.T) {
	c := smallCartel(t, 800)
	tab, err := BulkBuild(newFS(), "c", c.Observations, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var dfsOrder []uint64
	err = tab.RTree().Leaves(func(_ storage.PageID, es []rtree.Entry) bool {
		for _, e := range es {
			dfsOrder = append(dfsOrder, e.Data)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var heapOrder []uint64
	err = tab.Heap().Scan(func(_ heapfile.RowID, rec []byte) bool {
		o, derr := tuple.DecodeObservation(rec)
		if derr != nil {
			t.Fatal(derr)
		}
		heapOrder = append(heapOrder, o.ID)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dfsOrder) != len(heapOrder) || len(dfsOrder) != 800 {
		t.Fatalf("order lengths: dfs=%d heap=%d", len(dfsOrder), len(heapOrder))
	}
	for i := range dfsOrder {
		if dfsOrder[i] != heapOrder[i] {
			t.Fatalf("position %d: dfs=%d heap=%d", i, dfsOrder[i], heapOrder[i])
		}
	}
}
