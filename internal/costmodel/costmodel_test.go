package costmodel

import (
	"math"
	"testing"
	"time"
)

func testParams() Params {
	p := DefaultParams()
	p.TableBytes = 100 << 20 // 100 MB
	p.Leaves = p.TableBytes / 8192
	p.Fractures = 10
	return p
}

func TestCostScan(t *testing.T) {
	p := testParams()
	// 100 MB at 20 ms/MB = 2s.
	if got := p.CostScan(); got != 2*time.Second {
		t.Fatalf("CostScan = %v", got)
	}
}

func TestCostFractured(t *testing.T) {
	p := testParams()
	// Selectivity 0: only the per-fracture lookups remain.
	// lookup = 100ms + 4×10ms = 140ms; ×10 fractures = 1.4s.
	if got := p.CostFractured(0); got != 1400*time.Millisecond {
		t.Fatalf("CostFractured(0) = %v", got)
	}
	// Full selectivity adds a complete scan.
	if got := p.CostFractured(1); got != 1400*time.Millisecond+2*time.Second {
		t.Fatalf("CostFractured(1) = %v", got)
	}
	// Monotone in both arguments.
	if p.CostFractured(0.5) <= p.CostFractured(0.1) {
		t.Fatal("not monotone in selectivity")
	}
	p2 := p
	p2.Fractures = 20
	if p2.CostFractured(0.1) <= p.CostFractured(0.1) {
		t.Fatal("not monotone in fractures")
	}
}

func TestSaturationShape(t *testing.T) {
	p := testParams()
	if p.Saturation(0) != 0 {
		t.Fatal("f(0) != 0")
	}
	// The paper's calibration point: f(0.05·Nleaf) = 0.99·Costscan.
	x0 := 0.05 * float64(p.Leaves)
	got := p.Saturation(x0)
	want := float64(p.CostScan()) * 0.99
	if math.Abs(float64(got)-want) > want*0.01 {
		t.Fatalf("f(x0) = %v, want ~%v", got, time.Duration(want))
	}
	// Saturates below Costscan.
	if p.Saturation(1e12) > p.CostScan() {
		t.Fatal("f exceeds Costscan")
	}
	// Monotone.
	prev := time.Duration(0)
	for x := 0.0; x < x0*2; x += x0 / 10 {
		cur := p.Saturation(x)
		if cur < prev {
			t.Fatalf("f not monotone at %v", x)
		}
		prev = cur
	}
	// Early growth is steep: a few hundred pointers already cost real
	// time (the seek-per-pointer regime).
	if p.Saturation(100) <= 0 {
		t.Fatal("f(100) should be positive")
	}
}

func TestCostCutoff(t *testing.T) {
	p := testParams()
	base := p.CostCutoff(0, 0)
	// Two lookups only.
	if base != 2*(100*time.Millisecond+4*10*time.Millisecond) {
		t.Fatalf("CostCutoff(0,0) = %v", base)
	}
	if p.CostCutoff(0.1, 1000) <= p.CostCutoff(0.1, 0) {
		t.Fatal("pointers should add cost")
	}
	if p.CostCutoff(0.5, 100) <= p.CostCutoff(0.1, 100) {
		t.Fatal("selectivity should add cost")
	}
}

func TestCostMerge(t *testing.T) {
	p := testParams()
	// 100 MB × (20+50) ms/MB = 7s.
	if got := p.CostMerge(); got != 7*time.Second {
		t.Fatalf("CostMerge = %v", got)
	}
}

func TestSaturationKDegenerate(t *testing.T) {
	p := testParams()
	p.Leaves = 0
	if k := p.SaturationK(); k != 1 {
		t.Fatalf("k with zero leaves = %v", k)
	}
}

func TestPickCutoff(t *testing.T) {
	sizes := []float64{10, 5, 3, 2} // shrinking with larger C
	costs := []time.Duration{1 * time.Second, 2 * time.Second, 5 * time.Second, 30 * time.Second}
	// Budget 6 bytes, cost limit 10s: candidates 1 (5B, 2s) and 2
	// (3B, 5s) qualify; pick the largest index.
	if got := PickCutoff(sizes, costs, 6, 10*time.Second); got != 2 {
		t.Fatalf("PickCutoff = %d", got)
	}
	// Nothing fits.
	if got := PickCutoff(sizes, costs, 1, time.Millisecond); got != -1 {
		t.Fatalf("PickCutoff impossible = %d", got)
	}
}
