// Package costmodel implements the analytic cost models of paper
// Section 6: the fractured-UPI query cost (6.2), the cutoff-index
// query cost with its logistic saturation term (6.3), and the merge
// cost. The models take the same parameters as Table 6 and are
// validated against observed simulated runtimes in Figures 10 and 12.
package costmodel

import (
	"math"
	"time"

	"upidb/internal/sim"
)

// Params are the cost-model inputs (paper Table 6).
type Params struct {
	// Disk holds Tseek, Tread, Twrite and Costinit.
	Disk sim.Params
	// Height is the B+Tree height H.
	Height int
	// TableBytes is Stable, the size of the table in bytes.
	TableBytes int64
	// Leaves is Nleaf, the number of leaf pages.
	Leaves int64
	// Fractures is Nfrac, the number of UPI fractures.
	Fractures int
}

// DefaultParams mirrors the typical values of Table 6 (with the table
// size left to the caller).
func DefaultParams() Params {
	return Params{
		Disk:   sim.DefaultParams(),
		Height: 4,
	}
}

// CostScan is the cost of a full sequential scan of the table:
// Costscan = Tread × Stable.
func (p Params) CostScan() time.Duration {
	return time.Duration(float64(p.Disk.ReadPerMB) * float64(p.TableBytes) / (1 << 20))
}

// lookup is Costinit + H × Tseek: opening a table file and descending
// its B+Tree once.
func (p Params) lookup() time.Duration {
	return p.Disk.Init + time.Duration(p.Height)*p.Disk.Seek
}

// CostFractured estimates a PTQ on a fractured UPI (Section 6.2):
//
//	Costfrac = Costscan × Selectivity + Nfrac × (Costinit + H·Tseek)
//
// selectivity is the fraction of the table the query touches
// (including the probability threshold, per Section 6.1).
func (p Params) CostFractured(selectivity float64) time.Duration {
	scan := time.Duration(float64(p.CostScan()) * selectivity)
	return scan + time.Duration(p.Fractures)*p.lookup()
}

// CostSingle estimates a PTQ answered purely from the UPI heap file
// (QT >= C, no fractures): one table open, one tree descent, one
// sequential scan of the matching fraction.
func (p Params) CostSingle(selectivity float64) time.Duration {
	scan := time.Duration(float64(p.CostScan()) * selectivity)
	return scan + p.lookup()
}

// SaturationK returns the logistic steepness parameter k, fixed by the
// paper's heuristic f(0.05 × Nleaf) = 0.99 × Costscan.
func (p Params) SaturationK() float64 {
	x0 := 0.05 * float64(p.Leaves)
	if x0 <= 0 {
		return 1
	}
	// Solve (1-e^{-k x0})/(1+e^{-k x0}) = 0.99 for k:
	// e^{-k x0} = 0.01/1.99.
	return -math.Log(0.01/1.99) / x0
}

// Saturation is f(x): the cost of chasing x cutoff pointers into the
// heap file, saturating at Costscan as the pointers cover every page.
//
//	f(x) = Costscan × (1 - e^{-kx}) / (1 + e^{-kx})
func (p Params) Saturation(pointers float64) time.Duration {
	if pointers <= 0 {
		return 0
	}
	e := math.Exp(-p.SaturationK() * pointers)
	return time.Duration(float64(p.CostScan()) * (1 - e) / (1 + e))
}

// CostCutoff estimates a PTQ that must consult the cutoff index
// (Section 6.3):
//
//	Costcut = Costscan × Selectivity + 2(Costinit + H·Tseek) + f(#Pointers)
func (p Params) CostCutoff(selectivity, pointers float64) time.Duration {
	scan := time.Duration(float64(p.CostScan()) * selectivity)
	return scan + 2*p.lookup() + p.Saturation(pointers)
}

// CostMerge estimates merging all fractures back into the main UPI:
//
//	Costmerge = Stable × (Tread + Twrite)
func (p Params) CostMerge() time.Duration {
	perMB := p.Disk.ReadPerMB + p.Disk.WritePerMB
	return time.Duration(float64(perMB) * float64(p.TableBytes) / (1 << 20))
}

// PickCutoff implements the paper's tuning recipe (end of Section 6.3):
// given candidate cutoff thresholds, a per-threshold predicted table
// size and query workload costs, return the largest cutoff whose size
// fits the budget and whose average estimated query cost is tolerable.
// Candidates must be sorted ascending. It returns the chosen index,
// or -1 if no candidate satisfies both limits.
func PickCutoff(sizes []float64, avgCosts []time.Duration, sizeBudget float64, costLimit time.Duration) int {
	best := -1
	for i := range sizes {
		if sizes[i] <= sizeBudget && avgCosts[i] <= costLimit {
			best = i
		}
	}
	return best
}
