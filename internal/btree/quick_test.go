package btree

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"upidb/internal/sim"
	"upidb/internal/storage"
)

// TestQuickPutGetRoundTrip: any set of distinct keys inserted in any
// order is retrievable with its latest value.
func TestQuickPutGetRoundTrip(t *testing.T) {
	f := func(keys [][]byte, vals [][]byte) bool {
		tr := quickTree(t)
		ref := make(map[string][]byte)
		for i, k := range keys {
			if len(k) == 0 || len(k) > 30 {
				continue
			}
			var v []byte
			if i < len(vals) && len(vals[i]) <= 60 {
				v = vals[i]
			}
			if _, err := tr.Put(k, v); err != nil {
				return false
			}
			ref[string(k)] = v
		}
		for k, v := range ref {
			got, ok, err := tr.Get([]byte(k))
			if err != nil || !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		return tr.Count() == int64(len(ref))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBulkLoadEqualsScan: bulk loading any sorted distinct key
// set yields a scan identical to the input.
func TestQuickBulkLoadEqualsScan(t *testing.T) {
	f := func(seed [][]byte) bool {
		uniq := make(map[string]bool)
		var keys []string
		for _, k := range seed {
			if len(k) == 0 || len(k) > 30 || uniq[string(k)] {
				continue
			}
			uniq[string(k)] = true
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
		p, _ := storage.NewPager(fs.Create("t"), 256)
		b, err := NewBuilder(p)
		if err != nil {
			return false
		}
		for i, k := range keys {
			if err := b.Add([]byte(k), []byte(fmt.Sprint(i))); err != nil {
				return false
			}
		}
		tr, err := b.Finish()
		if err != nil {
			return false
		}
		i := 0
		ok := true
		tr.Scan(nil, nil, func(k, v []byte) bool {
			if i >= len(keys) || string(k) != keys[i] || string(v) != fmt.Sprint(i) {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSeekLowerBound: for any keys and any probe, Seek lands on
// the smallest key >= probe.
func TestQuickSeekLowerBound(t *testing.T) {
	f := func(seed [][]byte, probe []byte) bool {
		tr := quickTree(t)
		var keys []string
		uniq := make(map[string]bool)
		for _, k := range seed {
			if len(k) == 0 || len(k) > 30 || uniq[string(k)] {
				continue
			}
			uniq[string(k)] = true
			keys = append(keys, string(k))
			if _, err := tr.Put(k, nil); err != nil {
				return false
			}
		}
		sort.Strings(keys)
		want := ""
		found := false
		for _, k := range keys {
			if k >= string(probe) {
				want, found = k, true
				break
			}
		}
		c := tr.NewCursor().Seek(probe)
		if !found {
			return !c.Valid()
		}
		return c.Valid() && string(c.Key()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func quickTree(t *testing.T) *Tree {
	t.Helper()
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	p, err := storage.NewPager(fs.Create("t"), 256)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
