package btree

import (
	"bytes"
	"fmt"

	"upidb/internal/storage"
)

// bulkFill is the target fill fraction for bulk-loaded pages. Loading
// slightly under full leaves headroom for a few inserts before splits
// begin, matching BDB's default bulk-fill behaviour.
const bulkFill = 0.9

// Builder bulk-loads a tree from keys supplied in strictly ascending
// order. Pages are allocated and written sequentially, which is what
// makes flushing a fracture or merging fractures a sequential write on
// the simulated disk (paper Section 4).
type Builder struct {
	pager    *storage.Pager
	limit    int
	cur      *node
	lastKey  []byte
	count    int64
	leaves   int64
	finished bool
	// pending separators for each internal level being built:
	// level[i] holds (firstKey, pageID) of completed nodes at depth i.
	levels [][]sep
}

type sep struct {
	key []byte
	id  storage.PageID
}

// NewBuilder starts a bulk load on an empty pager.
func NewBuilder(p *storage.Pager) (*Builder, error) {
	if p.NumPages() != 0 {
		return nil, fmt.Errorf("btree: bulk load on non-empty file %s", p.File().Name())
	}
	if _, _, err := p.Alloc(); err != nil { // reserve meta page 0
		return nil, err
	}
	return &Builder{
		pager: p,
		limit: int(float64(p.PageSize()) * bulkFill),
	}, nil
}

// Add appends an entry. Keys must be strictly ascending.
func (b *Builder) Add(key, val []byte) error {
	if b.finished {
		return fmt.Errorf("btree: Add after Finish")
	}
	if leafEntrySize(key, val) > b.pager.PageSize()-leafHeader {
		return ErrKeyTooLarge
	}
	if b.lastKey != nil && bytes.Compare(key, b.lastKey) <= 0 {
		return fmt.Errorf("btree: bulk keys not strictly ascending")
	}
	b.lastKey = append(b.lastKey[:0], key...)

	if b.cur == nil {
		n, err := b.newLeaf()
		if err != nil {
			return err
		}
		b.cur = n
	}
	if len(b.cur.keys) > 0 && b.cur.size()+leafEntrySize(key, val) > b.limit {
		if err := b.closeLeaf(); err != nil {
			return err
		}
		n, err := b.newLeaf()
		if err != nil {
			return err
		}
		b.cur = n
	}
	b.cur.keys = append(b.cur.keys, append([]byte(nil), key...))
	b.cur.vals = append(b.cur.vals, append([]byte(nil), val...))
	b.count++
	return nil
}

func (b *Builder) newLeaf() (*node, error) {
	id, _, err := b.pager.Alloc()
	if err != nil {
		return nil, err
	}
	b.leaves++
	return &node{id: id, leaf: true, next: storage.InvalidPage}, nil
}

func (b *Builder) closeLeaf() error {
	n := b.cur
	b.cur = nil
	// Leaves are allocated consecutively, so the next leaf (if any)
	// will be the next page. Patch the chain when it is created: we
	// know the next leaf's ID in advance because allocation is
	// sequential and nothing else allocates during a bulk load.
	n.next = n.id + 1
	if err := b.writeNode(n); err != nil {
		return err
	}
	b.push(0, sep{key: append([]byte(nil), n.keys[0]...), id: n.id})
	return nil
}

func (b *Builder) writeNode(n *node) error {
	buf, err := n.serialize(b.pager.PageSize())
	if err != nil {
		return err
	}
	return b.pager.Write(n.id, buf)
}

func (b *Builder) push(level int, s sep) {
	for len(b.levels) <= level {
		b.levels = append(b.levels, nil)
	}
	b.levels[level] = append(b.levels[level], s)
}

// Finish writes out the remaining pages, builds the internal levels
// bottom-up and returns the completed tree. An empty build yields a
// valid empty tree.
func (b *Builder) Finish() (*Tree, error) {
	if b.finished {
		return nil, fmt.Errorf("btree: double Finish")
	}
	b.finished = true

	if b.cur == nil && b.count == 0 {
		// Empty tree: single empty root leaf.
		id, _, err := b.pager.Alloc()
		if err != nil {
			return nil, err
		}
		b.leaves = 1
		t := &Tree{pager: b.pager, root: id, height: 1, leaves: 1}
		if err := t.writeNode(&node{id: id, leaf: true, next: storage.InvalidPage}); err != nil {
			return nil, err
		}
		if err := t.writeMeta(); err != nil {
			return nil, err
		}
		return t, nil
	}
	// Final leaf terminates the chain.
	if b.cur != nil {
		n := b.cur
		b.cur = nil
		n.next = storage.InvalidPage
		if err := b.writeNode(n); err != nil {
			return nil, err
		}
		b.push(0, sep{key: append([]byte(nil), n.keys[0]...), id: n.id})
	}

	height := 1
	level := 0
	for len(b.levels[level]) > 1 {
		seps := b.levels[level]
		var cur *node
		newNode := func() error {
			id, _, err := b.pager.Alloc()
			if err != nil {
				return err
			}
			cur = &node{id: id}
			return nil
		}
		flush := func() error {
			if cur == nil {
				return nil
			}
			if err := b.writeNode(cur); err != nil {
				return err
			}
			b.push(level+1, sep{key: b.firstKeyOf(cur), id: cur.id})
			cur = nil
			return nil
		}
		for _, s := range seps {
			if cur == nil {
				if err := newNode(); err != nil {
					return nil, err
				}
				cur.children = []storage.PageID{s.id}
				cur.firstKey = s.key
				continue
			}
			if cur.size()+2+len(s.key)+4 > b.limit {
				if err := flush(); err != nil {
					return nil, err
				}
				if err := newNode(); err != nil {
					return nil, err
				}
				cur.children = []storage.PageID{s.id}
				cur.firstKey = s.key
				continue
			}
			cur.keys = append(cur.keys, s.key)
			cur.children = append(cur.children, s.id)
		}
		if err := flush(); err != nil {
			return nil, err
		}
		level++
		height++
	}

	root := b.levels[level][0]
	t := &Tree{pager: b.pager, root: root.id, height: height, count: b.count, leaves: b.leaves}
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// firstKeyOf returns the smallest key reachable under an internal node
// built during this bulk load (recorded when the node was started).
func (b *Builder) firstKeyOf(n *node) []byte { return n.firstKey }
