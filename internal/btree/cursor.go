package btree

import (
	"bytes"
	"sort"

	"upidb/internal/storage"
)

// Cursor iterates leaf entries in ascending key order. A cursor is a
// snapshot-style iterator: it holds a private copy of the current leaf,
// so concurrent mutation of the tree during iteration yields undefined
// (but memory-safe) results, exactly as a BDB cursor without locking.
type Cursor struct {
	t   *Tree
	n   *node
	idx int
	err error
}

// Seek positions the cursor at the first entry with key >= target and
// returns the cursor for chaining. This is the UPI.seekTo of the
// paper's Algorithm 2.
func (c *Cursor) Seek(target []byte) *Cursor {
	n, err := c.t.descendToLeaf(target)
	if err != nil {
		c.err = err
		c.n = nil
		return c
	}
	c.n = n
	c.idx = sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], target) >= 0 })
	c.skipToNonEmpty()
	return c
}

// First positions the cursor at the smallest entry.
func (c *Cursor) First() *Cursor {
	n, err := c.t.readNode(c.t.root)
	if err != nil {
		c.err = err
		c.n = nil
		return c
	}
	for !n.leaf {
		if n, err = c.t.readNode(n.children[0]); err != nil {
			c.err = err
			c.n = nil
			return c
		}
	}
	c.n = n
	c.idx = 0
	c.skipToNonEmpty()
	return c
}

// skipToNonEmpty advances across empty leaves (possible after deletes).
func (c *Cursor) skipToNonEmpty() {
	for c.n != nil && c.idx >= len(c.n.keys) {
		if c.n.next == storage.InvalidPage {
			c.n = nil
			return
		}
		n, err := c.t.readNode(c.n.next)
		if err != nil {
			c.err = err
			c.n = nil
			return
		}
		c.n = n
		c.idx = 0
	}
}

// Valid reports whether the cursor points at an entry.
func (c *Cursor) Valid() bool { return c.err == nil && c.n != nil }

// Err returns the first I/O error the cursor encountered, if any.
func (c *Cursor) Err() error { return c.err }

// Key returns the current key. Valid until the next cursor movement.
func (c *Cursor) Key() []byte { return c.n.keys[c.idx] }

// Value returns the current value. Valid until the next cursor movement.
func (c *Cursor) Value() []byte { return c.n.vals[c.idx] }

// Next advances to the following entry (Cur.advance() in Algorithm 2).
func (c *Cursor) Next() {
	if !c.Valid() {
		return
	}
	c.idx++
	c.skipToNonEmpty()
}

// NewCursor returns an unpositioned cursor; call Seek or First.
func (t *Tree) NewCursor() *Cursor { return &Cursor{t: t} }

// Scan calls fn for every entry with start <= key < end in order.
// A nil start begins at the first key; a nil end scans to the last.
// fn returning false stops the scan early.
func (t *Tree) Scan(start, end []byte, fn func(key, val []byte) bool) error {
	c := t.NewCursor()
	if start == nil {
		c.First()
	} else {
		c.Seek(start)
	}
	for c.Valid() {
		if end != nil && bytes.Compare(c.Key(), end) >= 0 {
			break
		}
		if !fn(c.Key(), c.Value()) {
			break
		}
		c.Next()
	}
	return c.Err()
}
