// Package btree implements a page-based B+Tree over a storage.Pager.
//
// It is the reproduction of the BerkeleyDB B+Trees the UPI prototype
// was built on: UPI heap files, cutoff indexes, secondary indexes and
// the PII baseline are all instances of this tree with different
// composite keys. Whole tuples are stored in leaf values, which is
// what makes a UPI a *primary* index: a range scan of one attribute
// value is a contiguous walk of leaf pages.
//
// Keys are unique byte strings compared with bytes.Compare; callers
// build composite keys with package keyenc. Values are opaque.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"upidb/internal/storage"
)

const metaMagic = 0x55504942 // "UPIB"

// ErrKeyTooLarge is returned when a key/value pair cannot fit in one page.
var ErrKeyTooLarge = errors.New("btree: entry too large for page")

// Tree is a B+Tree. It is not safe for concurrent use.
type Tree struct {
	pager *storage.Pager

	root   storage.PageID
	height int   // 1 = root is a leaf
	count  int64 // live entries
	leaves int64 // leaf pages
}

// Create initializes a new tree on an empty pager: page 0 becomes the
// meta page and page 1 the root leaf.
func Create(p *storage.Pager) (*Tree, error) {
	if p.NumPages() != 0 {
		return nil, fmt.Errorf("btree: create on non-empty file %s", p.File().Name())
	}
	if _, _, err := p.Alloc(); err != nil { // meta page 0
		return nil, err
	}
	rootID, _, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	t := &Tree{pager: p, root: rootID, height: 1, leaves: 1}
	root := &node{id: rootID, leaf: true, next: storage.InvalidPage}
	if err := t.writeNode(root); err != nil {
		return nil, err
	}
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree from its pager.
func Open(p *storage.Pager) (*Tree, error) {
	if p.NumPages() == 0 {
		return nil, fmt.Errorf("btree: open on empty file %s", p.File().Name())
	}
	buf, err := p.Read(0)
	if err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(buf[0:]) != metaMagic {
		return nil, fmt.Errorf("btree: %s is not a btree file", p.File().Name())
	}
	t := &Tree{pager: p}
	t.root = storage.PageID(binary.BigEndian.Uint32(buf[4:]))
	t.height = int(binary.BigEndian.Uint32(buf[8:]))
	t.count = int64(binary.BigEndian.Uint64(buf[12:]))
	t.leaves = int64(binary.BigEndian.Uint64(buf[20:]))
	return t, nil
}

func (t *Tree) writeMeta() error {
	buf := make([]byte, t.pager.PageSize())
	binary.BigEndian.PutUint32(buf[0:], metaMagic)
	binary.BigEndian.PutUint32(buf[4:], uint32(t.root))
	binary.BigEndian.PutUint32(buf[8:], uint32(t.height))
	binary.BigEndian.PutUint64(buf[12:], uint64(t.count))
	binary.BigEndian.PutUint64(buf[20:], uint64(t.leaves))
	return t.pager.Write(0, buf)
}

// Count returns the number of live entries.
func (t *Tree) Count() int64 { return t.count }

// Height returns the tree height; 1 means the root is a leaf. It is
// the H parameter of the paper's cost models.
func (t *Tree) Height() int { return t.height }

// Leaves returns the number of leaf pages (Nleaf in the cost models).
func (t *Tree) Leaves() int64 { return t.leaves }

// Pager exposes the underlying pager (for cache control in benchmarks).
func (t *Tree) Pager() *storage.Pager { return t.pager }

func (t *Tree) readNode(id storage.PageID) (*node, error) {
	buf, err := t.pager.Read(id)
	if err != nil {
		return nil, err
	}
	return deserialize(id, buf)
}

func (t *Tree) writeNode(n *node) error {
	buf, err := n.serialize(t.pager.PageSize())
	if err != nil {
		return err
	}
	return t.pager.Write(n.id, buf)
}

func (t *Tree) allocNode(leaf bool) (*node, error) {
	id, _, err := t.pager.Alloc()
	if err != nil {
		return nil, err
	}
	n := &node{id: id, leaf: leaf}
	if leaf {
		n.next = storage.InvalidPage
		t.leaves++
	}
	return n, nil
}

// maxEntry returns the largest leaf entry that fits a page.
func (t *Tree) maxEntry() int { return t.pager.PageSize() - leafHeader }

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	n, err := t.descendToLeaf(key)
	if err != nil {
		return nil, false, err
	}
	i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return n.vals[i], true, nil
	}
	return nil, false, nil
}

func (t *Tree) descendToLeaf(key []byte) (*node, error) {
	n, err := t.readNode(t.root)
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(key, n.keys[i]) < 0 })
		if n, err = t.readNode(n.children[i]); err != nil {
			return nil, err
		}
	}
	return n, nil
}

type promotion struct {
	key   []byte
	right storage.PageID
}

// Put inserts or replaces the value under key. It reports whether a
// new entry was created (false means an existing key was overwritten).
func (t *Tree) Put(key, val []byte) (bool, error) {
	if leafEntrySize(key, val) > t.maxEntry() || len(key) > t.pager.PageSize()/8 {
		return false, ErrKeyTooLarge
	}
	inserted, promo, err := t.insert(t.root, key, val)
	if err != nil {
		return false, err
	}
	if promo != nil {
		newRoot, err := t.allocNode(false)
		if err != nil {
			return false, err
		}
		newRoot.keys = [][]byte{promo.key}
		newRoot.children = []storage.PageID{t.root, promo.right}
		if err := t.writeNode(newRoot); err != nil {
			return false, err
		}
		t.root = newRoot.id
		t.height++
	}
	if inserted {
		t.count++
	}
	return inserted, t.writeMeta()
}

func (t *Tree) insert(id storage.PageID, key, val []byte) (bool, *promotion, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, nil, err
	}
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		inserted := true
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = append([]byte(nil), val...)
			inserted = false
		} else {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = append([]byte(nil), key...)
			n.vals = append(n.vals, nil)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = append([]byte(nil), val...)
		}
		promo, err := t.splitIfNeeded(n)
		return inserted, promo, err
	}
	ci := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(key, n.keys[i]) < 0 })
	inserted, childPromo, err := t.insert(n.children[ci], key, val)
	if err != nil {
		return false, nil, err
	}
	if childPromo == nil {
		return inserted, nil, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = childPromo.key
	n.children = append(n.children, 0)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = childPromo.right
	promo, err := t.splitIfNeeded(n)
	return inserted, promo, err
}

// splitIfNeeded writes n back, splitting it first if it overflows its
// page. The returned promotion carries the separator for the parent.
func (t *Tree) splitIfNeeded(n *node) (*promotion, error) {
	if n.size() <= t.pager.PageSize() {
		return nil, t.writeNode(n)
	}
	if n.leaf {
		m := t.splitPointLeaf(n)
		right, err := t.allocNode(true)
		if err != nil {
			return nil, err
		}
		right.keys = append(right.keys, n.keys[m:]...)
		right.vals = append(right.vals, n.vals[m:]...)
		right.next = n.next
		n.keys = n.keys[:m]
		n.vals = n.vals[:m]
		n.next = right.id
		if err := t.writeNode(n); err != nil {
			return nil, err
		}
		if err := t.writeNode(right); err != nil {
			return nil, err
		}
		return &promotion{key: append([]byte(nil), right.keys[0]...), right: right.id}, nil
	}
	m := len(n.keys) / 2
	sep := n.keys[m]
	right, err := t.allocNode(false)
	if err != nil {
		return nil, err
	}
	right.keys = append(right.keys, n.keys[m+1:]...)
	right.children = append(right.children, n.children[m+1:]...)
	n.keys = n.keys[:m]
	n.children = n.children[:m+1]
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	return &promotion{key: sep, right: right.id}, nil
}

// splitPointLeaf picks the index that best balances the two halves by
// serialized size while guaranteeing both halves fit a page.
func (t *Tree) splitPointLeaf(n *node) int {
	total := n.size() - leafHeader
	acc := 0
	for i := range n.keys {
		e := leafEntrySize(n.keys[i], n.vals[i])
		if acc+e > total/2 && i > 0 {
			return i
		}
		acc += e
	}
	return len(n.keys) - 1
}

// minFill is the byte threshold below which a node is considered
// underflowing and triggers rebalancing on delete.
func (t *Tree) minFill() int { return t.pager.PageSize() / 4 }

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key []byte) (bool, error) {
	deleted, _, err := t.remove(t.root, key)
	if err != nil {
		return false, err
	}
	if !deleted {
		return false, nil
	}
	// Collapse the root when an internal root loses all separators.
	root, err := t.readNode(t.root)
	if err != nil {
		return false, err
	}
	for !root.leaf && len(root.keys) == 0 {
		t.root = root.children[0]
		t.height--
		if root, err = t.readNode(t.root); err != nil {
			return false, err
		}
	}
	t.count--
	return true, t.writeMeta()
}

func (t *Tree) remove(id storage.PageID, key []byte) (deleted, underflow bool, err error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, false, err
	}
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return false, false, nil
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		if err := t.writeNode(n); err != nil {
			return false, false, err
		}
		return true, n.size() < t.minFill(), nil
	}
	ci := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(key, n.keys[i]) < 0 })
	deleted, childUnder, err := t.remove(n.children[ci], key)
	if err != nil || !deleted || !childUnder {
		return deleted, false, err
	}
	if err := t.rebalanceChild(n, ci); err != nil {
		return false, false, err
	}
	if err := t.writeNode(n); err != nil {
		return false, false, err
	}
	return true, n.size() < t.minFill(), nil
}

// rebalanceChild restores the fill of parent.children[ci] by merging
// with or borrowing from an adjacent sibling. parent is mutated but
// not written; the caller writes it.
func (t *Tree) rebalanceChild(parent *node, ci int) error {
	if len(parent.children) == 1 {
		return nil // no siblings; nothing to do
	}
	li := ci // merge/borrow pair is (li, li+1)
	if ci == len(parent.children)-1 {
		li = ci - 1
	}
	left, err := t.readNode(parent.children[li])
	if err != nil {
		return err
	}
	right, err := t.readNode(parent.children[li+1])
	if err != nil {
		return err
	}
	// Exact size of the merged node: leaves drop one header; internal
	// nodes additionally absorb the parent separator as a new entry
	// whose child pointer is right's first child (already counted in
	// right's header, hence the -1 byte for the dropped type byte
	// net of bookkeeping below).
	var mergedSize int
	if left.leaf {
		mergedSize = left.size() + right.size() - leafHeader
	} else {
		mergedSize = left.size() + right.size() + len(parent.keys[li]) - 1
	}
	if mergedSize <= t.pager.PageSize() {
		return t.mergeSiblings(parent, li, left, right)
	}
	// Borrow entries until the underfull side is healthy again.
	if ci == li {
		err = t.borrowFromRight(parent, li, left, right)
	} else {
		err = t.borrowFromLeft(parent, li, left, right)
	}
	return err
}

func (t *Tree) mergeSiblings(parent *node, li int, left, right *node) error {
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
		t.leaves--
	} else {
		left.keys = append(left.keys, parent.keys[li])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	parent.keys = append(parent.keys[:li], parent.keys[li+1:]...)
	parent.children = append(parent.children[:li+1], parent.children[li+2:]...)
	// The right page is orphaned; pages are not reused (the merge
	// process that rewrites fractures reclaims space wholesale).
	return t.writeNode(left)
}

func (t *Tree) borrowFromRight(parent *node, li int, left, right *node) error {
	for left.size() < t.minFill() && len(right.keys) > 1 {
		var incoming int
		if left.leaf {
			incoming = leafEntrySize(right.keys[0], right.vals[0])
		} else {
			incoming = 2 + len(parent.keys[li]) + 4
		}
		if left.size()+incoming > t.pager.PageSize() {
			break
		}
		if left.leaf {
			left.keys = append(left.keys, right.keys[0])
			left.vals = append(left.vals, right.vals[0])
			right.keys = right.keys[1:]
			right.vals = right.vals[1:]
			parent.keys[li] = append([]byte(nil), right.keys[0]...)
		} else {
			left.keys = append(left.keys, parent.keys[li])
			left.children = append(left.children, right.children[0])
			parent.keys[li] = right.keys[0]
			right.keys = right.keys[1:]
			right.children = right.children[1:]
		}
	}
	if err := t.writeNode(left); err != nil {
		return err
	}
	return t.writeNode(right)
}

func (t *Tree) borrowFromLeft(parent *node, li int, left, right *node) error {
	for right.size() < t.minFill() && len(left.keys) > 1 {
		last := len(left.keys) - 1
		var incoming int
		if left.leaf {
			incoming = leafEntrySize(left.keys[last], left.vals[last])
		} else {
			incoming = 2 + len(parent.keys[li]) + 4
		}
		if right.size()+incoming > t.pager.PageSize() {
			break
		}
		if left.leaf {
			right.keys = append([][]byte{left.keys[last]}, right.keys...)
			right.vals = append([][]byte{left.vals[last]}, right.vals...)
			left.keys = left.keys[:last]
			left.vals = left.vals[:last]
			parent.keys[li] = append([]byte(nil), right.keys[0]...)
		} else {
			right.keys = append([][]byte{parent.keys[li]}, right.keys...)
			right.children = append([]storage.PageID{left.children[last+1]}, right.children...)
			parent.keys[li] = left.keys[last]
			left.keys = left.keys[:last]
			left.children = left.children[:last+1]
		}
	}
	if err := t.writeNode(left); err != nil {
		return err
	}
	return t.writeNode(right)
}
