package btree

import (
	"encoding/binary"
	"fmt"

	"upidb/internal/storage"
)

// On-page node layout (big endian):
//
//	leaf:     [1: type=1][2: nkeys][4: next leaf PageID]
//	          then nkeys × [2: klen][2: vlen][key][value]
//	internal: [1: type=0][2: nkeys][4: child0]
//	          then nkeys × [2: klen][key][4: child]
//
// An internal node with nkeys separators has nkeys+1 children;
// keys[i] is the smallest key reachable under children[i+1].
const (
	nodeInternal = 0
	nodeLeaf     = 1

	leafHeader     = 1 + 2 + 4
	internalHeader = 1 + 2 + 4
)

type node struct {
	id       storage.PageID
	leaf     bool
	keys     [][]byte
	vals     [][]byte         // leaf only, len == len(keys)
	children []storage.PageID // internal only, len == len(keys)+1
	next     storage.PageID   // leaf only; InvalidPage terminates the chain

	// firstKey is transient bookkeeping used only during bulk loads:
	// the smallest key reachable under this internal node. It is not
	// serialized.
	firstKey []byte
}

// size returns the serialized size of the node in bytes.
func (n *node) size() int {
	if n.leaf {
		s := leafHeader
		for i := range n.keys {
			s += 4 + len(n.keys[i]) + len(n.vals[i])
		}
		return s
	}
	s := internalHeader
	for i := range n.keys {
		s += 2 + len(n.keys[i]) + 4
	}
	return s
}

func leafEntrySize(k, v []byte) int { return 4 + len(k) + len(v) }

func (n *node) serialize(pageSize int) ([]byte, error) {
	if n.size() > pageSize {
		return nil, fmt.Errorf("btree: node %d overflows page: %d > %d", n.id, n.size(), pageSize)
	}
	buf := make([]byte, pageSize)
	if n.leaf {
		buf[0] = nodeLeaf
		binary.BigEndian.PutUint16(buf[1:], uint16(len(n.keys)))
		binary.BigEndian.PutUint32(buf[3:], uint32(n.next))
		off := leafHeader
		for i := range n.keys {
			binary.BigEndian.PutUint16(buf[off:], uint16(len(n.keys[i])))
			binary.BigEndian.PutUint16(buf[off+2:], uint16(len(n.vals[i])))
			off += 4
			off += copy(buf[off:], n.keys[i])
			off += copy(buf[off:], n.vals[i])
		}
		return buf, nil
	}
	buf[0] = nodeInternal
	binary.BigEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	binary.BigEndian.PutUint32(buf[3:], uint32(n.children[0]))
	off := internalHeader
	for i := range n.keys {
		binary.BigEndian.PutUint16(buf[off:], uint16(len(n.keys[i])))
		off += 2
		off += copy(buf[off:], n.keys[i])
		binary.BigEndian.PutUint32(buf[off:], uint32(n.children[i+1]))
		off += 4
	}
	return buf, nil
}

func deserialize(id storage.PageID, buf []byte) (*node, error) {
	if len(buf) < leafHeader {
		return nil, fmt.Errorf("btree: page %d too short", id)
	}
	n := &node{id: id}
	nkeys := int(binary.BigEndian.Uint16(buf[1:]))
	switch buf[0] {
	case nodeLeaf:
		n.leaf = true
		n.next = storage.PageID(binary.BigEndian.Uint32(buf[3:]))
		n.keys = make([][]byte, nkeys)
		n.vals = make([][]byte, nkeys)
		off := leafHeader
		for i := 0; i < nkeys; i++ {
			if off+4 > len(buf) {
				return nil, fmt.Errorf("btree: page %d truncated at entry %d", id, i)
			}
			kl := int(binary.BigEndian.Uint16(buf[off:]))
			vl := int(binary.BigEndian.Uint16(buf[off+2:]))
			off += 4
			if off+kl+vl > len(buf) {
				return nil, fmt.Errorf("btree: page %d entry %d out of bounds", id, i)
			}
			n.keys[i] = append([]byte(nil), buf[off:off+kl]...)
			off += kl
			n.vals[i] = append([]byte(nil), buf[off:off+vl]...)
			off += vl
		}
	case nodeInternal:
		n.keys = make([][]byte, nkeys)
		n.children = make([]storage.PageID, nkeys+1)
		n.children[0] = storage.PageID(binary.BigEndian.Uint32(buf[3:]))
		off := internalHeader
		for i := 0; i < nkeys; i++ {
			if off+2 > len(buf) {
				return nil, fmt.Errorf("btree: page %d truncated at separator %d", id, i)
			}
			kl := int(binary.BigEndian.Uint16(buf[off:]))
			off += 2
			if off+kl+4 > len(buf) {
				return nil, fmt.Errorf("btree: page %d separator %d out of bounds", id, i)
			}
			n.keys[i] = append([]byte(nil), buf[off:off+kl]...)
			off += kl
			n.children[i+1] = storage.PageID(binary.BigEndian.Uint32(buf[off:]))
			off += 4
		}
	default:
		return nil, fmt.Errorf("btree: page %d has unknown node type %d", id, buf[0])
	}
	return n, nil
}
