package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"upidb/internal/sim"
	"upidb/internal/storage"
)

func newTestTree(t *testing.T, pageSize int) *Tree {
	t.Helper()
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	p, err := storage.NewPager(fs.Create("t"), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func k(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }
func v(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(t, 256)
	if tr.Count() != 0 || tr.Height() != 1 || tr.Leaves() != 1 {
		t.Fatalf("empty tree: count=%d h=%d leaves=%d", tr.Count(), tr.Height(), tr.Leaves())
	}
	if _, ok, err := tr.Get([]byte("x")); err != nil || ok {
		t.Fatalf("get on empty: %v %v", ok, err)
	}
	c := tr.NewCursor().First()
	if c.Valid() {
		t.Fatal("cursor valid on empty tree")
	}
	if del, err := tr.Delete([]byte("x")); err != nil || del {
		t.Fatalf("delete on empty: %v %v", del, err)
	}
}

func TestPutGetSmall(t *testing.T) {
	tr := newTestTree(t, 256)
	for i := 0; i < 10; i++ {
		if ins, err := tr.Put(k(i), v(i)); err != nil || !ins {
			t.Fatalf("put %d: ins=%v err=%v", i, ins, err)
		}
	}
	for i := 0; i < 10; i++ {
		got, ok, err := tr.Get(k(i))
		if err != nil || !ok || !bytes.Equal(got, v(i)) {
			t.Fatalf("get %d: %q %v %v", i, got, ok, err)
		}
	}
	if tr.Count() != 10 {
		t.Fatalf("count = %d", tr.Count())
	}
}

func TestPutOverwrite(t *testing.T) {
	tr := newTestTree(t, 256)
	tr.Put([]byte("a"), []byte("1"))
	ins, err := tr.Put([]byte("a"), []byte("2"))
	if err != nil || ins {
		t.Fatalf("overwrite reported as insert: %v %v", ins, err)
	}
	got, _, _ := tr.Get([]byte("a"))
	if string(got) != "2" {
		t.Fatalf("got %q", got)
	}
	if tr.Count() != 1 {
		t.Fatalf("count = %d", tr.Count())
	}
}

func TestSplitsAndHeightGrowth(t *testing.T) {
	tr := newTestTree(t, 256) // tiny pages force deep trees
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := tr.Put(k(i), v(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("expected height >= 3 with 256B pages, got %d", tr.Height())
	}
	if tr.Count() != n {
		t.Fatalf("count = %d", tr.Count())
	}
	for i := 0; i < n; i++ {
		got, ok, err := tr.Get(k(i))
		if err != nil || !ok || !bytes.Equal(got, v(i)) {
			t.Fatalf("get %d after splits: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestRandomOrderInsert(t *testing.T) {
	tr := newTestTree(t, 256)
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(3000)
	for _, i := range perm {
		if _, err := tr.Put(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Full scan must be in sorted order with all entries present.
	i := 0
	err := tr.Scan(nil, nil, func(key, val []byte) bool {
		if !bytes.Equal(key, k(i)) {
			t.Fatalf("scan position %d: got %q want %q", i, key, k(i))
		}
		i++
		return true
	})
	if err != nil || i != 3000 {
		t.Fatalf("scan: %v, visited %d", err, i)
	}
}

func TestDeleteWithRebalancing(t *testing.T) {
	tr := newTestTree(t, 256)
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Put(k(i), v(i))
	}
	rng := rand.New(rand.NewSource(11))
	perm := rng.Perm(n)
	// Delete 90% in random order.
	for _, i := range perm[:n*9/10] {
		del, err := tr.Delete(k(i))
		if err != nil || !del {
			t.Fatalf("delete %d: %v %v", i, del, err)
		}
	}
	if tr.Count() != n/10 {
		t.Fatalf("count = %d, want %d", tr.Count(), n/10)
	}
	// Remaining keys still retrievable, deleted ones gone.
	deleted := make(map[int]bool)
	for _, i := range perm[:n*9/10] {
		deleted[i] = true
	}
	for i := 0; i < n; i++ {
		_, ok, err := tr.Get(k(i))
		if err != nil {
			t.Fatal(err)
		}
		if ok == deleted[i] {
			t.Fatalf("key %d: ok=%v deleted=%v", i, ok, deleted[i])
		}
	}
	// Scan order still correct.
	var prev []byte
	count := 0
	tr.Scan(nil, nil, func(key, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, key) >= 0 {
			t.Fatal("scan out of order after deletes")
		}
		prev = append(prev[:0], key...)
		count++
		return true
	})
	if count != n/10 {
		t.Fatalf("scan count = %d", count)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := newTestTree(t, 256)
	const n = 500
	for i := 0; i < n; i++ {
		tr.Put(k(i), v(i))
	}
	for i := 0; i < n; i++ {
		if del, err := tr.Delete(k(i)); err != nil || !del {
			t.Fatalf("delete %d: %v %v", i, del, err)
		}
	}
	if tr.Count() != 0 {
		t.Fatalf("count = %d", tr.Count())
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d after deleting all", tr.Height())
	}
	if c := tr.NewCursor().First(); c.Valid() {
		t.Fatal("cursor valid after deleting everything")
	}
}

func TestCursorSeek(t *testing.T) {
	tr := newTestTree(t, 256)
	for i := 0; i < 100; i += 2 { // even keys only
		tr.Put(k(i), v(i))
	}
	c := tr.NewCursor().Seek(k(10))
	if !c.Valid() || !bytes.Equal(c.Key(), k(10)) {
		t.Fatalf("seek exact: %q", c.Key())
	}
	c.Seek(k(11)) // absent; lands on 12
	if !c.Valid() || !bytes.Equal(c.Key(), k(12)) {
		t.Fatalf("seek between: %q", c.Key())
	}
	c.Seek([]byte("zzz"))
	if c.Valid() {
		t.Fatal("seek past end should be invalid")
	}
	c.Seek([]byte(""))
	if !c.Valid() || !bytes.Equal(c.Key(), k(0)) {
		t.Fatal("seek to empty key should land on first")
	}
}

func TestScanRange(t *testing.T) {
	tr := newTestTree(t, 256)
	for i := 0; i < 100; i++ {
		tr.Put(k(i), v(i))
	}
	var got []string
	tr.Scan(k(10), k(20), func(key, _ []byte) bool {
		got = append(got, string(key))
		return true
	})
	if len(got) != 10 || got[0] != string(k(10)) || got[9] != string(k(19)) {
		t.Fatalf("range scan got %d entries: %v", len(got), got)
	}
	// Early stop.
	n := 0
	tr.Scan(nil, nil, func(_, _ []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestOpenPersistedTree(t *testing.T) {
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	p, _ := storage.NewPager(fs.Create("t"), 256)
	tr, _ := Create(p)
	for i := 0; i < 300; i++ {
		tr.Put(k(i), v(i))
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	f2, _ := fs.Open("t")
	p2, _ := storage.NewPager(f2, 256)
	tr2, err := Open(p2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Count() != 300 || tr2.Height() != tr.Height() {
		t.Fatalf("reopened: count=%d h=%d", tr2.Count(), tr2.Height())
	}
	for i := 0; i < 300; i++ {
		got, ok, err := tr2.Get(k(i))
		if err != nil || !ok || !bytes.Equal(got, v(i)) {
			t.Fatalf("reopened get %d: %v %v", i, ok, err)
		}
	}
	// Open of a non-btree file must fail.
	g := fs.Create("junk")
	g.WriteAt(make([]byte, 256), 0)
	pj, _ := storage.NewPager(g, 256)
	if _, err := Open(pj); err == nil {
		t.Fatal("open of junk should fail")
	}
}

func TestEntryTooLarge(t *testing.T) {
	tr := newTestTree(t, 256)
	if _, err := tr.Put(make([]byte, 300), []byte("v")); err == nil {
		t.Fatal("oversized entry accepted")
	}
}

func TestBulkLoad(t *testing.T) {
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	p, _ := storage.NewPager(fs.Create("t"), 256)
	b, err := NewBuilder(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		if err := b.Add(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != n {
		t.Fatalf("count = %d", tr.Count())
	}
	for _, i := range []int{0, 1, n / 2, n - 2, n - 1} {
		got, ok, err := tr.Get(k(i))
		if err != nil || !ok || !bytes.Equal(got, v(i)) {
			t.Fatalf("bulk get %d: %v %v", i, ok, err)
		}
	}
	i := 0
	tr.Scan(nil, nil, func(key, _ []byte) bool {
		if !bytes.Equal(key, k(i)) {
			t.Fatalf("bulk scan position %d: %q", i, key)
		}
		i++
		return true
	})
	if i != n {
		t.Fatalf("bulk scan visited %d", i)
	}
	// Tree must accept further inserts after bulk load.
	if _, err := tr.Put([]byte("zzzz"), []byte("after")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := tr.Get([]byte("zzzz"))
	if !ok || string(got) != "after" {
		t.Fatal("insert after bulk load lost")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	p, _ := storage.NewPager(fs.Create("t"), 256)
	b, _ := NewBuilder(p)
	tr, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 0 || tr.NewCursor().First().Valid() {
		t.Fatal("empty bulk load not empty")
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	p, _ := storage.NewPager(fs.Create("t"), 256)
	b, _ := NewBuilder(p)
	b.Add([]byte("b"), nil)
	if err := b.Add([]byte("a"), nil); err == nil {
		t.Fatal("descending key accepted")
	}
	if err := b.Add([]byte("b"), nil); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestBulkLoadIsSequentialOnDisk(t *testing.T) {
	disk := sim.NewDisk(sim.DefaultParams())
	fs := storage.NewFS(disk)
	p, _ := storage.NewPager(fs.Create("t"), 256)
	p.SetCacheLimit(4) // force continuous eviction during the build
	b, _ := NewBuilder(p)
	for i := 0; i < 5000; i++ {
		if err := b.Add(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := disk.Stats()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	d := disk.Stats().Sub(before)
	total := disk.Stats()
	// A bulk load must be overwhelmingly sequential writes.
	if total.Seeks > total.SequentialIO/10+5 {
		t.Fatalf("bulk load too seeky: %+v (finish delta %+v)", total, d)
	}
}

// TestAgainstReferenceModel drives random Put/Delete/Get against a map
// and checks full equivalence, including scan order.
func TestAgainstReferenceModel(t *testing.T) {
	tr := newTestTree(t, 512)
	ref := make(map[string]string)
	rng := rand.New(rand.NewSource(42))
	const ops = 20000
	for op := 0; op < ops; op++ {
		key := fmt.Sprintf("k%04d", rng.Intn(2000))
		switch rng.Intn(3) {
		case 0: // put
			val := fmt.Sprintf("v%d", rng.Intn(1000000))
			ins, err := tr.Put([]byte(key), []byte(val))
			if err != nil {
				t.Fatal(err)
			}
			_, existed := ref[key]
			if ins == existed {
				t.Fatalf("op %d: insert=%v but existed=%v", op, ins, existed)
			}
			ref[key] = val
		case 1: // delete
			del, err := tr.Delete([]byte(key))
			if err != nil {
				t.Fatal(err)
			}
			_, existed := ref[key]
			if del != existed {
				t.Fatalf("op %d: deleted=%v but existed=%v", op, del, existed)
			}
			delete(ref, key)
		case 2: // get
			got, ok, err := tr.Get([]byte(key))
			if err != nil {
				t.Fatal(err)
			}
			want, existed := ref[key]
			if ok != existed || (ok && string(got) != want) {
				t.Fatalf("op %d: get %q = %q,%v want %q,%v", op, key, got, ok, want, existed)
			}
		}
	}
	if tr.Count() != int64(len(ref)) {
		t.Fatalf("count = %d, ref has %d", tr.Count(), len(ref))
	}
	// Verify scan equals sorted reference.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	err := tr.Scan(nil, nil, func(key, val []byte) bool {
		if string(key) != keys[i] || string(val) != ref[keys[i]] {
			t.Fatalf("scan %d: got %q=%q want %q=%q", i, key, val, keys[i], ref[keys[i]])
		}
		i++
		return true
	})
	if err != nil || i != len(keys) {
		t.Fatalf("scan: err=%v visited=%d want=%d", err, i, len(keys))
	}
}

// TestFragmentationObservable checks the physical property Figure 9
// depends on: a freshly bulk-loaded tree scans with fewer seeks than
// the same tree after heavy random insertion.
func TestFragmentationObservable(t *testing.T) {
	build := func(randomInserts bool) int64 {
		disk := sim.NewDisk(sim.DefaultParams())
		fs := storage.NewFS(disk)
		p, _ := storage.NewPager(fs.Create("t"), 256)
		p.SetCacheLimit(8)
		var tr *Tree
		if randomInserts {
			tr, _ = Create(p)
			rng := rand.New(rand.NewSource(3))
			for _, i := range rng.Perm(4000) {
				tr.Put(k(i), v(i))
			}
		} else {
			b, _ := NewBuilder(p)
			for i := 0; i < 4000; i++ {
				b.Add(k(i), v(i))
			}
			tr, _ = b.Finish()
		}
		p.DropCache()
		before := disk.Stats()
		n := 0
		tr.Scan(nil, nil, func(_, _ []byte) bool { n++; return true })
		if n != 4000 {
			t.Fatalf("scan visited %d", n)
		}
		return disk.Stats().Sub(before).Seeks
	}
	seqSeeks := build(false)
	fragSeeks := build(true)
	if fragSeeks < seqSeeks*2 {
		t.Fatalf("fragmentation not observable: bulk=%d random=%d seeks", seqSeeks, fragSeeks)
	}
}
