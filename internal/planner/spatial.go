package planner

import (
	"fmt"
	"math"
	"time"

	"upidb/internal/cupi"
	"upidb/internal/prob"
	"upidb/internal/sim"
	"upidb/internal/stats"
)

// The physical plans the spatial planner chooses between. They extend
// the same PlanKind enum the discrete planner uses, so Explain output
// and QueryInfo.Plan render uniformly.
const (
	// RTreeProbe traverses the R-Tree with PCR filtering and fetches
	// the surviving candidates from the clustered heap (the paper's
	// Query 4 execution).
	RTreeProbe PlanKind = iota + FullScan + 1
	// SegmentScan probes the segment secondary index and fetches the
	// matching rows from the clustered heap (the paper's Query 5
	// execution).
	SegmentScan
	// SpatialScan reads the whole observation heap sequentially and
	// filters in flight — always available, and cheapest once a query
	// region covers most of the extent (or a segment is so popular the
	// index fetch touches most heap pages anyway).
	SpatialScan
)

// Spatial costs access paths for one continuous-UPI table from its
// SpatialCatalog statistics — the spatial counterpart of Planner. It
// reads statistics and table geometry live on every Plan call, so
// estimates track inserts without the planner being rebuilt.
type Spatial struct {
	tab  *cupi.Table
	cat  *stats.SpatialCatalog
	disk sim.Params
}

// NewSpatial creates a spatial planner reading statistics from cat.
func NewSpatial(tab *cupi.Table, cat *stats.SpatialCatalog, disk sim.Params) *Spatial {
	return &Spatial{tab: tab, cat: cat, disk: disk}
}

// Fresh reports whether the statistics are complete enough for
// automatic planner routing (spatial catalogs never go stale; see
// stats.SpatialCatalog).
func (p *Spatial) Fresh() bool { return p.cat.Fresh() }

// read returns the modeled sequential-read time for n bytes.
func (p *Spatial) read(bytes float64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	return time.Duration(bytes / (1 << 20) * float64(p.disk.ReadPerMB))
}

// PlanCircle costs the available plans for a circle query and returns
// them all, cheapest first. It fails with ErrNoStats when the catalog
// is unseeded.
func (p *Spatial) PlanCircle(q prob.Point, radius, threshold float64) ([]Plan, error) {
	if !p.cat.Seeded() {
		return nil, fmt.Errorf("%w: spatial catalog not seeded", ErrNoStats)
	}
	g := p.tab.Geometry()
	cand := p.cat.EstimateCircleCandidates(q, radius)
	avgObs := avgBytes(g.HeapBytes, g.Observations)
	nodeIO := p.disk.Seek + p.read(float64(g.NodePageSize))

	// R-Tree probe: root-to-leaf path plus one node read per candidate
	// leaf, then one mostly-sequential run over the candidates' heap
	// region (they cluster by construction).
	fill := 0.8 * float64(g.RTreeFanout)
	leaves := math.Ceil(cand / math.Max(fill, 1))
	if leaves < 1 {
		leaves = 1
	}
	probe := p.disk.Init + time.Duration(float64(g.RTreeHeight)+leaves)*nodeIO +
		p.disk.Seek + p.read(cand*avgObs)
	plans := []Plan{{
		Kind:          RTreeProbe,
		Attr:          "Loc",
		EstimatedCost: probe,
		EstimatedRows: cand,
		Detail:        fmt.Sprintf("grid estimate %.0f candidates over ~%.0f leaves", cand, leaves),
	}}
	plans = append(plans, p.spatialScanPlan(g, "Loc", cand))
	sortPlans(plans)
	return plans, nil
}

// PlanSegment costs the available plans for a segment PTQ and returns
// them all, cheapest first. It fails with ErrNoStats when the catalog
// is unseeded.
func (p *Spatial) PlanSegment(value string, qt float64) ([]Plan, error) {
	seg := p.cat.SegmentHistogram()
	if seg == nil {
		return nil, fmt.Errorf("%w: spatial catalog not seeded", ErrNoStats)
	}
	g := p.tab.Geometry()
	matches := seg.EstimateEntries(value, qt)
	avgObs := avgBytes(g.HeapBytes, g.Observations)
	avgEntry := avgBytes(g.SegBytes, seg.TotalEntries())

	// Segment index probe: root-to-leaf descent, a sequential run over
	// the matching index entries, then the clustered heap fetch —
	// segment and location correlate, so matches share heap pages (the
	// Figure 8 effect); charge one seek per heap-page run of 4.
	heapPages := math.Ceil(matches * avgObs / math.Max(float64(g.HeapPageSize), 1))
	seeks := 1 + math.Ceil(heapPages/4)
	idx := p.disk.Init + time.Duration(g.SegHeight)*p.disk.Seek + p.read(matches*avgEntry) +
		time.Duration(seeks)*p.disk.Seek + p.read(heapPages*float64(g.HeapPageSize))
	plans := []Plan{{
		Kind:          SegmentScan,
		Attr:          stats.SegmentAttr,
		EstimatedCost: idx,
		EstimatedRows: matches,
		Detail:        fmt.Sprintf("index estimate %.0f entries over ~%.0f heap pages", matches, heapPages),
	}}
	plans = append(plans, p.spatialScanPlan(g, stats.SegmentAttr, matches))
	sortPlans(plans)
	return plans, nil
}

// spatialScanPlan costs the always-available sequential full scan.
func (p *Spatial) spatialScanPlan(g cupi.Geometry, attr string, rows float64) Plan {
	cost := p.disk.Init + p.disk.Seek + p.read(float64(g.HeapBytes))
	return Plan{
		Kind:          SpatialScan,
		Attr:          attr,
		EstimatedCost: cost,
		EstimatedRows: rows,
		Detail:        fmt.Sprintf("sequential heap read of %d bytes", g.HeapBytes),
	}
}

func avgBytes(total, n int64) float64 {
	if n <= 0 {
		return 0
	}
	return float64(total) / float64(n)
}
