package planner

import (
	"slices"
	"sync"
)

// GenSource is a StatsSource whose content changes are summarized by a
// monotonically increasing generation number: wholesale statistics
// replacements (seeding, merge re-derivations) and freshness-threshold
// transitions advance it, incremental deltas that keep the catalog on
// the same side of the threshold do not. The plan cache keys its
// validity on it — a plan costed at generation g is served only while
// the source still reports g. stats.Catalog is the production
// implementation.
type GenSource interface {
	Generation() uint64
}

// maxPlanCacheEntries bounds one planner's cache. Shapes beyond the
// bound reset the map wholesale — production traffic is a handful of
// hot shapes, so an LRU would be bookkeeping for a case that means the
// cache is mis-sized anyway.
const maxPlanCacheEntries = 1024

// planKey identifies one query shape against one physical table
// layout. The fracture count is part of the key because plan costs
// price per-fracture lookups: a flush changes them without touching
// the statistics (no generation bump), and keying on the count retires
// those entries naturally.
type planKey struct {
	attr      string
	value     string
	qt        float64
	fractures int
}

// planCache memoizes costed plans for one planner (one shard). The
// whole map belongs to a single generation; the first access at a
// newer generation clears it. Safe for concurrent use.
type planCache struct {
	mu      sync.Mutex
	gen     uint64
	entries map[planKey][]Plan
}

// syncGenLocked retires the cached content when the source generation
// moved past the cache's. It reports whether gen is current — a stale
// reader (one that loaded its generation before a concurrent bump)
// must neither read nor store.
func (c *planCache) syncGenLocked(gen uint64) bool {
	if gen > c.gen {
		c.gen = gen
		clear(c.entries)
	}
	return gen == c.gen
}

// get returns a copy of the plans cached for k at generation gen.
func (c *planCache) get(gen uint64, k planKey) ([]Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.syncGenLocked(gen) {
		return nil, false
	}
	plans, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	// Callers rewrite Plan details when aggregating across shards;
	// hand them their own copy so the cached one stays pristine.
	return slices.Clone(plans), true
}

// put stores plans costed at generation gen, unless the cache has
// already moved on.
func (c *planCache) put(gen uint64, k planKey, plans []Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.syncGenLocked(gen) {
		return
	}
	if len(c.entries) >= maxPlanCacheEntries {
		clear(c.entries)
	}
	c.entries[k] = slices.Clone(plans)
}

// drop empties the cache (DropCaches); the generation is kept so
// in-flight stores against the old content still land consistently.
func (c *planCache) drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.entries)
}

// PlanPTQCached is PlanPTQ plus provenance: cached reports whether the
// plans were served from the generation-guarded cache rather than
// costed fresh. Planners without a GenSource always cost fresh.
func (p *Planner) PlanPTQCached(attr, value string, qt float64) (plans []Plan, cached bool, err error) {
	if p.cache == nil {
		plans, err = p.planPTQ(attr, value, qt)
		return plans, false, err
	}
	gen := p.gen.Generation()
	key := planKey{attr: attr, value: value, qt: qt, fractures: p.store.NumFractures()}
	if plans, ok := p.cache.get(gen, key); ok {
		p.met.PlanCacheHits.Inc()
		return plans, true, nil
	}
	p.met.PlanCacheMisses.Inc()
	plans, err = p.planPTQ(attr, value, qt)
	if err != nil {
		return nil, false, err
	}
	p.cache.put(gen, key, plans)
	return plans, false, nil
}

// DropPlanCache empties the plan cache, forcing the next request of
// every shape to cost fresh — the Table.DropCaches hook that keeps
// cold-cache benchmark runs deterministic. No-op without a cache.
func (p *Planner) DropPlanCache() {
	if p.cache != nil {
		p.cache.drop()
	}
}
