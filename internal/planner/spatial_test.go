package planner

import (
	"errors"
	"testing"

	"upidb/internal/cupi"
	"upidb/internal/dataset"
	"upidb/internal/prob"
	"upidb/internal/sim"
	"upidb/internal/stats"
	"upidb/internal/storage"
)

func newSpatialFixture(t *testing.T, n int) (*cupi.Table, *stats.SpatialCatalog, *dataset.Cartel) {
	t.Helper()
	cfg := dataset.DefaultCartelConfig()
	cfg.Observations = n
	cfg.GridN = 20
	c, err := dataset.GenerateCartel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	tab, err := cupi.BulkBuild(fs, "sp", c.Observations, cupi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := stats.NewSpatialCatalog()
	cat.Seed(c.Observations)
	return tab, cat, c
}

// TestSpatialPlannerRoutesByCoverage needs a table big enough that
// the sequential heap read dominates a handful of node-page seeks —
// the paper's regime; on a sub-megabyte heap the full scan genuinely
// wins everything and the comparison is vacuous.
func TestSpatialPlannerRoutesByCoverage(t *testing.T) {
	tab, cat, c := newSpatialFixture(t, 25000)
	p := NewSpatial(tab, cat, sim.DefaultParams())
	if !p.Fresh() {
		t.Fatal("seeded spatial planner must be fresh")
	}
	center := c.Extent.Center()

	// A tiny circle: the R-Tree probe must win.
	small, err := p.PlanCircle(center, 50, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if small[0].Kind != RTreeProbe {
		t.Fatalf("small radius chose %v:\n%s", small[0].Kind, Explain(small))
	}
	// A circle covering the whole extent: the sequential scan must win
	// (every leaf would be probed anyway, paying a seek each).
	huge, err := p.PlanCircle(center, 100*(c.Extent.MaxX-c.Extent.MinX), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if huge[0].Kind != SpatialScan {
		t.Fatalf("saturating radius chose %v:\n%s", huge[0].Kind, Explain(huge))
	}
	// Plans come back cheapest-first and Explain renders all of them.
	for _, plans := range [][]Plan{small, huge} {
		for i := 1; i < len(plans); i++ {
			if plans[i].EstimatedCost < plans[i-1].EstimatedCost {
				t.Fatalf("plans not sorted:\n%s", Explain(plans))
			}
		}
		if Explain(plans) == "" {
			t.Fatal("empty explain")
		}
	}
}

func TestSpatialPlannerSegment(t *testing.T) {
	tab, cat, c := newSpatialFixture(t, 25000)
	p := NewSpatial(tab, cat, sim.DefaultParams())
	counts := make(map[string]int)
	for _, o := range c.Observations {
		counts[o.Segment.First().Value]++
	}
	seg, best := "", 0
	for s, n := range counts {
		if n > best {
			seg, best = s, n
		}
	}
	plans, err := p.PlanSegment(seg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if plans[0].Kind != SegmentScan && plans[0].Kind != SpatialScan {
		t.Fatalf("segment plan %v", plans[0].Kind)
	}
	// A selective segment query must prefer the index.
	sel, err := p.PlanSegment(seg, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0].Kind != SegmentScan {
		t.Fatalf("selective segment query chose %v:\n%s", sel[0].Kind, Explain(sel))
	}
	if sel[0].EstimatedRows > plans[0].EstimatedRows {
		t.Fatalf("row estimate not monotone in qt: %v vs %v", sel[0].EstimatedRows, plans[0].EstimatedRows)
	}
}

func TestSpatialPlannerNoStats(t *testing.T) {
	tab, _, _ := newSpatialFixture(t, 200)
	p := NewSpatial(tab, stats.NewSpatialCatalog(), sim.DefaultParams())
	if p.Fresh() {
		t.Fatal("unseeded planner must not be fresh")
	}
	if _, err := p.PlanCircle(prob.Point{}, 100, 0.5); !errors.Is(err, ErrNoStats) {
		t.Fatalf("PlanCircle without stats: %v", err)
	}
	if _, err := p.PlanSegment("s", 0.5); !errors.Is(err, ErrNoStats) {
		t.Fatalf("PlanSegment without stats: %v", err)
	}
}
