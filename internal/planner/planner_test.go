package planner

import (
	"context"
	"errors"
	"strings"
	"testing"

	"upidb/internal/dataset"
	"upidb/internal/fracture"
	"upidb/internal/histogram"
	"upidb/internal/sim"
	"upidb/internal/storage"
	"upidb/internal/upi"
)

func testPlanner(t *testing.T) (*Planner, *fracture.Store, *dataset.DBLP) {
	t.Helper()
	cfg := dataset.DefaultDBLPConfig().Scaled(0.05)
	d, err := dataset.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := storage.NewFS(sim.NewDisk(sim.DefaultParams()))
	store, err := fracture.BulkLoad(fs, "authors", dataset.AttrInstitution,
		[]string{dataset.AttrCountry}, fracture.Config{UPI: upi.Options{Cutoff: 0.1}}, d.Authors)
	if err != nil {
		t.Fatal(err)
	}
	instHist, err := histogram.Build(dataset.AttrInstitution, d.Authors)
	if err != nil {
		t.Fatal(err)
	}
	countryHist, err := histogram.Build(dataset.AttrCountry, d.Authors)
	if err != nil {
		t.Fatal(err)
	}
	p := New(store, StaticStats{
		dataset.AttrInstitution: instHist,
		dataset.AttrCountry:     countryHist,
	}, sim.DefaultParams())
	return p, store, d
}

func TestMissingHistogramIsErrNoStats(t *testing.T) {
	_, store, d := testPlanner(t)
	countryHist, _ := histogram.Build(dataset.AttrCountry, d.Authors)
	p := New(store, StaticStats{dataset.AttrCountry: countryHist}, sim.DefaultParams())
	if _, err := p.PlanPTQ(dataset.AttrInstitution, dataset.MITInstitution, 0.3); !errors.Is(err, ErrNoStats) {
		t.Fatalf("uncovered primary attribute: %v", err)
	}
	if p.HasHistogram(dataset.AttrInstitution) || !p.HasHistogram(dataset.AttrCountry) {
		t.Fatal("HasHistogram coverage wrong")
	}
}

func TestPrimaryPlanBeatsFullScanWhenSelective(t *testing.T) {
	p, _, _ := testPlanner(t)
	plans, err := p.PlanPTQ(dataset.AttrInstitution, dataset.MITInstitution, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans: %+v", plans)
	}
	if plans[0].Kind != PrimaryScan {
		t.Fatalf("expected PrimaryScan to win: %s", Explain(plans))
	}
	if plans[0].EstimatedCost >= plans[1].EstimatedCost {
		t.Fatal("plans not sorted by cost")
	}
	if plans[0].EstimatedRows <= 0 {
		t.Fatal("row estimate missing")
	}
}

func TestSecondaryPlanAvailable(t *testing.T) {
	p, _, _ := testPlanner(t)
	plans, err := p.PlanPTQ(dataset.AttrCountry, dataset.JapanCountry, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []PlanKind
	for _, pl := range plans {
		kinds = append(kinds, pl.Kind)
	}
	if len(plans) != 2 || (kinds[0] != SecondaryTailored && kinds[1] != SecondaryTailored) {
		t.Fatalf("expected a secondary plan: %s", Explain(plans))
	}
}

func TestUnknownAttribute(t *testing.T) {
	p, _, _ := testPlanner(t)
	if _, err := p.PlanPTQ("Nope", "x", 0.1); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestExecuteMatchesDirectQuery(t *testing.T) {
	p, store, _ := testPlanner(t)
	rs, plan, _, err := p.Execute(context.Background(), dataset.AttrInstitution, dataset.MITInstitution, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := store.Query(context.Background(), dataset.MITInstitution, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(direct) {
		t.Fatalf("planner answer %d != direct %d (plan %v)", len(rs), len(direct), plan.Kind)
	}
	// Secondary attribute execution also agrees.
	rs, _, _, err = p.Execute(context.Background(), dataset.AttrCountry, dataset.JapanCountry, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	directSec, _, err := store.QuerySecondary(context.Background(), dataset.AttrCountry, dataset.JapanCountry, 0.3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(directSec) {
		t.Fatalf("secondary: %d != %d", len(rs), len(directSec))
	}
}

func TestExplainFormat(t *testing.T) {
	p, _, _ := testPlanner(t)
	plans, err := p.PlanPTQ(dataset.AttrInstitution, dataset.MITInstitution, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s := Explain(plans)
	if !strings.HasPrefix(s, "*") || !strings.Contains(s, "cost=") {
		t.Fatalf("explain output: %q", s)
	}
}

// TestPlannerTracksFractures: adding fractures raises every plan's
// cost via the Nfrac term.
func TestPlannerTracksFractures(t *testing.T) {
	p, store, d := testPlanner(t)
	before, err := p.PlanPTQ(dataset.AttrInstitution, dataset.MITInstitution, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tup := *d.Authors[i]
		tup.ID = uint64(900000 + i)
		if err := store.Insert(&tup); err != nil {
			t.Fatal(err)
		}
		if err := store.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	after, err := p.PlanPTQ(dataset.AttrInstitution, dataset.MITInstitution, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].EstimatedCost <= before[0].EstimatedCost {
		t.Fatalf("fractures should raise cost: %v -> %v", before[0].EstimatedCost, after[0].EstimatedCost)
	}
}

// TestCutoffCrossoverChangesPlanCost: for QT below the cutoff, the
// primary plan's estimate includes the saturation term and exceeds the
// same query above the cutoff.
func TestCutoffCrossoverChangesPlanCost(t *testing.T) {
	p, _, _ := testPlanner(t)
	below, err := p.PlanPTQ(dataset.AttrInstitution, dataset.MITInstitution, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	above, err := p.PlanPTQ(dataset.AttrInstitution, dataset.MITInstitution, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	costOf := func(plans []Plan, k PlanKind) (c int64) {
		for _, pl := range plans {
			if pl.Kind == k {
				return int64(pl.EstimatedCost)
			}
		}
		t.Fatalf("no %v plan", k)
		return 0
	}
	if costOf(below, PrimaryScan) <= costOf(above, PrimaryScan) {
		t.Fatal("QT below cutoff should cost more than above")
	}
}
