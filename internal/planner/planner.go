// Package planner implements the cost-based access-path selection the
// paper's Section 6 motivates: "The cost models are useful for the
// query optimizer to pick a query plan and for the database
// administrator to select tuning parameters."
//
// For a PTQ the planner compares three physical plans and picks the
// cheapest by estimated cost:
//
//   - PrimaryScan: seek the UPI heap and scan sequentially; if
//     QT < C, additionally chase cutoff pointers (Cost_cut).
//   - SecondaryTailored: probe a secondary index and fetch one heap
//     region per matching tuple with tailored access.
//   - FullScan: read the whole heap file and filter (always available;
//     wins once an index plan's pointer chasing saturates).
//
// Estimates come from the Section 6.1 histograms and the Section 6.2/
// 6.3 cost models, so Explain output shows exactly the terms the paper
// defines.
package planner

import (
	"context"
	"errors"
	"fmt"
	"time"

	"upidb/internal/costmodel"
	"upidb/internal/fracture"
	"upidb/internal/histogram"
	"upidb/internal/sim"
	"upidb/internal/upi"
)

// ErrNoStats reports planning without the needed statistics: either no
// histograms were built at all, or none covers the queried attribute.
// The public facade re-exports it.
var ErrNoStats = errors.New("upidb: no statistics (call BuildStats)")

// PlanKind identifies a physical access path.
type PlanKind int

// The physical plans the planner chooses between.
const (
	PrimaryScan PlanKind = iota
	SecondaryTailored
	FullScan
)

func (k PlanKind) String() string {
	switch k {
	case PrimaryScan:
		return "PrimaryScan"
	case SecondaryTailored:
		return "SecondaryTailored"
	case FullScan:
		return "FullScan"
	}
	return fmt.Sprintf("PlanKind(%d)", int(k))
}

// Plan is one costed access path.
type Plan struct {
	Kind PlanKind
	// Attr is the index attribute the plan uses (primary attribute
	// for PrimaryScan/FullScan, the secondary attribute otherwise).
	Attr string
	// EstimatedCost is the modeled runtime from the cost models.
	EstimatedCost time.Duration
	// EstimatedRows is the expected number of matching entries.
	EstimatedRows float64
	// Detail is a human-readable breakdown of the estimate.
	Detail string
}

// Planner holds the statistics and parameters needed to cost plans for
// one table.
type Planner struct {
	store *fracture.Store
	// hists maps attribute name to its histogram; the primary
	// attribute must be present, secondary attributes optionally.
	hists map[string]*histogram.Histogram
	disk  sim.Params
}

// New creates a planner for a fractured-UPI table. hists must contain
// a histogram for the table's primary attribute; add histograms for
// secondary attributes to enable costing secondary plans.
func New(store *fracture.Store, hists map[string]*histogram.Histogram, disk sim.Params) (*Planner, error) {
	if _, ok := hists[store.Main().Attr()]; !ok {
		return nil, fmt.Errorf("planner: missing histogram for primary attribute %q", store.Main().Attr())
	}
	return &Planner{store: store, hists: hists, disk: disk}, nil
}

// params assembles cost-model parameters from the live table state.
func (p *Planner) params() costmodel.Params {
	main := p.store.Main()
	return costmodel.Params{
		Disk:       p.disk,
		Height:     main.Heap().Height(),
		TableBytes: p.store.SizeBytes(),
		Leaves:     main.Heap().Leaves(),
		Fractures:  p.store.NumFractures(),
	}
}

// PlanPTQ costs the available plans for "attr = value AND confidence
// >= qt" and returns them all, cheapest first. attr may be the primary
// attribute or any secondary attribute with a histogram.
func (p *Planner) PlanPTQ(attr, value string, qt float64) ([]Plan, error) {
	main := p.store.Main()
	cm := p.params()
	cutoff := main.Options().Cutoff

	var plans []Plan
	hist := p.hists[attr]
	if hist == nil {
		return nil, fmt.Errorf("%w: no histogram for attribute %q", ErrNoStats, attr)
	}

	// Full scan is always available: read everything once, filter.
	fullScan := cm.CostScan() + time.Duration(1+p.store.NumFractures())*
		(p.disk.Init+time.Duration(cm.Height)*p.disk.Seek)
	plans = append(plans, Plan{
		Kind:          FullScan,
		Attr:          main.Attr(),
		EstimatedCost: fullScan,
		EstimatedRows: hist.EstimateEntries(value, qt),
		Detail:        fmt.Sprintf("Costscan=%v over %d partitions", cm.CostScan(), 1+p.store.NumFractures()),
	})

	if attr == main.Attr() {
		scanQT := qt
		if cutoff > scanQT {
			scanQT = cutoff
		}
		sel := 0.0
		if total := hist.EstimateHeapEntriesTotal(cutoff); total > 0 {
			sel = hist.EstimateEntries(value, scanQT) / total
		}
		var cost time.Duration
		var detail string
		if qt < cutoff {
			ptrs := hist.EstimateCutoffPointers(value, qt, cutoff)
			cost = cm.CostCutoff(sel, ptrs)
			detail = fmt.Sprintf("Costcut: sel=%.5f pointers=%.0f f(x)=%v", sel, ptrs, cm.Saturation(ptrs))
		} else {
			cost = cm.CostSingle(sel)
			detail = fmt.Sprintf("heap scan only: sel=%.5f", sel)
		}
		// Per-fracture lookups on top.
		cost += time.Duration(p.store.NumFractures()) * (p.disk.Init + time.Duration(cm.Height)*p.disk.Seek)
		plans = append(plans, Plan{
			Kind:          PrimaryScan,
			Attr:          attr,
			EstimatedCost: cost,
			EstimatedRows: hist.EstimateEntries(value, qt),
			Detail:        detail,
		})
	} else {
		// Secondary plan: index scan (cheap, sequential) plus one
		// heap fetch per matching entry; tailored access consolidates
		// fetches into shared regions, modeled by the saturation
		// curve over the matching entry count.
		rows := hist.EstimateEntries(value, qt)
		fetch := cm.Saturation(rows)
		cost := 2*(p.disk.Init+time.Duration(cm.Height)*p.disk.Seek) + fetch
		cost += time.Duration(p.store.NumFractures()) * (p.disk.Init + time.Duration(cm.Height)*p.disk.Seek)
		plans = append(plans, Plan{
			Kind:          SecondaryTailored,
			Attr:          attr,
			EstimatedCost: cost,
			EstimatedRows: rows,
			Detail:        fmt.Sprintf("secondary probe + tailored fetch f(%.0f)=%v", rows, fetch),
		})
	}

	sortPlans(plans)
	return plans, nil
}

func sortPlans(plans []Plan) {
	for i := 1; i < len(plans); i++ {
		for j := i; j > 0 && plans[j].EstimatedCost < plans[j-1].EstimatedCost; j-- {
			plans[j-1], plans[j] = plans[j], plans[j-1]
		}
	}
}

// Explain formats the costed plans like a database EXPLAIN.
func Explain(plans []Plan) string {
	out := ""
	for i, pl := range plans {
		marker := " "
		if i == 0 {
			marker = "*"
		}
		out += fmt.Sprintf("%s %-18s attr=%-12s cost=%-12v rows=%-8.0f %s\n",
			marker, pl.Kind, pl.Attr, pl.EstimatedCost.Round(time.Millisecond), pl.EstimatedRows, pl.Detail)
	}
	return out
}

// HasHistogram reports whether BuildStats covered attr, i.e. whether
// PlanPTQ can cost plans for it.
func (p *Planner) HasHistogram(attr string) bool { return p.hists[attr] != nil }

// Execute runs the query with the cheapest plan and returns the
// results along with the plan that was chosen and the execution
// statistics. The context is honored by the underlying store scan;
// parallelism overrides the store's partition fan-out for this query
// (0 = store default).
func (p *Planner) Execute(ctx context.Context, attr, value string, qt float64, parallelism int) ([]upi.Result, Plan, fracture.Stats, error) {
	plans, err := p.PlanPTQ(attr, value, qt)
	if err != nil {
		return nil, Plan{}, fracture.Stats{}, err
	}
	best := plans[0]
	req := fracture.Req{Value: value, QT: qt, Parallelism: parallelism}
	switch best.Kind {
	case PrimaryScan:
		req.Kind = fracture.KindPTQ
	case SecondaryTailored:
		req.Kind = fracture.KindSecondary
		req.Attr = attr
		req.Tailored = true
	case FullScan:
		// The fractured store exposes no direct scan, so the full-scan
		// plan executes through the widest PTQ on the chosen attribute;
		// the point of the plan is its *cost*, which the caller already
		// accepted as a full read.
		if attr == p.store.Main().Attr() {
			req.Kind = fracture.KindPTQ
		} else {
			req.Kind = fracture.KindSecondary
			req.Attr = attr
			req.Tailored = true
		}
	default:
		return nil, best, fracture.Stats{}, fmt.Errorf("planner: unknown plan %v", best.Kind)
	}
	rs, st, err := p.store.Run(ctx, req)
	return rs, best, st, err
}
