// Package planner implements the cost-based access-path selection the
// paper's Section 6 motivates: "The cost models are useful for the
// query optimizer to pick a query plan and for the database
// administrator to select tuning parameters."
//
// For a PTQ the planner compares three physical plans and picks the
// cheapest by estimated cost:
//
//   - PrimaryScan: seek the UPI heap and scan sequentially; if
//     QT < C, additionally chase cutoff pointers (Cost_cut).
//   - SecondaryTailored: probe a secondary index and fetch one heap
//     region per matching tuple with tailored access.
//   - FullScan: read the whole heap file and filter (always available;
//     wins once an index plan's pointer chasing saturates).
//
// Estimates come from the Section 6.1 histograms and the Section 6.2/
// 6.3 cost models, so Explain output shows exactly the terms the paper
// defines.
package planner

import (
	"context"
	"errors"
	"fmt"
	"time"

	"upidb/internal/costmodel"
	"upidb/internal/fracture"
	"upidb/internal/histogram"
	"upidb/internal/obs"
	"upidb/internal/sim"
	"upidb/internal/upi"
)

// ErrNoStats reports planning without the needed statistics: either no
// histograms were built at all, or none covers the queried attribute.
// The public facade re-exports it.
var ErrNoStats = errors.New("upidb: no statistics (call BuildStats)")

// PlanKind identifies a physical access path.
type PlanKind int

// The physical plans the planner chooses between.
const (
	PrimaryScan PlanKind = iota
	SecondaryTailored
	FullScan
)

func (k PlanKind) String() string {
	switch k {
	case PrimaryScan:
		return "PrimaryScan"
	case SecondaryTailored:
		return "SecondaryTailored"
	case FullScan:
		return "FullScan"
	case RTreeProbe:
		return "RTreeProbe"
	case SegmentScan:
		return "SegmentIndexScan"
	case SpatialScan:
		return "SpatialFullScan"
	}
	return fmt.Sprintf("PlanKind(%d)", int(k))
}

// Plan is one costed access path.
type Plan struct {
	Kind PlanKind
	// Attr is the attribute the query's predicate filters on (for a
	// FullScan it names the attribute the filter applies to, not an
	// index).
	Attr string
	// EstimatedCost is the modeled runtime from the cost models.
	EstimatedCost time.Duration
	// EstimatedRows is the expected number of matching entries.
	EstimatedRows float64
	// Detail is a human-readable breakdown of the estimate.
	Detail string
}

// StatsSource supplies the planner's statistics. Histogram returns the
// live histogram for an attribute, or nil when no usable statistics
// exist for it (PlanPTQ then fails with ErrNoStats). stats.Catalog is
// the production implementation; StaticStats adapts a fixed map.
type StatsSource interface {
	Histogram(attr string) *histogram.Histogram
}

// StaticStats adapts a fixed attribute→histogram map into a
// StatsSource, for callers that build statistics once by hand.
type StaticStats map[string]*histogram.Histogram

// Histogram returns the mapped histogram (nil when absent).
func (m StaticStats) Histogram(attr string) *histogram.Histogram { return m[attr] }

// Planner holds the statistics and parameters needed to cost plans for
// one table. It reads statistics live from its StatsSource on every
// PlanPTQ call, so estimates track inserts, deletes and merges without
// the planner being rebuilt.
type Planner struct {
	store *fracture.Store
	src   StatsSource
	disk  sim.Params

	// gen and cache are set when src carries a generation number
	// (GenSource); they let repeated query shapes reuse costed plans —
	// see cache.go. met is nil-safe and defaults to a no-op sink.
	gen   GenSource
	cache *planCache
	met   *obs.EngineMetrics
}

// New creates a planner for a fractured-UPI table reading statistics
// from src. Attribute coverage is checked per query: PlanPTQ fails
// with ErrNoStats for attributes src has no histogram for.
//
// When src also implements GenSource (stats.Catalog does), the planner
// caches costed plans keyed on the query shape and serves them back
// while the source's generation and the table's partition layout are
// unchanged. A plain StatsSource gets no cache: without a generation
// number there is no safe invalidation signal.
func New(store *fracture.Store, src StatsSource, disk sim.Params) *Planner {
	p := &Planner{store: store, src: src, disk: disk, met: &obs.EngineMetrics{}}
	if gs, ok := src.(GenSource); ok {
		p.gen = gs
		p.cache = &planCache{entries: make(map[planKey][]Plan)}
	}
	return p
}

// SetMetrics wires the counters plan-cache traffic reports into. Must
// be called before the planner is shared; nil restores the no-op sink.
func (p *Planner) SetMetrics(met *obs.EngineMetrics) {
	if met == nil {
		met = &obs.EngineMetrics{}
	}
	p.met = met
}

// params assembles cost-model parameters from the live table state.
func (p *Planner) params() costmodel.Params {
	main := p.store.Main()
	return costmodel.Params{
		Disk:       p.disk,
		Height:     main.Heap().Height(),
		TableBytes: p.store.SizeBytes(),
		Leaves:     main.Heap().Leaves(),
		Fractures:  p.store.NumFractures(),
	}
}

// PlanPTQ costs the available plans for "attr = value AND confidence
// >= qt" and returns them all, cheapest first. attr may be the primary
// attribute or any secondary attribute with a histogram. Repeated
// shapes are served from the plan cache when one is enabled; use
// PlanPTQCached to learn whether a result came from it.
func (p *Planner) PlanPTQ(attr, value string, qt float64) ([]Plan, error) {
	plans, _, err := p.PlanPTQCached(attr, value, qt)
	return plans, err
}

// planPTQ is the uncached costing pass.
func (p *Planner) planPTQ(attr, value string, qt float64) ([]Plan, error) {
	main := p.store.Main()
	cm := p.params()
	cutoff := main.Options().Cutoff

	var plans []Plan
	hist := p.src.Histogram(attr)
	if hist == nil {
		return nil, fmt.Errorf("%w: no histogram for attribute %q", ErrNoStats, attr)
	}

	// Full scan is always available: read everything once, filter.
	fullScan := cm.CostScan() + time.Duration(1+p.store.NumFractures())*
		(p.disk.Init+time.Duration(cm.Height)*p.disk.Seek)
	plans = append(plans, Plan{
		Kind:          FullScan,
		Attr:          attr,
		EstimatedCost: fullScan,
		EstimatedRows: hist.EstimateEntries(value, qt),
		Detail:        fmt.Sprintf("Costscan=%v over %d partitions", cm.CostScan(), 1+p.store.NumFractures()),
	})

	if attr == main.Attr() {
		scanQT := qt
		if cutoff > scanQT {
			scanQT = cutoff
		}
		sel := 0.0
		if total := hist.EstimateHeapEntriesTotal(cutoff); total > 0 {
			sel = hist.EstimateEntries(value, scanQT) / total
		}
		var cost time.Duration
		var detail string
		if qt < cutoff {
			ptrs := hist.EstimateCutoffPointers(value, qt, cutoff)
			cost = cm.CostCutoff(sel, ptrs)
			detail = fmt.Sprintf("Costcut: sel=%.5f pointers=%.0f f(x)=%v", sel, ptrs, cm.Saturation(ptrs))
		} else {
			cost = cm.CostSingle(sel)
			detail = fmt.Sprintf("heap scan only: sel=%.5f", sel)
		}
		// Per-fracture lookups on top.
		cost += time.Duration(p.store.NumFractures()) * (p.disk.Init + time.Duration(cm.Height)*p.disk.Seek)
		plans = append(plans, Plan{
			Kind:          PrimaryScan,
			Attr:          attr,
			EstimatedCost: cost,
			EstimatedRows: hist.EstimateEntries(value, qt),
			Detail:        detail,
		})
	} else {
		// Secondary plan: index scan (cheap, sequential) plus one
		// heap fetch per matching entry; tailored access consolidates
		// fetches into shared regions, modeled by the saturation
		// curve over the matching entry count.
		rows := hist.EstimateEntries(value, qt)
		fetch := cm.Saturation(rows)
		cost := 2*(p.disk.Init+time.Duration(cm.Height)*p.disk.Seek) + fetch
		cost += time.Duration(p.store.NumFractures()) * (p.disk.Init + time.Duration(cm.Height)*p.disk.Seek)
		plans = append(plans, Plan{
			Kind:          SecondaryTailored,
			Attr:          attr,
			EstimatedCost: cost,
			EstimatedRows: rows,
			Detail:        fmt.Sprintf("secondary probe + tailored fetch f(%.0f)=%v", rows, fetch),
		})
	}

	sortPlans(plans)
	return plans, nil
}

func sortPlans(plans []Plan) {
	for i := 1; i < len(plans); i++ {
		for j := i; j > 0 && plans[j].EstimatedCost < plans[j-1].EstimatedCost; j-- {
			plans[j-1], plans[j] = plans[j], plans[j-1]
		}
	}
}

// Explain formats the costed plans like a database EXPLAIN.
func Explain(plans []Plan) string {
	out := ""
	for i, pl := range plans {
		marker := " "
		if i == 0 {
			marker = "*"
		}
		out += fmt.Sprintf("%s %-18s attr=%-12s cost=%-12v rows=%-8.0f %s\n",
			marker, pl.Kind, pl.Attr, pl.EstimatedCost.Round(time.Millisecond), pl.EstimatedRows, pl.Detail)
	}
	return out
}

// HasHistogram reports whether the statistics source covers attr,
// i.e. whether PlanPTQ can cost plans for it.
func (p *Planner) HasHistogram(attr string) bool { return p.src.Histogram(attr) != nil }

// Execute runs the query with the cheapest plan and returns the
// results along with the plan that was chosen and the execution
// statistics. The context is honored by the underlying store scan;
// parallelism overrides the store's partition fan-out for this query
// (0 = store default).
func (p *Planner) Execute(ctx context.Context, attr, value string, qt float64, parallelism int) ([]upi.Result, Plan, fracture.Stats, error) {
	plans, err := p.PlanPTQ(attr, value, qt)
	if err != nil {
		return nil, Plan{}, fracture.Stats{}, err
	}
	rs, st, err := p.ExecutePlan(ctx, plans[0], value, qt, parallelism)
	return rs, plans[0], st, err
}

// PlanReq translates a costed plan into the fractured store's query
// descriptor, without executing anything. Callers that need lazy or
// streaming execution build the Req here and hand it to Store.Prepare
// themselves; ExecutePlan is the materialized shorthand.
func PlanReq(pl Plan, value string, qt float64, parallelism int) (fracture.Req, error) {
	req := fracture.Req{Value: value, QT: qt, Parallelism: parallelism}
	switch pl.Kind {
	case PrimaryScan:
		req.Kind = fracture.KindPTQ
	case SecondaryTailored:
		req.Kind = fracture.KindSecondary
		req.Attr = pl.Attr
		req.Tailored = true
	case FullScan:
		// A genuine physical full scan: every partition's heap is read
		// sequentially (wide read-ahead, one seek per run of pages) and
		// filtered in flight, with no index involved — exactly what
		// Costscan models. This is where the planner beats the fixed
		// heuristic: once an index plan's pointer chasing saturates,
		// the sequential scan is cheaper.
		req.Kind = fracture.KindScan
		req.Attr = pl.Attr
	default:
		return fracture.Req{}, fmt.Errorf("planner: unknown plan %v", pl.Kind)
	}
	return req, nil
}

// ExecutePlan runs a PTQ with one specific plan (normally plans[0]
// from PlanPTQ). Splitting planning from execution lets callers make
// admission decisions — e.g. comparing the plan's estimated cost
// against a context deadline — before any partition is pinned.
func (p *Planner) ExecutePlan(ctx context.Context, pl Plan, value string, qt float64, parallelism int) ([]upi.Result, fracture.Stats, error) {
	req, err := PlanReq(pl, value, qt, parallelism)
	if err != nil {
		return nil, fracture.Stats{}, err
	}
	return p.store.Run(ctx, req)
}
