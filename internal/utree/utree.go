// Package utree implements a U-Tree (Tao et al., VLDB 2005) over the
// page-based R-Tree: an index for uncertain 2-D objects with
// constrained-Gaussian uncertainty, supporting probabilistic threshold
// range queries.
//
// Each leaf entry stores the object's uncertainty-region MBR plus
// precomputed probabilistically-constrained region (PCR) radii — the
// quantile radii containing {0.3, 0.5, 0.7, 0.9} of the probability
// mass. At query time the PCRs accept or reject most candidates
// without touching the object; only undecided candidates are fetched
// and integrated exactly.
//
// As in the paper, this U-Tree is a *secondary* index: objects live in
// an unclustered heap file and every fetch is a random access. It is
// the baseline the continuous UPI (package cupi) is compared against
// in Figure 7.
package utree

import (
	"fmt"
	"sort"

	"upidb/internal/btree"
	"upidb/internal/heapfile"
	"upidb/internal/keyenc"
	"upidb/internal/prob"
	"upidb/internal/rtree"
	"upidb/internal/storage"
	"upidb/internal/tuple"
	"upidb/internal/upi"
)

// PCRProbs are the probability levels whose quantile radii are
// precomputed into each leaf entry's Aux payload.
var PCRProbs = [rtree.AuxSize]float64{0.3, 0.5, 0.7, 0.9}

// PCRAux computes the Aux payload for an object: quantile radii at
// PCRProbs.
func PCRAux(g prob.ConstrainedGaussian) [rtree.AuxSize]float64 {
	var aux [rtree.AuxSize]float64
	for i, p := range PCRProbs {
		aux[i] = g.QuantileRadius(p)
	}
	return aux
}

// PCRDecision classifies a candidate against a circular query without
// accessing the object.
type PCRDecision int

// PCR pruning outcomes.
const (
	PCRUndecided PCRDecision = iota
	PCRAccept
	PCRReject
)

// CheckPCR applies the accept/reject rules. center is the uncertainty
// region's center (the MBR center), aux its quantile radii.
//
//   - Accept: some disk(center, r_p) with p >= threshold lies fully
//     inside the query circle, so P(inside) >= p >= threshold.
//   - Reject: the query circle misses disk(center, r_p) entirely, so
//     P(inside) <= 1-p; reject when 1-p < threshold.
func CheckPCR(center prob.Point, aux [rtree.AuxSize]float64, q prob.Point, radius, threshold float64) PCRDecision {
	d := center.Dist(q)
	for i := len(PCRProbs) - 1; i >= 0; i-- {
		p, rp := PCRProbs[i], aux[i]
		if p >= threshold && d+rp <= radius {
			return PCRAccept
		}
	}
	for i := range PCRProbs {
		p, rp := PCRProbs[i], aux[i]
		if d >= radius+rp && 1-p < threshold {
			return PCRReject
		}
	}
	return PCRUndecided
}

// Options configure a U-Tree-indexed table.
type Options struct {
	// NodePageSize is the R-Tree node page size (default 4 KiB).
	NodePageSize int
	// HeapPageSize is the unclustered heap page size (default 8 KiB).
	HeapPageSize int
	CachePages   int
}

func (o Options) withDefaults() Options {
	if o.NodePageSize == 0 {
		o.NodePageSize = storage.RTreePageSize
	}
	if o.HeapPageSize == 0 {
		o.HeapPageSize = storage.DefaultPageSize
	}
	if o.CachePages == 0 {
		o.CachePages = storage.DefaultCachePages
	}
	return o
}

// Index is a U-Tree over an unclustered observation heap.
type Index struct {
	fs   *storage.FS
	name string
	opts Options

	rt     *rtree.Tree
	heap   *heapfile.Heap
	segIdx *btree.Tree
	rows   map[uint64]heapfile.RowID
}

// Result is one query answer.
type Result struct {
	Obs *tuple.Observation
	// Confidence is the appearance probability within the query region.
	Confidence float64
}

// Stats describes the work one query did.
type Stats struct {
	Candidates   int // leaf entries whose MBR intersected the query
	PCRAccepted  int
	PCRRejected  int
	Integrations int // exact integrations performed
	Fetched      int // heap records fetched
}

// BulkBuild loads observations into a new U-Tree table. The heap is
// filled in observation (arrival) order — unclustered — and the R-Tree
// is STR-bulk-loaded.
func BulkBuild(fs *storage.FS, name string, obs []*tuple.Observation, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	u := &Index{fs: fs, name: name, opts: opts, rows: make(map[uint64]heapfile.RowID, len(obs))}

	hp, err := storage.NewPager(fs.Create(name+".utree.heap"), opts.HeapPageSize)
	if err != nil {
		return nil, err
	}
	if err := hp.SetCacheLimit(opts.CachePages); err != nil {
		return nil, err
	}
	if u.heap, err = heapfile.Create(hp); err != nil {
		return nil, err
	}
	entries := make([]rtree.Entry, 0, len(obs))
	for _, o := range obs {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		rid, err := u.heap.Append(tuple.EncodeObservation(o))
		if err != nil {
			return nil, err
		}
		u.rows[o.ID] = rid
		entries = append(entries, rtree.Entry{MBR: o.Loc.MBR(), Data: o.ID, Aux: PCRAux(o.Loc)})
	}

	np, err := storage.NewPager(fs.Create(name+".utree.rtree"), opts.NodePageSize)
	if err != nil {
		return nil, err
	}
	if err := np.SetCacheLimit(opts.CachePages); err != nil {
		return nil, err
	}
	if u.rt, err = rtree.Create(np); err != nil {
		return nil, err
	}
	if err := u.rt.BulkLoad(entries); err != nil {
		return nil, err
	}

	// Segment secondary index over the unclustered heap (the
	// "PII on unclustered heap" configuration of Figure 8).
	type segEntry struct {
		key []byte
		rid heapfile.RowID
	}
	var segs []segEntry
	for _, o := range obs {
		for _, a := range o.Segment {
			segs = append(segs, segEntry{key: upi.HeapKey(a.Value, a.Prob, o.ID), rid: u.rows[o.ID]})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return keyenc.Compare(segs[i].key, segs[j].key) < 0 })
	sp, err := storage.NewPager(fs.Create(name+".utree.seg"), storage.DefaultPageSize)
	if err != nil {
		return nil, err
	}
	if err := sp.SetCacheLimit(opts.CachePages); err != nil {
		return nil, err
	}
	sb, err := btree.NewBuilder(sp)
	if err != nil {
		return nil, err
	}
	for _, s := range segs {
		if err := sb.Add(s.key, EncodeRowID(s.rid)); err != nil {
			return nil, err
		}
	}
	if u.segIdx, err = sb.Finish(); err != nil {
		return nil, err
	}
	if err := u.Flush(); err != nil {
		return nil, err
	}
	return u, nil
}

// EncodeRowID serializes a RowID as a segment-index value.
func EncodeRowID(rid heapfile.RowID) []byte {
	v := keyenc.AppendUint64(nil, uint64(rid.Page))
	return keyenc.AppendUint64(v, uint64(rid.Slot))
}

// DecodeRowID parses a RowID produced by EncodeRowID.
func DecodeRowID(v []byte) (heapfile.RowID, error) {
	pg, rest, err := keyenc.DecodeUint64(v)
	if err != nil {
		return heapfile.RowID{}, err
	}
	slot, _, err := keyenc.DecodeUint64(rest)
	if err != nil {
		return heapfile.RowID{}, err
	}
	return heapfile.RowID{Page: storage.PageID(pg), Slot: uint16(slot)}, nil
}

// ScanSegmentIndex collects RowIDs and per-object confidences for one
// segment value above qt from a {segment, conf DESC, id} -> RowID
// index. Shared by the U-Tree and continuous-UPI query paths.
func ScanSegmentIndex(idx *btree.Tree, seg string, qt float64) ([]heapfile.RowID, map[uint64]float64, error) {
	var (
		rids    []heapfile.RowID
		confs   = make(map[uint64]float64)
		scanErr error
	)
	start, end := upi.ValuePrefix(seg), upi.ValuePrefixEnd(seg)
	err := idx.Scan(start, end, func(k, v []byte) bool {
		_, conf, id, err := upi.DecodeHeapKey(k)
		if err != nil {
			scanErr = err
			return false
		}
		if conf < qt {
			return false
		}
		rid, err := DecodeRowID(v)
		if err != nil {
			scanErr = err
			return false
		}
		rids = append(rids, rid)
		confs[id] = conf
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return nil, nil, err
	}
	return rids, confs, nil
}

// FetchSegmentResults fetches observations for the collected RowIDs in
// heap (physical) order and attaches confidences.
func FetchSegmentResults(heap *heapfile.Heap, rids []heapfile.RowID, confs map[uint64]float64) ([]Result, error) {
	sorted := append([]heapfile.RowID(nil), rids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	var results []Result
	for _, rid := range sorted {
		rec, ok, err := heap.Get(rid)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		o, err := tuple.DecodeObservation(rec)
		if err != nil {
			return nil, err
		}
		results = append(results, Result{Obs: o, Confidence: confs[o.ID]})
	}
	SortResults(results)
	return results, nil
}

// SortResults orders results by confidence DESC, ID ASC.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Confidence != rs[j].Confidence {
			return rs[i].Confidence > rs[j].Confidence
		}
		return rs[i].Obs.ID < rs[j].Obs.ID
	})
}

// QuerySegment answers the paper's Query 5 on the unclustered baseline.
func (u *Index) QuerySegment(seg string, qt float64) ([]Result, error) {
	rids, confs, err := ScanSegmentIndex(u.segIdx, seg, qt)
	if err != nil {
		return nil, err
	}
	return FetchSegmentResults(u.heap, rids, confs)
}

// SegmentIndex exposes the secondary index tree.
func (u *Index) SegmentIndex() *btree.Tree { return u.segIdx }

// Insert adds one observation (R-Tree insert + heap append).
func (u *Index) Insert(o *tuple.Observation) error {
	if err := o.Validate(); err != nil {
		return err
	}
	rid, err := u.heap.Append(tuple.EncodeObservation(o))
	if err != nil {
		return err
	}
	u.rows[o.ID] = rid
	if err := u.rt.Insert(rtree.Entry{MBR: o.Loc.MBR(), Data: o.ID, Aux: PCRAux(o.Loc)}); err != nil {
		return err
	}
	for _, a := range o.Segment {
		if _, err := u.segIdx.Put(upi.HeapKey(a.Value, a.Prob, o.ID), EncodeRowID(rid)); err != nil {
			return err
		}
	}
	return nil
}

// RTree exposes the underlying R-Tree.
func (u *Index) RTree() *rtree.Tree { return u.rt }

// Heap exposes the unclustered heap.
func (u *Index) Heap() *heapfile.Heap { return u.heap }

// SizeBytes returns the on-disk size of the index, heap and segment
// index.
func (u *Index) SizeBytes() int64 {
	return u.fs.Size(u.name+".utree.heap") + u.fs.Size(u.name+".utree.rtree") + u.fs.Size(u.name+".utree.seg")
}

// Flush writes all dirty pages.
func (u *Index) Flush() error {
	if err := u.heap.Pager().Flush(); err != nil {
		return err
	}
	if u.segIdx != nil {
		if err := u.segIdx.Pager().Flush(); err != nil {
			return err
		}
	}
	return u.rt.Pager().Flush()
}

// DropCaches empties the buffer pools (cold-cache state).
func (u *Index) DropCaches() error {
	if err := u.heap.Pager().DropCache(); err != nil {
		return err
	}
	if u.segIdx != nil {
		if err := u.segIdx.Pager().DropCache(); err != nil {
			return err
		}
	}
	return u.rt.Pager().DropCache()
}

// QueryCircle answers the paper's Query 4: all observations within
// radius of q with appearance probability >= threshold.
func (u *Index) QueryCircle(q prob.Point, radius, threshold float64) ([]Result, Stats, error) {
	var stats Stats
	queryMBR := prob.Rect{MinX: q.X - radius, MinY: q.Y - radius, MaxX: q.X + radius, MaxY: q.Y + radius}

	// Phase 1: R-Tree traversal + PCR filtering (index I/O only).
	type cand struct {
		id       uint64
		accepted bool
	}
	var cands []cand
	err := u.rt.Search(queryMBR, func(e rtree.Entry) bool {
		stats.Candidates++
		switch CheckPCR(e.MBR.Center(), e.Aux, q, radius, threshold) {
		case PCRAccept:
			stats.PCRAccepted++
			cands = append(cands, cand{id: e.Data, accepted: true})
		case PCRReject:
			stats.PCRRejected++
		default:
			cands = append(cands, cand{id: e.Data})
		}
		return true
	})
	if err != nil {
		return nil, stats, err
	}

	// Phase 2: fetch candidates from the unclustered heap in RowID
	// order (bitmap-scan discipline), integrate the undecided ones.
	type fetchRef struct {
		rid heapfile.RowID
		c   cand
	}
	refs := make([]fetchRef, 0, len(cands))
	for _, c := range cands {
		rid, ok := u.rows[c.id]
		if !ok {
			return nil, stats, fmt.Errorf("utree: no row for object %d", c.id)
		}
		refs = append(refs, fetchRef{rid: rid, c: c})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].rid.Less(refs[j].rid) })
	var results []Result
	for _, r := range refs {
		rec, ok, err := u.heap.Get(r.rid)
		if err != nil {
			return nil, stats, err
		}
		if !ok {
			continue
		}
		stats.Fetched++
		o, err := tuple.DecodeObservation(rec)
		if err != nil {
			return nil, stats, err
		}
		conf := o.Loc.ProbInCircle(q, radius)
		if !r.c.accepted {
			stats.Integrations++
			if conf < threshold {
				continue
			}
		}
		results = append(results, Result{Obs: o, Confidence: conf})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Confidence != results[j].Confidence {
			return results[i].Confidence > results[j].Confidence
		}
		return results[i].Obs.ID < results[j].Obs.ID
	})
	return results, stats, nil
}
