package utree

import (
	"math"
	"testing"

	"upidb/internal/dataset"
	"upidb/internal/prob"
	"upidb/internal/sim"
	"upidb/internal/storage"
	"upidb/internal/tuple"
)

func newFS() *storage.FS { return storage.NewFS(sim.NewDisk(sim.DefaultParams())) }

func smallCartel(t *testing.T, n int) *dataset.Cartel {
	t.Helper()
	cfg := dataset.DefaultCartelConfig()
	cfg.Observations = n
	cfg.GridN = 8
	c, err := dataset.GenerateCartel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// bruteQuery is the oracle: exact integration on every observation.
func bruteQuery(obs []*tuple.Observation, q prob.Point, radius, threshold float64) map[uint64]float64 {
	out := make(map[uint64]float64)
	for _, o := range obs {
		if p := o.Loc.ProbInCircle(q, radius); p >= threshold {
			out[o.ID] = p
		}
	}
	return out
}

func TestPCRAux(t *testing.T) {
	g := prob.ConstrainedGaussian{Center: prob.Point{X: 0, Y: 0}, Sigma: 20, Bound: 100}
	aux := PCRAux(g)
	for i := 1; i < len(aux); i++ {
		if aux[i] <= aux[i-1] {
			t.Fatalf("quantile radii not increasing: %v", aux)
		}
	}
	if aux[len(aux)-1] > g.Bound {
		t.Fatalf("quantile radius exceeds bound: %v", aux)
	}
}

func TestCheckPCRSoundness(t *testing.T) {
	g := prob.ConstrainedGaussian{Center: prob.Point{X: 0, Y: 0}, Sigma: 20, Bound: 100}
	aux := PCRAux(g)
	// Sweep query geometries; whenever PCR decides, the exact
	// integration must agree.
	for _, qx := range []float64{0, 30, 60, 90, 120, 160, 250} {
		for _, radius := range []float64{20, 60, 120, 200} {
			for _, th := range []float64{0.2, 0.5, 0.8} {
				q := prob.Point{X: qx, Y: 0}
				exact := g.ProbInCircle(q, radius)
				switch CheckPCR(g.Center, aux, q, radius, th) {
				case PCRAccept:
					if exact < th-0.02 {
						t.Fatalf("accept unsound: q=%v r=%v th=%v exact=%v", qx, radius, th, exact)
					}
				case PCRReject:
					if exact >= th+0.02 {
						t.Fatalf("reject unsound: q=%v r=%v th=%v exact=%v", qx, radius, th, exact)
					}
				}
			}
		}
	}
}

func TestQueryCircleMatchesBrute(t *testing.T) {
	c := smallCartel(t, 1500)
	u, err := BulkBuild(newFS(), "u", c.Observations, Options{})
	if err != nil {
		t.Fatal(err)
	}
	centers := []prob.Point{{X: 0, Y: 0}, {X: 300, Y: -200}, {X: -500, Y: 500}}
	for _, q := range centers {
		for _, radius := range []float64{150, 400} {
			for _, th := range []float64{0.3, 0.6} {
				want := bruteQuery(c.Observations, q, radius, th)
				got, stats, err := u.QueryCircle(q, radius, th)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("q=%+v r=%v th=%v: got %d want %d (stats %+v)", q, radius, th, len(got), len(want), stats)
				}
				for _, r := range got {
					wantConf, ok := want[r.Obs.ID]
					if !ok {
						t.Fatalf("unexpected result %d", r.Obs.ID)
					}
					if math.Abs(wantConf-r.Confidence) > 1e-9 {
						t.Fatalf("conf mismatch for %d", r.Obs.ID)
					}
				}
			}
		}
	}
}

func TestPCRPruningDoesWork(t *testing.T) {
	c := smallCartel(t, 2000)
	u, err := BulkBuild(newFS(), "u", c.Observations, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := u.QueryCircle(prob.Point{X: 0, Y: 0}, 300, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Candidates == 0 {
		t.Fatal("no candidates")
	}
	decided := stats.PCRAccepted + stats.PCRRejected
	if decided*3 < stats.Candidates {
		t.Fatalf("PCR decided only %d of %d candidates", decided, stats.Candidates)
	}
	if stats.Integrations >= stats.Candidates {
		t.Fatal("integration count should be reduced by PCR")
	}
}

func TestQuerySegmentMatchesBrute(t *testing.T) {
	c := smallCartel(t, 1200)
	u, err := BulkBuild(newFS(), "u", c.Observations, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find a segment with decent traffic.
	counts := make(map[string]int)
	for _, o := range c.Observations {
		counts[o.Segment.First().Value]++
	}
	var seg string
	best := 0
	for s, n := range counts {
		if n > best {
			seg, best = s, n
		}
	}
	for _, qt := range []float64{0.1, 0.5, 0.8} {
		want := 0
		for _, o := range c.Observations {
			if o.Segment.P(seg) >= qt {
				want++
			}
		}
		got, err := u.QuerySegment(seg, qt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Fatalf("segment %s qt=%v: got %d want %d", seg, qt, len(got), want)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Confidence < got[i].Confidence {
				t.Fatal("segment results not sorted by confidence desc")
			}
		}
	}
}

func TestInsertThenQuery(t *testing.T) {
	c := smallCartel(t, 300)
	u, err := BulkBuild(newFS(), "u", c.Observations[:200], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range c.Observations[200:] {
		if err := u.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	want := bruteQuery(c.Observations, prob.Point{X: 0, Y: 0}, 500, 0.4)
	got, _, err := u.QueryCircle(prob.Point{X: 0, Y: 0}, 500, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d want %d", len(got), len(want))
	}
}

func TestSizeAndCaches(t *testing.T) {
	c := smallCartel(t, 400)
	u, err := BulkBuild(newFS(), "u", c.Observations, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.SizeBytes() == 0 {
		t.Fatal("SizeBytes = 0")
	}
	if err := u.DropCaches(); err != nil {
		t.Fatal(err)
	}
	// Query still works from cold caches.
	if _, _, err := u.QueryCircle(prob.Point{}, 300, 0.5); err != nil {
		t.Fatal(err)
	}
}
