package upidb

// Facade tests for spatial Run parity: golden equivalence of the
// planner-routed Run(ctx, Circle/Segment) against the fixed heuristic
// routing, planner routing and PlanSource reporting,
// streamed-vs-collected parity, deadline admission with zero modeled
// I/O, and the DB.Close contract on spatial tables.

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"upidb/internal/dataset"
)

func spatialFixture(t testing.TB, n int) (*DB, *SpatialTable, *dataset.Cartel) {
	t.Helper()
	cfg := dataset.DefaultCartelConfig()
	cfg.Observations = n
	cfg.GridN = 12
	c, err := dataset.GenerateCartel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := mustCreate(t)
	tab, err := db.BulkLoadSpatial("cars", c.Observations)
	if err != nil {
		t.Fatal(err)
	}
	return db, tab, c
}

// busySegment returns the most frequent first-choice segment value.
func busySegment(c *dataset.Cartel) string {
	counts := make(map[string]int)
	for _, o := range c.Observations {
		counts[o.Segment.First().Value]++
	}
	seg, best := "", 0
	for s, n := range counts {
		if n > best {
			seg, best = s, n
		}
	}
	return seg
}

func sameSpatialResults(t *testing.T, what string, got, want []SpatialResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results vs %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i].Obs.ID != want[i].Obs.ID || math.Abs(got[i].Confidence-want[i].Confidence) > 1e-12 {
			t.Fatalf("%s: result %d differs: (%d, %v) vs (%d, %v)", what, i,
				got[i].Obs.ID, got[i].Confidence, want[i].Obs.ID, want[i].Confidence)
		}
	}
}

// TestSpatialRunGolden: planner-routed Run(ctx, Circle/Segment) must
// return results identical to the fixed heuristic routing
// (WithHeuristic) on a golden workload, with PlanSource reporting
// fresh-stats planner routing.
func TestSpatialRunGolden(t *testing.T) {
	_, tab, c := spatialFixture(t, 4000)
	ctx := context.Background()
	if si := tab.StatsInfo(); !si.Seeded || si.Observations != int64(len(c.Observations)) {
		t.Fatalf("stats info %+v", si)
	}

	center := c.Extent.Center()
	for _, radius := range []float64{120, 400, 900} {
		for _, th := range []float64{0.3, 0.6} {
			hres, err := tab.Run(ctx, Circle(center, radius, th).WithHeuristic())
			if err != nil {
				t.Fatal(err)
			}
			legacy := hres.Collect()
			res, err := tab.Run(ctx, Circle(center, radius, th))
			if err != nil {
				t.Fatal(err)
			}
			sameSpatialResults(t, "circle", res.Collect(), legacy)
			if err := res.Err(); err != nil {
				t.Fatal(err)
			}
			if src := res.Info().PlanSource; src != PlanSourceStats {
				t.Fatalf("circle r=%v PlanSource %q, want %q", radius, src, PlanSourceStats)
			}
			if res.Info().Plan == "" {
				t.Fatalf("planner-routed run reported no plan")
			}
		}
	}

	seg := busySegment(c)
	for _, qt := range []float64{0.2, 0.5, 0.8} {
		hres, err := tab.Run(ctx, Segment(seg, qt).WithHeuristic())
		if err != nil {
			t.Fatal(err)
		}
		legacy := hres.Collect()
		res, err := tab.Run(ctx, Segment(seg, qt))
		if err != nil {
			t.Fatal(err)
		}
		sameSpatialResults(t, "segment", res.Collect(), legacy)
		if src := res.Info().PlanSource; src != PlanSourceStats {
			t.Fatalf("segment qt=%v PlanSource %q, want %q", qt, src, PlanSourceStats)
		}
		if len(legacy) > 0 && res.Info().HeapEntries == 0 {
			t.Fatalf("segment qt=%v reported zero heap entries for %d results", qt, len(legacy))
		}
	}

	// WithHeuristic pins the fixed routing and reports it.
	res, err := tab.Run(ctx, Circle(center, 400, 0.5).WithHeuristic())
	if err != nil {
		t.Fatal(err)
	}
	if src := res.Info().PlanSource; src != PlanSourceHeuristic {
		t.Fatalf("WithHeuristic PlanSource %q", src)
	}
}

// TestSpatialStreamParity: the streamed and materialized consumptions
// must agree — exactly (order included) for segment-index streams,
// and as canonical sets for refinement-ordered circle streams.
func TestSpatialStreamParity(t *testing.T) {
	_, tab, c := spatialFixture(t, 3000)
	ctx := context.Background()
	center := c.Extent.Center()

	drain := func(r *SpatialResults) []SpatialResult {
		t.Helper()
		var out []SpatialResult
		for res, err := range r.All() {
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}

	// Segment on the index plan (pinned via WithHeuristic — the
	// planner may legitimately route an unselective segment query to a
	// full scan, whose stream is heap-ordered): exact order parity,
	// because the index streams in the canonical confidence order.
	seg := busySegment(c)
	sq := Segment(seg, 0.3).WithHeuristic()
	collected, err := tab.Run(ctx, sq)
	if err != nil {
		t.Fatal(err)
	}
	want := collected.Collect()
	streamedRes, err := tab.Run(ctx, sq)
	if err != nil {
		t.Fatal(err)
	}
	streamed := drain(streamedRes)
	sameSpatialResults(t, "segment stream order", streamed, want)
	// The planner-default route must produce the same canonical set.
	planned, err := tab.Run(ctx, Segment(seg, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	sameSpatialResults(t, "segment planned vs heuristic", planned.Collect(), want)
	// A fully drained handle replays and reports canonical Collect.
	sameSpatialResults(t, "segment stream collect-after-drain", streamedRes.Collect(), want)
	if streamedRes.Len() != len(want) {
		t.Fatalf("Len %d want %d", streamedRes.Len(), len(want))
	}

	// Circle: the stream yields in refinement order; canonical
	// re-sorting must equal the materialized drain exactly.
	cq := Circle(center, 500, 0.4)
	cRes, err := tab.Run(ctx, cq)
	if err != nil {
		t.Fatal(err)
	}
	cWant := cRes.Collect()
	cStreamRes, err := tab.Run(ctx, cq)
	if err != nil {
		t.Fatal(err)
	}
	cStreamed := drain(cStreamRes)
	sameSpatialResults(t, "circle canonical parity", cStreamRes.Collect(), cWant)
	if len(cStreamed) != len(cWant) {
		t.Fatalf("circle stream %d results, collect %d", len(cStreamed), len(cWant))
	}
	if len(cWant) < 5 {
		t.Fatalf("workload too selective (%d results) to exercise streaming", len(cWant))
	}

	// Partial drain spends the handle.
	pRes, err := tab.Run(ctx, cq)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range pRes.All() {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 2 {
			break
		}
	}
	for _, err := range pRes.All() {
		if !errors.Is(err, ErrStreamConsumed) {
			t.Fatalf("second All after partial drain: %v", err)
		}
	}
	if pRes.Collect() != nil || pRes.Len() != 0 || !errors.Is(pRes.Err(), ErrStreamConsumed) {
		t.Fatalf("partial drain not spent: len=%d err=%v", pRes.Len(), pRes.Err())
	}
}

// TestSpatialAdmission: a deadline below the cheapest plan's modeled
// cost must be refused with ErrCanceled before any modeled I/O.
func TestSpatialAdmission(t *testing.T) {
	db, tab, c := spatialFixture(t, 2500)
	if err := tab.tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	before := db.DiskStats()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	// Every plan costs at least Costinit = 100 ms modeled, far above
	// the 5 ms deadline.
	_, err := tab.Run(ctx, Circle(c.Extent.Center(), 300, 0.5))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("admission: %v", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("refusal must not claim the deadline already expired: %v", err)
	}
	_, err = tab.Run(ctx, Segment(busySegment(c), 0.5))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("segment admission: %v", err)
	}
	after := db.DiskStats()
	if d := after.Sub(before); d.BytesRead != 0 || d.Seeks != 0 || d.Elapsed != 0 {
		t.Fatalf("admission refusal charged I/O: %+v", d)
	}
}

// TestSpatialExplainAndStats: WithExplain costs plans without
// executing; WithStats reports a positive modeled time for a real run.
func TestSpatialExplainAndStats(t *testing.T) {
	db, tab, c := spatialFixture(t, 2500)
	ctx := context.Background()
	center := c.Extent.Center()

	before := db.DiskStats()
	res, err := tab.Run(ctx, Circle(center, 300, 0.5).WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Info().Explain
	if !strings.Contains(ex, "routing: planner, fresh spatial stats") ||
		!strings.Contains(ex, "RTreeProbe") || !strings.Contains(ex, "SpatialFullScan") {
		t.Fatalf("explain output:\n%s", ex)
	}
	if res.Len() != 0 {
		t.Fatalf("explain executed the query")
	}
	if d := db.DiskStats().Sub(before); d.BytesRead != 0 {
		t.Fatalf("explain charged I/O: %+v", d)
	}

	if err := tab.tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	run, err := tab.Run(ctx, Circle(center, 300, 0.5).WithStats())
	if err != nil {
		t.Fatal(err)
	}
	run.Collect()
	if run.Info().ModeledTime <= 0 {
		t.Fatalf("WithStats modeled time %v", run.Info().ModeledTime)
	}
	if run.Info().Partitions != 1 {
		t.Fatalf("partitions %d", run.Info().Partitions)
	}
}

// TestSpatialClose: after DB.Close, every spatial entry point fails
// with ErrClosed — the PR-3 contract extended to spatial tables.
func TestSpatialClose(t *testing.T) {
	db, tab, c := spatialFixture(t, 500)
	ctx := context.Background()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(c.Observations[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close: %v", err)
	}
	if _, err := tab.Run(ctx, Circle(Point{}, 100, 0.5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close: %v", err)
	}
	if _, err := tab.Run(ctx, Segment("s", 0.5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("segment Run after Close: %v", err)
	}
	if _, err := db.BulkLoadSpatial("more", c.Observations); !errors.Is(err, ErrClosed) {
		t.Fatalf("BulkLoadSpatial after Close: %v", err)
	}
}

// TestSpatialKindRouting: spatial descriptors are rejected by
// Table.Run and discrete descriptors by SpatialTable.Run.
func TestSpatialKindRouting(t *testing.T) {
	db, stab, _ := spatialFixture(t, 300)
	ctx := context.Background()
	dtab, err := db.CreateTable("d", "X", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dtab.Run(ctx, Circle(Point{}, 10, 0.5)); err == nil || !strings.Contains(err.Error(), "spatial") {
		t.Fatalf("discrete Run accepted a Circle query: %v", err)
	}
	if _, err := stab.Run(ctx, PTQ("", "v", 0.5)); err == nil || !strings.Contains(err.Error(), "not a spatial") {
		t.Fatalf("spatial Run accepted a PTQ: %v", err)
	}
}
