package upidb

// Tests for true incremental streaming through the facade: golden
// equivalence of the streamed and materialized consumptions at every
// parallelism, top-k early termination savings, partial-drain
// semantics, and mid-stream cancellation.

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// hotTable builds a table engineered for top-k early termination: the
// main partition holds 60 high-confidence "hot" tuples, and each of 6
// fractures holds 4 mid-confidence "hot" tuples plus 20 tuples whose
// "hot" alternative sits below the cutoff (so it lives in the
// fracture's cutoff index). A materialized top-k must chase every
// fracture's cutoff pointers; the merged stream fills k from the main
// partition and never pulls any fracture past its first head.
func hotTable(t *testing.T, db *DB) *Table {
	t.Helper()
	hot := func(id uint64, conf float64) *Tuple {
		x, err := NewDiscrete([]Alternative{{Value: "hot", Prob: conf}})
		if err != nil {
			t.Fatal(err)
		}
		return &Tuple{ID: id, Existence: 1, Unc: []UncField{{Name: "X", Dist: x}}}
	}
	coldHot := func(id uint64) *Tuple {
		x, err := NewDiscrete([]Alternative{{Value: "cold", Prob: 0.8}, {Value: "hot", Prob: 0.1}})
		if err != nil {
			t.Fatal(err)
		}
		return &Tuple{ID: id, Existence: 1, Unc: []UncField{{Name: "X", Dist: x}}}
	}
	id := uint64(1)
	var base []*Tuple
	for i := 0; i < 60; i++ {
		base = append(base, hot(id, 0.5+float64(i)*0.008))
		id++
	}
	tab, err := db.BulkLoadTable("hottab", "X", nil, base, WithCutoff(0.15), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 6; f++ {
		for j := 0; j < 4; j++ {
			if err := tab.Insert(hot(id, 0.2+float64(f*4+j)*0.01)); err != nil {
				t.Fatal(err)
			}
			id++
		}
		for j := 0; j < 20; j++ {
			if err := tab.Insert(coldHot(id)); err != nil {
				t.Fatal(err)
			}
			id++
		}
		if err := tab.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// streamAll drains a fresh handle through All only, returning the
// yielded results.
func streamAll(t *testing.T, res *Results) []Result {
	t.Helper()
	var out []Result
	for r, err := range res.All() {
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		out = append(out, r)
	}
	return out
}

// TestRunStreamsGoldenVsCollect: consuming a Run through All alone
// (true streaming) yields exactly what an identical Run's Collect
// materializes — same rows, same order — at serial, narrow and wide
// parallelism, across every query class including planner-routed ones.
func TestRunStreamsGoldenVsCollect(t *testing.T) {
	queries := []Query{
		PTQ("", "v01", 0.05),
		PTQ("", "v03", 0.4),
		PTQ("Y", "yv02", 0.1),
		PTQ("", "v02", 0.1).WithPlanner(),
		PTQ("", "v02", 0.1).WithHeuristic(),
		TopKQuery("v04", 7),
	}
	ctx := context.Background()
	for _, par := range []int{1, 2, 0} {
		db := mustCreate(t)
		tab := fracturedTable(t, db, par)
		for qi, q := range queries {
			matRes, err := tab.Run(ctx, q)
			if err != nil {
				t.Fatalf("par=%d q=%d materialized run: %v", par, qi, err)
			}
			want := matRes.Collect()
			strRes, err := tab.Run(ctx, q)
			if err != nil {
				t.Fatalf("par=%d q=%d streaming run: %v", par, qi, err)
			}
			got := streamAll(t, strRes)
			if len(got) != len(want) {
				t.Fatalf("par=%d q=%d: streamed %d rows vs collected %d", par, qi, len(got), len(want))
			}
			for i := range got {
				if got[i].Tuple.ID != want[i].Tuple.ID || got[i].Confidence != want[i].Confidence {
					t.Fatalf("par=%d q=%d row %d: streamed %d/%v vs collected %d/%v",
						par, qi, i, got[i].Tuple.ID, got[i].Confidence, want[i].Tuple.ID, want[i].Confidence)
				}
			}
			// After a full streamed drain the handle is reusable:
			// Collect returns the same rows.
			if again := strRes.Collect(); len(again) != len(got) {
				t.Fatalf("par=%d q=%d: Collect after full stream drain: %d rows", par, qi, len(again))
			}
		}
	}
}

// TestRunStreamStatsMatchMaterialized: a fully drained streamed PTQ
// reports the same execution statistics — entries scanned, partitions,
// buffer hits and exact modeled time — as the materialized execution.
func TestRunStreamStatsMatchMaterialized(t *testing.T) {
	db := mustCreate(t)
	tab := fracturedTable(t, db, 0)
	ctx := context.Background()
	q := PTQ("", "v01", 0.05).WithStats()

	if err := tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	matRes, err := tab.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	want := matRes.Info() // forces the materialized drain

	if err := tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	strRes, err := tab.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	streamAll(t, strRes)
	got := strRes.Info()
	if got.HeapEntries != want.HeapEntries || got.CutoffPointers != want.CutoffPointers ||
		got.Partitions != want.Partitions || got.BufferHits != want.BufferHits {
		t.Fatalf("streamed info %+v diverged from materialized %+v", got, want)
	}
	if want.ModeledTime <= 0 || got.ModeledTime != want.ModeledTime {
		t.Fatalf("streamed modeled time %v != materialized %v", got.ModeledTime, want.ModeledTime)
	}
}

// TestRunTopKStreamEarlyTermination: over 7 partitions, the streamed
// top-k yields its first result — and completes — for strictly less
// modeled I/O than the materialized execution, with identical results.
func TestRunTopKStreamEarlyTermination(t *testing.T) {
	db := mustCreate(t)
	tab := hotTable(t, db)
	ctx := context.Background()
	q := TopKQuery("hot", 20)

	if err := tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	before := db.DiskStats()
	matRes, err := tab.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	want := matRes.Collect()
	fullCost := db.DiskStats().Sub(before).Elapsed
	if len(want) != 20 || fullCost <= 0 {
		t.Fatalf("materialized top-k: %d rows, cost %v", len(want), fullCost)
	}

	// First result costs less than the whole materialized run: only
	// one head per partition is needed, not any completed scan.
	if err := tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	before = db.DiskStats()
	strRes, err := tab.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	var first *Result
	for r, err := range strRes.All() {
		if err != nil {
			t.Fatal(err)
		}
		first = &r
		break // partial drain: cancels the remaining scans
	}
	firstCost := db.DiskStats().Sub(before).Elapsed
	if first == nil || first.Tuple.ID != want[0].Tuple.ID {
		t.Fatalf("first streamed result %+v, want ID %d", first, want[0].Tuple.ID)
	}
	if firstCost >= fullCost {
		t.Fatalf("first-result modeled cost %v not below materialized %v", firstCost, fullCost)
	}

	// A full streamed drain returns the identical top-k for strictly
	// less modeled I/O: the fractures' cutoff chases never happen.
	if err := tab.DropCaches(); err != nil {
		t.Fatal(err)
	}
	before = db.DiskStats()
	strRes, err = tab.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got := streamAll(t, strRes)
	streamCost := db.DiskStats().Sub(before).Elapsed
	if len(got) != len(want) {
		t.Fatalf("streamed top-k %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Tuple.ID != want[i].Tuple.ID {
			t.Fatalf("row %d: streamed ID %d, want %d", i, got[i].Tuple.ID, want[i].Tuple.ID)
		}
	}
	if streamCost >= fullCost {
		t.Fatalf("streamed top-k cost %v not below materialized %v", streamCost, fullCost)
	}
}

// TestRunPartialDrainSpendsHandle: breaking out of All cancels the
// remaining scans and spends the handle — a second All yields
// ErrStreamConsumed instead of silently resuming, Collect/Len report
// an empty set, and Err explains why.
func TestRunPartialDrainSpendsHandle(t *testing.T) {
	db := mustCreate(t)
	tab := fracturedTable(t, db, 0)
	res, err := tab.Run(context.Background(), PTQ("", "v01", 0.05))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range res.All() {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 2 {
			break
		}
	}
	var second error
	for _, err := range res.All() {
		second = err
		break
	}
	if !errors.Is(second, ErrStreamConsumed) {
		t.Fatalf("second All after partial drain: %v", second)
	}
	if rs := res.Collect(); rs != nil {
		t.Fatalf("Collect after partial drain returned %d rows", len(rs))
	}
	if res.Len() != 0 {
		t.Fatalf("Len after partial drain: %d", res.Len())
	}
	if !errors.Is(res.Err(), ErrStreamConsumed) {
		t.Fatalf("Err after partial drain: %v", res.Err())
	}
	// The spent handle released its pins: the table merges cleanly and
	// a fresh query still answers.
	if err := tab.Merge(); err != nil {
		t.Fatal(err)
	}
	fresh, err := tab.Run(context.Background(), PTQ("", "v01", 0.05))
	if err != nil || fresh.Len() == 0 {
		t.Fatalf("table broken after partial drain + merge: %v (%d rows)", err, fresh.Len())
	}
}

// TestRunMidStreamCancel: cancelling the context after n streamed
// results terminates the iterator with ErrCanceled, stops charging
// modeled I/O, and releases every partition pin (the table merges
// cleanly afterwards).
func TestRunMidStreamCancel(t *testing.T) {
	db := mustCreate(t)
	tab := fracturedTable(t, db, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := tab.Run(ctx, PTQ("", "v01", 0.05))
	if err != nil {
		t.Fatal(err)
	}
	var (
		n         int
		streamErr error
	)
	for _, err := range res.All() {
		if err != nil {
			streamErr = err
			break
		}
		if n++; n == 3 {
			cancel() // checked between pulls: next iteration must fail
		}
	}
	if !errors.Is(streamErr, ErrCanceled) || !errors.Is(streamErr, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled after %d rows, got %v", n, streamErr)
	}
	if n != 3 {
		t.Fatalf("stream yielded %d rows after cancellation point", n)
	}
	after := db.DiskStats()
	if !errors.Is(res.Err(), ErrCanceled) {
		t.Fatalf("Err after cancelled stream: %v", res.Err())
	}
	if rs := res.Collect(); rs != nil {
		t.Fatalf("Collect after cancelled stream returned %d rows", len(rs))
	}
	if d := db.DiskStats().Sub(after); d.Elapsed != 0 || d.BytesRead != 0 {
		t.Fatalf("cancelled stream kept charging: %v", d)
	}
	// Pins are back: merging reclaims the old generation without a
	// leak, and the table still answers.
	if err := tab.Merge(); err != nil {
		t.Fatal(err)
	}
	fresh, err := tab.Run(context.Background(), PTQ("", "v01", 0.05))
	if err != nil || fresh.Len() == 0 {
		t.Fatalf("table broken after cancelled stream + merge: %v (%d rows)", err, fresh.Len())
	}
}

// TestResultsClose: Close on an unconsumed handle releases its pins
// without executing; the handle is spent.
func TestResultsClose(t *testing.T) {
	db := mustCreate(t)
	tab := fracturedTable(t, db, 0)
	before := db.DiskStats()
	res, err := tab.Run(context.Background(), PTQ("", "v01", 0.05))
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	res.Close() // idempotent
	if d := db.DiskStats().Sub(before); d.Elapsed != 0 {
		t.Fatalf("closed-unconsumed handle charged I/O: %v", d)
	}
	if rs := res.Collect(); rs != nil {
		t.Fatalf("Collect after Close returned %d rows", len(rs))
	}
	if !errors.Is(res.Err(), ErrStreamConsumed) {
		t.Fatalf("Err after Close: %v", res.Err())
	}
	if err := tab.Merge(); err != nil {
		t.Fatal(err)
	}
}

// TestRunAccessorsDuringStream: calling Info/Len/Collect/Err from
// inside an in-progress All loop must not double-consume the query or
// poison the handle — they are inert mid-drain, and the stream still
// finishes cleanly with Err() == nil.
func TestRunAccessorsDuringStream(t *testing.T) {
	db := mustCreate(t)
	tab := fracturedTable(t, db, 0)
	res, err := tab.Run(context.Background(), PTQ("", "v01", 0.05))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range res.All() {
		if err != nil {
			t.Fatalf("stream failed after mid-drain accessor: %v", err)
		}
		if n++; n == 1 {
			if rs := res.Collect(); rs != nil {
				t.Fatalf("Collect mid-stream returned %d rows", len(rs))
			}
			if res.Len() != 0 {
				t.Fatalf("Len mid-stream: %d", res.Len())
			}
			if err := res.Err(); err != nil {
				t.Fatalf("Err mid-stream: %v", err)
			}
			_ = res.Info() // must not force a second execution
			// A re-entrant All must refuse rather than double-consume.
			for _, err := range res.All() {
				if !errors.Is(err, ErrStreamConsumed) {
					t.Fatalf("re-entrant All: %v", err)
				}
				break
			}
		}
	}
	if n == 0 {
		t.Fatal("stream yielded nothing")
	}
	if res.Err() != nil {
		t.Fatalf("Err after clean drain: %v", res.Err())
	}
	if got := res.Len(); got != n {
		t.Fatalf("Len after drain: %d, streamed %d", got, n)
	}
}

// TestRunStreamsManyValues is a broader golden sweep: every value of
// the fractured table streams identically to its materialized run.
func TestRunStreamsManyValues(t *testing.T) {
	db := mustCreate(t)
	tab := fracturedTable(t, db, 2)
	ctx := context.Background()
	for v := 0; v < 7; v++ {
		for _, qt := range []float64{0.05, 0.3, 0.6} {
			q := PTQ("", fmt.Sprintf("v%02d", v), qt)
			matRes, err := tab.Run(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			want := matRes.Collect()
			strRes, err := tab.Run(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			got := streamAll(t, strRes)
			if len(got) != len(want) {
				t.Fatalf("v%02d qt=%v: %d streamed vs %d collected", v, qt, len(got), len(want))
			}
			for i := range got {
				if got[i].Tuple.ID != want[i].Tuple.ID {
					t.Fatalf("v%02d qt=%v row %d: %d vs %d", v, qt, i, got[i].Tuple.ID, want[i].Tuple.ID)
				}
			}
		}
	}
}
