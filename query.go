package upidb

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"slices"
	"time"

	"upidb/internal/fracture"
	"upidb/internal/planner"
	"upidb/internal/upi"
)

// Kind identifies the class of query a Query descriptor requests.
type Kind int

// The query classes Run executes.
const (
	// KindPTQ is a probabilistic threshold query: all tuples whose
	// confidence for attr = value is at least the threshold.
	KindPTQ Kind = iota
	// KindTopK is a top-k query: the k highest-confidence tuples for
	// one value of the primary attribute.
	KindTopK
)

// Query describes one query: the predicate plus per-query execution
// options. Build it with PTQ or TopKQuery and chain With* options —
// each option returns a modified copy, so descriptors are values that
// can be stored, reused and shared between goroutines:
//
//	q := upidb.PTQ("", "MIT", 0.1).WithParallelism(4).WithStats()
//	res, err := table.Run(ctx, q)
type Query struct {
	kind  Kind
	attr  string // "" = the table's primary attribute
	value string
	qt    float64
	k     int

	parallelism int
	usePlanner  bool
	heuristic   bool
	wantStats   bool
	explainOnly bool
}

// PTQ describes a probabilistic threshold query "attr = value AND
// confidence >= qt". attr may be the table's primary attribute, any
// secondary-indexed attribute, or "" as shorthand for the primary
// attribute; Run rejects anything else with ErrUnknownAttr.
func PTQ(attr, value string, qt float64) Query {
	return Query{kind: KindPTQ, attr: attr, value: value, qt: qt}
}

// TopKQuery describes a top-k query on the primary attribute: the k
// highest-confidence tuples with the given value.
func TopKQuery(value string, k int) Query {
	return Query{kind: KindTopK, value: value, k: k}
}

// WithParallelism overrides the table's partition fan-out width for
// this query only (0 = table default, 1 = serial scan). Modeled query
// costs are identical at every setting; only wall-clock time changes.
func (q Query) WithParallelism(n int) Query {
	q.parallelism = n
	return q
}

// WithPlanner forces the query through the cost-based planner — which
// picks the cheapest access path (primary scan, tailored secondary, or
// full scan) from the statistics catalog's histograms — even when the
// catalog is stale. Run already consults the planner automatically
// whenever the catalog is fresh, so this is a force-flag, not the
// gate; it fails with ErrNoStats if the queried attribute has no
// seeded statistics at all. Planner routing applies to PTQs; a top-k
// query ignores it.
func (q Query) WithPlanner() Query {
	q.usePlanner = true
	return q
}

// WithHeuristic pins the query to the fixed heuristic routing (primary
// attribute → clustered UPI scan, secondary attribute → tailored
// secondary access), bypassing the statistics catalog and the planner
// entirely — the pre-catalog behavior. Mostly useful for measuring the
// planner's benefit; WithPlanner wins if both are set.
func (q Query) WithHeuristic() Query {
	q.heuristic = true
	return q
}

// WithStats additionally reports the modeled disk time of the query
// as Info().ModeledTime — the cost of exactly this query's I/O
// (derived from its own partition tapes), unpolluted by concurrent
// queries or merges. Structural statistics (entries scanned,
// partitions read, plan chosen) are collected regardless.
func (q Query) WithStats() Query {
	q.wantStats = true
	return q
}

// WithExplain turns the query into a plan-only request: Run costs the
// candidate plans without executing anything, and Info().Explain holds
// the EXPLAIN-style listing, headed by the routing decision Run would
// have made — planner from fresh stats, stale-fallback heuristic, or
// forced WithPlanner. Costing requires seeded statistics for the
// queried attribute (ErrNoStats otherwise). Only PTQ queries can be
// explained; Run rejects a top-k explain request instead of silently
// executing it.
func (q Query) WithExplain() Query {
	q.explainOnly = true
	return q
}

// Results is the answer to one Run call: the materialized result set
// plus everything the execution recorded about itself. Iterate it
// with All (range-over-func), or grab the whole slice with Collect.
type Results struct {
	results []Result
	info    QueryInfo
}

// All returns an iterator over the results in confidence-descending
// order (ties broken by tuple ID):
//
//	for r, err := range res.All() { ... }
//
// Iteration yields exactly the tuples Collect returns, in the same
// order. The error slot is reserved for incremental streaming of
// partition scans; today results are fully validated before Run
// returns, so it is always nil.
func (r *Results) All() iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		for _, res := range r.results {
			if !yield(res, nil) {
				return
			}
		}
	}
}

// Collect returns all results as a slice, in the same order All
// yields them.
func (r *Results) Collect() []Result {
	return slices.Clone(r.results)
}

// Len returns the number of results.
func (r *Results) Len() int { return len(r.results) }

// Info reports what the query touched and cost. ModeledTime is only
// measured when the query was built WithStats; Plan and Explain are
// only set for WithPlanner / WithExplain runs.
func (r *Results) Info() QueryInfo { return r.info }

// Run executes one query described by q against the table, honoring
// ctx: a context that is already done fails fast with ErrCanceled
// before any partition is pinned or any modeled I/O charged, and a
// cancellation mid-scan stops the partition workers between heap
// pages, discards the unfinished partitions' I/O and releases every
// partition pin before returning.
//
// A PTQ routes through the cost-based planner automatically whenever
// the table's statistics catalog is fresh (staleness at or below the
// TableOptions.StatsStaleness threshold); when statistics are absent
// or stale — or under WithHeuristic — the fixed heuristic routing
// runs instead. Info().PlanSource reports which happened. On the
// planner path, a deadline on ctx is compared against the chosen
// plan's modeled cost: a query that cannot finish in time is refused
// immediately with ErrCanceled — zero modeled I/O, zero pinned
// partitions — instead of being admitted and cancelled midway.
//
// Run is safe for concurrent use alongside inserts, deletes, flushes
// and merges; it sees a consistent snapshot of the table (main UPI +
// fractures + RAM buffer) taken at call time.
func (t *Table) Run(ctx context.Context, q Query) (*Results, error) {
	if err := upi.CtxErr(ctx); err != nil {
		return nil, err
	}
	main := t.store.Main()
	primary := main.Attr()
	attr := q.attr
	if attr == "" {
		attr = primary
	}
	if attr != primary && !slices.Contains(main.SecondaryAttrs(), attr) {
		return nil, fmt.Errorf("%w: %q (primary %q, secondary %v)",
			ErrUnknownAttr, attr, primary, main.SecondaryAttrs())
	}
	if q.explainOnly && q.kind != KindPTQ {
		// Explain is plan-only by contract; never fall through to a
		// full execution for a query class the planner can't cost.
		return nil, fmt.Errorf("upidb: WithExplain supports PTQ queries only")
	}
	if q.kind == KindPTQ {
		source := t.routeSource(attr, q)
		if q.explainOnly || source == PlanSourceForced {
			return t.runPlanned(ctx, q, attr, source)
		}
		if source == PlanSourceStats {
			res, err := t.runPlanned(ctx, q, attr, source)
			if err == nil || !errors.Is(err, ErrNoStats) {
				return res, err
			}
			// A concurrent subset re-seed dropped this attribute's
			// statistics between the freshness check and planning;
			// degrade to the heuristic route like any stale catalog.
		}
	}
	return t.runHeuristic(ctx, q, attr, primary)
}

// routeSource decides how Run will route a PTQ, without executing
// anything: forced planner, automatic planner from fresh statistics,
// or the heuristic fallback.
func (t *Table) routeSource(attr string, q Query) string {
	switch {
	case q.usePlanner:
		return PlanSourceForced
	case q.heuristic:
		return PlanSourceHeuristic
	case t.catalog.Fresh(attr):
		return PlanSourceStats
	default:
		return PlanSourceHeuristic
	}
}

// runHeuristic executes the fixed pre-planner routing: top-k and
// primary PTQs scan the clustered UPI, secondary PTQs use tailored
// secondary access.
func (t *Table) runHeuristic(ctx context.Context, q Query, attr, primary string) (*Results, error) {
	req := fracture.Req{Value: q.value, Parallelism: q.parallelism}
	switch {
	case q.kind == KindTopK:
		req.Kind = fracture.KindTopK
		req.K = q.k
	case attr == primary:
		req.Kind = fracture.KindPTQ
		req.QT = q.qt
	default:
		req.Kind = fracture.KindSecondary
		req.Attr = attr
		req.QT = q.qt
		req.Tailored = true
	}
	rs, st, err := t.store.Run(ctx, req)
	if err != nil {
		return nil, err
	}
	return &Results{results: rs, info: buildInfo(q.wantStats, st, "", PlanSourceHeuristic)}, nil
}

// runPlanned costs a PTQ through the cost-based planner and — unless
// the query is explain-only — admits and executes the cheapest plan.
func (t *Table) runPlanned(ctx context.Context, q Query, attr, source string) (*Results, error) {
	plans, err := t.planner.PlanPTQ(attr, q.value, q.qt)
	if err != nil {
		return nil, err
	}
	best := plans[0]
	if q.explainOnly {
		info := QueryInfo{PlanSource: source, Plan: best.Kind.String()}
		info.Explain = t.explainRouting(source, q.heuristic) + planner.Explain(plans)
		return &Results{info: info}, nil
	}
	// Deadline-aware admission: if the remaining deadline cannot cover
	// even the cheapest plan's modeled service time, refuse up front —
	// before any partition is pinned or any modeled I/O charged —
	// rather than admit work that is doomed to be cancelled midway.
	// The deadline is interpreted as a budget in *modeled* time, the
	// engine's service-time currency (wall-clock execution on the
	// simulated disk is far faster); calibrating a modeled-to-wall
	// ratio for real deployments is a ROADMAP follow-on.
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain < best.EstimatedCost {
			return nil, fmt.Errorf(
				"%w: admission refused: remaining deadline %v is below the cheapest plan's modeled cost %v (%v on %q)",
				ErrCanceled, remain.Round(time.Millisecond),
				best.EstimatedCost.Round(time.Millisecond), best.Kind, best.Attr)
		}
	}
	rs, st, err := t.planner.ExecutePlan(ctx, best, q.value, q.qt, q.parallelism)
	if err != nil {
		return nil, err
	}
	return &Results{results: rs, info: buildInfo(q.wantStats, st, best.Kind.String(), source)}, nil
}

// explainRouting renders the routing line heading Explain output.
// heuristicForced distinguishes an explicit WithHeuristic from the
// stale/absent-stats fallback.
func (t *Table) explainRouting(source string, heuristicForced bool) string {
	si := t.StatsInfo()
	switch {
	case source == PlanSourceStats:
		return fmt.Sprintf("routing: planner, fresh stats (staleness %.1f%% <= %.0f%%, %d merge rebuilds)\n",
			si.Staleness*100, si.Threshold*100, si.Rebuilds)
	case source == PlanSourceForced:
		return "routing: planner, forced by WithPlanner\n"
	case heuristicForced:
		return "routing: heuristic, forced by WithHeuristic\n"
	default:
		return fmt.Sprintf("routing: heuristic fallback (stats stale or absent: staleness %.1f%%, threshold %.0f%%)\n",
			si.Staleness*100, si.Threshold*100)
	}
}

// buildInfo assembles a QueryInfo from the execution statistics.
func buildInfo(wantStats bool, st fracture.Stats, plan, source string) QueryInfo {
	info := QueryInfo{
		HeapEntries:    st.HeapEntries,
		CutoffPointers: st.CutoffPointers,
		Partitions:     st.PartitionsRead,
		BufferHits:     st.BufferHits,
		Plan:           plan,
		PlanSource:     source,
	}
	if wantStats {
		info.ModeledTime = st.ModeledTime
	}
	return info
}
